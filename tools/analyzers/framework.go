// Command analyzers is the repo's vet tool: custom static checks for
// the invariants the paper's flow depends on and ordinary review
// keeps missing.
//
//   - mapiter: no iteration over a map while producing output. Every
//     machine-facing surface (Table 3, -json, the daemon responses)
//     promises byte-identical output across runs; one `for k := range m`
//     feeding a printf breaks that silently. Collect, sort, then print.
//   - gostmt: no naked `go` statements outside internal/parallel. All
//     production goroutines go through the pool/fan-out helpers (or the
//     blessed parallel.Go escape hatch) so concurrency stays bounded,
//     error-propagating and greppable.
//   - timenow: no wall-clock reads (time.Now/Since/Until) in the
//     deterministic synthesis packages (internal/{ch,chtobm,hfmin,
//     logic,minimalist,techmap,gates,netlint}). Their outputs key the
//     dedup cache and the golden files; a clock read is a hidden input.
//     Stage timing lives in internal/flow, which is exempt.
//   - diagcode: in packages declaring a `Codes` registry (the three
//     lint tiers: chlint, bmlint, netlint), every CHxxx/NLxxx/BMxxx
//     code constructed in source must be a registered row with a
//     non-empty doc string, and every row must still be constructed
//     somewhere — the registry feeds suppressions, /metrics labels
//     and docs, so it must never drift from the passes.
//
// It speaks the `go vet -vettool` protocol (the cmd/go side of
// golang.org/x/tools' unitchecker) using only the standard library, so
// CI runs it with no module downloads:
//
//	go build -o bin/analyzers ./tools/analyzers
//	go vet -vettool=bin/analyzers ./...
package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one static check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// analyzers is the registry, in run order.
var analyzers = []*Analyzer{mapiterAnalyzer, gostmtAnalyzer, timenowAnalyzer, diagcodeAnalyzer}

// Pass hands one type-checked package to an analyzer.
type Pass struct {
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
	PkgPath string // import path as the build system sees it

	diags *[]diagnostic
}

type diagnostic struct {
	pos     token.Pos
	message string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, diagnostic{pos: pos, message: fmt.Sprintf(format, args...)})
}

// runAnalyzers executes the selected analyzers over one package and
// returns the merged findings in position order.
func runAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, pkgPath string, selected []*Analyzer) []diagnostic {
	var diags []diagnostic
	for _, a := range selected {
		a.Run(&Pass{
			Fset:    fset,
			Files:   files,
			Pkg:     pkg,
			Info:    info,
			PkgPath: pkgPath,
			diags:   &diags,
		})
	}
	// Deterministic output order regardless of analyzer interleaving.
	for i := 1; i < len(diags); i++ {
		for j := i; j > 0 && diags[j].pos < diags[j-1].pos; j-- {
			diags[j], diags[j-1] = diags[j-1], diags[j]
		}
	}
	return diags
}

// typeInfo allocates the maps the analyzers rely on.
func typeInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
}

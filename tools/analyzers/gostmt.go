package main

import (
	"go/ast"
	"strings"
)

// gostmtAnalyzer flags naked `go` statements outside internal/parallel.
// The repo's concurrency contract routes every production goroutine
// through that package — Pool for bounded leaf work, All/Map for
// error-propagating fan-out, Go for the rare fire-and-forget watcher —
// so goroutine creation stays bounded, cancellable, and greppable.
// Test files are exempt.
var gostmtAnalyzer = &Analyzer{
	Name: "gostmt",
	Doc:  "flag naked go statements outside internal/parallel",
	Run:  runGostmt,
}

func runGostmt(pass *Pass) {
	if strings.HasSuffix(pass.PkgPath, "internal/parallel") {
		return // the one package allowed to spell `go` directly
	}
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Go,
					"naked go statement; use internal/parallel (Pool, All, Map, or Go for fire-and-forget) so goroutines stay bounded and tracked")
			}
			return true
		})
	}
}

package main

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// diagcodeAnalyzer keeps the lint tiers' code registries honest.
// Each linter package (internal/analysis, internal/netlint,
// internal/bmlint, internal/hazver) declares a package-level `Codes`
// map from stable diagnostic codes (CHxxx/NLxxx/BMxxx/HZxxx) to
// one-line doc strings; those
// tables feed suppressions, the /metrics labels and the docs, so they
// must match what the passes actually emit. In any package declaring
// such a table, this analyzer flags:
//
//   - a code literal constructed in source but absent from the table
//     (an undocumented diagnostic the registry doesn't know about),
//   - a registered code never constructed anywhere in the package
//     (a dead table row — or a pass that silently stopped emitting),
//   - a registered code with an empty doc string.
//
// Packages without a Codes table are exempt, as are _test.go files.
var diagcodeAnalyzer = &Analyzer{
	Name: "diagcode",
	Doc:  "check CHxxx/NLxxx/BMxxx/HZxxx diagnostic codes against the package's Codes registry",
	Run:  runDiagcode,
}

var diagCodeRe = regexp.MustCompile(`^(CH|NL|BM|HZ)[0-9]{3}$`)

func runDiagcode(pass *Pass) {
	type entry struct {
		pos token.Pos
		doc string
	}
	registered := map[string]entry{}
	var codesLit *ast.CompositeLit

	testFile := func(f *ast.File) bool {
		return strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
	}

	// Locate the package-level Codes map literal and harvest its rows.
	for _, f := range pass.Files {
		if testFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != "Codes" || i >= len(vs.Values) {
						continue
					}
					cl, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					codesLit = cl
					for _, el := range cl.Elts {
						kv, ok := el.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						key, ok := stringLit(kv.Key)
						if !ok || !diagCodeRe.MatchString(key) {
							continue
						}
						doc, _ := stringLit(kv.Value)
						registered[key] = entry{pos: kv.Key.Pos(), doc: doc}
					}
				}
			}
		}
	}
	if codesLit == nil {
		return // no registry in this package; nothing to check against
	}

	// Every code literal constructed outside the table itself must be
	// a registered one.
	constructed := map[string]bool{}
	for _, f := range pass.Files {
		if testFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			if lit.Pos() >= codesLit.Pos() && lit.End() <= codesLit.End() {
				return true // the registry's own rows don't count as uses
			}
			code, ok := unquote(lit.Value)
			if !ok || !diagCodeRe.MatchString(code) {
				return true
			}
			constructed[code] = true
			if _, ok := registered[code]; !ok {
				pass.Reportf(lit.Pos(),
					"diagnostic code %q constructed but not registered in this package's Codes table",
					code)
			}
			return true
		})
	}

	// Every table row must be live and documented. Report in source
	// order (the rows are sorted into position order by the framework).
	for code, e := range registered {
		if !constructed[code] {
			pass.Reportf(e.pos,
				"diagnostic code %q is registered in Codes but never constructed in this package",
				code)
		}
		if e.doc == "" {
			pass.Reportf(e.pos, "diagnostic code %q has an empty doc string", code)
		}
	}
}

// stringLit extracts the value of a string literal expression.
func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	return unquote(lit.Value)
}

// unquote strips the quotes off a string literal's source text.
func unquote(src string) (string, bool) {
	s, err := strconv.Unquote(src)
	if err != nil {
		return "", false
	}
	return s, true
}

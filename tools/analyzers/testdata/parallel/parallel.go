// Package parallel stands in for balsabm/internal/parallel in the
// gostmt tests: the one package allowed to use naked go statements.
package parallel

func Go(fn func()) {
	go fn() // exempt package: fine
}

package gostmttest

func spawnInTest() {
	go func() {}() // test files are exempt: fine
}

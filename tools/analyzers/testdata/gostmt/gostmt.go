// Package gostmttest exercises the gostmt analyzer.
package gostmttest

import "sync"

func nakedGo() {
	go func() {}() // want `naked go statement`
}

func nakedGoNamed() {
	var wg sync.WaitGroup
	wg.Add(1)
	go worker(&wg) // want `naked go statement`
	wg.Wait()
}

func worker(wg *sync.WaitGroup) { wg.Done() }

func noGoroutines() {
	f := func() {}
	f() // plain call: fine
}

// Package mapitertest exercises the mapiter analyzer.
package mapitertest

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

func printsDirectly(m map[string]int) {
	for k, v := range m { // want `range over map produces output via fmt\.Printf`
		fmt.Printf("%s=%d\n", k, v)
	}
}

func printsNested(m map[string]int) {
	for k := range m { // want `range over map produces output via fmt\.Fprintln`
		if k != "" {
			fmt.Fprintln(os.Stdout, k)
		}
	}
}

func buildsString(m map[string]bool) string {
	var b strings.Builder
	for k := range m { // want `range over map produces output via b\.WriteString`
		b.WriteString(k)
	}
	return b.String()
}

func sortsFirst(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m { // collect only: fine
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k]) // range over slice: fine
	}
}

func rangesSlice(xs []string) {
	for _, x := range xs {
		fmt.Println(x)
	}
}

func silentMapLoop(m map[string]int) int {
	total := 0
	for _, v := range m { // no output in body: fine
		total += v
	}
	return total
}

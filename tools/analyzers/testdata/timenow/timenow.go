// Package timenowtest exercises the timenow analyzer. The test runs it
// under a deterministic package path (balsabm/internal/hfmin) where the
// clock reads must fire, and under a neutral path where they must not.
package timenowtest

import (
	"time"
)

func stampStart() time.Time {
	return time.Now() // want `time.Now in deterministic package`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since in deterministic package`
}

func remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want `time.Until in deterministic package`
}

func pureUses() time.Duration {
	d := 3 * time.Millisecond // constants and arithmetic: fine
	t := time.Unix(0, 0)      // fixed instants: fine
	_ = t.Add(d)
	return d
}

// shadowed has a local identifier named time; its Now is not the
// standard library's clock and must not fire.
func shadowed() {
	var time fakeClock
	_ = time.Now()
}

type fakeClock struct{}

func (fakeClock) Now() int { return 0 }

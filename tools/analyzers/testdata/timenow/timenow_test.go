package timenowtest

import "time"

func benchClock() time.Duration {
	start := time.Now() // test files are exempt: fine
	return time.Since(start)
}

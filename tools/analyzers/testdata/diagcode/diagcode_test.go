package diagcodetest

// Test files are exempt: an unregistered code here must not fire.
func testUse() {
	report("CH777")
}

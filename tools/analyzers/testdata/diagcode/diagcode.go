// Package diagcodetest exercises the diagcode analyzer: a Codes
// registry with a documented live row, an empty-doc row, a dead row,
// and constructions of registered and unregistered codes.
package diagcodetest

// Codes is the registry under test.
var Codes = map[string]string{
	"CH001": "documented and constructed",
	"CH002": "",                                 // want `diagnostic code "CH002" has an empty doc string`
	"CH003": "registered but never constructed", // want `diagnostic code "CH003" is registered in Codes but never constructed in this package`
	"HZ001": "hazver-tier code, documented and constructed",
}

func report(code string) {}

func use() {
	report("CH001")
	report("CH002")
	report("CH999") // want `diagnostic code "CH999" constructed but not registered in this package's Codes table`
	report("HZ001")
	report("HZ999") // want `diagnostic code "HZ999" constructed but not registered in this package's Codes table`
	report("not a code")
	report("CH12")   // shape mismatch: silent
	report("CH1234") // shape mismatch: silent
}

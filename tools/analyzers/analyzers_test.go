package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// runOnTestdata typechecks every .go file under testdata/<dir> (using
// the source importer — no export data is available in a test binary)
// and runs one analyzer over the package, returning "line: message"
// findings plus the `// want` expectations harvested from comments.
func runOnTestdata(t *testing.T, dir, pkgPath string, a *Analyzer) (got []diagnostic, wants map[int][]*regexp.Regexp, fset *token.FileSet) {
	t.Helper()
	pattern := filepath.Join("testdata", dir, "*.go")
	names, err := filepath.Glob(pattern)
	if err != nil || len(names) == 0 {
		t.Fatalf("no test sources match %s: %v", pattern, err)
	}
	sort.Strings(names)

	fset = token.NewFileSet()
	var files []*ast.File
	wants = map[int][]*regexp.Regexp{}
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pat, ok := wantPattern(c.Text)
				if !ok {
					continue
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", fset.Position(c.Pos()), pat, err)
				}
				line := fset.Position(c.Pos()).Line
				wants[line] = append(wants[line], re)
			}
		}
	}

	tc := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	info := typeInfo()
	pkg, err := tc.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	got = runAnalyzers(fset, files, pkg, info, pkgPath, []*Analyzer{a})
	return got, wants, fset
}

// wantPattern extracts the backquoted regexp from a `// want ...` comment.
func wantPattern(comment string) (string, bool) {
	body := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	if !strings.HasPrefix(body, "want ") {
		return "", false
	}
	body = strings.TrimSpace(strings.TrimPrefix(body, "want"))
	if len(body) >= 2 && body[0] == '`' && body[len(body)-1] == '`' {
		return body[1 : len(body)-1], true
	}
	return "", false
}

// checkWants matches findings against expectations one-to-one per line.
func checkWants(t *testing.T, got []diagnostic, wants map[int][]*regexp.Regexp, fset *token.FileSet) {
	t.Helper()
	unmatched := map[int][]*regexp.Regexp{}
	for line, res := range wants {
		unmatched[line] = append([]*regexp.Regexp(nil), res...)
	}
	for _, d := range got {
		pos := fset.Position(d.pos)
		res := unmatched[pos.Line]
		hit := -1
		for i, re := range res {
			if re.MatchString(d.message) {
				hit = i
				break
			}
		}
		if hit < 0 {
			t.Errorf("unexpected finding at %s: %s", pos, d.message)
			continue
		}
		unmatched[pos.Line] = append(res[:hit], res[hit+1:]...)
	}
	for line, res := range unmatched {
		for _, re := range res {
			t.Errorf("missing finding at line %d matching %q", line, re)
		}
	}
}

func TestMapiterFires(t *testing.T) {
	got, wants, fset := runOnTestdata(t, "mapiter", "example.com/mapitertest", mapiterAnalyzer)
	if len(got) == 0 {
		t.Fatal("mapiter produced no findings on its testdata")
	}
	checkWants(t, got, wants, fset)
}

func TestGostmtFires(t *testing.T) {
	got, wants, fset := runOnTestdata(t, "gostmt", "example.com/gostmttest", gostmtAnalyzer)
	if len(got) == 0 {
		t.Fatal("gostmt produced no findings on its testdata")
	}
	checkWants(t, got, wants, fset)
	// The _test.go file has a naked go statement; none of the findings
	// may point into it.
	for _, d := range got {
		if strings.HasSuffix(fset.Position(d.pos).Filename, "_test.go") {
			t.Errorf("gostmt flagged a test file: %s", fset.Position(d.pos))
		}
	}
}

func TestGostmtExemptsParallel(t *testing.T) {
	got, _, fset := runOnTestdata(t, "parallel", "balsabm/internal/parallel", gostmtAnalyzer)
	for _, d := range got {
		t.Errorf("gostmt fired inside internal/parallel: %s: %s", fset.Position(d.pos), d.message)
	}
}

func TestTimenowFires(t *testing.T) {
	// Under a deterministic package path every clock read must fire
	// (three want comments), nothing else may, and the _test.go file's
	// reads are exempt.
	got, wants, fset := runOnTestdata(t, "timenow", "balsabm/internal/hfmin", timenowAnalyzer)
	if len(got) != 3 {
		t.Fatalf("timenow produced %d findings on its testdata, want 3", len(got))
	}
	checkWants(t, got, wants, fset)
	for _, d := range got {
		if strings.HasSuffix(fset.Position(d.pos).Filename, "_test.go") {
			t.Errorf("timenow flagged a test file: %s", fset.Position(d.pos))
		}
	}
}

func TestTimenowExemptsNonDeterministicPackages(t *testing.T) {
	// The same sources under a path outside the deterministic list —
	// e.g. internal/flow, which owns the stopwatches — must stay silent.
	got, _, fset := runOnTestdata(t, "timenow", "balsabm/internal/flow", timenowAnalyzer)
	for _, d := range got {
		t.Errorf("timenow fired outside the deterministic packages: %s: %s", fset.Position(d.pos), d.message)
	}
}

func TestMapiterIgnoresGoroutineFreeLoops(t *testing.T) {
	// The testdata file's "fine" loops must stay silent: every finding
	// must sit on a line that carries a want comment.
	got, wants, fset := runOnTestdata(t, "mapiter", "example.com/mapitertest", mapiterAnalyzer)
	for _, d := range got {
		if len(wants[fset.Position(d.pos).Line]) == 0 {
			t.Errorf("finding on un-annotated line %s: %s", fset.Position(d.pos), d.message)
		}
	}
}

func TestParseEnableFlag(t *testing.T) {
	cases := []struct {
		arg  string
		name string
		val  bool
		ok   bool
	}{
		{"-mapiter", "mapiter", true, true},
		{"-gostmt=false", "gostmt", false, true},
		{"-gostmt=true", "gostmt", true, true},
		{"-unrelated", "", false, false},
		{"cfg.json", "", false, false},
	}
	for _, c := range cases {
		name, val, ok := parseEnableFlag(c.arg)
		if name != c.name || val != c.val || ok != c.ok {
			t.Errorf("parseEnableFlag(%q) = %q,%v,%v; want %q,%v,%v",
				c.arg, name, val, ok, c.name, c.val, c.ok)
		}
	}
}

func TestRunConfigWritesVetxAndSkips(t *testing.T) {
	// VetxOnly configs must still write the facts file and exit 0.
	dir := t.TempDir()
	vetx := filepath.Join(dir, "out.vetx")
	cfg := filepath.Join(dir, "pkg.cfg")
	body := fmt.Sprintf(`{"ImportPath":"x","VetxOnly":true,"VetxOutput":%q}`, vetx)
	if err := os.WriteFile(cfg, []byte(body), 0o666); err != nil {
		t.Fatal(err)
	}
	var errOut strings.Builder
	if code := runConfig(cfg, analyzers, &errOut); code != 0 {
		t.Fatalf("VetxOnly run exited %d: %s", code, errOut.String())
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("facts file not written: %v", err)
	}
}

func TestDiagcodeFires(t *testing.T) {
	got, wants, fset := runOnTestdata(t, "diagcode", "example.com/diagcodetest", diagcodeAnalyzer)
	if len(got) != 4 {
		t.Fatalf("diagcode produced %d findings on its testdata, want 4: %v", len(got), got)
	}
	checkWants(t, got, wants, fset)
	// The _test.go file constructs an unregistered code; none of the
	// findings may point into it.
	for _, d := range got {
		if strings.HasSuffix(fset.Position(d.pos).Filename, "_test.go") {
			t.Errorf("diagcode flagged a test file: %s", fset.Position(d.pos))
		}
	}
}

func TestDiagcodeExemptsPackagesWithoutCodes(t *testing.T) {
	// A package with no Codes registry (the mapiter testdata) must
	// stay silent even though it is full of ordinary strings.
	got, _, fset := runOnTestdata(t, "mapiter", "example.com/mapitertest", diagcodeAnalyzer)
	for _, d := range got {
		t.Errorf("diagcode fired without a Codes table: %s: %s", fset.Position(d.pos), d.message)
	}
}

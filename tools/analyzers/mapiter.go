package main

import (
	"go/ast"
	"go/types"
)

// mapiterAnalyzer flags `range` loops over maps whose bodies produce
// output (fmt print-family calls or Write*-style method calls). Map
// iteration order is deliberately randomized by the runtime, so such a
// loop emits its lines in a different order on every run — breaking
// the back-end's byte-identical-output guarantee. The fix is always
// the same: collect the keys, sort them, range over the sorted slice.
var mapiterAnalyzer = &Analyzer{
	Name: "mapiter",
	Doc:  "flag map iteration in output-producing code (nondeterministic order)",
	Run:  runMapiter,
}

func runMapiter(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if call := findOutputCall(pass, rng.Body); call != nil {
				pass.Reportf(rng.For,
					"range over map produces output via %s in nondeterministic order; collect and sort the keys first",
					callName(call))
			}
			return true
		})
	}
}

// findOutputCall returns the first output-producing call in the loop
// body: a call into package fmt's print family, or a Write/WriteString/
// WriteByte/WriteRune method call (strings.Builder, bytes.Buffer,
// io.Writer — any receiver counts).
func findOutputCall(pass *Pass, body *ast.BlockStmt) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if isFmtPrint(pass, sel) || isWriteMethod(pass, sel) {
			found = call
			return false
		}
		return true
	})
	return found
}

var fmtPrintNames = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Sprint": true, "Sprintf": true, "Sprintln": true,
	"Append": true, "Appendf": true, "Appendln": true,
}

// isFmtPrint reports whether sel is fmt.<print-family>.
func isFmtPrint(pass *Pass, sel *ast.SelectorExpr) bool {
	if !fmtPrintNames[sel.Sel.Name] {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "fmt"
}

var writeMethodNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

// isWriteMethod reports whether sel is a Write*-named method call.
func isWriteMethod(pass *Pass, sel *ast.SelectorExpr) bool {
	if !writeMethodNames[sel.Sel.Name] {
		return false
	}
	s, ok := pass.Info.Selections[sel]
	return ok && s.Kind() == types.MethodVal
}

// callName renders the callee for the diagnostic message.
func callName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			return id.Name + "." + sel.Sel.Name
		}
		return sel.Sel.Name
	}
	return "a call"
}

package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// main speaks the protocol cmd/go expects from a -vettool binary:
//
//   - `analyzers -V=full` prints an identification line so the build
//     cache can key on the tool;
//   - `analyzers -flags` prints the JSON description of the flags the
//     tool accepts, so cmd/go knows which of its own vet flags to
//     forward;
//   - `analyzers <cfg>.cfg` analyzes one package described by the JSON
//     config file, writing findings to stderr (exit 2 if any) and the
//     facts file named by VetxOutput (always, even when empty —
//     cmd/go caches it).
func main() {
	args := os.Args[1:]
	if len(args) == 1 {
		switch {
		case strings.HasPrefix(args[0], "-V="):
			// The version string must not be "devel": cmd/go refuses
			// to cache against a tool that calls itself a devel build.
			fmt.Printf("analyzers version go1.0-balsabm\n")
			return
		case args[0] == "-flags":
			printFlags()
			return
		}
	}
	// Filter out forwarded vet flags (-mapiter, -gostmt enable/disable).
	enabled := map[string]bool{}
	var cfgFile string
	for _, a := range args {
		if name, val, ok := parseEnableFlag(a); ok {
			enabled[name] = val
			continue
		}
		cfgFile = a
	}
	if cfgFile == "" {
		fmt.Fprintln(os.Stderr, "usage: analyzers [-mapiter] [-gostmt] <config>.cfg")
		os.Exit(1)
	}
	selected := analyzers
	if len(enabled) > 0 {
		selected = nil
		for _, a := range analyzers {
			if enabled[a.Name] {
				selected = append(selected, a)
			}
		}
	}
	os.Exit(runConfig(cfgFile, selected, os.Stderr))
}

// printFlags answers cmd/go's -flags query: a JSON array describing
// the flags this tool accepts. We expose one boolean per analyzer so
// `go vet -vettool=... -mapiter ./...` selects a single check.
func printFlags() {
	type jsonFlag struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	var fs []jsonFlag
	for _, a := range analyzers {
		fs = append(fs, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	data, err := json.Marshal(fs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// parseEnableFlag recognizes -name, -name=true, -name=false for the
// registered analyzers.
func parseEnableFlag(arg string) (name string, val bool, ok bool) {
	if !strings.HasPrefix(arg, "-") {
		return "", false, false
	}
	body := strings.TrimPrefix(arg, "-")
	val = true
	if i := strings.IndexByte(body, '='); i >= 0 {
		val = body[i+1:] == "true"
		body = body[:i]
	}
	for _, a := range analyzers {
		if a.Name == body {
			return body, val, true
		}
	}
	return "", false, false
}

// vetConfig mirrors the JSON config cmd/go writes for each package.
// Only the fields we consume are listed; unknown fields are ignored.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runConfig analyzes the single package described by cfgFile and
// returns the process exit code (0 clean, 1 internal error, 2 findings).
func runConfig(cfgFile string, selected []*Analyzer, stderr io.Writer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "analyzers: bad config %s: %v\n", cfgFile, err)
		return 1
	}

	// cmd/go caches the facts file; it must exist even though these
	// analyzers export no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(stderr, err)
			return 1
		}
		files = append(files, f)
	}

	// Type-check against the export data cmd/go already compiled,
	// resolving vendored/rewritten paths through ImportMap.
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor(compiler, "amd64"),
		Error:    func(error) {}, // collect all; the first is reported below
	}
	if cfg.GoVersion != "" {
		tc.GoVersion = cfg.GoVersion
	}
	info := typeInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "analyzers: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags := runAnalyzers(fset, files, pkg, info, cfg.ImportPath, selected)
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s\n", fset.Position(d.pos), d.message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

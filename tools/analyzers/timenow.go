package main

import (
	"go/ast"
	"go/types"
	"strings"
)

// timenowAnalyzer flags wall-clock reads (time.Now, time.Since,
// time.Until) inside the deterministic synthesis packages. Those
// packages promise that equal inputs produce byte-identical outputs —
// the property the dedup cache, the golden files, and Table 3 all rest
// on — and a clock read is a hidden input that silently breaks it.
// Timing belongs to the callers (internal/flow stamps its own stage
// metrics); the core packages compute, they do not observe. Test files
// are exempt.
var timenowAnalyzer = &Analyzer{
	Name: "timenow",
	Doc:  "flag wall-clock reads (time.Now/Since/Until) in deterministic synthesis packages",
	Run:  runTimenow,
}

// deterministicPkgs are the package-path suffixes whose results must be
// pure functions of their inputs. internal/flow, the daemon, and the
// CLIs are deliberately absent: they own the stopwatches.
var deterministicPkgs = []string{
	"internal/bm",
	"internal/bmlint",
	"internal/ch",
	"internal/chtobm",
	"internal/diag",
	"internal/hfmin",
	"internal/logic",
	"internal/minimalist",
	"internal/techmap",
	"internal/gates",
	"internal/netlint",
}

var clockReadNames = map[string]bool{
	"Now": true, "Since": true, "Until": true,
}

func runTimenow(pass *Pass) {
	deterministic := false
	for _, suffix := range deterministicPkgs {
		if strings.HasSuffix(pass.PkgPath, suffix) {
			deterministic = true
			break
		}
	}
	if !deterministic {
		return
	}
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !clockReadNames[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s in deterministic package; clock reads make equal inputs produce unequal outputs — time the call from internal/flow instead",
				sel.Sel.Name)
			return true
		})
	}
}

module balsabm

go 1.22

; The first event is empty, so the verb's activity is inferred from
; the second event — legal, but rarely what the author meant.
(verb () ((i r +)) ((i r -)) ())

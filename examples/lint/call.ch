; A clean caller/call pair that the optimizer can improve: "act" is a
; hideable internal channel (T1) and "callmux" is a 2-way call (T2).
(program caller (rep (enc-early (p-to-p passive go) (p-to-p active act))))
(program callmux
  (rep (mutex (enc-early (p-to-p passive act) (p-to-p active b))
              (enc-early (p-to-p passive c2) (p-to-p active b)))))

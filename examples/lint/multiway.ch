; Channel "x" touches three components; channels are point-to-point.
(program a (rep (enc-early (p-to-p passive go_a) (p-to-p active x))))
(program b (rep (enc-early (p-to-p passive x) (p-to-p active out_b))))
(program c (rep (enc-early (p-to-p passive x) (p-to-p active out_c))))

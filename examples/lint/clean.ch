; A well-formed two-stage control: no findings at any severity.
(rep
  (enc-early (p-to-p passive activate)
    (seq (p-to-p active left)
         (p-to-p active right))))

; Both mutex alternatives wait on "g" first: the environment cannot
; choose between them.
(mutex (p-to-p passive g)
       (seq (p-to-p passive g) (p-to-p active a)))

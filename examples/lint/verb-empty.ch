; A verb with no transitions at all does nothing; void says so.
(verb () () () ())

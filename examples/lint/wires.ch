; mult channels describe 1-to-n wire fans; zero wires is meaningless.
(mult-req passive m 0)

; Channel "x" is point-to-point in one component and mult-req in the
; other: the two ends disagree about the wires between them.
(program a (rep (enc-early (p-to-p passive go_a) (p-to-p active x))))
(program b (rep (enc-early (mult-req passive x 2) (p-to-p active done))))

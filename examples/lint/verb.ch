; Signal r rises twice without falling, and its three edges leave it
; away from its initial level.
(verb ((i r +)) ((i r +)) ((i r -)) ())

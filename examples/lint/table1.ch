; Three distinct Table 1 violations, one per line: mutex needs two
; passive arguments, enc-late needs a passive first argument, and
; seq-ov needs two active arguments.
(seq
  (mutex (p-to-p active e) (p-to-p active f))
  (enc-late (p-to-p active c) (p-to-p passive d))
  (seq-ov (p-to-p passive a) (p-to-p active b)))

; The rep has no break, so the channel after it never fires.
(seq
  (rep (enc-early (p-to-p passive p) (p-to-p active a)))
  (p-to-p active never))

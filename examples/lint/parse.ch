; "sideways" is not an activity; the parse failure itself becomes a
; CH000 diagnostic at the offending token.
(rep
  (p-to-p sideways x))

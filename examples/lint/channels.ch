; Channel wiring problems: "up" is driven from both ends, and
; component "c" connects to nothing else in the netlist.
(program a (rep (enc-early (p-to-p passive go_a) (p-to-p active up))))
(program b (rep (enc-early (p-to-p passive go_b) (p-to-p active up))))
(program c (rep (enc-early (p-to-p passive lonely) (p-to-p active nothing))))

; The break makes the rest of the seq unreachable, and the loop run
; at most once.
(rep (seq (break) (p-to-p active a)))

; break is only meaningful inside a rep loop.
(seq (break) (p-to-p active a))

// SSEM microprocessor core: run the paper's benchmark program (store
// 0..4 to consecutive memory words) on the full back-end, then show the
// per-controller synthesis report for both arms.
package main

import (
	"fmt"
	"log"

	"balsabm"
)

func main() {
	d, err := balsabm.DesignByName("ssem")
	if err != nil {
		log.Fatal(err)
	}
	r, err := balsabm.RunDesign(d, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchmark: %s\n\n", r.Bench)

	fmt.Printf("unoptimized arm: %d controllers, %.0f um2 control, %.2f ns\n",
		len(r.Unopt.Controllers), r.Unopt.ControlArea, r.Unopt.BenchTime)
	for _, c := range r.Unopt.Controllers {
		fmt.Printf("  %-16s %2d states %7.0f um2\n", c.Name, c.States, c.Area)
	}
	fmt.Printf("\noptimized arm: %d controllers, %.0f um2 control, %.2f ns\n",
		len(r.Opt.Controllers), r.Opt.ControlArea, r.Opt.BenchTime)
	for _, c := range r.Opt.Controllers {
		fmt.Printf("  %-16s %2d states %2d bits %3d products %7.0f um2\n",
			c.Name, c.States, c.StateBits, c.Products, c.Area)
	}
	fmt.Printf("\ncalls split: %v, restored: %v\n", r.Report.CallsSplit, r.Report.CallsRestored)
	fmt.Printf("speed improvement %.2f%%, area overhead %.2f%% (paper: 8.76%%, 24.17%%)\n",
		r.SpeedImprovement(), r.AreaOverhead())
}

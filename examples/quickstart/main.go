// Quickstart: model a handshake component in CH, compile it to a
// Burst-Mode specification, synthesize hazard-free logic, and map it
// onto the cell library — the paper's Sections 3 and 5 in a few calls.
package main

import (
	"fmt"
	"log"

	"balsabm"
)

func main() {
	// The paper's Section 3.4 sequencer: activated on passive P, it
	// performs handshakes on A1 then A2 before completing P.
	body, err := balsabm.ParseCH(`
	  (rep (enc-early (p-to-p passive P)
	         (seq (p-to-p active A1) (p-to-p active A2))))`)
	if err != nil {
		log.Fatal(err)
	}

	// Burst-Mode aware restrictions (Table 1).
	if err := balsabm.ValidateCH(body); err != nil {
		log.Fatal(err)
	}

	// CH -> Burst-Mode specification (Fig 3, left).
	prog := &balsabm.CHProgram{Name: "sequencer", Body: body}
	spec, err := balsabm.CompileCH(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Burst-Mode specification:")
	fmt.Println(spec)

	// Burst-Mode -> hazard-free two-level logic (the Minimalist step).
	ctrl, err := balsabm.Synthesize(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized: %d extra state bits, %d products, %d literals\n\n",
		ctrl.StateBits, ctrl.Products(), ctrl.Literals())
	fmt.Println(ctrl.Sol())

	// Technology mapping (speed mode, split levels) plus the Section 5
	// hazard audit.
	lib := balsabm.DefaultLibrary()
	nl, err := balsabm.Map(ctrl, balsabm.MapSpeedSplit, lib)
	if err != nil {
		log.Fatal(err)
	}
	if err := balsabm.AuditMapped(ctrl, nl, lib); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapped: %d cells, %.0f um2, %.2f ns critical path (hazard audit passed)\n",
		len(nl.Instances), nl.Area(lib), nl.CriticalDelay(lib))
}

// Systolic counter end to end: the design whose sequencer/call cells
// are the paper's Fig 5 example. Shows the control netlist collapsing
// under clustering (Fig 2) and the resulting Table 3 row.
package main

import (
	"fmt"
	"log"

	"balsabm"
)

func main() {
	d, err := balsabm.DesignByName("systolic-counter")
	if err != nil {
		log.Fatal(err)
	}

	// Fig 2: the control network before and after clustering.
	before := d.Control()
	after, report, err := balsabm.Optimize(before)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("control components: %d before, %d after clustering\n",
		len(before.Components), len(after.Components))
	for _, m := range report.Merges {
		fmt.Printf("  channel %-6s eliminated (merged %s into %s)\n", m.Channel, m.Activated, m.Activator)
	}
	fmt.Printf("calls distributed: %v\n\n", report.CallsSplit)

	// The full two-arm flow: baseline (hand cells) vs clustered
	// (speed-mode split mapping), both simulated at gate level on the
	// paper's benchmark (one full 8-handshake cycle).
	r, err := balsabm.RunDesign(d, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(balsabm.Table3([]*balsabm.DesignResult{r}))
	fmt.Printf("benchmark: %s\n", r.Bench)
}

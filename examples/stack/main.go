// Stack from Balsa source: compile the embedded stack.balsa with the
// balsa-c substitute, inspect the handshake-component netlist, then run
// the complete back-end on the resulting design (push/pop benchmark
// with a LIFO correctness check inside the flow).
package main

import (
	"fmt"
	"log"

	"balsabm"
)

func main() {
	src, err := balsabm.BalsaSource("stack")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Balsa source:")
	fmt.Println(src)

	// balsa-c: syntax-directed translation to handshake components.
	netlist, err := balsabm.CompileBalsa(src, "stack")
	if err != nil {
		log.Fatal(err)
	}
	s := netlist.Stats()
	fmt.Printf("compiled: %d control + %d datapath components\n\n", s.Control, s.Datapath)

	// The balsa-compiled design runs the same benchmark as the
	// hand-built Table 3 design: three pushes then three pops, with the
	// popped values checked for LIFO order.
	all, err := balsabm.BalsaDesigns()
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range all {
		if d.Name != "stack-balsa" {
			continue
		}
		r, err := balsabm.RunDesign(d, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("unoptimized: %6.2f ns with %d controllers\n", r.Unopt.BenchTime, len(r.Unopt.Controllers))
		fmt.Printf("optimized:   %6.2f ns with %d controllers (%.2f%% faster, %.2f%% larger)\n",
			r.Opt.BenchTime, len(r.Opt.Controllers), r.SpeedImprovement(), r.AreaOverhead())
	}
}

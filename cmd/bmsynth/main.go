// Command bmsynth synthesizes a Burst-Mode specification into
// hazard-free two-level logic and technology-maps it — the Minimalist +
// Design Compiler stage of the paper's flow.
//
// Usage:
//
//	bmsynth [-mode speed|area] [-verilog] file.bms
//
// The input is the .bms text format (see chc bms). Output: a
// Minimalist-style .sol report, a mapping summary, and optionally
// structural Verilog.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"balsabm/internal/bm"
	"balsabm/internal/cell"
	"balsabm/internal/minimalist"
	"balsabm/internal/netlint"
	"balsabm/internal/techmap"
)

func main() {
	mode := flag.String("mode", "speed", "mapping mode: speed (split NAND-NAND) or area (shared, peepholes)")
	verilog := flag.Bool("verilog", false, "print structural Verilog")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bmsynth [-mode speed|area] [-verilog] file.bms")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	sp, err := bm.Parse(string(data))
	if err != nil {
		fail(err)
	}
	if err := sp.Check(); err != nil {
		fail(err)
	}
	ctrl, err := minimalist.Synthesize(sp)
	if err != nil {
		fail(err)
	}
	fmt.Print(ctrl.Sol())

	m := techmap.SpeedSplit
	if *mode == "area" {
		m = techmap.AreaShared
	} else if *mode != "speed" {
		fail(fmt.Errorf("unknown mode %q", *mode))
	}
	lib := cell.AMS035()
	nl, err := techmap.MapController(ctrl, m, lib)
	if err != nil {
		fail(err)
	}
	if m == techmap.SpeedSplit {
		if err := techmap.CheckMapped(ctrl, nl, lib); err != nil {
			fail(fmt.Errorf("hazard audit: %w", err))
		}
		fmt.Println("; hazard audit: mapped logic matches the hazard-free covers")
	}
	// Structural audit of the mapped netlist: NL-errors are fatal (a
	// miswired single controller must not ship as Verilog), warnings
	// print as comments, and the NL200 static report becomes the
	// summary's static line.
	res := netlint.Audit(nl, lib)
	for _, d := range res.Diags {
		if d.Severity == netlint.SevInfo {
			continue
		}
		fmt.Printf("; netlint: %s\n", d.String())
	}
	if netlint.HasErrors(res.Diags) {
		fail(fmt.Errorf("netlint: mapped netlist has structural errors"))
	}
	fmt.Printf("; netlint static: %s\n", res.Stats)
	fmt.Printf("; %s\n", techmap.Summarize(nl, m, lib))
	counts := nl.CellCounts()
	cellNames := make([]string, 0, len(counts))
	for cellName := range counts {
		cellNames = append(cellNames, cellName)
	}
	sort.Strings(cellNames)
	for _, cellName := range cellNames {
		fmt.Printf(";   %-8s x%d\n", cellName, counts[cellName])
	}
	if *verilog {
		fmt.Print(techmap.VerilogModules(nl, lib))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bmsynth:", err)
	os.Exit(1)
}

// Command balsabm is the full back-end driver and experiment harness:
// it regenerates every table and figure of the paper's evaluation.
//
// Usage:
//
//	balsabm table1            legality matrix (Table 1)
//	balsabm table2            four-phase expansions (Table 2)
//	balsabm table3 [design]   full flow: speed/area rows (Table 3)
//	balsabm fig2 [design]     control collapse before/after (Fig 2)
//	balsabm fig3              BM specs: sequencer, call, passivator (Fig 3)
//	balsabm fig4              activation channel removal example (Fig 4)
//	balsabm fig5              call distribution example (Fig 5)
//	balsabm verify            Section 4.3 conformance experiment
//	balsabm flow <design>     detailed per-controller flow report
//	balsabm lint [file...]    run the chlint analyzer on CH source files
//	                          (no files: lint every built-in design);
//	                          -lint is an equivalent flag spelling.
//	                          Exit status 1 when errors are reported.
//	balsabm bmlint [file...]  compile CH control netlists to Burst-Mode
//	                          specifications and run the bmlint analyzer
//	                          on each (files ending in .bms are linted
//	                          directly as specs); no files: audit every
//	                          built-in design, both arms. Exit status 1
//	                          on BM-errors.
//	balsabm netlint [file...] synthesize CH control netlists (optimized
//	                          arm, no simulation) and run the netlint
//	                          structural audit on every mapped controller
//	                          plus the merged circuit; no files: audit
//	                          every built-in design, both arms. -netlint
//	                          is an equivalent flag spelling. Exit
//	                          status 1 on NL-errors.
//	balsabm hazver [file...]  synthesize CH control netlists and run the
//	                          hazver static hazard verification: every
//	                          specified input burst of every mapped
//	                          controller is checked for clean monotonic
//	                          transitions by ternary (0/1/X) analysis of
//	                          the merged circuit. Files use the arm named
//	                          by -mode (default opt); no files: verify
//	                          every built-in design, both arms. Exit
//	                          status 1 on HZ-errors.
//	balsabm audit [design...] run the six-checker static audit stack
//	                          (chlint, bmlint, hazard-free cover
//	                          re-verification, mapped-logic audit,
//	                          netlint, hazver) on built-in designs; one
//	                          summary line per design (-json: the
//	                          api.AuditResultJSON wire form with
//	                          per-checker counts). -audit is an
//	                          equivalent flag spelling. Exit status 1 on
//	                          failures.
//	balsabm synth <file.ch>   synthesize a CH control netlist (no
//	                          simulation): clustering + speed-split
//	                          mapping by default (-mode unopt for the
//	                          baseline arm), emitting per-controller
//	                          summaries and structural Verilog (-json:
//	                          the api.SynthResultJSON wire form). With
//	                          -incremental, unchanged controllers are
//	                          spliced in from the controller-grain
//	                          cache instead of resynthesized; -base
//	                          names the design file this one is an edit
//	                          of (or, with -server, a prior job ID) and
//	                          -data-dir makes the cache durable.
//	balsabm artifacts <design> <dir>
//	                          write the Fig 1 file pipeline (.bms, .sol,
//	                          .v per controller, both arms) into dir
//	balsabm cache <stats|gc|verify> <data-dir> [max-bytes]
//	                          inspect or maintain a balsabmd data
//	                          directory offline: stats summarizes
//	                          artifacts/refs/journal/checkpoints, gc
//	                          evicts oldest blobs past max-bytes and
//	                          sweeps dangling refs, verify re-hashes
//	                          every artifact (exit 1 on corruption).
//	                          -json emits the wire structs.
//	balsabm designs           list benchmark designs
//
// Flags (before the subcommand):
//
//	-j N      bound the flow's worker pool at N parallel leaf tasks
//	          (controller syntheses, clustering probes, simulations);
//	          0, the default, uses all CPU cores. Results are
//	          identical at any setting.
//	-stats    after flow runs, print synthesis-cache hit/miss counts
//	          and per-stage wall-clock totals to stderr
//	-json     emit machine-readable JSON instead of tables (table3,
//	          flow); the encoding is byte-identical to the balsabmd
//	          server responses (shared internal/api encoder)
//	-server URL
//	          thin-client mode: run table3/flow on a balsabmd daemon
//	          at URL instead of in process
//	-incremental
//	          attach the controller-grain synthesis cache to flow runs
//	          (synth, table3, flow, audit): controllers whose canonical
//	          subtree is already cached splice in instead of
//	          resynthesizing. Results are byte-identical either way;
//	          -stats shows the reused/resynthesized split.
//	-base PATH|JOBID
//	          the design this run is an edit of: a CH file locally, a
//	          prior job ID with -server. Locally the base is
//	          synthesized first (cheap when the cache is warm) so the
//	          edited design reuses every unchanged controller.
//	-data-dir DIR
//	          back the incremental cache with a balsabmd data
//	          directory, so reuse survives across runs and is shared
//	          with a daemon using the same directory
//	-cpuprofile FILE
//	          write a CPU profile of the run to FILE (go tool pprof)
//	-memprofile FILE
//	          write an allocation profile taken at exit to FILE
//
// Ctrl-C cancels an in-flight flow run cleanly: leaf tasks still
// waiting for a worker slot are abandoned and no pool goroutines are
// left behind.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"

	"balsabm/internal/analysis"
	"balsabm/internal/api"
	"balsabm/internal/cell"
	"balsabm/internal/ch"
	"balsabm/internal/chtobm"
	"balsabm/internal/core"
	"balsabm/internal/designs"
	"balsabm/internal/flow"
	"balsabm/internal/minimalist"
	"balsabm/internal/server"
	"balsabm/internal/store"
	"balsabm/internal/techmap"
)

var (
	workersFlag = flag.Int("j", 0, "parallel workers (0 = all CPU cores)")
	statsFlag   = flag.Bool("stats", false, "print cache and timing statistics after flow runs")
	jsonFlag    = flag.Bool("json", false, "emit JSON results (table3, flow, lint)")
	serverFlag  = flag.String("server", "", "run table3/flow/lint on a balsabmd daemon at this URL")
	lintFlag    = flag.Bool("lint", false, "lint CH source files (same as the lint subcommand)")
	netlintFlag = flag.Bool("netlint", false, "structurally audit synthesized netlists (same as the netlint subcommand)")
	auditFlag   = flag.Bool("audit", false, "run the full static audit stack (same as the audit subcommand)")
	cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile  = flag.String("memprofile", "", "write an allocation profile (taken at exit) to this file")

	incrFlag    = flag.Bool("incremental", false, "reuse cached controller syntheses with unchanged canonical subtrees")
	baseFlag    = flag.String("base", "", "base design for incremental synth: a CH file locally, a job ID with -server")
	dataDirFlag = flag.String("data-dir", "", "balsabmd data directory backing the incremental controller cache")
	modeFlag    = flag.String("mode", api.ModeOpt, "synth arm: opt (clustering + speed-split) or unopt (baseline)")
)

// ctlStore is the store opened for -data-dir, shared by every flow run
// of the invocation and closed at exit.
var ctlStore *store.Store

// controllerCache returns the controller-grain cache for -incremental
// runs: the -data-dir store when given, an in-process map otherwise,
// nil when -incremental is unset. A store that fails to open is fatal
// — silently running cold would defeat the flag.
func controllerCache() flow.ControllerCache {
	if !*incrFlag {
		return nil
	}
	if *dataDirFlag == "" {
		return memCtlCache
	}
	if ctlStore == nil {
		s, err := store.Open(*dataDirFlag, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "balsabm:", err)
			os.Exit(1)
		}
		ctlStore = s
	}
	return ctlStore
}

var memCtlCache = flow.NewMemoryControllerCache()

// closeCtlStore closes the -data-dir store if one was opened.
// Controller blobs are written atomically at Put time, so this is
// about releasing the journal handle, not flushing data.
func closeCtlStore() {
	if ctlStore != nil {
		ctlStore.Close()
		ctlStore = nil
	}
}

// startProfiles starts CPU profiling when requested and returns a
// cleanup that stops it and writes the exit heap profile. Profile
// errors are fatal: a silently missing profile defeats the point.
func startProfiles() func() {
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "balsabm:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "balsabm:", err)
			os.Exit(1)
		}
	}
	return func() {
		if *cpuProfile != "" {
			pprof.StopCPUProfile()
		}
		if *memProfile != "" {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "balsabm:", err)
				os.Exit(1)
			}
			runtime.GC() // materialize final allocation stats
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "balsabm:", err)
				os.Exit(1)
			}
			f.Close()
		}
	}
}

// flowOptions builds the flow configuration from the command-line
// flags; the returned metrics are printed when -stats is set.
func flowOptions() (*flow.Options, *flow.Metrics) {
	met := &flow.Metrics{}
	return &flow.Options{
		Workers:     *workersFlag,
		Metrics:     met,
		Controllers: controllerCache(),
	}, met
}

func printStats(met *flow.Metrics) {
	if *statsFlag {
		fmt.Fprint(os.Stderr, met.String())
	}
}

func main() {
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 && !*lintFlag && !*netlintFlag && !*auditFlag {
		usage()
		os.Exit(2)
	}
	stopProfiles := startProfiles()
	defer stopProfiles()
	defer closeCtlStore()
	// Ctrl-C / SIGTERM cancel in-flight flow runs cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cmd := flag.Arg(0)
	args := flag.Args()[1:]
	switch {
	case *lintFlag:
		cmd, args = "lint", flag.Args()
	case *netlintFlag:
		cmd, args = "netlint", flag.Args()
	case *auditFlag:
		cmd, args = "audit", flag.Args()
	}
	var err error
	switch cmd {
	case "table1":
		err = table1()
	case "table2":
		err = table2()
	case "table3":
		err = table3(ctx, args)
	case "fig2":
		err = fig2(args)
	case "fig3":
		err = fig3()
	case "fig4":
		err = fig4()
	case "fig5":
		err = fig5()
	case "verify":
		err = verify()
	case "lint":
		err = lintCmd(ctx, args)
	case "bmlint":
		err = bmlintCmd(ctx, args)
	case "netlint":
		err = netlintCmd(ctx, args)
	case "hazver":
		err = hazverCmd(ctx, args)
	case "audit":
		err = auditCmd(ctx, args)
	case "flow":
		err = flowReport(ctx, args)
	case "synth":
		err = synthCmd(ctx, args)
	case "artifacts":
		err = artifacts(args)
	case "cache":
		err = cacheCmd(args)
	case "designs":
		for _, d := range designs.All() {
			fmt.Println(d.Name)
		}
	default:
		usage()
		os.Exit(2)
	}
	if err == errLintFindings {
		closeCtlStore()
		stopProfiles()
		stop()
		os.Exit(1) // diagnostics already printed, vet-style
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "balsabm:", err)
		closeCtlStore()
		stopProfiles()
		stop()
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: balsabm [-j N] [-stats] [-json] [-server URL] [-incremental] [-base PATH|JOBID] [-data-dir DIR] [-cpuprofile FILE] [-memprofile FILE] <table1|table2|table3|fig2|fig3|fig4|fig5|verify|flow|synth|lint|bmlint|netlint|hazver|audit|artifacts|cache|designs> [args]`)
	flag.PrintDefaults()
}

// cacheCmd inspects or maintains a balsabmd data directory without the
// daemon: stats, gc (optionally bounded), and a full artifact
// re-hashing pass. Opening the store also replays + compacts the
// journal and sweeps stray temp files, so even `cache stats` leaves
// the directory tidier than it found it.
func cacheCmd(args []string) error {
	if len(args) < 2 || len(args) > 3 {
		return fmt.Errorf("usage: balsabm cache <stats|gc|verify> <data-dir> [max-bytes]")
	}
	op, dir := args[0], args[1]
	if dir == "" {
		return fmt.Errorf("cache: empty data-dir")
	}
	var maxBytes int64
	if len(args) == 3 {
		var err error
		maxBytes, err = strconv.ParseInt(args[2], 10, 64)
		if err != nil || maxBytes < 0 {
			return fmt.Errorf("cache: bad max-bytes %q", args[2])
		}
		if op != "gc" {
			return fmt.Errorf("cache: max-bytes only applies to gc")
		}
	}
	// Open without a bound so inspection never evicts; gc applies the
	// bound explicitly below.
	s, err := store.Open(dir, 0)
	if err != nil {
		return err
	}
	defer s.Close()
	switch op {
	case "stats":
		st, err := s.Stats()
		if err != nil {
			return err
		}
		if *jsonFlag {
			// The daemon's /metrics "store" object and this command
			// share api.FromStoreStats, so the two surfaces agree.
			return emitJSON(api.FromStoreStats(st))
		}
		fmt.Printf("artifacts:   %d (%d bytes)\n", st.Artifacts, st.ArtifactBytes)
		fmt.Printf("refs:        %d job results, %d controllers\n", st.Refs, st.ControllerRefs)
		fmt.Printf("jobs:        %d journaled, %d resumable\n", st.Jobs, st.Interrupted)
		fmt.Printf("checkpoints: %d stage payloads\n", st.Checkpoints)
		return nil
	case "gc":
		s.SetMaxBytes(maxBytes)
		res, err := s.GC()
		if err != nil {
			return err
		}
		if *jsonFlag {
			return emitJSON(res)
		}
		fmt.Printf("evicted %d blobs (%d bytes), dropped %d dangling refs; %d blobs (%d bytes) live\n",
			res.Evicted, res.FreedBytes, res.DanglingRefs, res.LiveBlobs, res.LiveBytes)
		return nil
	case "verify":
		res, err := s.Verify()
		if err != nil {
			return err
		}
		if *jsonFlag {
			if err := emitJSON(res); err != nil {
				return err
			}
		} else {
			fmt.Printf("checked %d artifacts, %d corrupt\n", res.Checked, len(res.Corrupt))
			for _, h := range res.Corrupt {
				fmt.Printf("  corrupt: %s\n", h)
			}
		}
		if len(res.Corrupt) > 0 {
			return fmt.Errorf("cache: %d corrupt artifacts", len(res.Corrupt))
		}
		return nil
	}
	return fmt.Errorf("cache: unknown operation %q", op)
}

// synthCmd synthesizes one CH control netlist without simulation,
// locally or (with -server) on a daemon. It shares server.RunSynth
// with the daemon's job executor, so both paths emit byte-identical
// api.SynthResultJSON. With -incremental the controller cache from
// controllerCache() is attached; -base names the design this one is
// an edit of — locally a CH file that is synthesized first to seed
// the cache (all reuse when a -data-dir store is warm), with -server
// a prior job ID forwarded as baseJobID.
func synthCmd(ctx context.Context, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: balsabm synth <file.ch>")
	}
	mode := *modeFlag
	if mode != api.ModeOpt && mode != api.ModeUnopt {
		return fmt.Errorf("synth: unknown mode %q (want opt or unopt)", mode)
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	if *serverFlag != "" {
		c := server.NewClient(*serverFlag)
		req := api.JobRequest{
			Kind: api.KindSynth, Source: string(data), Mode: mode,
			Config:    api.FlowConfig{Workers: *workersFlag},
			BaseJobID: *baseFlag,
		}
		res, err := c.Run(ctx, req)
		if err != nil {
			return err
		}
		return emitSynth(res.Synth)
	}
	met := &flow.Metrics{}
	defer printStats(met)
	ctl := controllerCache()
	cfg := api.FlowConfig{Workers: *workersFlag}
	if *baseFlag != "" {
		if ctl == nil {
			return fmt.Errorf("synth: -base requires -incremental")
		}
		baseData, err := os.ReadFile(*baseFlag)
		if err != nil {
			return fmt.Errorf("synth: reading -base: %w", err)
		}
		if *statsFlag {
			if bn, berr := core.ParseNetlist(string(baseData)); berr == nil {
				if en, eerr := core.ParseNetlist(string(data)); eerr == nil {
					fmt.Fprintln(os.Stderr, flow.PlanIncremental(bn, en).String())
				}
			}
		}
		// Seed the cache from the base design; its result is
		// discarded and its metrics kept separate so -stats reports
		// the edited design's reuse split, not the seeding pass.
		seedReq := api.JobRequest{Kind: api.KindSynth, Source: string(baseData), Mode: mode, Config: cfg}
		if _, err := server.RunSynth(ctx, seedReq, &flow.Metrics{}, ctl); err != nil {
			return fmt.Errorf("synth: base %s: %w", *baseFlag, err)
		}
	}
	res, err := server.RunSynth(ctx, api.JobRequest{Kind: api.KindSynth, Source: string(data), Mode: mode, Config: cfg}, met, ctl)
	if err != nil {
		return err
	}
	return emitSynth(res.Synth)
}

// emitSynth prints a synth result: the wire form under -json, a
// per-controller summary table otherwise.
func emitSynth(s *api.SynthResultJSON) error {
	if *jsonFlag {
		return emitJSON(s)
	}
	fmt.Printf("mode %s: %d controllers\n", s.Mode, len(s.Controllers))
	for _, c := range s.Controllers {
		solver := "greedy"
		if c.Controller.Exact {
			solver = "exact"
		}
		fmt.Printf("  %-20s %3d states  %2d bits  %3d products  %3d cells  area %6.1f  critical %.2f ns  (%s)\n",
			c.Controller.Name, c.Controller.States, c.Controller.StateBits,
			c.Controller.Products, c.Controller.Cells, c.Controller.Area,
			c.Controller.Critical, solver)
	}
	if s.Netlint != nil {
		fmt.Printf("netlint %s: %d errors, %d warnings, %d infos\n",
			s.Netlint.Circuit, s.Netlint.Errors, s.Netlint.Warnings, s.Netlint.Infos)
	}
	return nil
}

// errLintFindings reports that lint printed error diagnostics; main
// exits 1 without the generic error banner.
var errLintFindings = errors.New("lint found errors")

// lintCmd runs the chlint analyzer. With file arguments it lints each
// CH source file; with none it lints the control netlists of every
// built-in design. -json emits the api wire form (one object for a
// single file — byte-identical to POST /api/v1/lint — or a list);
// -server delegates the analysis to a balsabmd daemon. Exit status is
// 1 when any error-severity diagnostic is reported.
func lintCmd(ctx context.Context, args []string) error {
	var results []*api.LintResultJSON
	if len(args) == 0 {
		for _, d := range designs.All() {
			results = append(results, api.LintResult(d.Name, analysis.Analyze(d.Control())))
		}
	}
	for _, file := range args {
		data, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		var res *api.LintResultJSON
		if *serverFlag != "" {
			res, err = server.NewClient(*serverFlag).Lint(ctx, api.LintRequest{Source: string(data), File: file})
			if err != nil {
				return err
			}
		} else {
			res = api.LintResult(file, analysis.LintSource(string(data)))
		}
		results = append(results, res)
	}
	failed := false
	for _, res := range results {
		if res.Errors > 0 {
			failed = true
		}
	}
	if *jsonFlag {
		if len(results) == 1 {
			if err := emitJSON(results[0]); err != nil {
				return err
			}
		} else if err := emitJSON(results); err != nil {
			return err
		}
	} else {
		for _, res := range results {
			for _, d := range res.Diags {
				fmt.Println(renderDiagJSON(res.File, d))
			}
		}
	}
	if failed {
		return errLintFindings
	}
	return nil
}

// renderDiagJSON renders a wire-form diagnostic in the analyzer's
// vet-style text form (remote results arrive as JSON, so the text
// renderer on analysis.Diag is out of reach).
func renderDiagJSON(file string, d api.DiagJSON) string {
	var sb strings.Builder
	if file != "" {
		sb.WriteString(file)
		sb.WriteString(":")
	}
	if d.Line > 0 {
		fmt.Fprintf(&sb, "%d:%d:", d.Line, d.Col)
	}
	if sb.Len() > 0 {
		sb.WriteString(" ")
	}
	fmt.Fprintf(&sb, "%s: %s: %s", d.Severity, d.Code, d.Message)
	for _, n := range d.Notes {
		sb.WriteString("\n\t")
		sb.WriteString(n)
	}
	return sb.String()
}

// bmlintCmd compiles CH control netlists to Burst-Mode specifications
// and runs the bmlint analyzer on each component spec; files ending in
// .bms are linted directly as specs. Local runs call the same
// server.RunBmlint the daemon's POST /api/v1/bmlint handler uses, and
// -server delegates to a daemon, so -json output is byte-identical
// either way. With no arguments it audits every built-in design, both
// arms. Exit status is 1 when any error-severity BMxxx finding is
// reported.
func bmlintCmd(ctx context.Context, args []string) error {
	if len(args) == 0 {
		return bmlintDesigns(ctx)
	}
	var results []*api.BmlintResultJSON
	for _, file := range args {
		data, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		name := strings.TrimSuffix(filepath.Base(file), filepath.Ext(file))
		req := api.BmlintRequest{Source: string(data), Name: name}
		if filepath.Ext(file) == ".bms" {
			req.Format = api.FormatBMS
		}
		var res *api.BmlintResultJSON
		if *serverFlag != "" {
			res, err = server.NewClient(*serverFlag).Bmlint(ctx, req)
		} else {
			res, err = server.RunBmlint(ctx, req)
		}
		if err != nil {
			return err
		}
		results = append(results, res)
	}
	return emitBmlint(results)
}

// bmlintDesigns audits the built-in designs, both arms, locally.
func bmlintDesigns(ctx context.Context) error {
	var results []*api.BmlintResultJSON
	for _, d := range designs.All() {
		for _, arm := range []string{"unopt", "opt"} {
			n := d.Control()
			if arm == "opt" {
				var err error
				n, _, err = core.OptimizeOpt(n, core.Options{Workers: *workersFlag, Ctx: ctx})
				if err != nil {
					return err
				}
			}
			specs, err := flow.BmlintNetlist(n)
			if err != nil {
				return err
			}
			res := api.BmlintResult(specs)
			res.Design, res.Mode = d.Name, arm
			results = append(results, res)
		}
	}
	return emitBmlint(results)
}

// emitBmlint prints bmlint results (-json: the wire form; otherwise
// vet-style diagnostics) and returns errLintFindings on BM-errors.
func emitBmlint(results []*api.BmlintResultJSON) error {
	failed := false
	for _, res := range results {
		for _, rep := range res.Specs {
			if rep.Errors > 0 {
				failed = true
			}
		}
	}
	if *jsonFlag {
		if len(results) == 1 {
			if err := emitJSON(results[0]); err != nil {
				return err
			}
		} else if err := emitJSON(results); err != nil {
			return err
		}
	} else {
		for _, res := range results {
			for _, rep := range res.Specs {
				unit := rep.Spec
				if res.Design != "" {
					unit = res.Design + "." + res.Mode + "." + rep.Spec
				}
				for _, d := range rep.Diags {
					fmt.Println(renderBmlintDiagJSON(unit, d))
				}
			}
		}
	}
	if failed {
		return errLintFindings
	}
	return nil
}

// renderBmlintDiagJSON renders a wire-form spec diagnostic in bmlint's
// vet-style text form (remote results arrive as JSON, so the text
// renderer on bmlint.Diag is out of reach).
func renderBmlintDiagJSON(spec string, d api.BmlintDiagJSON) string {
	var sb strings.Builder
	if spec != "" {
		sb.WriteString(spec)
		sb.WriteString(":")
	}
	var loc []string
	if d.Arc >= 0 {
		loc = append(loc, fmt.Sprintf("arc %d (%s)", d.Arc, d.ArcText))
	} else if d.State >= 0 {
		loc = append(loc, fmt.Sprintf("state %d", d.State))
	}
	if d.Sig != "" {
		loc = append(loc, fmt.Sprintf("signal %q", d.Sig))
	}
	if len(loc) > 0 {
		if sb.Len() > 0 {
			sb.WriteString(" ")
		}
		sb.WriteString(strings.Join(loc, " "))
		sb.WriteString(":")
	}
	if sb.Len() > 0 {
		sb.WriteString(" ")
	}
	fmt.Fprintf(&sb, "%s: %s: %s", d.Severity, d.Code, d.Message)
	for _, n := range d.Notes {
		sb.WriteString("\n\t")
		sb.WriteString(n)
	}
	return sb.String()
}

// netlintCmd synthesizes designs (no simulation) and runs the netlint
// structural audit. With file arguments each file is a CH control
// netlist, synthesized through the optimized arm (clustering +
// speed-split mapping, matching the POST /api/v1/netlint default) —
// locally via the same server.RunNetlint the daemon uses, or remotely
// with -server, so -json output is byte-identical either way. With no
// arguments it audits every built-in design, both arms. Exit status is
// 1 when any error-severity NLxxx finding is reported.
func netlintCmd(ctx context.Context, args []string) error {
	if len(args) == 0 {
		return netlintDesigns(ctx)
	}
	var results []*api.NetlintResultJSON
	for _, file := range args {
		data, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		name := strings.TrimSuffix(filepath.Base(file), filepath.Ext(file))
		req := api.NetlintRequest{
			Source: string(data), Name: name,
			Config: api.FlowConfig{Workers: *workersFlag},
		}
		var res *api.NetlintResultJSON
		if *serverFlag != "" {
			res, err = server.NewClient(*serverFlag).Netlint(ctx, req)
		} else {
			res, err = server.RunNetlint(ctx, req)
		}
		if err != nil {
			return err
		}
		results = append(results, res)
	}
	return emitNetlint(results)
}

// netlintDesigns audits the built-in designs, both arms, locally.
func netlintDesigns(ctx context.Context) error {
	opt, met := flowOptions()
	defer printStats(met)
	var results []*api.NetlintResultJSON
	for _, d := range designs.All() {
		for _, arm := range []string{"unopt", "opt"} {
			n := d.Control()
			mode := techmap.AreaShared
			if arm == "opt" {
				var err error
				n, _, err = core.OptimizeOpt(n, core.Options{Workers: *workersFlag, Ctx: ctx})
				if err != nil {
					return err
				}
				mode = techmap.SpeedSplit
			}
			ctrls, merged, err := flow.NetlintNetlist(ctx, d.Name, arm, n, mode, opt)
			if err != nil {
				return err
			}
			results = append(results, api.NetlintResult(arm, ctrls, merged))
		}
	}
	return emitNetlint(results)
}

// emitNetlint prints netlint results (-json: the wire form; otherwise
// vet-style diagnostics) and returns errLintFindings on NL-errors.
func emitNetlint(results []*api.NetlintResultJSON) error {
	failed := false
	for _, res := range results {
		reports := append(append([]api.NetlintReportJSON{}, res.Controllers...), res.Merged)
		for _, rep := range reports {
			if rep.Errors > 0 {
				failed = true
			}
		}
	}
	if *jsonFlag {
		if len(results) == 1 {
			if err := emitJSON(results[0]); err != nil {
				return err
			}
		} else if err := emitJSON(results); err != nil {
			return err
		}
	} else {
		for _, res := range results {
			for _, rep := range append(append([]api.NetlintReportJSON{}, res.Controllers...), res.Merged) {
				for _, d := range rep.Diags {
					fmt.Println(renderNetlintDiagJSON(rep.Circuit, d))
				}
			}
		}
	}
	if failed {
		return errLintFindings
	}
	return nil
}

// renderNetlintDiagJSON renders a wire-form netlist diagnostic in
// netlint's vet-style text form (remote results arrive as JSON, so the
// text renderer on netlint.Diag is out of reach).
func renderNetlintDiagJSON(circuit string, d api.NetlintDiagJSON) string {
	var sb strings.Builder
	if circuit != "" {
		sb.WriteString(circuit)
		sb.WriteString(":")
	}
	var loc []string
	if d.Inst >= 0 {
		loc = append(loc, fmt.Sprintf("g%d(%s)", d.Inst, d.Cell))
	}
	if d.Net >= 0 {
		loc = append(loc, fmt.Sprintf("net %q", d.Name))
	}
	if len(loc) > 0 {
		if sb.Len() > 0 {
			sb.WriteString(" ")
		}
		sb.WriteString(strings.Join(loc, " "))
		sb.WriteString(":")
	}
	if sb.Len() > 0 {
		sb.WriteString(" ")
	}
	fmt.Fprintf(&sb, "%s: %s: %s", d.Severity, d.Code, d.Message)
	for _, n := range d.Notes {
		sb.WriteString("\n\t")
		sb.WriteString(n)
	}
	return sb.String()
}

// hazverCmd synthesizes designs (no simulation) and runs the hazver
// static hazard verification on the merged mapped circuits. With file
// arguments each file is a CH control netlist, verified through the
// arm named by -mode (default opt: clustering + speed-split mapping,
// matching the POST /api/v1/hazver default) — locally via the same
// server.RunHazver the daemon uses, or remotely with -server, so
// -json output is byte-identical either way. With no arguments it
// verifies every built-in design, both arms. Exit status is 1 when
// any error-severity HZxxx finding is reported.
func hazverCmd(ctx context.Context, args []string) error {
	if len(args) == 0 {
		return hazverDesigns(ctx)
	}
	mode := *modeFlag
	if mode != api.ModeOpt && mode != api.ModeUnopt {
		return fmt.Errorf("hazver: unknown mode %q (want opt or unopt)", mode)
	}
	var results []*api.HazverResultJSON
	for _, file := range args {
		data, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		name := strings.TrimSuffix(filepath.Base(file), filepath.Ext(file))
		req := api.HazverRequest{
			Source: string(data), Name: name, Mode: mode,
			Config: api.FlowConfig{Workers: *workersFlag},
		}
		var res *api.HazverResultJSON
		if *serverFlag != "" {
			res, err = server.NewClient(*serverFlag).Hazver(ctx, req)
		} else {
			res, err = server.RunHazver(ctx, req)
		}
		if err != nil {
			return err
		}
		results = append(results, res)
	}
	return emitHazver(results)
}

// hazverDesigns verifies the built-in designs, both arms, locally.
func hazverDesigns(ctx context.Context) error {
	opt, met := flowOptions()
	defer printStats(met)
	var results []*api.HazverResultJSON
	for _, d := range designs.All() {
		for _, arm := range []string{"unopt", "opt"} {
			n := d.Control()
			mode := techmap.AreaShared
			if arm == "opt" {
				var err error
				n, _, err = core.OptimizeOpt(n, core.Options{Workers: *workersFlag, Ctx: ctx})
				if err != nil {
					return err
				}
				mode = techmap.SpeedSplit
			}
			res, err := flow.HazverNetlist(ctx, d.Name, arm, n, mode, opt)
			if err != nil {
				return err
			}
			results = append(results, api.HazverResult(arm, res))
		}
	}
	return emitHazver(results)
}

// emitHazver prints hazver results (-json: the wire form; otherwise
// vet-style diagnostics plus one stats line per circuit) and returns
// errLintFindings on HZ-errors.
func emitHazver(results []*api.HazverResultJSON) error {
	failed := false
	for _, res := range results {
		if res.Report.Errors > 0 {
			failed = true
		}
	}
	if *jsonFlag {
		if len(results) == 1 {
			if err := emitJSON(results[0]); err != nil {
				return err
			}
		} else if err := emitJSON(results); err != nil {
			return err
		}
	} else {
		for _, res := range results {
			for _, d := range res.Report.Diags {
				fmt.Println(renderHazverDiagJSON(res.Report.Circuit, d))
			}
		}
	}
	if failed {
		return errLintFindings
	}
	return nil
}

// renderHazverDiagJSON renders a wire-form hazard diagnostic in
// hazver's vet-style text form (remote results arrive as JSON, so the
// text renderer on hazver.Diag is out of reach).
func renderHazverDiagJSON(circuit string, d api.HazverDiagJSON) string {
	var sb strings.Builder
	if circuit != "" {
		sb.WriteString(circuit)
		sb.WriteString(":")
	}
	if d.Fn != "" {
		if sb.Len() > 0 {
			sb.WriteString(" ")
		}
		if d.Tr < 0 {
			fmt.Fprintf(&sb, "fn %q:", d.Fn)
		} else {
			fmt.Fprintf(&sb, "fn %q burst %d (%s):", d.Fn, d.Tr, d.Burst)
		}
	}
	if sb.Len() > 0 {
		sb.WriteString(" ")
	}
	fmt.Fprintf(&sb, "%s: %s: %s", d.Severity, d.Code, d.Message)
	for _, n := range d.Notes {
		sb.WriteString("\n\t")
		sb.WriteString(n)
	}
	return sb.String()
}

// auditCmd runs the unified static audit stack on built-in designs
// (all of them, or the named ones): chlint, Burst-Mode spec checks,
// hazard-free cover re-verification, the speed-split mapped-logic
// audit, netlint on every controller and merged circuit, and the
// hazver static hazard verification of every specified burst. One
// summary line per design; failing designs additionally print their
// error and warning findings. -json instead emits one
// api.AuditResultJSON per design with machine-readable per-checker
// error/warning/checked counts.
func auditCmd(ctx context.Context, args []string) error {
	all := args
	if len(all) == 0 {
		for _, d := range designs.All() {
			all = append(all, d.Name)
		}
	}
	opt, met := flowOptions()
	defer printStats(met)
	failed := false
	var audits []*api.AuditResultJSON
	for _, name := range all {
		d, err := designs.ByName(name)
		if err != nil {
			return err
		}
		a, err := flow.AuditDesignCtx(ctx, d, opt)
		if err != nil {
			return err
		}
		if *jsonFlag {
			audits = append(audits, api.FromAuditResult(a))
		} else {
			fmt.Println(a.Summary())
			if !a.OK() {
				fmt.Print(a.Details())
			}
		}
		if !a.OK() {
			failed = true
		}
	}
	if *jsonFlag {
		if len(audits) == 1 {
			if err := emitJSON(audits[0]); err != nil {
				return err
			}
		} else if err := emitJSON(audits); err != nil {
			return err
		}
	}
	if failed {
		return errLintFindings
	}
	return nil
}

func table1() error {
	ops := []ch.OpKind{ch.EncEarly, ch.EncLate, ch.EncMiddle, ch.Seq, ch.SeqOv, ch.Mutex}
	combos := [][2]ch.Activity{{ch.Active, ch.Active}, {ch.Active, ch.Passive},
		{ch.Passive, ch.Active}, {ch.Passive, ch.Passive}}
	fmt.Println("Table 1: Legal Combinations of Operators and Arguments")
	fmt.Printf("%-12s %8s %8s %8s %8s\n", "Operator", "a/a", "a/p", "p/a", "p/p")
	for _, op := range ops {
		row := []string{}
		for _, c := range combos {
			if ch.Legal(op, c[0], c[1]) {
				row = append(row, "Yes")
			} else {
				row = append(row, "No")
			}
		}
		fmt.Printf("%-12s %8s %8s %8s %8s\n", op, row[0], row[1], row[2], row[3])
	}
	return nil
}

func table2() error {
	fmt.Println("Table 2: The Four-Phase Expansion of CH Operators")
	ops := []string{"enc-early", "enc-late", "enc-middle", "seq", "seq-ov", "mutex"}
	combos := [][2]string{{"active", "active"}, {"active", "passive"},
		{"passive", "active"}, {"passive", "passive"}}
	for _, op := range ops {
		for _, c := range combos {
			src := fmt.Sprintf("(%s (p-to-p %s a) (p-to-p %s b))", op, c[0], c[1])
			e, err := ch.Parse(src)
			if err != nil {
				return err
			}
			x, err := ch.Expand(e)
			if err != nil {
				fmt.Printf("%-12s %s/%s:  -\n", op, c[0][:1], c[1][:1])
				continue
			}
			fmt.Printf("%-12s %s/%s:  %s\n", op, c[0][:1], c[1][:1], x)
		}
	}
	return nil
}

// emitJSON prints a wire value through the shared api encoder — the
// same bytes a balsabmd daemon would serve for the same result.
func emitJSON(v any) error {
	b, err := api.Encode(v)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(b)
	return err
}

// remoteRows runs table3 work on the daemon named by -server.
func remoteRows(ctx context.Context, args []string) ([]*api.DesignResultJSON, error) {
	c := server.NewClient(*serverFlag)
	cfg := api.FlowConfig{Workers: *workersFlag}
	if len(args) == 1 {
		res, err := c.Run(ctx, api.JobRequest{Kind: api.KindDesign, Design: args[0], Config: cfg})
		if err != nil {
			return nil, err
		}
		return []*api.DesignResultJSON{res.Design}, nil
	}
	res, err := c.Run(ctx, api.JobRequest{Kind: api.KindTable3, Config: cfg})
	if err != nil {
		return nil, err
	}
	return res.Table3, nil
}

func table3(ctx context.Context, args []string) error {
	if *serverFlag != "" {
		rows, err := remoteRows(ctx, args)
		if err != nil {
			return err
		}
		if *jsonFlag {
			return emitJSON(rows)
		}
		results := make([]*flow.DesignResult, len(rows))
		for i, row := range rows {
			results[i] = row.ToFlow()
		}
		fmt.Print(flow.Table3(results))
		return nil
	}
	opt, met := flowOptions()
	defer printStats(met)
	if len(args) == 1 {
		d, err := designs.ByName(args[0])
		if err != nil {
			return err
		}
		r, err := flow.RunDesignCtx(ctx, d, opt)
		if err != nil {
			return err
		}
		if *jsonFlag {
			return emitJSON(api.FromDesignResults([]*flow.DesignResult{r}))
		}
		fmt.Print(flow.Table3([]*flow.DesignResult{r}))
		return nil
	}
	results, err := flow.RunAllCtx(ctx, opt)
	if err != nil {
		return err
	}
	if *jsonFlag {
		return emitJSON(api.FromDesignResults(results))
	}
	fmt.Print(flow.Table3(results))
	fmt.Println()
	fmt.Println("Paper's Table 3 for comparison (AMS 0.35um, post-layout):")
	fmt.Println("  Systolic counter     51.29 -> 40.43 ns  (21.16%)   area +27.09%")
	fmt.Println("  Wagging register     49.82 -> 42.43 ns  (14.83%)   area +23.92%")
	fmt.Println("  Stack               121.58 -> 107.70 ns (11.41%)   area +18.66%")
	fmt.Println("  Microprocessor core  66.48 -> 60.65 ns  ( 8.76%)   area +24.17%")
	return nil
}

func fig2(args []string) error {
	names := []string{"systolic-counter", "wagging-register", "stack", "ssem"}
	if len(args) == 1 {
		names = args
	}
	fmt.Println("Fig 2: control optimization — components before/after clustering")
	for _, name := range names {
		d, err := designs.ByName(name)
		if err != nil {
			return err
		}
		before, after, rep, err := flow.Fig2Summary(d)
		if err != nil {
			return err
		}
		fmt.Printf("%-18s before: %-48s after: %s\n", name, before, after)
		for _, m := range rep.Merges {
			fmt.Printf("    merged %s into %s (channel %s eliminated)\n", m.Activated, m.Activator, m.Channel)
		}
		if len(rep.CallsRestored) > 0 {
			fmt.Printf("    calls restored: %s\n", strings.Join(rep.CallsRestored, ", "))
		}
	}
	return nil
}

func fig3() error {
	examples := []struct{ name, src string }{
		{"sequencer", `(rep (enc-early (p-to-p passive P)
		    (seq (p-to-p active A1) (p-to-p active A2))))`},
		{"call", `(rep (mutex (enc-early (p-to-p passive A1) (p-to-p active B))
		    (enc-early (p-to-p passive A2) (p-to-p active B))))`},
		{"passivator", `(rep (enc-middle (p-to-p passive A) (p-to-p passive B)))`},
	}
	fmt.Println("Fig 3: Burst-Mode specifications of three handshake components")
	for _, e := range examples {
		body, err := ch.Parse(e.src)
		if err != nil {
			return err
		}
		sp, err := chtobm.Compile(&ch.Program{Name: e.name, Body: body})
		if err != nil {
			return err
		}
		fmt.Println(sp)
	}
	return nil
}

func fig4() error {
	dwSrc := `(rep (enc-early (p-to-p passive a1)
	    (mutex (enc-early (p-to-p passive i1) (p-to-p active o1))
	           (enc-early (p-to-p passive i2) (p-to-p active o2)))))`
	seqSrc := `(rep (enc-early (p-to-p passive o2)
	    (seq (p-to-p active c1) (p-to-p active c2))))`
	n := &core.Netlist{}
	for _, c := range []struct{ name, src string }{{"decision-wait", dwSrc}, {"sequencer", seqSrc}} {
		body, err := ch.Parse(c.src)
		if err != nil {
			return err
		}
		n.Components = append(n.Components, &ch.Program{Name: c.name, Body: body})
	}
	fmt.Println("Fig 4: activation channel removal (decision-wait + sequencer over channel o2)")
	out, rep, err := core.T1Clustering(n)
	if err != nil {
		return err
	}
	for _, m := range rep.Merges {
		fmt.Printf("  merged %s into %s, channel %s eliminated\n", m.Activated, m.Activator, m.Channel)
	}
	fmt.Println("merged CH program:")
	fmt.Println(ch.FormatProgram(out.Components[0]))
	sp, err := chtobm.Compile(out.Components[0])
	if err != nil {
		return err
	}
	fmt.Println("merged Burst-Mode specification:")
	fmt.Println(sp)
	if err := core.VerifyActivationChannelRemoval("o2", n.Components[0], n.Components[1]); err != nil {
		return err
	}
	fmt.Println("trace-theory verification: composed||hidden == merged  OK")
	return nil
}

func fig5() error {
	seqSrc := `(rep (enc-early (p-to-p passive a)
	    (seq (p-to-p active b1) (p-to-p active b2))))`
	callSrc := `(rep (mutex (enc-early (p-to-p passive b1) (p-to-p active c))
	    (enc-early (p-to-p passive b2) (p-to-p active c))))`
	n := &core.Netlist{}
	for _, c := range []struct{ name, src string }{{"sequencer", seqSrc}, {"call", callSrc}} {
		body, err := ch.Parse(c.src)
		if err != nil {
			return err
		}
		n.Components = append(n.Components, &ch.Program{Name: c.name, Body: body})
	}
	fmt.Println("Fig 5: call distribution (the systolic counter fragment)")
	out, rep, err := core.T2Clustering(n)
	if err != nil {
		return err
	}
	fmt.Printf("  calls split: %v, restored: %v\n", rep.CallsSplit, rep.CallsRestored)
	fmt.Println("resulting CH program:")
	fmt.Println(ch.FormatProgram(out.Components[0]))
	sp, err := chtobm.Compile(out.Components[0])
	if err != nil {
		return err
	}
	fmt.Println("resulting Burst-Mode specification:")
	fmt.Println(sp)
	return nil
}

func verify() error {
	fmt.Println("Section 4.3: trace-theory verification of Activation Channel Removal")
	fmt.Println("(composed behavior with the activation channel hidden vs. clustered behavior)")
	results := core.VerifyAllPairsOrdered()
	failures := 0
	for _, r := range results {
		status := "conformation equivalent"
		if r.Err != nil {
			status = r.Err.Error()
			failures++
		}
		fmt.Printf("  activating=%-10s activated=%-10s  %s\n", r.Pair.Activating, r.Pair.Activated, status)
	}
	if failures > 0 {
		return fmt.Errorf("%d pairs failed", failures)
	}
	fmt.Printf("all %d operator combinations verified\n", len(results))
	return nil
}

func flowReport(ctx context.Context, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: balsabm flow <design>")
	}
	if *serverFlag != "" {
		c := server.NewClient(*serverFlag)
		res, err := c.Run(ctx, api.JobRequest{
			Kind: api.KindDesign, Design: args[0],
			Config: api.FlowConfig{Workers: *workersFlag},
		})
		if err != nil {
			return err
		}
		if *jsonFlag {
			return emitJSON(res.Design)
		}
		printFlowReport(res.Design.ToFlow())
		return nil
	}
	d, err := designs.ByName(args[0])
	if err != nil {
		return err
	}
	opt, met := flowOptions()
	defer printStats(met)
	r, err := flow.RunDesignCtx(ctx, d, opt)
	if err != nil {
		return err
	}
	if *jsonFlag {
		return emitJSON(api.FromDesignResult(r))
	}
	printFlowReport(r)
	return nil
}

func printFlowReport(r *flow.DesignResult) {
	fmt.Printf("design %s — benchmark: %s\n", r.Design, r.Bench)
	for _, arm := range []struct {
		name string
		a    flow.ArmResult
	}{{"unoptimized", r.Unopt}, {"optimized", r.Opt}} {
		fmt.Printf("%s arm: %d controllers, control %.0f um2, datapath %.0f um2, bench %.2f ns (%d events)\n",
			arm.name, len(arm.a.Controllers), arm.a.ControlArea, arm.a.DatapathArea,
			arm.a.BenchTime, arm.a.Events)
		for _, c := range arm.a.Controllers {
			fmt.Printf("  %-24s %3d states %2d bits %3d products %4d cells %7.0f um2 %5.2f ns\n",
				c.Name, c.States, c.StateBits, c.Products, c.Cells, c.Area, c.Critical)
		}
	}
	fmt.Printf("speed improvement: %.2f%%   area overhead: %.2f%%\n",
		r.SpeedImprovement(), r.AreaOverhead())
}

// artifacts writes the paper's Fig 1 intermediate files for a design:
// per-controller .bms (Burst-Mode spec), .sol (Minimalist-style
// solution) and .v (structural Verilog) for both flow arms, plus the
// CH netlists before and after clustering.
func artifacts(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: balsabm artifacts <design> <dir>")
	}
	d, err := designs.ByName(args[0])
	if err != nil {
		return err
	}
	dir := args[1]
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	lib := cell.AMS035()
	write := func(name, content string) error {
		path := filepath.Join(dir, name)
		fmt.Println("writing", path)
		return os.WriteFile(path, []byte(content), 0o644)
	}
	unopt := d.Control()
	if err := write(d.Name+".unopt.ch", unopt.Format()); err != nil {
		return err
	}
	opt, _, err := core.Optimize(unopt)
	if err != nil {
		return err
	}
	if err := write(d.Name+".opt.ch", opt.Format()); err != nil {
		return err
	}
	for _, arm := range []struct {
		suffix  string
		netlist *core.Netlist
		mode    techmap.Mode
	}{{"unopt", unopt, techmap.AreaShared}, {"opt", opt, techmap.SpeedSplit}} {
		for _, comp := range arm.netlist.Components {
			sp, err := chtobm.Compile(comp)
			if err != nil {
				return err
			}
			base := fmt.Sprintf("%s.%s", comp.Name, arm.suffix)
			if err := write(base+".bms", sp.String()); err != nil {
				return err
			}
			ctrl, err := minimalist.Synthesize(sp)
			if err != nil {
				return err
			}
			if err := write(base+".sol", ctrl.Sol()); err != nil {
				return err
			}
			nl, err := techmap.MapController(ctrl, arm.mode, lib)
			if err != nil {
				return err
			}
			if err := write(base+".v", techmap.VerilogModules(nl, lib)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Command chc is the CH language tool: it parses CH programs, checks
// the Burst-Mode aware restrictions (Table 1), prints four-phase
// expansions, and compiles to Burst-Mode specifications (.bms).
//
// Usage:
//
//	chc expand  'expr'            print the four-phase expansion
//	chc check   'expr'            validate against Table 1 (first error)
//	chc lint    'expr'            run every chlint analyzer pass and
//	                              report all findings; exit 1 on errors
//	chc bms     '(program n e)'   compile to a .bms specification
//	chc pn      '(program n e)'   translate to a 1-safe Petri net
//	                              (the paper's future-work backend style)
//	chc bms -f  file.ch           compile a program file (every command
//	                              accepts -f)
package main

import (
	"fmt"
	"os"

	"balsabm/internal/analysis"
	"balsabm/internal/ch"
	"balsabm/internal/chtobm"
	"balsabm/internal/petri"
)

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	cmd := os.Args[1]
	src := os.Args[2]
	file := ""
	if src == "-f" {
		if len(os.Args) < 4 {
			usage()
		}
		file = os.Args[3]
		data, err := os.ReadFile(file)
		if err != nil {
			fail(err)
		}
		src = string(data)
	}
	switch cmd {
	case "expand":
		e, err := ch.Parse(src)
		if err != nil {
			fail(err)
		}
		x, err := ch.Expand(e)
		if err != nil {
			fail(err)
		}
		fmt.Println(x)
	case "check":
		e, err := ch.Parse(src)
		if err != nil {
			fail(err)
		}
		if err := ch.Validate(e); err != nil {
			fail(err)
		}
		fmt.Printf("ok: Burst-Mode aware (activity: %s)\n", e.Activity())
	case "lint":
		ds := analysis.LintSource(src)
		fmt.Print(analysis.Format(ds, file))
		if analysis.HasErrors(ds) {
			os.Exit(1)
		}
		if len(ds) == 0 {
			fmt.Println("ok: no findings")
		}
	case "pn":
		p, err := ch.ParseProgram(src)
		if err != nil {
			e, err2 := ch.Parse(src)
			if err2 != nil {
				fail(err)
			}
			p = &ch.Program{Name: "main", Body: e}
		}
		net, err := petri.FromProgram(p)
		if err != nil {
			fail(err)
		}
		fmt.Printf("; 1-safe Petri net for %s: %d places, %d transitions\n",
			p.Name, net.Places, len(net.Transitions))
		for i, tr := range net.Transitions {
			label := tr.Label
			if label == "" {
				label = "tau"
			}
			fmt.Printf("t%-3d %-10s pre%v post%v\n", i, label, tr.Pre, tr.Post)
		}
		g, err := net.Reachability(0)
		if err != nil {
			fail(err)
		}
		fmt.Printf("; reachability graph: %d markings, %d edges\n", g.States, len(g.Edges))
	case "bms":
		p, err := ch.ParseProgram(src)
		if err != nil {
			// Allow a bare expression too.
			e, err2 := ch.Parse(src)
			if err2 != nil {
				fail(err)
			}
			p = &ch.Program{Name: "main", Body: e}
		}
		sp, err := chtobm.Compile(p)
		if err != nil {
			fail(err)
		}
		fmt.Print(sp)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: chc <expand|check|lint|bms|pn> 'expr' | chc <cmd> -f file.ch")
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "chc:", err)
	os.Exit(1)
}

// Command balsac compiles a Balsa-subset source file into a handshake
// component netlist (the balsa-c step of the paper's Fig 1), printed in
// a breeze-like text format. With -control, it instead prints the CH
// programs of the control components (the Balsa-to-CH step).
//
// Usage:
//
//	balsac [-control] file.balsa
//	balsac -builtin counter8|stack|wagging|ssem [-control]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"balsabm/internal/balsa"
	"balsabm/internal/designs"
	"balsabm/internal/hc"
)

func main() {
	control := flag.Bool("control", false, "print the control components as CH programs")
	builtin := flag.String("builtin", "", "compile an embedded benchmark source instead of a file")
	flag.Parse()

	var (
		src  string
		name string
		err  error
	)
	switch {
	case *builtin != "":
		src, err = designs.BalsaSource(*builtin)
		name = *builtin
	case flag.NArg() == 1:
		var data []byte
		data, err = os.ReadFile(flag.Arg(0))
		src = string(data)
		name = strings.TrimSuffix(filepath.Base(flag.Arg(0)), ".balsa")
	default:
		fmt.Fprintln(os.Stderr, "usage: balsac [-control] file.balsa | balsac -builtin <design>")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "balsac:", err)
		os.Exit(1)
	}

	n, err := balsa.CompileSource(src, name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "balsac:", err)
		os.Exit(1)
	}
	if *control {
		ctl, err := n.Control()
		if err != nil {
			fmt.Fprintln(os.Stderr, "balsac:", err)
			os.Exit(1)
		}
		fmt.Print(ctl.Format())
		return
	}
	fmt.Print(n.Format())
	s := n.Stats()
	fmt.Fprintf(os.Stderr, "balsac: %d control + %d datapath components\n", s.Control, s.Datapath)
	_ = hc.KSequencer
}

// Command balsabmd is the synthesis-as-a-service daemon: it serves
// the paper's complete back-end over HTTP, amortizing parsing,
// synthesis caching and worker-pool warm-up across many requests
// instead of re-running the whole Fig 1 pipeline per CLI invocation.
//
// Usage:
//
//	balsabmd [-addr :8337] [-jobs N] [-queue N]
//
// Flags:
//
//	-addr   listen address (default :8337)
//	-jobs   jobs executing concurrently (default 2); each job
//	        additionally fans leaf work across its own flow pool
//	-queue  queued-job bound; submissions beyond it get HTTP 503
//	        (default 64)
//	-pprof  serve net/http/pprof on this extra address (e.g.
//	        localhost:6060); off by default so profiling endpoints
//	        are never exposed on the service port
//
// See package balsabm/internal/server for the API, and `balsabm
// -server URL ...` for the thin client.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"balsabm/internal/parallel"
	"balsabm/internal/server"
)

func main() {
	addr := flag.String("addr", ":8337", "listen address")
	jobs := flag.Int("jobs", 2, "jobs executing concurrently")
	queue := flag.Int("queue", 64, "maximum queued jobs")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty = disabled)")
	flag.Parse()

	srv := server.New(server.Config{Workers: *jobs, QueueDepth: *queue})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	if *pprofAddr != "" {
		// A dedicated mux on a dedicated listener: the profiling
		// surface never shares a port with the service API.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv := &http.Server{Addr: *pprofAddr, Handler: mux}
		parallel.Go(func() {
			fmt.Fprintf(os.Stderr, "balsabmd: pprof on %s\n", *pprofAddr)
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "balsabmd: pprof:", err)
			}
		})
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	parallel.Go(func() {
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "balsabmd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
		srv.Close() // cancels in-flight jobs at their next leaf boundary
	})

	fmt.Fprintf(os.Stderr, "balsabmd: listening on %s (%d executors, queue %d)\n",
		*addr, *jobs, *queue)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "balsabmd:", err)
		os.Exit(1)
	}
}

// Command balsabmd is the synthesis-as-a-service daemon: it serves
// the paper's complete back-end over HTTP, amortizing parsing,
// synthesis caching and worker-pool warm-up across many requests
// instead of re-running the whole Fig 1 pipeline per CLI invocation.
//
// Usage:
//
//	balsabmd [-addr :8337] [-jobs N] [-queue N]
//
// Flags:
//
//	-addr   listen address (default :8337)
//	-jobs   jobs executing concurrently (default 2); each job
//	        additionally fans leaf work across its own flow pool
//	-queue  queued-job bound; submissions beyond it get HTTP 503
//	        (default 64)
//
// See package balsabm/internal/server for the API, and `balsabm
// -server URL ...` for the thin client.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"balsabm/internal/parallel"
	"balsabm/internal/server"
)

func main() {
	addr := flag.String("addr", ":8337", "listen address")
	jobs := flag.Int("jobs", 2, "jobs executing concurrently")
	queue := flag.Int("queue", 64, "maximum queued jobs")
	flag.Parse()

	srv := server.New(server.Config{Workers: *jobs, QueueDepth: *queue})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	parallel.Go(func() {
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "balsabmd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
		srv.Close() // cancels in-flight jobs at their next leaf boundary
	})

	fmt.Fprintf(os.Stderr, "balsabmd: listening on %s (%d executors, queue %d)\n",
		*addr, *jobs, *queue)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "balsabmd:", err)
		os.Exit(1)
	}
}

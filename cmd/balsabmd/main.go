// Command balsabmd is the synthesis-as-a-service daemon: it serves
// the paper's complete back-end over HTTP, amortizing parsing,
// synthesis caching and worker-pool warm-up across many requests
// instead of re-running the whole Fig 1 pipeline per CLI invocation.
//
// Usage:
//
//	balsabmd [-addr :8337] [-jobs N] [-queue N] [-data-dir DIR]
//
// Flags:
//
//	-addr   listen address (default :8337)
//	-jobs   jobs executing concurrently (default 2); each job
//	        additionally fans leaf work across its own flow pool
//	-queue  queued-job bound; submissions beyond it get HTTP 503
//	        (default 64)
//	-data-dir DIR
//	        persist state under DIR (see internal/store): completed
//	        results survive restarts in a content-addressed artifact
//	        cache, every job is journaled, and in-flight jobs
//	        checkpoint each completed pipeline stage. On boot the
//	        journal replays — finished jobs reappear with their
//	        results, interrupted ones re-enqueue and resume from
//	        their last checkpoint. Empty (the default) keeps
//	        everything in memory.
//	-cache-max-bytes N
//	        artifact-cache size bound; oldest blobs are evicted past
//	        it (0 = unbounded; only meaningful with -data-dir)
//	-pprof  serve net/http/pprof on this extra address (e.g.
//	        localhost:6060); off by default so profiling endpoints
//	        are never exposed on the service port
//
// See package balsabm/internal/server for the API, `balsabm -server
// URL ...` for the thin client, and `balsabm cache` for offline
// data-dir inspection.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"balsabm/internal/parallel"
	"balsabm/internal/server"
	"balsabm/internal/store"
)

func main() {
	addr := flag.String("addr", ":8337", "listen address")
	jobs := flag.Int("jobs", 2, "jobs executing concurrently")
	queue := flag.Int("queue", 64, "maximum queued jobs")
	dataDir := flag.String("data-dir", "", "persist results, journal and checkpoints under this directory (empty = in-memory only)")
	cacheMax := flag.Int64("cache-max-bytes", 0, "artifact-cache size bound for eviction (0 = unbounded; requires -data-dir)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty = disabled)")
	flag.Parse()

	var st *store.Store
	if *dataDir != "" {
		var err error
		st, err = store.Open(*dataDir, *cacheMax)
		if err != nil {
			fmt.Fprintln(os.Stderr, "balsabmd:", err)
			os.Exit(1)
		}
	} else if *cacheMax != 0 {
		fmt.Fprintln(os.Stderr, "balsabmd: -cache-max-bytes requires -data-dir")
		os.Exit(1)
	}

	srv := server.New(server.Config{Workers: *jobs, QueueDepth: *queue, Store: st})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	if st != nil {
		m := srv.Manager().Metrics()
		fmt.Fprintf(os.Stderr, "balsabmd: data dir %s (%d artifacts on disk, %d jobs resumed)\n",
			*dataDir, m.Store.Artifacts, m.JobsResumed)
	}

	if *pprofAddr != "" {
		// A dedicated mux on a dedicated listener: the profiling
		// surface never shares a port with the service API.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv := &http.Server{Addr: *pprofAddr, Handler: mux}
		parallel.Go(func() {
			fmt.Fprintf(os.Stderr, "balsabmd: pprof on %s\n", *pprofAddr)
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "balsabmd: pprof:", err)
			}
		})
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	parallel.Go(func() {
		defer close(shutdownDone)
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "balsabmd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
		srv.Close() // cancels in-flight jobs at their next leaf boundary
		if st != nil {
			// Interrupted jobs carry no terminal journal record, so the
			// next boot re-enqueues them; their checkpoints stay put.
			st.Close()
		}
	})

	fmt.Fprintf(os.Stderr, "balsabmd: listening on %s (%d executors, queue %d)\n",
		*addr, *jobs, *queue)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "balsabmd:", err)
		os.Exit(1)
	}
	<-shutdownDone // journal is synced before the process exits
}

package dpath

import (
	"testing"

	"balsabm/internal/cell"
	"balsabm/internal/sim"
)

func newSim() (*sim.Simulator, *Builder) {
	s := sim.New(cell.AMS035())
	return s, NewBuilder(s)
}

func run(t *testing.T, s *sim.Simulator) {
	t.Helper()
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(1e6, 1_000_000); err != nil {
		t.Fatal(err)
	}
}

// pullOnce performs a full four-phase pull handshake on ch and returns
// the value carried by the acknowledge.
func pullOnce(t *testing.T, s *sim.Simulator, b *Builder, ch string) uint64 {
	t.Helper()
	var got uint64
	doneFall := false
	s.Watch(ch+"_a", func(s *sim.Simulator, _ int, val bool) {
		if val {
			got = b.Bus(ch).Val
			s.Schedule(ch+"_r", false, 0.1)
		} else {
			doneFall = true
		}
	})
	s.Schedule(ch+"_r", true, 0.1)
	run(t, s)
	if !doneFall {
		t.Fatalf("pull on %s did not complete", ch)
	}
	return got
}

func TestConstAndFunc(t *testing.T) {
	s, b := newSim()
	b.Const("k", 42)
	b.Func("twice", 8, func(ins []uint64) uint64 { return ins[0] * 2 }, "k")
	if got := pullOnce(t, s, b, "twice"); got != 84 {
		t.Fatalf("got %d", got)
	}
}

func TestVariableWriteRead(t *testing.T) {
	s, b := newSim()
	b.Variable("v", 8, "vw", "vr")
	// Push 7 into the variable.
	b.Bus("vw").Val = 7
	completed := false
	s.Watch("vw_a", func(s *sim.Simulator, _ int, val bool) {
		if val {
			s.Schedule("vw_r", false, 0.1)
		} else {
			completed = true
		}
	})
	s.Schedule("vw_r", true, 0.1)
	run(t, s)
	if !completed {
		t.Fatal("write did not complete")
	}
	if got := pullOnce(t, s, b, "vr"); got != 7 {
		t.Fatalf("read %d, want 7", got)
	}
}

func TestFetchMovesData(t *testing.T) {
	s, b := newSim()
	b.Const("src", 9)
	b.Variable("v", 8, "vw", "vr")
	b.Fetch("go", "src", "vw")
	done := false
	s.Watch("go_a", func(s *sim.Simulator, _ int, val bool) {
		if val {
			s.Schedule("go_r", false, 0.1)
		} else {
			done = true
		}
	})
	s.Schedule("go_r", true, 0.1)
	run(t, s)
	if !done {
		t.Fatal("fetch did not complete")
	}
	if got := pullOnce(t, s, b, "vr"); got != 9 {
		t.Fatalf("variable holds %d, want 9", got)
	}
}

func TestCaseSelDispatch(t *testing.T) {
	for want := 0; want <= 1; want++ {
		s, b := newSim()
		b.Const("sel", uint64(want))
		b.CaseSel("go", "sel", "arm0", "arm1")
		fired := -1
		for i := 0; i <= 1; i++ {
			i := i
			b.EnvServeSync(armName(i), 0.5)
			s.Watch(armName(i)+"_r", func(_ *sim.Simulator, _ int, val bool) {
				if val {
					fired = i
				}
			})
		}
		done := false
		s.Watch("go_a", func(s *sim.Simulator, _ int, val bool) {
			if val {
				s.Schedule("go_r", false, 0.1)
			} else {
				done = true
			}
		})
		s.Schedule("go_r", true, 0.1)
		run(t, s)
		if !done || fired != want {
			t.Fatalf("sel=%d: done=%v fired=%d", want, done, fired)
		}
	}
}

func armName(i int) string {
	return []string{"arm0", "arm1"}[i]
}

func TestCaseSelOutOfRange(t *testing.T) {
	s, b := newSim()
	b.Const("sel", 7)
	b.CaseSel("go", "sel", "arm0")
	b.EnvServeSync("arm0", 0.5)
	done := false
	s.Watch("go_a", func(s *sim.Simulator, _ int, val bool) {
		if val {
			s.Schedule("go_r", false, 0.1)
		} else {
			done = true
		}
	})
	s.Schedule("go_r", true, 0.1)
	run(t, s)
	if !done {
		t.Fatal("out-of-range selector must still complete")
	}
	if s.Value("arm0_r") {
		t.Fatal("no arm should have fired")
	}
}

func TestMemoryReadWrite(t *testing.T) {
	s, b := newSim()
	m := b.Memory(8, 16)
	m.Words[3] = 111
	b.Const("addr", 3)
	m.ReadPort("mrd", "addr", 16)
	if got := pullOnce(t, s, b, "mrd"); got != 111 {
		t.Fatalf("read %d, want 111", got)
	}
	// Write port: addr 5, data 222.
	s2, b2 := newSim()
	m2 := b2.Memory(8, 16)
	b2.Const("waddr", 5)
	b2.Const("wdata", 222)
	m2.WritePort("wr", "waddr", "wdata", 16)
	done := false
	s2.Watch("wr_a", func(s *sim.Simulator, _ int, val bool) {
		if val {
			s.Schedule("wr_r", false, 0.1)
		} else {
			done = true
		}
	})
	s2.Schedule("wr_r", true, 0.1)
	run(t, s2)
	if !done || m2.Words[5] != 222 {
		t.Fatalf("write failed: done=%v words[5]=%d", done, m2.Words[5])
	}
	if b2.LastMemory() != m2 {
		t.Fatal("LastMemory mismatch")
	}
}

func TestActivatorCountsAndChains(t *testing.T) {
	s, b := newSim()
	b.EnvServeSync("tick", 0.5)
	finished := false
	act := b.NewActivator("tick", 0.2, 3, func(s *sim.Simulator) {
		finished = true
		s.Stop()
	})
	act.Start()
	run(t, s)
	if !finished || act.Completed != 3 {
		t.Fatalf("completed=%d finished=%v (%s)", act.Completed, finished, act.Describe())
	}
}

func TestAreaAccounting(t *testing.T) {
	_, b := newSim()
	before := b.Area
	b.Variable("v", 8, "vw")
	if b.Area <= before {
		t.Fatal("variable did not add area")
	}
	before = b.Area
	b.Func("f", 8, func(ins []uint64) uint64 { return 0 })
	if b.Area <= before {
		t.Fatal("func did not add area")
	}
	if FuncDelay(8) <= FuncDelay(1) {
		t.Fatal("func delay must scale with width")
	}
}

func TestEnvHelpers(t *testing.T) {
	s, b := newSim()
	var served []uint64
	b.EnvServePull("in", 0.2, func() uint64 {
		served = append(served, uint64(len(served)+1))
		return uint64(len(served))
	})
	if got := pullOnce(t, s, b, "in"); got != 1 {
		t.Fatalf("got %d", got)
	}
	// Push consumption.
	s2, b2 := newSim()
	var got []uint64
	b2.EnvConsumePush("out", 0.2, func(v uint64) { got = append(got, v) })
	b2.Bus("out").Val = 5
	doneFall := false
	s2.Watch("out_a", func(s *sim.Simulator, _ int, val bool) {
		if val {
			s.Schedule("out_r", false, 0.1)
		} else {
			doneFall = true
		}
	})
	s2.Schedule("out_r", true, 0.1)
	run(t, s2)
	if !doneFall || len(got) != 1 || got[0] != 5 {
		t.Fatalf("push consumption failed: %v", got)
	}
}

// Package dpath provides behavioral datapath handshake components for
// the event simulator: variables (latch banks), transferrers, function
// units, constants, data-dependent selectors and memories, plus
// environment-side helpers for testbenches.
//
// In the paper's flow the datapath is synthesized by the unmodified
// Balsa back-end and is identical in the optimized and unoptimized
// circuits; only the control differs. Modelling the datapath
// behaviorally — with a consistent area/delay cost model applied to
// both arms — therefore preserves exactly what Table 3 measures: the
// relative effect of the control optimization.
//
// Channels: a sync channel is a request/acknowledge wire pair
// (<name>_r, <name>_a). A data channel adds an abstract value bus
// (carried as a Go value, not as wires). Pull channels are served by
// the component owning the data (acknowledge carries the value); push
// channels are driven by the producer (request carries the value).
package dpath

import (
	"fmt"

	"balsabm/internal/sim"
)

// Cost model, calibrated to the 0.35µm-class cell library.
const (
	LatchAreaPerBit = 64.0 // µm² (one LATCH cell per bit)
	FuncAreaPerBit  = 90.0 // µm² per bit of a typical ALU function
	WireArea        = 12.0 // µm² per channel for completion/steering
	LatchDelay      = 0.18 // ns
	SelectDelay     = 0.25 // ns
	// CompletionPerBit models the width-dependent part of a register
	// access (dual-rail/bundled completion detection and data wiring):
	// Balsa's datapath is delay-insensitive, so acknowledge generation
	// scales with the word width.
	CompletionPerBit = 0.012 // ns per bit
	// AckDelay is the controller-facing acknowledge latency of a
	// datapath component (completion detection plus wiring). It also
	// guarantees generalized fundamental mode: the environment never
	// responds faster than a clustered controller settles.
	AckDelay = 0.45 // ns
)

// FuncDelay returns the evaluation delay of a width-bit function unit
// (ripple-style scaling).
func FuncDelay(width int) float64 { return 0.3 + 0.04*float64(width) }

// Bus is the abstract value carried by a data channel.
type Bus struct{ Val uint64 }

// Builder wires behavioral components into a simulator and accumulates
// their datapath area.
type Builder struct {
	S        *sim.Simulator
	Area     float64
	bus      map[string]*Bus
	memories []*Memory
}

// NewBuilder creates a datapath builder over the simulator.
func NewBuilder(s *sim.Simulator) *Builder {
	return &Builder{S: s, bus: map[string]*Bus{}}
}

// Bus returns (creating on demand) the value cell of a data channel.
func (b *Builder) Bus(name string) *Bus {
	if v, ok := b.bus[name]; ok {
		return v
	}
	v := &Bus{}
	b.bus[name] = v
	return v
}

func req(ch string) string { return ch + "_r" }
func ack(ch string) string { return ch + "_a" }

// onRise registers fn for rising edges of a net.
func (b *Builder) onRise(net string, fn func(s *sim.Simulator)) {
	b.S.Watch(net, func(s *sim.Simulator, _ int, val bool) {
		if val {
			fn(s)
		}
	})
}

// onFall registers fn for falling edges of a net.
func (b *Builder) onFall(net string, fn func(s *sim.Simulator)) {
	b.S.Watch(net, func(s *sim.Simulator, _ int, val bool) {
		if !val {
			fn(s)
		}
	})
}

// Variable is a width-bit latch bank with one write (push-passive)
// channel and any number of read (pull-passive) channels.
func (b *Builder) Variable(name string, width int, write string, reads ...string) *Bus {
	stored := &Bus{}
	b.Area += float64(width)*LatchAreaPerBit + WireArea*float64(1+len(reads))
	access := LatchDelay + CompletionPerBit*float64(width)
	if write != "" {
		wb := b.Bus(write)
		b.onRise(req(write), func(s *sim.Simulator) {
			stored.Val = wb.Val
			s.Schedule(ack(write), true, access)
		})
		b.onFall(req(write), func(s *sim.Simulator) {
			s.Schedule(ack(write), false, access)
		})
	}
	for _, r := range reads {
		r := r
		rb := b.Bus(r)
		b.onRise(req(r), func(s *sim.Simulator) {
			rb.Val = stored.Val
			s.Schedule(ack(r), true, access)
		})
		b.onFall(req(r), func(s *sim.Simulator) {
			s.Schedule(ack(r), false, access)
		})
	}
	return stored
}

// Fetch is the transferrer "dst <- src": a sync activation pulls src
// and pushes the value into dst.
func (b *Builder) Fetch(act, src, dst string) {
	b.Area += 2 * WireArea
	sb, db := b.Bus(src), b.Bus(dst)
	busy := false // guards against cross-talk if a channel is shared
	b.onRise(req(act), func(s *sim.Simulator) {
		busy = true
		s.Schedule(req(src), true, 0.15)
	})
	b.onRise(ack(src), func(s *sim.Simulator) {
		if !busy {
			return
		}
		db.Val = sb.Val
		s.Schedule(req(src), false, 0.15)
	})
	b.onFall(ack(src), func(s *sim.Simulator) {
		if !busy {
			return
		}
		s.Schedule(req(dst), true, 0.15)
	})
	b.onRise(ack(dst), func(s *sim.Simulator) {
		if !busy {
			return
		}
		s.Schedule(req(dst), false, 0.15)
	})
	b.onFall(ack(dst), func(s *sim.Simulator) {
		if !busy {
			return
		}
		busy = false
		s.Schedule(ack(act), true, AckDelay)
	})
	b.onFall(req(act), func(s *sim.Simulator) {
		s.Schedule(ack(act), false, AckDelay)
	})
}

// Func is a pull-served function unit: when out is pulled, it pulls all
// inputs concurrently, computes f, and acknowledges out with the value.
func (b *Builder) Func(out string, width int, f func(ins []uint64) uint64, ins ...string) {
	b.Area += float64(width)*FuncAreaPerBit + WireArea*float64(len(ins))
	ob := b.Bus(out)
	inBus := make([]*Bus, len(ins))
	for i, in := range ins {
		inBus[i] = b.Bus(in)
	}
	pending := 0
	b.onRise(req(out), func(s *sim.Simulator) {
		if len(ins) == 0 {
			ob.Val = f(nil)
			s.Schedule(ack(out), true, FuncDelay(width))
			return
		}
		pending = len(ins)
		for _, in := range ins {
			s.Schedule(req(in), true, 0.15)
		}
	})
	for _, in := range ins {
		b.onRise(ack(in), func(s *sim.Simulator) {
			pending--
			if pending == 0 {
				vals := make([]uint64, len(inBus))
				for i, ib := range inBus {
					vals[i] = ib.Val
				}
				ob.Val = f(vals)
				s.Schedule(ack(out), true, FuncDelay(width))
			}
		})
	}
	// Return to zero: when the puller drops the request, release the
	// inputs and the acknowledge.
	falling := 0
	b.onFall(req(out), func(s *sim.Simulator) {
		if len(ins) == 0 {
			s.Schedule(ack(out), false, 0.15)
			return
		}
		falling = len(ins)
		for _, in := range ins {
			s.Schedule(req(in), false, 0.15)
		}
	})
	for _, in := range ins {
		b.onFall(ack(in), func(s *sim.Simulator) {
			falling--
			if falling == 0 {
				s.Schedule(ack(out), false, 0.15)
			}
		})
	}
}

// Const serves a pull channel with a constant value.
func (b *Builder) Const(out string, val uint64) {
	b.Area += WireArea
	ob := b.Bus(out)
	b.onRise(req(out), func(s *sim.Simulator) {
		ob.Val = val
		s.Schedule(ack(out), true, 0.15)
	})
	b.onFall(req(out), func(s *sim.Simulator) {
		s.Schedule(ack(out), false, 0.15)
	})
}

// CaseSel is the data-dependent dispatcher: a sync activation pulls the
// selector channel and then performs a full handshake on outs[sel]
// before completing. Out-of-range selectors complete without
// activating anything (Balsa's "else continue").
func (b *Builder) CaseSel(act, sel string, outs ...string) {
	b.Area += WireArea * float64(2+len(outs))
	sb := b.Bus(sel)
	current := -1
	b.onRise(req(act), func(s *sim.Simulator) {
		s.Schedule(req(sel), true, 0.15)
	})
	b.onRise(ack(sel), func(s *sim.Simulator) {
		idx := int(sb.Val)
		s.Schedule(req(sel), false, 0.15)
		if idx < 0 || idx >= len(outs) {
			current = -1
			s.Schedule(ack(act), true, SelectDelay)
			return
		}
		current = idx
		s.Schedule(req(outs[idx]), true, SelectDelay)
	})
	for i, out := range outs {
		i, out := i, out
		b.onRise(ack(out), func(s *sim.Simulator) {
			if current == i {
				s.Schedule(req(out), false, 0.15)
			}
		})
		b.onFall(ack(out), func(s *sim.Simulator) {
			if current == i {
				current = -1
				s.Schedule(ack(act), true, AckDelay)
			}
		})
	}
	b.onFall(req(act), func(s *sim.Simulator) {
		s.Schedule(ack(act), false, AckDelay)
	})
}

// Memory is a behavioral word memory.
type Memory struct {
	Words []uint64
	b     *Builder
}

// Memory creates a size-word memory of the given width.
func (b *Builder) Memory(size, width int) *Memory {
	b.Area += float64(size*width) * 20 // compact RAM bits vs. latches
	m := &Memory{Words: make([]uint64, size), b: b}
	b.memories = append(b.memories, m)
	return m
}

// LastMemory returns the most recently created memory (nil if none) —
// benchmarks use it to load programs and inspect results.
func (b *Builder) LastMemory() *Memory {
	if len(b.memories) == 0 {
		return nil
	}
	return b.memories[len(b.memories)-1]
}

// ReadPort serves pulls on out with the word addressed by pulling addr.
func (m *Memory) ReadPort(out, addr string, width int) {
	b := m.b
	ob, abus := b.Bus(out), b.Bus(addr)
	b.onRise(req(out), func(s *sim.Simulator) {
		s.Schedule(req(addr), true, 0.15)
	})
	b.onRise(ack(addr), func(s *sim.Simulator) {
		idx := int(abus.Val) % len(m.Words)
		ob.Val = m.Words[idx]
		s.Schedule(req(addr), false, 0.15)
		s.Schedule(ack(out), true, FuncDelay(width))
	})
	b.onFall(req(out), func(s *sim.Simulator) {
		s.Schedule(ack(out), false, 0.15)
	})
}

// WritePort performs, per sync activation, a pull of addr and data and
// writes the word.
func (m *Memory) WritePort(act, addr, data string, width int) {
	b := m.b
	abus, dbus := b.Bus(addr), b.Bus(data)
	got := 0
	b.onRise(req(act), func(s *sim.Simulator) {
		got = 0
		s.Schedule(req(addr), true, 0.15)
		s.Schedule(req(data), true, 0.15)
	})
	done := func(s *sim.Simulator) {
		got++
		if got == 2 {
			idx := int(abus.Val) % len(m.Words)
			m.Words[idx] = dbus.Val
			s.Schedule(req(addr), false, 0.15)
			s.Schedule(req(data), false, 0.15)
			s.Schedule(ack(act), true, FuncDelay(width))
		}
	}
	b.onRise(ack(addr), done)
	b.onRise(ack(data), done)
	b.onFall(req(act), func(s *sim.Simulator) {
		s.Schedule(ack(act), false, AckDelay)
	})
}

// EnvServeSync auto-acknowledges sync requests with the given delay
// (an always-ready environment on a leaf channel).
func (b *Builder) EnvServeSync(ch string, delay float64) {
	if delay < AckDelay {
		delay = AckDelay
	}
	b.onRise(req(ch), func(s *sim.Simulator) {
		s.Schedule(ack(ch), true, delay)
	})
	b.onFall(req(ch), func(s *sim.Simulator) {
		s.Schedule(ack(ch), false, delay)
	})
}

// EnvServePull serves pull requests on ch with values produced by f.
func (b *Builder) EnvServePull(ch string, delay float64, f func() uint64) {
	cb := b.Bus(ch)
	b.onRise(req(ch), func(s *sim.Simulator) {
		cb.Val = f()
		s.Schedule(ack(ch), true, delay)
	})
	b.onFall(req(ch), func(s *sim.Simulator) {
		s.Schedule(ack(ch), false, delay)
	})
}

// EnvConsumePush consumes push handshakes on ch, reporting each value.
func (b *Builder) EnvConsumePush(ch string, delay float64, f func(val uint64)) {
	cb := b.Bus(ch)
	b.onRise(req(ch), func(s *sim.Simulator) {
		f(cb.Val)
		s.Schedule(ack(ch), true, delay)
	})
	b.onFall(req(ch), func(s *sim.Simulator) {
		s.Schedule(ack(ch), false, delay)
	})
}

// SyncActivation performs one four-phase activation of ch, calling done
// when it completes.
func (b *Builder) SyncActivation(ch string, delay float64, done func(s *sim.Simulator)) {
	b.S.Schedule(req(ch), true, delay)
	fired := false
	b.onRise(ack(ch), func(s *sim.Simulator) {
		s.Schedule(req(ch), false, delay)
	})
	b.onFall(ack(ch), func(s *sim.Simulator) {
		if !fired {
			fired = true
			done(s)
		}
	})
}

// Activator repeatedly activates a sync channel, counting completions.
type Activator struct {
	Ch        string
	Delay     float64
	Completed int
	Limit     int
	OnDone    func(s *sim.Simulator)
	b         *Builder
}

// NewActivator builds a repeated activator for a passive sync channel.
func (b *Builder) NewActivator(ch string, delay float64, limit int, onDone func(s *sim.Simulator)) *Activator {
	a := &Activator{Ch: ch, Delay: delay, Limit: limit, OnDone: onDone, b: b}
	b.onRise(ack(ch), func(s *sim.Simulator) {
		s.Schedule(req(ch), false, delay)
	})
	b.onFall(ack(ch), func(s *sim.Simulator) {
		a.Completed++
		if a.Completed >= a.Limit {
			if a.OnDone != nil {
				a.OnDone(s)
			}
			return
		}
		s.Schedule(req(ch), true, delay)
	})
	return a
}

// Start issues the first activation.
func (a *Activator) Start() {
	a.b.S.Schedule(req(a.Ch), true, a.Delay)
}

// Describe returns a short diagnostic for error messages.
func (a *Activator) Describe() string {
	return fmt.Sprintf("activator(%s): %d/%d", a.Ch, a.Completed, a.Limit)
}

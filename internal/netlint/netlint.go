// Package netlint implements a pass-based static analyzer for mapped
// gate-level netlists — the structural counterpart of chlint
// (internal/analysis) one representation further down the flow.
//
// The paper's correctness argument for the back-end stops at
// per-controller checks: hazard-free covers (hfmin.CheckCover) and the
// hazard-non-increasing mapping audit (techmap.CheckMapped). The
// merged final circuit — every mapped controller of a design wired
// together over its channel nets — is only ever exercised dynamically,
// by simulation. netlint closes that gap structurally: it audits a
// whole gates.Netlist against its cell.Library for the defects a
// correct merge can never contain (multiple drivers, floating nets,
// combinational feedback outside latching cells, unknown cells, arity
// mismatches, name collisions that would corrupt the synthesis cache
// key) and reports advisory findings (unconsumed nets, dead gates)
// that flag wasted area.
//
// It also carries a static reporting pass: literal- and
// transistor-weighted area plus the longest topological gate depth of
// the circuit, surfaced as an info diagnostic and as a Stats value —
// the static complement of the dynamically measured Table 3 numbers.
//
// Every finding is a Diag: a gate/net-precise location, a severity, a
// stable NLxxx code, a message and optional notes — the same
// compiler-diagnostic shape as chlint, following the pass/diagnostic
// conventions of go/analysis.
//
// Entry points: Analyze (diagnostics only), Audit (diagnostics plus
// static stats), and Passes (the registry).
package netlint

import (
	"fmt"
	"strings"

	"balsabm/internal/cell"
	"balsabm/internal/diag"
	"balsabm/internal/gates"
)

// Severity classifies a diagnostic; see internal/diag.
type Severity = diag.Severity

// Severity levels, re-exported from internal/diag. Errors mark
// structural defects — the circuit is miswired (or would corrupt
// downstream tooling) and must not ship; they abort the flow's
// post-merge gate. Warnings mark suspicious-but-functional structure,
// e.g. driven nets nothing consumes. Infos are advisory, e.g. the
// static report.
const (
	SevError   = diag.SevError
	SevWarning = diag.SevWarning
	SevInfo    = diag.SevInfo
)

// Loc pins a diagnostic to a place in the netlist: an instance (gate),
// a net, both, or neither (circuit-level findings). Instances are
// identified the way the Verilog writer names them (g<index>), so a
// finding can be located in the emitted structural Verilog directly.
type Loc struct {
	Inst int    // instance index, -1 when not gate-specific
	Cell string // cell name when Inst >= 0
	Net  int    // net id, -1 when not net-specific
	Name string // net name when Net >= 0
}

// NoLoc is the circuit-level location.
var NoLoc = Loc{Inst: -1, Net: -1}

// InstLoc locates a finding at instance i of nl.
func InstLoc(nl *gates.Netlist, i int) Loc {
	return Loc{Inst: i, Cell: nl.Instances[i].Cell, Net: -1}
}

// NetLoc locates a finding at net id of nl.
func NetLoc(nl *gates.Netlist, id int) Loc {
	name := ""
	if id >= 0 && id < len(nl.NetNames) {
		name = nl.NetNames[id]
	}
	return Loc{Inst: -1, Net: id, Name: name}
}

// InstNetLoc locates a finding at instance i touching net id.
func InstNetLoc(nl *gates.Netlist, i, id int) Loc {
	l := InstLoc(nl, i)
	l.Net = id
	if id >= 0 && id < len(nl.NetNames) {
		l.Name = nl.NetNames[id]
	}
	return l
}

// String renders the location: `g12(NAND2)`, `net "a_r"`, or
// `g12(NAND2) net "a_r"`. Circuit-level locations render empty.
func (l Loc) String() string {
	var parts []string
	if l.Inst >= 0 {
		parts = append(parts, fmt.Sprintf("g%d(%s)", l.Inst, l.Cell))
	}
	if l.Net >= 0 {
		parts = append(parts, fmt.Sprintf("net %q", l.Name))
	}
	return strings.Join(parts, " ")
}

// Fragment implements diag.Loc: gate/net locations are
// space-separated from the circuit prefix ("stack.opt: g12(NAND2):").
func (l Loc) Fragment() (string, bool) { return l.String(), false }

// Key implements diag.Loc: diagnostics sort by instance, then net.
func (l Loc) Key() (int, int) { return l.Inst, l.Net }

// Diag is one diagnostic: where (a gate/net Loc), how bad, which
// rule, and why. It is the shared diag.Diag shape instantiated with
// netlist locations; see internal/diag for the render and sort
// conventions.
type Diag = diag.Diag[Loc]

// Codes maps every stable diagnostic code to its one-line meaning.
// Codes are append-only: a released code never changes meaning, so
// suppressions, CI greps and the /metrics code labels stay valid.
var Codes = map[string]string{
	"NL000": "netlist is structurally malformed (net id out of range)",
	"NL001": "net driven by more than one instance",
	"NL002": "floating net: consumed but never driven",
	"NL003": "instance references a cell the library does not define",
	"NL004": "instance pin count differs from the library cell",
	"NL005": "combinational cycle outside sequential cells and fundamental-mode feedback",
	"NL006": "two net ids share one name (cache-key/rename hazard)",
	"NL007": "net names collide after Verilog sanitization",
	"NL008": "primary input driven by an instance",
	"NL009": "tied-low net driven by an instance",
	"NL010": "net listed more than once among primary ports",
	"NL100": "driven net is never consumed",
	"NL101": "dead gate: no path to any primary output",
	"NL200": "static area/depth report",
}

// Reporter collects diagnostics during a pass run.
type Reporter = diag.Reporter[Loc]

// Pass is one analyzer pass: a name, a one-line doc string and a run
// function receiving the netlist under analysis and its library.
type Pass struct {
	Name string
	Doc  string
	Run  func(nl *gates.Netlist, lib *cell.Library, r *Reporter)
}

// Passes returns the full pass registry in its fixed run order. The
// structure pass runs first: the graph passes assume in-range net ids,
// so a malformed netlist reports NL000 alone rather than a cascade.
func Passes() []*Pass {
	return []*Pass{
		StructPass,
		CellsPass,
		DriversPass,
		CyclesPass,
		DeadPass,
		ReportPass,
	}
}

// Run executes the given passes over a netlist and returns the merged
// diagnostics in a stable order. If the structure pass reports errors,
// later passes are skipped (their graph walks would index out of
// range).
func Run(nl *gates.Netlist, lib *cell.Library, passes []*Pass) []Diag {
	r := &Reporter{}
	for _, p := range passes {
		p.Run(nl, lib, r)
		if p == StructPass && hasCode(r.Diags(), "NL000") {
			break
		}
	}
	ds := r.Diags()
	diag.Sort(ds)
	return ds
}

func hasCode(ds []Diag, code string) bool { return diag.HasCode(ds, code) }

// Analyze runs every registered pass over a netlist.
func Analyze(nl *gates.Netlist, lib *cell.Library) []Diag {
	return Run(nl, lib, Passes())
}

// Result is one full audit: the circuit's name, its diagnostics, and
// the static report.
type Result struct {
	Name  string
	Diags []Diag
	Stats Stats
}

// Audit runs every pass and computes the static report. Stats are
// computed even when diagnostics are present (a broken netlist still
// has a meaningful gate count), except for NL000-malformed netlists,
// which return zero Stats.
func Audit(nl *gates.Netlist, lib *cell.Library) Result {
	ds := Analyze(nl, lib)
	res := Result{Name: nl.Name, Diags: ds}
	if !hasCode(ds, "NL000") {
		res.Stats = ComputeStats(nl, lib)
	}
	return res
}

// Count tallies diagnostics by severity.
func Count(ds []Diag) (errors, warnings, infos int) { return diag.Count(ds) }

// HasErrors reports whether any diagnostic is error-severity.
func HasErrors(ds []Diag) bool { return diag.HasErrors(ds) }

// Format renders diagnostics vet-style, one per line (plus note
// lines), prefixed with the circuit name when non-empty.
func Format(ds []Diag, circuit string) string { return diag.Format(ds, circuit) }

package netlint_test

// Agreement between the synthesis flow and the netlist analyzer: every
// circuit the flow itself emits — each mapped controller and the merged
// per-arm circuit, for programs legal by construction per Table 1 —
// must carry zero error-severity NL findings. The analyzer exists to
// catch miswired hand edits and regressions, not to cry wolf on the
// back-end's own output. (External test package: flow imports netlint.)

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"balsabm/internal/ch"
	"balsabm/internal/core"
	"balsabm/internal/flow"
	"balsabm/internal/netlint"
	"balsabm/internal/techmap"
)

// genLegal mirrors the chtobm fuzzers' generator: CH expressions legal
// by construction per Table 1.
type genLegal struct {
	rng  *rand.Rand
	next int
}

func (g *genLegal) fresh() string {
	g.next++
	return fmt.Sprintf("c%d", g.next)
}

func (g *genLegal) gen(act ch.Activity, depth int) ch.Expr {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		return &ch.Chan{Kind: ch.PToP, Act: act, Name: g.fresh()}
	}
	if act == ch.Active {
		switch g.rng.Intn(4) {
		case 0:
			return &ch.Op{Kind: ch.EncEarly, A: g.gen(ch.Active, depth-1), B: g.gen(ch.Active, depth-1)}
		case 1:
			return &ch.Op{Kind: ch.EncMiddle, A: g.gen(ch.Active, depth-1), B: g.gen(ch.Active, depth-1)}
		case 2:
			return &ch.Op{Kind: ch.Seq, A: g.gen(ch.Active, depth-1), B: g.gen(ch.Active, depth-1)}
		default:
			return &ch.Op{Kind: ch.SeqOv, A: g.gen(ch.Active, depth-1), B: g.gen(ch.Active, depth-1)}
		}
	}
	switch g.rng.Intn(5) {
	case 0:
		return &ch.Op{Kind: ch.EncEarly, A: g.gen(ch.Passive, depth-1), B: g.genAny(depth - 1)}
	case 1:
		return &ch.Op{Kind: ch.EncMiddle, A: g.gen(ch.Passive, depth-1), B: g.genAny(depth - 1)}
	case 2:
		return &ch.Op{Kind: ch.EncLate, A: g.gen(ch.Passive, depth-1), B: g.genAny(depth - 1)}
	case 3:
		return &ch.Op{Kind: ch.Seq, A: g.gen(ch.Passive, depth-1), B: g.genAny(depth - 1)}
	default:
		return &ch.Op{Kind: ch.Mutex, A: g.gen(ch.Passive, depth-1), B: g.gen(ch.Passive, depth-1)}
	}
}

func (g *genLegal) genAny(depth int) ch.Expr {
	if g.rng.Intn(2) == 0 {
		return g.gen(ch.Active, depth)
	}
	return g.gen(ch.Passive, depth)
}

// genComponent wraps a generated body the way every real component is
// shaped: a repeated handshake from a passive activation channel
// driving an active body. (Not every Table 1-legal program is
// synthesizable — deeply enclosed passive channels can compile to
// inconsistent hazard-free specs the flow rejects up front — so the
// generator sticks to the shape real components take; the callers skip
// and bound the residue.)
func genComponent(g *genLegal, name string, depth int) *ch.Program {
	body := &ch.Rep{Body: &ch.Op{
		Kind: ch.EncEarly,
		A:    &ch.Chan{Kind: ch.PToP, Act: ch.Passive, Name: "act_" + name},
		B:    g.gen(ch.Active, depth),
	}}
	return &ch.Program{Name: name, Body: body}
}

// requireClean fails the test if any controller or the merged circuit
// carries an error-severity finding.
func requireClean(t *testing.T, fuzz int, ctrls []netlint.Result, merged netlint.Result) {
	t.Helper()
	for _, res := range append(append([]netlint.Result{}, ctrls...), merged) {
		if netlint.HasErrors(res.Diags) {
			for _, d := range res.Diags {
				t.Logf("%s", d.Render(res.Name))
			}
			t.Fatalf("fuzz %d: flow-emitted circuit %s has NL errors", fuzz, res.Name)
		}
	}
}

// TestFuzzFlowCircuitsPassNetlint: unoptimized arm — every generated
// legal netlist maps to controllers and a merged circuit with zero
// NL-errors.
func TestFuzzFlowCircuitsPassNetlint(t *testing.T) {
	iters := 30
	if testing.Short() {
		iters = 8
	}
	rng := rand.New(rand.NewSource(19991123))
	ctx := context.Background()
	skipped := 0
	for i := 0; i < iters; i++ {
		g := &genLegal{rng: rng}
		n := &core.Netlist{Components: []*ch.Program{
			genComponent(g, "a", rng.Intn(3)+1),
			genComponent(g, "b", rng.Intn(2)+1),
		}}
		ctrls, merged, err := flow.NetlintNetlist(ctx, "fuzz", "unopt", n, techmap.AreaShared, nil)
		if err != nil {
			t.Logf("fuzz %d: flow rejected the program (%v); nothing emitted, nothing to audit", i, err)
			skipped++
			continue
		}
		requireClean(t, i, ctrls, merged)
	}
	if skipped > iters/3 {
		t.Fatalf("generator too often unsynthesizable: %d/%d skipped", skipped, iters)
	}
}

// TestFuzzClusteredCircuitsPassNetlint: optimized arm — the clustered
// netlist, speed-split mapped, is equally clean. Fewer iterations:
// clustering legality probes dominate the runtime.
func TestFuzzClusteredCircuitsPassNetlint(t *testing.T) {
	iters := 10
	if testing.Short() {
		iters = 3
	}
	rng := rand.New(rand.NewSource(20010910))
	ctx := context.Background()
	skipped := 0
	for i := 0; i < iters; i++ {
		g := &genLegal{rng: rng}
		n := &core.Netlist{Components: []*ch.Program{
			genComponent(g, "a", rng.Intn(2)+1),
			genComponent(g, "b", rng.Intn(2)+1),
		}}
		opt, _, err := core.OptimizeOpt(n, core.Options{Ctx: ctx})
		if err != nil {
			t.Fatalf("fuzz %d: clustering failed: %v\n%s", i, err, n.Format())
		}
		ctrls, merged, err := flow.NetlintNetlist(ctx, "fuzz", "opt", opt, techmap.SpeedSplit, nil)
		if err != nil {
			t.Logf("fuzz %d: flow rejected the program (%v); nothing emitted, nothing to audit", i, err)
			skipped++
			continue
		}
		requireClean(t, i, ctrls, merged)
	}
	if skipped > iters/3 {
		t.Fatalf("generator too often unsynthesizable: %d/%d skipped", skipped, iters)
	}
}

package netlint

import (
	"strings"
	"testing"

	"balsabm/internal/cell"
	"balsabm/internal/gates"
)

// find returns every diagnostic with the given code.
func find(ds []Diag, code string) []Diag {
	var out []Diag
	for _, d := range ds {
		if d.Code == code {
			out = append(out, d)
		}
	}
	return out
}

// codes returns the sorted-unique code set of the diagnostics.
func codes(ds []Diag) []string {
	seen := map[string]bool{}
	var out []string
	for _, d := range ds {
		if !seen[d.Code] {
			seen[d.Code] = true
			out = append(out, d.Code)
		}
	}
	return out
}

// clean builds a minimal healthy netlist: in -> INV -> mid -> INV -> out.
func clean() *gates.Netlist {
	nl := gates.New("clean")
	in := nl.Net("in")
	mid := nl.Net("mid")
	out := nl.Net("out")
	nl.Inputs = []int{in}
	nl.Outputs = []int{out}
	nl.AddInstance("INV", []int{in}, mid, 0)
	nl.AddInstance("INV", []int{mid}, out, 0)
	return nl
}

func TestCleanNetlist(t *testing.T) {
	lib := cell.AMS035()
	ds := Analyze(clean(), lib)
	if HasErrors(ds) {
		t.Fatalf("clean netlist has errors:\n%s", Format(ds, "clean"))
	}
	// Only the NL200 report should remain.
	if got := codes(ds); len(got) != 1 || got[0] != "NL200" {
		t.Fatalf("clean netlist codes = %v, want [NL200]", got)
	}
}

func TestMalformedShortCircuits(t *testing.T) {
	nl := clean()
	nl.Instances[0].Inputs[0] = 99 // out of range
	ds := Analyze(nl, cell.AMS035())
	if len(find(ds, "NL000")) == 0 {
		t.Fatal("no NL000 for out-of-range net id")
	}
	// Graph passes must have been skipped: nothing but NL000.
	if got := codes(ds); len(got) != 1 || got[0] != "NL000" {
		t.Fatalf("malformed netlist codes = %v, want [NL000] only", got)
	}
	d := find(ds, "NL000")[0]
	if d.Loc.Inst != 0 || d.Loc.Cell != "INV" {
		t.Fatalf("NL000 at %+v, want instance 0 (INV)", d.Loc)
	}
	// Audit must return zero stats rather than walking a broken graph.
	if res := Audit(nl, cell.AMS035()); res.Stats != (Stats{}) {
		t.Fatalf("Audit of malformed netlist computed stats %+v", res.Stats)
	}
}

func TestMultipleDrivers(t *testing.T) {
	nl := clean()
	// Second driver onto "mid".
	nl.AddInstance("INV", []int{nl.Net("in")}, nl.Net("mid"), 0)
	ds := Analyze(nl, cell.AMS035())
	got := find(ds, "NL001")
	if len(got) != 1 {
		t.Fatalf("NL001 count = %d, want 1:\n%s", len(got), Format(ds, ""))
	}
	d := got[0]
	if d.Loc.Name != "mid" {
		t.Fatalf("NL001 at net %q, want mid", d.Loc.Name)
	}
	if len(d.Notes) != 2 || !strings.Contains(d.Notes[0], "g0(INV)") || !strings.Contains(d.Notes[1], "g2(INV)") {
		t.Fatalf("NL001 notes = %v, want both drivers named", d.Notes)
	}
}

func TestFloatingNet(t *testing.T) {
	nl := gates.New("t")
	in := nl.Net("in")
	ghost := nl.Net("ghost") // consumed, never driven
	out := nl.Net("out")
	nl.Inputs = []int{in}
	nl.Outputs = []int{out}
	nl.AddInstance("AND2", []int{in, ghost}, out, 0)
	ds := Analyze(nl, cell.AMS035())
	got := find(ds, "NL002")
	if len(got) != 1 || got[0].Loc.Name != "ghost" {
		t.Fatalf("NL002 = %v, want one at net ghost", got)
	}

	// A floating primary output is also NL002.
	nl2 := clean()
	nl2.Outputs = append(nl2.Outputs, nl2.Net("dangling"))
	ds2 := Analyze(nl2, cell.AMS035())
	got2 := find(ds2, "NL002")
	if len(got2) != 1 || got2[0].Loc.Name != "dangling" {
		t.Fatalf("NL002 = %v, want one at net dangling", got2)
	}
	if !strings.Contains(got2[0].Message, "primary output") {
		t.Fatalf("NL002 message %q does not name the output role", got2[0].Message)
	}
}

func TestUnknownCellAndArity(t *testing.T) {
	nl := clean()
	nl.AddInstance("FROB3", []int{nl.Net("in")}, nl.Net("x"), 0)
	nl.Outputs = append(nl.Outputs, nl.Net("x"))
	nl.AddInstance("NAND2", []int{nl.Net("in")}, nl.Net("y"), 0) // 1 pin on a 2-input cell
	nl.Outputs = append(nl.Outputs, nl.Net("y"))
	ds := Analyze(nl, cell.AMS035())
	if got := find(ds, "NL003"); len(got) != 1 || got[0].Loc.Inst != 2 {
		t.Fatalf("NL003 = %v, want one at instance 2", got)
	}
	got := find(ds, "NL004")
	if len(got) != 1 || got[0].Loc.Inst != 3 || got[0].Loc.Cell != "NAND2" {
		t.Fatalf("NL004 = %v, want one at instance 3 (NAND2)", got)
	}
}

func TestCombinationalCycle(t *testing.T) {
	// a -> INV -> b -> INV -> a : pure combinational loop (oscillator).
	nl := gates.New("osc")
	a := nl.Net("a")
	b := nl.Net("b")
	out := nl.Net("out")
	nl.Outputs = []int{out}
	nl.AddInstance("INV", []int{a}, b, 0)
	nl.AddInstance("INV", []int{b}, a, 0)
	nl.AddInstance("BUF", []int{a}, out, 0)
	ds := Analyze(nl, cell.AMS035())
	got := find(ds, "NL005")
	if len(got) != 1 {
		t.Fatalf("NL005 count = %d, want exactly 1 (cycle deduped):\n%s", len(got), Format(ds, ""))
	}
	if len(got[0].Notes) != 2 {
		t.Fatalf("NL005 notes = %v, want the 2-net cycle path", got[0].Notes)
	}
}

func TestSequentialLoopIsLegal(t *testing.T) {
	// C-element state feedback: y = C(a, y') through an inverter — the
	// loop passes through a stateful cell, so it is not NL005.
	nl := gates.New("seq")
	a := nl.Net("a")
	y := nl.Net("y")
	yb := nl.Net("yb")
	nl.Inputs = []int{a}
	nl.Outputs = []int{y}
	nl.AddInstance("C2", []int{a, yb}, y, 0)
	nl.AddInstance("INV", []int{y}, yb, 0)
	ds := Analyze(nl, cell.AMS035())
	if got := find(ds, "NL005"); len(got) != 0 {
		t.Fatalf("legal sequential loop reported NL005: %v", got)
	}
	if HasErrors(ds) {
		t.Fatalf("legal sequential loop has errors:\n%s", Format(ds, ""))
	}
}

func TestFundamentalModeFeedbackIsLegal(t *testing.T) {
	// A fed-back output: z = NAND(a, z_n) with z_n = INV(z) — the
	// classic Burst-Mode shape, combinational but closed through a
	// primary output, so fundamental mode (not netlint) owns it.
	nl := gates.New("fb")
	a := nl.Net("a")
	z := nl.Net("z")
	zn := nl.Net("z_n$3")
	nl.Inputs = []int{a}
	nl.Outputs = []int{z}
	nl.AddInstance("INV", []int{z}, zn, 1)
	nl.AddInstance("NAND2", []int{a, zn}, z, 2)
	ds := Analyze(nl, cell.AMS035())
	if got := find(ds, "NL005"); len(got) != 0 {
		t.Fatalf("fed-back output reported NL005: %v", got)
	}

	// A y<k> state-variable loop, including the merged "part.y0" form.
	for _, yName := range []string{"y0", "seq.y0"} {
		nl2 := gates.New("st")
		b := nl2.Net("b")
		y := nl2.Net(yName)
		out := nl2.Net("out")
		nl2.Inputs = []int{b}
		nl2.Outputs = []int{out}
		nl2.AddInstance("NAND2", []int{b, y}, y, 1)
		nl2.AddInstance("INV", []int{y}, out, 2)
		ds2 := Analyze(nl2, cell.AMS035())
		if got := find(ds2, "NL005"); len(got) != 0 {
			t.Fatalf("%s state loop reported NL005: %v", yName, got)
		}
	}
}

func TestStateNet(t *testing.T) {
	for name, want := range map[string]bool{
		"y0": true, "y12": true, "seq.y3": true, "a.b.y7": true,
		"y": false, "ya": false, "y0_n$3": false, "my0": false, "out": false,
	} {
		if got := stateNet(name); got != want {
			t.Errorf("stateNet(%q) = %t, want %t", name, got, want)
		}
	}
}

func TestDuplicateAndCollidingNames(t *testing.T) {
	nl := clean()
	// Bypass Net() interning to forge a duplicate raw name.
	nl.NetNames = append(nl.NetNames, "in")
	ds := Analyze(nl, cell.AMS035())
	got := find(ds, "NL006")
	if len(got) != 1 || got[0].Loc.Net != 3 {
		t.Fatalf("NL006 = %v, want one at net id 3", got)
	}

	// "t$1" and "t_1" sanitize to the same Verilog identifier.
	nl2 := clean()
	nl2.Net("t$1")
	nl2.Net("t_1")
	ds2 := Analyze(nl2, cell.AMS035())
	got2 := find(ds2, "NL007")
	if len(got2) != 1 {
		t.Fatalf("NL007 count = %d, want 1:\n%s", len(got2), Format(ds2, ""))
	}
	if !strings.Contains(got2[0].Message, `"t_1"`) || !strings.Contains(got2[0].Message, `"t$1"`) {
		t.Fatalf("NL007 message %q does not name both nets", got2[0].Message)
	}
}

func TestDrivenPortsAndDuplicatePorts(t *testing.T) {
	nl := clean()
	// Drive the primary input.
	nl.AddInstance("BUF", []int{nl.Net("mid")}, nl.Net("in"), 0)
	// Drive the tied-low net.
	c0 := nl.ConstZero()
	nl.AddInstance("BUF", []int{nl.Net("mid")}, c0, 0)
	// List "out" twice among outputs.
	nl.Outputs = append(nl.Outputs, nl.Net("out"))
	ds := Analyze(nl, cell.AMS035())
	if got := find(ds, "NL008"); len(got) != 1 || got[0].Loc.Inst != 2 || got[0].Loc.Name != "in" {
		t.Fatalf("NL008 = %v, want one at g2 net in", got)
	}
	if got := find(ds, "NL009"); len(got) != 1 || got[0].Loc.Inst != 3 {
		t.Fatalf("NL009 = %v, want one at g3", got)
	}
	if got := find(ds, "NL010"); len(got) != 1 || got[0].Loc.Name != "out" {
		t.Fatalf("NL010 = %v, want one at net out", got)
	}
}

func TestUnusedDrivenNet(t *testing.T) {
	nl := clean()
	nl.AddInstance("INV", []int{nl.Net("in")}, nl.Net("scratch"), 0)
	ds := Analyze(nl, cell.AMS035())
	got := find(ds, "NL100")
	if len(got) != 1 || got[0].Loc.Name != "scratch" || got[0].Loc.Inst != 2 {
		t.Fatalf("NL100 = %v, want one at g2 net scratch", got)
	}
	if got[0].Severity != SevWarning {
		t.Fatalf("NL100 severity = %v, want warning", got[0].Severity)
	}
	// The same gate is also dead (scratch reaches no output).
	if got := find(ds, "NL101"); len(got) != 1 || got[0].Loc.Inst != 2 {
		t.Fatalf("NL101 = %v, want one at g2", got)
	}
	if HasErrors(ds) {
		t.Fatalf("warnings must not be errors:\n%s", Format(ds, ""))
	}
}

func TestDeadGateChain(t *testing.T) {
	// A two-gate dead cone: both gates warn, the live path does not.
	nl := clean()
	d1 := nl.Net("d1")
	d2 := nl.Net("d2")
	nl.AddInstance("INV", []int{nl.Net("in")}, d1, 0)
	nl.AddInstance("INV", []int{d1}, d2, 0)
	ds := Analyze(nl, cell.AMS035())
	got := find(ds, "NL101")
	if len(got) != 2 {
		t.Fatalf("NL101 count = %d, want 2:\n%s", len(got), Format(ds, ""))
	}
	if got[0].Loc.Inst != 2 || got[1].Loc.Inst != 3 {
		t.Fatalf("NL101 at instances %d,%d, want 2,3", got[0].Loc.Inst, got[1].Loc.Inst)
	}
}

func TestStats(t *testing.T) {
	lib := cell.AMS035()
	nl := gates.New("t")
	a := nl.Net("a")
	b := nl.Net("b")
	x := nl.Net("x")
	y := nl.Net("y")
	nl.Inputs = []int{a, b}
	nl.Outputs = []int{y}
	nl.AddInstance("NAND2", []int{a, b}, x, 1)
	nl.AddInstance("INV", []int{x}, y, 2)
	st := ComputeStats(nl, lib)
	want := Stats{
		Cells:       2,
		Nets:        4,
		Literals:    3, // 2 + 1 pins
		Transistors: 6, // NAND2=4, INV=2
		Area:        27 + 18,
		Depth:       2,
		Critical:    0.08 + 0.06,
	}
	if st != want {
		t.Fatalf("ComputeStats = %+v, want %+v", st, want)
	}
	if !strings.Contains(st.String(), "2 cells") || !strings.Contains(st.String(), "depth 2") {
		t.Fatalf("Stats.String() = %q", st.String())
	}
}

func TestStatsFeedbackCut(t *testing.T) {
	// Depth must cut feedback like CriticalDelay does.
	nl := gates.New("seq")
	a := nl.Net("a")
	y := nl.Net("y")
	yb := nl.Net("yb")
	nl.Inputs = []int{a}
	nl.Outputs = []int{y}
	nl.AddInstance("C2", []int{a, yb}, y, 0)
	nl.AddInstance("INV", []int{y}, yb, 0)
	st := ComputeStats(nl, cell.AMS035())
	if st.Depth != 2 {
		t.Fatalf("Depth = %d, want 2 (a -> C2 -> INV, feedback cut)", st.Depth)
	}
}

func TestReportDiag(t *testing.T) {
	ds := Analyze(clean(), cell.AMS035())
	got := find(ds, "NL200")
	if len(got) != 1 || got[0].Severity != SevInfo {
		t.Fatalf("NL200 = %v, want one info diag", got)
	}
	if !strings.Contains(got[0].Message, "static report:") {
		t.Fatalf("NL200 message = %q", got[0].Message)
	}
}

func TestRender(t *testing.T) {
	d := Diag{
		Loc:      Loc{Inst: 12, Cell: "NAND2", Net: 3, Name: "a_r"},
		Severity: SevError,
		Code:     "NL004",
		Message:  "boom",
		Notes:    []string{"extra"},
	}
	got := d.Render("stack.opt")
	want := "stack.opt: g12(NAND2) net \"a_r\": error: NL004: boom\n\textra"
	if got != want {
		t.Fatalf("Render = %q, want %q", got, want)
	}
	if NoLoc.String() != "" {
		t.Fatalf("NoLoc renders %q, want empty", NoLoc.String())
	}
}

func TestCodesRegistered(t *testing.T) {
	// Every code a pass can emit must be in the registry; the registry
	// must not contain stale entries either (checked by listing).
	emitted := []string{"NL000", "NL001", "NL002", "NL003", "NL004", "NL005",
		"NL006", "NL007", "NL008", "NL009", "NL010", "NL100", "NL101", "NL200"}
	for _, c := range emitted {
		if _, ok := Codes[c]; !ok {
			t.Errorf("code %s not registered", c)
		}
	}
	if len(Codes) != len(emitted) {
		t.Errorf("Codes has %d entries, want %d", len(Codes), len(emitted))
	}
}

func TestDeterministicOrder(t *testing.T) {
	nl := clean()
	nl.AddInstance("INV", []int{nl.Net("in")}, nl.Net("mid"), 0) // NL001
	nl.Net("t$1")
	nl.Net("t_1") // NL007
	lib := cell.AMS035()
	first := Format(Analyze(nl, lib), "t")
	for i := 0; i < 10; i++ {
		if got := Format(Analyze(nl, lib), "t"); got != first {
			t.Fatalf("non-deterministic output:\n%s\nvs\n%s", first, got)
		}
	}
}

package netlint

import (
	"fmt"
	"sort"
	"strings"

	"balsabm/internal/cell"
	"balsabm/internal/gates"
)

// StructPass checks the netlist's own bookkeeping before any graph
// walk: net ids in range (NL000), globally unique net names (NL006),
// no collisions after Verilog sanitization (NL007), and no net listed
// twice among the primary ports (NL010). NL006/NL007 are errors
// because net names key everything downstream: the canonical-form
// synthesis cache reuses netlists via name substitution
// (gates.Netlist.Rename), and the Verilog writer declares one wire per
// sanitized name — a collision silently shorts two nets.
var StructPass = &Pass{
	Name: "struct",
	Doc:  "net-id bounds, unique names, Verilog-safe names, distinct ports",
	Run:  runStruct,
}

func runStruct(nl *gates.Netlist, lib *cell.Library, r *Reporter) {
	inRange := func(id int) bool { return id >= 0 && id < len(nl.NetNames) }
	malformed := false
	badID := func(loc Loc, what string, id int) {
		r.Errorf(loc, "NL000", "%s references net %d, outside the %d declared nets",
			what, id, len(nl.NetNames))
		malformed = true
	}
	for i, inst := range nl.Instances {
		for _, in := range inst.Inputs {
			if !inRange(in) {
				badID(InstLoc(nl, i), "instance input", in)
			}
		}
		if !inRange(inst.Output) {
			badID(InstLoc(nl, i), "instance output", inst.Output)
		}
	}
	for _, id := range nl.Inputs {
		if !inRange(id) {
			badID(NoLoc, "primary input list", id)
		}
	}
	for _, id := range nl.Outputs {
		if !inRange(id) {
			badID(NoLoc, "primary output list", id)
		}
	}
	if nl.Const0 >= len(nl.NetNames) {
		badID(NoLoc, "tied-low net", nl.Const0)
	}
	if malformed {
		return // name checks below would be meaningless
	}

	byName := map[string]int{}
	bySafe := map[string]int{}
	sanitize := strings.NewReplacer("$", "_", "+", "p", "-", "m", ".", "_")
	for id, name := range nl.NetNames {
		if prev, ok := byName[name]; ok {
			r.Errorf(NetLoc(nl, id), "NL006",
				"net name %q already names net %d; renaming and the synthesis cache key cannot distinguish them", name, prev)
			continue
		}
		byName[name] = id
		safe := sanitize.Replace(name)
		if prev, ok := bySafe[safe]; ok {
			r.Errorf(NetLoc(nl, id), "NL007",
				"net %q and net %q both sanitize to Verilog identifier %q; the emitted module would short them",
				name, nl.NetNames[prev], safe)
			continue
		}
		bySafe[safe] = id
	}

	seen := map[int]string{}
	for _, id := range nl.Inputs {
		if role, dup := seen[id]; dup {
			r.Warnf(NetLoc(nl, id), "NL010", "net already listed as a primary %s", role)
		}
		seen[id] = "input"
	}
	for _, id := range nl.Outputs {
		if role, dup := seen[id]; dup {
			r.Warnf(NetLoc(nl, id), "NL010", "net already listed as a primary %s", role)
		}
		seen[id] = "output"
	}
}

// CellsPass audits every instance against the library: the cell must
// exist (NL003) and the pin count must match its declared input count
// (NL004). These are errors — gates.Netlist evaluation panics on an
// unknown cell and silently mis-evaluates on an arity mismatch.
var CellsPass = &Pass{
	Name: "cells",
	Doc:  "unknown cells and port-arity mismatches against the library",
	Run:  runCells,
}

func runCells(nl *gates.Netlist, lib *cell.Library, r *Reporter) {
	for i, inst := range nl.Instances {
		c, ok := lib.Cells[inst.Cell]
		if !ok {
			r.Errorf(InstLoc(nl, i), "NL003", "cell %q is not in library %s", inst.Cell, lib.Name)
			continue
		}
		if len(inst.Inputs) != c.Inputs {
			r.Errorf(InstLoc(nl, i), "NL004",
				"%s has %d input pins, instance connects %d", inst.Cell, c.Inputs, len(inst.Inputs))
		}
	}
}

// DriversPass builds the driver relation once and audits it: every net
// has at most one driver (NL001); every consumed net and primary
// output has a source — a driving instance, a primary input, or the
// tied-low net (NL002); primary inputs and the tied-low net are not
// also driven (NL008, NL009); and driven nets feed something (NL100,
// warning — wasted area, not wrong hardware: the net may be a scoped
// observation point).
var DriversPass = &Pass{
	Name: "drivers",
	Doc:  "multiple drivers, floating nets, driven-but-unused nets",
	Run:  runDrivers,
}

func runDrivers(nl *gates.Netlist, lib *cell.Library, r *Reporter) {
	drivers := make([][]int, len(nl.NetNames)) // net -> driving instance indices
	consumed := make([]bool, len(nl.NetNames))
	for i, inst := range nl.Instances {
		drivers[inst.Output] = append(drivers[inst.Output], i)
		for _, in := range inst.Inputs {
			consumed[in] = true
		}
	}
	isInput := make([]bool, len(nl.NetNames))
	for _, id := range nl.Inputs {
		isInput[id] = true
	}
	isOutput := make([]bool, len(nl.NetNames))
	for _, id := range nl.Outputs {
		isOutput[id] = true
	}

	for id := range nl.NetNames {
		ds := drivers[id]
		if len(ds) > 1 {
			r.Errorf(NetLoc(nl, id), "NL001", "net has %d drivers", len(ds))
			for _, i := range ds {
				r.Note("driven by g%d(%s)", i, nl.Instances[i].Cell)
			}
		}
		hasSource := len(ds) > 0 || isInput[id] || id == nl.Const0
		if !hasSource && (consumed[id] || isOutput[id]) {
			role := "consumed by gates"
			if isOutput[id] {
				role = "a primary output"
			}
			r.Errorf(NetLoc(nl, id), "NL002", "net is %s but nothing drives it", role)
		}
		if len(ds) > 0 {
			if isInput[id] {
				r.Errorf(InstNetLoc(nl, ds[0], id), "NL008", "primary input is driven by an instance")
			}
			if id == nl.Const0 {
				r.Errorf(InstNetLoc(nl, ds[0], id), "NL009", "tied-low net is driven by an instance")
			}
			if !consumed[id] && !isOutput[id] && !isInput[id] {
				r.Warnf(InstNetLoc(nl, ds[0], id), "NL100", "driven net is never consumed")
			}
		}
	}
}

// statefulKind reports whether a cell holds state: its output is a
// legal head of a feedback loop (Muller C-elements and transparent
// latches). Unknown cells (NL003) are conservatively treated as
// combinational.
func statefulKind(lib *cell.Library, name string) bool {
	c, ok := lib.Cells[name]
	if !ok {
		return false
	}
	return c.Kind == cell.C || c.Kind == cell.Latch
}

// CyclesPass finds combinational cycles (NL005): closed paths through
// instance outputs that pass through neither a stateful cell nor a
// declared feedback point. Legal loops come in two structural shapes
// here: state held in a C-element or transparent latch, and the
// Burst-Mode machines' fundamental-mode feedback, where fed-back
// outputs and y<k> state variables close combinational loops that the
// hazard-free covers plus the fundamental-mode environment make safe.
// The cut set therefore mirrors techmap.CheckMapped's forced-net set
// exactly: stateful cell outputs, primary outputs, and y<k> state nets
// (the technology mapper's state-variable naming contract). A loop
// through none of those is an oscillator or a latch-by-accident, and
// the simulator's settle loop would spin on it.
var CyclesPass = &Pass{
	Name: "cycles",
	Doc:  "combinational feedback loops outside latches, C-elements and fundamental-mode feedback nets",
	Run:  runCycles,
}

// stateNet reports whether a net name is a Burst-Mode state variable:
// its final dot-segment is y<digits> (merged circuits namespace part
// internals as "part.net", so the prefix is stripped).
func stateNet(name string) bool {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		name = name[i+1:]
	}
	if len(name) < 2 || name[0] != 'y' {
		return false
	}
	for i := 1; i < len(name); i++ {
		if name[i] < '0' || name[i] > '9' {
			return false
		}
	}
	return true
}

func runCycles(nl *gates.Netlist, lib *cell.Library, r *Reporter) {
	// driver[net] = the instance driving it (-1 none), from the
	// netlist's cached index. NL001 already flags multi-driver nets;
	// the walk takes the first driver, as the index records.
	driver := nl.DriverIndex()
	cut := make([]bool, len(nl.NetNames))
	for _, id := range nl.Outputs {
		cut[id] = true
	}
	for id, name := range nl.NetNames {
		if stateNet(name) {
			cut[id] = true
		}
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	state := make([]int, len(nl.NetNames))
	reported := map[string]bool{}
	var path []int // net ids on the current DFS path
	var visit func(net int)
	visit = func(net int) {
		state[net] = gray
		path = append(path, net)
		if d := driver[net]; d >= 0 && !cut[net] && !statefulKind(lib, nl.Instances[d].Cell) {
			for _, in := range nl.Instances[d].Inputs {
				switch state[in] {
				case white:
					visit(in)
				case gray:
					reportCycle(nl, r, reported, path, in)
				}
			}
		}
		path = path[:len(path)-1]
		state[net] = black
	}
	for net := range nl.NetNames {
		if state[net] == white {
			visit(net)
		}
	}
}

// reportCycle extracts the cycle closed by back-edge to `to` from the
// DFS path and reports it once (cycles are canonicalized on their
// sorted net-id set, so each loop reports from one entry only).
func reportCycle(nl *gates.Netlist, r *Reporter, reported map[string]bool, path []int, to int) {
	start := 0
	for i, n := range path {
		if n == to {
			start = i
			break
		}
	}
	cycle := append([]int(nil), path[start:]...)
	ids := append([]int(nil), cycle...)
	sort.Ints(ids)
	key := fmt.Sprint(ids)
	if reported[key] {
		return
	}
	reported[key] = true
	r.Errorf(NetLoc(nl, to), "NL005",
		"combinational cycle through %d nets with no latch or C-element", len(cycle))
	// The DFS walks driver edges backwards (output to input), so the
	// recorded path lists the loop against signal flow; reverse it for
	// the note, which then reads source → sink.
	drivers := nl.DriverIndex()
	for i := len(cycle) - 1; i >= 0; i-- {
		net := cycle[i]
		d := drivers[net]
		if d >= 0 {
			r.Note("net %q driven by g%d(%s)", nl.NetNames[net], d, nl.Instances[d].Cell)
		} else {
			r.Note("net %q", nl.NetNames[net])
		}
	}
}

// DeadPass marks instances from which no primary output is reachable
// (NL101, warning): the gate's output cone never leaves the circuit,
// so it contributes area and power but no behaviour. The walk follows
// fanout through all cells (stateful included — a C-element feeding
// only dead logic is dead too).
var DeadPass = &Pass{
	Name: "dead",
	Doc:  "gates with no path to any primary output",
	Run:  runDead,
}

func runDead(nl *gates.Netlist, lib *cell.Library, r *Reporter) {
	live := make([]bool, len(nl.NetNames))
	for _, id := range nl.Outputs {
		live[id] = true
	}
	// Fixpoint: an instance is live when its output net is live; its
	// input nets then become live. Iterate until no change (instance
	// count bounds the rounds).
	for {
		changed := false
		for _, inst := range nl.Instances {
			if !live[inst.Output] {
				continue
			}
			for _, in := range inst.Inputs {
				if !live[in] {
					live[in] = true
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	for i, inst := range nl.Instances {
		if !live[inst.Output] {
			r.Warnf(InstNetLoc(nl, i, inst.Output), "NL101",
				"gate output reaches no primary output")
		}
	}
}

// ReportPass emits the static report (NL200, info): cell/net/literal/
// transistor counts, library area, longest topological gate depth and
// the critical register-free delay — the static face of the Table 3
// area numbers, computed without a simulation.
var ReportPass = &Pass{
	Name: "report",
	Doc:  "static literal/transistor-weighted area and depth report",
	Run:  runReport,
}

func runReport(nl *gates.Netlist, lib *cell.Library, r *Reporter) {
	st := ComputeStats(nl, lib)
	r.Infof(NoLoc, "NL200", "static report: %s", st)
}

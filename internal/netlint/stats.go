package netlint

import (
	"fmt"

	"balsabm/internal/cell"
	"balsabm/internal/gates"
)

// Stats is the static report for one netlist: size counts plus the two
// cost models the paper's Table 3 discusses (area) and the structural
// proxy for speed (depth). All of it is computed from the netlist
// alone — no simulation.
type Stats struct {
	Cells       int     // placed instances
	Nets        int     // declared nets
	Literals    int     // total input pins (literal-weighted area)
	Transistors int     // transistor-weighted area (static CMOS estimate)
	Area        float64 // library area sum, µm²
	Depth       int     // longest register-free path, in gates
	Critical    float64 // longest register-free path, in ns
}

// String renders the one-line static report used by the NL200 info
// diagnostic and the flow's -stats output.
func (s Stats) String() string {
	return fmt.Sprintf("%d cells, %d nets, %d literals, %d transistors, area %.0f um2, depth %d, critical %.2f ns",
		s.Cells, s.Nets, s.Literals, s.Transistors, s.Area, s.Depth, s.Critical)
}

// transistors estimates the static-CMOS transistor count of a cell:
// INV 2, BUF 4 (two inverters), n-input NAND/NOR 2n, AND/OR 2n+2
// (NAND/NOR plus an inverter), n-input XOR 6n−2 (chained 10T XOR2s),
// n-input C-element 2n+4 (n-stack pull-up/-down plus a keeper), LATCH
// 8 (pass-gate latch). Unknown cells count 0 — CellsPass already
// reports them as NL003.
func transistors(c *cell.Cell) int {
	n := c.Inputs
	switch c.Kind {
	case cell.Inv:
		return 2
	case cell.Buf:
		return 4
	case cell.Nand, cell.Nor:
		return 2 * n
	case cell.And, cell.Or:
		return 2*n + 2
	case cell.Xor:
		return 6*n - 2
	case cell.C:
		return 2*n + 4
	case cell.Latch:
		return 8
	}
	return 0
}

// ComputeStats computes the static report. Instances whose cell is not
// in the library contribute their pin count to Literals but nothing to
// Transistors or Area (NL003 flags them). Depth mirrors
// gates.Netlist.CriticalDelay exactly — cycles cut at re-entry — but
// counts gates instead of summing delays, so the two figures describe
// the same path model.
func ComputeStats(nl *gates.Netlist, lib *cell.Library) Stats {
	st := Stats{
		Cells: len(nl.Instances),
		Nets:  len(nl.NetNames),
	}
	for _, inst := range nl.Instances {
		st.Literals += len(inst.Inputs)
		if c, ok := lib.Cells[inst.Cell]; ok {
			st.Transistors += transistors(c)
			st.Area += c.Area
		}
	}
	st.Depth = depth(nl)
	st.Critical = criticalSafe(nl, lib)
	return st
}

// criticalSafe is CriticalDelay tolerant of unknown cells (which
// lib.Get would panic on): it substitutes zero delay for them, so a
// netlist with NL003 findings still gets a report.
func criticalSafe(nl *gates.Netlist, lib *cell.Library) float64 {
	for _, inst := range nl.Instances {
		if _, ok := lib.Cells[inst.Cell]; !ok {
			return 0
		}
	}
	return nl.CriticalDelay(lib)
}

// depth computes the longest register-free path length in gates, with
// the same traversal as CriticalDelay (drivers walked backwards from
// every net via the netlist's cached driver index, feedback cut at
// re-entry).
func depth(nl *gates.Netlist) int {
	drivers := nl.DriverIndex()
	memo := make([]int, len(nl.NetNames))
	state := make([]int, len(nl.NetNames)) // 0 new, 1 visiting, 2 done
	var arrive func(net int) int
	arrive = func(net int) int {
		if state[net] == 2 {
			return memo[net]
		}
		if state[net] == 1 {
			return 0 // feedback cut
		}
		state[net] = 1
		best := 0
		if d := drivers[net]; d >= 0 {
			inst := nl.Instances[d]
			for _, in := range inst.Inputs {
				if t := arrive(in) + 1; t > best {
					best = t
				}
			}
		}
		state[net] = 2
		memo[net] = best
		return best
	}
	worst := 0
	for net := range nl.NetNames {
		if t := arrive(net); t > worst {
			worst = t
		}
	}
	return worst
}

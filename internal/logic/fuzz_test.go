package logic

import "testing"

// FuzzPackedCubeAgreement feeds arbitrary cube pairs (up to 130
// variables, so every operation crosses word boundaries and exercises
// a ragged final word) through both cube engines and requires
// identical answers for Contains, Intersects, Intersect, Supercube,
// Cofactor and the point tests. The fuzz input encodes two cubes and
// a cofactor position from one byte string.
func FuzzPackedCubeAgreement(f *testing.F) {
	f.Add([]byte("\x05\x00012-012-01"))
	f.Add([]byte{130, 1, 0, 1, 2})
	f.Add([]byte{65, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		n := int(data[0])
		if n == 0 || n > 130 {
			return
		}
		v := int(data[1]) % n
		data = data[2:]
		lit := func(i int) Lit {
			if i < len(data) {
				return Lit(data[i] % 3)
			}
			return DC
		}
		c := make(Cube, n)
		d := make(Cube, n)
		for i := 0; i < n; i++ {
			c[i] = lit(i)
			d[i] = lit(i + n)
		}
		sp := NewSpace(n)
		pc, pd := sp.Pack(c), sp.Pack(d)

		if got := sp.Unpack(pc); !got.Equal(c) {
			t.Fatalf("round trip: %s -> %s", c, got)
		}
		if got, want := pc.Contains(pd), c.Contains(d); got != want {
			t.Fatalf("Contains(%s, %s): packed %t, reference %t", c, d, got, want)
		}
		if got, want := pd.Contains(pc), d.Contains(c); got != want {
			t.Fatalf("Contains(%s, %s): packed %t, reference %t", d, c, got, want)
		}
		if got, want := pc.Intersects(pd), c.Intersects(d); got != want {
			t.Fatalf("Intersects(%s, %s): packed %t, reference %t", c, d, got, want)
		}
		inter := sp.NewCube()
		ok := pc.IntersectInto(inter, pd)
		ref := c.Intersect(d)
		if ok != (ref != nil) {
			t.Fatalf("Intersect(%s, %s): packed ok=%t, reference %v", c, d, ok, ref)
		}
		if ok && !sp.Unpack(inter).Equal(ref) {
			t.Fatalf("Intersect(%s, %s): packed %s, reference %s", c, d, sp.Unpack(inter), ref)
		}
		super := sp.NewCube()
		pc.SupercubeInto(super, pd)
		if want := c.Supercube(d); !sp.Unpack(super).Equal(want) {
			t.Fatalf("Supercube(%s, %s): packed %s, reference %s", c, d, sp.Unpack(super), want)
		}
		// Distance 0 must coincide with intersection.
		if got, want := pc.Distance(pd) == 0, c.Intersects(d); got != want {
			t.Fatalf("Distance(%s, %s)==0 is %t, Intersects %t", c, d, got, want)
		}
		// Cofactor at v by One, on a scratch copy (packed mutates).
		scratch := pc.Clone()
		ok = scratch.Cofactor(v, One)
		refCo := c.Cofactor(v, One)
		if ok != (refCo != nil) {
			t.Fatalf("Cofactor(%s, %d): packed ok=%t, reference %v", c, v, ok, refCo)
		}
		if ok && !sp.Unpack(scratch).Equal(refCo) {
			t.Fatalf("Cofactor(%s, %d): packed %s, reference %s", c, v, sp.Unpack(scratch), refCo)
		}
		// Point containment: derive a minterm from d's specified values.
		point := make([]bool, n)
		for i := 0; i < n; i++ {
			point[i] = d[i] == One
		}
		if got, want := pc.ContainsPointWords(sp.PointWords(point)), c.ContainsPoint(point); got != want {
			t.Fatalf("ContainsPoint(%s, %v): packed %t, reference %t", c, point, got, want)
		}
	})
}

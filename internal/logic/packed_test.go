package logic

import (
	"math/rand"
	"testing"
)

func randCube(rng *rand.Rand, n int) Cube {
	c := make(Cube, n)
	for i := range c {
		c[i] = Lit(rng.Intn(3))
	}
	return c
}

func TestPackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 7, 63, 64, 65, 127, 128, 130} {
		sp := NewSpace(n)
		for trial := 0; trial < 50; trial++ {
			c := randCube(rng, n)
			if got := sp.Unpack(sp.Pack(c)); !got.Equal(c) {
				t.Fatalf("n=%d: round trip %s -> %s", n, c, got)
			}
		}
	}
}

func TestPackedOpsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{5, 64, 65, 130} {
		sp := NewSpace(n)
		for trial := 0; trial < 200; trial++ {
			c, d := randCube(rng, n), randCube(rng, n)
			pc, pd := sp.Pack(c), sp.Pack(d)
			if got, want := pc.Contains(pd), c.Contains(d); got != want {
				t.Fatalf("n=%d Contains(%s,%s)=%t want %t", n, c, d, got, want)
			}
			if got, want := pc.Intersects(pd), c.Intersects(d); got != want {
				t.Fatalf("n=%d Intersects(%s,%s)=%t want %t", n, c, d, got, want)
			}
			inter := sp.NewCube()
			ok := pc.IntersectInto(inter, pd)
			ref := c.Intersect(d)
			if ok != (ref != nil) {
				t.Fatalf("n=%d Intersect ok=%t want %t", n, ok, ref != nil)
			}
			if ok && !sp.Unpack(inter).Equal(ref) {
				t.Fatalf("n=%d Intersect(%s,%s)=%s want %s", n, c, d, sp.Unpack(inter), ref)
			}
			super := sp.NewCube()
			pc.SupercubeInto(super, pd)
			if want := c.Supercube(d); !sp.Unpack(super).Equal(want) {
				t.Fatalf("n=%d Supercube(%s,%s)=%s want %s", n, c, d, sp.Unpack(super), want)
			}
			if got, want := pc.Literals(), c.Literals(); got != want {
				t.Fatalf("n=%d Literals(%s)=%d want %d", n, c, got, want)
			}
		}
	}
}

func TestPackedCofactorAndPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sp := NewSpace(70)
	for trial := 0; trial < 200; trial++ {
		c := randCube(rng, 70)
		v := rng.Intn(70)
		val := Lit(rng.Intn(2))
		pc := sp.Pack(c)
		ok := pc.Cofactor(v, val)
		ref := c.Cofactor(v, val)
		if ok != (ref != nil) {
			t.Fatalf("Cofactor ok=%t want %t", ok, ref != nil)
		}
		if ok && !sp.Unpack(pc).Equal(ref) {
			t.Fatalf("Cofactor got %s want %s", sp.Unpack(pc), ref)
		}
		bitsv := make([]bool, 70)
		for i := range bitsv {
			bitsv[i] = rng.Intn(2) == 1
		}
		pw := sp.PointWords(bitsv)
		if got, want := sp.Pack(c).ContainsPointWords(pw), c.ContainsPoint(bitsv); got != want {
			t.Fatalf("ContainsPointWords=%t want %t (cube %s)", got, want, c)
		}
		if !sp.PackPoint(bitsv).ContainsPointWords(pw) {
			t.Fatal("packed point does not contain itself")
		}
	}
}

func TestPackedDistance(t *testing.T) {
	sp := NewSpace(130)
	a, err := ParseCube("10" + repeat("-", 126) + "01")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseCube("01" + repeat("-", 126) + "01")
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := sp.Pack(a), sp.Pack(b)
	if d := pa.Distance(pb); d != 2 {
		t.Fatalf("distance %d, want 2", d)
	}
	if pa.Distance1(pb) {
		t.Fatal("Distance1 true at distance 2")
	}
	// Flip one conflicting position to don't-care: distance drops to 1.
	pb.FreeLit(0)
	if !pa.Distance1(pb) {
		t.Fatal("Distance1 false at distance 1")
	}
	if pa.Distance1(pa) {
		t.Fatal("Distance1 true at distance 0")
	}
}

func TestSetLitFreeLit(t *testing.T) {
	sp := NewSpace(66)
	p := sp.NewCube()
	p.SetLit(65, One)
	if p.Lit(65) != One {
		t.Fatal("SetLit One")
	}
	p.SetLit(65, Zero)
	if p.Lit(65) != Zero {
		t.Fatal("SetLit must replace the previous literal")
	}
	p.FreeLit(65)
	if p.Lit(65) != DC {
		t.Fatal("FreeLit")
	}
}

func TestKeySet(t *testing.T) {
	for _, n := range []int{8, 130, 300} {
		sp := NewSpace(n)
		set := NewKeySet(sp)
		rng := rand.New(rand.NewSource(4))
		cubes := make([]Cube, 40)
		for i := range cubes {
			cubes[i] = randCube(rng, n)
		}
		for _, c := range cubes {
			set.Add(sp.Pack(c))
		}
		distinct := map[string]bool{}
		for _, c := range cubes {
			distinct[c.String()] = true
		}
		if set.Len() != len(distinct) {
			t.Fatalf("n=%d: KeySet has %d entries, want %d", n, set.Len(), len(distinct))
		}
		for _, c := range cubes {
			if set.Add(sp.Pack(c)) {
				t.Fatalf("n=%d: duplicate %s newly added", n, c)
			}
		}
	}
}

func TestPackedCoverHelpers(t *testing.T) {
	sp := NewSpace(3)
	cv := Cover{mustParse(t, "1-1"), mustParse(t, "-11")}
	pcv := sp.PackCover(cv)
	probe := mustParse(t, "0-1")
	if got, want := AnyIntersectsPacked(pcv, sp.Pack(probe)), cv.AnyIntersects(probe); got != want {
		t.Fatalf("AnyIntersectsPacked=%t want %t", got, want)
	}
	for p := 0; p < 8; p++ {
		bitsv := []bool{p&1 != 0, p&2 != 0, p&4 != 0}
		if got, want := EvalPointWords(pcv, sp.PointWords(bitsv)), cv.Eval(bitsv); got != want {
			t.Fatalf("EvalPointWords(%v)=%t want %t", bitsv, got, want)
		}
	}
}

// EvalCoverLanes evaluates 64 points per call; every lane must agree
// with the per-point EvalPointWords walk, including spaces wider than
// one word (cube planes span words, the lane result must not).
func TestEvalCoverLanesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 3, 9, 14, 70} {
		sp := NewSpace(n)
		for trial := 0; trial < 20; trial++ {
			cv := make(Cover, rng.Intn(6))
			for i := range cv {
				cv[i] = randCube(rng, n)
			}
			pcv := sp.PackCover(cv)
			// 64 random points, packed both ways.
			varLanes := make([]uint64, n)
			points := make([][]bool, 64)
			for l := range points {
				points[l] = make([]bool, n)
				for v := 0; v < n; v++ {
					if rng.Intn(2) == 1 {
						points[l][v] = true
						varLanes[v] |= 1 << uint(l)
					}
				}
			}
			got := EvalCoverLanes(pcv, varLanes)
			for l, pt := range points {
				want := EvalPointWords(pcv, sp.PointWords(pt))
				if got>>uint(l)&1 != 0 != want {
					t.Fatalf("n=%d trial=%d lane=%d: got %v want %v", n, trial, l, !want, want)
				}
			}
		}
	}
}

func mustParse(t *testing.T, s string) Cube {
	t.Helper()
	c, err := ParseCube(s)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func repeat(s string, n int) string {
	out := ""
	for i := 0; i < n; i++ {
		out += s
	}
	return out
}

// BenchmarkCubeOps measures the kernel primitives head to head:
// reference []Lit loops versus packed word-parallel planes, at a
// controller-sized (20 vars) and a stress-sized (130 vars) space.
func BenchmarkCubeOps(b *testing.B) {
	for _, n := range []int{20, 130} {
		rng := rand.New(rand.NewSource(7))
		sp := NewSpace(n)
		ref := make([]Cube, 64)
		packed := make([]PackedCube, 64)
		for i := range ref {
			ref[i] = randCube(rng, n)
			packed[i] = sp.Pack(ref[i])
		}
		b.Run(benchName("RefIntersects", n), func(b *testing.B) {
			b.ReportAllocs()
			acc := 0
			for i := 0; i < b.N; i++ {
				for j := range ref {
					if ref[0].Intersects(ref[j]) {
						acc++
					}
				}
			}
			_ = acc
		})
		b.Run(benchName("PackedIntersects", n), func(b *testing.B) {
			b.ReportAllocs()
			acc := 0
			for i := 0; i < b.N; i++ {
				for j := range packed {
					if packed[0].Intersects(packed[j]) {
						acc++
					}
				}
			}
			_ = acc
		})
		b.Run(benchName("RefContains", n), func(b *testing.B) {
			b.ReportAllocs()
			acc := 0
			for i := 0; i < b.N; i++ {
				for j := range ref {
					if ref[0].Contains(ref[j]) {
						acc++
					}
				}
			}
			_ = acc
		})
		b.Run(benchName("PackedContains", n), func(b *testing.B) {
			b.ReportAllocs()
			acc := 0
			for i := 0; i < b.N; i++ {
				for j := range packed {
					if packed[0].Contains(packed[j]) {
						acc++
					}
				}
			}
			_ = acc
		})
		b.Run(benchName("RefSupercube", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for j := 1; j < len(ref); j++ {
					_ = ref[j-1].Supercube(ref[j])
				}
			}
		})
		b.Run(benchName("PackedSupercube", n), func(b *testing.B) {
			b.ReportAllocs()
			dst := sp.NewCube()
			for i := 0; i < b.N; i++ {
				for j := 1; j < len(packed); j++ {
					packed[j-1].SupercubeInto(dst, packed[j])
				}
			}
		})
	}
}

func benchName(op string, n int) string {
	if n == 20 {
		return op + "/vars20"
	}
	return op + "/vars130"
}

// Package logic provides positional-cube algebra for two-level logic
// over a fixed variable set: containment, intersection, supercubes,
// cofactors and cover difference. It is the foundation of the
// hazard-free minimizer (package hfmin) and the technology mapper.
package logic

import (
	"fmt"
	"strings"
)

// Lit is the value of one variable position in a cube.
type Lit byte

const (
	Zero Lit = 0 // variable must be 0
	One  Lit = 1 // variable must be 1
	DC   Lit = 2 // variable unconstrained (don't care / absent literal)
)

// Cube is a product term over n variables.
type Cube []Lit

// NewCube returns the universal cube (all don't-cares) over n variables.
func NewCube(n int) Cube {
	c := make(Cube, n)
	for i := range c {
		c[i] = DC
	}
	return c
}

// Point builds a fully-specified cube (a minterm) from bits.
func Point(bits []bool) Cube {
	c := make(Cube, len(bits))
	for i, b := range bits {
		if b {
			c[i] = One
		} else {
			c[i] = Zero
		}
	}
	return c
}

// Clone returns a copy of the cube.
func (c Cube) Clone() Cube { return append(Cube(nil), c...) }

// String renders the cube as a 01- pattern ('-' for don't care).
func (c Cube) String() string {
	var sb strings.Builder
	for _, l := range c {
		switch l {
		case Zero:
			sb.WriteByte('0')
		case One:
			sb.WriteByte('1')
		default:
			sb.WriteByte('-')
		}
	}
	return sb.String()
}

// ParseCube reads a 01- pattern.
func ParseCube(s string) (Cube, error) {
	c := make(Cube, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
			c[i] = Zero
		case '1':
			c[i] = One
		case '-':
			c[i] = DC
		default:
			return nil, fmt.Errorf("logic: bad cube character %q in %q", s[i], s)
		}
	}
	return c, nil
}

// IsPoint reports whether every variable is specified.
func (c Cube) IsPoint() bool {
	for _, l := range c {
		if l == DC {
			return false
		}
	}
	return true
}

// Contains reports whether d is contained in c (every point of d is a
// point of c).
func (c Cube) Contains(d Cube) bool {
	for i, l := range c {
		if l != DC && d[i] != l {
			return false
		}
	}
	return true
}

// ContainsPoint reports whether the minterm given by bits lies in c.
func (c Cube) ContainsPoint(bits []bool) bool {
	for i, l := range c {
		if l == One && !bits[i] {
			return false
		}
		if l == Zero && bits[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether c and d share at least one point.
func (c Cube) Intersects(d Cube) bool {
	for i, l := range c {
		if l != DC && d[i] != DC && d[i] != l {
			return false
		}
	}
	return true
}

// Intersect returns the intersection cube, or nil if disjoint.
func (c Cube) Intersect(d Cube) Cube {
	out := make(Cube, len(c))
	for i, l := range c {
		switch {
		case l == DC:
			out[i] = d[i]
		case d[i] == DC || d[i] == l:
			out[i] = l
		default:
			return nil
		}
	}
	return out
}

// Supercube returns the smallest cube containing both c and d.
func (c Cube) Supercube(d Cube) Cube {
	out := make(Cube, len(c))
	for i, l := range c {
		if l == d[i] {
			out[i] = l
		} else {
			out[i] = DC
		}
	}
	return out
}

// Cofactor fixes variable v to value val, returning nil if c requires
// the opposite value, else c with position v freed.
func (c Cube) Cofactor(v int, val Lit) Cube {
	if c[v] != DC && c[v] != val {
		return nil
	}
	out := c.Clone()
	out[v] = DC
	return out
}

// With returns c with variable v set to val (nil if contradictory).
func (c Cube) With(v int, val Lit) Cube {
	if c[v] != DC && c[v] != val {
		return nil
	}
	out := c.Clone()
	out[v] = val
	return out
}

// FreeCount returns the number of don't-care positions.
func (c Cube) FreeCount() int {
	n := 0
	for _, l := range c {
		if l == DC {
			n++
		}
	}
	return n
}

// Literals returns the number of specified positions.
func (c Cube) Literals() int { return len(c) - c.FreeCount() }

// Equal reports cube equality.
func (c Cube) Equal(d Cube) bool {
	if len(c) != len(d) {
		return false
	}
	for i := range c {
		if c[i] != d[i] {
			return false
		}
	}
	return true
}

// Cover is a set of cubes (a sum of products).
type Cover []Cube

// String renders the cover one cube per line.
func (cv Cover) String() string {
	parts := make([]string, len(cv))
	for i, c := range cv {
		parts[i] = c.String()
	}
	return strings.Join(parts, "\n")
}

// Eval evaluates the cover at a minterm.
func (cv Cover) Eval(bits []bool) bool {
	for _, c := range cv {
		if c.ContainsPoint(bits) {
			return true
		}
	}
	return false
}

// AnyIntersects reports whether any cube of the cover intersects c.
func (cv Cover) AnyIntersects(c Cube) bool {
	for _, d := range cv {
		if c.Intersects(d) {
			return true
		}
	}
	return false
}

// ContainsCube reports whether c is entirely inside the union of the
// cover's cubes, by recursive case-splitting on a distinguishing
// variable (the standard cube-minus-cover emptiness test).
func (cv Cover) ContainsCube(c Cube) bool {
	// Fast paths.
	for _, d := range cv {
		if d.Contains(c) {
			return true
		}
	}
	// Restrict the cover to cubes intersecting c.
	var rel Cover
	for _, d := range cv {
		if d.Intersects(c) {
			rel = append(rel, d)
		}
	}
	if len(rel) == 0 {
		return false
	}
	// Pick a variable where some relevant cube is specified but c is
	// free, and split.
	for v := range c {
		if c[v] != DC {
			continue
		}
		for _, d := range rel {
			if d[v] != DC {
				c0 := c.With(v, Zero)
				c1 := c.With(v, One)
				return rel.ContainsCube(c0) && rel.ContainsCube(c1)
			}
		}
	}
	// All relevant cubes are DC wherever c is DC: containment would
	// have been caught by the fast path unless none contains c.
	return false
}

// Minus returns cubes covering the points of c not covered by cv.
func (cv Cover) Minus(c Cube) Cover {
	result := Cover{c}
	for _, d := range cv {
		var next Cover
		for _, r := range result {
			next = append(next, cubeMinus(r, d)...)
		}
		result = next
		if len(result) == 0 {
			return nil
		}
	}
	return result
}

// cubeMinus returns cubes covering r \ d.
func cubeMinus(r, d Cube) Cover {
	if !r.Intersects(d) {
		return Cover{r}
	}
	var out Cover
	cur := r.Clone()
	for v := range r {
		if d[v] == DC || r[v] == d[v] {
			continue
		}
		if r[v] != DC {
			continue // disjoint on v; unreachable given Intersects
		}
		// Split off the half outside d.
		other := One
		if d[v] == One {
			other = Zero
		}
		piece := cur.With(v, other)
		if piece != nil {
			out = append(out, piece)
		}
		cur = cur.With(v, d[v])
	}
	return out
}

// Dedup removes duplicate and contained cubes.
func (cv Cover) Dedup() Cover {
	var out Cover
	for i, c := range cv {
		keep := true
		for j, d := range cv {
			if i == j {
				continue
			}
			if d.Contains(c) && !c.Contains(d) {
				keep = false
				break
			}
			if c.Equal(d) && j < i {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, c)
		}
	}
	return out
}

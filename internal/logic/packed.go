package logic

import "math/bits"

// This file implements the bit-parallel cube engine: cubes packed as
// two bit planes of 64 variables per word, so containment,
// intersection, supercube and distance tests run word-parallel instead
// of per-literal. The []Lit Cube type above stays as the reference
// implementation (and the format of covers crossing package
// boundaries); the minimizer's inner loops run on PackedCube and
// translate at the edges. FuzzPackedCubeAgreement keeps the two
// implementations in lock-step.

// Space describes a packed universe of n variables and provides the
// packing/unpacking conversions. Word counts and tail handling live
// here so PackedCube operations stay branch-light.
type Space struct {
	n int // variables
	w int // words per plane
}

// NewSpace returns the packed universe of n variables.
func NewSpace(n int) *Space {
	return &Space{n: n, w: (n + 63) / 64}
}

// Vars returns the number of variables.
func (s *Space) Vars() int { return s.n }

// Words returns the number of 64-bit words per plane.
func (s *Space) Words() int { return s.w }

// PackedCube is a product term over a Space's variables: bit v of
// Ones means "variable v must be 1", bit v of Zeros "must be 0";
// neither bit set means don't-care. Bits at positions >= Vars() are
// always zero (every constructor and operation preserves this), so
// word loops never need tail masks.
type PackedCube struct {
	Ones  []uint64
	Zeros []uint64
}

// NewCube returns the universal cube (no specified literals).
func (s *Space) NewCube() PackedCube {
	return PackedCube{Ones: make([]uint64, s.w), Zeros: make([]uint64, s.w)}
}

// Pack converts a reference cube into packed form.
func (s *Space) Pack(c Cube) PackedCube {
	p := s.NewCube()
	for v, l := range c {
		switch l {
		case One:
			p.Ones[v>>6] |= 1 << uint(v&63)
		case Zero:
			p.Zeros[v>>6] |= 1 << uint(v&63)
		}
	}
	return p
}

// Unpack converts back to the reference representation.
func (s *Space) Unpack(p PackedCube) Cube {
	c := NewCube(s.n)
	for v := 0; v < s.n; v++ {
		w, b := v>>6, uint(v&63)
		switch {
		case p.Ones[w]>>b&1 != 0:
			c[v] = One
		case p.Zeros[w]>>b&1 != 0:
			c[v] = Zero
		}
	}
	return c
}

// PackPoint packs a minterm: every variable specified.
func (s *Space) PackPoint(point []bool) PackedCube {
	p := s.NewCube()
	for v, b := range point {
		if b {
			p.Ones[v>>6] |= 1 << uint(v&63)
		} else {
			p.Zeros[v>>6] |= 1 << uint(v&63)
		}
	}
	return p
}

// PointWords packs a minterm's values as one bit plane (bit v set iff
// the variable is 1) — the form ContainsPointWords consumes.
func (s *Space) PointWords(point []bool) []uint64 {
	out := make([]uint64, s.w)
	for v, b := range point {
		if b {
			out[v>>6] |= 1 << uint(v&63)
		}
	}
	return out
}

// Clone returns an independent copy.
func (p PackedCube) Clone() PackedCube {
	return PackedCube{
		Ones:  append([]uint64(nil), p.Ones...),
		Zeros: append([]uint64(nil), p.Zeros...),
	}
}

// CopyFrom overwrites p's planes with q's (same space).
func (p PackedCube) CopyFrom(q PackedCube) {
	copy(p.Ones, q.Ones)
	copy(p.Zeros, q.Zeros)
}

// Lit returns the literal at variable v.
func (p PackedCube) Lit(v int) Lit {
	w, b := v>>6, uint(v&63)
	if p.Ones[w]>>b&1 != 0 {
		return One
	}
	if p.Zeros[w]>>b&1 != 0 {
		return Zero
	}
	return DC
}

// SetLit specifies variable v (val must be Zero or One; use FreeLit
// for DC). Any previous literal at v is replaced.
func (p PackedCube) SetLit(v int, val Lit) {
	w, mask := v>>6, uint64(1)<<uint(v&63)
	p.Ones[w] &^= mask
	p.Zeros[w] &^= mask
	switch val {
	case One:
		p.Ones[w] |= mask
	case Zero:
		p.Zeros[w] |= mask
	}
}

// FreeLit clears variable v to don't-care.
func (p PackedCube) FreeLit(v int) {
	w, mask := v>>6, uint64(1)<<uint(v&63)
	p.Ones[w] &^= mask
	p.Zeros[w] &^= mask
}

// Equal reports plane equality.
func (p PackedCube) Equal(q PackedCube) bool {
	for i := range p.Ones {
		if p.Ones[i] != q.Ones[i] || p.Zeros[i] != q.Zeros[i] {
			return false
		}
	}
	return true
}

// Contains reports whether q is contained in p: everywhere p is
// specified, q must be specified the same way.
func (p PackedCube) Contains(q PackedCube) bool {
	for i := range p.Ones {
		if p.Ones[i]&^q.Ones[i] != 0 || p.Zeros[i]&^q.Zeros[i] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether p and q share a point: no variable is
// forced to opposite values.
func (p PackedCube) Intersects(q PackedCube) bool {
	for i := range p.Ones {
		if p.Ones[i]&q.Zeros[i] != 0 || p.Zeros[i]&q.Ones[i] != 0 {
			return false
		}
	}
	return true
}

// Distance counts the variables on which p and q conflict; 0 means
// they intersect.
func (p PackedCube) Distance(q PackedCube) int {
	d := 0
	for i := range p.Ones {
		d += bits.OnesCount64(p.Ones[i]&q.Zeros[i] | p.Zeros[i]&q.Ones[i])
	}
	return d
}

// Distance1 reports whether p and q conflict on exactly one variable
// (the consensus condition of the espresso family).
func (p PackedCube) Distance1(q PackedCube) bool {
	seen := false
	for i := range p.Ones {
		c := p.Ones[i]&q.Zeros[i] | p.Zeros[i]&q.Ones[i]
		if c == 0 {
			continue
		}
		if seen || c&(c-1) != 0 {
			return false
		}
		seen = true
	}
	return seen
}

// IntersectInto writes the intersection of p and q into dst,
// reporting false (dst contents unspecified) when they are disjoint.
// dst may alias p or q.
func (p PackedCube) IntersectInto(dst, q PackedCube) bool {
	ok := true
	for i := range p.Ones {
		o := p.Ones[i] | q.Ones[i]
		z := p.Zeros[i] | q.Zeros[i]
		if o&z != 0 {
			ok = false
		}
		dst.Ones[i] = o
		dst.Zeros[i] = z
	}
	return ok
}

// SupercubeInto writes the smallest cube containing p and q into dst.
// dst may alias p or q.
func (p PackedCube) SupercubeInto(dst, q PackedCube) {
	for i := range p.Ones {
		dst.Ones[i] = p.Ones[i] & q.Ones[i]
		dst.Zeros[i] = p.Zeros[i] & q.Zeros[i]
	}
}

// Cofactor frees variable v in place, reporting false (p unchanged)
// when p requires the opposite value — the packed analogue of
// Cube.Cofactor, minus the clone.
func (p PackedCube) Cofactor(v int, val Lit) bool {
	l := p.Lit(v)
	if l != DC && l != val {
		return false
	}
	p.FreeLit(v)
	return true
}

// ContainsPointWords reports whether the minterm given by its
// PointWords plane lies in p.
func (p PackedCube) ContainsPointWords(point []uint64) bool {
	for i := range p.Ones {
		if p.Ones[i]&^point[i] != 0 || p.Zeros[i]&point[i] != 0 {
			return false
		}
	}
	return true
}

// Literals counts the specified variables.
func (p PackedCube) Literals() int {
	n := 0
	for i := range p.Ones {
		n += bits.OnesCount64(p.Ones[i]) + bits.OnesCount64(p.Zeros[i])
	}
	return n
}

// keyWords is the plane-word capacity of the fixed-size Key (4 words
// per plane = 256 variables).
const keyWords = 4

// Key is an allocation-free comparable dedup key for cubes of spaces
// up to 256 variables. Spaces beyond that fall back to byte-string
// keys (see KeySet); no real controller comes anywhere near the
// limit, but the engine must not silently mis-dedup if one does.
type Key struct {
	ones  [keyWords]uint64
	zeros [keyWords]uint64
}

// Key builds the comparable key, reporting false when the space is too
// wide for the fixed-size form.
func (s *Space) Key(p PackedCube) (Key, bool) {
	if s.w > keyWords {
		return Key{}, false
	}
	var k Key
	copy(k.ones[:], p.Ones)
	copy(k.zeros[:], p.Zeros)
	return k, true
}

// AppendKeyBytes appends an exact byte-key for p (the wide-space
// fallback) to dst and returns the extended slice.
func AppendKeyBytes(dst []byte, p PackedCube) []byte {
	for _, plane := range [2][]uint64{p.Ones, p.Zeros} {
		for _, w := range plane {
			dst = append(dst,
				byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
				byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
		}
	}
	return dst
}

// KeySet is a set of packed cubes with exact membership: fixed-size
// comparable keys for spaces up to 256 variables, byte-string keys
// beyond. The zero value is not usable; call NewKeySet.
type KeySet struct {
	sp      *Space
	small   map[Key]struct{}
	big     map[string]struct{}
	scratch []byte
}

// NewKeySet returns an empty set over the given space.
func NewKeySet(sp *Space) *KeySet {
	s := &KeySet{sp: sp}
	if sp.w <= keyWords {
		s.small = make(map[Key]struct{})
	} else {
		s.big = make(map[string]struct{})
		s.scratch = make([]byte, 0, 16*sp.w)
	}
	return s
}

// Add inserts p, reporting whether it was newly added.
func (s *KeySet) Add(p PackedCube) bool {
	if s.small != nil {
		k, _ := s.sp.Key(p)
		if _, dup := s.small[k]; dup {
			return false
		}
		s.small[k] = struct{}{}
		return true
	}
	s.scratch = AppendKeyBytes(s.scratch[:0], p)
	if _, dup := s.big[string(s.scratch)]; dup {
		return false
	}
	s.big[string(s.scratch)] = struct{}{}
	return true
}

// Len returns the number of distinct cubes added.
func (s *KeySet) Len() int {
	if s.small != nil {
		return len(s.small)
	}
	return len(s.big)
}

// PackCover packs every cube of a cover.
func (s *Space) PackCover(cv Cover) []PackedCube {
	out := make([]PackedCube, len(cv))
	for i, c := range cv {
		out[i] = s.Pack(c)
	}
	return out
}

// AnyIntersectsPacked reports whether any cube of the packed cover
// intersects p.
func AnyIntersectsPacked(cover []PackedCube, p PackedCube) bool {
	for i := range cover {
		if cover[i].Intersects(p) {
			return true
		}
	}
	return false
}

// EvalPointWords evaluates a packed cover at a minterm given in
// PointWords form — the audit loops' replacement for Cover.Eval.
func EvalPointWords(cover []PackedCube, point []uint64) bool {
	for i := range cover {
		if cover[i].ContainsPointWords(point) {
			return true
		}
	}
	return false
}

// EvalCoverLanes evaluates a packed cover on 64 sample points at
// once: varLanes[v] carries the 64 values of variable v (bit l = the
// variable's value at point l), and bit l of the result is the
// cover's value at point l. This is the reference side of the
// compiled netlist audit: one call replaces 64 EvalPointWords walks.
func EvalCoverLanes(cover []PackedCube, varLanes []uint64) uint64 {
	var out uint64
	for i := range cover {
		c := &cover[i]
		acc := ^uint64(0)
		for w, plane := range c.Ones {
			for b := plane; b != 0; b &= b - 1 {
				acc &= varLanes[w<<6|bits.TrailingZeros64(b)]
				if acc == 0 {
					break
				}
			}
		}
		for w, plane := range c.Zeros {
			for b := plane; b != 0; b &= b - 1 {
				acc &^= varLanes[w<<6|bits.TrailingZeros64(b)]
				if acc == 0 {
					break
				}
			}
		}
		out |= acc
		if out == ^uint64(0) {
			return out
		}
	}
	return out
}

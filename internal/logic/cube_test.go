package logic

import (
	"testing"
	"testing/quick"
)

func cube(t *testing.T, s string) Cube {
	t.Helper()
	c, err := ParseCube(s)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestParseString(t *testing.T) {
	c := cube(t, "01-1")
	if c.String() != "01-1" {
		t.Fatalf("got %s", c)
	}
	if _, err := ParseCube("01x"); err == nil {
		t.Fatal("expected error")
	}
}

func TestContains(t *testing.T) {
	a := cube(t, "1--")
	b := cube(t, "10-")
	if !a.Contains(b) || b.Contains(a) {
		t.Fatal("containment wrong")
	}
	if !a.Contains(a) {
		t.Fatal("not reflexive")
	}
}

func TestIntersect(t *testing.T) {
	a := cube(t, "1-0")
	b := cube(t, "-10")
	x := a.Intersect(b)
	if x.String() != "110" {
		t.Fatalf("got %s", x)
	}
	c := cube(t, "0--")
	if a.Intersect(c) != nil || a.Intersects(c) {
		t.Fatal("should be disjoint")
	}
}

func TestSupercube(t *testing.T) {
	a := cube(t, "101")
	b := cube(t, "111")
	if got := a.Supercube(b).String(); got != "1-1" {
		t.Fatalf("got %s", got)
	}
}

func TestPointOps(t *testing.T) {
	p := Point([]bool{true, false, true})
	if p.String() != "101" || !p.IsPoint() {
		t.Fatalf("%s", p)
	}
	if !cube(t, "1--").ContainsPoint([]bool{true, false, true}) {
		t.Fatal("point containment")
	}
	if cube(t, "0--").ContainsPoint([]bool{true, false, true}) {
		t.Fatal("false positive")
	}
}

func TestCofactorWith(t *testing.T) {
	a := cube(t, "1-0")
	if a.Cofactor(0, Zero) != nil {
		t.Fatal("contradictory cofactor should be nil")
	}
	if got := a.Cofactor(1, One).String(); got != "1-0" {
		t.Fatalf("got %s", got)
	}
	if got := a.With(1, One).String(); got != "110" {
		t.Fatalf("got %s", got)
	}
	if a.With(0, Zero) != nil {
		t.Fatal("contradictory With should be nil")
	}
}

func TestCoverContainsCube(t *testing.T) {
	cv := Cover{cube(t, "0--"), cube(t, "1-1"), cube(t, "11-")}
	if !cv.ContainsCube(cube(t, "0-1")) {
		t.Fatal("direct containment missed")
	}
	// 1-- is covered by 1-1 union 11- plus? points: 100 missing.
	if cv.ContainsCube(cube(t, "1--")) {
		t.Fatal("100 is not covered")
	}
	// Split containment: -11 is in 0-- for x=0, 1-1 for x=1.
	if !cv.ContainsCube(cube(t, "-11")) {
		t.Fatal("split containment failed")
	}
}

func TestCoverMinus(t *testing.T) {
	cv := Cover{cube(t, "1--")}
	rem := cv.Minus(cube(t, "---"))
	// Remainder must be exactly the 0-- half.
	if len(rem) != 1 || rem[0].String() != "0--" {
		t.Fatalf("got %v", rem)
	}
	if out := (Cover{cube(t, "---")}).Minus(cube(t, "01-")); out != nil {
		t.Fatalf("expected empty remainder, got %v", out)
	}
}

func TestDedup(t *testing.T) {
	cv := Cover{cube(t, "1-1"), cube(t, "111"), cube(t, "1-1"), cube(t, "0--")}
	out := cv.Dedup()
	if len(out) != 2 {
		t.Fatalf("got %v", out)
	}
}

func TestEval(t *testing.T) {
	cv := Cover{cube(t, "1-"), cube(t, "-1")}
	cases := []struct {
		bits []bool
		want bool
	}{
		{[]bool{false, false}, false},
		{[]bool{true, false}, true},
		{[]bool{false, true}, true},
		{[]bool{true, true}, true},
	}
	for _, c := range cases {
		if cv.Eval(c.bits) != c.want {
			t.Fatalf("Eval(%v) != %v", c.bits, c.want)
		}
	}
}

// Property: Minus and ContainsCube agree, and Intersect is the greatest
// lower bound.
func TestQuickCubeAlgebra(t *testing.T) {
	gen := func(seed uint64, n int) Cube {
		c := make(Cube, n)
		for i := range c {
			c[i] = Lit(seed % 3)
			seed /= 3
		}
		return c
	}
	f := func(sa, sb uint64) bool {
		const n = 5
		a, b := gen(sa, n), gen(sb, n)
		inter := a.Intersect(b)
		if (inter != nil) != a.Intersects(b) {
			return false
		}
		if inter != nil {
			if !a.Contains(inter) || !b.Contains(inter) {
				return false
			}
		}
		sup := a.Supercube(b)
		if !sup.Contains(a) || !sup.Contains(b) {
			return false
		}
		// Minus: b covers a iff a minus {b} is empty.
		rem := (Cover{b}).Minus(a)
		if (rem == nil) != b.Contains(a) {
			return false
		}
		// ContainsCube on a singleton cover agrees with Contains.
		if (Cover{b}).ContainsCube(a) != b.Contains(a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: for all minterms, membership in (cover minus cube) matches
// set semantics.
func TestQuickMinusSemantics(t *testing.T) {
	gen := func(seed uint64, n int) Cube {
		c := make(Cube, n)
		for i := range c {
			c[i] = Lit(seed % 3)
			seed /= 3
		}
		return c
	}
	f := func(sa, sb, sc uint64) bool {
		const n = 4
		target := gen(sa, n)
		cv := Cover{gen(sb, n), gen(sc, n)}
		rem := cv.Minus(target)
		for m := 0; m < 1<<n; m++ {
			bits := make([]bool, n)
			for i := range bits {
				bits[i] = m&(1<<i) != 0
			}
			inTarget := target.ContainsPoint(bits)
			inCover := cv.Eval(bits)
			inRem := Cover(rem).Eval(bits)
			if inRem != (inTarget && !inCover) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

package petri

import (
	"testing"

	"balsabm/internal/ch"
)

func netOf(t *testing.T, src string) (*Net, *Graph) {
	t.Helper()
	body, err := ch.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	n, err := FromProgram(&ch.Program{Name: "t", Body: body})
	if err != nil {
		t.Fatal(err)
	}
	g, err := n.Reachability(0)
	if err != nil {
		t.Fatal(err)
	}
	return n, g
}

// labels reachable from the start, following silent closure.
func enabledLabels(g *Graph, from int) map[string]int {
	out := map[string]int{}
	seen := map[int]bool{}
	stack := []int{from}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[s] {
			continue
		}
		seen[s] = true
		for _, e := range g.Edges {
			if e.From != s {
				continue
			}
			if e.Label == "" {
				stack = append(stack, e.To)
			} else {
				out[e.Label] = e.To
			}
		}
	}
	return out
}

func TestFromCHSequence(t *testing.T) {
	_, g := netOf(t, `(rep (enc-early (p-to-p passive P) (p-to-p active A)))`)
	en := enabledLabels(g, g.Start)
	if _, ok := en["P_r+"]; !ok || len(en) != 1 {
		t.Fatalf("initially enabled: %v", en)
	}
	s := en["P_r+"]
	en = enabledLabels(g, s)
	if _, ok := en["A_r+"]; !ok {
		t.Fatalf("after P_r+: %v", en)
	}
}

// Loops produce finite reachability graphs with a back edge.
func TestFromCHLoopIsFinite(t *testing.T) {
	_, g := netOf(t, `(rep (enc-early (p-to-p passive P)
	    (seq (p-to-p active A) (p-to-p active B))))`)
	if g.States == 0 || g.States > 64 {
		t.Fatalf("suspicious state count %d", g.States)
	}
}

// Choice: both branches are enabled from the choice point; taking one
// disables the other.
func TestFromCHChoice(t *testing.T) {
	_, g := netOf(t, `(rep (mutex
	    (enc-early (p-to-p passive A1) (p-to-p active B))
	    (enc-early (p-to-p passive A2) (p-to-p active B))))`)
	en := enabledLabels(g, g.Start)
	if _, ok := en["A1_r+"]; !ok {
		t.Fatalf("A1_r+ not enabled: %v", en)
	}
	if _, ok := en["A2_r+"]; !ok {
		t.Fatalf("A2_r+ not enabled: %v", en)
	}
	after1 := enabledLabels(g, en["A1_r+"])
	if _, ok := after1["A2_r+"]; ok {
		t.Fatal("branches not mutually exclusive")
	}
}

// Concurrent input runs: both orders of a two-signal input burst exist.
func TestFromCHConcurrentInputs(t *testing.T) {
	_, g := netOf(t, `(rep (enc-middle (p-to-p passive A) (p-to-p passive B)))`)
	en := enabledLabels(g, g.Start)
	if len(en) != 2 {
		t.Fatalf("want both request orders: %v", en)
	}
	afterA := enabledLabels(g, en["A_r+"])
	if _, ok := afterA["B_r+"]; !ok {
		t.Fatalf("B_r+ not enabled after A_r+: %v", afterA)
	}
}

// Outputs stay ordered (the expansion's order is preserved).
func TestFromCHOrderedOutputs(t *testing.T) {
	_, g := netOf(t, `(rep (enc-early (p-to-p passive P)
	    (enc-middle (p-to-p active A) (p-to-p active B))))`)
	// After P_r+, the expansion emits A_r+ then B_r+ in order.
	en := enabledLabels(g, enabledLabels(g, g.Start)["P_r+"])
	if _, ok := en["A_r+"]; !ok {
		t.Fatalf("A_r+ not enabled: %v", en)
	}
	if _, ok := en["B_r+"]; ok {
		t.Fatalf("B_r+ enabled before A_r+: %v", en)
	}
}

// break splices past the loop: the guard's exit arm leads to the
// activation acknowledge.
func TestFromCHBreak(t *testing.T) {
	_, g := netOf(t, `(rep (enc-early (p-to-p passive go)
	    (rep (mux-ack q
	       (enc-early (p-to-p active body))
	       (seq (break))))))`)
	found := false
	for _, e := range g.Edges {
		if e.Label == "go_a+" {
			found = true
		}
	}
	if !found {
		t.Fatal("activation acknowledge unreachable after break")
	}
}

func TestFromCHErrors(t *testing.T) {
	// bgoto without a downstream label cannot arise from Expand, but
	// FromCH must reject malformed item streams defensively.
	if _, err := FromCH("bad", []ch.Item{ch.BGoto{Name: "nowhere"}}); err == nil {
		t.Fatal("dangling bgoto accepted")
	}
	if _, err := FromCH("bad2", []ch.Item{ch.Goto{Name: "nowhere"}}); err == nil {
		t.Fatal("dangling goto accepted")
	}
}

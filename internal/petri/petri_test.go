package petri

import (
	"testing"

	"balsabm/internal/bm"
)

func passivatorSpec(t *testing.T) *bm.Spec {
	t.Helper()
	sp, err := bm.Parse(`name passivator
input a_r 0
input b_r 0
output a_a 0
output b_a 0
0 1 a_r+ b_r+ | a_a+ b_a+
1 0 a_r- b_r- | a_a- b_a-
`)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestFromBMStructure(t *testing.T) {
	sp := passivatorSpec(t)
	n := FromBM(sp)
	// 2 state places + per arc: 2 in-wait + 2 in-done + 2 out-wait +
	// 2 out-done = 8 places; 2 arcs -> 18 places total.
	if n.Places != 18 {
		t.Fatalf("got %d places", n.Places)
	}
	// Per arc: fork + 2 inputs + join/fork + 2 outputs + join = 7.
	if len(n.Transitions) != 14 {
		t.Fatalf("got %d transitions", len(n.Transitions))
	}
	if len(n.Initial) != 1 {
		t.Fatalf("initial %v", n.Initial)
	}
}

func TestReachabilityInterleavings(t *testing.T) {
	sp := passivatorSpec(t)
	g, err := FromBM(sp).Reachability(0)
	if err != nil {
		t.Fatal(err)
	}
	// The two inputs of a burst must be allowed in either order: the
	// graph must contain both a_r+ then b_r+ and b_r+ then a_r+.
	next := func(s int, label string) (int, bool) {
		// follow silent edges then the labelled one
		seen := map[int]bool{}
		var stack = []int{s}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[u] {
				continue
			}
			seen[u] = true
			for _, e := range g.Edges {
				if e.From != u {
					continue
				}
				if e.Label == label {
					return e.To, true
				}
				if e.Label == "" {
					stack = append(stack, e.To)
				}
			}
		}
		return 0, false
	}
	s1, ok := next(g.Start, "a_r+")
	if !ok {
		t.Fatal("a_r+ not enabled initially")
	}
	if _, ok := next(s1, "b_r+"); !ok {
		t.Fatal("b_r+ not enabled after a_r+")
	}
	s2, ok := next(g.Start, "b_r+")
	if !ok {
		t.Fatal("b_r+ not enabled initially")
	}
	if _, ok := next(s2, "a_r+"); !ok {
		t.Fatal("a_r+ not enabled after b_r+")
	}
	// Outputs must not fire before the input burst completes.
	if _, ok := next(s1, "a_a+"); ok {
		t.Fatal("output fired before input burst complete")
	}
}

func TestReachabilityLimit(t *testing.T) {
	sp := passivatorSpec(t)
	if _, err := FromBM(sp).Reachability(2); err == nil {
		t.Fatal("expected limit error")
	}
}

func TestOneSafetyViolation(t *testing.T) {
	n := &Net{}
	p0 := n.AddPlace()
	p1 := n.AddPlace()
	n.Initial = []int{p0, p1}
	// Transition produces into an already-marked place.
	n.AddTransition("x+", []int{p0}, []int{p1})
	if _, err := n.Reachability(0); err == nil {
		t.Fatal("expected 1-safety error")
	}
}

func TestEmptyOutputBurstArc(t *testing.T) {
	sp, err := bm.Parse(`name x
input a 0
input b 0
output y 0
0 1 a+ |
1 0 b+ a- | y+
`)
	if err != nil {
		t.Fatal(err)
	}
	// (Not a valid BM loop — y never falls — but the net construction
	// and reachability must still work mechanically.)
	g, gerr := FromBM(sp).Reachability(0)
	if gerr != nil {
		t.Fatal(gerr)
	}
	if g.States == 0 {
		t.Fatal("no states")
	}
}

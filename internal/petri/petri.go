// Package petri implements 1-safe labelled Petri nets and their
// reachability graphs. In the paper's Section 4.3, CH programs are
// (manually) translated into Petri nets, which the trace-theory
// verifier AVER turns into trace structures; this package mechanizes
// that step. Nets are built from Burst-Mode specifications: the
// fork/join structure of a net is what gives input and output bursts
// their any-order interleaving semantics.
package petri

import (
	"fmt"
	"sort"
	"strings"

	"balsabm/internal/bm"
)

// Transition is a labelled Petri net transition. A transition with an
// empty Label is silent (an internal fork/join step).
type Transition struct {
	Label string // signal edge, e.g. "a_r+"; "" = silent
	Pre   []int  // places consumed
	Post  []int  // places produced
}

// Net is a 1-safe labelled Petri net.
type Net struct {
	Name        string
	Places      int
	Transitions []Transition
	Initial     []int // initially marked places
}

// AddPlace creates a new place and returns its index.
func (n *Net) AddPlace() int {
	n.Places++
	return n.Places - 1
}

// AddTransition appends a transition.
func (n *Net) AddTransition(label string, pre, post []int) {
	n.Transitions = append(n.Transitions, Transition{Label: label, Pre: pre, Post: post})
}

// sigLabel renders a burst edge as a transition label.
func sigLabel(s bm.Sig) string { return s.String() }

// FromBM translates a Burst-Mode specification into a 1-safe Petri net.
// Each specification state becomes a place. Each arc becomes a
// fork/join structure: a silent fork produces one waiting place per
// input edge; each input edge fires independently (any order); a silent
// join collects them and forks into one place per output edge; the
// outputs fire independently; a final silent join produces the target
// state's place. Arcs without outputs join directly into the target.
func FromBM(sp *bm.Spec) *Net {
	n := &Net{Name: sp.Name}
	statePlace := make([]int, sp.NStates)
	for i := range statePlace {
		statePlace[i] = n.AddPlace()
	}
	n.Initial = []int{statePlace[sp.Start]}
	for _, a := range sp.Arcs {
		// Input burst: fork, fire each edge, join.
		var waitIn, doneIn []int
		for range a.In {
			waitIn = append(waitIn, n.AddPlace())
			doneIn = append(doneIn, n.AddPlace())
		}
		n.AddTransition("", []int{statePlace[a.From]}, waitIn)
		for i, s := range a.In {
			n.AddTransition(sigLabel(s), []int{waitIn[i]}, []int{doneIn[i]})
		}
		if len(a.Out) == 0 {
			n.AddTransition("", doneIn, []int{statePlace[a.To]})
			continue
		}
		var waitOut, doneOut []int
		for range a.Out {
			waitOut = append(waitOut, n.AddPlace())
			doneOut = append(doneOut, n.AddPlace())
		}
		n.AddTransition("", doneIn, waitOut)
		for i, s := range a.Out {
			n.AddTransition(sigLabel(s), []int{waitOut[i]}, []int{doneOut[i]})
		}
		n.AddTransition("", doneOut, []int{statePlace[a.To]})
	}
	return n
}

// Marking is a set of marked places, canonically sorted.
type Marking []int

func (m Marking) key() string {
	parts := make([]string, len(m))
	for i, p := range m {
		parts[i] = fmt.Sprint(p)
	}
	return strings.Join(parts, ",")
}

func (m Marking) has(p int) bool {
	for _, x := range m {
		if x == p {
			return true
		}
	}
	return false
}

// Edge is a labelled edge of a reachability graph.
type Edge struct {
	From, To int
	Label    string // "" = silent
}

// Graph is the reachability graph of a net: an automaton whose states
// are reachable markings.
type Graph struct {
	Name   string
	States int
	Start  int
	Edges  []Edge
}

// enabled reports whether t can fire under m.
func enabled(m Marking, t Transition) bool {
	for _, p := range t.Pre {
		if !m.has(p) {
			return false
		}
	}
	return true
}

// fire computes the successor marking (assumes enabled; 1-safety is
// checked by the caller).
func fire(m Marking, t Transition) (Marking, error) {
	out := make(Marking, 0, len(m)+len(t.Post))
	consumed := map[int]bool{}
	for _, p := range t.Pre {
		consumed[p] = true
	}
	for _, p := range m {
		if !consumed[p] {
			out = append(out, p)
		}
	}
	for _, p := range t.Post {
		if out.has(p) {
			return nil, fmt.Errorf("petri: transition %q violates 1-safety at place %d", t.Label, p)
		}
		out = append(out, p)
	}
	sort.Ints(out)
	return out, nil
}

// Reachability explores the net's state space, returning its
// reachability graph. An error is returned if the net is not 1-safe or
// if the state space exceeds limit markings (0 means a default of 1e6).
func (n *Net) Reachability(limit int) (*Graph, error) {
	if limit <= 0 {
		limit = 1_000_000
	}
	g := &Graph{Name: n.Name}
	index := map[string]int{}
	var markings []Marking
	intern := func(m Marking) int {
		k := m.key()
		if i, ok := index[k]; ok {
			return i
		}
		i := len(markings)
		index[k] = i
		markings = append(markings, m)
		return i
	}
	init := append(Marking{}, n.Initial...)
	sort.Ints(init)
	g.Start = intern(init)
	for i := 0; i < len(markings); i++ {
		if len(markings) > limit {
			return nil, fmt.Errorf("petri: state space exceeds %d markings", limit)
		}
		m := markings[i]
		for _, t := range n.Transitions {
			if !enabled(m, t) {
				continue
			}
			next, err := fire(m, t)
			if err != nil {
				return nil, err
			}
			g.Edges = append(g.Edges, Edge{From: i, To: intern(next), Label: t.Label})
		}
	}
	g.States = len(markings)
	return g, nil
}

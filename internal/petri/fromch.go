package petri

import (
	"fmt"

	"balsabm/internal/ch"
)

// FromCH translates a CH program's flattened four-phase expansion into
// a labelled Petri net — the mechanized version of the paper's manual
// CH-to-Petri-net translation in Section 4.3.
//
// Semantics: transitions follow the expansion order. Runs of
// consecutive input transitions are made concurrent (the environment
// may deliver them in any order), while output transitions keep their
// specified order. rep loops become back edges; break splices control
// past the innermost loop; mutex/mux choices become free-choice
// conflicts.
func FromCH(name string, items []ch.Item) (*Net, error) {
	n := &Net{Name: name}
	start := n.AddPlace()
	n.Initial = []int{start}
	b := &chBuilder{net: n, labels: map[string]int{}}
	if err := b.walk(items, start); err != nil {
		return nil, fmt.Errorf("petri: %s: %w", name, err)
	}
	return n, nil
}

// FromProgram expands and translates a CH program.
func FromProgram(p *ch.Program) (*Net, error) {
	x, err := ch.Expand(p.Body)
	if err != nil {
		return nil, err
	}
	return FromCH(p.Name, x.Flatten())
}

type chBuilder struct {
	net    *Net
	labels map[string]int // label name -> place
}

func label(t ch.Trans) string {
	edge := "-"
	if t.Rise {
		edge = "+"
	}
	return t.Signal + edge
}

func (b *chBuilder) walk(items []ch.Item, cur int) error {
	for i := 0; i < len(items); i++ {
		switch it := items[i].(type) {
		case ch.Trans:
			if it.Dir == ch.In {
				// Collect the maximal run of consecutive inputs.
				j := i
				var run []ch.Trans
				for ; j < len(items); j++ {
					t, ok := items[j].(ch.Trans)
					if !ok || t.Dir != ch.In {
						break
					}
					run = append(run, t)
				}
				i = j - 1
				if len(run) == 1 {
					next := b.net.AddPlace()
					b.net.AddTransition(label(run[0]), []int{cur}, []int{next})
					cur = next
					continue
				}
				// Fork, fire each input independently, join.
				var waits, dones []int
				for range run {
					waits = append(waits, b.net.AddPlace())
					dones = append(dones, b.net.AddPlace())
				}
				b.net.AddTransition("", []int{cur}, waits)
				for k, t := range run {
					b.net.AddTransition(label(t), []int{waits[k]}, []int{dones[k]})
				}
				next := b.net.AddPlace()
				b.net.AddTransition("", dones, []int{next})
				cur = next
				continue
			}
			next := b.net.AddPlace()
			b.net.AddTransition(label(it), []int{cur}, []int{next})
			cur = next
		case ch.Label:
			if bound, ok := b.labels[it.Name]; ok {
				b.net.AddTransition("", []int{cur}, []int{bound})
				cur = bound
				continue
			}
			b.labels[it.Name] = cur
		case ch.Goto:
			bound, ok := b.labels[it.Name]
			if !ok {
				return fmt.Errorf("goto to unbound label %s", it.Name)
			}
			b.net.AddTransition("", []int{cur}, []int{bound})
			return nil // rest of this path is unreachable
		case ch.BGoto:
			j := i + 1
			for ; j < len(items); j++ {
				if l, ok := items[j].(ch.Label); ok && l.Name == it.Name {
					break
				}
			}
			if j == len(items) {
				return fmt.Errorf("bgoto to label %s not found downstream", it.Name)
			}
			i = j
		case ch.Choice:
			rest := items[i+1:]
			for bi, branch := range it.Branches {
				seq := make([]ch.Item, 0, len(branch)+len(rest))
				seq = append(seq, branch...)
				seq = append(seq, rest...)
				if err := b.walk(seq, cur); err != nil {
					return fmt.Errorf("choice branch %d: %w", bi+1, err)
				}
			}
			return nil
		default:
			return fmt.Errorf("unknown item %T", it)
		}
	}
	return nil
}

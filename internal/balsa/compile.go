package balsa

import (
	"fmt"
	"math/bits"
	"sort"

	"balsabm/internal/hc"
)

// Compile performs syntax-directed translation of a parsed program into
// a handshake-component netlist, as balsa-c does: every language
// construct maps to a fixed component pattern.
//
//   - ";"  -> binary sequencer tree
//   - "||" -> binary concur tree
//   - multiple activations of the same sync port or shared procedure
//     merge through a Call component (Balsa's CallMux)
//   - v := e, ch ! e, ch ? v -> transferrer (Fetch) plus a pull network
//     of function/constant/read components for e
//   - if/case -> data-dependent selector (CaseSel) feeding the arm
//     activations
//
// Each procedure becomes an entry point activated on a sync channel
// bearing its name.
func Compile(prog *Program, designName string) (*hc.Netlist, error) {
	c := &compiler{
		n:     &hc.Netlist{Name: designName},
		vars:  map[string]*varInfo{},
		mems:  map[string]*MemDecl{},
		ports: map[string]Param{},
	}
	for _, v := range prog.Vars {
		if err := c.declareVar(v); err != nil {
			return nil, err
		}
	}
	for _, m := range prog.Mems {
		m := m
		if _, dup := c.mems[m.Name]; dup {
			return nil, fmt.Errorf("balsa: duplicate memory %q", m.Name)
		}
		c.mems[m.Name] = &m
		c.n.Add(&hc.Component{Kind: hc.KMemory, Name: m.Name, Width: m.Width, Size: m.Size})
	}
	for _, proc := range prog.Procedures {
		if err := c.procedure(proc); err != nil {
			return nil, err
		}
	}
	// Emit variables after all read/write ports are known.
	var names []string
	for name := range c.vars {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := c.vars[name]
		c.n.Add(&hc.Component{
			Kind: hc.KVariable, Name: name, Width: v.width,
			Write: name + ".w", Reads: v.reads,
		})
	}
	return c.n, nil
}

// CompileSource parses and compiles in one step.
func CompileSource(src, designName string) (*hc.Netlist, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(prog, designName)
}

type varInfo struct {
	width int
	reads []string
}

type compiler struct {
	n     *hc.Netlist
	vars  map[string]*varInfo
	mems  map[string]*MemDecl
	ports map[string]Param
	seq   int

	// per-procedure state
	proc      string
	shared    map[string]*sharedState
	syncSites map[string][]string // sync port -> activation sites
}

type sharedState struct {
	body  Stmt
	sites []string
}

func (c *compiler) fresh(prefix string) string {
	c.seq++
	return fmt.Sprintf("%s.%s%d", c.proc, prefix, c.seq)
}

func (c *compiler) declareVar(v VarDecl) error {
	if _, dup := c.vars[v.Name]; dup {
		return fmt.Errorf("balsa: duplicate variable %q", v.Name)
	}
	c.vars[v.Name] = &varInfo{width: v.Width}
	return nil
}

// readChan allocates a fresh read port on a variable.
func (c *compiler) readChan(name string) (string, int, error) {
	v, ok := c.vars[name]
	if !ok {
		return "", 0, fmt.Errorf("balsa: unknown variable %q", name)
	}
	ch := fmt.Sprintf("%s.r%d", name, len(v.reads)+1)
	v.reads = append(v.reads, ch)
	return ch, v.width, nil
}

func (c *compiler) procedure(proc *Procedure) error {
	c.proc = proc.Name
	c.shared = map[string]*sharedState{}
	c.syncSites = map[string][]string{}
	for _, p := range proc.Params {
		if _, dup := c.ports[p.Name]; dup && c.ports[p.Name] != p {
			return fmt.Errorf("balsa: port %q redeclared differently", p.Name)
		}
		c.ports[p.Name] = p
	}
	for _, v := range proc.Vars {
		if err := c.declareVar(v); err != nil {
			return err
		}
	}
	for _, s := range proc.Shared {
		if _, dup := c.shared[s.Name]; dup {
			return fmt.Errorf("balsa: duplicate shared procedure %q", s.Name)
		}
		c.shared[s.Name] = &sharedState{body: s.Body}
	}
	// The procedure body is activated on a channel named after it.
	if err := c.stmt(proc.Body, proc.Name); err != nil {
		return err
	}
	// Shared procedures: single call sites inline directly; multiple
	// sites merge through a Call component. A shared procedure may call
	// other shared procedures, so each is compiled only after every
	// potential caller (callers before callees — hardware cannot
	// recurse, so the call graph must be acyclic).
	compiled := map[string]bool{}
	for len(compiled) < len(c.shared) {
		progress := false
		var names []string
		for name := range c.shared {
			if !compiled[name] {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			// Only compile once no uncompiled shared procedure can
			// still add call sites.
			blocked := false
			for other, so := range c.shared {
				if other != name && !compiled[other] && callsShared(so.body, name) {
					blocked = true
					break
				}
			}
			if blocked {
				continue
			}
			s := c.shared[name]
			switch len(s.sites) {
			case 0:
				return fmt.Errorf("balsa: shared procedure %q is never called", name)
			case 1:
				if err := c.stmt(s.body, s.sites[0]); err != nil {
					return err
				}
			default:
				act := fmt.Sprintf("%s.%s", proc.Name, name)
				c.n.Add(&hc.Component{
					Kind: hc.KCall, Name: c.fresh("call"),
					Subs: s.sites, Out: act,
				})
				if err := c.stmt(s.body, act); err != nil {
					return err
				}
			}
			compiled[name] = true
			progress = true
		}
		if !progress {
			return fmt.Errorf("balsa: recursive shared procedures in %q", proc.Name)
		}
	}
	// Sync ports: multiple activation sites merge through a Call.
	var syncNames []string
	for name := range c.syncSites {
		syncNames = append(syncNames, name)
	}
	sort.Strings(syncNames)
	for _, name := range syncNames {
		sites := c.syncSites[name]
		if len(sites) > 1 {
			c.n.Add(&hc.Component{
				Kind: hc.KCall, Name: c.fresh("callmux"),
				Subs: sites, Out: name,
			})
		}
	}
	c.finalizeAliases()
	return nil
}

// callsShared reports whether a statement (transitively through its
// structure, not through other shared procedures) contains a call to
// the named shared procedure.
func callsShared(s Stmt, name string) bool {
	switch n := s.(type) {
	case CallStmt:
		return n.Name == name
	case SeqStmt:
		for _, sub := range n.Stmts {
			if callsShared(sub, name) {
				return true
			}
		}
	case ParStmt:
		for _, sub := range n.Stmts {
			if callsShared(sub, name) {
				return true
			}
		}
	case IfStmt:
		if callsShared(n.Then, name) {
			return true
		}
		if n.Else != nil && callsShared(n.Else, name) {
			return true
		}
	case CaseStmt:
		for _, arm := range n.Arms {
			if callsShared(arm, name) {
				return true
			}
		}
		if n.Else != nil && callsShared(n.Else, name) {
			return true
		}
	}
	return false
}

// renameChannel rewrites one channel name throughout the netlist (used
// to alias a statement's activation to a specific channel).
func (c *compiler) renameChannel(old, new string) {
	for _, comp := range c.n.Components {
		fields := []*string{&comp.Act, &comp.Write, &comp.Src, &comp.Dst, &comp.Out,
			&comp.Sel, &comp.Addr, &comp.Data}
		for _, f := range fields {
			if *f == old {
				*f = new
			}
		}
		lists := [][]string{comp.Subs, comp.Reads, comp.Ins, comp.Outs}
		for _, l := range lists {
			for i := range l {
				if l[i] == old {
					l[i] = new
				}
			}
		}
	}
}

// stmt compiles a statement activated on channel act.
func (c *compiler) stmt(s Stmt, act string) error {
	switch n := s.(type) {
	case SeqStmt:
		return c.compose(hc.KSequencer, "seq", n.Stmts, act)
	case ParStmt:
		return c.compose(hc.KConcur, "par", n.Stmts, act)
	case SyncStmt:
		p, ok := c.ports[n.Chan]
		if !ok || p.Kind != "sync" {
			return fmt.Errorf("balsa: sync on %q, which is not a sync port", n.Chan)
		}
		// Record an activation site; single sites alias directly.
		site := fmt.Sprintf("%s.u%d", n.Chan, len(c.syncSites[n.Chan])+1)
		c.syncSites[n.Chan] = append(c.syncSites[n.Chan], site)
		c.renameChannel(act, site)
		return nil
	case CallStmt:
		sh, ok := c.shared[n.Name]
		if !ok {
			return fmt.Errorf("balsa: call of unknown shared procedure %q", n.Name)
		}
		site := fmt.Sprintf("%s.%s.s%d", c.proc, n.Name, len(sh.sites)+1)
		sh.sites = append(sh.sites, site)
		c.renameChannel(act, site)
		return nil
	case ContinueStmt:
		c.n.Add(&hc.Component{Kind: hc.KContinue, Name: c.fresh("skip"), Act: act})
		return nil
	case AssignStmt:
		v, ok := c.vars[n.Var]
		if !ok {
			return fmt.Errorf("balsa: assignment to unknown variable %q", n.Var)
		}
		src, _, err := c.expr(n.Expr, v.width)
		if err != nil {
			return err
		}
		c.n.Add(&hc.Component{Kind: hc.KFetch, Name: c.fresh("f"), Act: act, Src: src, Dst: n.Var + ".w"})
		return nil
	case MemWriteStmt:
		m, ok := c.mems[n.Mem]
		if !ok {
			return fmt.Errorf("balsa: write to unknown memory %q", n.Mem)
		}
		addr, _, err := c.expr(n.Addr, addrWidth(m.Size))
		if err != nil {
			return err
		}
		data, _, err := c.expr(n.Expr, m.Width)
		if err != nil {
			return err
		}
		c.n.Add(&hc.Component{Kind: hc.KMemWrite, Name: c.fresh("mw"), Act: act,
			Mem: n.Mem, Addr: addr, Data: data, Width: m.Width})
		return nil
	case OutputStmt:
		p, ok := c.ports[n.Chan]
		if !ok || p.Kind != "output" {
			return fmt.Errorf("balsa: output on %q, which is not an output port", n.Chan)
		}
		src, _, err := c.expr(n.Expr, p.Width)
		if err != nil {
			return err
		}
		c.n.Add(&hc.Component{Kind: hc.KFetch, Name: c.fresh("f"), Act: act, Src: src, Dst: n.Chan})
		return nil
	case InputStmt:
		p, ok := c.ports[n.Chan]
		if !ok || p.Kind != "input" {
			return fmt.Errorf("balsa: input on %q, which is not an input port", n.Chan)
		}
		if _, ok := c.vars[n.Var]; !ok {
			return fmt.Errorf("balsa: input into unknown variable %q", n.Var)
		}
		c.n.Add(&hc.Component{Kind: hc.KFetch, Name: c.fresh("f"), Act: act, Src: n.Chan, Dst: n.Var + ".w"})
		return nil
	case IfStmt:
		cond, _, err := c.expr(n.Cond, 1)
		if err != nil {
			return err
		}
		thenAct := c.fresh("then")
		elseAct := c.fresh("else")
		c.n.Add(&hc.Component{Kind: hc.KCaseSel, Name: c.fresh("if"), Act: act,
			Sel: cond, Outs: []string{elseAct, thenAct}})
		if err := c.stmt(n.Then, thenAct); err != nil {
			return err
		}
		if n.Else != nil {
			return c.stmt(n.Else, elseAct)
		}
		c.n.Add(&hc.Component{Kind: hc.KContinue, Name: c.fresh("skip"), Act: elseAct})
		return nil
	case CaseStmt:
		max := 0
		for idx := range n.Arms {
			if idx < 0 {
				return fmt.Errorf("balsa: negative case arm")
			}
			if idx > max {
				max = idx
			}
		}
		sel, _, err := c.expr(n.Sel, addrWidth(max+1))
		if err != nil {
			return err
		}
		outs := make([]string, max+1)
		for i := range outs {
			outs[i] = c.fresh(fmt.Sprintf("arm%d_", i))
		}
		c.n.Add(&hc.Component{Kind: hc.KCaseSel, Name: c.fresh("case"), Act: act,
			Sel: sel, Outs: outs})
		for i := 0; i <= max; i++ {
			body, ok := n.Arms[i]
			if !ok {
				body = n.Else
			}
			if body == nil {
				body = ContinueStmt{}
			}
			if err := c.stmt(body, outs[i]); err != nil {
				return err
			}
		}
		// Selector values beyond max complete without activation
		// (CaseSel's out-of-range behavior), matching "else continue";
		// an explicit else body beyond max is not representable.
		return nil
	default:
		return fmt.Errorf("balsa: unknown statement %T", s)
	}
}

// compose builds a binary sequencer/concur tree over the sub-statements.
func (c *compiler) compose(kind, prefix string, stmts []Stmt, act string) error {
	var build func(ss []Stmt, act string) error
	build = func(ss []Stmt, act string) error {
		if len(ss) == 1 {
			return c.stmt(ss[0], act)
		}
		mid := (len(ss) + 1) / 2
		left := c.fresh(prefix + "l")
		right := c.fresh(prefix + "r")
		c.n.Add(&hc.Component{Kind: kind, Name: c.fresh(prefix), Act: act, Subs: []string{left, right}})
		if err := build(ss[:mid], left); err != nil {
			return err
		}
		return build(ss[mid:], right)
	}
	return build(stmts, act)
}

// finalizeAliases collapses single-site sync ports back to the port
// name (called from procedure()).
func (c *compiler) finalizeAliases() {
	for name, sites := range c.syncSites {
		if len(sites) == 1 {
			c.renameChannel(sites[0], name)
		}
	}
}

// expr compiles an expression into a pull network, returning its served
// channel and width.
func (c *compiler) expr(e Expr, hint int) (string, int, error) {
	switch n := e.(type) {
	case NumExpr:
		w := bits.Len64(n.Value)
		if w == 0 {
			w = 1
		}
		if hint > w {
			w = hint
		}
		ch := c.fresh("k")
		c.n.Add(&hc.Component{Kind: hc.KConst, Name: c.fresh("const"), Out: ch, Value: n.Value, Width: w})
		return ch, w, nil
	case VarExpr:
		if p, ok := c.ports[n.Name]; ok && p.Kind == "input" {
			// Pulling an input port directly.
			return n.Name, p.Width, nil
		}
		ch, w, err := c.readChan(n.Name)
		return ch, w, err
	case MemReadExpr:
		m, ok := c.mems[n.Mem]
		if !ok {
			return "", 0, fmt.Errorf("balsa: read of unknown memory %q", n.Mem)
		}
		addr, _, err := c.expr(n.Addr, addrWidth(m.Size))
		if err != nil {
			return "", 0, err
		}
		ch := c.fresh("m")
		c.n.Add(&hc.Component{Kind: hc.KMemRead, Name: c.fresh("mr"), Out: ch,
			Mem: n.Mem, Addr: addr, Width: m.Width})
		return ch, m.Width, nil
	case BinExpr:
		a, wa, err := c.expr(n.A, hint)
		if err != nil {
			return "", 0, err
		}
		b, wb, err := c.expr(n.B, hint)
		if err != nil {
			return "", 0, err
		}
		w := wa
		if wb > w {
			w = wb
		}
		switch n.Op {
		case "eq", "ne", "lt":
			// Comparison results are single-bit, but the unit computes
			// on the operand width.
		case "add", "sub", "and", "or", "xor", "shl", "shr":
		default:
			return "", 0, fmt.Errorf("balsa: unknown operator %q", n.Op)
		}
		outW := w
		if n.Op == "eq" || n.Op == "ne" || n.Op == "lt" {
			outW = 1
		}
		ch := c.fresh("e")
		c.n.Add(&hc.Component{Kind: hc.KFunc, Name: c.fresh("fn"), Out: ch,
			Op: n.Op, Ins: []string{a, b}, Width: maxInt(outW, w)})
		return ch, outW, nil
	case UnExpr:
		a, wa, err := c.expr(n.A, hint)
		if err != nil {
			return "", 0, err
		}
		w := wa
		if n.Op == "sext13" {
			w = 32
		}
		ch := c.fresh("e")
		c.n.Add(&hc.Component{Kind: hc.KFunc, Name: c.fresh("fn"), Out: ch,
			Op: n.Op, Ins: []string{a}, Width: w})
		return ch, w, nil
	default:
		return "", 0, fmt.Errorf("balsa: unknown expression %T", e)
	}
}

func addrWidth(size int) int {
	w := bits.Len(uint(size - 1))
	if w == 0 {
		w = 1
	}
	return w
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package balsa

import (
	"strings"
	"testing"

	"balsabm/internal/hc"
)

func compileOK(t *testing.T, src string) *hc.Netlist {
	t.Helper()
	n, err := CompileSource(src, "test")
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func kinds(n *hc.Netlist) map[string]int {
	out := map[string]int{}
	for _, c := range n.Components {
		out[c.Kind]++
	}
	return out
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"procedure",
		"procedure p ( is begin continue end",
		"procedure p () is begin end",
		"procedure p () is begin x := end",
		"procedure p () is begin if x then continue end", // x unknown caught later; missing end
		"procedure p () is begin case 1 of 0 then continue | 0 then continue end end",
		"variable v",
		"memory m : 8",
		"procedure p () is begin sync end",
		"procedure p (bogus x) is begin continue end",
	}
	for _, src := range bad {
		if _, err := CompileSource(src, "t"); err == nil {
			t.Errorf("accepted bad program:\n%s", src)
		}
	}
}

func TestLexer(t *testing.T) {
	toks, err := lex("a := b + 0x1F -- comment\n||;")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		texts = append(texts, tk.text)
	}
	want := "a := b + 0x1F || ; "
	if strings.Join(texts, " ") != want {
		t.Fatalf("got %q want %q", strings.Join(texts, " "), want)
	}
	if _, err := lex("a @ b"); err == nil {
		t.Fatal("accepted bad character")
	}
}

func TestSimpleSequence(t *testing.T) {
	n := compileOK(t, `
variable a : 8
variable b : 8
procedure p (input in : 8) is
begin
  a := in ; b := a
end`)
	k := kinds(n)
	if k[hc.KSequencer] != 1 || k[hc.KFetch] != 2 || k[hc.KVariable] != 2 {
		t.Fatalf("kinds: %v", k)
	}
	ctl, err := n.Control()
	if err != nil {
		t.Fatal(err)
	}
	if len(ctl.Components) != 1 {
		t.Fatalf("control: %d components", len(ctl.Components))
	}
}

func TestParallelCompose(t *testing.T) {
	n := compileOK(t, `
variable a : 4
variable b : 4
procedure p () is
begin
  a := 1 || b := 2
end`)
	if kinds(n)[hc.KConcur] != 1 {
		t.Fatalf("kinds: %v", kinds(n))
	}
}

// Two uses of a sync port merge through a call-mux, and shared
// procedures with two call sites through a call — the systolic counter
// cell structure (Fig 5).
func TestCallMuxInsertion(t *testing.T) {
	n := compileOK(t, `
procedure cell (sync leaf) is
  shared c1 is begin sync leaf ; sync leaf end
begin
  c1() ; c1()
end`)
	k := kinds(n)
	if k[hc.KCall] != 2 {
		t.Fatalf("want 2 calls (shared + sync mux), got %v", k)
	}
	if k[hc.KSequencer] != 2 {
		t.Fatalf("want 2 sequencers, got %v", k)
	}
}

// A single call site inlines without a call component.
func TestSingleCallSiteInlines(t *testing.T) {
	n := compileOK(t, `
variable a : 4
procedure p () is
  shared once is begin a := 1 end
begin
  once()
end`)
	if kinds(n)[hc.KCall] != 0 {
		t.Fatalf("unexpected call component: %v", kinds(n))
	}
}

func TestIfCompilesToSelector(t *testing.T) {
	n := compileOK(t, `
variable a : 4
procedure p () is
begin
  if a = 0 then a := 1 else a := 2 end
end`)
	k := kinds(n)
	if k[hc.KCaseSel] != 1 || k[hc.KFunc] != 1 || k[hc.KConst] != 3 || k[hc.KFetch] != 2 {
		t.Fatalf("kinds: %v", k)
	}
	// The selector has else at index 0 and then at index 1.
	for _, c := range n.Components {
		if c.Kind == hc.KCaseSel && len(c.Outs) != 2 {
			t.Fatalf("selector outs: %v", c.Outs)
		}
	}
}

func TestCaseWithGapsAndElse(t *testing.T) {
	n := compileOK(t, `
variable a : 4
procedure p () is
begin
  case a of 0 then a := 1 | 2 then a := 3 else continue end
end`)
	for _, c := range n.Components {
		if c.Kind == hc.KCaseSel {
			if len(c.Outs) != 3 {
				t.Fatalf("outs: %v", c.Outs)
			}
		}
	}
	// Arm 1 (the gap) gets the else body: a continue component exists.
	if kinds(n)[hc.KContinue] == 0 {
		t.Fatal("no continue for the gap arm")
	}
}

func TestMemoryPorts(t *testing.T) {
	n := compileOK(t, `
variable a : 8
memory m : 8 [ 16 ]
procedure p () is
begin
  a := m[3] ; m[4] := a
end`)
	k := kinds(n)
	if k[hc.KMemory] != 1 || k[hc.KMemRead] != 1 || k[hc.KMemWrite] != 1 {
		t.Fatalf("kinds: %v", k)
	}
}

func TestVariableReadPortsPerUse(t *testing.T) {
	n := compileOK(t, `
variable a : 8
variable b : 8
procedure p () is
begin
  b := a + a
end`)
	for _, c := range n.Components {
		if c.Kind == hc.KVariable && c.Name == "a" {
			if len(c.Reads) != 2 {
				t.Fatalf("a should have 2 read ports, got %v", c.Reads)
			}
		}
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		`procedure p () is begin a := 1 end`,                                  // unknown var
		`procedure p () is begin q() end`,                                     // unknown shared
		`procedure p () is shared s is begin continue end begin continue end`, // shared never called
		`procedure p () is begin sync s end`,                                  // unknown sync port
		`variable v : 8
procedure p () is begin v ! 1 end`, // ! on non-port
		`variable v : 8
procedure p () is begin v ? v end`, // ? on non-port
		`variable v : 8
variable v : 8
procedure p () is begin continue end`, // duplicate var
	}
	for _, src := range bad {
		if _, err := CompileSource(src, "t"); err == nil {
			t.Errorf("accepted bad program:\n%s", src)
		}
	}
}

func TestNetlistFormat(t *testing.T) {
	n := compileOK(t, `
variable a : 8
procedure p (input in : 8) is
begin
  a := in
end`)
	text := n.Format()
	for _, want := range []string{"(breeze test", "component fetch", "component variable a"} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in:\n%s", want, text)
		}
	}
}

// Expression precedence: logic < comparison < additive < shift < unary.
func TestExpressionPrecedence(t *testing.T) {
	prog, err := Parse(`
variable a : 8
variable b : 8
procedure p () is
begin
  a := b + 1 shl 2 = 5 and not b
end`)
	if err != nil {
		t.Fatal(err)
	}
	assign := prog.Procedures[0].Body.(AssignStmt)
	// Top: and(eq(add(b, shl(1,2)), 5), not(b))
	top, ok := assign.Expr.(BinExpr)
	if !ok || top.Op != "and" {
		t.Fatalf("top %#v", assign.Expr)
	}
	eq, ok := top.A.(BinExpr)
	if !ok || eq.Op != "eq" {
		t.Fatalf("left of and: %#v", top.A)
	}
	add, ok := eq.A.(BinExpr)
	if !ok || add.Op != "add" {
		t.Fatalf("left of eq: %#v", eq.A)
	}
	shl, ok := add.B.(BinExpr)
	if !ok || shl.Op != "shl" {
		t.Fatalf("right of add: %#v", add.B)
	}
	if _, ok := top.B.(UnExpr); !ok {
		t.Fatalf("right of and: %#v", top.B)
	}
}

// Parenthesization overrides precedence.
func TestParens(t *testing.T) {
	prog, err := Parse(`
variable a : 8
procedure p () is
begin
  a := (a + 1) shl 2
end`)
	if err != nil {
		t.Fatal(err)
	}
	e := prog.Procedures[0].Body.(AssignStmt).Expr.(BinExpr)
	if e.Op != "shl" {
		t.Fatalf("top op %s", e.Op)
	}
	if inner, ok := e.A.(BinExpr); !ok || inner.Op != "add" {
		t.Fatalf("inner %#v", e.A)
	}
}

// sext13 parses as a builtin.
func TestSext13Builtin(t *testing.T) {
	prog, err := Parse(`
variable a : 32
procedure p () is
begin
  a := a + sext13(a)
end`)
	if err != nil {
		t.Fatal(err)
	}
	e := prog.Procedures[0].Body.(AssignStmt).Expr.(BinExpr)
	u, ok := e.B.(UnExpr)
	if !ok || u.Op != "sext13" {
		t.Fatalf("got %#v", e.B)
	}
}

// Shared procedures may call other shared procedures (compiled in
// caller-before-callee order); recursion is rejected.
func TestSharedCallingShared(t *testing.T) {
	n := compileOK(t, `
procedure p (sync leaf) is
  shared inner is begin sync leaf ; sync leaf end
  shared outer is begin inner() ; inner() end
begin
  outer() ; outer()
end`)
	k := kinds(n)
	// outer (2 sites) and inner (2 sites) and leaf (2 uses) each merge
	// through a call.
	if k[hc.KCall] != 3 {
		t.Fatalf("want 3 calls, got %v", k)
	}
	if _, err := CompileSource(`
procedure p () is
  shared a is begin b() end
  shared b is begin a() end
begin
  a()
end`, "t"); err == nil {
		t.Fatal("recursive shared procedures accepted")
	}
}

// Package balsa implements a front end for a subset of the Balsa
// asynchronous hardware description language [Bardsley & Edwards]:
// lexer, parser and the syntax-directed compiler to handshake-component
// netlists (package hc) that stands in for balsa-c in the paper's flow
// (Fig 1).
//
// Supported subset (what the paper's four designs need):
//
//	program    := {topdecl}
//	topdecl    := "variable" ID ":" NUM
//	            | "memory" ID ":" NUM "[" NUM "]"
//	            | "procedure" ID "(" [params] ")" "is" {local} "begin" stmt "end"
//	params     := param {";" param}
//	param      := "sync" ID | "input" ID ":" NUM | "output" ID ":" NUM
//	local      := "variable" ID ":" NUM | "shared" ID "is" "begin" stmt "end"
//	stmt       := par {";" par} ; par := base {"||" base}
//	base       := "continue" | "sync" ID | ID "(" ")" | ID ":=" expr
//	            | ID "[" expr "]" ":=" expr | ID "!" expr | ID "?" ID
//	            | "if" expr "then" stmt ["else" stmt] "end"
//	            | "case" expr "of" NUM "then" stmt {"|" NUM "then" stmt}
//	              ["else" stmt] "end"
//	            | "begin" stmt "end"
//	expr       := the usual operators: + - and or xor shl shr = /= < not
//	              sext13(e), memory reads m[e], decimal/hex literals
//
// Deviations from full Balsa are documented in DESIGN.md: top-level
// variables may be shared between procedures (standing in for Balsa's
// single-procedure designs with multiple select arms), and infinite
// loops are expressed by the environment re-activating a procedure.
package balsa

import (
	"fmt"
	"strconv"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokSymbol  // punctuation / operators
	tokKeyword // reserved words
)

var keywords = map[string]bool{
	"procedure": true, "is": true, "begin": true, "end": true,
	"variable": true, "memory": true, "shared": true,
	"sync": true, "input": true, "output": true,
	"if": true, "then": true, "else": true,
	"case": true, "of": true, "continue": true,
	"and": true, "or": true, "xor": true, "not": true,
	"shl": true, "shr": true,
}

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

type lexError struct {
	line, col int
	msg       string
}

func (e *lexError) Error() string {
	return fmt.Sprintf("balsa: %d:%d: %s", e.line, e.col, e.msg)
}

// lex tokenizes a source text. Comments run from "--" to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	advance := func(n int) {
		for k := 0; k < n; k++ {
			if src[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				advance(1)
			}
		case unicode.IsSpace(rune(c)):
			advance(1)
		case unicode.IsLetter(rune(c)) || c == '_':
			startLine, startCol := line, col
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			text := src[i:j]
			kind := tokIdent
			if keywords[text] {
				kind = tokKeyword
			}
			toks = append(toks, token{kind, text, startLine, startCol})
			advance(j - i)
		case unicode.IsDigit(rune(c)):
			startLine, startCol := line, col
			j := i
			for j < len(src) && (unicode.IsDigit(rune(src[j])) || src[j] == 'x' || src[j] == 'X' ||
				(src[j] >= 'a' && src[j] <= 'f') || (src[j] >= 'A' && src[j] <= 'F')) {
				j++
			}
			text := src[i:j]
			if _, err := strconv.ParseUint(text, 0, 64); err != nil {
				return nil, &lexError{startLine, startCol, fmt.Sprintf("bad number %q", text)}
			}
			toks = append(toks, token{tokNumber, text, startLine, startCol})
			advance(j - i)
		default:
			startLine, startCol := line, col
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case ":=", "/=", "||":
				toks = append(toks, token{tokSymbol, two, startLine, startCol})
				advance(2)
				continue
			}
			switch c {
			case '(', ')', '[', ']', ';', ':', '!', '?', '+', '-', '=', '<', '|', ',':
				toks = append(toks, token{tokSymbol, string(c), startLine, startCol})
				advance(1)
			default:
				return nil, &lexError{startLine, startCol, fmt.Sprintf("unexpected character %q", c)}
			}
		}
	}
	toks = append(toks, token{tokEOF, "", line, col})
	return toks, nil
}

package balsa

import (
	"fmt"
	"strconv"
)

type parser struct {
	toks []token
	pos  int
}

type parseError struct {
	tok token
	msg string
}

func (e *parseError) Error() string {
	return fmt.Sprintf("balsa: %d:%d: %s (got %s)", e.tok.line, e.tok.col, e.msg, e.tok)
}

// Parse reads a Balsa-subset source file.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.at(tokEOF, "") {
		switch {
		case p.at(tokKeyword, "variable"):
			v, err := p.varDecl()
			if err != nil {
				return nil, err
			}
			prog.Vars = append(prog.Vars, v)
		case p.at(tokKeyword, "memory"):
			m, err := p.memDecl()
			if err != nil {
				return nil, err
			}
			prog.Mems = append(prog.Mems, m)
		case p.at(tokKeyword, "procedure"):
			proc, err := p.procedure()
			if err != nil {
				return nil, err
			}
			prog.Procedures = append(prog.Procedures, proc)
		default:
			return nil, p.errf("expected variable, memory or procedure")
		}
	}
	if len(prog.Procedures) == 0 {
		return nil, fmt.Errorf("balsa: no procedures in program")
	}
	return prog, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	what := text
	if what == "" {
		what = map[tokenKind]string{tokIdent: "identifier", tokNumber: "number"}[kind]
	}
	return token{}, p.errf("expected %s", what)
}

func (p *parser) errf(format string, args ...any) error {
	return &parseError{tok: p.cur(), msg: fmt.Sprintf(format, args...)}
}

func (p *parser) ident() (string, error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return "", err
	}
	return t.text, nil
}

func (p *parser) number() (uint64, error) {
	t, err := p.expect(tokNumber, "")
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseUint(t.text, 0, 64)
	if err != nil {
		return 0, &parseError{tok: t, msg: "bad number"}
	}
	return v, nil
}

func (p *parser) varDecl() (VarDecl, error) {
	p.next() // variable
	name, err := p.ident()
	if err != nil {
		return VarDecl{}, err
	}
	if _, err := p.expect(tokSymbol, ":"); err != nil {
		return VarDecl{}, err
	}
	w, err := p.number()
	if err != nil {
		return VarDecl{}, err
	}
	if w == 0 || w > 64 {
		return VarDecl{}, p.errf("width must be 1..64")
	}
	return VarDecl{Name: name, Width: int(w)}, nil
}

func (p *parser) memDecl() (MemDecl, error) {
	p.next() // memory
	name, err := p.ident()
	if err != nil {
		return MemDecl{}, err
	}
	if _, err := p.expect(tokSymbol, ":"); err != nil {
		return MemDecl{}, err
	}
	w, err := p.number()
	if err != nil {
		return MemDecl{}, err
	}
	if _, err := p.expect(tokSymbol, "["); err != nil {
		return MemDecl{}, err
	}
	size, err := p.number()
	if err != nil {
		return MemDecl{}, err
	}
	if _, err := p.expect(tokSymbol, "]"); err != nil {
		return MemDecl{}, err
	}
	return MemDecl{Name: name, Width: int(w), Size: int(size)}, nil
}

func (p *parser) procedure() (*Procedure, error) {
	p.next() // procedure
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	proc := &Procedure{Name: name}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	if !p.accept(tokSymbol, ")") {
		for {
			param, err := p.param()
			if err != nil {
				return nil, err
			}
			proc.Params = append(proc.Params, param)
			if p.accept(tokSymbol, ")") {
				break
			}
			if _, err := p.expect(tokSymbol, ";"); err != nil {
				return nil, err
			}
		}
	}
	if _, err := p.expect(tokKeyword, "is"); err != nil {
		return nil, err
	}
	for {
		if p.at(tokKeyword, "variable") {
			v, err := p.varDecl()
			if err != nil {
				return nil, err
			}
			proc.Vars = append(proc.Vars, v)
			continue
		}
		if p.at(tokKeyword, "shared") {
			p.next()
			sname, err := p.ident()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokKeyword, "is"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokKeyword, "begin"); err != nil {
				return nil, err
			}
			body, err := p.stmt()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokKeyword, "end"); err != nil {
				return nil, err
			}
			proc.Shared = append(proc.Shared, SharedDecl{Name: sname, Body: body})
			continue
		}
		break
	}
	if _, err := p.expect(tokKeyword, "begin"); err != nil {
		return nil, err
	}
	body, err := p.stmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "end"); err != nil {
		return nil, err
	}
	proc.Body = body
	return proc, nil
}

func (p *parser) param() (Param, error) {
	switch {
	case p.accept(tokKeyword, "sync"):
		name, err := p.ident()
		if err != nil {
			return Param{}, err
		}
		return Param{Kind: "sync", Name: name}, nil
	case p.accept(tokKeyword, "input"), p.at(tokKeyword, "output"):
		kind := "input"
		if p.at(tokKeyword, "output") {
			p.next()
			kind = "output"
		}
		name, err := p.ident()
		if err != nil {
			return Param{}, err
		}
		if _, err := p.expect(tokSymbol, ":"); err != nil {
			return Param{}, err
		}
		w, err := p.number()
		if err != nil {
			return Param{}, err
		}
		return Param{Kind: kind, Name: name, Width: int(w)}, nil
	}
	return Param{}, p.errf("expected sync, input or output parameter")
}

// stmt parses sequential composition (lowest precedence).
func (p *parser) stmt() (Stmt, error) {
	first, err := p.parStmt()
	if err != nil {
		return nil, err
	}
	stmts := []Stmt{first}
	for p.accept(tokSymbol, ";") {
		s, err := p.parStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	if len(stmts) == 1 {
		return stmts[0], nil
	}
	return SeqStmt{Stmts: stmts}, nil
}

func (p *parser) parStmt() (Stmt, error) {
	first, err := p.baseStmt()
	if err != nil {
		return nil, err
	}
	stmts := []Stmt{first}
	for p.accept(tokSymbol, "||") {
		s, err := p.baseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	if len(stmts) == 1 {
		return stmts[0], nil
	}
	return ParStmt{Stmts: stmts}, nil
}

func (p *parser) baseStmt() (Stmt, error) {
	switch {
	case p.accept(tokKeyword, "continue"):
		return ContinueStmt{}, nil
	case p.accept(tokKeyword, "sync"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return SyncStmt{Chan: name}, nil
	case p.accept(tokKeyword, "begin"):
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "end"); err != nil {
			return nil, err
		}
		return s, nil
	case p.accept(tokKeyword, "if"):
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "then"); err != nil {
			return nil, err
		}
		then, err := p.stmt()
		if err != nil {
			return nil, err
		}
		var els Stmt
		if p.accept(tokKeyword, "else") {
			els, err = p.stmt()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokKeyword, "end"); err != nil {
			return nil, err
		}
		return IfStmt{Cond: cond, Then: then, Else: els}, nil
	case p.accept(tokKeyword, "case"):
		sel, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "of"); err != nil {
			return nil, err
		}
		arms := map[int]Stmt{}
		for {
			n, err := p.number()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokKeyword, "then"); err != nil {
				return nil, err
			}
			body, err := p.stmt()
			if err != nil {
				return nil, err
			}
			if _, dup := arms[int(n)]; dup {
				return nil, p.errf("duplicate case arm %d", n)
			}
			arms[int(n)] = body
			if !p.accept(tokSymbol, "|") {
				break
			}
		}
		var els Stmt
		if p.accept(tokKeyword, "else") {
			var err error
			els, err = p.stmt()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokKeyword, "end"); err != nil {
			return nil, err
		}
		return CaseStmt{Sel: sel, Arms: arms, Else: els}, nil
	case p.at(tokIdent, ""):
		name := p.next().text
		switch {
		case p.accept(tokSymbol, "("):
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return CallStmt{Name: name}, nil
		case p.accept(tokSymbol, ":="):
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			return AssignStmt{Var: name, Expr: e}, nil
		case p.accept(tokSymbol, "["):
			addr, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, "]"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ":="); err != nil {
				return nil, err
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			return MemWriteStmt{Mem: name, Addr: addr, Expr: e}, nil
		case p.accept(tokSymbol, "!"):
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			return OutputStmt{Chan: name, Expr: e}, nil
		case p.accept(tokSymbol, "?"):
			v, err := p.ident()
			if err != nil {
				return nil, err
			}
			return InputStmt{Chan: name, Var: v}, nil
		}
		return nil, p.errf("expected (), :=, [, ! or ? after %q", name)
	}
	return nil, p.errf("expected statement")
}

// Expression precedence: logic < comparison < additive < shift < unary.
func (p *parser) expr() (Expr, error) {
	a, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(tokKeyword, "and"):
			op = "and"
		case p.accept(tokKeyword, "or"):
			op = "or"
		case p.accept(tokKeyword, "xor"):
			op = "xor"
		default:
			return a, nil
		}
		b, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		a = BinExpr{Op: op, A: a, B: b}
	}
}

func (p *parser) cmpExpr() (Expr, error) {
	a, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(tokSymbol, "="):
			op = "eq"
		case p.accept(tokSymbol, "/="):
			op = "ne"
		case p.accept(tokSymbol, "<"):
			op = "lt"
		default:
			return a, nil
		}
		b, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		a = BinExpr{Op: op, A: a, B: b}
	}
}

func (p *parser) addExpr() (Expr, error) {
	a, err := p.shiftExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(tokSymbol, "+"):
			op = "add"
		case p.accept(tokSymbol, "-"):
			op = "sub"
		default:
			return a, nil
		}
		b, err := p.shiftExpr()
		if err != nil {
			return nil, err
		}
		a = BinExpr{Op: op, A: a, B: b}
	}
}

func (p *parser) shiftExpr() (Expr, error) {
	a, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(tokKeyword, "shl"):
			op = "shl"
		case p.accept(tokKeyword, "shr"):
			op = "shr"
		default:
			return a, nil
		}
		b, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		a = BinExpr{Op: op, A: a, B: b}
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.accept(tokKeyword, "not") {
		a, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return UnExpr{Op: "not", A: a}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	switch {
	case p.at(tokNumber, ""):
		v, err := p.number()
		if err != nil {
			return nil, err
		}
		return NumExpr{Value: v}, nil
	case p.accept(tokSymbol, "("):
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.at(tokIdent, ""):
		name := p.next().text
		if name == "sext13" {
			if _, err := p.expect(tokSymbol, "("); err != nil {
				return nil, err
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return UnExpr{Op: "sext13", A: e}, nil
		}
		if p.accept(tokSymbol, "[") {
			addr, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, "]"); err != nil {
				return nil, err
			}
			return MemReadExpr{Mem: name, Addr: addr}, nil
		}
		return VarExpr{Name: name}, nil
	}
	return nil, p.errf("expected expression")
}

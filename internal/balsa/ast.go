package balsa

// AST node definitions for the Balsa subset.

// Program is a parsed source file.
type Program struct {
	Vars       []VarDecl
	Mems       []MemDecl
	Procedures []*Procedure
}

// VarDecl declares a variable (top-level or procedure-local).
type VarDecl struct {
	Name  string
	Width int
}

// MemDecl declares a word memory.
type MemDecl struct {
	Name  string
	Width int
	Size  int
}

// Param is a procedure port.
type Param struct {
	Kind  string // "sync", "input", "output"
	Name  string
	Width int
}

// Procedure is a named entry point: the environment activates it over
// an implicit sync channel bearing the procedure's name.
type Procedure struct {
	Name   string
	Params []Param
	Vars   []VarDecl
	Shared []SharedDecl
	Body   Stmt
}

// SharedDecl is a shared sub-procedure (call sites merge through a
// Call component).
type SharedDecl struct {
	Name string
	Body Stmt
}

// Stmt is a statement node.
type Stmt interface{ isStmt() }

// SeqStmt is sequential composition (compiled to a binary sequencer
// tree).
type SeqStmt struct{ Stmts []Stmt }

// ParStmt is parallel composition (compiled to a binary concur tree).
type ParStmt struct{ Stmts []Stmt }

// SyncStmt performs one handshake on a sync port.
type SyncStmt struct{ Chan string }

// CallStmt invokes a shared procedure.
type CallStmt struct{ Name string }

// AssignStmt is variable := expr (a transferrer activation).
type AssignStmt struct {
	Var  string
	Expr Expr
}

// MemWriteStmt is memory[addr] := expr.
type MemWriteStmt struct {
	Mem  string
	Addr Expr
	Expr Expr
}

// OutputStmt is port ! expr.
type OutputStmt struct {
	Chan string
	Expr Expr
}

// InputStmt is port ? variable.
type InputStmt struct {
	Chan string
	Var  string
}

// IfStmt is a two-way data-dependent choice.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // nil = continue
}

// CaseStmt dispatches on a selector value.
type CaseStmt struct {
	Sel  Expr
	Arms map[int]Stmt
	Else Stmt // nil = continue
}

// ContinueStmt is the no-op.
type ContinueStmt struct{}

func (SeqStmt) isStmt()      {}
func (ParStmt) isStmt()      {}
func (SyncStmt) isStmt()     {}
func (CallStmt) isStmt()     {}
func (AssignStmt) isStmt()   {}
func (MemWriteStmt) isStmt() {}
func (OutputStmt) isStmt()   {}
func (InputStmt) isStmt()    {}
func (IfStmt) isStmt()       {}
func (CaseStmt) isStmt()     {}
func (ContinueStmt) isStmt() {}

// Expr is an expression node (a pull network).
type Expr interface{ isExpr() }

// NumExpr is a literal.
type NumExpr struct{ Value uint64 }

// VarExpr reads a variable (or pulls an input port).
type VarExpr struct{ Name string }

// MemReadExpr reads memory[addr].
type MemReadExpr struct {
	Mem  string
	Addr Expr
}

// BinExpr applies a binary operator.
type BinExpr struct {
	Op   string // add, sub, and, or, xor, shl, shr, eq, ne, lt
	A, B Expr
}

// UnExpr applies a unary operator (not, sext13).
type UnExpr struct {
	Op string
	A  Expr
}

func (NumExpr) isExpr()     {}
func (VarExpr) isExpr()     {}
func (MemReadExpr) isExpr() {}
func (BinExpr) isExpr()     {}
func (UnExpr) isExpr()      {}

package hfmin

import (
	"fmt"
	"testing"

	"balsabm/internal/logic"
)

// benchProblem builds a sequencer-like instance: a chain of dynamic
// transitions walking pairs of variables, which yields a realistic mix
// of required cubes, OFF cubes and privileged cubes.
func benchProblem(n int) *Problem {
	var trs []Transition
	for v := 0; v+1 < n; v += 2 {
		a := make([]bool, n)
		b := make([]bool, n)
		for i := 0; i < v; i++ {
			a[i], b[i] = true, true
		}
		b[v] = true
		trs = append(trs, Transition{Start: a, End: b, From: false, To: true})
		c := append([]bool(nil), b...)
		c[v+1] = true
		trs = append(trs, Transition{Start: b, End: c, From: true, To: false})
	}
	return &Problem{Vars: n, Transitions: trs}
}

// BenchmarkDHFPrimes measures the prime enumeration alone: every
// required cube of the instance expanded to its maximal dhf-implicants.
func BenchmarkDHFPrimes(b *testing.B) {
	for _, n := range []int{10, 14, 18} {
		p := benchProblem(n)
		_, off, required, priv, err := p.sets()
		if err != nil {
			b.Fatal(err)
		}
		mat := newProblemMat(p.Vars, off, priv)
		seeds := make([]logic.PackedCube, len(required))
		for i, r := range required {
			seeds[i] = mat.sp.Pack(r)
		}
		b.Run(fmt.Sprintf("vars%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, s := range seeds {
					mat.dhfPrimes(s)
				}
			}
		})
	}
}

// BenchmarkSolveCover measures the unate covering solver on a cyclic
// matrix (rows overlapping in a ring, so reductions cannot finish the
// job and the branch-and-bound runs).
func BenchmarkSolveCover(b *testing.B) {
	for _, size := range []int{12, 24, 48} {
		rows := make([][]int, size)
		for i := range rows {
			// Each row accepts three columns of a ring of 2*size
			// columns; neighbouring rows share one, so nothing is
			// essential and little dominates.
			base := 2 * i
			rows[i] = []int{base % (2 * size), (base + 1) % (2 * size), (base + 2) % (2 * size)}
		}
		b.Run(fmt.Sprintf("rows%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				solveCover(rows, 2*size)
			}
		})
	}
}

// BenchmarkMinimize measures a full single-output minimization.
func BenchmarkMinimize(b *testing.B) {
	for _, n := range []int{10, 14, 18} {
		p := benchProblem(n)
		b.Run(fmt.Sprintf("vars%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.Minimize(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

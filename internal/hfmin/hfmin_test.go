package hfmin

import (
	"strings"
	"testing"

	"balsabm/internal/logic"
)

func pt(bits ...int) []bool {
	out := make([]bool, len(bits))
	for i, b := range bits {
		out[i] = b != 0
	}
	return out
}

func minimize(t *testing.T, p *Problem) logic.Cover {
	t.Helper()
	res, err := p.Minimize()
	if err != nil {
		t.Fatal(err)
	}
	return res.Cover
}

// A static 1→1 transition must be held by a single product even when
// two products would cover its points.
func TestStaticHolding(t *testing.T) {
	p := &Problem{Vars: 2, Transitions: []Transition{
		// b stays 1 while a toggles: f == b.
		{Start: pt(0, 1), End: pt(1, 1), From: true, To: true},
		{Start: pt(1, 1), End: pt(0, 1), From: true, To: true},
		// With b low, f is 0.
		{Start: pt(0, 0), End: pt(1, 0), From: false, To: false},
	}}
	cover := minimize(t, p)
	if len(cover) != 1 || cover[0].String() != "-1" {
		t.Fatalf("got %v, want single cube -1", cover)
	}
	// A fragmented cover must be rejected by the checker.
	frag := logic.Cover{mustCube(t, "01"), mustCube(t, "11")}
	if err := CheckCover(frag, p.Transitions); err == nil {
		t.Fatal("fragmented cover accepted")
	}
}

// The classic dynamic 1→0 case: both inputs fall (in context c=1); the
// cover needs one product per falling literal, anchored at the start
// point.
func TestDynamicFall(t *testing.T) {
	p := &Problem{Vars: 3, Names: []string{"a", "b", "c"}, Transitions: []Transition{
		{Start: pt(1, 1, 1), End: pt(0, 0, 1), From: true, To: false},
		{Start: pt(0, 0, 0), End: pt(1, 1, 0), From: false, To: false},
	}}
	cover := minimize(t, p)
	if len(cover) != 2 {
		t.Fatalf("got %v", cover)
	}
	got := cover.String()
	if !strings.Contains(got, "1-1") || !strings.Contains(got, "-11") {
		t.Fatalf("got %v, want 1-1 and -11", cover)
	}
	// An implicant intersecting the falling transition without its
	// start point is an illegal (hazardous) intersection.
	bad := logic.Cover{mustCube(t, "1-1"), mustCube(t, "011")}
	if err := CheckCover(bad, p.Transitions); err == nil {
		t.Fatal("illegal intersection accepted")
	}
}

// 0→1 transitions: only the end point is ON; products must stay off
// during the rise.
func TestDynamicRise(t *testing.T) {
	p := &Problem{Vars: 3, Transitions: []Transition{
		{Start: pt(0, 0, 1), End: pt(1, 1, 1), From: false, To: true},
		{Start: pt(0, 0, 0), End: pt(1, 1, 0), From: false, To: false},
	}}
	cover := minimize(t, p)
	if !cover.Eval(pt(1, 1, 1)) {
		t.Fatal("end point uncovered")
	}
	if cover.Eval(pt(0, 0, 1)) {
		t.Fatal("start point covered")
	}
	if cover.Eval(pt(1, 0, 1)) || cover.Eval(pt(0, 1, 1)) {
		t.Fatal("cover on during the rise's OFF phase")
	}
}

// The passivator's acknowledge function minimizes to the majority
// (C-element) cover ab + ay + by over inputs a, b and state bit y.
func TestPassivatorCElement(t *testing.T) {
	p := &Problem{Vars: 3, Names: []string{"a", "b", "y"}, Transitions: []Transition{
		// State 0 (y=0): inputs rise, output rises at the end.
		{Start: pt(0, 0, 0), End: pt(1, 1, 0), From: false, To: true},
		// State change y: 0→1 with inputs high: f holds 1.
		{Start: pt(1, 1, 0), End: pt(1, 1, 1), From: true, To: true},
		// State 1 (y=1): inputs fall, output falls at the end.
		{Start: pt(1, 1, 1), End: pt(0, 0, 1), From: true, To: false},
		// State change y: 1→0 with inputs low: f holds 0.
		{Start: pt(0, 0, 1), End: pt(0, 0, 0), From: false, To: false},
	}}
	cover := minimize(t, p)
	want := map[string]bool{"11-": true, "1-1": true, "-11": true}
	if len(cover) != 3 {
		t.Fatalf("got %v, want majority cover", cover)
	}
	for _, c := range cover {
		if !want[c.String()] {
			t.Fatalf("unexpected product %s in %v", c, cover)
		}
	}
}

// Contradictory specifications (the same point required 0 and 1) must
// be reported as a ConflictError — the signal minimalist uses to refine
// the state assignment.
func TestConflictDetection(t *testing.T) {
	p := &Problem{Vars: 2, Transitions: []Transition{
		{Start: pt(0, 0), End: pt(1, 1), From: false, To: true},
		{Start: pt(1, 1), End: pt(0, 0), From: true, To: false},
		// Without a state variable, the mid points clash:
		{Start: pt(1, 0), End: pt(1, 1), From: true, To: true},
	}}
	_, err := p.Minimize()
	if err == nil {
		t.Fatal("expected conflict")
	}
	if _, ok := err.(*ConflictError); !ok {
		t.Fatalf("got %T: %v", err, err)
	}
}

// A constant-0 function minimizes to the empty cover.
func TestConstantZero(t *testing.T) {
	p := &Problem{Vars: 2, Transitions: []Transition{
		{Start: pt(0, 0), End: pt(1, 1), From: false, To: false},
	}}
	cover := minimize(t, p)
	if len(cover) != 0 {
		t.Fatalf("got %v", cover)
	}
}

// Exact covering beats per-required-cube selection: overlapping
// required cubes shared by one prime.
func TestMinimumCover(t *testing.T) {
	// f = 1 whenever a=1, expressed through two static transitions
	// whose cubes both fit inside the single prime 1--.
	p := &Problem{Vars: 3, Transitions: []Transition{
		{Start: pt(1, 0, 0), End: pt(1, 1, 0), From: true, To: true},
		{Start: pt(1, 0, 1), End: pt(1, 1, 1), From: true, To: true},
		{Start: pt(0, 0, 0), End: pt(0, 1, 1), From: false, To: false},
	}}
	cover := minimize(t, p)
	if len(cover) != 1 || cover[0].String() != "1--" {
		t.Fatalf("got %v, want 1--", cover)
	}
}

// Transition sanity errors.
func TestBadTransitions(t *testing.T) {
	p := &Problem{Vars: 2, Transitions: []Transition{
		{Start: pt(0, 0), End: pt(0, 0), From: false, To: true},
	}}
	if _, err := p.Minimize(); err == nil {
		t.Fatal("value change without input change accepted")
	}
	p = &Problem{Vars: 2, Transitions: []Transition{
		{Start: pt(0), End: pt(0, 0), From: false, To: false},
	}}
	if _, err := p.Minimize(); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

// CheckCover also audits value correctness at transition end points.
func TestCheckCoverValues(t *testing.T) {
	trans := []Transition{
		{Start: pt(0, 0), End: pt(1, 1), From: false, To: true},
		{Start: pt(1, 1), End: pt(0, 0), From: true, To: false},
	}
	// Constant-0 cover: misses the 0→1 end point.
	if err := CheckCover(nil, trans); err == nil {
		t.Fatal("empty cover accepted")
	}
	// Tautology cover: stuck at 1 at the 1→0 end point and on during
	// the OFF phase of the rise.
	if err := CheckCover(logic.Cover{mustCube(t, "--")}, trans); err == nil {
		t.Fatal("tautology accepted")
	}
}

// The result must report how it was obtained: exact instances carry
// Exact with a nonzero enumeration node count, and wide instances
// (>64 specified variables, served by the generic packed path) agree
// with the mask path on exactness.
func TestResultExactAndCounters(t *testing.T) {
	p := benchProblem(14)
	res, err := p.Minimize()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatalf("benchProblem(14) fell back to greedy: %+v", res)
	}
	if res.EnumNodes == 0 {
		t.Fatal("exact result reports zero enumeration nodes")
	}
	if res.BranchNodes < 0 {
		t.Fatalf("negative branch nodes: %d", res.BranchNodes)
	}
	// A trivial constant-zero function is exact with no work at all.
	zero := &Problem{Vars: 2, Transitions: []Transition{
		{Start: pt(0, 0), End: pt(1, 1), From: false, To: false},
	}}
	rz, err := zero.Minimize()
	if err != nil {
		t.Fatal(err)
	}
	if !rz.Exact {
		t.Fatal("constant-zero function not exact")
	}
}

// dhfPrimes against a brute-force oracle: enumerate every subset of
// the seed's specified literals, keep the subsets whose freed cube is
// a dhf-implicant under the reference []Lit engine, filter to the
// maximal ones, and require the constraint-branching enumeration to
// return exactly that set.
func TestDHFPrimesOracle(t *testing.T) {
	problems := []*Problem{
		benchProblem(10),
		benchProblem(12),
		{Vars: 3, Transitions: []Transition{
			{Start: pt(1, 1, 1), End: pt(0, 0, 1), From: true, To: false},
			{Start: pt(0, 0, 0), End: pt(1, 1, 0), From: false, To: false},
		}},
	}
	for pi, p := range problems {
		_, off, required, priv, err := p.sets()
		if err != nil {
			t.Fatal(err)
		}
		isDHFRef := func(c logic.Cube) bool {
			for _, o := range off {
				if c.Intersects(o) {
					return false
				}
			}
			for _, pv := range priv {
				if c.Intersects(pv.cube) && !c.ContainsPoint(pv.start) {
					return false
				}
			}
			return true
		}
		mat := newProblemMat(p.Vars, off, priv)
		for _, r := range required {
			var spec []int
			for v := 0; v < p.Vars; v++ {
				if r[v] != logic.DC {
					spec = append(spec, v)
				}
			}
			if len(spec) > 16 {
				t.Fatalf("problem %d: seed too wide for the oracle", pi)
			}
			// All feasible freed-subsets, as cubes.
			var feasible []logic.Cube
			for s := 0; s < 1<<len(spec); s++ {
				c := r.Clone()
				for i, v := range spec {
					if s>>i&1 != 0 {
						c[v] = logic.DC
					}
				}
				if isDHFRef(c) {
					feasible = append(feasible, c)
				}
			}
			want := map[string]bool{}
			for _, c := range feasible {
				maximal := true
				for _, d := range feasible {
					if !c.Equal(d) && d.Contains(c) {
						maximal = false
						break
					}
				}
				if maximal {
					want[c.String()] = true
				}
			}
			got, _, exact := mat.dhfPrimes(mat.sp.Pack(r))
			if !exact {
				t.Fatalf("problem %d seed %s: enumeration truncated", pi, r)
			}
			if len(got) != len(want) {
				t.Errorf("problem %d seed %s: got %d primes, oracle has %d", pi, r, len(got), len(want))
			}
			for _, c := range got {
				if !want[mat.sp.Unpack(c).String()] {
					t.Errorf("problem %d seed %s: %s is not an oracle prime", pi, r, mat.sp.Unpack(c))
				}
			}
		}
	}
}

func TestFormatPLA(t *testing.T) {
	out := FormatPLA("f", []string{"a", "b"}, logic.Cover{mustCube(t, "1-")})
	for _, want := range []string{".ob f", ".i 2", ".ilb a b", ".p 1", "1- 1", ".e"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func mustCube(t *testing.T, s string) logic.Cube {
	t.Helper()
	c, err := logic.ParseCube(s)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// Package hfmin implements exact hazard-free two-level logic
// minimization for multiple-input changes, after Nowick & Dill (the
// algorithm at the heart of the Minimalist synthesis package used by
// the paper).
//
// A Boolean function is specified by a set of input transitions. Each
// transition runs from a start minterm A to an end minterm B inside the
// transition cube T = supercube(A,B); under Burst-Mode (Mealy)
// semantics the function holds its start value on every point of T
// except B, where it takes its end value.
//
// A sum-of-products cover is hazard-free for the specified transitions
// iff:
//
//   - every static 1→1 transition cube is contained in a SINGLE product
//     (required cube);
//   - for every dynamic 1→0 transition, any product intersecting the
//     transition cube contains its start point (the transition cube is
//     "privileged"), and the maximal ON-subcubes anchored at the start
//     point are each contained in a single product;
//   - 0→1 transitions need only ordinary coverage of the end point: the
//     points they cross are OFF-set points no valid product touches.
//
// Products satisfying the intersection restrictions are dhf-implicants;
// maximal ones are dhf-prime implicants. Minimization selects a minimum
// set of dhf-primes covering all required cubes (unate covering).
package hfmin

import (
	"fmt"
	"sort"
	"strings"

	"balsabm/internal/logic"
)

// Transition is one specified input transition of a single-output
// function.
type Transition struct {
	Start []bool // minterm A
	End   []bool // minterm B
	From  bool   // function value at A (and on all of T except B)
	To    bool   // function value at B
}

// cube returns the transition supercube T.
func (t Transition) cube() logic.Cube {
	return logic.Point(t.Start).Supercube(logic.Point(t.End))
}

// changed lists the variables that differ between Start and End.
func (t Transition) changed() []int {
	var out []int
	for i := range t.Start {
		if t.Start[i] != t.End[i] {
			out = append(out, i)
		}
	}
	return out
}

// Problem is a single-output hazard-free minimization instance.
type Problem struct {
	Vars        int
	Names       []string // optional, for diagnostics
	Transitions []Transition
}

// privileged is a dynamic 1→0 transition cube with its start point.
type privileged struct {
	cube  logic.Cube
	start []bool
}

// sets computes the ON cubes, OFF cubes, required cubes and privileged
// cubes of the instance, checking specification consistency.
func (p *Problem) sets() (on, off, required logic.Cover, priv []privileged, err error) {
	for i, t := range p.Transitions {
		if len(t.Start) != p.Vars || len(t.End) != p.Vars {
			return nil, nil, nil, nil, fmt.Errorf("hfmin: transition %d has wrong arity", i)
		}
		T := t.cube()
		ch := t.changed()
		if len(ch) == 0 && t.From != t.To {
			return nil, nil, nil, nil, fmt.Errorf("hfmin: transition %d changes value without input change", i)
		}
		switch {
		case t.From && t.To: // static 1
			on = append(on, T)
			required = append(required, T)
		case !t.From && !t.To: // static 0
			off = append(off, T)
		case t.From && !t.To: // dynamic 1→0
			for _, v := range ch {
				sub := T.Clone()
				if t.Start[v] {
					sub[v] = logic.One
				} else {
					sub[v] = logic.Zero
				}
				on = append(on, sub)
				required = append(required, sub)
			}
			off = append(off, logic.Point(t.End))
			priv = append(priv, privileged{cube: T, start: t.Start})
		default: // dynamic 0→1
			for _, v := range ch {
				sub := T.Clone()
				if t.Start[v] {
					sub[v] = logic.One
				} else {
					sub[v] = logic.Zero
				}
				off = append(off, sub)
			}
			on = append(on, logic.Point(t.End))
			required = append(required, logic.Point(t.End))
		}
	}
	// Consistency: the specified ON and OFF sets must be disjoint.
	for _, o := range on {
		for _, f := range off {
			if o.Intersects(f) {
				return nil, nil, nil, nil, &ConflictError{On: o, Off: f}
			}
		}
	}
	required = required.Dedup()
	return on, off, required, priv, nil
}

// ConflictError reports that two transitions specify contradictory
// values for some input combination (the state assignment must be
// refined).
type ConflictError struct {
	On, Off logic.Cube
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf("hfmin: inconsistent specification: %s required 1, %s required 0 (overlap %s)",
		e.On, e.Off, e.On.Intersect(e.Off))
}

// isDHF reports whether c is a dhf-implicant: it touches no OFF point
// and has no illegal intersection with a privileged cube.
func isDHF(c logic.Cube, off logic.Cover, priv []privileged) bool {
	if off.AnyIntersects(c) {
		return false
	}
	for _, pv := range priv {
		if c.Intersects(pv.cube) && !c.ContainsPoint(pv.start) {
			return false
		}
	}
	return true
}

// dhfPrimes returns maximal dhf-implicants containing seed. The
// enumeration walks freed-variable subsets in canonical (ascending)
// order under a node budget; beyond the budget it falls back to a
// handful of greedy maximal expansions, which keeps the covering
// problem well-supplied with candidates at a small optimality cost.
func dhfPrimes(seed logic.Cube, off logic.Cover, priv []privileged) []logic.Cube {
	const budget = 1500
	nodes := 0
	seen := map[string]bool{}
	addSeen := func(c logic.Cube) bool {
		k := cubeKey(c)
		if seen[k] {
			return false
		}
		seen[k] = true
		return true
	}
	var out []logic.Cube
	outSet := map[string]bool{}
	record := func(c logic.Cube) {
		k := cubeKey(c)
		if !outSet[k] {
			outSet[k] = true
			out = append(out, c)
		}
	}
	overflow := false
	var grow func(c logic.Cube, minVar int)
	grow = func(c logic.Cube, minVar int) {
		if overflow {
			return
		}
		if nodes++; nodes > budget {
			overflow = true
			return
		}
		if !addSeen(c) {
			return
		}
		maximal := true
		for v := 0; v < len(c); v++ {
			if c[v] == logic.DC {
				continue
			}
			e := c.Clone()
			e[v] = logic.DC
			if !isDHF(e, off, priv) {
				continue
			}
			maximal = false
			if v >= minVar {
				grow(e, v+1)
			}
		}
		if maximal {
			record(c)
		}
	}
	grow(seed, 0)
	// Greedy maximal expansions guarantee candidates even when the
	// exact enumeration is truncated (and cover corner cases where the
	// canonical order dead-ends before a maximal cube).
	for _, dir := range []int{1, -1} {
		c := seed.Clone()
		for changed := true; changed; {
			changed = false
			n := len(c)
			for k := 0; k < n; k++ {
				v := k
				if dir < 0 {
					v = n - 1 - k
				}
				if c[v] == logic.DC {
					continue
				}
				e := c.Clone()
				e[v] = logic.DC
				if isDHF(e, off, priv) {
					c = e
					changed = true
				}
			}
		}
		record(c)
	}
	return out
}

// cubeKey returns a cheap map key for a cube.
func cubeKey(c logic.Cube) string {
	b := make([]byte, len(c))
	for i, l := range c {
		b[i] = byte(l)
	}
	return string(b)
}

// Result is a minimized hazard-free cover.
type Result struct {
	Cover    logic.Cover
	Primes   int // number of dhf-prime candidates considered
	Required int // number of required cubes
}

// Minimize solves the instance, returning a minimum-product hazard-free
// cover (exact for small instances via branch and bound, greedy beyond
// that).
func (p *Problem) Minimize() (*Result, error) {
	on, off, required, priv, err := p.sets()
	if err != nil {
		return nil, err
	}
	if len(required) == 0 {
		return &Result{Cover: nil}, nil // constant-0 function
	}
	// Generate candidate dhf-primes from each required cube.
	var primes logic.Cover
	primeSet := map[string]bool{}
	for _, r := range required {
		if !isDHF(r, off, priv) {
			return nil, fmt.Errorf("hfmin: required cube %s is not a dhf-implicant; specification is not hazard-free realizable", r)
		}
		for _, pr := range dhfPrimes(r, off, priv) {
			if !primeSet[pr.String()] {
				primeSet[pr.String()] = true
				primes = append(primes, pr)
			}
		}
	}
	// Build the unate covering matrix.
	covers := make([][]int, len(required)) // row -> candidate column indices
	for i, r := range required {
		for j, pr := range primes {
			if pr.Contains(r) {
				covers[i] = append(covers[i], j)
			}
		}
		if len(covers[i]) == 0 {
			return nil, fmt.Errorf("hfmin: required cube %s has no covering dhf-prime", required[i])
		}
	}
	chosen := solveCover(covers, primes)
	var cover logic.Cover
	for _, j := range chosen {
		cover = append(cover, primes[j])
	}
	sortCover(cover)
	// Post-verify: the cover must contain the whole ON-set and be
	// hazard-free (defense in depth; cheap at these sizes).
	for _, o := range on {
		if !cover.ContainsCube(o) {
			return nil, fmt.Errorf("hfmin: internal error: ON cube %s not covered", o)
		}
	}
	if err := CheckCover(cover, p.Transitions); err != nil {
		return nil, fmt.Errorf("hfmin: internal error: %w", err)
	}
	return &Result{Cover: cover, Primes: len(primes), Required: len(required)}, nil
}

// solveCover finds a small set of columns covering all rows: essential
// columns, then exact branch-and-bound when feasible, greedy otherwise.
func solveCover(rows [][]int, primes logic.Cover) []int {
	nCols := len(primes)
	// Essential columns: rows with a single candidate.
	selected := map[int]bool{}
	var uncovered []int
	for i, cands := range rows {
		if len(cands) == 1 {
			selected[cands[0]] = true
		} else {
			uncovered = append(uncovered, i)
		}
	}
	remaining := func() []int {
		var out []int
		for _, i := range uncovered {
			done := false
			for _, j := range rows[i] {
				if selected[j] {
					done = true
					break
				}
			}
			if !done {
				out = append(out, i)
			}
		}
		return out
	}
	rest := remaining()
	if len(rest) > 0 {
		if nCols <= 24 && len(rest) <= 24 {
			best := exactCover(rest, rows, nCols, selected)
			for _, j := range best {
				selected[j] = true
			}
		} else {
			// Greedy: repeatedly take the column covering most rows.
			for len(rest) > 0 {
				count := make([]int, nCols)
				for _, i := range rest {
					for _, j := range rows[i] {
						count[j]++
					}
				}
				bestJ, bestC := -1, -1
				for j, c := range count {
					if c > bestC || (c == bestC && j < bestJ) {
						bestJ, bestC = j, c
					}
				}
				selected[bestJ] = true
				rest = remaining()
			}
		}
	}
	var out []int
	for j := range selected {
		out = append(out, j)
	}
	sort.Ints(out)
	return out
}

// exactCover finds a minimum column set covering the given rows by
// branch and bound.
func exactCover(rest []int, rows [][]int, nCols int, preselected map[int]bool) []int {
	var best []int
	var cur []int
	var rec func(remaining []int)
	rec = func(remaining []int) {
		if len(remaining) == 0 {
			if best == nil || len(cur) < len(best) {
				best = append([]int(nil), cur...)
			}
			return
		}
		if best != nil && len(cur)+1 >= len(best) {
			// Even one more column cannot beat the incumbent unless it
			// finishes everything; prune when it cannot.
			if len(cur)+1 > len(best) {
				return
			}
		}
		// Branch on the row with fewest candidates.
		bi := remaining[0]
		for _, i := range remaining {
			if len(rows[i]) < len(rows[bi]) {
				bi = i
			}
		}
		for _, j := range rows[bi] {
			cur = append(cur, j)
			var next []int
			for _, i := range remaining {
				covered := false
				for _, k := range rows[i] {
					if k == j {
						covered = true
						break
					}
				}
				if !covered {
					next = append(next, i)
				}
			}
			rec(next)
			cur = cur[:len(cur)-1]
		}
	}
	rec(rest)
	return best
}

// CheckCover verifies that a cover implements the specified transitions
// without logic hazards: correct values, single-cube containment of
// static-1 and 1→0 required cubes, and no illegal intersections of
// privileged cubes. It is used both as a post-check of minimization and
// to audit technology-mapped logic (Section 5 of the paper).
func CheckCover(cover logic.Cover, transitions []Transition) error {
	for i, t := range transitions {
		T := t.cube()
		switch {
		case t.From && t.To:
			contained := false
			for _, c := range cover {
				if c.Contains(T) {
					contained = true
					break
				}
			}
			if !contained {
				return fmt.Errorf("static 1→1 transition %d (%s) not held by a single product", i, T)
			}
		case !t.From && !t.To:
			if cover.AnyIntersects(T) {
				return fmt.Errorf("static 0→0 transition %d (%s) intersected by a product", i, T)
			}
		case t.From && !t.To:
			for _, c := range cover {
				if c.Intersects(T) && !c.ContainsPoint(t.Start) {
					return fmt.Errorf("1→0 transition %d: product %s intersects %s without its start point", i, c, T)
				}
			}
			for _, v := range t.changed() {
				sub := T.Clone()
				if t.Start[v] {
					sub[v] = logic.One
				} else {
					sub[v] = logic.Zero
				}
				contained := false
				for _, c := range cover {
					if c.Contains(sub) {
						contained = true
						break
					}
				}
				if !contained {
					return fmt.Errorf("1→0 transition %d: required cube %s not held by a single product", i, sub)
				}
			}
			if cover.Eval(t.End) {
				return fmt.Errorf("1→0 transition %d: cover still 1 at end point", i)
			}
		default: // 0→1
			if !cover.Eval(t.End) {
				return fmt.Errorf("0→1 transition %d: cover 0 at end point", i)
			}
			for _, v := range t.changed() {
				sub := T.Clone()
				if t.Start[v] {
					sub[v] = logic.One
				} else {
					sub[v] = logic.Zero
				}
				for _, c := range cover {
					if c.Intersects(sub) {
						return fmt.Errorf("0→1 transition %d: product %s on during OFF phase %s", i, c, sub)
					}
				}
			}
		}
	}
	return nil
}

func sortCover(cv logic.Cover) {
	sort.Slice(cv, func(i, j int) bool { return cv[i].String() < cv[j].String() })
}

// FormatPLA renders the cover in a small PLA-like format for the .sol
// report files.
func FormatPLA(name string, inputs []string, cover logic.Cover) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, ".ob %s\n", name)
	fmt.Fprintf(&sb, ".i %d\n", len(inputs))
	fmt.Fprintf(&sb, ".ilb %s\n", strings.Join(inputs, " "))
	fmt.Fprintf(&sb, ".p %d\n", len(cover))
	for _, c := range cover {
		fmt.Fprintf(&sb, "%s 1\n", c)
	}
	sb.WriteString(".e\n")
	return sb.String()
}

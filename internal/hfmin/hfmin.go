// Package hfmin implements exact hazard-free two-level logic
// minimization for multiple-input changes, after Nowick & Dill (the
// algorithm at the heart of the Minimalist synthesis package used by
// the paper).
//
// A Boolean function is specified by a set of input transitions. Each
// transition runs from a start minterm A to an end minterm B inside the
// transition cube T = supercube(A,B); under Burst-Mode (Mealy)
// semantics the function holds its start value on every point of T
// except B, where it takes its end value.
//
// A sum-of-products cover is hazard-free for the specified transitions
// iff:
//
//   - every static 1→1 transition cube is contained in a SINGLE product
//     (required cube);
//   - for every dynamic 1→0 transition, any product intersecting the
//     transition cube contains its start point (the transition cube is
//     "privileged"), and the maximal ON-subcubes anchored at the start
//     point are each contained in a single product;
//   - 0→1 transitions need only ordinary coverage of the end point: the
//     points they cross are OFF-set points no valid product touches.
//
// Products satisfying the intersection restrictions are dhf-implicants;
// maximal ones are dhf-prime implicants. Minimization selects a minimum
// set of dhf-primes covering all required cubes (unate covering).
package hfmin

import (
	"fmt"
	"sort"
	"strings"

	"balsabm/internal/logic"
)

// Transition is one specified input transition of a single-output
// function.
type Transition struct {
	Start []bool // minterm A
	End   []bool // minterm B
	From  bool   // function value at A (and on all of T except B)
	To    bool   // function value at B
}

// Cube returns the transition supercube T.
func (t Transition) Cube() logic.Cube {
	return logic.Point(t.Start).Supercube(logic.Point(t.End))
}

// Changed lists the variables that differ between Start and End.
func (t Transition) Changed() []int {
	var out []int
	for i := range t.Start {
		if t.Start[i] != t.End[i] {
			out = append(out, i)
		}
	}
	return out
}

// Problem is a single-output hazard-free minimization instance.
type Problem struct {
	Vars        int
	Names       []string // optional, for diagnostics
	Transitions []Transition
}

// privileged is a dynamic 1→0 transition cube with its start point.
type privileged struct {
	cube  logic.Cube
	start []bool
}

// sets computes the ON cubes, OFF cubes, required cubes and privileged
// cubes of the instance, checking specification consistency.
func (p *Problem) sets() (on, off, required logic.Cover, priv []privileged, err error) {
	for i, t := range p.Transitions {
		if len(t.Start) != p.Vars || len(t.End) != p.Vars {
			return nil, nil, nil, nil, fmt.Errorf("hfmin: transition %d has wrong arity", i)
		}
		T := t.Cube()
		ch := t.Changed()
		if len(ch) == 0 && t.From != t.To {
			return nil, nil, nil, nil, fmt.Errorf("hfmin: transition %d changes value without input change", i)
		}
		switch {
		case t.From && t.To: // static 1
			on = append(on, T)
			required = append(required, T)
		case !t.From && !t.To: // static 0
			off = append(off, T)
		case t.From && !t.To: // dynamic 1→0
			for _, v := range ch {
				sub := T.Clone()
				if t.Start[v] {
					sub[v] = logic.One
				} else {
					sub[v] = logic.Zero
				}
				on = append(on, sub)
				required = append(required, sub)
			}
			off = append(off, logic.Point(t.End))
			priv = append(priv, privileged{cube: T, start: t.Start})
		default: // dynamic 0→1
			for _, v := range ch {
				sub := T.Clone()
				if t.Start[v] {
					sub[v] = logic.One
				} else {
					sub[v] = logic.Zero
				}
				off = append(off, sub)
			}
			on = append(on, logic.Point(t.End))
			required = append(required, logic.Point(t.End))
		}
	}
	// Consistency: the specified ON and OFF sets must be disjoint.
	for _, o := range on {
		for _, f := range off {
			if o.Intersects(f) {
				return nil, nil, nil, nil, &ConflictError{On: o, Off: f}
			}
		}
	}
	required = required.Dedup()
	return on, off, required, priv, nil
}

// ConflictError reports that two transitions specify contradictory
// values for some input combination (the state assignment must be
// refined).
type ConflictError struct {
	On, Off logic.Cube
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf("hfmin: inconsistent specification: %s required 1, %s required 0 (overlap %s)",
		e.On, e.Off, e.On.Intersect(e.Off))
}

// EnumBudget bounds the nodes one dhfPrimes enumeration may visit
// before falling back to greedy expansion. The packed engine made
// nodes roughly an order of magnitude cheaper than the original
// []Lit implementation's 1500-node budget, so the exact path now
// covers the Table 3 controllers without truncating. Exported so
// bmlint's BM200 complexity report can compare a spec's estimated
// enumeration pressure against the minimizer's exact-path budget.
const EnumBudget = 20000

// bbBudget bounds the covering branch-and-bound; beyond it the
// incumbent (at worst the greedy solution) is kept and the result is
// flagged inexact.
const bbBudget = 1 << 20

// packedPriv is a privileged cube in packed form: the dynamic 1→0
// transition cube and its start minterm as a PointWords plane.
type packedPriv struct {
	cube  logic.PackedCube
	start []uint64
}

// problemMat is the packed OFF-set / privileged-cube matrix every
// dhf-implicant test scans.
type problemMat struct {
	sp   *logic.Space
	off  []logic.PackedCube
	priv []packedPriv
}

func newProblemMat(vars int, off logic.Cover, priv []privileged) *problemMat {
	sp := logic.NewSpace(vars)
	m := &problemMat{sp: sp, off: sp.PackCover(off)}
	m.priv = make([]packedPriv, len(priv))
	for i, pv := range priv {
		m.priv[i] = packedPriv{cube: sp.Pack(pv.cube), start: sp.PointWords(pv.start)}
	}
	return m
}

// isDHF reports whether c is a dhf-implicant: it touches no OFF point
// and has no illegal intersection with a privileged cube. Both scans
// are word-parallel over the packed matrix.
func (m *problemMat) isDHF(c logic.PackedCube) bool {
	if logic.AnyIntersectsPacked(m.off, c) {
		return false
	}
	for i := range m.priv {
		if c.Intersects(m.priv[i].cube) && !c.ContainsPointWords(m.priv[i].start) {
			return false
		}
	}
	return true
}

// dhfPrimes returns the maximal dhf-implicants containing seed, under
// a node budget; beyond the budget it falls back to greedy maximal
// expansions, which keeps the covering problem supplied with
// candidates at a small optimality cost. It reports the nodes visited
// and whether the enumeration completed without truncation.
//
// Because growth only ever frees literals of the seed, every reachable
// cube is identified by the subset of seed literals freed so far. When
// the seed has at most 64 specified variables (every real controller),
// the enumeration runs entirely on uint64 subset masks, branching on
// violated constraints so the tree size tracks the number of primes.
// Wider seeds take the defensive generic packed-cube path, a bottom-up
// subset walk whose exactness flag is conservative (it can truncate on
// instances the mask path finishes).
func (m *problemMat) dhfPrimes(seed logic.PackedCube) (out []logic.PackedCube, nodes int64, exact bool) {
	var spec []int
	for v := 0; v < m.sp.Vars(); v++ {
		if seed.Lit(v) != logic.DC {
			spec = append(spec, v)
		}
	}
	if len(spec) <= 64 {
		return m.dhfPrimesMask(seed, spec)
	}
	return m.dhfPrimesWide(seed)
}

// dhfPrimesMask is the subset-mask fast path of dhfPrimes. Bit i of a
// mask stands for spec[i], the i-th specified variable of the seed;
// a set bit means that literal has been freed. For each OFF cube o,
// conf(o) holds the seed literals conflicting with o: the grown cube
// intersects o exactly when all of them are freed (conf ⊆ S). For each
// privileged cube P, the same conf test detects intersection, and
// dist(P) (seed literals disagreeing with P's start point) detects
// start-point containment, so the dhf condition "intersecting P implies
// containing its start" is conf(P) ⊆ S ⇒ dist(P) ⊆ S.
//
// Rather than walking freed-literal subsets bottom-up (2^f nodes when
// the constraints are loose, however few primes exist), the search
// branches top-down on violated constraints, the classic
// prime-generation-via-complement recursion: a node is a set Ex of
// literals pinned to the seed value, its candidate is the complement
// U = full∖Ex with everything else freed, and when some constraint is
// violated at U each of its exclusion witnesses spawns one child. A
// maximal feasible S below a node with S ⊆ U and U infeasible must
// exclude a witness literal of any constraint violated at U (for an
// OFF conflict, conf ⊄ S since S is feasible; for a privileged pair,
// D ⊆ S would contradict D ⊄ U, hence P ⊄ S), so the branch set is
// complete and every dhf-prime surfaces as a leaf. Leaves are feasible
// by construction and filtered for pairwise maximality at the end;
// the tree size tracks the number of primes, not the subset count.
func (m *problemMat) dhfPrimesMask(seed logic.PackedCube, spec []int) (out []logic.PackedCube, nodes int64, exact bool) {
	k := len(spec)
	offConf := make([]uint64, 0, len(m.off))
	for _, o := range m.off {
		var conf uint64
		for i, v := range spec {
			ol := o.Lit(v)
			if ol != logic.DC && ol != seed.Lit(v) {
				conf |= 1 << uint(i)
			}
		}
		offConf = append(offConf, conf)
	}
	privConf := make([]uint64, len(m.priv))
	privDist := make([]uint64, len(m.priv))
	for pi := range m.priv {
		for i, v := range spec {
			pl := m.priv[pi].cube.Lit(v)
			if pl != logic.DC && pl != seed.Lit(v) {
				privConf[pi] |= 1 << uint(i)
			}
			startOne := m.priv[pi].start[v>>6]>>uint(v&63)&1 != 0
			if (seed.Lit(v) == logic.One) != startOne {
				privDist[pi] |= 1 << uint(i)
			}
		}
	}
	feasible := func(s uint64) bool {
		for _, conf := range offConf {
			if conf&^s == 0 {
				return false
			}
		}
		for i := range privConf {
			if privConf[i]&^s == 0 && privDist[i]&^s != 0 {
				return false
			}
		}
		return true
	}

	full := ^uint64(0)
	if k < 64 {
		full = 1<<uint(k) - 1
	}
	var leaves []uint64
	seen := map[uint64]struct{}{}
	overflow := false
	var walk func(ex uint64)
	walk = func(ex uint64) {
		if overflow {
			return
		}
		if _, dup := seen[ex]; dup {
			return
		}
		if nodes++; nodes > EnumBudget {
			overflow = true
			return
		}
		seen[ex] = struct{}{}
		// A constraint is violated at the candidate U = full∖ex when
		// its conflict set avoids ex entirely (conf ⊆ U) and, for a
		// privileged pair, a start-distance literal is pinned (D ⊄ U).
		// Branch on the first violation; an empty witness set (conf or
		// P already empty) prunes the node — no feasible set survives.
		for _, conf := range offConf {
			if conf&ex == 0 {
				for b := conf; b != 0; b &= b - 1 {
					walk(ex | b&-b)
				}
				return
			}
		}
		for i := range privConf {
			if privConf[i]&ex == 0 && privDist[i]&ex != 0 {
				for b := privConf[i]; b != 0; b &= b - 1 {
					walk(ex | b&-b)
				}
				return
			}
		}
		leaves = append(leaves, full&^ex)
	}
	walk(0)
	if overflow {
		// Greedy maximal expansions guarantee candidates even when the
		// exact enumeration is truncated.
		for _, dir := range []int{1, -1} {
			var s uint64
			for changed := true; changed; {
				changed = false
				for j := 0; j < k; j++ {
					i := j
					if dir < 0 {
						i = k - 1 - j
					}
					if s>>uint(i)&1 != 0 {
						continue
					}
					if feasible(s | 1<<uint(i)) {
						s |= 1 << uint(i)
						changed = true
					}
				}
			}
			dup := false
			for _, u := range leaves {
				if u == s {
					dup = true
					break
				}
			}
			if !dup {
				leaves = append(leaves, s)
			}
		}
	}
	// Distinct exclusion sets can close on nested candidates; keep only
	// the maximal masks (the true dhf-primes).
	for _, s := range leaves {
		maximal := true
		for _, t := range leaves {
			if s != t && s&^t == 0 {
				maximal = false
				break
			}
		}
		if !maximal {
			continue
		}
		c := seed.Clone()
		for i := 0; i < k; i++ {
			if s>>uint(i)&1 != 0 {
				c.FreeLit(spec[i])
			}
		}
		out = append(out, c)
	}
	return out, nodes, !overflow
}

// dhfPrimesWide is the generic path for seeds with more than 64
// specified variables: the same walk on packed cubes directly.
func (m *problemMat) dhfPrimesWide(seed logic.PackedCube) (out []logic.PackedCube, nodes int64, exact bool) {
	n := m.sp.Vars()
	seen := logic.NewKeySet(m.sp)
	outSet := logic.NewKeySet(m.sp)
	record := func(c logic.PackedCube) {
		if outSet.Add(c) {
			out = append(out, c.Clone())
		}
	}
	overflow := false
	var grow func(c logic.PackedCube, minVar int)
	grow = func(c logic.PackedCube, minVar int) {
		if overflow {
			return
		}
		if nodes++; nodes > EnumBudget {
			overflow = true
			return
		}
		if !seen.Add(c) {
			return
		}
		maximal := true
		for v := 0; v < n; v++ {
			lit := c.Lit(v)
			if lit == logic.DC {
				continue
			}
			c.FreeLit(v)
			if m.isDHF(c) {
				maximal = false
				if v >= minVar {
					grow(c, v+1)
				}
			}
			c.SetLit(v, lit)
		}
		if maximal {
			record(c)
		}
	}
	grow(seed.Clone(), 0)
	// Greedy maximal expansions guarantee candidates even when the
	// exact enumeration is truncated (and cover corner cases where the
	// canonical order dead-ends before a maximal cube: dhf-ness is not
	// monotone along the ascending-order path, because growing a cube
	// can acquire a privileged start point its sub-cubes lack).
	for _, dir := range []int{1, -1} {
		c := seed.Clone()
		for changed := true; changed; {
			changed = false
			for k := 0; k < n; k++ {
				v := k
				if dir < 0 {
					v = n - 1 - k
				}
				lit := c.Lit(v)
				if lit == logic.DC {
					continue
				}
				c.FreeLit(v)
				if m.isDHF(c) {
					changed = true
				} else {
					c.SetLit(v, lit)
				}
			}
		}
		record(c)
	}
	return out, nodes, !overflow
}

// Result is a minimized hazard-free cover, with the work counters
// that make a fallback to the greedy paths observable.
type Result struct {
	Cover    logic.Cover
	Primes   int // number of dhf-prime candidates considered
	Required int // number of required cubes
	// Exact reports that every prime enumeration completed within its
	// node budget AND the covering step proved minimality — i.e. the
	// cover is a true minimum-product hazard-free solution, not a
	// greedy approximation.
	Exact bool
	// EnumNodes counts expansion nodes visited across all prime
	// enumerations; BranchNodes counts covering branch-and-bound
	// nodes.
	EnumNodes   int64
	BranchNodes int64
}

// Minimize solves the instance, returning a minimum-product hazard-free
// cover. The candidate enumeration and the covering branch-and-bound
// each run under a node budget; within budget the result is exact
// (Result.Exact), beyond it the greedy fallbacks keep the cover valid
// at a small optimality cost.
func (p *Problem) Minimize() (*Result, error) {
	on, off, required, priv, err := p.sets()
	if err != nil {
		return nil, err
	}
	if len(required) == 0 {
		return &Result{Cover: nil, Exact: true}, nil // constant-0 function
	}
	mat := newProblemMat(p.Vars, off, priv)
	// Generate candidate dhf-primes from each required cube.
	var primes []logic.PackedCube
	primeSet := logic.NewKeySet(mat.sp)
	res := &Result{Required: len(required), Exact: true}
	packedReq := make([]logic.PackedCube, len(required))
	for i, r := range required {
		packedReq[i] = mat.sp.Pack(r)
		if !mat.isDHF(packedReq[i]) {
			return nil, fmt.Errorf("hfmin: required cube %s is not a dhf-implicant; specification is not hazard-free realizable", r)
		}
		cand, nodes, exact := mat.dhfPrimes(packedReq[i])
		res.EnumNodes += nodes
		if !exact {
			res.Exact = false
		}
		for _, pr := range cand {
			if primeSet.Add(pr) {
				primes = append(primes, pr)
			}
		}
	}
	// Containment pruning: a candidate strictly contained in another
	// covers a subset of the required cubes the larger one covers (and
	// both are dhf-implicants), so dropping it shrinks the covering
	// matrix without losing any minimum solution.
	primes = pruneContained(primes)
	res.Primes = len(primes)
	// Build the unate covering matrix.
	covers := make([][]int, len(required)) // row -> candidate column indices
	for i := range packedReq {
		for j := range primes {
			if primes[j].Contains(packedReq[i]) {
				covers[i] = append(covers[i], j)
			}
		}
		if len(covers[i]) == 0 {
			return nil, fmt.Errorf("hfmin: required cube %s has no covering dhf-prime", required[i])
		}
	}
	chosen, bbNodes, coverExact := solveCover(covers, len(primes))
	res.BranchNodes = bbNodes
	if !coverExact {
		res.Exact = false
	}
	var cover logic.Cover
	for _, j := range chosen {
		cover = append(cover, mat.sp.Unpack(primes[j]))
	}
	sortCover(cover)
	// Post-verify: the cover must contain the whole ON-set and be
	// hazard-free. Deliberately run on the unpacked reference engine
	// (defense in depth: a packed-engine bug cannot certify its own
	// output; cheap at these sizes).
	for _, o := range on {
		if !cover.ContainsCube(o) {
			return nil, fmt.Errorf("hfmin: internal error: ON cube %s not covered", o)
		}
	}
	if err := CheckCover(cover, p.Transitions); err != nil {
		return nil, fmt.Errorf("hfmin: internal error: %w", err)
	}
	res.Cover = cover
	return res, nil
}

// pruneContained drops candidates strictly contained in another
// candidate, preserving first-seen order (duplicates were already
// removed by the caller's key set).
func pruneContained(primes []logic.PackedCube) []logic.PackedCube {
	out := primes[:0]
	for i := range primes {
		maximal := true
		for j := range primes {
			if i != j && primes[j].Contains(primes[i]) && !primes[i].Contains(primes[j]) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, primes[i])
		}
	}
	return out
}

// solveCover finds a minimum set of columns covering all rows:
// essential-column extraction and row/column dominance reduce the
// matrix to its cyclic core, a greedy pass seeds the incumbent, and
// branch-and-bound with a maximal-independent-row-set lower bound
// proves minimality. Everything is index-ordered and sequential, so
// the selection is deterministic. It reports the branch-and-bound
// node count and whether minimality was proven within bbBudget.
func solveCover(rows [][]int, nCols int) (cols []int, nodes int64, exact bool) {
	selected := map[int]bool{}
	// Active candidate lists, pruned in place by the reductions.
	cands := make([][]int, len(rows))
	for i, r := range rows {
		cands[i] = append([]int(nil), r...)
	}
	active := make([]int, 0, len(rows))
	for i := range cands {
		active = append(active, i)
	}
	colRemoved := make([]bool, nCols)

	dropCoveredRows := func() {
		out := active[:0]
		for _, i := range active {
			done := false
			for _, j := range cands[i] {
				if selected[j] {
					done = true
					break
				}
			}
			if !done {
				out = append(out, i)
			}
		}
		active = out
	}
	// subset reports a ⊆ b for ascending-sorted int slices.
	subset := func(a, b []int) bool {
		k := 0
		for _, x := range a {
			for k < len(b) && b[k] < x {
				k++
			}
			if k == len(b) || b[k] != x {
				return false
			}
		}
		return true
	}

	// Reduction fixpoint: essentials, row dominance, column dominance.
	for {
		changed := false
		// Essential columns: rows with a single live candidate.
		for _, i := range active {
			if len(cands[i]) == 1 && !selected[cands[i][0]] {
				selected[cands[i][0]] = true
				changed = true
			}
		}
		if changed {
			dropCoveredRows()
		}
		if len(active) == 0 {
			break
		}
		// Row dominance: a row whose candidate set contains another
		// row's is satisfied whenever the tighter row is — drop it.
		// On identical sets the higher index is dropped.
		dominated := map[int]bool{}
		for ai, i := range active {
			for bi, j := range active {
				if ai == bi || dominated[i] || dominated[j] {
					continue
				}
				if subset(cands[j], cands[i]) && (len(cands[j]) < len(cands[i]) || j < i) {
					dominated[i] = true
				}
			}
		}
		if len(dominated) > 0 {
			out := active[:0]
			for _, i := range active {
				if !dominated[i] {
					out = append(out, i)
				}
			}
			active = out
			changed = true
		}
		// Column dominance: a column covering a subset of another's
		// live rows can be replaced by the dominating column in any
		// solution — remove it. On identical row sets the lower index
		// is kept.
		colRows := map[int][]int{}
		for _, i := range active {
			for _, j := range cands[i] {
				colRows[j] = append(colRows[j], i)
			}
		}
		liveCols := make([]int, 0, len(colRows))
		for j := range colRows {
			liveCols = append(liveCols, j)
		}
		sort.Ints(liveCols)
		for _, j := range liveCols {
			if colRemoved[j] {
				continue
			}
			for _, k := range liveCols {
				if j == k || colRemoved[k] {
					continue
				}
				if subset(colRows[j], colRows[k]) && (len(colRows[j]) < len(colRows[k]) || k < j) {
					colRemoved[j] = true
					changed = true
					break
				}
			}
		}
		if changed {
			for _, i := range active {
				out := cands[i][:0]
				for _, j := range cands[i] {
					if !colRemoved[j] {
						out = append(out, j)
					}
				}
				cands[i] = out
			}
		}
		if !changed {
			break
		}
	}

	exact = true
	if len(active) > 0 {
		// Greedy incumbent: repeatedly take the column covering the
		// most uncovered rows (ties to the lower index). Guarantees a
		// solution even if the branch-and-bound budget runs out.
		greedy := make([]bool, nCols)
		count := make([]int, nCols)
		var best []int
		rest := append([]int(nil), active...)
		for len(rest) > 0 {
			for i := range count {
				count[i] = 0
			}
			for _, i := range rest {
				for _, j := range cands[i] {
					count[j]++
				}
			}
			bestJ, bestC := -1, -1
			for j, c := range count {
				if c > bestC {
					bestJ, bestC = j, c
				}
			}
			greedy[bestJ] = true
			best = append(best, bestJ)
			out := rest[:0]
			for _, i := range rest {
				done := false
				for _, j := range cands[i] {
					if greedy[j] {
						done = true
						break
					}
				}
				if !done {
					out = append(out, i)
				}
			}
			rest = out
		}
		sort.Ints(best)

		// Lower bound: a set of pairwise column-disjoint rows needs
		// one distinct column each (a maximal independent row set,
		// built greedily in row order).
		lbUsed := make([]bool, nCols)
		independentLB := func(remaining []int) int {
			for i := range lbUsed {
				lbUsed[i] = false
			}
			lb := 0
			for _, i := range remaining {
				disjoint := true
				for _, j := range cands[i] {
					if lbUsed[j] {
						disjoint = false
						break
					}
				}
				if disjoint {
					lb++
					for _, j := range cands[i] {
						lbUsed[j] = true
					}
				}
			}
			return lb
		}

		overflow := false
		var cur []int
		// Depth-indexed scratch rows: the recursion reuses one buffer
		// per depth instead of allocating a remaining-set per node.
		arena := make([][]int, len(active)+1)
		var rec func(remaining []int, depth int)
		rec = func(remaining []int, depth int) {
			if overflow {
				return
			}
			if nodes++; nodes > bbBudget {
				overflow = true
				return
			}
			if len(remaining) == 0 {
				if len(cur) < len(best) {
					best = append(best[:0], cur...)
				}
				return
			}
			if len(cur)+independentLB(remaining) >= len(best) {
				return
			}
			// Branch on the row with fewest candidates (ties to the
			// lower row index).
			bi := remaining[0]
			for _, i := range remaining {
				if len(cands[i]) < len(cands[bi]) {
					bi = i
				}
			}
			if arena[depth] == nil {
				arena[depth] = make([]int, 0, len(remaining))
			}
			for _, j := range cands[bi] {
				cur = append(cur, j)
				next := arena[depth][:0]
				for _, i := range remaining {
					covered := false
					for _, k := range cands[i] {
						if k == j {
							covered = true
							break
						}
					}
					if !covered {
						next = append(next, i)
					}
				}
				arena[depth] = next
				rec(next, depth+1)
				cur = cur[:len(cur)-1]
			}
		}
		rec(active, 0)
		exact = !overflow
		sort.Ints(best)
		for _, j := range best {
			selected[j] = true
		}
	}
	cols = make([]int, 0, len(selected))
	for j := range selected {
		cols = append(cols, j)
	}
	sort.Ints(cols)
	return cols, nodes, exact
}

// CheckCover verifies that a cover implements the specified transitions
// without logic hazards: correct values, single-cube containment of
// static-1 and 1→0 required cubes, and no illegal intersections of
// privileged cubes. It is used both as a post-check of minimization and
// to audit technology-mapped logic (Section 5 of the paper).
func CheckCover(cover logic.Cover, transitions []Transition) error {
	for i, t := range transitions {
		T := t.Cube()
		switch {
		case t.From && t.To:
			contained := false
			for _, c := range cover {
				if c.Contains(T) {
					contained = true
					break
				}
			}
			if !contained {
				return fmt.Errorf("static 1→1 transition %d (%s) not held by a single product", i, T)
			}
		case !t.From && !t.To:
			if cover.AnyIntersects(T) {
				return fmt.Errorf("static 0→0 transition %d (%s) intersected by a product", i, T)
			}
		case t.From && !t.To:
			for _, c := range cover {
				if c.Intersects(T) && !c.ContainsPoint(t.Start) {
					return fmt.Errorf("1→0 transition %d: product %s intersects %s without its start point", i, c, T)
				}
			}
			for _, v := range t.Changed() {
				sub := T.Clone()
				if t.Start[v] {
					sub[v] = logic.One
				} else {
					sub[v] = logic.Zero
				}
				contained := false
				for _, c := range cover {
					if c.Contains(sub) {
						contained = true
						break
					}
				}
				if !contained {
					return fmt.Errorf("1→0 transition %d: required cube %s not held by a single product", i, sub)
				}
			}
			if cover.Eval(t.End) {
				return fmt.Errorf("1→0 transition %d: cover still 1 at end point", i)
			}
		default: // 0→1
			if !cover.Eval(t.End) {
				return fmt.Errorf("0→1 transition %d: cover 0 at end point", i)
			}
			for _, v := range t.Changed() {
				sub := T.Clone()
				if t.Start[v] {
					sub[v] = logic.One
				} else {
					sub[v] = logic.Zero
				}
				for _, c := range cover {
					if c.Intersects(sub) {
						return fmt.Errorf("0→1 transition %d: product %s on during OFF phase %s", i, c, sub)
					}
				}
			}
		}
	}
	return nil
}

func sortCover(cv logic.Cover) {
	sort.Slice(cv, func(i, j int) bool { return cv[i].String() < cv[j].String() })
}

// FormatPLA renders the cover in a small PLA-like format for the .sol
// report files.
func FormatPLA(name string, inputs []string, cover logic.Cover) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, ".ob %s\n", name)
	fmt.Fprintf(&sb, ".i %d\n", len(inputs))
	fmt.Fprintf(&sb, ".ilb %s\n", strings.Join(inputs, " "))
	fmt.Fprintf(&sb, ".p %d\n", len(cover))
	for _, c := range cover {
		fmt.Fprintf(&sb, "%s 1\n", c)
	}
	sb.WriteString(".e\n")
	return sb.String()
}

package sim

import (
	"testing"

	"balsabm/internal/cell"
	"balsabm/internal/ch"
	"balsabm/internal/chtobm"
	"balsabm/internal/minimalist"
	"balsabm/internal/techmap"
)

func mapped(t *testing.T, name, src string, mode techmap.Mode) (*minimalist.Controller, *Simulator, *SpecDriver) {
	t.Helper()
	lib := cell.AMS035()
	body, err := ch.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := chtobm.Compile(&ch.Program{Name: name, Body: body})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := minimalist.Synthesize(sp)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := techmap.MapController(ctrl, mode, lib)
	if err != nil {
		t.Fatal(err)
	}
	s := New(lib)
	s.AddNetlist(nl, name, nil)
	d := NewSpecDriver(s, sp, 0.5, 7, nil)
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	return ctrl, s, d
}

func TestBasicGates(t *testing.T) {
	lib := cell.AMS035()
	s := New(lib)
	a, b := s.Net("a"), s.Net("b")
	out := s.Net("out")
	s.AddGate("NAND2", []int{a, b}, out)
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	if !s.Value("out") {
		t.Fatal("NAND of low inputs must initialize high")
	}
	s.Schedule("a", true, 1)
	s.Schedule("b", true, 2)
	if err := s.Run(100, 1000); err != nil {
		t.Fatal(err)
	}
	if s.Value("out") {
		t.Fatal("NAND(1,1) must be 0")
	}
	// Delay accounting: output flips one NAND2 delay after the last
	// input edge.
	if s.Time < 2.08-1e-9 {
		t.Fatalf("time %.3f, want >= 2.08", s.Time)
	}
}

func TestCElementHolds(t *testing.T) {
	lib := cell.AMS035()
	s := New(lib)
	a, b := s.Net("a"), s.Net("b")
	out := s.Net("c")
	s.AddGate("C2", []int{a, b}, out)
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	s.Schedule("a", true, 1)
	if err := s.Run(50, 100); err != nil {
		t.Fatal(err)
	}
	if s.Value("c") {
		t.Fatal("C fired on one input")
	}
	s.Schedule("b", true, 1)
	if err := s.Run(50, 100); err != nil {
		t.Fatal(err)
	}
	if !s.Value("c") {
		t.Fatal("C did not fire")
	}
	s.Schedule("a", false, 1)
	if err := s.Run(50, 100); err != nil {
		t.Fatal(err)
	}
	if !s.Value("c") {
		t.Fatal("C did not hold")
	}
}

// Mapped controllers in both modes run their specification protocol in
// a closed loop with the spec driver.
func TestMappedControllersConform(t *testing.T) {
	srcs := map[string]string{
		"passivator": `(rep (enc-middle (p-to-p passive A) (p-to-p passive B)))`,
		"sequencer": `(rep (enc-early (p-to-p passive P)
		    (seq (p-to-p active A1) (p-to-p active A2))))`,
		"call": `(rep (mutex
		    (enc-early (p-to-p passive A1) (p-to-p active B))
		    (enc-early (p-to-p passive A2) (p-to-p active B))))`,
		"dwseq": `(rep (enc-early (p-to-p passive a1)
		    (mutex (enc-early (p-to-p passive i1) (p-to-p active o1))
		           (enc-early (p-to-p passive i2)
		              (enc-early void (seq (p-to-p active c1) (p-to-p active c2)))))))`,
	}
	for name, src := range srcs {
		for _, mode := range []techmap.Mode{techmap.SpeedSplit, techmap.AreaShared} {
			_, s, d := mapped(t, name, src, mode)
			d.Start(50)
			if err := s.Run(100000, 2_000_000); err != nil {
				t.Fatalf("%s [%v]: %v", name, mode, err)
			}
			if d.Err != nil {
				t.Fatalf("%s [%v]: %v", name, mode, d.Err)
			}
			if d.Cycles < 50 {
				t.Fatalf("%s [%v]: only %d cycles", name, mode, d.Cycles)
			}
		}
	}
}

// The optimized (clustered) controller must complete a full activation
// faster than the baseline pair of controllers joined by a channel —
// the paper's central speed claim in miniature (Fig 5 example).
func TestClusterLatencyAdvantage(t *testing.T) {
	lib := cell.AMS035()
	addMapped := func(s *Simulator, name, src string, mode techmap.Mode) {
		body, err := ch.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := chtobm.Compile(&ch.Program{Name: name, Body: body})
		if err != nil {
			t.Fatal(err)
		}
		ctrl, err := minimalist.Synthesize(sp)
		if err != nil {
			t.Fatal(err)
		}
		nl, err := techmap.MapController(ctrl, mode, lib)
		if err != nil {
			t.Fatal(err)
		}
		s.AddNetlist(nl, name, nil)
	}

	// Baseline: sequencer and call as two separate mapped controllers
	// wired by the b1/b2 channels; environment on a, c.
	seqSrc := `(rep (enc-early (p-to-p passive a)
	    (seq (p-to-p active b1) (p-to-p active b2))))`
	callSrc := `(rep (mutex
	    (enc-early (p-to-p passive b1) (p-to-p active c))
	    (enc-early (p-to-p passive b2) (p-to-p active c))))`
	mergedSrc := `(rep (enc-early (p-to-p passive a)
	    (seq (enc-early void (p-to-p active c))
	         (enc-early void (p-to-p active c)))))`

	elapsed := func(build func() (*Simulator, func() bool)) float64 {
		s, done := build()
		for !done() {
			if err := s.Run(100000, 2_000_000); err != nil {
				t.Fatal(err)
			}
		}
		return s.Time
	}

	baseline := elapsed(func() (*Simulator, func() bool) {
		s := New(lib)
		addMapped(s, "seq", seqSrc, techmap.AreaShared)
		addMapped(s, "call", callSrc, techmap.AreaShared)
		// Environment: activate on a for 20 cycles, acknowledge c
		// promptly.
		cycles := 0
		s.Watch("c_r", func(s *Simulator, _ int, val bool) {
			s.Schedule("c_a", val, 0.2)
		})
		s.Watch("a_a", func(s *Simulator, _ int, val bool) {
			if val {
				s.Schedule("a_r", false, 0.2)
			} else {
				cycles++
				if cycles >= 20 {
					s.Stop()
					return
				}
				s.Schedule("a_r", true, 0.2)
			}
		})
		if err := s.Init(); err != nil {
			t.Fatal(err)
		}
		s.Schedule("a_r", true, 1)
		return s, func() bool { return cycles >= 20 }
	})

	merged := elapsed(func() (*Simulator, func() bool) {
		s := New(lib)
		addMapped(s, "merged", mergedSrc, techmap.SpeedSplit)
		cycles := 0
		s.Watch("c_r", func(s *Simulator, _ int, val bool) {
			s.Schedule("c_a", val, 0.2)
		})
		s.Watch("a_a", func(s *Simulator, _ int, val bool) {
			if val {
				s.Schedule("a_r", false, 0.2)
			} else {
				cycles++
				if cycles >= 20 {
					s.Stop()
					return
				}
				s.Schedule("a_r", true, 0.2)
			}
		})
		if err := s.Init(); err != nil {
			t.Fatal(err)
		}
		s.Schedule("a_r", true, 1)
		return s, func() bool { return cycles >= 20 }
	})

	if merged >= baseline {
		t.Fatalf("merged controller (%.2f ns) not faster than channel-connected pair (%.2f ns)", merged, baseline)
	}
	t.Logf("baseline %.2f ns, merged %.2f ns (%.1f%% faster)", baseline, merged, 100*(baseline-merged)/baseline)
}

func TestAfterAndStop(t *testing.T) {
	s := New(cell.AMS035())
	fired := false
	s.After(5, func(s *Simulator) { fired = true; s.Stop() })
	s.After(10, func(s *Simulator) { t.Fatal("should have stopped") })
	if err := s.Run(100, 100); err != nil {
		t.Fatal(err)
	}
	if !fired || s.Time != 5 {
		t.Fatalf("fired=%v time=%v", fired, s.Time)
	}
}

func TestEventBudget(t *testing.T) {
	lib := cell.AMS035()
	s := New(lib)
	// A ring oscillator: INV feeding itself.
	n := s.Net("osc")
	s.AddGate("INV", []int{n}, n)
	s.Schedule("osc", true, 1)
	if err := s.Run(1e9, 100); err == nil {
		t.Fatal("oscillator should exhaust the event budget")
	}
}

package sim

import (
	"testing"

	"balsabm/internal/cell"
	"balsabm/internal/ch"
	"balsabm/internal/chtobm"
	"balsabm/internal/gates"
	"balsabm/internal/minimalist"
	"balsabm/internal/techmap"
)

// Fault injection: the spec driver is only trustworthy if it actually
// rejects broken circuits. Corrupt the mapped sequencer one gate at a
// time (flip a NAND into a NOR) and require that the driver reports a
// protocol violation, a deadlock, or an oscillation for the vast
// majority of mutants.
func TestSpecDriverCatchesInjectedFaults(t *testing.T) {
	lib := cell.AMS035()
	body, err := ch.Parse(`(rep (enc-early (p-to-p passive P)
	    (seq (p-to-p active A1) (p-to-p active A2))))`)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := chtobm.Compile(&ch.Program{Name: "seq2", Body: body})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := minimalist.Synthesize(sp)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := techmap.MapController(ctrl, techmap.SpeedSplit, lib)
	if err != nil {
		t.Fatal(err)
	}

	runMutant := func(nl *gates.Netlist) (caught bool) {
		s := New(lib)
		s.AddNetlist(nl, "dut", nil)
		d := NewSpecDriver(s, sp, 0.6, 5, nil)
		if err := s.Init(); err != nil {
			return true // stuck at power-up counts as caught
		}
		d.Start(30)
		err := s.Run(10_000, 200_000)
		if err != nil {
			return true // oscillation or time limit
		}
		if d.Err != nil {
			return true // protocol violation observed
		}
		if d.Cycles < 30 {
			return true // deadlock
		}
		return false
	}

	// Sanity: the golden netlist passes.
	if runMutant(golden) {
		t.Fatal("golden circuit flagged as faulty")
	}

	mutants, caught := 0, 0
	for gi := range golden.Instances {
		orig := golden.Instances[gi].Cell
		var swap string
		switch orig {
		case "NAND2":
			swap = "NOR2"
		case "INV":
			swap = "BUF"
		default:
			continue
		}
		golden.Instances[gi].Cell = swap
		mutants++
		if runMutant(golden) {
			caught++
		}
		golden.Instances[gi].Cell = orig
	}
	if mutants < 5 {
		t.Fatalf("only %d mutants generated", mutants)
	}
	// Two-level covers carry products whose corrupted cells only differ
	// on unreachable input combinations (equivalent mutants), so a
	// perfect kill rate is not expected; a majority must be caught.
	if caught < mutants/2 {
		t.Fatalf("driver caught only %d of %d injected faults", caught, mutants)
	}
	t.Logf("caught %d/%d injected faults", caught, mutants)
}

package sim

import (
	"fmt"
	"math/rand"

	"balsabm/internal/bm"
)

// SpecDriver exercises a controller per its Burst-Mode specification:
// it plays the environment, delivering input bursts (in randomized
// order with a configurable stagger) and verifying that exactly the
// specified output bursts come back. It doubles as a dynamic
// conformance checker for mapped controllers and as a convenient
// closed-loop testbench.
type SpecDriver struct {
	Spec  *bm.Spec
	Delay float64 // environment response delay per input edge (ns)
	// Choose selects the arc to take from a state with several
	// outgoing arcs; nil picks pseudo-randomly.
	Choose func(arcs []bm.Arc, cycle int) bm.Arc

	Cycles int // completed arcs
	Err    error

	rng     *rand.Rand
	state   int
	pending map[string]bool // outstanding expected output edges (name+polarity key)
	arc     bm.Arc
	stopAt  int
	sim     *Simulator
	netName func(string) string
}

// NewSpecDriver attaches a driver to the simulator. Input and output
// nets are the spec's signal names (optionally through portMap).
func NewSpecDriver(s *Simulator, sp *bm.Spec, delay float64, seed int64, portMap map[string]string) *SpecDriver {
	d := &SpecDriver{
		Spec:  sp,
		Delay: delay,
		rng:   rand.New(rand.NewSource(seed)),
		state: sp.Start,
		sim:   s,
	}
	net := func(sig string) string {
		if portMap != nil {
			if m, ok := portMap[sig]; ok {
				return m
			}
		}
		return sig
	}
	for _, out := range sp.Outputs {
		sig := out
		s.Watch(net(sig), func(s *Simulator, _ int, val bool) {
			d.observe(s, sig, val)
		})
	}
	d.netName = net
	return d
}

func (d *SpecDriver) fail(format string, args ...any) {
	if d.Err == nil {
		d.Err = fmt.Errorf(format, args...)
	}
	d.sim.Stop()
}

// Start launches the driver for the given number of arcs (0 = drive
// forever until the simulator stops).
func (d *SpecDriver) Start(arcs int) {
	d.stopAt = arcs
	d.next(d.sim)
}

func key(name string, rise bool) string {
	if rise {
		return name + "+"
	}
	return name + "-"
}

// next picks the outgoing arc and schedules its input burst.
func (d *SpecDriver) next(s *Simulator) {
	if d.stopAt > 0 && d.Cycles >= d.stopAt {
		s.Stop()
		return
	}
	arcs := d.Spec.ArcsFrom(d.state)
	if len(arcs) == 0 {
		d.fail("spec driver: state %d has no outgoing arcs", d.state)
		return
	}
	var arc bm.Arc
	if d.Choose != nil {
		arc = d.Choose(arcs, d.Cycles)
	} else {
		arc = arcs[d.rng.Intn(len(arcs))]
	}
	d.arc = arc
	d.pending = map[string]bool{}
	for _, o := range arc.Out {
		d.pending[key(o.Name, o.Rise)] = true
	}
	// Deliver the input burst in random order with stagger.
	burst := append(bm.Burst(nil), arc.In...)
	d.rng.Shuffle(len(burst), func(i, j int) { burst[i], burst[j] = burst[j], burst[i] })
	delay := d.Delay
	for _, sig := range burst {
		s.Schedule(d.netName(sig.Name), sig.Rise, delay)
		delay += d.Delay * 0.3
	}
	if len(arc.Out) == 0 {
		// Nothing to observe: proceed after the machine settles.
		s.After(delay+2.0, func(s *Simulator) { d.advance(s) })
	}
}

// observe processes a controller output edge.
func (d *SpecDriver) observe(s *Simulator, sig string, val bool) {
	k := key(sig, val)
	if d.pending == nil || !d.pending[k] {
		d.fail("spec driver: unexpected output %s at %.2f ns (state %d, arc %s)", k, s.Time, d.state, d.arc)
		return
	}
	delete(d.pending, k)
	if len(d.pending) == 0 {
		d.advance(s)
	}
}

// advance completes the current arc.
func (d *SpecDriver) advance(s *Simulator) {
	d.state = d.arc.To
	d.Cycles++
	d.next(s)
}

// State returns the driver's current specification state.
func (d *SpecDriver) State() int { return d.state }

// HandshakeCounter counts four-phase handshakes on a channel by
// watching the rising edges of its request net.
type HandshakeCounter struct {
	Count int
}

// NewHandshakeCounter attaches a counter to a request net.
func NewHandshakeCounter(s *Simulator, reqNet string) *HandshakeCounter {
	h := &HandshakeCounter{}
	s.Watch(reqNet, func(_ *Simulator, _ int, val bool) {
		if val {
			h.Count++
		}
	})
	return h
}

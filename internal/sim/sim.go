// Package sim is an event-driven logic simulator for mapped gate
// netlists plus behavioral processes. It stands in for the paper's
// back-annotated Verilog-XL simulations: every library cell switches
// with its library delay, datapath components are modelled behaviorally
// with the same delay model in both arms of a comparison, and
// environments are Go callbacks.
package sim

import (
	"container/heap"
	"fmt"

	"balsabm/internal/cell"
	"balsabm/internal/gates"
)

// event is a scheduled net assignment, gate-output commit, or callback.
type event struct {
	time float64
	seq  int64
	net  int
	val  bool
	gate int // -1 for plain net events; else index of the driving gate
	fn   func(*Simulator)
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// gateInst is a placed cell with inertial-delay bookkeeping: at most
// one output change is in flight; re-evaluations that return to the
// current output value cancel it (pulses shorter than the cell delay
// are absorbed, as in real gates).
type gateInst struct {
	cell       *cell.Cell
	ins        []int
	out        int
	delay      float64 // cell delay plus fanout loading (set by Init)
	tab        [2]uint64
	lutOK      bool // tab is valid: ≤6 inputs, pin count matches
	hasPending bool
	pendingVal bool
	pendingSeq int64
}

// eval recomputes the gate's output from the current net values. The
// hot path indexes the cell's cached truth table (cell.TruthTable, so
// it can never disagree with cell.Eval) instead of allocating an
// input slice per evaluation; cells the LUT cannot represent fall
// back to Eval.
func (g *gateInst) eval(values []bool) bool {
	if g.lutOK {
		idx := 0
		for j, in := range g.ins {
			if values[in] {
				idx |= 1 << uint(j)
			}
		}
		prev := 0
		if values[g.out] {
			prev = 1
		}
		return g.tab[prev]>>uint(idx)&1 != 0
	}
	ins := make([]bool, len(g.ins))
	for i, in := range g.ins {
		ins[i] = values[in]
	}
	return g.cell.Eval(ins, values[g.out])
}

// FanoutPenalty is the extra delay per additional fanout load on a
// gate's output (a first-order wire/load model: large clustered
// controllers drive many product terms from each literal, so their
// effective gate delays exceed the unloaded library figures).
const FanoutPenalty = 0.02 // ns per extra load

// Watcher observes value changes on a net.
type Watcher func(s *Simulator, net int, val bool)

// Simulator is the event-driven kernel.
type Simulator struct {
	lib      *cell.Library
	names    []string
	index    map[string]int
	values   []bool
	gates    []gateInst
	fanout   [][]int // net -> gate indices
	watchers map[int][]Watcher
	queue    eventHeap
	seq      int64
	stopped  bool

	// Time is the current simulation time in ns.
	Time float64
	// Events counts applied net changes (a rough activity measure).
	Events int64
}

// New creates a simulator over the given cell library.
func New(lib *cell.Library) *Simulator {
	return &Simulator{lib: lib, index: map[string]int{}, watchers: map[int][]Watcher{}}
}

// Net interns a global net by name.
func (s *Simulator) Net(name string) int {
	if id, ok := s.index[name]; ok {
		return id
	}
	id := len(s.names)
	s.names = append(s.names, name)
	s.index[name] = id
	s.values = append(s.values, false)
	s.fanout = append(s.fanout, nil)
	return id
}

// NetName returns the name of a net id.
func (s *Simulator) NetName(net int) string { return s.names[net] }

// Value reads a net by name.
func (s *Simulator) Value(name string) bool {
	return s.values[s.Net(name)]
}

// ValueOf reads a net by id.
func (s *Simulator) ValueOf(net int) bool { return s.values[net] }

// AddGate places a library cell instance on global nets.
func (s *Simulator) AddGate(cellName string, ins []int, out int) {
	g := gateInst{cell: s.lib.Get(cellName), ins: append([]int(nil), ins...), out: out}
	if tab, ok := g.cell.TruthTable(); ok && len(g.ins) == g.cell.Inputs {
		g.tab, g.lutOK = tab, true
	}
	idx := len(s.gates)
	s.gates = append(s.gates, g)
	for _, in := range g.ins {
		s.fanout[in] = append(s.fanout[in], idx)
	}
}

// AddNetlist instantiates a mapped netlist. Primary input and output
// nets keep their own names (optionally translated via portMap);
// internal nets are prefixed with instanceName to stay private.
func (s *Simulator) AddNetlist(nl *gates.Netlist, instanceName string, portMap map[string]string) {
	boundary := map[int]bool{}
	for _, n := range nl.Inputs {
		boundary[n] = true
	}
	for _, n := range nl.Outputs {
		boundary[n] = true
	}
	local := make([]int, len(nl.NetNames))
	for id, name := range nl.NetNames {
		global := name
		if mapped, ok := portMap[name]; ok {
			global = mapped
		} else if !boundary[id] {
			global = instanceName + "." + name
		}
		local[id] = s.Net(global)
	}
	for _, inst := range nl.Instances {
		ins := make([]int, len(inst.Inputs))
		for i, in := range inst.Inputs {
			ins[i] = local[in]
		}
		s.AddGate(inst.Cell, ins, local[inst.Output])
	}
}

// Watch registers a callback fired after the named net changes value.
func (s *Simulator) Watch(name string, w Watcher) {
	id := s.Net(name)
	s.watchers[id] = append(s.watchers[id], w)
}

// Schedule sets a net to a value after the given delay.
func (s *Simulator) Schedule(name string, val bool, delay float64) {
	s.ScheduleNet(s.Net(name), val, delay)
}

// ScheduleNet sets a net by id after the given delay.
func (s *Simulator) ScheduleNet(net int, val bool, delay float64) {
	s.seq++
	heap.Push(&s.queue, event{time: s.Time + delay, seq: s.seq, net: net, val: val, gate: -1})
}

// evalGate recomputes a gate and manages its pending output event.
func (s *Simulator) evalGate(gi int) {
	g := &s.gates[gi]
	out := g.eval(s.values)
	switch {
	case g.hasPending:
		if out == g.pendingVal {
			return // already in flight
		}
		if out == s.values[g.out] {
			g.hasPending = false // inertial cancellation
			return
		}
		// Binary signals: out != pending and out != current cannot both
		// hold; kept for safety with future multi-valued cells.
		fallthrough
	default:
		if out == s.values[g.out] {
			return
		}
		s.seq++
		g.hasPending = true
		g.pendingVal = out
		g.pendingSeq = s.seq
		heap.Push(&s.queue, event{time: s.Time + g.delay, seq: s.seq, net: g.out, val: out, gate: gi})
	}
}

// After schedules a callback to run at the given delay from now.
func (s *Simulator) After(delay float64, fn func(*Simulator)) {
	s.seq++
	heap.Push(&s.queue, event{time: s.Time + delay, seq: s.seq, fn: fn})
}

// Stop halts the current Run after the present event.
func (s *Simulator) Stop() { s.stopped = true }

// Init settles the combinational network at time zero without
// generating events (power-up evaluation), so gates whose quiescent
// output is 1 (e.g. NAND of low inputs) start correctly.
func (s *Simulator) Init() error {
	// Effective per-gate delays: library delay plus fanout loading.
	loads := make([]int, len(s.names))
	for _, g := range s.gates {
		for _, in := range g.ins {
			loads[in]++
		}
	}
	for i := range s.gates {
		g := &s.gates[i]
		extra := loads[g.out] - 1
		if extra < 0 {
			extra = 0
		}
		if extra > 3 {
			extra = 3 // synthesis would insert buffer trees beyond this
		}
		g.delay = g.cell.Delay + FanoutPenalty*float64(extra)
	}
	for iter := 0; iter < 4*len(s.gates)+16; iter++ {
		changed := false
		for i := range s.gates {
			g := &s.gates[i]
			out := g.eval(s.values)
			if out != s.values[g.out] {
				s.values[g.out] = out
				changed = true
			}
		}
		if !changed {
			return nil
		}
	}
	return fmt.Errorf("sim: power-up evaluation did not settle")
}

// Run processes events until the queue drains, the time limit passes,
// the event budget is exhausted, or Stop is called.
func (s *Simulator) Run(until float64, maxEvents int64) error {
	s.stopped = false
	for s.queue.Len() > 0 && !s.stopped {
		e := heap.Pop(&s.queue).(event)
		if e.time > until {
			s.Time = until
			return fmt.Errorf("sim: time limit %.2f ns exceeded", until)
		}
		s.Time = e.time
		if e.fn != nil {
			e.fn(s)
			continue
		}
		if e.gate >= 0 {
			g := &s.gates[e.gate]
			if !g.hasPending || g.pendingSeq != e.seq {
				continue // cancelled or superseded
			}
			g.hasPending = false
		}
		if s.values[e.net] == e.val {
			continue
		}
		s.values[e.net] = e.val
		s.Events++
		if s.Events > maxEvents {
			return fmt.Errorf("sim: event budget %d exceeded at %.2f ns (oscillation?)", maxEvents, s.Time)
		}
		for _, gi := range s.fanout[e.net] {
			s.evalGate(gi)
		}
		for _, w := range s.watchers[e.net] {
			w(s, e.net, e.val)
		}
	}
	return nil
}

// Quiet reports whether no events are pending.
func (s *Simulator) Quiet() bool { return s.queue.Len() == 0 }

package ch

import "fmt"

// ExpandError reports an expansion failure (an operator applied to an
// activity combination for which Table 2 defines no expansion).
type ExpandError struct {
	Op   OpKind
	ActA Activity
	ActB Activity
}

func (e *ExpandError) Error() string {
	return fmt.Sprintf("ch: no four-phase expansion for %s with %s/%s arguments",
		e.Op, e.ActA, e.ActB)
}

// expandCtx carries state for a single expansion: fresh-label
// generation and the stack of enclosing loops for break resolution.
type expandCtx struct {
	nextLabel int
	loops     []loopLabels
}

type loopLabels struct{ start, end string }

func (c *expandCtx) fresh(prefix string) string {
	c.nextLabel++
	return fmt.Sprintf("%s%d", prefix, c.nextLabel)
}

// Expand computes the four-phase handshake expansion of a program body
// per Section 3 of the paper.
func Expand(e Expr) (Expansion, error) {
	ctx := &expandCtx{}
	return expand(e, ctx)
}

func expand(e Expr, ctx *expandCtx) (Expansion, error) {
	switch n := e.(type) {
	case *Chan:
		return expandChan(n), nil
	case *Void:
		return Expansion{}, nil
	case *Break:
		if len(ctx.loops) == 0 {
			return Expansion{}, fmt.Errorf("ch: break outside of rep loop")
		}
		end := ctx.loops[len(ctx.loops)-1].end
		return Expansion{Event{BGoto{Name: end}}, nil, nil, nil}, nil
	case *Rep:
		lbl := loopLabels{start: ctx.fresh("L"), end: ctx.fresh("E")}
		ctx.loops = append(ctx.loops, lbl)
		body, err := expand(n.Body, ctx)
		ctx.loops = ctx.loops[:len(ctx.loops)-1]
		if err != nil {
			return Expansion{}, err
		}
		ev := Event{Label{Name: lbl.start}}
		ev = append(ev, body.Flatten()...)
		ev = append(ev, Goto{Name: lbl.start}, Label{Name: lbl.end})
		return Expansion{ev, nil, nil, nil}, nil
	case *Op:
		return expandOp(n, ctx)
	case *MuxAck:
		return expandMuxAck(n, ctx)
	case *MuxReq:
		return expandMuxReq(n, ctx)
	default:
		return Expansion{}, fmt.Errorf("ch: cannot expand %T", e)
	}
}

// expandChan produces the channel expansions of Section 3.1.
func expandChan(c *Chan) Expansion {
	switch c.Kind {
	case PToP:
		req, ack := c.Name+"_r", c.Name+"_a"
		if c.Act == Active {
			return Expansion{
				Event{Trans{req, Out, true}},
				Event{Trans{ack, In, true}},
				Event{Trans{req, Out, false}},
				Event{Trans{ack, In, false}},
			}
		}
		return Expansion{
			Event{Trans{req, In, true}},
			Event{Trans{ack, Out, true}},
			Event{Trans{req, In, false}},
			Event{Trans{ack, Out, false}},
		}
	case MultReq:
		// One request wire, N acknowledge wires; all acknowledge
		// transitions are grouped into a single event.
		req := c.Name + "_r"
		acks := func(rise bool, dir Dir) Event {
			ev := make(Event, c.N)
			for i := 0; i < c.N; i++ {
				ev[i] = Trans{fmt.Sprintf("%s_a%d", c.Name, i+1), dir, rise}
			}
			return ev
		}
		if c.Act == Active {
			return Expansion{
				Event{Trans{req, Out, true}}, acks(true, In),
				Event{Trans{req, Out, false}}, acks(false, In),
			}
		}
		return Expansion{
			Event{Trans{req, In, true}}, acks(true, Out),
			Event{Trans{req, In, false}}, acks(false, Out),
		}
	case MultAck:
		// N request wires, one acknowledge wire; all request
		// transitions are grouped into a single event.
		ack := c.Name + "_a"
		reqs := func(rise bool, dir Dir) Event {
			ev := make(Event, c.N)
			for i := 0; i < c.N; i++ {
				ev[i] = Trans{fmt.Sprintf("%s_r%d", c.Name, i+1), dir, rise}
			}
			return ev
		}
		if c.Act == Active {
			return Expansion{
				reqs(true, Out), Event{Trans{ack, In, true}},
				reqs(false, Out), Event{Trans{ack, In, false}},
			}
		}
		return Expansion{
			reqs(true, In), Event{Trans{ack, Out, true}},
			reqs(false, In), Event{Trans{ack, Out, false}},
		}
	case Verb:
		return c.Ev
	}
	return Expansion{}
}

// expandOp applies Table 2. The four events of the first argument's
// expansion are a1..a4; the second argument's are b1..b4.
func expandOp(o *Op, ctx *expandCtx) (Expansion, error) {
	a, err := expand(o.A, ctx)
	if err != nil {
		return Expansion{}, err
	}
	b, err := expand(o.B, ctx)
	if err != nil {
		return Expansion{}, err
	}
	actA, actB := o.A.Activity(), o.B.Activity()
	fail := func() (Expansion, error) {
		return Expansion{}, &ExpandError{Op: o.Kind, ActA: actA, ActB: actB}
	}
	// Neutral arguments (void, break) contribute no transitions and
	// combine under any operator except mutex (which requires genuine
	// external passive choices on both sides).
	neutral := actA == Neutral || actB == Neutral

	cat := func(evs ...Event) Event {
		var out Event
		for _, e := range evs {
			out = append(out, e...)
		}
		return out
	}

	switch o.Kind {
	case EncEarly:
		// active/active: [a1][a2 b1 b2 b3 b4][a3][a4]
		// passive/*:     [a1 b1 b2 b3 b4][a2][a3][a4]
		switch {
		case actA == Active && actB == Active:
			return Expansion{a[0], cat(a[1], b[0], b[1], b[2], b[3]), a[2], a[3]}, nil
		case actA == Passive && actB != Neutral:
			return Expansion{cat(a[0], b[0], b[1], b[2], b[3]), a[1], a[2], a[3]}, nil
		case neutral:
			return Expansion{cat(a[0], b[0], b[1], b[2], b[3]), a[1], a[2], a[3]}, nil
		default:
			return fail()
		}
	case EncLate:
		// passive/*: [a1][a2][a3][b1 b2 b3 b4 a4]
		if (actA == Passive && actB != Neutral) || neutral {
			return Expansion{a[0], a[1], a[2], cat(b[0], b[1], b[2], b[3], a[3])}, nil
		}
		return fail()
	case EncMiddle:
		// [a1 b1][b2 a2][a3 b3][b4 a4]
		if actA == Active && actB == Passive {
			return fail()
		}
		return Expansion{cat(a[0], b[0]), cat(b[1], a[1]), cat(a[2], b[2]), cat(b[3], a[3])}, nil
	case Seq:
		// [a1 a2 a3 a4 b1][b2][b3][b4]
		if actA == Active && actB == Passive {
			return fail()
		}
		return Expansion{cat(a[0], a[1], a[2], a[3], b[0]), b[1], b[2], b[3]}, nil
	case SeqOv:
		// active/active only: [a1 a2][b1 b2][a3 a4][b3 b4]
		if actA == Active && actB == Active {
			return Expansion{cat(a[0], a[1]), cat(b[0], b[1]), cat(a[2], a[3]), cat(b[2], b[3])}, nil
		}
		return fail()
	case Mutex:
		// passive/passive only: [(choice a b)][][][]
		if actA == Passive && actB == Passive {
			return Expansion{Event{Choice{Branches: [][]Item{a.Flatten(), b.Flatten()}}}, nil, nil, nil}, nil
		}
		return fail()
	}
	return Expansion{}, fmt.Errorf("ch: unknown operator %v", o.Kind)
}

// muxBranch builds the implicit-first-argument expansion of one mux arm
// and combines it with the arm's expression under the arm's operator.
func muxBranch(pseudo Expansion, pseudoAct Activity, arm MuxArm, ctx *expandCtx) ([]Item, error) {
	argExp, err := expand(arm.Arg, ctx)
	if err != nil {
		return nil, err
	}
	// Combine pseudo (first argument) with arg (second) per Table 2.
	op := &Op{Kind: arm.Op,
		A: &Chan{Kind: Verb, Act: pseudoAct, Ev: pseudo},
		B: &Chan{Kind: Verb, Act: arm.Arg.Activity(), Ev: argExp},
	}
	comb, err := expandOp(op, ctx)
	if err != nil {
		return nil, err
	}
	return comb.Flatten(), nil
}

// expandMuxAck: the channel is always active. The request rises outside
// the choice; each branch begins with the distinguishing acknowledge
// input, encloses the arm's behavior per the arm operator, and finishes
// the handshake (request falls, acknowledge falls).
//
// Per-branch implicit events: [][(i name_a<i> +)][(o name_r -)][(i name_a<i> -)].
func expandMuxAck(m *MuxAck, ctx *expandCtx) (Expansion, error) {
	req := m.Name + "_r"
	branches := make([][]Item, len(m.Arms))
	for i, arm := range m.Arms {
		ack := fmt.Sprintf("%s_a%d", m.Name, i+1)
		pseudo := Expansion{
			nil,
			Event{Trans{ack, In, true}},
			Event{Trans{req, Out, false}},
			Event{Trans{ack, In, false}},
		}
		b, err := muxBranch(pseudo, Active, arm, ctx)
		if err != nil {
			return Expansion{}, fmt.Errorf("ch: mux-ack %s arm %d: %w", m.Name, i+1, err)
		}
		branches[i] = b
	}
	ev := Event{Trans{req, Out, true}, Choice{Branches: branches}}
	return Expansion{ev, nil, nil, nil}, nil
}

// expandMuxReq: the channel is always passive. Each branch begins with
// the distinguishing request input and completes a full handshake on
// its request wire and the shared acknowledge, enclosing the arm's
// behavior per the arm operator.
//
// Per-branch implicit events: [(i name_r<i> +)][(o name_a +)][(i name_r<i> -)][(o name_a -)].
func expandMuxReq(m *MuxReq, ctx *expandCtx) (Expansion, error) {
	ack := m.Name + "_a"
	branches := make([][]Item, len(m.Arms))
	for i, arm := range m.Arms {
		req := fmt.Sprintf("%s_r%d", m.Name, i+1)
		pseudo := Expansion{
			Event{Trans{req, In, true}},
			Event{Trans{ack, Out, true}},
			Event{Trans{req, In, false}},
			Event{Trans{ack, Out, false}},
		}
		b, err := muxBranch(pseudo, Passive, arm, ctx)
		if err != nil {
			return Expansion{}, fmt.Errorf("ch: mux-req %s arm %d: %w", m.Name, i+1, err)
		}
		branches[i] = b
	}
	return Expansion{Event{Choice{Branches: branches}}, nil, nil, nil}, nil
}

package ch

import (
	"fmt"
	"strings"

	"balsabm/internal/sexp"
)

// ParseError reports a malformed CH form with its source position. It
// is the one position-carrying error type shared by the parser and the
// static analyzer (internal/analysis), which folds parse errors into
// its diagnostic stream.
type ParseError struct {
	Pos Pos
	Msg string
}

func (e *ParseError) Error() string {
	if !e.Pos.IsValid() {
		return "ch: " + e.Msg
	}
	return fmt.Sprintf("ch: %d:%d: %s", e.Pos.Line, e.Pos.Col, e.Msg)
}

// parseErrorf builds a ParseError at the given node's position.
func parseErrorf(n sexp.Node, format string, args ...any) *ParseError {
	return &ParseError{Pos: nodePos(n), Msg: fmt.Sprintf(format, args...)}
}

// nodePos extracts the source position of an s-expression node.
func nodePos(n sexp.Node) Pos {
	switch x := n.(type) {
	case sexp.Atom:
		return Pos{Line: x.Line, Col: x.Col}
	case sexp.List:
		return Pos{Line: x.Line, Col: x.Col}
	}
	return Pos{}
}

// Parse reads a CH expression from its s-expression concrete syntax:
//
//	(p-to-p activity name)
//	(mult-req activity name n)        ; 1 request wire, n acknowledge wires
//	(mult-ack activity name n)        ; n request wires, 1 acknowledge wire
//	(mux-ack name (op expr) ...)      ; always active
//	(mux-req name (op expr) ...)      ; always passive
//	(verb ((i sig +) ...) () () ())   ; four explicit events
//	void | (void)
//	(rep expr)
//	(break)
//	(enc-early|enc-middle|enc-late|seq|seq-ov expr expr expr...)
//	(mutex expr expr expr...)
//
// Underscore spellings (mux_ack, seq_ov, ...) are accepted as in the
// paper. seq and mutex with more than two arguments desugar into
// right-nested binary applications.
//
// Every parsed node records its Line:Col source position (see Pos), so
// downstream diagnostics point at real source.
func Parse(src string) (Expr, error) {
	n, err := sexp.Parse(src)
	if err != nil {
		return nil, err
	}
	return FromSexp(n)
}

// ParseProgram reads a named CH program: (program name expr).
func ParseProgram(src string) (*Program, error) {
	n, err := sexp.Parse(src)
	if err != nil {
		return nil, err
	}
	return ProgramFromSexp(n)
}

// ProgramFromSexp converts a parsed (program name expr) form into a CH
// program, preserving the node's source positions. It is the building
// block of core.ParseNetlist, which parses a whole netlist in one
// scanner pass so component positions stay absolute within the file.
func ProgramFromSexp(n sexp.Node) (*Program, error) {
	l, ok := n.(sexp.List)
	if !ok || l.Head() != "program" || l.Len() != 3 {
		return nil, parseErrorf(n, "expected (program name expr)")
	}
	name, ok := l.Items[1].(sexp.Atom)
	if !ok {
		return nil, parseErrorf(l.Items[1], "program name must be an atom")
	}
	body, err := FromSexp(l.Items[2])
	if err != nil {
		return nil, err
	}
	return &Program{Name: name.Text, Body: body, Pos: nodePos(n)}, nil
}

func canon(s string) string { return strings.ReplaceAll(s, "_", "-") }

var opKinds = map[string]OpKind{
	"enc-early":  EncEarly,
	"enc-middle": EncMiddle,
	"enc-late":   EncLate,
	"seq":        Seq,
	"seq-ov":     SeqOv,
	"mutex":      Mutex,
}

func parseActivity(n sexp.Node) (Activity, error) {
	a, ok := n.(sexp.Atom)
	if !ok {
		return 0, parseErrorf(n, "expected activity, got %s", n)
	}
	switch a.Text {
	case "passive":
		return Passive, nil
	case "active":
		return Active, nil
	}
	return 0, parseErrorf(n, "unknown activity %q", a.Text)
}

func atomText(n sexp.Node, what string) (string, error) {
	a, ok := n.(sexp.Atom)
	if !ok {
		return "", parseErrorf(n, "expected %s, got %s", what, n)
	}
	return a.Text, nil
}

// FromSexp converts a parsed s-expression into a CH expression.
func FromSexp(n sexp.Node) (Expr, error) {
	if a, ok := n.(sexp.Atom); ok {
		if canon(a.Text) == "void" {
			return &Void{Pos: nodePos(n)}, nil
		}
		return nil, parseErrorf(n, "unexpected atom %q", a.Text)
	}
	l := n.(sexp.List)
	pos := nodePos(n)
	head := canon(l.Head())
	switch head {
	case "void":
		return &Void{Pos: pos}, nil
	case "break":
		return &Break{Pos: pos}, nil
	case "rep":
		if l.Len() != 2 {
			return nil, parseErrorf(n, "rep takes one argument")
		}
		body, err := FromSexp(l.Items[1])
		if err != nil {
			return nil, err
		}
		return &Rep{Body: body, Pos: pos}, nil
	case "p-to-p":
		if l.Len() != 3 {
			return nil, parseErrorf(n, "(p-to-p activity name)")
		}
		act, err := parseActivity(l.Items[1])
		if err != nil {
			return nil, err
		}
		name, err := atomText(l.Items[2], "channel name")
		if err != nil {
			return nil, err
		}
		return &Chan{Kind: PToP, Act: act, Name: name, Pos: pos}, nil
	case "mult-req", "mult-ack":
		if l.Len() != 4 {
			return nil, parseErrorf(n, "(%s activity name n)", head)
		}
		act, err := parseActivity(l.Items[1])
		if err != nil {
			return nil, err
		}
		name, err := atomText(l.Items[2], "channel name")
		if err != nil {
			return nil, err
		}
		na, ok := l.Items[3].(sexp.Atom)
		if !ok {
			return nil, parseErrorf(l.Items[3], "wire count must be an atom")
		}
		count, err := na.Int()
		if err != nil {
			return nil, err
		}
		kind := MultReq
		if head == "mult-ack" {
			kind = MultAck
		}
		return &Chan{Kind: kind, Act: act, Name: name, N: count, Pos: pos}, nil
	case "mux-ack", "mux-req":
		if l.Len() < 3 {
			return nil, parseErrorf(n, "(%s name (op expr)...)", head)
		}
		name, err := atomText(l.Items[1], "channel name")
		if err != nil {
			return nil, err
		}
		arms := make([]MuxArm, 0, l.Len()-2)
		for _, item := range l.Items[2:] {
			al, ok := item.(sexp.List)
			if !ok || al.Len() != 2 {
				return nil, parseErrorf(item, "%s arm must be (op expr), got %s", head, item)
			}
			op, ok := opKinds[canon(al.Head())]
			if !ok {
				return nil, parseErrorf(item, "unknown arm operator %q", al.Head())
			}
			arg, err := FromSexp(al.Items[1])
			if err != nil {
				return nil, err
			}
			arms = append(arms, MuxArm{Op: op, Arg: arg})
		}
		if head == "mux-ack" {
			return &MuxAck{Name: name, Arms: arms, Pos: pos}, nil
		}
		return &MuxReq{Name: name, Arms: arms, Pos: pos}, nil
	case "verb":
		if l.Len() != 5 {
			return nil, parseErrorf(n, "verb takes exactly four event lists")
		}
		var c Chan
		c.Kind = Verb
		c.Act = Neutral
		c.Pos = pos
		for i := 0; i < 4; i++ {
			ev, err := parseEvent(l.Items[i+1])
			if err != nil {
				return nil, err
			}
			c.Ev[i] = ev
		}
		// The activity of a verb channel is given by its first
		// transition (Section 3.1).
		for _, e := range c.Ev {
			for _, it := range e {
				if t, ok := it.(Trans); ok {
					if t.Dir == Out {
						c.Act = Active
					} else {
						c.Act = Passive
					}
					return &c, nil
				}
			}
		}
		return &c, nil
	default:
		op, ok := opKinds[head]
		if !ok {
			return nil, parseErrorf(n, "unknown form %q", l.Head())
		}
		if l.Len() < 3 {
			return nil, parseErrorf(n, "%s needs at least two arguments", head)
		}
		if (op != Seq && op != Mutex) && l.Len() != 3 {
			return nil, parseErrorf(n, "%s takes exactly two arguments", head)
		}
		args := make([]Expr, 0, l.Len()-1)
		for _, item := range l.Items[1:] {
			e, err := FromSexp(item)
			if err != nil {
				return nil, err
			}
			args = append(args, e)
		}
		// (seq c1 c2 c3) = (seq c1 (seq c2 c3)); likewise mutex. Every
		// synthetic binary node keeps the surface form's position.
		expr := args[len(args)-1]
		for i := len(args) - 2; i >= 0; i-- {
			expr = &Op{Kind: op, A: args[i], B: expr, Pos: pos}
		}
		return expr, nil
	}
}

// parseEvent reads one verb event: a list of (i|o signal +|-) triples.
func parseEvent(n sexp.Node) (Event, error) {
	l, ok := n.(sexp.List)
	if !ok {
		return nil, parseErrorf(n, "verb event must be a list, got %s", n)
	}
	ev := make(Event, 0, l.Len())
	for _, item := range l.Items {
		tl, ok := item.(sexp.List)
		if !ok || tl.Len() != 3 {
			return nil, parseErrorf(item, "verb transition must be (i|o signal +|-), got %s", item)
		}
		dirText, err := atomText(tl.Items[0], "direction")
		if err != nil {
			return nil, err
		}
		var dir Dir
		switch dirText {
		case "i":
			dir = In
		case "o":
			dir = Out
		default:
			return nil, parseErrorf(tl.Items[0], "bad direction %q", dirText)
		}
		sig, err := atomText(tl.Items[1], "signal name")
		if err != nil {
			return nil, err
		}
		edge, err := atomText(tl.Items[2], "edge")
		if err != nil {
			return nil, err
		}
		var rise bool
		switch edge {
		case "+":
			rise = true
		case "-":
			rise = false
		default:
			return nil, parseErrorf(tl.Items[2], "bad edge %q", edge)
		}
		ev = append(ev, Trans{Signal: sig, Dir: dir, Rise: rise})
	}
	return ev, nil
}

package ch

import "fmt"

// Legal reports whether Table 1 of the paper permits the given operator
// on arguments of the given activities — the "Burst-Mode aware"
// restrictions that guarantee CH-to-BM translation yields a valid
// Burst-Mode specification.
//
//	Operator    a/a  a/p  p/a  p/p
//	enc-early   yes  no   yes  yes
//	enc-late    no   no   yes  yes
//	enc-middle  yes  no   yes  yes
//	seq         yes  no   yes  yes
//	seq-ov      yes  no   no   no
//	mutex       no   no   no   yes
//
// Neutral arguments (void after hiding, break) contribute no
// transitions; they are accepted wherever at least one orientation of
// the combination is legal, except under mutex, which requires two
// genuine passive external choices.
func Legal(op OpKind, a, b Activity) bool {
	if a == Neutral || b == Neutral {
		if op == Mutex {
			return false
		}
		if a == Neutral && b == Neutral {
			return op != SeqOv
		}
		// Try both concrete orientations for the neutral side.
		if a == Neutral {
			return Legal(op, Passive, b) || Legal(op, Active, b)
		}
		return Legal(op, a, Passive) || Legal(op, a, Active)
	}
	switch op {
	case EncEarly, EncMiddle, Seq:
		return !(a == Active && b == Passive)
	case EncLate:
		return a == Passive
	case SeqOv:
		return a == Active && b == Active
	case Mutex:
		return a == Passive && b == Passive
	}
	return false
}

// ValidationError reports a Burst-Mode aware restriction violation:
// which operator was applied to which argument activities, where in
// the expression tree (Path), and where in the source (Pos; the zero
// Pos for programmatically built expressions).
type ValidationError struct {
	Op   OpKind
	ActA Activity
	ActB Activity
	Path string
	Pos  Pos
}

func (e *ValidationError) Error() string {
	if e.Pos.IsValid() {
		return fmt.Sprintf("ch: %s: %s: illegal combination %s applied to %s/%s arguments (Table 1)",
			e.Pos, e.Path, e.Op, e.ActA, e.ActB)
	}
	return fmt.Sprintf("ch: %s: illegal combination %s applied to %s/%s arguments (Table 1)",
		e.Path, e.Op, e.ActA, e.ActB)
}

// Validate checks the whole expression tree against the Burst-Mode
// aware restrictions (Table 1), including the implicit first arguments
// of mux-ack and mux-req channels, and structural rules (verb channels
// well-formed, break only inside rep).
func Validate(e Expr) error {
	return validate(e, "body", 0)
}

func validate(e Expr, path string, loopDepth int) error {
	switch n := e.(type) {
	case *Chan:
		if n.Kind != Verb && n.Act == Neutral {
			return fmt.Errorf("ch: %s: channel %q must be passive or active", path, n.Name)
		}
		if (n.Kind == MultReq || n.Kind == MultAck) && n.N < 1 {
			return fmt.Errorf("ch: %s: channel %q needs positive wire count, got %d", path, n.Name, n.N)
		}
		return nil
	case *Void:
		return nil
	case *Break:
		if loopDepth == 0 {
			return fmt.Errorf("ch: %s: break outside of rep loop", path)
		}
		return nil
	case *Rep:
		return validate(n.Body, path+"/rep", loopDepth+1)
	case *Op:
		actA, actB := n.A.Activity(), n.B.Activity()
		if !Legal(n.Kind, actA, actB) {
			return &ValidationError{Op: n.Kind, ActA: actA, ActB: actB, Path: path, Pos: n.Pos}
		}
		if err := validate(n.A, fmt.Sprintf("%s/%s[1]", path, n.Kind), loopDepth); err != nil {
			return err
		}
		return validate(n.B, fmt.Sprintf("%s/%s[2]", path, n.Kind), loopDepth)
	case *MuxAck:
		if len(n.Arms) < 1 {
			return fmt.Errorf("ch: %s: mux-ack %q has no arms", path, n.Name)
		}
		for i, arm := range n.Arms {
			// The implicit first argument is the channel's active
			// continuation.
			if !Legal(arm.Op, Active, arm.Arg.Activity()) {
				return &ValidationError{Op: arm.Op, ActA: Active, ActB: arm.Arg.Activity(),
					Path: fmt.Sprintf("%s/mux-ack[%d]", path, i+1), Pos: ExprPos(arm.Arg)}
			}
			if err := validate(arm.Arg, fmt.Sprintf("%s/mux-ack[%d]", path, i+1), loopDepth); err != nil {
				return err
			}
		}
		return nil
	case *MuxReq:
		if len(n.Arms) < 1 {
			return fmt.Errorf("ch: %s: mux-req %q has no arms", path, n.Name)
		}
		for i, arm := range n.Arms {
			if !Legal(arm.Op, Passive, arm.Arg.Activity()) {
				return &ValidationError{Op: arm.Op, ActA: Passive, ActB: arm.Arg.Activity(),
					Path: fmt.Sprintf("%s/mux-req[%d]", path, i+1), Pos: ExprPos(arm.Arg)}
			}
			if err := validate(arm.Arg, fmt.Sprintf("%s/mux-req[%d]", path, i+1), loopDepth); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("ch: %s: unknown expression type %T", path, e)
	}
}

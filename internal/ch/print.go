package ch

import (
	"balsabm/internal/sexp"
)

// ToSexp renders the expression back into its concrete syntax. The
// result parses back (FromSexp) to a structurally identical expression.
func ToSexp(e Expr) sexp.Node {
	switch n := e.(type) {
	case *Void:
		return sexp.Sym("void")
	case *Break:
		return sexp.L(sexp.Sym("break"))
	case *Rep:
		return sexp.L(sexp.Sym("rep"), ToSexp(n.Body))
	case *Chan:
		switch n.Kind {
		case PToP:
			return sexp.L(sexp.Sym("p-to-p"), sexp.Sym(n.Act.String()), sexp.Sym(n.Name))
		case MultReq, MultAck:
			return sexp.L(sexp.Sym(n.Kind.String()), sexp.Sym(n.Act.String()),
				sexp.Sym(n.Name), sexp.Num(n.N))
		case Verb:
			items := []sexp.Node{sexp.Sym("verb")}
			for _, ev := range n.Ev {
				items = append(items, eventToSexp(ev))
			}
			return sexp.List{Items: items}
		}
	case *MuxAck:
		items := []sexp.Node{sexp.Sym("mux-ack"), sexp.Sym(n.Name)}
		for _, arm := range n.Arms {
			items = append(items, sexp.L(sexp.Sym(arm.Op.String()), ToSexp(arm.Arg)))
		}
		return sexp.List{Items: items}
	case *MuxReq:
		items := []sexp.Node{sexp.Sym("mux-req"), sexp.Sym(n.Name)}
		for _, arm := range n.Arms {
			items = append(items, sexp.L(sexp.Sym(arm.Op.String()), ToSexp(arm.Arg)))
		}
		return sexp.List{Items: items}
	case *Op:
		return sexp.L(sexp.Sym(n.Kind.String()), ToSexp(n.A), ToSexp(n.B))
	}
	return sexp.Sym("?")
}

func eventToSexp(ev Event) sexp.Node {
	items := make([]sexp.Node, 0, len(ev))
	for _, it := range ev {
		if t, ok := it.(Trans); ok {
			edge := "-"
			if t.Rise {
				edge = "+"
			}
			items = append(items, sexp.L(sexp.Sym(t.Dir.String()), sexp.Sym(t.Signal), sexp.Sym(edge)))
		}
	}
	return sexp.List{Items: items}
}

// Format renders the expression as indented concrete syntax.
func Format(e Expr) string { return sexp.Pretty(ToSexp(e), 72) }

// FormatProgram renders a named program as (program name expr).
func FormatProgram(p *Program) string {
	return sexp.Pretty(sexp.L(sexp.Sym("program"), sexp.Sym(p.Name), ToSexp(p.Body)), 72)
}

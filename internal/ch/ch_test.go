package ch

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) Expr {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%s): %v", src, err)
	}
	return e
}

func mustExpand(t *testing.T, e Expr) Expansion {
	t.Helper()
	x, err := Expand(e)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	return x
}

// Section 3.1: passive point-to-point channel expansion.
func TestPToPPassiveExpansion(t *testing.T) {
	x := mustExpand(t, mustParse(t, "(p-to-p passive A)"))
	want := "[(i A_r +)][(o A_a +)][(i A_r -)][(o A_a -)]"
	if got := x.String(); got != want {
		t.Fatalf("got %s want %s", got, want)
	}
}

func TestPToPActiveExpansion(t *testing.T) {
	x := mustExpand(t, mustParse(t, "(p-to-p active B)"))
	want := "[(o B_r +)][(i B_a +)][(o B_r -)][(i B_a -)]"
	if got := x.String(); got != want {
		t.Fatalf("got %s want %s", got, want)
	}
}

// Section 3 intro: enc-early of passive A and active B groups the input
// request and the entire handshake on B into a single event.
func TestEncEarlyIntroExample(t *testing.T) {
	x := mustExpand(t, mustParse(t, "(enc-early (p-to-p passive A) (p-to-p active B))"))
	want := "[(i A_r +) (o B_r +) (i B_a +) (o B_r -) (i B_a -)]" +
		"[(o A_a +)][(i A_r -)][(o A_a -)]"
	if got := x.String(); got != want {
		t.Fatalf("got  %s\nwant %s", got, want)
	}
}

// Section 3.1: (mult-req active c 2) example.
func TestMultReqExample(t *testing.T) {
	x := mustExpand(t, mustParse(t, "(mult-req active c 2)"))
	want := "[(o c_r +)][(i c_a1 +) (i c_a2 +)][(o c_r -)][(i c_a1 -) (i c_a2 -)]"
	if got := x.String(); got != want {
		t.Fatalf("got  %s\nwant %s", got, want)
	}
}

func TestMultAckExpansion(t *testing.T) {
	x := mustExpand(t, mustParse(t, "(mult-ack passive m 2)"))
	want := "[(i m_r1 +) (i m_r2 +)][(o m_a +)][(i m_r1 -) (i m_r2 -)][(o m_a -)]"
	if got := x.String(); got != want {
		t.Fatalf("got  %s\nwant %s", got, want)
	}
}

// Table 2, row by row, on concrete channels a (first) and b (second).
func TestTable2Expansions(t *testing.T) {
	cases := []struct {
		op   string
		actA string
		actB string
		want string // expansion with a=[a1][a2][a3][a4], b likewise
	}{
		{"enc-early", "active", "active", "[a1][a2 b1 b2 b3 b4][a3][a4]"},
		{"enc-early", "passive", "active", "[a1 b1 b2 b3 b4][a2][a3][a4]"},
		{"enc-early", "passive", "passive", "[a1 b1 b2 b3 b4][a2][a3][a4]"},
		{"enc-late", "passive", "active", "[a1][a2][a3][b1 b2 b3 b4 a4]"},
		{"enc-late", "passive", "passive", "[a1][a2][a3][b1 b2 b3 b4 a4]"},
		{"enc-middle", "active", "active", "[a1 b1][b2 a2][a3 b3][b4 a4]"},
		{"enc-middle", "passive", "active", "[a1 b1][b2 a2][a3 b3][b4 a4]"},
		{"enc-middle", "passive", "passive", "[a1 b1][b2 a2][a3 b3][b4 a4]"},
		{"seq", "active", "active", "[a1 a2 a3 a4 b1][b2][b3][b4]"},
		{"seq", "passive", "active", "[a1 a2 a3 a4 b1][b2][b3][b4]"},
		{"seq", "passive", "passive", "[a1 a2 a3 a4 b1][b2][b3][b4]"},
		{"seq-ov", "active", "active", "[a1 a2][b1 b2][a3 a4][b3 b4]"},
	}
	for _, c := range cases {
		src := "(" + c.op + " (p-to-p " + c.actA + " a) (p-to-p " + c.actB + " b))"
		x := mustExpand(t, mustParse(t, src))
		got := abstractExpansion(t, x, c.actA, c.actB)
		if got != c.want {
			t.Errorf("%s %s/%s:\n got  %s\n want %s", c.op, c.actA, c.actB, got, c.want)
		}
	}
}

// abstractExpansion maps each concrete transition back to its abstract
// event name (a1..a4 / b1..b4) given the activities of channels a and b.
func abstractExpansion(t *testing.T, x Expansion, actA, actB string) string {
	t.Helper()
	name := func(tr Trans) string {
		chanName := tr.Signal[:1]
		act := actA
		prefix := "a"
		if chanName == "b" {
			act = actB
			prefix = "b"
		}
		isReq := strings.HasSuffix(tr.Signal, "_r")
		var idx int
		if act == "active" {
			// active: r+ a+ r- a-
			switch {
			case isReq && tr.Rise:
				idx = 1
			case !isReq && tr.Rise:
				idx = 2
			case isReq && !tr.Rise:
				idx = 3
			default:
				idx = 4
			}
		} else {
			switch {
			case isReq && tr.Rise:
				idx = 1
			case !isReq && tr.Rise:
				idx = 2
			case isReq && !tr.Rise:
				idx = 3
			default:
				idx = 4
			}
		}
		return prefix + string(rune('0'+idx))
	}
	var sb strings.Builder
	for _, ev := range x {
		sb.WriteByte('[')
		for i, it := range ev {
			tr, ok := it.(Trans)
			if !ok {
				t.Fatalf("unexpected non-transition item %v", it)
			}
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(name(tr))
		}
		sb.WriteByte(']')
	}
	return sb.String()
}

// Table 1: the full legality matrix.
func TestTable1Matrix(t *testing.T) {
	type row struct {
		op   OpKind
		want [4]bool // a/a, a/p, p/a, p/p
	}
	rows := []row{
		{EncEarly, [4]bool{true, false, true, true}},
		{EncLate, [4]bool{false, false, true, true}},
		{EncMiddle, [4]bool{true, false, true, true}},
		{Seq, [4]bool{true, false, true, true}},
		{SeqOv, [4]bool{true, false, false, false}},
		{Mutex, [4]bool{false, false, false, true}},
	}
	combos := [4][2]Activity{{Active, Active}, {Active, Passive}, {Passive, Active}, {Passive, Passive}}
	for _, r := range rows {
		for i, c := range combos {
			if got := Legal(r.op, c[0], c[1]); got != r.want[i] {
				t.Errorf("Legal(%s, %s, %s) = %v, want %v", r.op, c[0], c[1], got, r.want[i])
			}
		}
	}
}

// Legality and expansion must agree: expansion succeeds exactly on the
// legal combinations (for non-neutral arguments).
func TestExpandMatchesLegal(t *testing.T) {
	ops := []OpKind{EncEarly, EncMiddle, EncLate, Seq, SeqOv, Mutex}
	acts := []Activity{Active, Passive}
	for _, op := range ops {
		for _, a := range acts {
			for _, b := range acts {
				e := &Op{Kind: op,
					A: &Chan{Kind: PToP, Act: a, Name: "a"},
					B: &Chan{Kind: PToP, Act: b, Name: "b"}}
				_, err := Expand(e)
				legal := Legal(op, a, b)
				if legal && err != nil {
					t.Errorf("%s %s/%s legal but expansion failed: %v", op, a, b, err)
				}
				if !legal && err == nil {
					t.Errorf("%s %s/%s illegal but expansion succeeded", op, a, b)
				}
			}
		}
	}
}

const sequencerCH = `(rep (enc-early (p-to-p passive P)
                       (seq (p-to-p active A1) (p-to-p active A2))))`

const callCH = `(rep (mutex
                  (enc-early (p-to-p passive A1) (p-to-p active B))
                  (enc-early (p-to-p passive A2) (p-to-p active B))))`

const passivatorCH = `(rep (enc-middle (p-to-p passive A) (p-to-p passive B)))`

// Section 3.4: the three modelling examples must validate and expand.
func TestHandshakeComponentModels(t *testing.T) {
	for _, src := range []string{sequencerCH, callCH, passivatorCH} {
		e := mustParse(t, src)
		if err := Validate(e); err != nil {
			t.Errorf("Validate(%s): %v", src, err)
		}
		mustExpand(t, e)
	}
}

func TestSequencerExpansionShape(t *testing.T) {
	x := mustExpand(t, mustParse(t, sequencerCH))
	items := x.Flatten()
	// [label P_r+ A1_r+ A1_a+ A1_r- A1_a- A2_r+ A2_a+ A2_r- A2_a-
	//  P_a+ P_r- P_a- goto label-end]
	var trs []string
	for _, it := range items {
		if tr, ok := it.(Trans); ok {
			trs = append(trs, tr.String())
		}
	}
	want := []string{
		"(i P_r +)", "(o A1_r +)", "(i A1_a +)", "(o A1_r -)", "(i A1_a -)",
		"(o A2_r +)", "(i A2_a +)", "(o A2_r -)", "(i A2_a -)",
		"(o P_a +)", "(i P_r -)", "(o P_a -)",
	}
	if len(trs) != len(want) {
		t.Fatalf("got %d transitions %v, want %d", len(trs), trs, len(want))
	}
	for i := range want {
		if trs[i] != want[i] {
			t.Errorf("transition %d: got %s want %s", i, trs[i], want[i])
		}
	}
}

func TestCallExpansionHasChoice(t *testing.T) {
	x := mustExpand(t, mustParse(t, callCH))
	found := false
	for _, it := range x.Flatten() {
		if c, ok := it.(Choice); ok {
			found = true
			if len(c.Branches) != 2 {
				t.Fatalf("choice has %d branches, want 2", len(c.Branches))
			}
			// Each branch must start with an input (the call's request).
			for _, b := range c.Branches {
				tr, ok := b[0].(Trans)
				if !ok || tr.Dir != In || !tr.Rise {
					t.Errorf("branch starts with %v, want rising input", b[0])
				}
			}
		}
	}
	if !found {
		t.Fatal("no choice in call expansion")
	}
}

func TestPassivatorExpansion(t *testing.T) {
	x := mustExpand(t, mustParse(t, passivatorCH))
	var trs []string
	for _, it := range x.Flatten() {
		if tr, ok := it.(Trans); ok {
			trs = append(trs, tr.String())
		}
	}
	want := []string{
		"(i A_r +)", "(i B_r +)", "(o B_a +)", "(o A_a +)",
		"(i A_r -)", "(i B_r -)", "(o B_a -)", "(o A_a -)",
	}
	if strings.Join(trs, " ") != strings.Join(want, " ") {
		t.Fatalf("got %v want %v", trs, want)
	}
}

func TestMutexRequiresPassive(t *testing.T) {
	e := mustParse(t, "(mutex (p-to-p active a) (p-to-p passive b))")
	if err := Validate(e); err == nil {
		t.Fatal("expected validation error for mutex with active argument")
	}
	if _, err := Expand(e); err == nil {
		t.Fatal("expected expansion error for mutex with active argument")
	}
}

func TestBreakOutsideLoop(t *testing.T) {
	e := mustParse(t, "(seq (p-to-p passive a) (break))")
	if err := Validate(e); err == nil {
		t.Fatal("expected validation error for break outside rep")
	}
}

func TestBreakInsideLoop(t *testing.T) {
	e := mustParse(t, "(rep (seq (p-to-p passive a) (break)))")
	if err := Validate(e); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	x := mustExpand(t, e)
	hasBGoto := false
	for _, it := range x.Flatten() {
		if _, ok := it.(BGoto); ok {
			hasBGoto = true
		}
	}
	if !hasBGoto {
		t.Fatal("no bgoto in expansion")
	}
}

func TestSeqDesugarsRight(t *testing.T) {
	e := mustParse(t, "(seq (p-to-p active c1) (p-to-p active c2) (p-to-p active c3))")
	op, ok := e.(*Op)
	if !ok || op.Kind != Seq {
		t.Fatalf("got %T", e)
	}
	inner, ok := op.B.(*Op)
	if !ok || inner.Kind != Seq {
		t.Fatalf("second argument is %T, want nested seq", op.B)
	}
}

func TestMutexDesugarsRight(t *testing.T) {
	e := mustParse(t, "(mutex (p-to-p passive c1) (p-to-p passive c2) (p-to-p passive c3))")
	op := e.(*Op)
	if op.Kind != Mutex {
		t.Fatal("not a mutex")
	}
	if inner, ok := op.B.(*Op); !ok || inner.Kind != Mutex {
		t.Fatalf("not right-nested: %T", op.B)
	}
}

func TestMuxReqExpansion(t *testing.T) {
	e := mustParse(t, "(rep (mux-req a (enc-early (p-to-p active x)) (enc-early (p-to-p active y))))")
	x := mustExpand(t, e)
	var choice *Choice
	for _, it := range x.Flatten() {
		if c, ok := it.(Choice); ok {
			choice = &c
		}
	}
	if choice == nil {
		t.Fatal("no choice")
	}
	if len(choice.Branches) != 2 {
		t.Fatalf("%d branches", len(choice.Branches))
	}
	// Branch 1: a_r1+ x_r+ x_a+ x_r- x_a- a_a+ a_r1- a_a-
	var got []string
	for _, it := range choice.Branches[0] {
		if tr, ok := it.(Trans); ok {
			got = append(got, tr.String())
		}
	}
	want := []string{"(i a_r1 +)", "(o x_r +)", "(i x_a +)", "(o x_r -)", "(i x_a -)",
		"(o a_a +)", "(i a_r1 -)", "(o a_a -)"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("branch 1:\n got  %v\n want %v", got, want)
	}
}

func TestMuxAckExpansion(t *testing.T) {
	e := mustParse(t, "(mux-ack a (enc-early (p-to-p active x)) (enc-early (p-to-p active y)))")
	x := mustExpand(t, e)
	items := x.Flatten()
	// First item: the rising output request.
	tr, ok := items[0].(Trans)
	if !ok || tr.String() != "(o a_r +)" {
		t.Fatalf("first item %v", items[0])
	}
	c, ok := items[1].(Choice)
	if !ok {
		t.Fatalf("second item %T", items[1])
	}
	// Branch i must start with the distinguishing acknowledge input.
	b0 := c.Branches[0][0].(Trans)
	if b0.String() != "(i a_a1 +)" {
		t.Fatalf("branch 1 starts with %v", b0)
	}
	// And must contain the request's falling edge as an output.
	found := false
	for _, it := range c.Branches[0] {
		if tr, ok := it.(Trans); ok && tr.Signal == "a_r" && tr.Dir == Out && !tr.Rise {
			found = true
		}
	}
	if !found {
		t.Fatal("branch 1 missing (o a_r -)")
	}
}

func TestVerbChannel(t *testing.T) {
	e := mustParse(t, "(verb ((i x +)) ((o y +)) ((i x -)) ((o y -)))")
	c := e.(*Chan)
	if c.Act != Passive {
		t.Fatalf("activity %v, want passive (first transition is an input)", c.Act)
	}
	x := mustExpand(t, e)
	if x.String() != "[(i x +)][(o y +)][(i x -)][(o y -)]" {
		t.Fatalf("got %s", x)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"(p-to-p active)",
		"(p-to-p sideways a)",
		"(mult-req active c)",
		"(mult-req active c x)",
		"(rep)",
		"(enc-early (p-to-p active a))",
		"(unknown-op (p-to-p active a) (p-to-p active b))",
		"(mux-ack)",
		"(mux-ack a bad-arm)",
		"(verb ((i x +)))",
		"(verb ((x +)) () () ())",
		"atom",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%s): expected error", src)
		}
	}
}

func TestPorts(t *testing.T) {
	e := mustParse(t, sequencerCH)
	ports, err := Ports(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(ports) != 3 {
		t.Fatalf("got %d ports: %+v", len(ports), ports)
	}
	if ports[0].Name != "A1" || ports[0].Act != Active {
		t.Fatalf("port 0: %+v", ports[0])
	}
	if ports[2].Name != "P" || ports[2].Act != Passive {
		t.Fatalf("port 2: %+v", ports[2])
	}
}

func TestPortsMergesDuplicates(t *testing.T) {
	// The split call fragments replicate the same active channel name.
	e := mustParse(t, "(seq (p-to-p active c) (p-to-p active c))")
	ports, err := Ports(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(ports) != 1 || ports[0].Name != "c" {
		t.Fatalf("%+v", ports)
	}
}

func TestPortsConflict(t *testing.T) {
	e := mustParse(t, "(seq (p-to-p passive c) (p-to-p active c))")
	if _, err := Ports(e); err == nil {
		t.Fatal("expected conflict error")
	}
}

func TestPortSignals(t *testing.T) {
	p := Port{Name: "c", Kind: PToP, Act: Active}
	sigs := p.Signals()
	if len(sigs) != 2 || sigs[0].Signal != "c_r" || sigs[0].Dir != Out || sigs[1].Dir != In {
		t.Fatalf("%+v", sigs)
	}
	m := Port{Name: "m", Kind: MultReq, Act: Passive, N: 2}
	sigs = m.Signals()
	if len(sigs) != 3 || sigs[0].Dir != In || sigs[1].Signal != "m_a1" || sigs[1].Dir != Out {
		t.Fatalf("%+v", sigs)
	}
}

func TestReplacePToP(t *testing.T) {
	e := mustParse(t, sequencerCH)
	out, n := ReplacePToP(e, "A2", &Void{})
	if n != 1 {
		t.Fatalf("replaced %d", n)
	}
	if CountPToP(out, "A2") != 0 {
		t.Fatal("A2 still present")
	}
	if CountPToP(e, "A2") != 1 {
		t.Fatal("original mutated")
	}
}

func TestRenameChannel(t *testing.T) {
	e := mustParse(t, callCH)
	out := RenameChannel(e, "B", "Z")
	if CountPToP(out, "B") != 0 || CountPToP(out, "Z") != 2 {
		t.Fatalf("rename failed: %s", Format(out))
	}
}

func TestCloneIndependence(t *testing.T) {
	e := mustParse(t, callCH)
	c := e.Clone()
	Walk(c, func(x Expr) {
		if ch, ok := x.(*Chan); ok {
			ch.Name = "mutated"
		}
	})
	if CountPToP(e, "B") != 2 {
		t.Fatal("clone shares nodes with original")
	}
}

func TestFormatRoundTrip(t *testing.T) {
	for _, src := range []string{sequencerCH, callCH, passivatorCH,
		"(mux-req a (enc-early (p-to-p active x)) (seq (p-to-p active y)))",
		"(rep (seq (mult-req active m 3) (break)))",
		"(verb ((i x +)) ((o y +)) ((i x -)) ((o y -)))",
	} {
		e := mustParse(t, src)
		text := Format(e)
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("re-parse failed: %v\n%s", err, text)
		}
		if Format(back) != text {
			t.Fatalf("round trip mismatch:\n%s\n%s", text, Format(back))
		}
	}
}

func TestProgramParseFormat(t *testing.T) {
	p, err := ParseProgram("(program seq2 " + sequencerCH + ")")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "seq2" {
		t.Fatalf("name %q", p.Name)
	}
	text := FormatProgram(p)
	back, err := ParseProgram(text)
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	if back.Name != p.Name || Format(back.Body) != Format(p.Body) {
		t.Fatal("program round trip mismatch")
	}
}

func TestActivityRules(t *testing.T) {
	cases := []struct {
		src  string
		want Activity
	}{
		{"(p-to-p passive a)", Passive},
		{"(p-to-p active a)", Active},
		{"void", Neutral},
		{sequencerCH, Passive},
		{"(enc-early void (seq (p-to-p active c1) (p-to-p active c2)))", Active},
		{"(mutex (p-to-p passive a) (p-to-p passive b))", Passive},
		{"(seq-ov (p-to-p active a) (p-to-p active b))", Active},
		{"(mux-ack a (enc-early (p-to-p active x)))", Active},
		{"(mux-req a (enc-early (p-to-p active x)))", Passive},
	}
	for _, c := range cases {
		e := mustParse(t, c.src)
		if got := e.Activity(); got != c.want {
			t.Errorf("Activity(%s) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestRepLabelsUnique(t *testing.T) {
	e := mustParse(t, "(seq (rep (seq (p-to-p passive a) (break))) (rep (seq (p-to-p passive b) (break))))")
	// Two loops in one program need distinct labels.
	x, err := Expand(e)
	if err != nil {
		t.Fatal(err)
	}
	labels := map[string]int{}
	for _, it := range x.Flatten() {
		if l, ok := it.(Label); ok {
			labels[l.Name]++
		}
	}
	for name, n := range labels {
		if n != 1 {
			t.Errorf("label %s appears %d times", name, n)
		}
	}
	if len(labels) != 4 {
		t.Errorf("got %d labels, want 4 (start+end per loop): %v", len(labels), labels)
	}
}

func TestTransInverse(t *testing.T) {
	tr := Trans{Signal: "x", Dir: In, Rise: true}
	if inv := tr.Inverse(); inv.Rise || inv.Signal != "x" {
		t.Fatalf("inverse %v", inv)
	}
}

func TestItemStrings(t *testing.T) {
	items := []Item{
		Label{Name: "L"},
		Goto{Name: "L"},
		BGoto{Name: "E"},
		Choice{Branches: [][]Item{{Trans{Signal: "a", Dir: In, Rise: true}}}},
	}
	wants := []string{"(label L)", "(goto L)", "(bgoto E)", "(choice ((i a +)))"}
	for i, it := range items {
		if it.String() != wants[i] {
			t.Errorf("got %q want %q", it.String(), wants[i])
		}
	}
}

func TestMuxClone(t *testing.T) {
	m := mustParse(t, "(mux-ack a (enc-early (p-to-p active x)))").(*MuxAck)
	c := m.Clone().(*MuxAck)
	c.Arms[0].Arg.(*Chan).Name = "mutated"
	if m.Arms[0].Arg.(*Chan).Name != "x" {
		t.Fatal("mux clone shares arms")
	}
	r := mustParse(t, "(mux-req a (enc-early (p-to-p active x)))").(*MuxReq)
	rc := r.Clone().(*MuxReq)
	rc.Arms[0].Arg.(*Chan).Name = "mutated"
	if r.Arms[0].Arg.(*Chan).Name != "x" {
		t.Fatal("mux-req clone shares arms")
	}
}

func TestErrorStrings(t *testing.T) {
	e := &ExpandError{Op: Mutex, ActA: Active, ActB: Passive}
	if !strings.Contains(e.Error(), "mutex") {
		t.Fatalf("%v", e)
	}
	v := &ValidationError{Op: SeqOv, ActA: Passive, ActB: Passive, Path: "body"}
	if !strings.Contains(v.Error(), "Table 1") {
		t.Fatalf("%v", v)
	}
}

package ch

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// CanonicalForm identifies a CH program up to channel renaming, for the
// flow's synthesis cache. Two programs receive the same Key exactly
// when (a) their bodies are structurally identical after α-renaming
// channels to positional names in first-appearance order, and (b) the
// lexicographic order of their wire names agrees with that positional
// order in the same way. Condition (b) matters because the synthesis
// pipeline (chtobm sorts inputs/outputs; minimalist orders variables;
// techmap follows that order) depends on names only through their sort
// order: when both conditions hold, the synthesized/mapped netlists of
// the two programs are exact isomorphisms under wire renaming — same
// states, products, cells, area and critical path — so a cached result
// can be reused verbatim after renaming its wires.
type CanonicalForm struct {
	// Key is the cache key: canonical body text plus wire-order tag.
	Key string
	// Channels lists the program's channel names in first-appearance
	// (canonical) order.
	Channels []string
	// Wires lists the program's wire names in canonical channel order
	// (each channel contributing its Signals in declaration order).
	// Position i corresponds across all programs sharing the same Key,
	// which is what the cache's rename pass maps over.
	Wires []string
}

// Canonicalize computes the canonical form of an expression. It returns
// ok=false for expressions the α-renaming cannot safely cover: verb
// channels (their transitions name raw wires, not channels) and
// expressions whose port set is inconsistent.
func Canonicalize(e Expr) (*CanonicalForm, bool) {
	hasVerb := false
	var order []string
	seen := map[string]int{}
	note := func(name string) {
		if _, ok := seen[name]; !ok {
			seen[name] = len(order)
			order = append(order, name)
		}
	}
	Walk(e, func(x Expr) {
		switch n := x.(type) {
		case *Chan:
			if n.Kind == Verb {
				hasVerb = true
				return
			}
			note(n.Name)
		case *MuxAck:
			note(n.Name)
		case *MuxReq:
			note(n.Name)
		}
	})
	if hasVerb {
		return nil, false
	}
	ports, err := Ports(e)
	if err != nil {
		return nil, false
	}
	byName := make(map[string]Port, len(ports))
	for _, p := range ports {
		byName[p.Name] = p
	}

	// α-rename every channel to its positional name, in one simultaneous
	// pass (sequential renames could collide with channels that are
	// literally named c0, c1, ...).
	canonical := make(map[string]string, len(order))
	for i, name := range order {
		canonical[name] = fmt.Sprintf("c%d", i)
	}
	renamed := e.Clone()
	Walk(renamed, func(x Expr) {
		switch n := x.(type) {
		case *Chan:
			if n.Kind != Verb {
				n.Name = canonical[n.Name]
			}
		case *MuxAck:
			n.Name = canonical[n.Name]
		case *MuxReq:
			n.Name = canonical[n.Name]
		}
	})

	// Wire list in canonical order, and the permutation induced by
	// sorting the actual wire names.
	var wires []string
	for _, name := range order {
		p, ok := byName[name]
		if !ok {
			return nil, false
		}
		for _, s := range p.Signals() {
			wires = append(wires, s.Signal)
		}
	}
	perm := make([]int, len(wires))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(i, j int) bool { return wires[perm[i]] < wires[perm[j]] })
	var tag strings.Builder
	for i, p := range perm {
		if i > 0 {
			tag.WriteByte(',')
		}
		fmt.Fprintf(&tag, "%d", p)
	}

	return &CanonicalForm{
		Key:      ToSexp(renamed).String() + "\n#order " + tag.String(),
		Channels: order,
		Wires:    wires,
	}, true
}

// CanonicalizeProgram is Canonicalize over a program's body.
func CanonicalizeProgram(p *Program) (*CanonicalForm, bool) {
	return Canonicalize(p.Body)
}

// Digest returns the sha256 hex digest of the canonical Key — the
// controller-grain identity used by the incremental resynthesis
// planner and the durable controller artifact store. Two programs
// share a Digest exactly when they share a Key, i.e. when their
// synthesized netlists are exact wire-renames of each other.
func (c *CanonicalForm) Digest() string {
	h := sha256.Sum256([]byte(c.Key))
	return hex.EncodeToString(h[:])
}

// ProgramDigest is the canonical subtree digest of a program's body
// (ok=false when the α-renaming cannot cover it, see Canonicalize).
func ProgramDigest(p *Program) (string, bool) {
	c, ok := CanonicalizeProgram(p)
	if !ok {
		return "", false
	}
	return c.Digest(), true
}

// WireRenames builds the exact-match net substitution that maps the
// wires of a cached canonical form onto this one's. Both forms must
// share the same Key; names that already agree are omitted.
func (c *CanonicalForm) WireRenames(from *CanonicalForm) map[string]string {
	sub := make(map[string]string)
	for i, w := range from.Wires {
		if i < len(c.Wires) && w != c.Wires[i] {
			sub[w] = c.Wires[i]
		}
	}
	return sub
}

// Package ch implements the CH control specification language of
// Chelcea et al., "A Burst-Mode Oriented Back-End for the Balsa
// Synthesis System" (DATE 2002), Section 3.
//
// CH is an intermediate-level, channel-based language for describing a
// single asynchronous controller. A program is an expression tree built
// from channel declarations and operators. Every expression has an
// "activity" (passive, active, or neutral) and a four-phase handshake
// expansion consisting of exactly four events, where an event is a
// sequence of signal transitions plus control keywords (labels, gotos
// and external-input choice).
//
// The expansions follow Table 2 of the paper; the "Burst-Mode aware"
// restrictions of Table 1 are implemented in legal.go.
package ch

import "fmt"

// Pos is a source position in CH concrete syntax: 1-based line and
// column of the node's opening token. The zero Pos marks nodes built
// programmatically (clustering rewrites, tests) rather than parsed.
type Pos struct {
	Line, Col int
}

// IsValid reports whether the position came from real source.
func (p Pos) IsValid() bool { return p.Line > 0 }

func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Fragment implements diag.Loc: source positions attach tightly to the
// file prefix ("file.ch:3:5:"); invalid positions render nothing.
func (p Pos) Fragment() (string, bool) {
	if !p.IsValid() {
		return "", true
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col), true
}

// Key implements diag.Loc: diagnostics sort by line, then column.
func (p Pos) Key() (int, int) { return p.Line, p.Col }

// ExprPos returns the source position of an expression node (the zero
// Pos for programmatically built nodes).
func ExprPos(e Expr) Pos {
	switch n := e.(type) {
	case *Chan:
		return n.Pos
	case *Void:
		return n.Pos
	case *Break:
		return n.Pos
	case *Rep:
		return n.Pos
	case *Op:
		return n.Pos
	case *MuxAck:
		return n.Pos
	case *MuxReq:
		return n.Pos
	}
	return Pos{}
}

// Activity is the handshake activity of a channel or expression.
// Passive expressions wait for an input request; active expressions
// initiate with an output request. Neutral is used for void channels
// and break, which contribute no transitions of their own.
type Activity int

const (
	Passive Activity = iota
	Active
	Neutral
)

func (a Activity) String() string {
	switch a {
	case Passive:
		return "passive"
	case Active:
		return "active"
	case Neutral:
		return "neutral"
	}
	return fmt.Sprintf("Activity(%d)", int(a))
}

// Dir is the direction of a signal transition as seen by the controller.
type Dir int

const (
	In Dir = iota
	Out
)

func (d Dir) String() string {
	if d == In {
		return "i"
	}
	return "o"
}

// Trans is a single signal transition: the terminal symbol of a
// four-phase expansion, e.g. "(o a_r +)".
type Trans struct {
	Signal string
	Dir    Dir
	Rise   bool
}

func (t Trans) String() string {
	edge := "-"
	if t.Rise {
		edge = "+"
	}
	return fmt.Sprintf("(%s %s %s)", t.Dir, t.Signal, edge)
}

// Inverse returns the same transition with the opposite edge.
func (t Trans) Inverse() Trans { t.Rise = !t.Rise; return t }

// Item is one element of an expansion event: a transition, a control
// keyword inserted by the expansion algorithm (label, goto, bgoto), or
// an external-input choice between alternative item sequences.
type Item interface {
	isItem()
	String() string
}

func (Trans) isItem() {}

// Label marks a control-flow join point generated for rep loops.
type Label struct{ Name string }

func (l Label) isItem()        {}
func (l Label) String() string { return fmt.Sprintf("(label %s)", l.Name) }

// Goto transfers control back to a label (loop repetition).
type Goto struct{ Name string }

func (g Goto) isItem()        {}
func (g Goto) String() string { return fmt.Sprintf("(goto %s)", g.Name) }

// BGoto transfers control out of the innermost loop (break). It is
// handled differently from Goto by the Burst-Mode builder: its target
// label follows the loop rather than starting it.
type BGoto struct{ Name string }

func (b BGoto) isItem()        {}
func (b BGoto) String() string { return fmt.Sprintf("(bgoto %s)", b.Name) }

// Choice is a mutually-exclusive external input choice between
// alternative sequences. The first transition of every branch must be
// an input; the environment resolves the choice.
type Choice struct{ Branches [][]Item }

func (c Choice) isItem() {}

func (c Choice) String() string {
	s := "(choice"
	for _, b := range c.Branches {
		s += " ("
		for i, it := range b {
			if i > 0 {
				s += " "
			}
			s += it.String()
		}
		s += ")"
	}
	return s + ")"
}

// Event is one of the four atomic events of a four-phase expansion.
type Event []Item

func (e Event) String() string {
	s := "["
	for i, it := range e {
		if i > 0 {
			s += " "
		}
		s += it.String()
	}
	return s + "]"
}

// Expansion is a four-phase handshake expansion: exactly four events,
// any of which may be empty.
type Expansion [4]Event

func (x Expansion) String() string {
	return x[0].String() + x[1].String() + x[2].String() + x[3].String()
}

// Flatten concatenates the four events into one linear item sequence:
// the "intermediate form" of Section 3.6.
func (x Expansion) Flatten() []Item {
	n := 0
	for _, e := range x {
		n += len(e)
	}
	out := make([]Item, 0, n)
	for _, e := range x {
		out = append(out, e...)
	}
	return out
}

// OpKind identifies one of the six interleaving operators (Section 3.3).
type OpKind int

const (
	EncEarly OpKind = iota
	EncMiddle
	EncLate
	Seq
	SeqOv
	Mutex
)

var opNames = [...]string{"enc-early", "enc-middle", "enc-late", "seq", "seq-ov", "mutex"}

func (k OpKind) String() string {
	if int(k) < len(opNames) {
		return opNames[k]
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// ChanKind identifies the channel declaration forms (Section 3.1).
//
// Note on naming: the paper's bullet headings for mult-ack and mult-req
// are swapped relative to the syntax keywords they introduce (the
// "mult-ack" bullet gives the syntax "(mult-req activity name n)" and
// vice versa). We follow the syntax keywords and the worked example:
// (mult-req active c 2) expands with ONE request wire and n acknowledge
// wires; mult-ack has n request wires and one acknowledge wire.
type ChanKind int

const (
	PToP    ChanKind = iota // two wires: request + acknowledge
	MultReq                 // one request wire, N acknowledge wires
	MultAck                 // N request wires, one acknowledge wire
	Verb                    // fully user-specified events
)

func (k ChanKind) String() string {
	switch k {
	case PToP:
		return "p-to-p"
	case MultReq:
		return "mult-req"
	case MultAck:
		return "mult-ack"
	case Verb:
		return "verb"
	}
	return fmt.Sprintf("ChanKind(%d)", int(k))
}

// Expr is a CH expression: a channel declaration or an operator
// application.
type Expr interface {
	// Activity reports the expression's handshake activity.
	Activity() Activity
	// Clone returns a deep copy of the expression.
	Clone() Expr
	isExpr()
}

// Chan is a channel declaration (p-to-p, mult-req, mult-ack or verb).
type Chan struct {
	Kind ChanKind
	Act  Activity
	Name string
	N    int      // wire multiplicity for MultReq/MultAck
	Ev   [4]Event // Verb only: the user-specified events
	Pos  Pos
}

func (c *Chan) isExpr()            {}
func (c *Chan) Activity() Activity { return c.Act }

// Clone returns a deep copy.
func (c *Chan) Clone() Expr {
	d := *c
	for i, e := range c.Ev {
		d.Ev[i] = append(Event(nil), e...)
	}
	return &d
}

// Void is the void channel: all four events are empty and the activity
// is neutral. Void channels appear only during optimization, standing
// in for a hidden activation channel.
type Void struct{ Pos Pos }

func (Void) isExpr()            {}
func (Void) Activity() Activity { return Neutral }

// Clone returns a deep copy.
func (v *Void) Clone() Expr { return &Void{Pos: v.Pos} }

// MuxArm is one alternative of a mux-ack or mux-req channel: an
// interleaving operator applied to the channel's per-branch events
// (implicit first argument) and the arm's expression (second argument).
type MuxArm struct {
	Op  OpKind
	Arg Expr
}

// MuxAck is a mux-ack channel (always active): one request wire, N
// acknowledge wires; the environment acknowledges on exactly one wire,
// selecting which arm executes.
//
// Note: the paper's printed expansion for mux_ack swaps the i/o marks
// on the channel's own wires (it shows the acknowledge as an output and
// the request's falling edge as an input). Since the channel is active,
// requests must be outputs and acknowledges inputs — which is also what
// the choice semantics require (an external choice must be resolved by
// an input). We implement the protocol-consistent directions.
type MuxAck struct {
	Name string
	Arms []MuxArm
	Pos  Pos
}

func (m *MuxAck) isExpr()            {}
func (m *MuxAck) Activity() Activity { return Active }

// Clone returns a deep copy.
func (m *MuxAck) Clone() Expr {
	d := &MuxAck{Name: m.Name, Arms: make([]MuxArm, len(m.Arms)), Pos: m.Pos}
	for i, a := range m.Arms {
		d.Arms[i] = MuxArm{Op: a.Op, Arg: a.Arg.Clone()}
	}
	return d
}

// MuxReq is a mux-req channel (always passive): N request wires, one
// acknowledge wire; the environment requests on exactly one wire,
// selecting which arm executes.
type MuxReq struct {
	Name string
	Arms []MuxArm
	Pos  Pos
}

func (m *MuxReq) isExpr()            {}
func (m *MuxReq) Activity() Activity { return Passive }

// Clone returns a deep copy.
func (m *MuxReq) Clone() Expr {
	d := &MuxReq{Name: m.Name, Arms: make([]MuxArm, len(m.Arms)), Pos: m.Pos}
	for i, a := range m.Arms {
		d.Arms[i] = MuxArm{Op: a.Op, Arg: a.Arg.Clone()}
	}
	return d
}

// Rep repeats its body forever (unless interrupted by Break). Its
// expansion is degenerate: one non-empty event followed by three empty
// ones.
type Rep struct {
	Body Expr
	Pos  Pos
}

func (r *Rep) isExpr()            {}
func (r *Rep) Activity() Activity { return r.Body.Activity() }

// Clone returns a deep copy.
func (r *Rep) Clone() Expr { return &Rep{Body: r.Body.Clone(), Pos: r.Pos} }

// Break ends the innermost loop. Neither passive nor active.
type Break struct{ Pos Pos }

func (Break) isExpr()            {}
func (Break) Activity() Activity { return Neutral }

// Clone returns a deep copy.
func (b *Break) Clone() Expr { return &Break{Pos: b.Pos} }

// Op is an interleaving operator applied to two arguments.
type Op struct {
	Kind OpKind
	A, B Expr
	Pos  Pos
}

func (o *Op) isExpr() {}

// Activity implements the activity rules of Section 3.3: enclosures and
// sequencing take the first argument's activity; seq-ov is active;
// mutex is passive. A neutral first argument (void, after hiding)
// delegates to the second argument, since the compound's first
// transition then comes from it.
func (o *Op) Activity() Activity {
	switch o.Kind {
	case Mutex:
		return Passive
	case SeqOv:
		return Active
	default:
		if a := o.A.Activity(); a != Neutral {
			return a
		}
		return o.B.Activity()
	}
}

// Clone returns a deep copy.
func (o *Op) Clone() Expr { return &Op{Kind: o.Kind, A: o.A.Clone(), B: o.B.Clone(), Pos: o.Pos} }

// Program is a named CH program: the full behavior of one controller.
type Program struct {
	Name string
	Body Expr
	Pos  Pos
}

// Clone returns a deep copy of the program.
func (p *Program) Clone() *Program { return &Program{Name: p.Name, Body: p.Body.Clone(), Pos: p.Pos} }

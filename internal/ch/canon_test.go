package ch

import "testing"

func mustParseCanon(t *testing.T, src string) Expr {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// Structurally identical sequencers with systematically renamed
// channels must share a canonical key; the wire lists line up
// positionally.
func TestCanonicalizeAlphaEquivalence(t *testing.T) {
	a := mustParseCanon(t, `(rep (enc-early (p-to-p passive P) (seq (p-to-p active A1) (p-to-p active A2))))`)
	b := mustParseCanon(t, `(rep (enc-early (p-to-p passive Q) (seq (p-to-p active B1) (p-to-p active B2))))`)
	ca, ok := Canonicalize(a)
	if !ok {
		t.Fatal("a not canonicalizable")
	}
	cb, ok := Canonicalize(b)
	if !ok {
		t.Fatal("b not canonicalizable")
	}
	if ca.Key != cb.Key {
		t.Fatalf("keys differ:\n%s\nvs\n%s", ca.Key, cb.Key)
	}
	if len(ca.Wires) != len(cb.Wires) {
		t.Fatalf("wire counts differ: %v vs %v", ca.Wires, cb.Wires)
	}
	sub := cb.WireRenames(ca)
	if sub["P_r"] != "Q_r" || sub["A1_a"] != "B1_a" {
		t.Fatalf("rename map wrong: %v", sub)
	}
}

// Channel names whose lexicographic order disagrees with the structural
// order must NOT share a key: the synthesis variable order would
// differ, so the mapped netlists are not rename-isomorphic.
func TestCanonicalizeOrderSensitivity(t *testing.T) {
	// In a, the passive channel sorts after the active ones; in b it
	// sorts before them.
	a := mustParseCanon(t, `(rep (enc-early (p-to-p passive P) (seq (p-to-p active A1) (p-to-p active A2))))`)
	b := mustParseCanon(t, `(rep (enc-early (p-to-p passive B) (seq (p-to-p active C1) (p-to-p active C2))))`)
	ca, _ := Canonicalize(a)
	cb, _ := Canonicalize(b)
	if ca.Key == cb.Key {
		t.Fatal("keys must differ when wire sort order differs")
	}
}

// Different structures never collide.
func TestCanonicalizeStructure(t *testing.T) {
	a := mustParseCanon(t, `(rep (enc-early (p-to-p passive P) (p-to-p active A)))`)
	b := mustParseCanon(t, `(rep (enc-late (p-to-p passive P) (p-to-p active A)))`)
	ca, _ := Canonicalize(a)
	cb, _ := Canonicalize(b)
	if ca.Key == cb.Key {
		t.Fatal("different operators must not share a key")
	}
}

// Programs whose channels are literally named c0, c1, ... must survive
// the simultaneous α-renaming (a sequential rename would collide).
func TestCanonicalizeNameCollision(t *testing.T) {
	// First-appearance order is c1, c0 — so c1 maps to "c0" and c0 to
	// "c1" simultaneously.
	a := mustParseCanon(t, `(rep (enc-early (p-to-p passive c1) (p-to-p active c0)))`)
	b := mustParseCanon(t, `(rep (enc-early (p-to-p passive x1) (p-to-p active x0)))`)
	ca, ok := Canonicalize(a)
	if !ok {
		t.Fatal("not canonicalizable")
	}
	cb, _ := Canonicalize(b)
	if ca.Key != cb.Key {
		t.Fatalf("collision handling broke α-equivalence:\n%s\nvs\n%s", ca.Key, cb.Key)
	}
	if ca.Channels[0] != "c1" || ca.Channels[1] != "c0" {
		t.Fatalf("channel order %v", ca.Channels)
	}
}

// Verb channels name raw wires; they are not safely renamable.
func TestCanonicalizeVerbRejected(t *testing.T) {
	e := mustParseCanon(t, `(verb ((i a_r +)) ((o a_a +)) ((i a_r -)) ((o a_a -)))`)
	if _, ok := Canonicalize(e); ok {
		t.Fatal("verb expression must be rejected")
	}
}

// Mux channels participate in canonicalization.
func TestCanonicalizeMux(t *testing.T) {
	a := mustParseCanon(t, `(rep (enc-early (p-to-p passive P) (mux-ack M (enc-early (p-to-p active A)) (enc-early (p-to-p active B)))))`)
	b := mustParseCanon(t, `(rep (enc-early (p-to-p passive Q) (mux-ack N (enc-early (p-to-p active C)) (enc-early (p-to-p active D)))))`)
	ca, ok := Canonicalize(a)
	if !ok {
		t.Fatal("mux not canonicalizable")
	}
	cb, _ := Canonicalize(b)
	if ca.Key != cb.Key {
		t.Fatalf("mux α-equivalence broken:\n%s\nvs\n%s", ca.Key, cb.Key)
	}
}

package ch

import (
	"errors"
	"testing"
)

// TestParsePositions: every parsed node points at its opening token.
func TestParsePositions(t *testing.T) {
	src := `(rep
  (enc-early (p-to-p passive P)
    (seq (p-to-p active A1)
         (p-to-p active A2))))`
	e, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rep, ok := e.(*Rep)
	if !ok {
		t.Fatalf("want *Rep, got %T", e)
	}
	if rep.Pos != (Pos{Line: 1, Col: 1}) {
		t.Errorf("rep at %s, want 1:1", rep.Pos)
	}
	enc := rep.Body.(*Op)
	if enc.Pos != (Pos{Line: 2, Col: 3}) {
		t.Errorf("enc-early at %s, want 2:3", enc.Pos)
	}
	p := enc.A.(*Chan)
	if p.Pos != (Pos{Line: 2, Col: 14}) {
		t.Errorf("channel P at %s, want 2:14", p.Pos)
	}
	seq := enc.B.(*Op)
	if seq.Pos != (Pos{Line: 3, Col: 5}) {
		t.Errorf("seq at %s, want 3:5", seq.Pos)
	}
	a2 := seq.B.(*Chan)
	if a2.Pos != (Pos{Line: 4, Col: 10}) {
		t.Errorf("channel A2 at %s, want 4:10", a2.Pos)
	}
}

// TestParseErrorPosition: parse failures carry a typed position.
func TestParseErrorPosition(t *testing.T) {
	_, err := Parse("(rep\n  (p-to-p sideways x))")
	if err == nil {
		t.Fatal("want error for bad activity")
	}
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("want *ParseError, got %T: %v", err, err)
	}
	if pe.Pos != (Pos{Line: 2, Col: 11}) {
		t.Errorf("error at %s, want 2:11", pe.Pos)
	}
}

// TestValidationErrorPosition: Table 1 violations point at the
// offending operator and carry its arguments as fields.
func TestValidationErrorPosition(t *testing.T) {
	e, err := Parse("(seq-ov (p-to-p passive a)\n        (p-to-p active b))")
	if err != nil {
		t.Fatal(err)
	}
	verr := Validate(e)
	if verr == nil {
		t.Fatal("want validation error for seq-ov p/a")
	}
	var ve *ValidationError
	if !errors.As(verr, &ve) {
		t.Fatalf("want *ValidationError, got %T: %v", verr, verr)
	}
	if ve.Op != SeqOv || ve.ActA != Passive || ve.ActB != Active {
		t.Errorf("fields %s %s/%s, want seq-ov passive/active", ve.Op, ve.ActA, ve.ActB)
	}
	if ve.Pos != (Pos{Line: 1, Col: 1}) {
		t.Errorf("error at %s, want 1:1", ve.Pos)
	}
}

// TestClonePreservesPos: clustering rewrites clone subtrees; positions
// must survive so post-rewrite diagnostics still point at source.
func TestClonePreservesPos(t *testing.T) {
	e, err := Parse("(mutex (p-to-p passive a) (p-to-p passive b))")
	if err != nil {
		t.Fatal(err)
	}
	c := e.Clone()
	if got, want := ExprPos(c), ExprPos(e); got != want {
		t.Errorf("clone at %s, want %s", got, want)
	}
	if got := ExprPos(c.(*Op).A); got != (Pos{Line: 1, Col: 8}) {
		t.Errorf("cloned channel a at %s, want 1:8", got)
	}
}

package ch

import (
	"fmt"
	"sort"
)

// Walk calls f on e and every sub-expression, pre-order.
func Walk(e Expr, f func(Expr)) {
	f(e)
	switch n := e.(type) {
	case *Rep:
		Walk(n.Body, f)
	case *Op:
		Walk(n.A, f)
		Walk(n.B, f)
	case *MuxAck:
		for _, arm := range n.Arms {
			Walk(arm.Arg, f)
		}
	case *MuxReq:
		for _, arm := range n.Arms {
			Walk(arm.Arg, f)
		}
	}
}

// Port describes one channel of a controller's interface.
type Port struct {
	Name string
	Kind ChanKind
	Act  Activity
	N    int // wire multiplicity (mult/mux); 0 for p-to-p
	Mux  bool
}

// Ports returns the channel interface of an expression: every named
// channel it declares, sorted by name. Void channels have no interface.
// Duplicate declarations of the same name (e.g. the replicated active
// channel of a split call component) are merged and must agree.
func Ports(e Expr) ([]Port, error) {
	seen := map[string]Port{}
	var err error
	Walk(e, func(x Expr) {
		if err != nil {
			return
		}
		var p Port
		switch n := x.(type) {
		case *Chan:
			if n.Kind == Verb {
				return
			}
			p = Port{Name: n.Name, Kind: n.Kind, Act: n.Act, N: n.N}
		case *MuxAck:
			p = Port{Name: n.Name, Act: Active, N: len(n.Arms), Mux: true}
		case *MuxReq:
			p = Port{Name: n.Name, Act: Passive, N: len(n.Arms), Mux: true}
		default:
			return
		}
		if prev, ok := seen[p.Name]; ok {
			if prev != p {
				err = fmt.Errorf("ch: conflicting declarations for channel %q: %+v vs %+v", p.Name, prev, p)
			}
			return
		}
		seen[p.Name] = p
	})
	if err != nil {
		return nil, err
	}
	ports := make([]Port, 0, len(seen))
	for _, p := range seen {
		ports = append(ports, p)
	}
	sort.Slice(ports, func(i, j int) bool { return ports[i].Name < ports[j].Name })
	return ports, nil
}

// Signals lists the wire names of a port with their directions as seen
// by this controller.
func (p Port) Signals() []Trans {
	reqDir, ackDir := In, Out
	if p.Act == Active {
		reqDir, ackDir = Out, In
	}
	var out []Trans
	switch {
	case p.Mux && p.Act == Active: // mux-ack: 1 req out, N acks in
		out = append(out, Trans{Signal: p.Name + "_r", Dir: Out})
		for i := 1; i <= p.N; i++ {
			out = append(out, Trans{Signal: fmt.Sprintf("%s_a%d", p.Name, i), Dir: In})
		}
	case p.Mux: // mux-req: N reqs in, 1 ack out
		for i := 1; i <= p.N; i++ {
			out = append(out, Trans{Signal: fmt.Sprintf("%s_r%d", p.Name, i), Dir: In})
		}
		out = append(out, Trans{Signal: p.Name + "_a", Dir: Out})
	case p.Kind == PToP:
		out = append(out,
			Trans{Signal: p.Name + "_r", Dir: reqDir},
			Trans{Signal: p.Name + "_a", Dir: ackDir})
	case p.Kind == MultReq:
		out = append(out, Trans{Signal: p.Name + "_r", Dir: reqDir})
		for i := 1; i <= p.N; i++ {
			out = append(out, Trans{Signal: fmt.Sprintf("%s_a%d", p.Name, i), Dir: ackDir})
		}
	case p.Kind == MultAck:
		for i := 1; i <= p.N; i++ {
			out = append(out, Trans{Signal: fmt.Sprintf("%s_r%d", p.Name, i), Dir: reqDir})
		}
		out = append(out, Trans{Signal: p.Name + "_a", Dir: ackDir})
	}
	return out
}

// CountPToP returns how many p-to-p declarations of the given name
// appear in the expression.
func CountPToP(e Expr, name string) int {
	n := 0
	Walk(e, func(x Expr) {
		if c, ok := x.(*Chan); ok && c.Kind == PToP && c.Name == name {
			n++
		}
	})
	return n
}

// ReplacePToP returns a copy of e in which every p-to-p channel
// declaration named name is replaced by a clone of with. It reports how
// many replacements were made.
func ReplacePToP(e Expr, name string, with Expr) (Expr, int) {
	count := 0
	var rec func(Expr) Expr
	rec = func(x Expr) Expr {
		switch n := x.(type) {
		case *Chan:
			if n.Kind == PToP && n.Name == name {
				count++
				return with.Clone()
			}
			return n.Clone()
		case *Rep:
			return &Rep{Body: rec(n.Body)}
		case *Op:
			return &Op{Kind: n.Kind, A: rec(n.A), B: rec(n.B)}
		case *MuxAck:
			arms := make([]MuxArm, len(n.Arms))
			for i, a := range n.Arms {
				arms[i] = MuxArm{Op: a.Op, Arg: rec(a.Arg)}
			}
			return &MuxAck{Name: n.Name, Arms: arms}
		case *MuxReq:
			arms := make([]MuxArm, len(n.Arms))
			for i, a := range n.Arms {
				arms[i] = MuxArm{Op: a.Op, Arg: rec(a.Arg)}
			}
			return &MuxReq{Name: n.Name, Arms: arms}
		default:
			return x.Clone()
		}
	}
	out := rec(e)
	return out, count
}

// RenameChannel returns a copy of e with every channel named old
// renamed to new (p-to-p, mult and mux channels alike).
func RenameChannel(e Expr, old, new string) Expr {
	out := e.Clone()
	Walk(out, func(x Expr) {
		switch n := x.(type) {
		case *Chan:
			if n.Name == old {
				n.Name = new
			}
		case *MuxAck:
			if n.Name == old {
				n.Name = new
			}
		case *MuxReq:
			if n.Name == old {
				n.Name = new
			}
		}
	})
	return out
}

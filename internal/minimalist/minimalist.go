// Package minimalist synthesizes Burst-Mode specifications into
// hazard-free two-level logic, standing in for the Minimalist package
// (Fuhrer & Nowick) used by the paper's back-end.
//
// The flow: a BM specification is turned into a Huffman-style machine
// with fed-back state variables. States receive a critical-race-free
// encoding found by dichotomy covering (Tracey-style constraints
// generated from pairs of arcs whose input-transition cubes intersect).
// Every output and next-state function is then minimized independently
// ("single-output mode" — the paper's speed-oriented Minimalist script)
// with the Nowick–Dill hazard-free minimizer (package hfmin).
//
// Conflicting value requirements discovered while building the function
// tables trigger state-assignment refinement: a new dichotomy is added
// separating the two arcs' state sets and the encoding is recomputed.
package minimalist

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"balsabm/internal/bm"
	"balsabm/internal/hfmin"
	"balsabm/internal/logic"
	"balsabm/internal/parallel"
)

// Controller is a synthesized Burst-Mode controller: two-level
// hazard-free covers for every output and state variable.
//
// Like Minimalist, the synthesizer feeds outputs back as state
// variables: the machine state is encoded by the output values at
// state entry plus as many extra state bits (y0..) as needed to
// distinguish states with identical output vectors and to satisfy the
// critical-race constraints. Small library components (sequencers,
// calls, passivators) typically need zero or one extra bit, which is
// what keeps the unoptimized baseline close to hand-cell size.
type Controller struct {
	Spec      *bm.Spec
	Inputs    []string // input variable order (spec inputs)
	StateBits int      // number of EXTRA state bits beyond fed-back outputs
	// Vars is the full variable order: inputs, then outputs (fed
	// back), then extra state bits y0..y{k-1}.
	Vars    []string
	Codes   [][]bool               // state -> full code: output values ++ extra bits
	Outputs map[string]logic.Cover // output signal -> cover
	// NextState holds the covers of the extra state bits only; fed-back
	// outputs are their own excitation.
	NextState []logic.Cover
	// Transitions records the specified input transitions per function,
	// for downstream hazard auditing of mapped logic.
	Transitions map[string][]hfmin.Transition
	// Stats aggregates the minimizer's work counters over every
	// function of the final (conflict-free) encoding.
	Stats Stats
}

// Stats aggregates hfmin work counters across a controller's output
// and next-state functions, making a fallback to the greedy paths
// observable per controller.
type Stats struct {
	Functions      int   // functions minimized
	ExactFunctions int   // functions solved on the exact path end to end
	EnumNodes      int64 // prime-enumeration nodes visited
	BranchNodes    int64 // covering branch-and-bound nodes visited
}

// Exact reports whether every function went through the exact
// enumeration and covering path (no greedy fallback anywhere).
func (s Stats) Exact() bool { return s.Functions == s.ExactFunctions }

func (s *Stats) observe(r *hfmin.Result) {
	s.Functions++
	if r.Exact {
		s.ExactFunctions++
	}
	s.EnumNodes += r.EnumNodes
	s.BranchNodes += r.BranchNodes
}

// Options tune synthesis. The zero value minimizes every function
// sequentially on the calling goroutine.
type Options struct {
	// Pool, when non-nil, admits per-function minimizations as leaf
	// units of pool work, so independent output and next-state
	// functions minimize concurrently. Results are byte-identical to
	// the sequential path: fan-out preserves function order and every
	// minimization is deterministic in isolation.
	Pool *parallel.Pool
	// Ctx cancels in-flight synthesis; nil means context.Background().
	Ctx context.Context
}

// Products returns the total number of product terms.
func (c *Controller) Products() int {
	n := 0
	for _, cv := range c.Outputs {
		n += len(cv)
	}
	for _, cv := range c.NextState {
		n += len(cv)
	}
	return n
}

// Literals returns the total literal count over all covers.
func (c *Controller) Literals() int {
	n := 0
	for _, cv := range c.Outputs {
		for _, cube := range cv {
			n += cube.Literals()
		}
	}
	for _, cv := range c.NextState {
		for _, cube := range cv {
			n += cube.Literals()
		}
	}
	return n
}

// dichotomy requires some state bit to separate group A from group B.
type dichotomy struct{ a, b []int }

func (d dichotomy) key() string {
	return fmt.Sprintf("%v|%v", d.a, d.b)
}

// arcInfo caches per-arc geometry.
type arcInfo struct {
	arc    bm.Arc
	xStart []bool // input values entering the source state
	xEnd   []bool // input values after the input burst
}

// Synthesize runs the full flow on a checked specification,
// sequentially. See SynthesizeOpt for the concurrent form.
func Synthesize(sp *bm.Spec) (*Controller, error) {
	return SynthesizeOpt(sp, Options{})
}

// SynthesizeOpt runs the full flow on a checked specification.
func SynthesizeOpt(sp *bm.Spec, opt Options) (*Controller, error) {
	if err := sp.Check(); err != nil {
		return nil, err
	}
	// Extra state bits are named y0, y1, ...; signal names must not
	// collide with them (channel-derived names never do in practice).
	for _, sigs := range [][]string{sp.Inputs, sp.Outputs} {
		for _, s := range sigs {
			if isStateBitName(s) {
				return nil, fmt.Errorf("minimalist: %s: signal name %q collides with state-bit naming", sp.Name, s)
			}
		}
	}
	values, err := sp.StateValues()
	if err != nil {
		return nil, err
	}
	inputs := append([]string(nil), sp.Inputs...)
	arcs := make([]arcInfo, len(sp.Arcs))
	for i, a := range sp.Arcs {
		entry := values[a.From]
		xs := make([]bool, len(inputs))
		xe := make([]bool, len(inputs))
		for j, in := range inputs {
			xs[j] = entry[in]
			xe[j] = entry[in]
		}
		for _, s := range a.In {
			for j, in := range inputs {
				if in == s.Name {
					xe[j] = s.Rise
				}
			}
		}
		arcs[i] = arcInfo{arc: a, xStart: xs, xEnd: xe}
	}

	// Output vectors at state entry: the fed-back-output part of the
	// state code.
	outVec := make([][]bool, sp.NStates)
	for s := 0; s < sp.NStates; s++ {
		vec := make([]bool, len(sp.Outputs))
		for i, z := range sp.Outputs {
			vec[i] = values[s][z]
		}
		outVec[s] = vec
	}
	// separatedByOutputs reports whether some fed-back output already
	// realizes the dichotomy (constant on each group, different
	// between groups).
	separatedByOutputs := func(d dichotomy) bool {
		for z := range sp.Outputs {
			ok := true
			va := outVec[d.a[0]][z]
			for _, s := range d.a {
				if outVec[s][z] != va {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			vb := !va
			for _, s := range d.b {
				if outVec[s][z] != vb {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
		return false
	}

	// Base dichotomies: pairwise state distinction, plus Tracey-style
	// race constraints for arc pairs with intersecting input cubes —
	// keeping only those the fed-back outputs do not already satisfy.
	dset := map[string]dichotomy{}
	add := func(d dichotomy) {
		sort.Ints(d.a)
		sort.Ints(d.b)
		if len(d.a) > 0 && len(d.b) > 0 && !separatedByOutputs(d) {
			dset[d.key()] = d
		}
	}
	for s := 0; s < sp.NStates; s++ {
		for u := s + 1; u < sp.NStates; u++ {
			add(dichotomy{a: []int{s}, b: []int{u}})
		}
	}
	for i := range arcs {
		for j := i + 1; j < len(arcs); j++ {
			addRaceDichotomy(&arcs[i], &arcs[j], add)
		}
	}

	// Iterate: encode, build tables, refine on conflict.
	for iter := 0; iter < 64; iter++ {
		extra := assignCodes(sp.NStates, sp.Start, dset)
		codes := make([][]bool, sp.NStates)
		for s := range codes {
			code := make([]bool, 0, len(outVec[s])+len(extra[s]))
			codes[s] = append(append(code, outVec[s]...), extra[s]...)
		}
		ctrl, conflict, err := buildAndMinimize(sp, inputs, arcs, values, codes, len(extra[0]), opt)
		if err != nil {
			return nil, err
		}
		if conflict == nil {
			return ctrl, nil
		}
		before := len(dset)
		add(*conflict)
		if len(dset) == before {
			return nil, fmt.Errorf("minimalist: %s: unresolvable value conflict between states %v and %v",
				sp.Name, conflict.a, conflict.b)
		}
	}
	return nil, fmt.Errorf("minimalist: %s: state assignment did not converge", sp.Name)
}

// addRaceDichotomy adds the Tracey constraint for two arcs whose input
// transition cubes intersect: their state pairs must be separated by
// some bit so the fed-back code cubes cannot interfere.
func addRaceDichotomy(t1, t2 *arcInfo, add func(dichotomy)) {
	// Input-cube intersection test over the x variables.
	for i := range t1.xStart {
		lo1, hi1 := t1.xStart[i], t1.xEnd[i]
		lo2, hi2 := t2.xStart[i], t2.xEnd[i]
		span1 := lo1 != hi1
		span2 := lo2 != hi2
		if !span1 && !span2 && lo1 != lo2 {
			return // disjoint input columns: no constraint
		}
	}
	set1 := map[int]bool{t1.arc.From: true, t1.arc.To: true}
	if set1[t2.arc.From] || set1[t2.arc.To] {
		return // shared state: inseparable, chained transitions
	}
	a := []int{t1.arc.From}
	if t1.arc.To != t1.arc.From {
		a = append(a, t1.arc.To)
	}
	b := []int{t2.arc.From}
	if t2.arc.To != t2.arc.From {
		b = append(b, t2.arc.To)
	}
	add(dichotomy{a: a, b: b})
}

// assignCodes solves the dichotomy covering problem greedily: each code
// bit is a (partial) bipartition of the states; every dichotomy must be
// realized by some bit. The start state is normalized to the all-zero
// code.
func assignCodes(nStates, start int, dset map[string]dichotomy) [][]bool {
	keys := make([]string, 0, len(dset))
	for k := range dset {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type bit []int8 // per state: -1 unassigned, 0, 1
	var bits []bit
	place := func(d dichotomy) {
		for _, b := range bits {
			// Try to realize d in bit b with polarity (a=0,b=1) or
			// (a=1,b=0).
			for _, pol := range []int8{0, 1} {
				ok := true
				for _, s := range d.a {
					if b[s] != -1 && b[s] != pol {
						ok = false
						break
					}
				}
				if ok {
					for _, s := range d.b {
						if b[s] != -1 && b[s] != 1-pol {
							ok = false
							break
						}
					}
				}
				if ok {
					for _, s := range d.a {
						b[s] = pol
					}
					for _, s := range d.b {
						b[s] = 1 - pol
					}
					return
				}
			}
		}
		nb := make(bit, nStates)
		for i := range nb {
			nb[i] = -1
		}
		for _, s := range d.a {
			nb[s] = 0
		}
		for _, s := range d.b {
			nb[s] = 1
		}
		bits = append(bits, nb)
	}
	for _, k := range keys {
		place(dset[k])
	}
	// Pack: merge compatible bits (two partial bipartitions merge if,
	// under some polarity, no state is assigned opposite values). A
	// dichotomy realized in either bit stays realized in the merge.
	for changed := true; changed; {
		changed = false
	outer:
		for i := 0; i < len(bits); i++ {
			for j := i + 1; j < len(bits); j++ {
				for _, pol := range []int8{0, 1} {
					ok := true
					for s := 0; s < nStates; s++ {
						if bits[i][s] != -1 && bits[j][s] != -1 && bits[i][s] != bits[j][s]^pol {
							ok = false
							break
						}
					}
					if !ok {
						continue
					}
					for s := 0; s < nStates; s++ {
						if bits[i][s] == -1 && bits[j][s] != -1 {
							bits[i][s] = bits[j][s] ^ pol
						}
					}
					bits = append(bits[:j], bits[j+1:]...)
					changed = true
					break outer
				}
			}
		}
	}
	codes := make([][]bool, nStates)
	for s := range codes {
		codes[s] = make([]bool, len(bits))
		for i, b := range bits {
			v := b[s]
			if v == -1 {
				v = 0
			}
			codes[s][i] = v == 1
		}
	}
	// Normalize: start state = all zeros.
	ref := append([]bool(nil), codes[start]...)
	for s := range codes {
		for i := range codes[s] {
			codes[s][i] = codes[s][i] != ref[i]
		}
	}
	return codes
}

// fnSpec tags a derived transition with its source arcs for conflict
// attribution.
type fnSpec struct {
	tr   hfmin.Transition
	arcA int // index of the originating arc
}

// buildAndMinimize derives per-function transition tables under the
// given full-state encoding (fed-back outputs ++ nExtra extra bits) and
// minimizes each; on a value conflict it returns the dichotomy that
// would separate the clashing arcs.
func buildAndMinimize(sp *bm.Spec, inputs []string, arcs []arcInfo, values []map[string]bool, codes [][]bool, nExtra int, opt Options) (*Controller, *dichotomy, error) {
	nOut := len(sp.Outputs)
	vars := make([]string, 0, len(inputs)+nOut+nExtra)
	vars = append(vars, inputs...)
	vars = append(vars, sp.Outputs...)
	for i := 0; i < nExtra; i++ {
		vars = append(vars, fmt.Sprintf("y%d", i))
	}
	point := func(x []bool, code []bool) []bool {
		out := make([]bool, 0, len(x)+len(code))
		out = append(out, x...)
		out = append(out, code...)
		return out
	}
	// fnName maps a code position to its function name: fed-back
	// outputs are their own excitation.
	fnName := func(pos int) string {
		if pos < nOut {
			return sp.Outputs[pos]
		}
		return fmt.Sprintf("y%d", pos-nOut)
	}

	fns := map[string][]fnSpec{}
	addTr := func(name string, arcIdx int, start, end []bool, from, to bool) {
		fns[name] = append(fns[name], fnSpec{
			tr:   hfmin.Transition{Start: start, End: end, From: from, To: to},
			arcA: arcIdx,
		})
	}
	for i, ai := range arcs {
		a := ai.arc
		from, to := a.From, a.To
		// Horizontal transition T1: the input burst, full code fixed;
		// every code component's function moves from its entry value to
		// its target (output burst / state change) at the end point.
		A1 := point(ai.xStart, codes[from])
		B1 := point(ai.xEnd, codes[from])
		for pos := 0; pos < len(codes[from]); pos++ {
			addTr(fnName(pos), i, A1, B1, codes[from][pos], codes[to][pos])
		}
		// Vertical transition T2: the code burst (outputs firing plus
		// extra-bit changes) at the new input point; every function
		// holds its target value throughout.
		if !sameCode(codes[from], codes[to]) {
			A2 := point(ai.xEnd, codes[from])
			B2 := point(ai.xEnd, codes[to])
			for pos := 0; pos < len(codes[from]); pos++ {
				addTr(fnName(pos), i, A2, B2, codes[to][pos], codes[to][pos])
			}
		}
	}

	// Conflict pre-check with arc attribution, in deterministic
	// function order so refinement (and thus the final encoding) is
	// reproducible run to run.
	for pos := 0; pos < len(codes[0]); pos++ {
		if d := findConflict(fns[fnName(pos)], arcs); d != nil {
			return nil, d, nil
		}
	}

	ctrl := &Controller{
		Spec:        sp,
		Inputs:      inputs,
		StateBits:   nExtra,
		Vars:        vars,
		Codes:       codes,
		Outputs:     map[string]logic.Cover{},
		NextState:   make([]logic.Cover, nExtra),
		Transitions: map[string][]hfmin.Transition{},
	}
	// Minimize every function: independently specified single-output
	// problems, so they can run concurrently. Fan-out preserves
	// function order and each minimization is deterministic, making
	// the aggregate byte-identical to the sequential loop.
	type fnOut struct {
		trs []hfmin.Transition
		res *hfmin.Result
	}
	minimizeOne := func(pos int) (fnOut, error) {
		name := fnName(pos)
		specs := fns[name]
		trs := make([]hfmin.Transition, len(specs))
		for i, s := range specs {
			trs[i] = s.tr
		}
		prob := &hfmin.Problem{Vars: len(vars), Names: vars, Transitions: trs}
		res, err := prob.Minimize()
		if err != nil {
			return fnOut{}, fmt.Errorf("minimalist: %s/%s: %w", sp.Name, name, err)
		}
		return fnOut{trs: trs, res: res}, nil
	}
	var outs []fnOut
	if opt.Pool != nil {
		ctx := opt.Ctx
		if ctx == nil {
			ctx = context.Background()
		}
		var err error
		outs, err = parallel.MapCtx(ctx, opt.Pool, nOut+nExtra, minimizeOne)
		if err != nil {
			return nil, nil, err
		}
	} else {
		outs = make([]fnOut, nOut+nExtra)
		for pos := range outs {
			o, err := minimizeOne(pos)
			if err != nil {
				return nil, nil, err
			}
			outs[pos] = o
		}
	}
	for pos, o := range outs {
		name := fnName(pos)
		ctrl.Transitions[name] = o.trs
		ctrl.Stats.observe(o.res)
		if pos < nOut {
			ctrl.Outputs[name] = o.res.Cover
		} else {
			ctrl.NextState[pos-nOut] = o.res.Cover
		}
	}
	return ctrl, nil, nil
}

// findConflict looks for a pair of derived transitions that force
// opposite values on a shared input point, returning the separating
// dichotomy.
func findConflict(specs []fnSpec, arcs []arcInfo) *dichotomy {
	type region struct {
		cube logic.Cube
		val  bool
		arc  int
	}
	var regions []region
	for _, s := range specs {
		t := s.tr
		T := logic.Point(t.Start).Supercube(logic.Point(t.End))
		if t.From == t.To {
			regions = append(regions, region{T, t.From, s.arcA})
			continue
		}
		// Value From on T minus end point, To at end point.
		for v := range t.Start {
			if t.Start[v] == t.End[v] {
				continue
			}
			sub := T.Clone()
			if t.Start[v] {
				sub[v] = logic.One
			} else {
				sub[v] = logic.Zero
			}
			regions = append(regions, region{sub, t.From, s.arcA})
		}
		regions = append(regions, region{logic.Point(t.End), t.To, s.arcA})
	}
	for i := range regions {
		for j := i + 1; j < len(regions); j++ {
			if regions[i].val != regions[j].val && regions[i].cube.Intersects(regions[j].cube) {
				a1, a2 := arcs[regions[i].arc].arc, arcs[regions[j].arc].arc
				set := map[int]bool{a1.From: true, a1.To: true}
				if set[a2.From] || set[a2.To] {
					continue // cannot separate; let hfmin report
				}
				return &dichotomy{
					a: uniqueInts(a1.From, a1.To),
					b: uniqueInts(a2.From, a2.To),
				}
			}
		}
	}
	return nil
}

func uniqueInts(xs ...int) []int {
	seen := map[int]bool{}
	var out []int
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Ints(out)
	return out
}

// isStateBitName reports whether s has the reserved y<digits> form.
func isStateBitName(s string) bool {
	if len(s) < 2 || s[0] != 'y' {
		return false
	}
	for i := 1; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

func sameCode(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func contains(xs []string, x string) bool {
	for _, s := range xs {
		if s == x {
			return true
		}
	}
	return false
}

// Eval computes the controller's combinational functions at the given
// input values and full state code (fed-back output values followed by
// extra state bits). It returns the output values and the full
// next-state excitation in code order.
func (c *Controller) Eval(x []bool, state []bool) (outs map[string]bool, next []bool) {
	point := make([]bool, 0, len(x)+len(state))
	point = append(append(point, x...), state...)
	outs = map[string]bool{}
	next = make([]bool, len(c.Spec.Outputs)+c.StateBits)
	for i, z := range c.Spec.Outputs {
		v := c.Outputs[z].Eval(point)
		outs[z] = v
		next[i] = v
	}
	for i, cv := range c.NextState {
		next[len(c.Spec.Outputs)+i] = cv.Eval(point)
	}
	return outs, next
}

// Sol renders the controller in a .sol-style report (the Minimalist
// solution format: per-function PLA covers plus the state encoding).
func (c *Controller) Sol() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; Minimalist-style solution for %s\n", c.Spec.Name)
	fmt.Fprintf(&sb, "; %d states, %d state bits, %d products, %d literals\n",
		c.Spec.NStates, c.StateBits, c.Products(), c.Literals())
	for s, code := range c.Codes {
		fmt.Fprintf(&sb, "; state %d = %s\n", s, codeString(code))
	}
	names := append([]string(nil), c.Spec.Outputs...)
	for _, z := range names {
		sb.WriteString(hfmin.FormatPLA(z, c.Vars, c.Outputs[z]))
	}
	for i, cv := range c.NextState {
		sb.WriteString(hfmin.FormatPLA(fmt.Sprintf("y%d", i), c.Vars, cv))
	}
	return sb.String()
}

func codeString(code []bool) string {
	var sb strings.Builder
	for _, b := range code {
		if b {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

package minimalist

import (
	"testing"

	"balsabm/internal/bm"
)

// A hand-written spec containing an unrolled cycle: states 0/2 and 1/3
// are pairwise bisimilar (same entry values, same arc structure), so
// the machine must collapse to its two-state core.
const redundantBMS = `
name redundant
input i 0
output o 0
0 1 i+ | o+
1 2 i- | o-
2 3 i+ | o+
3 0 i- | o-
`

func TestMinimizeMergesUnrolledCycle(t *testing.T) {
	sp, err := bm.Parse(redundantBMS)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Check(); err != nil {
		t.Fatal(err)
	}
	min, err := MinimizeStates(sp)
	if err != nil {
		t.Fatal(err)
	}
	if min.NStates != 2 || len(min.Arcs) != 2 {
		t.Fatalf("got %d states / %d arcs, want 2/2:\n%s", min.NStates, len(min.Arcs), min)
	}
	if err := min.Check(); err != nil {
		t.Fatal(err)
	}
}

// States entered with different signal values never merge, even when
// their local arc labels look alike (the call component's two branches
// keep distinct pending requests).
func TestMinimizePreservesDistinguishedBranches(t *testing.T) {
	sp, err := bm.Parse(`name call
input a1_r 0
input a2_r 0
input b_a 0
output b_r 0
output a1_a 0
output a2_a 0
0 1 a1_r+ | b_r+
1 2 b_a+ | b_r-
2 3 b_a- | a1_a+
3 0 a1_r- | a1_a-
0 4 a2_r+ | b_r+
4 5 b_a+ | b_r-
5 6 b_a- | a2_a+
6 0 a2_r- | a2_a-
`)
	if err != nil {
		t.Fatal(err)
	}
	min, err := MinimizeStates(sp)
	if err != nil {
		t.Fatal(err)
	}
	if min.NStates != sp.NStates {
		t.Fatalf("branches merged illegally: %d -> %d states", sp.NStates, min.NStates)
	}
}

// Specifications without bisimilar states are untouched.
func TestMinimizeIsIdentityOnMinimalSpecs(t *testing.T) {
	sp, err := bm.Parse(`name seq
input P_r 0
input A_a 0
output P_a 0
output A_r 0
0 1 P_r+ | A_r+
1 2 A_a+ | A_r-
2 3 A_a- | P_a+
3 0 P_r- | P_a-
`)
	if err != nil {
		t.Fatal(err)
	}
	min, err := MinimizeStates(sp)
	if err != nil {
		t.Fatal(err)
	}
	if min.NStates != sp.NStates || len(min.Arcs) != len(sp.Arcs) {
		t.Fatalf("minimal spec changed: %d states -> %d", sp.NStates, min.NStates)
	}
}

// Minimized specs synthesize and walk like the originals.
func TestMinimizeThenSynthesize(t *testing.T) {
	sp, err := bm.Parse(redundantBMS)
	if err != nil {
		t.Fatal(err)
	}
	min, err := MinimizeStates(sp)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := Synthesize(min)
	if err != nil {
		t.Fatal(err)
	}
	walk(t, min, ctrl, 60, 9)
	// The minimized machine should not need more logic than the
	// original.
	orig, err := Synthesize(sp)
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.Products() > orig.Products() {
		t.Errorf("minimization increased products: %d > %d", ctrl.Products(), orig.Products())
	}
}

package minimalist

import (
	"fmt"
	"math/rand"
	"testing"

	"balsabm/internal/bm"
	"balsabm/internal/ch"
	"balsabm/internal/chtobm"
	"balsabm/internal/parallel"
)

func specOf(t *testing.T, name, src string) *bm.Spec {
	t.Helper()
	body, err := ch.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := chtobm.Compile(&ch.Program{Name: name, Body: body})
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// settle iterates the next-state feedback to a fixpoint.
func settle(c *Controller, x, y []bool) (map[string]bool, []bool, error) {
	for i := 0; i < 8; i++ {
		outs, next := c.Eval(x, y)
		same := true
		for j := range y {
			if y[j] != next[j] {
				same = false
			}
		}
		if same {
			return outs, y, nil
		}
		y = next
	}
	return nil, nil, fmt.Errorf("state feedback did not settle")
}

// walk drives the synthesized machine along the specification graph,
// applying every input burst in several randomized orders, checking (a)
// outputs hold their values mid-burst (Mealy semantics), (b) outputs
// and state settle to the spec's values after the burst completes.
func walk(t *testing.T, sp *bm.Spec, c *Controller, steps int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	values, err := sp.StateValues()
	if err != nil {
		t.Fatal(err)
	}
	state := sp.Start
	x := make([]bool, len(c.Inputs))
	for i, in := range c.Inputs {
		x[i] = values[state][in]
	}
	y := append([]bool(nil), c.Codes[state]...)
	outs, y, err := settle(c, x, y)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < steps; step++ {
		arcs := sp.ArcsFrom(state)
		arc := arcs[rng.Intn(len(arcs))]
		// Apply the input burst in a random order.
		burst := append(bm.Burst(nil), arc.In...)
		rng.Shuffle(len(burst), func(i, j int) { burst[i], burst[j] = burst[j], burst[i] })
		for k, sig := range burst {
			for i, in := range c.Inputs {
				if in == sig.Name {
					x[i] = sig.Rise
				}
			}
			midOuts, newY, err := settle(c, x, y)
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			y = newY
			if k < len(burst)-1 {
				// Mid-burst: outputs must hold.
				for z, v := range outs {
					if midOuts[z] != v {
						t.Fatalf("step %d (%s): output %s changed mid-burst", step, arc, z)
					}
				}
			} else {
				outs = midOuts
			}
		}
		// After the complete burst: outputs match the spec.
		want := map[string]bool{}
		for k, v := range values[arc.From] {
			want[k] = v
		}
		for _, sig := range append(arc.In.Clone(), arc.Out...) {
			want[sig.Name] = sig.Rise
		}
		for _, z := range sp.Outputs {
			if outs[z] != want[z] {
				t.Fatalf("step %d (%s): output %s = %v, want %v", step, arc, z, outs[z], want[z])
			}
		}
		state = arc.To
		// State code must settle to the target encoding.
		for i := range y {
			if y[i] != c.Codes[state][i] {
				t.Fatalf("step %d (%s): state bit y%d = %v, want code of state %d", step, arc, i, y[i], state)
			}
		}
	}
}

func TestPassivatorSynthesis(t *testing.T) {
	sp := specOf(t, "passivator", `(rep (enc-middle (p-to-p passive A) (p-to-p passive B)))`)
	c, err := Synthesize(sp)
	if err != nil {
		t.Fatal(err)
	}
	// With fed-back outputs the two states are distinguished by the
	// acknowledge values themselves: no extra state bit is needed.
	if c.StateBits != 0 {
		t.Fatalf("state bits = %d, want 0", c.StateBits)
	}
	// Both acknowledge outputs minimize to the majority (C-element)
	// cover: 3 products of 2 literals.
	for _, z := range []string{"A_a", "B_a"} {
		cv := c.Outputs[z]
		if len(cv) != 3 {
			t.Fatalf("%s cover %v, want 3 products", z, cv)
		}
		for _, cube := range cv {
			if cube.Literals() != 2 {
				t.Fatalf("%s cover %v, want 2-literal products", z, cv)
			}
		}
	}
	walk(t, sp, c, 40, 1)
}

func TestSequencerSynthesis(t *testing.T) {
	sp := specOf(t, "sequencer", `(rep (enc-early (p-to-p passive P)
	   (seq (p-to-p active A1) (p-to-p active A2))))`)
	c, err := Synthesize(sp)
	if err != nil {
		t.Fatal(err)
	}
	if c.StateBits < 3 {
		t.Logf("sequencer encoded in %d bits", c.StateBits)
	}
	walk(t, sp, c, 60, 2)
}

func TestCallSynthesis(t *testing.T) {
	sp := specOf(t, "call", `(rep (mutex
	   (enc-early (p-to-p passive A1) (p-to-p active B))
	   (enc-early (p-to-p passive A2) (p-to-p active B))))`)
	c, err := Synthesize(sp)
	if err != nil {
		t.Fatal(err)
	}
	walk(t, sp, c, 80, 3)
}

// The Fig 4 merged controller (11 states) synthesizes and runs.
func TestFig4ControllerSynthesis(t *testing.T) {
	sp := specOf(t, "dwseq", `(rep (enc-early (p-to-p passive a1)
	   (mutex (enc-early (p-to-p passive i1) (p-to-p active o1))
	          (enc-early (p-to-p passive i2)
	             (enc-early void (seq (p-to-p active c1) (p-to-p active c2)))))))`)
	if sp.NStates != 11 {
		t.Fatalf("states %d", sp.NStates)
	}
	c, err := Synthesize(sp)
	if err != nil {
		t.Fatal(err)
	}
	walk(t, sp, c, 120, 4)
}

// The Fig 5 call-distributed controller synthesizes and runs.
func TestFig5ControllerSynthesis(t *testing.T) {
	sp := specOf(t, "seqcall", `(rep (enc-early (p-to-p passive a)
	   (seq (enc-early void (p-to-p active c))
	        (enc-early void (p-to-p active c)))))`)
	c, err := Synthesize(sp)
	if err != nil {
		t.Fatal(err)
	}
	walk(t, sp, c, 60, 5)
}

// Multi-signal bursts (decision-wait entry, mult-req forks) synthesize
// hazard-free.
func TestMultiSignalBurstSynthesis(t *testing.T) {
	sp := specOf(t, "fork", `(rep (enc-early (p-to-p passive p) (mult-req active c 2)))`)
	c, err := Synthesize(sp)
	if err != nil {
		t.Fatal(err)
	}
	walk(t, sp, c, 60, 6)
}

// Property: generated sequencer chains of width 1..5 all synthesize and
// walk correctly.
func TestSequencerFamilySynthesis(t *testing.T) {
	for n := 1; n <= 5; n++ {
		inner := "(p-to-p active A0)"
		for i := 1; i < n; i++ {
			inner = fmt.Sprintf("(seq (p-to-p active A%d) %s)", i, inner)
		}
		sp := specOf(t, fmt.Sprintf("seq%d", n),
			fmt.Sprintf("(rep (enc-early (p-to-p passive P) %s))", inner))
		c, err := Synthesize(sp)
		if err != nil {
			t.Fatalf("width %d: %v", n, err)
		}
		walk(t, sp, c, 50, int64(n))
	}
}

func TestDistinctCodes(t *testing.T) {
	sp := specOf(t, "call", `(rep (mutex
	   (enc-early (p-to-p passive A1) (p-to-p active B))
	   (enc-early (p-to-p passive A2) (p-to-p active B))))`)
	c, err := Synthesize(sp)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for s, code := range c.Codes {
		k := codeString(code)
		if prev, dup := seen[k]; dup {
			t.Fatalf("states %d and %d share code %s", prev, s, k)
		}
		seen[k] = s
	}
	// Start state must be the all-zero code.
	for _, b := range c.Codes[sp.Start] {
		if b {
			t.Fatal("start state not all-zero")
		}
	}
}

func TestSolReport(t *testing.T) {
	sp := specOf(t, "passivator", `(rep (enc-middle (p-to-p passive A) (p-to-p passive B)))`)
	c, err := Synthesize(sp)
	if err != nil {
		t.Fatal(err)
	}
	sol := c.Sol()
	for _, want := range []string{".ob A_a", ".ob B_a", "state 0 = 00", "state 1 = 11"} {
		if !containsStr(sol, want) {
			t.Fatalf("missing %q in:\n%s", want, sol)
		}
	}
	if c.Products() <= 0 || c.Literals() <= 0 {
		t.Fatal("stats empty")
	}
}

// Parallel per-function minimization must be byte-identical to the
// sequential path, and the work counters must aggregate identically.
func TestParallelMinimizeEquivalence(t *testing.T) {
	sp := specOf(t, "sequencer", `(rep (enc-early (p-to-p passive P)
	   (seq (p-to-p active A1) (p-to-p active A2))))`)
	seq, err := SynthesizeOpt(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := SynthesizeOpt(sp, Options{Pool: parallel.NewPool(4)})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := par.Sol(), seq.Sol(); got != want {
		t.Fatalf("parallel solution differs from sequential:\n--- parallel\n%s\n--- sequential\n%s", got, want)
	}
	if par.Stats != seq.Stats {
		t.Fatalf("stats differ: parallel %+v, sequential %+v", par.Stats, seq.Stats)
	}
	if seq.Stats.Functions == 0 {
		t.Fatal("no functions counted")
	}
	if !seq.Stats.Exact() {
		t.Fatalf("sequencer fell back to greedy: %+v", seq.Stats)
	}
	if seq.Stats.EnumNodes == 0 {
		t.Fatal("zero enumeration nodes counted")
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

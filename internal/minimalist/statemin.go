package minimalist

import (
	"fmt"
	"sort"

	"balsabm/internal/bm"
)

// MinimizeStates merges behaviorally identical states of a Burst-Mode
// specification — the state-minimization step of the Minimalist flow.
//
// The merge criterion is bisimilarity refined from entry signal values:
// two states collapse only if they are entered with identical signal
// vectors and have identical arc structure into equivalent classes, so
// the minimized machine is observationally indistinguishable from the
// original and still satisfies the Burst-Mode well-formedness checks
// (including unique entry values). Specifications produced by the
// CH-to-BMS compiler are usually already minimal; redundancy arises
// from hand-written specs and from compositions that duplicate
// identical tails.
func MinimizeStates(sp *bm.Spec) (*bm.Spec, error) {
	values, err := sp.StateValues()
	if err != nil {
		return nil, err
	}
	// Initial partition: by entry signal values.
	sigs := sp.Signals()
	block := make([]int, sp.NStates)
	index := map[string]int{}
	for s := 0; s < sp.NStates; s++ {
		key := ""
		for _, sig := range sigs {
			if values[s][sig] {
				key += "1"
			} else {
				key += "0"
			}
		}
		b, ok := index[key]
		if !ok {
			b = len(index)
			index[key] = b
		}
		block[s] = b
	}
	// Refine: states stay together only if their outgoing arc
	// signatures (bursts + successor block) match.
	for {
		sigIndex := map[string]int{}
		next := make([]int, sp.NStates)
		for s := 0; s < sp.NStates; s++ {
			arcs := sp.ArcsFrom(s)
			parts := make([]string, 0, len(arcs))
			for _, a := range arcs {
				parts = append(parts, fmt.Sprintf("%s/%s>%d", a.In, a.Out, block[a.To]))
			}
			sort.Strings(parts)
			key := fmt.Sprintf("b%d|%v", block[s], parts)
			b, ok := sigIndex[key]
			if !ok {
				b = len(sigIndex)
				sigIndex[key] = b
			}
			next[s] = b
		}
		same := true
		for s := range next {
			if next[s] != block[s] {
				same = false
			}
		}
		block = next
		if same || len(sigIndex) == sp.NStates {
			break
		}
	}
	// Rebuild the spec over blocks, numbering blocks by first
	// appearance in state order (keeps the start at 0 after renumber).
	renum := map[int]int{}
	order := []int{sp.Start}
	renum[block[sp.Start]] = 0
	for s := 0; s < sp.NStates; s++ {
		if _, ok := renum[block[s]]; !ok {
			renum[block[s]] = len(order)
			order = append(order, s)
		}
	}
	out := &bm.Spec{
		Name:    sp.Name,
		Inputs:  append([]string(nil), sp.Inputs...),
		Outputs: append([]string(nil), sp.Outputs...),
		Start:   0,
		NStates: len(order),
	}
	seen := map[string]bool{}
	for _, a := range sp.Arcs {
		na := bm.Arc{From: renum[block[a.From]], To: renum[block[a.To]], In: a.In.Clone(), Out: a.Out.Clone()}
		key := fmt.Sprintf("%d>%d:%s/%s", na.From, na.To, na.In, na.Out)
		if seen[key] {
			continue
		}
		seen[key] = true
		out.Arcs = append(out.Arcs, na)
	}
	if err := out.Check(); err != nil {
		return nil, fmt.Errorf("minimalist: state minimization broke the spec: %w", err)
	}
	return out, nil
}

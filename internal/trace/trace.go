// Package trace implements a trace-structure verifier in the spirit of
// Dill's trace theory and the AVER tool used in Section 4.3 of the
// paper. A component's behavior is a prefix-closed set of traces over
// its signal edges, represented as a deterministic automaton with a
// distinguished failure state.
//
// The package provides the three operations the paper's verification
// recipe needs — compose (parallel composition with computation-
// interference detection), hide (internalizing the signals of an
// eliminated channel), and conformance/equivalence checking — plus a
// converter from Petri-net reachability graphs (package petri).
//
// Simplification relative to full trace theory: failure sets are
// modelled only through computation interference (a component receiving
// an input edge it is not ready for), which is the failure mode the
// activation-channel-removal proof needs; autofailures and receptive
// closure are not modelled.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"balsabm/internal/petri"
)

// NFA is a nondeterministic automaton over signal-edge labels. Empty
// labels are silent. All states accept (prefix-closed behavior); Fail
// marks failure states.
type NFA struct {
	Name    string
	Inputs  map[string]bool // signal names, e.g. "a_r"
	Outputs map[string]bool
	States  int
	Start   int
	Edges   []petri.Edge
	Fail    map[int]bool
}

// SignalOf maps a symbol ("a_r+") to its signal name ("a_r").
func SignalOf(symbol string) string {
	return strings.TrimRight(symbol, "+-")
}

// FromGraph wraps a Petri-net reachability graph as an NFA.
func FromGraph(g *petri.Graph, inputs, outputs []string) *NFA {
	n := &NFA{
		Name:    g.Name,
		Inputs:  map[string]bool{},
		Outputs: map[string]bool{},
		States:  g.States,
		Start:   g.Start,
		Edges:   append([]petri.Edge(nil), g.Edges...),
		Fail:    map[int]bool{},
	}
	for _, s := range inputs {
		n.Inputs[s] = true
	}
	for _, s := range outputs {
		n.Outputs[s] = true
	}
	return n
}

// Hide returns a copy of the automaton in which all edges of the given
// signals are silent, and the signals are removed from the interface.
func (n *NFA) Hide(signals ...string) *NFA {
	hidden := map[string]bool{}
	for _, s := range signals {
		hidden[s] = true
	}
	out := &NFA{
		Name:    n.Name,
		Inputs:  map[string]bool{},
		Outputs: map[string]bool{},
		States:  n.States,
		Start:   n.Start,
		Fail:    map[int]bool{},
	}
	for s := range n.Inputs {
		if !hidden[s] {
			out.Inputs[s] = true
		}
	}
	for s := range n.Outputs {
		if !hidden[s] {
			out.Outputs[s] = true
		}
	}
	for s, f := range n.Fail {
		out.Fail[s] = f
	}
	for _, e := range n.Edges {
		if e.Label != "" && hidden[SignalOf(e.Label)] {
			e.Label = ""
		}
		out.Edges = append(out.Edges, e)
	}
	return out
}

// DFA is a deterministic trace structure: per-state symbol maps, a
// single absorbing failure state (index -1 is encoded as Fail[i]).
type DFA struct {
	Name    string
	Inputs  map[string]bool
	Outputs map[string]bool
	States  int
	Start   int
	Next    []map[string]int
	Fail    []bool
}

// Determinize performs the subset construction with epsilon closure.
func (n *NFA) Determinize() *DFA {
	adj := make([][]petri.Edge, n.States)
	for _, e := range n.Edges {
		adj[e.From] = append(adj[e.From], e)
	}
	closure := func(set map[int]bool) map[int]bool {
		stack := make([]int, 0, len(set))
		for s := range set {
			stack = append(stack, s)
		}
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range adj[s] {
				if e.Label == "" && !set[e.To] {
					set[e.To] = true
					stack = append(stack, e.To)
				}
			}
		}
		return set
	}
	key := func(set map[int]bool) string {
		ids := make([]int, 0, len(set))
		for s := range set {
			ids = append(ids, s)
		}
		sort.Ints(ids)
		parts := make([]string, len(ids))
		for i, id := range ids {
			parts[i] = fmt.Sprint(id)
		}
		return strings.Join(parts, ",")
	}
	d := &DFA{Name: n.Name, Inputs: n.Inputs, Outputs: n.Outputs}
	index := map[string]int{}
	var sets []map[int]bool
	intern := func(set map[int]bool) int {
		k := key(set)
		if i, ok := index[k]; ok {
			return i
		}
		i := len(sets)
		index[k] = i
		sets = append(sets, set)
		d.Next = append(d.Next, map[string]int{})
		fail := false
		for s := range set {
			if n.Fail[s] {
				fail = true
			}
		}
		d.Fail = append(d.Fail, fail)
		return i
	}
	d.Start = intern(closure(map[int]bool{n.Start: true}))
	for i := 0; i < len(sets); i++ {
		byLabel := map[string]map[int]bool{}
		for s := range sets[i] {
			for _, e := range adj[s] {
				if e.Label == "" {
					continue
				}
				if byLabel[e.Label] == nil {
					byLabel[e.Label] = map[int]bool{}
				}
				byLabel[e.Label][e.To] = true
			}
		}
		labels := make([]string, 0, len(byLabel))
		for l := range byLabel {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			d.Next[i][l] = intern(closure(byLabel[l]))
		}
	}
	d.States = len(sets)
	return d
}

// symbols returns the sorted set of symbols used anywhere in the DFA.
func (d *DFA) symbols() []string {
	set := map[string]bool{}
	for _, m := range d.Next {
		for l := range m {
			set[l] = true
		}
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Equivalent reports whether the two DFAs accept exactly the same
// prefix-closed languages with matching failure behavior. The check
// walks the synchronized product; any state where the enabled symbol
// sets or failure flags differ is a counterexample, returned as the
// distinguishing trace.
func Equivalent(a, b *DFA) (bool, string) {
	type pair struct{ u, v int }
	seen := map[pair]bool{}
	type item struct {
		p     pair
		trace string
	}
	queue := []item{{pair{a.Start, b.Start}, ""}}
	seen[queue[0].p] = true
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		u, v := it.p.u, it.p.v
		if a.Fail[u] != b.Fail[v] {
			return false, strings.TrimSpace(it.trace + " (failure mismatch)")
		}
		if a.Fail[u] {
			continue // both failed; failure is absorbing
		}
		labels := map[string]bool{}
		for l := range a.Next[u] {
			labels[l] = true
		}
		for l := range b.Next[v] {
			labels[l] = true
		}
		sorted := make([]string, 0, len(labels))
		for l := range labels {
			sorted = append(sorted, l)
		}
		sort.Strings(sorted)
		for _, l := range sorted {
			nu, okU := a.Next[u][l]
			nv, okV := b.Next[v][l]
			if okU != okV {
				return false, strings.TrimSpace(it.trace + " " + l)
			}
			p := pair{nu, nv}
			if !seen[p] {
				seen[p] = true
				queue = append(queue, item{p, it.trace + " " + l})
			}
		}
	}
	return true, ""
}

// Conforms reports whether every trace of impl is a trace of spec
// (trace containment with failure awareness): impl may not produce a
// symbol that spec cannot, and impl may not fail where spec does not.
func Conforms(impl, spec *DFA) (bool, string) {
	type pair struct{ u, v int }
	seen := map[pair]bool{}
	type item struct {
		p     pair
		trace string
	}
	queue := []item{{pair{impl.Start, spec.Start}, ""}}
	seen[queue[0].p] = true
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		u, v := it.p.u, it.p.v
		if impl.Fail[u] && !spec.Fail[v] {
			return false, strings.TrimSpace(it.trace + " (implementation failure)")
		}
		if impl.Fail[u] {
			continue
		}
		for l, nu := range impl.Next[u] {
			nv, ok := spec.Next[v][l]
			if !ok {
				return false, strings.TrimSpace(it.trace + " " + l)
			}
			p := pair{nu, nv}
			if !seen[p] {
				seen[p] = true
				queue = append(queue, item{p, it.trace + " " + l})
			}
		}
	}
	return true, ""
}

package trace

import (
	"fmt"
	"sort"

	"balsabm/internal/petri"
)

// ToNFA converts a DFA back to an NFA (for further hiding).
func (d *DFA) ToNFA() *NFA {
	n := &NFA{
		Name:    d.Name,
		Inputs:  d.Inputs,
		Outputs: d.Outputs,
		States:  d.States,
		Start:   d.Start,
		Fail:    map[int]bool{},
	}
	for i, m := range d.Next {
		if d.Fail[i] {
			n.Fail[i] = true
		}
		labels := make([]string, 0, len(m))
		for l := range m {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			n.Edges = append(n.Edges, petri.Edge{From: i, To: m[l], Label: l})
		}
	}
	return n
}

// HideSignals hides the given signals and re-determinizes.
func (d *DFA) HideSignals(signals ...string) *DFA {
	return d.ToNFA().Hide(signals...).Determinize()
}

// Compose computes the parallel composition of two trace structures.
// Signals shared between the components must be an output of exactly
// one and an input of the other; they synchronize, remain outputs of
// the composite, and are typically hidden afterwards. Computation
// interference — one component producing an output edge the other is
// not ready to receive — leads to an absorbing failure state.
func Compose(a, b *DFA) (*DFA, error) {
	// Classify signals.
	for s := range a.Outputs {
		if b.Outputs[s] {
			return nil, fmt.Errorf("trace: signal %s is an output of both %s and %s", s, a.Name, b.Name)
		}
	}
	inputs := map[string]bool{}
	outputs := map[string]bool{}
	for s := range a.Outputs {
		outputs[s] = true
	}
	for s := range b.Outputs {
		outputs[s] = true
	}
	for s := range a.Inputs {
		if !outputs[s] {
			inputs[s] = true
		}
	}
	for s := range b.Inputs {
		if !outputs[s] {
			inputs[s] = true
		}
	}

	type pair struct{ u, v int }
	index := map[pair]int{}
	var pairs []pair
	out := &DFA{
		Name:    a.Name + "||" + b.Name,
		Inputs:  inputs,
		Outputs: outputs,
	}
	intern := func(p pair) int {
		if i, ok := index[p]; ok {
			return i
		}
		i := len(pairs)
		index[p] = i
		pairs = append(pairs, p)
		out.Next = append(out.Next, map[string]int{})
		out.Fail = append(out.Fail, false)
		return i
	}
	failState := -1
	fail := func() int {
		if failState < 0 {
			failState = len(pairs)
			pairs = append(pairs, pair{-1, -1})
			out.Next = append(out.Next, map[string]int{})
			out.Fail = append(out.Fail, true)
		}
		return failState
	}
	out.Start = intern(pair{a.Start, b.Start})
	for i := 0; i < len(pairs); i++ {
		p := pairs[i]
		if p.u < 0 {
			continue // failure sink
		}
		if a.Fail[p.u] || b.Fail[p.v] {
			out.Fail[i] = true
			continue
		}
		symbols := map[string]bool{}
		for l := range a.Next[p.u] {
			symbols[l] = true
		}
		for l := range b.Next[p.v] {
			symbols[l] = true
		}
		sorted := make([]string, 0, len(symbols))
		for l := range symbols {
			sorted = append(sorted, l)
		}
		sort.Strings(sorted)
		for _, sym := range sorted {
			sig := SignalOf(sym)
			nu, okU := a.Next[p.u][sym]
			nv, okV := b.Next[p.v][sym]
			knownA := a.Inputs[sig] || a.Outputs[sig]
			knownB := b.Inputs[sig] || b.Outputs[sig]
			switch {
			case a.Outputs[sig] && b.Inputs[sig]:
				// A drives, B must be ready.
				if !okU {
					continue // A does not produce it here
				}
				if !okV {
					out.Next[i][sym] = fail()
					continue
				}
				out.Next[i][sym] = intern(pair{nu, nv})
			case b.Outputs[sig] && a.Inputs[sig]:
				if !okV {
					continue
				}
				if !okU {
					out.Next[i][sym] = fail()
					continue
				}
				out.Next[i][sym] = intern(pair{nu, nv})
			case knownA && !knownB:
				if okU {
					out.Next[i][sym] = intern(pair{nu, p.v})
				}
			case knownB && !knownA:
				if okV {
					out.Next[i][sym] = intern(pair{p.u, nv})
				}
			case a.Inputs[sig] && b.Inputs[sig]:
				// Broadcast input from the environment: both observe.
				if okU && okV {
					out.Next[i][sym] = intern(pair{nu, nv})
				} else {
					// One side is not receptive to a possible input.
					out.Next[i][sym] = fail()
				}
			default:
				return nil, fmt.Errorf("trace: symbol %s (signal %s) not classifiable", sym, sig)
			}
		}
	}
	out.States = len(pairs)
	return out, nil
}

// HasFailure reports whether a failure state is reachable, along with a
// shortest trace reaching it.
func (d *DFA) HasFailure() (bool, string) {
	type item struct {
		s     int
		trace string
	}
	seen := map[int]bool{d.Start: true}
	queue := []item{{d.Start, ""}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if d.Fail[it.s] {
			return true, it.trace
		}
		labels := make([]string, 0, len(d.Next[it.s]))
		for l := range d.Next[it.s] {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			to := d.Next[it.s][l]
			if !seen[to] {
				seen[to] = true
				queue = append(queue, item{to, it.trace + " " + l})
			}
		}
	}
	return false, ""
}

package trace

import (
	"strings"
	"testing"

	"balsabm/internal/bm"
	"balsabm/internal/petri"
)

func dfaOf(t *testing.T, bms string) *DFA {
	t.Helper()
	sp, err := bm.Parse(bms)
	if err != nil {
		t.Fatal(err)
	}
	g, err := petri.FromBM(sp).Reachability(0)
	if err != nil {
		t.Fatal(err)
	}
	return FromGraph(g, sp.Inputs, sp.Outputs).Determinize()
}

const bufA = `name bufA
input a_r 0
output a_a 0
output c_r 0
input c_a 0
0 1 a_r+ | c_r+
1 2 c_a+ | c_r-
2 3 c_a- | a_a+
3 0 a_r- | a_a-
`

const bufB = `name bufB
input c_r 0
output c_a 0
output d_r 0
input d_a 0
0 1 c_r+ | d_r+
1 2 d_a+ | d_r-
2 3 d_a- | c_a+
3 0 c_r- | c_a-
`

// The direct (merged) behavior: a encloses d.
const merged = `name merged
input a_r 0
output a_a 0
output d_r 0
input d_a 0
0 1 a_r+ | d_r+
1 2 d_a+ | d_r-
2 3 d_a- | a_a+
3 0 a_r- | a_a-
`

func TestComposeHideEquivalent(t *testing.T) {
	da, db := dfaOf(t, bufA), dfaOf(t, bufB)
	comp, err := Compose(da, db)
	if err != nil {
		t.Fatal(err)
	}
	if bad, tr := comp.HasFailure(); bad {
		t.Fatalf("unexpected interference after %q", tr)
	}
	hidden := comp.HideSignals("c_r", "c_a")
	dm := dfaOf(t, merged)
	if ok, tr := Equivalent(hidden, dm); !ok {
		t.Fatalf("not equivalent, differ after %q", tr)
	}
	if ok, _ := Conforms(hidden, dm); !ok {
		t.Fatal("hidden does not conform to merged")
	}
	if ok, _ := Conforms(dm, hidden); !ok {
		t.Fatal("merged does not conform to hidden")
	}
}

func TestEquivalentDetectsDifference(t *testing.T) {
	dm := dfaOf(t, merged)
	other := dfaOf(t, strings.Replace(merged, "0 1 a_r+ | d_r+", "0 1 a_r+ | a_a+", 1))
	ok, tr := Equivalent(dm, other)
	if ok {
		t.Fatal("distinct behaviors reported equivalent")
	}
	if tr == "" {
		t.Fatal("no distinguishing trace")
	}
}

func TestComposeInterference(t *testing.T) {
	// B expects d_r to stay low until c_a+, but A drives d_r+
	// immediately: build a producer that emits x+ when the consumer is
	// not ready for it.
	prod := dfaOf(t, `name prod
input go_r 0
output x 0
output go_a 0
0 1 go_r+ | x+
1 0 go_r- | x- go_a+
`)
	// Consumer only accepts x+ after its own input y+ arrives.
	cons := dfaOf(t, `name cons
input y 0
input x 0
output z 0
0 1 y+ | z+
1 2 x+ | z-
2 3 y- |
3 0 x- |
`)
	comp, err := Compose(prod, cons)
	if err != nil {
		t.Fatal(err)
	}
	bad, tr := comp.HasFailure()
	if !bad {
		t.Fatal("expected interference")
	}
	if !strings.Contains(tr, "x+") {
		t.Fatalf("trace %q should blame x+", tr)
	}
}

func TestComposeRejectsSharedOutputs(t *testing.T) {
	a := dfaOf(t, "name a\ninput i 0\noutput x 0\n0 1 i+ | x+\n1 0 i- | x-\n")
	b := dfaOf(t, "name b\ninput j 0\noutput x 0\n0 1 j+ | x+\n1 0 j- | x-\n")
	if _, err := Compose(a, b); err == nil {
		t.Fatal("expected shared-output error")
	}
}

func TestHideRemovesFromInterface(t *testing.T) {
	d := dfaOf(t, merged)
	h := d.HideSignals("d_r", "d_a")
	if h.Inputs["d_a"] || h.Outputs["d_r"] {
		t.Fatal("hidden signals still in interface")
	}
	// Visible language is now just the a handshake.
	want := dfaOf(t, `name justA
input a_r 0
output a_a 0
0 1 a_r+ | a_a+
1 0 a_r- | a_a-
`)
	if ok, tr := Equivalent(h, want); !ok {
		t.Fatalf("differ after %q", tr)
	}
}

func TestSignalOf(t *testing.T) {
	if SignalOf("a_r+") != "a_r" || SignalOf("x-") != "x" {
		t.Fatal("SignalOf broken")
	}
}

func TestDeterminizeMergesDiamond(t *testing.T) {
	// An NFA with epsilon diamond determinizes to a line.
	n := &NFA{
		Name:    "diamond",
		Inputs:  map[string]bool{"a": true},
		Outputs: map[string]bool{},
		States:  4,
		Start:   0,
		Edges: []petri.Edge{
			{From: 0, To: 1, Label: ""},
			{From: 0, To: 2, Label: ""},
			{From: 1, To: 3, Label: "a+"},
			{From: 2, To: 3, Label: "a+"},
		},
		Fail: map[int]bool{},
	}
	d := n.Determinize()
	if d.States != 2 {
		t.Fatalf("got %d states, want 2", d.States)
	}
}

func TestConformsDetectsExtraBehavior(t *testing.T) {
	small := dfaOf(t, `name small
input a_r 0
output a_a 0
0 1 a_r+ | a_a+
1 0 a_r- | a_a-
`)
	big := dfaOf(t, `name big
input a_r 0
input b_r 0
output a_a 0
0 1 a_r+ | a_a+
1 0 a_r- | a_a-
0 2 b_r+ |
2 0 b_r- |
`)
	if ok, _ := Conforms(small, big); !ok {
		t.Fatal("small should conform to big")
	}
	if ok, _ := Conforms(big, small); ok {
		t.Fatal("big should not conform to small")
	}
}

// Package diag is the shared diagnostics layer of the three-tier lint
// stack: chlint (internal/analysis, CHxxx codes over CH programs),
// bmlint (internal/bmlint, BMxxx codes over Burst-Mode specs) and
// netlint (internal/netlint, NLxxx codes over mapped netlists) all
// emit through the types here. One Severity scale, one Diag shape, one
// vet-style renderer and one deterministic sort — so the CLI, the
// daemon's SSE stream, /metrics and the golden corpora agree on the
// wire format no matter which layer of the flow produced a finding.
//
// The only thing that differs between the linters is *where* a finding
// lives: a source position for CH programs, a state/arc/signal for
// Burst-Mode specs, a gate/net pair for netlists. That variability is
// captured by the Loc interface; everything else is generic over it.
// Each linter instantiates Diag[L]/Reporter[L] with its own location
// type and re-exports aliases, so existing call sites (and rendered
// output) are unchanged.
package diag

import (
	"fmt"
	"sort"
	"strings"
)

// Severity classifies a diagnostic, following go vet conventions.
type Severity int

const (
	// SevError marks violations that make the artifact unusable (an
	// unsynthesizable program, an ill-formed spec, a miswired
	// netlist). Errors abort the flow's gates.
	SevError Severity = iota
	// SevWarning marks suspicious-but-functional constructs.
	SevWarning
	// SevInfo marks advisory findings, e.g. static reports and
	// optimization opportunities.
	SevInfo
)

func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	case SevInfo:
		return "info"
	}
	return fmt.Sprintf("Severity(%d)", int(s))
}

// Loc is a diagnostic location: where in its artifact a finding lives.
// Implementations are small value types (ch.Pos, bmlint.Loc,
// netlint.Loc).
type Loc interface {
	// Fragment renders the location for the diagnostic header, without
	// a trailing colon, e.g. "3:5", "state 2", `g12(NAND2) net "a_r"`.
	// An empty text means the finding is artifact-level and the header
	// carries no location. Tight locations (source positions) attach
	// directly to the unit prefix ("file.ch:3:5:"); loose ones are
	// space-separated ("stack.opt: g12(NAND2):").
	Fragment() (text string, tight bool)
	// Key returns the primary and secondary sort components of the
	// location (line/col, state/arc, inst/net). Diagnostics sort by
	// Key, then Code, then Message.
	Key() (a, b int)
}

// Diag is one diagnostic: where, how bad, which rule, and why.
type Diag[L Loc] struct {
	Loc      L
	Severity Severity
	Code     string // stable "XXnnn" code, see the package's Codes table
	Message  string
	Notes    []string // secondary lines: table rows, related locations
}

// String renders the diagnostic without a unit prefix.
func (d Diag[L]) String() string { return d.Render("") }

// Render renders the diagnostic vet-style, prefixed with the unit (a
// file name, a spec name, a circuit name) when non-empty:
//
//	file.ch:3:5: error: CH001: ...
//	stack: arc 2 (0 -> 1 : a+ / r+): error: BM005: ...
//	stack.opt: g12(NAND2): error: NL004: ...
//
// Diagnostics with an empty location fragment omit the location rather
// than printing a bogus one. Notes follow on tab-indented lines.
func (d Diag[L]) Render(unit string) string {
	var sb strings.Builder
	if unit != "" {
		sb.WriteString(unit)
		sb.WriteString(":")
	}
	if frag, tight := d.Loc.Fragment(); frag != "" {
		if !tight && sb.Len() > 0 {
			sb.WriteString(" ")
		}
		sb.WriteString(frag)
		sb.WriteString(":")
	}
	if sb.Len() > 0 {
		sb.WriteString(" ")
	}
	fmt.Fprintf(&sb, "%s: %s: %s", d.Severity, d.Code, d.Message)
	for _, n := range d.Notes {
		sb.WriteString("\n\t")
		sb.WriteString(n)
	}
	return sb.String()
}

// Reporter collects diagnostics during a pass run.
type Reporter[L Loc] struct {
	diags []Diag[L]
}

// Report appends one diagnostic.
func (r *Reporter[L]) Report(d Diag[L]) { r.diags = append(r.diags, d) }

// Errorf reports an error-severity diagnostic at loc.
func (r *Reporter[L]) Errorf(loc L, code, format string, args ...any) {
	r.Report(Diag[L]{Loc: loc, Severity: SevError, Code: code, Message: fmt.Sprintf(format, args...)})
}

// Warnf reports a warning-severity diagnostic at loc.
func (r *Reporter[L]) Warnf(loc L, code, format string, args ...any) {
	r.Report(Diag[L]{Loc: loc, Severity: SevWarning, Code: code, Message: fmt.Sprintf(format, args...)})
}

// Infof reports an info-severity diagnostic at loc.
func (r *Reporter[L]) Infof(loc L, code, format string, args ...any) {
	r.Report(Diag[L]{Loc: loc, Severity: SevInfo, Code: code, Message: fmt.Sprintf(format, args...)})
}

// Note attaches a note to the most recently reported diagnostic.
func (r *Reporter[L]) Note(format string, args ...any) {
	if len(r.diags) == 0 {
		return
	}
	d := &r.diags[len(r.diags)-1]
	d.Notes = append(d.Notes, fmt.Sprintf(format, args...))
}

// Diags returns the collected diagnostics in report order.
func (r *Reporter[L]) Diags() []Diag[L] { return r.diags }

// Sort orders diagnostics by location key, then code, then message —
// a stable, byte-deterministic order at any pass count.
func Sort[L Loc](ds []Diag[L]) {
	sort.SliceStable(ds, func(i, j int) bool {
		ai, bi := ds[i].Loc.Key()
		aj, bj := ds[j].Loc.Key()
		if ai != aj {
			return ai < aj
		}
		if bi != bj {
			return bi < bj
		}
		if ds[i].Code != ds[j].Code {
			return ds[i].Code < ds[j].Code
		}
		return ds[i].Message < ds[j].Message
	})
}

// Count tallies diagnostics by severity.
func Count[L Loc](ds []Diag[L]) (errors, warnings, infos int) {
	for _, d := range ds {
		switch d.Severity {
		case SevError:
			errors++
		case SevWarning:
			warnings++
		default:
			infos++
		}
	}
	return
}

// HasErrors reports whether any diagnostic is error-severity.
func HasErrors[L Loc](ds []Diag[L]) bool {
	e, _, _ := Count(ds)
	return e > 0
}

// HasCode reports whether any diagnostic carries the given code.
func HasCode[L Loc](ds []Diag[L], code string) bool {
	for _, d := range ds {
		if d.Code == code {
			return true
		}
	}
	return false
}

// Format renders diagnostics vet-style, one per line (plus note
// lines), prefixed with the unit when non-empty.
func Format[L Loc](ds []Diag[L], unit string) string {
	var sb strings.Builder
	for _, d := range ds {
		sb.WriteString(d.Render(unit))
		sb.WriteString("\n")
	}
	return sb.String()
}

package diag

import (
	"fmt"
	"testing"
)

// tightLoc mimics a source position: attaches directly to the unit.
type tightLoc struct{ line, col int }

func (l tightLoc) Fragment() (string, bool) {
	if l.line == 0 {
		return "", true
	}
	return fmt.Sprintf("%d:%d", l.line, l.col), true
}
func (l tightLoc) Key() (int, int) { return l.line, l.col }

// looseLoc mimics a structural location: space-separated from the unit.
type looseLoc struct{ name string }

func (l looseLoc) Fragment() (string, bool) { return l.name, false }
func (l looseLoc) Key() (int, int)          { return len(l.name), 0 }

func TestSeverityString(t *testing.T) {
	cases := map[Severity]string{
		SevError:    "error",
		SevWarning:  "warning",
		SevInfo:     "info",
		Severity(7): "Severity(7)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("Severity(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestRenderTight(t *testing.T) {
	d := Diag[tightLoc]{Loc: tightLoc{3, 5}, Severity: SevError, Code: "XX001",
		Message: "boom", Notes: []string{"extra"}}
	cases := []struct{ unit, want string }{
		{"f.ch", "f.ch:3:5: error: XX001: boom\n\textra"},
		{"", "3:5: error: XX001: boom\n\textra"},
	}
	for _, c := range cases {
		if got := d.Render(c.unit); got != c.want {
			t.Errorf("Render(%q) = %q, want %q", c.unit, got, c.want)
		}
	}
	// Zero location: no position, no stray space.
	z := Diag[tightLoc]{Severity: SevWarning, Code: "XX002", Message: "m"}
	if got := z.Render(""); got != "warning: XX002: m" {
		t.Errorf("zero-loc Render = %q", got)
	}
	if got := z.Render("f.ch"); got != "f.ch: warning: XX002: m" {
		t.Errorf("zero-loc Render with unit = %q", got)
	}
}

func TestRenderLoose(t *testing.T) {
	d := Diag[looseLoc]{Loc: looseLoc{"g12(NAND2)"}, Severity: SevError,
		Code: "XX004", Message: "boom"}
	if got := d.Render("stack.opt"); got != "stack.opt: g12(NAND2): error: XX004: boom" {
		t.Errorf("Render = %q", got)
	}
	if got := d.Render(""); got != "g12(NAND2): error: XX004: boom" {
		t.Errorf("Render without unit = %q", got)
	}
	if got := d.String(); got != "g12(NAND2): error: XX004: boom" {
		t.Errorf("String = %q", got)
	}
}

func TestReporterAndSort(t *testing.T) {
	r := &Reporter[tightLoc]{}
	r.Warnf(tightLoc{5, 1}, "XX010", "later")
	r.Note("attached to later")
	r.Errorf(tightLoc{2, 9}, "XX011", "earlier")
	r.Infof(tightLoc{2, 1}, "XX012", "earliest")
	ds := r.Diags()
	if len(ds) != 3 {
		t.Fatalf("got %d diags, want 3", len(ds))
	}
	if len(ds[0].Notes) != 1 || ds[0].Notes[0] != "attached to later" {
		t.Fatalf("Note went to %+v", ds[0])
	}
	Sort(ds)
	want := []string{"earliest", "earlier", "later"}
	for i, m := range want {
		if ds[i].Message != m {
			t.Errorf("after Sort, ds[%d].Message = %q, want %q", i, ds[i].Message, m)
		}
	}

	e, w, in := Count(ds)
	if e != 1 || w != 1 || in != 1 {
		t.Errorf("Count = %d/%d/%d, want 1/1/1", e, w, in)
	}
	if !HasErrors(ds) {
		t.Error("HasErrors = false, want true")
	}
	if !HasCode(ds, "XX011") || HasCode(ds, "XX999") {
		t.Error("HasCode wrong")
	}
}

func TestSortTiesOnCodeAndMessage(t *testing.T) {
	ds := []Diag[tightLoc]{
		{Loc: tightLoc{1, 1}, Code: "B", Message: "z"},
		{Loc: tightLoc{1, 1}, Code: "B", Message: "a"},
		{Loc: tightLoc{1, 1}, Code: "A", Message: "m"},
	}
	Sort(ds)
	got := ds[0].Code + ds[1].Message + ds[2].Message
	if got != "A"+"a"+"z" {
		t.Errorf("tie-break order wrong: %+v", ds)
	}
}

func TestNoteOnEmptyReporter(t *testing.T) {
	r := &Reporter[looseLoc]{}
	r.Note("dropped") // must not panic
	if len(r.Diags()) != 0 {
		t.Fatal("Note on empty reporter created a diag")
	}
}

func TestFormat(t *testing.T) {
	ds := []Diag[looseLoc]{
		{Loc: looseLoc{"a"}, Severity: SevError, Code: "XX001", Message: "one"},
		{Loc: looseLoc{"bb"}, Severity: SevInfo, Code: "XX002", Message: "two"},
	}
	want := "u: a: error: XX001: one\nu: bb: info: XX002: two\n"
	if got := Format(ds, "u"); got != want {
		t.Errorf("Format = %q, want %q", got, want)
	}
}

package hc

import (
	"strings"
	"testing"

	"balsabm/internal/cell"
	"balsabm/internal/dpath"
	"balsabm/internal/sim"
)

func sampleNetlist() *Netlist {
	n := &Netlist{Name: "sample"}
	n.Add(&Component{Kind: KSequencer, Name: "top", Act: "go", Subs: []string{"f1", "f2"}})
	n.Add(&Component{Kind: KVariable, Name: "v", Width: 8, Write: "v.w", Reads: []string{"v.r1"}})
	n.Add(&Component{Kind: KConst, Name: "c", Out: "k", Value: 5, Width: 8})
	n.Add(&Component{Kind: KFetch, Name: "f1c", Act: "f1", Src: "k", Dst: "v.w"})
	n.Add(&Component{Kind: KFunc, Name: "inc", Out: "vp1", Op: "add", Ins: []string{"v.r1", "k2"}, Width: 8})
	n.Add(&Component{Kind: KConst, Name: "c2", Out: "k2", Value: 1, Width: 8})
	n.Add(&Component{Kind: KFetch, Name: "f2c", Act: "f2", Src: "vp1", Dst: "out"})
	return n
}

func TestControlExtraction(t *testing.T) {
	n := sampleNetlist()
	ctl, err := n.Control()
	if err != nil {
		t.Fatal(err)
	}
	if len(ctl.Components) != 1 || ctl.Components[0].Name != "top" {
		t.Fatalf("control: %v", ctl.Format())
	}
	s := n.Stats()
	if s.Control != 1 || s.Datapath != 6 {
		t.Fatalf("stats: %+v", s)
	}
}

// Build + simulate: the sequencer is replaced by an environment that
// performs the two fetch activations in order; v must become 5 and the
// output push must carry 6.
func TestBuildAndRun(t *testing.T) {
	n := sampleNetlist()
	s := sim.New(cell.AMS035())
	b := dpath.NewBuilder(s)
	if err := n.Build(b); err != nil {
		t.Fatal(err)
	}
	var out []uint64
	b.EnvConsumePush("out", 0.2, func(v uint64) { out = append(out, v) })
	done := false
	s.Watch("f1_a", func(s *sim.Simulator, _ int, val bool) {
		if val {
			s.Schedule("f1_r", false, 0.1)
		} else {
			s.Schedule("f2_r", true, 0.1)
		}
	})
	s.Watch("f2_a", func(s *sim.Simulator, _ int, val bool) {
		if val {
			s.Schedule("f2_r", false, 0.1)
		} else {
			done = true
			s.Stop()
		}
	})
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	s.Schedule("f1_r", true, 0.1)
	if err := s.Run(1e6, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if !done || len(out) != 1 || out[0] != 6 {
		t.Fatalf("done=%v out=%v want [6]", done, out)
	}
}

func TestBuildErrors(t *testing.T) {
	bad := &Netlist{Name: "bad"}
	bad.Add(&Component{Kind: KFunc, Name: "f", Out: "o", Op: "frobnicate", Width: 4})
	s := sim.New(cell.AMS035())
	if err := bad.Build(dpath.NewBuilder(s)); err == nil {
		t.Fatal("unknown operator accepted")
	}
	bad2 := &Netlist{Name: "bad2"}
	bad2.Add(&Component{Kind: KMemRead, Name: "r", Mem: "nope", Out: "o", Addr: "a", Width: 4})
	if err := bad2.Build(dpath.NewBuilder(sim.New(cell.AMS035()))); err == nil {
		t.Fatal("unknown memory accepted")
	}
	bad3 := &Netlist{Name: "bad3"}
	bad3.Add(&Component{Kind: "gizmo", Name: "g"})
	if err := bad3.Build(dpath.NewBuilder(sim.New(cell.AMS035()))); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestControlErrors(t *testing.T) {
	n := &Netlist{Name: "x"}
	n.Add(&Component{Kind: KSequencer, Name: "s", Act: "a"})
	if _, err := n.Control(); err == nil {
		t.Fatal("sequencer without subs accepted")
	}
	n2 := &Netlist{Name: "y"}
	n2.Add(&Component{Kind: KCall, Name: "c", Subs: []string{"one"}, Out: "o"})
	if _, err := n2.Control(); err == nil {
		t.Fatal("one-way call accepted")
	}
}

func TestFuncOpsTable(t *testing.T) {
	cases := []struct {
		op   string
		ins  []uint64
		want uint64
	}{
		{"add", []uint64{3, 4}, 7},
		{"sub", []uint64{10, 4}, 6},
		{"and", []uint64{6, 3}, 2},
		{"or", []uint64{6, 3}, 7},
		{"xor", []uint64{6, 3}, 5},
		{"shl", []uint64{1, 3}, 8},
		{"shr", []uint64{8, 3}, 1},
		{"eq", []uint64{5, 5}, 1},
		{"ne", []uint64{5, 5}, 0},
		{"lt", []uint64{4, 5}, 1},
		{"id", []uint64{9}, 9},
		{"sext13", []uint64{0x1FFF}, ^uint64(0)},
		{"sext13", []uint64{5}, 5},
	}
	for _, c := range cases {
		f, ok := FuncOps[c.op]
		if !ok {
			t.Fatalf("missing op %s", c.op)
		}
		if got := f(c.ins); got != c.want {
			t.Errorf("%s(%v) = %d, want %d", c.op, c.ins, got, c.want)
		}
	}
}

func TestFormatAndUsers(t *testing.T) {
	n := sampleNetlist()
	text := n.Format()
	for _, want := range []string{"(breeze sample", "component sequencer top", "(subs f1 f2)", "(value 5)"} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in:\n%s", want, text)
		}
	}
	users := n.ChannelUsers()
	if len(users["f1"]) != 2 { // sequencer + fetch
		t.Fatalf("f1 users: %v", users["f1"])
	}
	if len(users["v.w"]) != 2 { // variable + fetch
		t.Fatalf("v.w users: %v", users["v.w"])
	}
}

func TestMemories(t *testing.T) {
	n := &Netlist{Name: "m"}
	n.Add(&Component{Kind: KMemory, Name: "ram", Width: 8, Size: 4})
	if len(n.Memories()) != 1 {
		t.Fatal("memory not listed")
	}
}

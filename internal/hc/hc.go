// Package hc models handshake-component netlists: the intermediate
// representation balsa-c produces by syntax-directed translation (the
// paper's ".sbreeze" netlists of Fig 1). A netlist mixes control
// components (sequencers, concurs, calls — dataless) and datapath
// components (variables, transferrers, function units, selectors,
// memories). The back-end splits it: control components become CH
// programs (package chmap) and are optimized and synthesized; datapath
// components are instantiated behaviorally (package dpath).
package hc

import (
	"fmt"
	"sort"
	"strings"

	"balsabm/internal/chmap"
	"balsabm/internal/core"
	"balsabm/internal/dpath"
)

// Kind names for components.
const (
	KSequencer = "sequencer"
	KConcur    = "concur"
	KCall      = "call"
	KVariable  = "variable"
	KFetch     = "fetch"
	KFunc      = "func"
	KConst     = "const"
	KCaseSel   = "casesel"
	KContinue  = "continue"
	KMemory    = "memory"
	KMemRead   = "memread"
	KMemWrite  = "memwrite"
)

// Component is one handshake component.
type Component struct {
	Kind string
	Name string

	// Control fields.
	Act  string   // activation channel (passive side)
	Subs []string // ordered sub-channels (active side)

	// Datapath fields.
	Width int
	Value uint64   // const
	Op    string   // func operator
	Write string   // variable write channel
	Reads []string // variable read channels
	Src   string   // fetch source (pull)
	Dst   string   // fetch destination (push)
	Out   string   // func/const served pull channel
	Ins   []string // func inputs (pull)
	Sel   string   // casesel selector channel
	Outs  []string // casesel branch activations
	Size  int      // memory words
	Mem   string   // memread/memwrite: memory name
	Addr  string   // memread/memwrite: address pull channel
	Data  string   // memwrite: data pull channel
}

// Netlist is a handshake-component netlist for one design.
type Netlist struct {
	Name       string
	Components []*Component
}

// Add appends a component.
func (n *Netlist) Add(c *Component) { n.Components = append(n.Components, c) }

// IsControl reports whether the component belongs to the control part.
func (c *Component) IsControl() bool {
	switch c.Kind {
	case KSequencer, KConcur, KCall:
		return true
	}
	return false
}

// Control extracts the control part as a CH netlist, using the
// Balsa-to-CH templates of package chmap.
func (n *Netlist) Control() (*core.Netlist, error) {
	out := &core.Netlist{}
	for _, c := range n.Components {
		switch c.Kind {
		case KSequencer:
			if len(c.Subs) == 0 {
				return nil, fmt.Errorf("hc: %s: sequencer without sub-channels", c.Name)
			}
			out.Components = append(out.Components, chmap.Sequencer(c.Name, c.Act, c.Subs...))
		case KConcur:
			out.Components = append(out.Components, chmap.Concur(c.Name, c.Act, c.Subs...))
		case KCall:
			if len(c.Subs) < 2 {
				return nil, fmt.Errorf("hc: %s: call needs at least two call sites", c.Name)
			}
			out.Components = append(out.Components, chmap.Call(c.Name, c.Subs, c.Out))
		}
	}
	return out, nil
}

// FuncOps is the operator table shared by the compiler and the
// datapath instantiation. Each operator computes on full uint64 values;
// the result is masked to the component width by Build.
var FuncOps = map[string]func(ins []uint64) uint64{
	"add": func(ins []uint64) uint64 { return ins[0] + ins[1] },
	"sub": func(ins []uint64) uint64 { return ins[0] - ins[1] },
	"and": func(ins []uint64) uint64 { return ins[0] & ins[1] },
	"or":  func(ins []uint64) uint64 { return ins[0] | ins[1] },
	"xor": func(ins []uint64) uint64 { return ins[0] ^ ins[1] },
	"shl": func(ins []uint64) uint64 { return ins[0] << (ins[1] & 63) },
	"shr": func(ins []uint64) uint64 { return ins[0] >> (ins[1] & 63) },
	"eq": func(ins []uint64) uint64 {
		if ins[0] == ins[1] {
			return 1
		}
		return 0
	},
	"ne": func(ins []uint64) uint64 {
		if ins[0] != ins[1] {
			return 1
		}
		return 0
	},
	"lt": func(ins []uint64) uint64 {
		if ins[0] < ins[1] {
			return 1
		}
		return 0
	},
	"not": func(ins []uint64) uint64 { return ^ins[0] },
	"sext13": func(ins []uint64) uint64 {
		v := ins[0] & 0x1FFF
		if v&0x1000 != 0 {
			v |= ^uint64(0x1FFF)
		}
		return v
	},
	"id": func(ins []uint64) uint64 { return ins[0] },
}

func mask(width int) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(width)) - 1
}

// Build instantiates the datapath part into a dpath builder. Memories
// are created first so read/write ports can attach.
func (n *Netlist) Build(b *dpath.Builder) error {
	mems := map[string]*dpath.Memory{}
	for _, c := range n.Components {
		if c.Kind == KMemory {
			mems[c.Name] = b.Memory(c.Size, c.Width)
		}
	}
	for _, c := range n.Components {
		switch c.Kind {
		case KSequencer, KConcur, KCall, KMemory:
			// control side or already created
		case KVariable:
			b.Variable(c.Name, c.Width, c.Write, c.Reads...)
		case KFetch:
			b.Fetch(c.Act, c.Src, c.Dst)
		case KFunc:
			f, ok := FuncOps[c.Op]
			if !ok {
				return fmt.Errorf("hc: %s: unknown operator %q", c.Name, c.Op)
			}
			w := c.Width
			op := c.Op
			b.Func(c.Out, c.Width, func(ins []uint64) uint64 {
				_ = op
				return f(ins) & mask(w)
			}, c.Ins...)
		case KConst:
			b.Const(c.Out, c.Value&mask(c.Width))
		case KCaseSel:
			b.CaseSel(c.Act, c.Sel, c.Outs...)
		case KContinue:
			b.EnvServeSync(c.Act, dpath.AckDelay)
		case KMemRead:
			m, ok := mems[c.Mem]
			if !ok {
				return fmt.Errorf("hc: %s: unknown memory %q", c.Name, c.Mem)
			}
			m.ReadPort(c.Out, c.Addr, c.Width)
		case KMemWrite:
			m, ok := mems[c.Mem]
			if !ok {
				return fmt.Errorf("hc: %s: unknown memory %q", c.Name, c.Mem)
			}
			m.WritePort(c.Act, c.Addr, c.Data, c.Width)
		default:
			return fmt.Errorf("hc: %s: unknown component kind %q", c.Name, c.Kind)
		}
	}
	return nil
}

// Memories returns the memory components (for program loading in
// benchmarks).
func (n *Netlist) Memories() []*Component {
	var out []*Component
	for _, c := range n.Components {
		if c.Kind == KMemory {
			out = append(out, c)
		}
	}
	return out
}

// Stats summarizes the netlist.
type Stats struct {
	Control  int
	Datapath int
}

// Stats counts control and datapath components.
func (n *Netlist) Stats() Stats {
	s := Stats{}
	for _, c := range n.Components {
		if c.IsControl() {
			s.Control++
		} else {
			s.Datapath++
		}
	}
	return s
}

// Format renders the netlist in a breeze-like s-expression text form.
func (n *Netlist) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "(breeze %s\n", n.Name)
	for _, c := range n.Components {
		sb.WriteString("  (component " + c.Kind + " " + c.Name)
		emit := func(key, val string) {
			if val != "" {
				fmt.Fprintf(&sb, " (%s %s)", key, val)
			}
		}
		emitList := func(key string, vals []string) {
			if len(vals) > 0 {
				fmt.Fprintf(&sb, " (%s %s)", key, strings.Join(vals, " "))
			}
		}
		emit("act", c.Act)
		emitList("subs", c.Subs)
		if c.Width > 0 {
			fmt.Fprintf(&sb, " (width %d)", c.Width)
		}
		if c.Kind == KConst {
			fmt.Fprintf(&sb, " (value %d)", c.Value)
		}
		if c.Size > 0 {
			fmt.Fprintf(&sb, " (size %d)", c.Size)
		}
		emit("op", c.Op)
		emit("write", c.Write)
		emitList("reads", c.Reads)
		emit("src", c.Src)
		emit("dst", c.Dst)
		emit("out", c.Out)
		emitList("ins", c.Ins)
		emit("sel", c.Sel)
		emitList("outs", c.Outs)
		emit("mem", c.Mem)
		emit("addr", c.Addr)
		emit("data", c.Data)
		sb.WriteString(")\n")
	}
	sb.WriteString(")\n")
	return sb.String()
}

// ChannelUsers maps each channel to the component names touching it
// (for diagnostics and tests).
func (n *Netlist) ChannelUsers() map[string][]string {
	users := map[string][]string{}
	add := func(ch, comp string) {
		if ch != "" {
			users[ch] = append(users[ch], comp)
		}
	}
	for _, c := range n.Components {
		add(c.Act, c.Name)
		for _, s := range c.Subs {
			add(s, c.Name)
		}
		add(c.Write, c.Name)
		for _, r := range c.Reads {
			add(r, c.Name)
		}
		add(c.Src, c.Name)
		add(c.Dst, c.Name)
		add(c.Out, c.Name)
		for _, i := range c.Ins {
			add(i, c.Name)
		}
		add(c.Sel, c.Name)
		for _, o := range c.Outs {
			add(o, c.Name)
		}
		add(c.Addr, c.Name)
		add(c.Data, c.Name)
	}
	for ch := range users {
		sort.Strings(users[ch])
	}
	return users
}

package gates

import (
	"strings"
	"testing"

	"balsabm/internal/cell"
)

// buildHalfAdder wires sum = XOR(a,b), carry = AND(a,b).
func buildHalfAdder() *Netlist {
	nl := New("halfadder")
	a, b := nl.Net("a"), nl.Net("b")
	sum, carry := nl.Net("sum"), nl.Net("carry")
	nl.Inputs = append(nl.Inputs, a, b)
	nl.Outputs = append(nl.Outputs, sum, carry)
	nl.AddInstance("XOR2", []int{a, b}, sum, 1)
	nl.AddInstance("AND2", []int{a, b}, carry, 2)
	return nl
}

func TestSettleAndValue(t *testing.T) {
	lib := cell.AMS035()
	nl := buildHalfAdder()
	for _, tc := range []struct {
		a, b, sum, carry bool
	}{
		{false, false, false, false},
		{true, false, true, false},
		{true, true, false, true},
	} {
		vals, err := nl.Settle(lib, map[string]bool{"a": tc.a, "b": tc.b}, nil)
		if err != nil {
			t.Fatal(err)
		}
		sum, _ := nl.Value(vals, "sum")
		carry, _ := nl.Value(vals, "carry")
		if sum != tc.sum || carry != tc.carry {
			t.Fatalf("a=%v b=%v: sum=%v carry=%v", tc.a, tc.b, sum, carry)
		}
	}
	if _, err := nl.Value(nil, "bogus"); err == nil {
		t.Fatal("expected error for unknown net")
	}
	if _, err := nl.Settle(lib, map[string]bool{"bogus": true}, nil); err == nil {
		t.Fatal("expected error for unknown input")
	}
}

func TestSettleDetectsOscillation(t *testing.T) {
	lib := cell.AMS035()
	nl := New("osc")
	n := nl.Net("x")
	nl.AddInstance("INV", []int{n}, n, 0)
	if _, err := nl.Settle(lib, nil, nil); err == nil {
		t.Fatal("ring oscillator must not settle")
	}
}

func TestAreaAndCritical(t *testing.T) {
	lib := cell.AMS035()
	nl := buildHalfAdder()
	wantArea := lib.Get("XOR2").Area + lib.Get("AND2").Area
	if got := nl.Area(lib); got != wantArea {
		t.Fatalf("area %v want %v", got, wantArea)
	}
	// Chain: INV -> AND2 -> output: critical = INV + AND2.
	nl2 := New("chain")
	a := nl2.Net("a")
	m := nl2.Net("m")
	out := nl2.Net("out")
	nl2.Inputs = append(nl2.Inputs, a)
	nl2.Outputs = append(nl2.Outputs, out)
	nl2.AddInstance("INV", []int{a}, m, 1)
	nl2.AddInstance("AND2", []int{m, a}, out, 2)
	want := lib.Get("INV").Delay + lib.Get("AND2").Delay
	if got := nl2.CriticalDelay(lib); got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("critical %v want %v", got, want)
	}
}

func TestCriticalCutsFeedback(t *testing.T) {
	lib := cell.AMS035()
	nl := New("fb")
	a := nl.Net("a")
	y := nl.Net("y")
	nl.Inputs = append(nl.Inputs, a)
	nl.AddInstance("C2", []int{a, y}, y, 0)
	// Must terminate and report a finite delay.
	if d := nl.CriticalDelay(lib); d <= 0 || d > 1 {
		t.Fatalf("critical %v", d)
	}
}

func TestFreshAndConstZero(t *testing.T) {
	nl := New("x")
	a := nl.Fresh("t")
	b := nl.Fresh("t")
	if a == b {
		t.Fatal("fresh nets must be distinct")
	}
	c0 := nl.ConstZero()
	if c0 != nl.ConstZero() {
		t.Fatal("const zero must be stable")
	}
}

func TestDriverAndCounts(t *testing.T) {
	nl := buildHalfAdder()
	if d := nl.Driver(nl.Net("sum")); d != 0 {
		t.Fatalf("driver of sum = %d", d)
	}
	if d := nl.Driver(nl.Net("a")); d != -1 {
		t.Fatalf("input has driver %d", d)
	}
	counts := nl.CellCounts()
	if counts["XOR2"] != 1 || counts["AND2"] != 1 {
		t.Fatalf("counts %v", counts)
	}
}

// The lazy driver index must reflect structural edits: AddInstance
// invalidates it, interning new nets extends it, and netlists produced
// by Rename and Merge build their own.
func TestDriverIndexInvalidation(t *testing.T) {
	nl := buildHalfAdder()
	if d := nl.Driver(nl.Net("sum")); d != 0 {
		t.Fatalf("driver of sum = %d, want 0", d)
	}
	// The index is now built; placing a new instance must invalidate it.
	c := nl.Net("c")
	maj := nl.Net("maj")
	nl.AddInstance("AND2", []int{nl.Net("a"), c}, maj, 0)
	if d := nl.Driver(maj); d != 2 {
		t.Fatalf("driver of maj = %d after AddInstance, want 2", d)
	}
	// A net interned after the index was built is undriven, not
	// out-of-range.
	late := nl.Net("late")
	if d := nl.Driver(late); d != -1 {
		t.Fatalf("late net has driver %d", d)
	}
	// First driver wins for (invalid, NL001-flagged) multi-driven nets,
	// matching the original linear scan.
	nl.AddInstance("OR2", []int{nl.Net("a"), c}, nl.Net("sum"), 0)
	if d := nl.Driver(nl.Net("sum")); d != 0 {
		t.Fatalf("multi-driven sum resolves to %d, want first driver 0", d)
	}
	if d := nl.Driver(-1); d != -1 {
		t.Fatal("negative net must have no driver")
	}

	// Rename deep-copies; its index is fresh and edits to the copy must
	// not leak back.
	orig := buildHalfAdder()
	_ = orig.Driver(orig.Net("sum")) // build the original's index
	cp := orig.Rename("copy", map[string]string{"sum": "total"})
	if d := cp.Driver(cp.Net("total")); d != 0 {
		t.Fatalf("renamed copy: driver of total = %d", d)
	}
	cp.AddInstance("INV", []int{cp.Net("a")}, cp.Fresh("t"), 0)
	if len(orig.Instances) != 2 || orig.Driver(orig.Net("sum")) != 0 {
		t.Fatal("editing the copy disturbed the original")
	}

	// Merge builds a new netlist through AddInstance; its index must
	// resolve instances from both parts.
	m := Merge("both", []*Netlist{buildHalfAdder(), buildHalfAdder()})
	for _, net := range []string{"sum", "carry"} {
		if d := m.Driver(m.Net(net)); d < 0 {
			t.Fatalf("merged netlist: %s undriven", net)
		}
	}
}

func TestVerilogOutput(t *testing.T) {
	lib := cell.AMS035()
	nl := buildHalfAdder()
	v := nl.Verilog(lib)
	for _, want := range []string{
		"module halfadder (a, b, sum, carry);",
		"input a;", "output sum;",
		"XOR2 g0 (sum, a, b);",
		"endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Fatalf("missing %q in:\n%s", want, v)
		}
	}
}

func TestSettleWithCElementState(t *testing.T) {
	lib := cell.AMS035()
	nl := New("c")
	a, b := nl.Net("a"), nl.Net("b")
	out := nl.Net("out")
	nl.Inputs = append(nl.Inputs, a, b)
	nl.Outputs = append(nl.Outputs, out)
	nl.AddInstance("C2", []int{a, b}, out, 0)
	vals, err := nl.Settle(lib, map[string]bool{"a": true, "b": true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Hold with prior state: a falls, out must stay high.
	vals, err = nl.Settle(lib, map[string]bool{"a": false, "b": true}, vals)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := nl.Value(vals, "out")
	if !got {
		t.Fatal("C-element lost its state across Settle calls")
	}
}

// Rename must deep-copy the structure and rewrite net names
// simultaneously (swaps included), leaving the original untouched.
func TestRename(t *testing.T) {
	n := New("orig")
	a, b := n.Net("a_r"), n.Net("b_r")
	out := n.Net("z_a")
	n.Inputs = []int{a, b}
	n.Outputs = []int{out}
	n.AddInstance("NAND2", []int{a, b}, out, 1)

	r := n.Rename("copy", map[string]string{"a_r": "b_r", "b_r": "a_r"})
	if r.Name != "copy" {
		t.Fatalf("name %q", r.Name)
	}
	if got := r.NetNames[a]; got != "b_r" {
		t.Fatalf("net %d renamed to %q, want b_r", a, got)
	}
	if got := r.NetNames[b]; got != "a_r" {
		t.Fatalf("net %d renamed to %q, want a_r", b, got)
	}
	if !r.HasNet("z_a") {
		t.Fatal("unmapped name must survive")
	}
	// Structure is shared by id, not name: the instance still reads
	// nets a and b.
	if len(r.Instances) != 1 || r.Instances[0].Inputs[0] != a {
		t.Fatalf("instance structure changed: %+v", r.Instances)
	}
	// Deep copy: mutating the copy must not touch the original.
	r.Instances[0].Inputs[0] = out
	if n.Instances[0].Inputs[0] != a {
		t.Fatal("Rename aliased instance inputs")
	}
	if n.NetNames[a] != "a_r" {
		t.Fatal("original net names changed")
	}
}

package gates

import "fmt"

// Merge wires a set of mapped netlists (the controllers of one design
// arm) into a single circuit, with the same connection semantics as
// the event simulator (sim.Simulator.AddNetlist): primary input and
// output nets keep their names and unify across parts — a channel wire
// driven by one controller and read by another becomes one net — while
// internal nets are namespaced "part.net" to stay private (two
// controllers both using y0 or t$5 must not short). Tied-low nets
// unify onto the merged circuit's own Const0.
//
// The merged primary outputs are every part's outputs in part order
// (they drive the datapath and environment even when also consumed by
// a sibling controller); the merged primary inputs are the part inputs
// no part drives — the environment's side of the handshake. Duplicate
// part names are disambiguated with a ".2", ".3", ... suffix so the
// namespacing stays injective.
//
// Parts must be structurally well-formed (net ids in range); run
// netlint on the parts first when in doubt.
func Merge(name string, parts []*Netlist) *Netlist {
	out, _ := MergeParts(name, parts)
	return out
}

// MergeParts is Merge plus the per-part net remapping: remaps[pi][id]
// is the merged net id of part pi's net id. Consumers that need to
// address a part's private nets after the merge (hazver forcing each
// controller's y* cut points) use the remap instead of reconstructing
// the "part.net" naming rules.
func MergeParts(name string, parts []*Netlist) (*Netlist, [][]int) {
	out := New(name)
	seen := map[string]int{}
	remaps := make([][]int, len(parts))
	for pi, p := range parts {
		partName := p.Name
		seen[partName]++
		if n := seen[partName]; n > 1 {
			partName = fmt.Sprintf("%s.%d", partName, n)
		}
		boundary := make([]bool, len(p.NetNames))
		for _, id := range p.Inputs {
			boundary[id] = true
		}
		for _, id := range p.Outputs {
			boundary[id] = true
		}
		remap := make([]int, len(p.NetNames))
		for id, netName := range p.NetNames {
			switch {
			case id == p.Const0:
				remap[id] = out.ConstZero()
			case boundary[id]:
				remap[id] = out.Net(netName)
			default:
				remap[id] = out.Net(partName + "." + netName)
			}
		}
		remaps[pi] = remap
		for _, inst := range p.Instances {
			ins := make([]int, len(inst.Inputs))
			for i, in := range inst.Inputs {
				ins[i] = remap[in]
			}
			out.AddInstance(inst.Cell, ins, remap[inst.Output], inst.Module)
		}
	}
	driven := make(map[int]bool, len(out.Instances))
	for _, inst := range out.Instances {
		driven[inst.Output] = true
	}
	inPorts := map[int]bool{}
	outPorts := map[int]bool{}
	for pi, p := range parts {
		for _, id := range p.Outputs {
			m := remaps[pi][id]
			if !outPorts[m] {
				outPorts[m] = true
				out.Outputs = append(out.Outputs, m)
			}
		}
	}
	for pi, p := range parts {
		for _, id := range p.Inputs {
			m := remaps[pi][id]
			if !driven[m] && !inPorts[m] && !outPorts[m] {
				inPorts[m] = true
				out.Inputs = append(out.Inputs, m)
			}
		}
	}
	return out, remaps
}

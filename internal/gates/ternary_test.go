package gates

import (
	"testing"

	"balsabm/internal/cell"
)

// Kleene spot checks: X propagates exactly when the binary inputs do
// not already determine the output.
func TestTernaryKleene(t *testing.T) {
	lib := cell.AMS035()
	nl := New("k")
	a, b := nl.Net("a"), nl.Net("b")
	nand := nl.Net("nand")
	xor := nl.Net("xor")
	nl.Inputs = append(nl.Inputs, a, b)
	nl.AddInstance("NAND2", []int{a, b}, nand, 0)
	nl.AddInstance("XOR2", []int{a, b}, xor, 0)
	prog, err := Compile(nl, lib, nil)
	if err != nil {
		t.Fatal(err)
	}
	ev := prog.NewTernaryEval()
	cases := []struct {
		a, b, nand, xor uint8
	}{
		{T0, T0, T1, T0},
		{T1, T1, T0, T0},
		{T0, TX, T1, TX}, // 0 controls NAND, not XOR
		{T1, TX, TX, TX},
		{TX, TX, TX, TX},
	}
	ev.Reset()
	for i, c := range cases {
		ev.Assign(a, uint(i), c.a)
		ev.Assign(b, uint(i), c.b)
	}
	ev.Run()
	for i, c := range cases {
		if got := ev.At(nand, uint(i)); got != c.nand {
			t.Errorf("case %d: NAND(%s,%s) = %s, want %s", i, TernString(c.a), TernString(c.b), TernString(got), TernString(c.nand))
		}
		if got := ev.At(xor, uint(i)); got != c.xor {
			t.Errorf("case %d: XOR(%s,%s) = %s, want %s", i, TernString(c.a), TernString(c.b), TernString(got), TernString(c.xor))
		}
	}
}

// A C-element probe on a forced net must fold the forced value in as
// its previous output: with one input at X it holds a matching
// previous state but goes X when the previous state is the minority.
func TestTernaryCProbe(t *testing.T) {
	lib := cell.AMS035()
	nl := New("cp")
	a, b := nl.Net("a"), nl.Net("b")
	y := nl.Net("y")
	nl.Inputs = append(nl.Inputs, a, b)
	nl.AddInstance("C2", []int{a, b}, y, 0)
	prog, err := Compile(nl, lib, map[int]bool{y: true})
	if err != nil {
		t.Fatal(err)
	}
	ev := prog.NewTernaryEval()
	cases := []struct {
		a, b, prev, want uint8
	}{
		{T1, T1, T0, T1}, // all-1 fires regardless of state
		{T0, TX, T0, T0}, // holds 0, and X input cannot fire it alone
		{T1, TX, T1, T1}, // holds 1
		{T1, TX, T0, TX}, // may fire if X resolves to 1, may hold 0
		{TX, TX, T1, TX}, // may drop if both resolve 0
		{T0, T1, TX, TX}, // disagreeing inputs hold the unknown state
	}
	ev.Reset()
	for i, c := range cases {
		ev.Assign(a, uint(i), c.a)
		ev.Assign(b, uint(i), c.b)
		ev.Assign(y, uint(i), c.prev)
	}
	ev.Run()
	hi, lo, ok := ev.Driver(y)
	if !ok {
		t.Fatal("Driver(y) not found")
	}
	for i, c := range cases {
		got := ternFromBits(hi>>uint(i)&1, lo>>uint(i)&1)
		if got != c.want {
			t.Errorf("case %d: C2(%s,%s|prev %s) = %s, want %s",
				i, TernString(c.a), TernString(c.b), TernString(c.prev), TernString(got), TernString(c.want))
		}
	}
}

// lcg is the deterministic pseudo-random stream the repo's sampling
// paths use (no math/rand, no seeds from the clock).
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r >> 16)
}

// randTernaryNetlist builds a random acyclic netlist over the AMS035
// combinational cells, with a stateful C2 probe driving the single
// forced output net.
func randTernaryNetlist(r *lcg, gatesN int) (*Netlist, []int, int) {
	nl := New("fuzz")
	kinds := []struct {
		cell string
		ins  int
	}{
		{"INV", 1}, {"BUF", 1}, {"NAND2", 2}, {"NAND3", 3},
		{"AND2", 2}, {"OR2", 2}, {"NOR2", 2}, {"XOR2", 2},
	}
	var inputs []int
	for i := 0; i < 5; i++ {
		id := nl.Fresh("in")
		nl.Inputs = append(nl.Inputs, id)
		inputs = append(inputs, id)
	}
	avail := append([]int(nil), inputs...)
	for g := 0; g < gatesN; g++ {
		k := kinds[r.next()%uint64(len(kinds))]
		ins := make([]int, k.ins)
		for j := range ins {
			ins[j] = avail[r.next()%uint64(len(avail))]
		}
		out := nl.Fresh("t")
		nl.AddInstance(k.cell, ins, out, 0)
		avail = append(avail, out)
	}
	out := nl.Net("out")
	nl.Outputs = append(nl.Outputs, out)
	cins := []int{avail[r.next()%uint64(len(avail))], avail[r.next()%uint64(len(avail))]}
	nl.AddInstance("C2", cins, out, 0)
	return nl, inputs, out
}

// The compiled dual-rail ternary evaluator must agree with the
// interpreted ternary settle oracle on every net and on the forced
// probe, across random circuits and random ternary stimuli.
func TestTernaryCompiledVsInterpreted(t *testing.T) {
	lib := cell.AMS035()
	r := lcg(0x9e3779b97f4a7c15)
	for round := 0; round < 25; round++ {
		nl, inputs, out := randTernaryNetlist(&r, 3+int(r.next()%40))
		forced := map[int]bool{out: true}
		prog, err := Compile(nl, lib, forced)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		ev := prog.NewTernaryEval()
		ev.Reset()
		stim := make([][]uint8, 64)
		for l := 0; l < 64; l++ {
			stim[l] = make([]uint8, len(nl.NetNames))
			for i := range stim[l] {
				stim[l][i] = TX
			}
			for _, in := range inputs {
				v := uint8(r.next() % 3)
				stim[l][in] = v
				ev.Assign(in, uint(l), v)
			}
			v := uint8(r.next() % 3)
			stim[l][out] = v
			ev.Assign(out, uint(l), v)
		}
		ev.Run()
		drv := nl.DriverIndex()
		for l := 0; l < 64; l++ {
			vals := stim[l]
			if err := SettleTernary(nl, lib, forced, vals); err != nil {
				t.Fatalf("round %d lane %d: %v", round, l, err)
			}
			for net := range nl.NetNames {
				if drv[net] < 0 || forced[net] {
					continue
				}
				if got, want := ev.At(net, uint(l)), vals[net]; got != want {
					t.Fatalf("round %d lane %d net %q: compiled %s, interpreted %s",
						round, l, nl.NetNames[net], TernString(got), TernString(want))
				}
			}
			wantDrv, _ := DriveTernary(nl, lib, drv, vals, out)
			hi, lo, _ := ev.Driver(out)
			if got := ternFromBits(hi>>uint(l)&1, lo>>uint(l)&1); got != wantDrv {
				t.Fatalf("round %d lane %d: Driver(out) compiled %s, interpreted %s",
					round, l, TernString(got), TernString(wantDrv))
			}
		}
	}
}

// Ternary evaluation must refine binary evaluation: with no X in the
// stimulus the ternary lanes and the boolean lanes agree exactly.
func TestTernaryMatchesBinary(t *testing.T) {
	lib := cell.AMS035()
	r := lcg(12345)
	for round := 0; round < 10; round++ {
		nl, inputs, out := randTernaryNetlist(&r, 3+int(r.next()%30))
		forced := map[int]bool{out: true}
		prog, err := Compile(nl, lib, forced)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		tev := prog.NewTernaryEval()
		bev := prog.NewEval()
		tev.Reset()
		bev.Reset()
		words := make(map[int]uint64)
		for _, in := range append(append([]int(nil), inputs...), out) {
			w := r.next()
			words[in] = w
			bev.Set(in, w)
			for l := uint(0); l < 64; l++ {
				if w>>l&1 != 0 {
					tev.Assign(in, l, T1)
				} else {
					tev.Assign(in, l, T0)
				}
			}
		}
		tev.Run()
		bev.Run()
		for net := range nl.NetNames {
			if nl.Driver(net) < 0 || forced[net] {
				continue
			}
			bw := bev.Word(net)
			for l := uint(0); l < 64; l++ {
				want := T0
				if bw>>l&1 != 0 {
					want = T1
				}
				if got := tev.At(net, l); got != want {
					t.Fatalf("round %d net %q lane %d: ternary %s, binary %s",
						round, nl.NetNames[net], l, TernString(got), TernString(want))
				}
			}
		}
	}
}

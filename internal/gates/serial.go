package gates

import (
	"encoding/json"
	"fmt"
)

// netlistJSON is the stable on-disk shape of a Netlist. Only the
// structural fields are serialized; the interned-name index and the
// lazy driver index are rebuilt on decode.
type netlistJSON struct {
	Name      string     `json:"name"`
	NetNames  []string   `json:"netNames"`
	Inputs    []int      `json:"inputs"`
	Outputs   []int      `json:"outputs"`
	Instances []Instance `json:"instances"`
	Const0    int        `json:"const0"`
}

// EncodeJSON serializes the netlist's structural content. The output
// is deterministic (no map-ordered fields) so it can live in the
// content-addressed artifact store.
func EncodeJSON(n *Netlist) ([]byte, error) {
	return json.Marshal(netlistJSON{
		Name:      n.Name,
		NetNames:  n.NetNames,
		Inputs:    n.Inputs,
		Outputs:   n.Outputs,
		Instances: n.Instances,
		Const0:    n.Const0,
	})
}

// DecodeJSON rebuilds a Netlist from EncodeJSON output, restoring the
// net-name index. Netlists with duplicate or dangling net references
// are rejected: a cached artifact that fails these checks is treated
// as corrupt rather than resynthesized into downstream stages.
func DecodeJSON(data []byte) (*Netlist, error) {
	var w netlistJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("gates: decode netlist: %w", err)
	}
	n := &Netlist{
		Name:      w.Name,
		NetNames:  w.NetNames,
		netIndex:  make(map[string]int, len(w.NetNames)),
		Inputs:    w.Inputs,
		Outputs:   w.Outputs,
		Instances: w.Instances,
		Const0:    w.Const0,
	}
	for id, name := range n.NetNames {
		if _, dup := n.netIndex[name]; dup {
			return nil, fmt.Errorf("gates: decode netlist %s: duplicate net %q", n.Name, name)
		}
		n.netIndex[name] = id
	}
	check := func(net int, what string) error {
		if net < -1 || net >= len(n.NetNames) {
			return fmt.Errorf("gates: decode netlist %s: %s references net %d of %d", n.Name, what, net, len(n.NetNames))
		}
		return nil
	}
	if err := check(n.Const0, "const0"); err != nil {
		return nil, err
	}
	for _, in := range n.Inputs {
		if err := check(in, "input"); err != nil {
			return nil, err
		}
	}
	for _, out := range n.Outputs {
		if err := check(out, "output"); err != nil {
			return nil, err
		}
	}
	for i, inst := range n.Instances {
		for _, in := range inst.Inputs {
			if err := check(in, fmt.Sprintf("instance %d input", i)); err != nil {
				return nil, err
			}
		}
		if err := check(inst.Output, fmt.Sprintf("instance %d output", i)); err != nil {
			return nil, err
		}
	}
	return n, nil
}

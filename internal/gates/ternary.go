// This file extends the compiled evaluator with a ternary (0/1/X)
// lane mode for static hazard verification (internal/hazver). Values
// follow Kleene's strong three-valued logic in a dual-rail encoding:
// every net carries two uint64 words, hi ("can settle to 1") and lo
// ("can settle to 0"); bit l of each word is lane l's value, so one
// pass evaluates 64 independent ternary vectors. 0 = (hi 0, lo 1),
// 1 = (hi 1, lo 0), X = (hi 1, lo 1). The encoding makes the Kleene
// connectives pure bitwise ops — NOT swaps the rails, AND is
// (hi1&hi2, lo1|lo2), OR is its dual — and arbitrary cells evaluate
// exactly through their truth table by dual minterm expansion: a lane
// can be 1 iff some ON-set minterm is consistent with its ternary
// inputs, can be 0 iff some OFF-set minterm is. Stateful cells (C
// elements, latches) fold the previous-output rails in as one more
// table variable, which on probe evaluation is the forced net's
// assigned value — the same fundamental-mode feedback convention as
// the boolean Eval.
//
// TernaryEval is the fast path; SettleTernary/DriveTernary are the
// interpreted reference (the fuzz oracle), a ternary fixed-point
// sweep in the style of Netlist.Settle that also covers netlists
// Compile rejects.
package gates

import (
	"fmt"

	"balsabm/internal/cell"
)

// Ternary net values. The zero value is logic 0, matching the boolean
// evaluator's power-up state; TX is "unknown / may glitch".
const (
	T0 uint8 = 0
	T1 uint8 = 1
	TX uint8 = 2
)

// TernString renders a ternary value as "0", "1" or "X".
func TernString(v uint8) string {
	switch v {
	case T0:
		return "0"
	case T1:
		return "1"
	default:
		return "X"
	}
}

// ternOp is the per-op ternary strategy, precomputed by NewTernaryEval
// so the hot loop never re-derives truth tables.
type ternOp uint8

const (
	tnRAIL ternOp = iota // kind-specialized rail formula (exact Kleene)
	tnLUT                // dual minterm expansion over tab (exact Kleene)
	tnSLOW               // per-lane interpreted cell evaluation
)

// TernaryEval is the mutable ternary evaluation state for one
// goroutine: two lane words per net. Create one per worker with
// NewTernaryEval; a TernaryEval must not be shared concurrently.
type TernaryEval struct {
	prog   *Program
	hi, lo []uint64
	strat  []ternOp    // per prog.ops entry
	tabs   [][2]uint64 // per prog.ops entry (tnLUT)
	pstrat []ternOp    // per prog.probeOps entry
	ptabs  [][2]uint64
	slow   []uint8 // tnSLOW per-lane scratch
	sben   []bool  // ternaryCell enumeration scratch
	xd     []uint8 // per-lane X depth, flat [net*64+lane]
	xdOK   bool
}

// ternStrategy picks the evaluation strategy for one compiled op.
func ternStrategy(op *evalOp) (ternOp, [2]uint64) {
	switch op.kind {
	case opBUF, opINV, opAND, opNAND, opOR, opNOR, opXOR:
		return tnRAIL, [2]uint64{}
	case opLUT:
		return tnLUT, op.tab
	default: // opC, opLATCH, opSLOW
		if op.cell != nil && len(op.ins) == op.cell.Inputs {
			if tab, ok := op.cell.TruthTable(); ok {
				return tnLUT, tab
			}
		}
		return tnSLOW, [2]uint64{}
	}
}

// NewTernaryEval allocates ternary evaluation state for the program.
func (p *Program) NewTernaryEval() *TernaryEval {
	e := &TernaryEval{
		prog:   p,
		hi:     make([]uint64, p.nets),
		lo:     make([]uint64, p.nets),
		strat:  make([]ternOp, len(p.ops)),
		tabs:   make([][2]uint64, len(p.ops)),
		pstrat: make([]ternOp, len(p.probeOps)),
		ptabs:  make([][2]uint64, len(p.probeOps)),
		slow:   make([]uint8, p.maxIns),
		sben:   make([]bool, p.maxIns+1),
	}
	for i := range p.ops {
		e.strat[i], e.tabs[i] = ternStrategy(&p.ops[i])
	}
	for i := range p.probeOps {
		e.pstrat[i], e.ptabs[i] = ternStrategy(&p.probeOps[i])
	}
	return e
}

// Reset sets every net to X in every lane — the "no assumptions"
// starting state. Callers then Assign the binary source values and
// leave changing burst inputs at X.
func (e *TernaryEval) Reset() {
	for i := range e.hi {
		e.hi[i] = ^uint64(0)
		e.lo[i] = ^uint64(0)
	}
	e.xdOK = false
}

// Assign gives a source net a ternary value in one lane. After Reset
// every lane is X, so assigning T0/T1 narrows the lane and TX is a
// no-op.
func (e *TernaryEval) Assign(net int, lane uint, v uint8) {
	switch v {
	case T0:
		e.hi[net] &^= 1 << lane
	case T1:
		e.lo[net] &^= 1 << lane
	}
}

// Word reads a net's dual-rail lane words after Run.
func (e *TernaryEval) Word(net int) (hi, lo uint64) { return e.hi[net], e.lo[net] }

// At reads one lane's ternary value after Run.
func (e *TernaryEval) At(net int, lane uint) uint8 {
	return ternFromBits(e.hi[net]>>lane&1, e.lo[net]>>lane&1)
}

func ternFromBits(h, l uint64) uint8 {
	switch {
	case h != 0 && l == 0:
		return T1
	case h == 0 && l != 0:
		return T0
	default:
		return TX
	}
}

// Run executes the levelized ternary pass: one evaluation per gate,
// no fixed-point iteration.
func (e *TernaryEval) Run() {
	ops := e.prog.ops
	for i := range ops {
		op := &ops[i]
		h, l := e.apply3(op, e.strat[i], e.tabs[i])
		e.hi[op.out], e.lo[op.out] = h, l
	}
	e.xdOK = false
}

// Driver evaluates the probe instance driving a forced net against
// the current ternary lane values, reporting ok=false if the net has
// no driver. The net's own assigned rails serve as the previous
// output for stateful probes.
func (e *TernaryEval) Driver(net int) (hi, lo uint64, ok bool) {
	pi, found := e.prog.probes[net]
	if !found {
		return 0, 0, false
	}
	h, l := e.apply3(&e.prog.probeOps[pi], e.pstrat[pi], e.ptabs[pi])
	return h, l, true
}

func (e *TernaryEval) apply3(op *evalOp, strat ternOp, tab [2]uint64) (uint64, uint64) {
	hi, lo := e.hi, e.lo
	ins := op.ins
	switch strat {
	case tnRAIL:
		switch op.kind {
		case opBUF:
			return hi[ins[0]], lo[ins[0]]
		case opINV:
			return lo[ins[0]], hi[ins[0]]
		case opAND, opNAND:
			h, l := hi[ins[0]], lo[ins[0]]
			for _, in := range ins[1:] {
				h &= hi[in]
				l |= lo[in]
			}
			if op.kind == opNAND {
				h, l = l, h
			}
			return h, l
		case opOR, opNOR:
			h, l := hi[ins[0]], lo[ins[0]]
			for _, in := range ins[1:] {
				h |= hi[in]
				l &= lo[in]
			}
			if op.kind == opNOR {
				h, l = l, h
			}
			return h, l
		default: // opXOR: fold pairwise; exact, every input appears once
			h, l := hi[ins[0]], lo[ins[0]]
			for _, in := range ins[1:] {
				h2, l2 := hi[in], lo[in]
				h, l = h&l2|l&h2, h&h2|l&l2
			}
			return h, l
		}
	case tnLUT:
		if tab[0] == tab[1] {
			return lutTernary(tab[0], ins, hi, lo, ^uint64(0))
		}
		// Stateful: the previous output is one more table variable,
		// with the net's current rails as its possibilities.
		h0, l0 := lutTernary(tab[0], ins, hi, lo, lo[op.out])
		h1, l1 := lutTernary(tab[1], ins, hi, lo, hi[op.out])
		return h0 | h1, l0 | l1
	default: // tnSLOW: per-lane interpreted evaluation
		scratch := e.slow[:len(ins)]
		var h, l uint64
		for ln := uint(0); ln < 64; ln++ {
			for j, in := range ins {
				scratch[j] = ternFromBits(hi[in]>>ln&1, lo[in]>>ln&1)
			}
			prev := ternFromBits(hi[op.out]>>ln&1, lo[op.out]>>ln&1)
			switch ternaryCell(op.cell, scratch, prev, e.sben) {
			case T1:
				h |= 1 << ln
			case T0:
				l |= 1 << ln
			default:
				h |= 1 << ln
				l |= 1 << ln
			}
		}
		return h, l
	}
}

// lutTernary evaluates a truth table over ternary lanes by dual
// minterm expansion: a lane can be 1 iff some ON-set minterm is
// consistent with the inputs' rails, can be 0 iff some OFF-set
// minterm is. mask gates every term (the stateful previous-output
// factor; all-ones when there is none).
func lutTernary(tab uint64, ins []int32, hi, lo []uint64, mask uint64) (h, l uint64) {
	if mask == 0 {
		return 0, 0
	}
	n := uint(len(ins))
	for m := uint(0); m < 1<<n; m++ {
		term := mask
		for j, in := range ins {
			if m>>uint(j)&1 != 0 {
				term &= hi[in]
			} else {
				term &= lo[in]
			}
		}
		if tab>>m&1 != 0 {
			h |= term
		} else {
			l |= term
		}
	}
	return h, l
}

// computeXD fills the per-lane X-propagation depth table: an X net's
// depth is 1 + the maximum depth of its X inputs in the same lane
// (sources and binary nets are depth 0). Because the ops are
// levelized this is a single sweep.
func (e *TernaryEval) computeXD() {
	if e.xdOK {
		return
	}
	if e.xd == nil {
		e.xd = make([]uint8, len(e.hi)*64)
	} else {
		for i := range e.xd {
			e.xd[i] = 0
		}
	}
	ops := e.prog.ops
	for i := range ops {
		op := &ops[i]
		xm := e.hi[op.out] & e.lo[op.out]
		if xm == 0 {
			continue
		}
		base := int(op.out) * 64
		for ln := uint(0); ln < 64; ln++ {
			if xm>>ln&1 == 0 {
				continue
			}
			d := uint8(0)
			for _, in := range op.ins {
				if e.hi[in]>>ln&1 != 0 && e.lo[in]>>ln&1 != 0 {
					if v := e.xd[int(in)*64+int(ln)]; v > d {
						d = v
					}
				}
			}
			if d < 255 {
				d++
			}
			e.xd[base+int(ln)] = d
		}
	}
	e.xdOK = true
}

// DriverXDepth returns the worst-case X-propagation depth of the
// probe driving a forced net over the selected lanes: the length of
// the longest chain of X-valued nets feeding an X driver output, 0
// when the driver is binary in every selected lane or the net has no
// driver.
func (e *TernaryEval) DriverXDepth(net int, lanes uint64) int {
	pi, found := e.prog.probes[net]
	if !found {
		return 0
	}
	op := &e.prog.probeOps[pi]
	h, l := e.apply3(op, e.pstrat[pi], e.ptabs[pi])
	xm := h & l & lanes
	if xm == 0 {
		return 0
	}
	e.computeXD()
	best := 0
	for ln := uint(0); ln < 64; ln++ {
		if xm>>ln&1 == 0 {
			continue
		}
		d := 0
		for _, in := range op.ins {
			if e.hi[in]>>ln&1 != 0 && e.lo[in]>>ln&1 != 0 {
				if v := int(e.xd[int(in)*64+int(ln)]); v > d {
					d = v
				}
			}
		}
		if d+1 > best {
			best = d + 1
		}
	}
	return best
}

// ternaryCell evaluates one cell over ternary inputs exactly, by
// enumerating every binary completion of the X inputs (and of the
// previous output, which stateful cells read) through cell.Eval.
// scratch must hold at least len(ins)+1 bools.
func ternaryCell(c *cell.Cell, ins []uint8, prev uint8, scratch []bool) uint8 {
	bins := scratch[:len(ins)]
	var xs []int // indices into ins that are X; -1 stands for prev
	for j, v := range ins {
		bins[j] = v == T1
		if v == TX {
			xs = append(xs, j)
		}
	}
	pv := prev == T1
	if prev == TX {
		xs = append(xs, -1)
	}
	if len(xs) > 20 {
		return TX // give up enumerating; conservative
	}
	saw0, saw1 := false, false
	for m := 0; m < 1<<uint(len(xs)); m++ {
		for bi, j := range xs {
			b := m>>uint(bi)&1 != 0
			if j < 0 {
				pv = b
			} else {
				bins[j] = b
			}
		}
		if c.Eval(bins, pv) {
			saw1 = true
		} else {
			saw0 = true
		}
		if saw0 && saw1 {
			return TX
		}
	}
	if saw1 {
		return T1
	}
	return T0
}

// SettleTernary is the interpreted ternary reference evaluator: a
// fixed-point sweep over the instances, skipping drivers of forced
// nets exactly as the boolean settle loops do. vals must have one
// entry per net, pre-loaded by the caller (typically all TX, then
// binary values on the forced cut points and stable inputs). It is
// the oracle the compiled TernaryEval is fuzzed against, and the
// fallback for netlists Compile rejects.
func SettleTernary(nl *Netlist, lib *cell.Library, forced map[int]bool, vals []uint8) error {
	if len(vals) != len(nl.NetNames) {
		return fmt.Errorf("gates: ternary settle %s: got %d values for %d nets", nl.Name, len(vals), len(nl.NetNames))
	}
	ins := make([]uint8, 0, 8)
	scratch := make([]bool, 16)
	limit := 4*len(nl.Instances) + 16
	for iter := 0; ; iter++ {
		if iter > limit {
			return fmt.Errorf("gates: ternary settle %s: evaluation did not settle", nl.Name)
		}
		changed := false
		for i := range nl.Instances {
			inst := &nl.Instances[i]
			if forced[inst.Output] {
				continue
			}
			c, ok := lib.Cells[inst.Cell]
			if !ok {
				return fmt.Errorf("gates: ternary settle %s: g%d: no cell %q in library %s", nl.Name, i, inst.Cell, lib.Name)
			}
			ins = ins[:0]
			for _, in := range inst.Inputs {
				ins = append(ins, vals[in])
			}
			if len(ins)+1 > len(scratch) {
				scratch = make([]bool, len(ins)+1)
			}
			nv := ternaryCell(c, ins, vals[inst.Output], scratch)
			if nv != vals[inst.Output] {
				vals[inst.Output] = nv
				changed = true
			}
		}
		if !changed {
			return nil
		}
	}
}

// DriveTernary evaluates the instance driving a net (drv is the
// caller's nl.DriverIndex()) over settled ternary values, with the
// net's own value as the stateful previous output. ok is false when
// the net has no driver.
func DriveTernary(nl *Netlist, lib *cell.Library, drv []int, vals []uint8, net int) (uint8, bool) {
	if net < 0 || net >= len(drv) || drv[net] < 0 {
		return TX, false
	}
	inst := &nl.Instances[drv[net]]
	c, ok := lib.Cells[inst.Cell]
	if !ok {
		return TX, false
	}
	ins := make([]uint8, len(inst.Inputs))
	for j, in := range inst.Inputs {
		ins[j] = vals[in]
	}
	scratch := make([]bool, len(ins)+1)
	return ternaryCell(c, ins, vals[net], scratch), true
}

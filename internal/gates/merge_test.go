package gates

import (
	"reflect"
	"testing"
)

func TestMerge(t *testing.T) {
	// a: env-driven input "req"; output "mid" = INV(req); internal "t$1".
	a := New("a")
	req := a.Net("req")
	t1 := a.Net("t$1")
	mid := a.Net("mid")
	a.Inputs = []int{req}
	a.Outputs = []int{mid}
	a.AddInstance("INV", []int{req}, t1, 1)
	a.AddInstance("INV", []int{t1}, mid, 2)

	// b: consumes "mid", drives "ack"; internal "t$1" (must not short
	// with a's), and a tied-low net.
	b := New("b")
	bmid := b.Net("mid")
	bt1 := b.Net("t$1")
	ack := b.Net("ack")
	b.Inputs = []int{bmid}
	b.Outputs = []int{ack}
	b.AddInstance("AND2", []int{bmid, b.ConstZero()}, bt1, 1)
	b.AddInstance("INV", []int{bt1}, ack, 2)

	m := Merge("top", []*Netlist{a, b})

	if m.Name != "top" {
		t.Fatalf("Name = %q", m.Name)
	}
	// "mid" unified: exactly one net of that name, driven by a's g1 and
	// consumed by b's AND2.
	if !m.HasNet("mid") || m.HasNet("a.mid") || m.HasNet("b.mid") {
		t.Fatalf("port net not unified by name: %v", m.NetNames)
	}
	// Internal nets namespaced per part.
	if !m.HasNet("a.t$1") || !m.HasNet("b.t$1") || m.HasNet("t$1") {
		t.Fatalf("internal nets not namespaced: %v", m.NetNames)
	}
	// Const0 unified onto the merged netlist's own tie-low net.
	if m.Const0 < 0 {
		t.Fatal("merged Const0 missing")
	}
	// Inputs: only env-driven part inputs ("req"; "mid" is driven by a).
	wantIn := []string{"req"}
	var gotIn []string
	for _, id := range m.Inputs {
		gotIn = append(gotIn, m.NetNames[id])
	}
	if !reflect.DeepEqual(gotIn, wantIn) {
		t.Fatalf("Inputs = %v, want %v", gotIn, wantIn)
	}
	// Outputs: every part output, part order.
	wantOut := []string{"mid", "ack"}
	var gotOut []string
	for _, id := range m.Outputs {
		gotOut = append(gotOut, m.NetNames[id])
	}
	if !reflect.DeepEqual(gotOut, wantOut) {
		t.Fatalf("Outputs = %v, want %v", gotOut, wantOut)
	}
	if len(m.Instances) != 4 {
		t.Fatalf("instance count = %d, want 4", len(m.Instances))
	}
}

func TestMergeDuplicatePartNames(t *testing.T) {
	mk := func(in, out string) *Netlist {
		nl := New("seq")
		i := nl.Net(in)
		o := nl.Net(out)
		s := nl.Net("scratch")
		nl.Inputs = []int{i}
		nl.Outputs = []int{o}
		nl.AddInstance("INV", []int{i}, s, 0)
		nl.AddInstance("INV", []int{s}, o, 0)
		return nl
	}
	m := Merge("top", []*Netlist{mk("x", "y"), mk("y", "z")})
	if !m.HasNet("seq.scratch") || !m.HasNet("seq.2.scratch") {
		t.Fatalf("duplicate part names not disambiguated: %v", m.NetNames)
	}
}

func TestMergeDeterministic(t *testing.T) {
	mk := func() []*Netlist {
		a := New("a")
		x := a.Net("x")
		y := a.Net("y")
		a.Inputs = []int{x}
		a.Outputs = []int{y}
		a.AddInstance("INV", []int{x}, y, 0)
		return []*Netlist{a}
	}
	first := Merge("top", mk()).Verilog(nil)
	for i := 0; i < 5; i++ {
		if got := Merge("top", mk()).Verilog(nil); got != first {
			t.Fatalf("Merge not deterministic:\n%s\nvs\n%s", first, got)
		}
	}
}

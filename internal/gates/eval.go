// This file implements the compiled bit-parallel netlist evaluation
// engine behind the mapped-logic hazard audit (techmap.CheckMapped)
// and other settle-style consumers. Compile performs the one-time
// work the interpreted settle loop repeated per sample point —
// string-keyed cell lookups, driver scans, per-gate input buffers —
// and produces a Program: a levelized sequence of int-indexed ops
// over flat arrays. Evaluation is then a single allocation-free
// topological pass instead of a fixed-point iteration, and it is
// 64-way lane-parallel: every net carries a uint64 whose bit l is the
// net's value at sample point l, so one pass settles 64 independent
// points.
//
// Forced nets — the audit's cut points (primary outputs and y* state
// bits under fundamental-mode feedback) — are treated as sources:
// their values come from the caller, the instances driving them are
// excluded from the settle pass and kept aside as probes that
// Eval.Driver recomputes on demand (the compiled form of the audit's
// evalDriver). If cutting the forced nets leaves a combinational
// cycle, or a stateful cell drives an unforced net (its settled value
// would depend on the interpreted loop's evaluation order, which a
// single levelized pass cannot reproduce), Compile reports an error
// and callers fall back to the interpreted reference path.
package gates

import (
	"fmt"

	"balsabm/internal/cell"
)

// opKind selects a lane-parallel evaluation routine. Recognized cell
// kinds get direct bitwise forms; anything else uses the cell's
// truth-table LUT (cells ≤6 inputs) or a per-lane slow-path closure
// over cell.Eval.
type opKind uint8

const (
	opBUF opKind = iota
	opINV
	opAND
	opNAND
	opOR
	opNOR
	opXOR
	opC
	opLATCH
	opLUT
	opSLOW
)

// evalOp is one compiled instance: output net, input nets, and how to
// combine the input lane words.
type evalOp struct {
	kind opKind
	out  int32
	ins  []int32
	tab  [2]uint64  // truth tables by previous output (opLUT)
	cell *cell.Cell // slow-path cell (opSLOW)
}

// Program is a compiled netlist evaluator. It is immutable after
// Compile and safe to share across goroutines; per-goroutine mutable
// state lives in Eval.
type Program struct {
	name     string
	nets     int
	ops      []evalOp    // levelized: every op's inputs precede it
	probes   map[int]int // forced net -> index into probeOps
	probeOps []evalOp
	maxIns   int
}

// Nets returns the number of nets the program evaluates over.
func (p *Program) Nets() int { return p.nets }

// Ops returns the number of levelized settle ops (excluding probes).
func (p *Program) Ops() int { return len(p.ops) }

// HasDriver reports whether the forced net has a driving instance
// recorded as a probe (the compiled analogue of Netlist.Driver >= 0
// for forced nets).
func (p *Program) HasDriver(net int) bool {
	_, ok := p.probes[net]
	return ok
}

// compiledCell is the per-cell compilation: interned once per distinct
// cell name so the instance loop never touches the string-keyed
// library map again.
type compiledCell struct {
	kind opKind
	tab  [2]uint64
	c    *cell.Cell
}

func compileCell(c *cell.Cell) compiledCell {
	cc := compiledCell{c: c}
	switch c.Kind {
	case cell.Buf:
		cc.kind = opBUF
	case cell.Inv:
		cc.kind = opINV
	case cell.And:
		cc.kind = opAND
	case cell.Nand:
		cc.kind = opNAND
	case cell.Or:
		cc.kind = opOR
	case cell.Nor:
		cc.kind = opNOR
	case cell.Xor:
		cc.kind = opXOR
	case cell.C:
		cc.kind = opC
	case cell.Latch:
		cc.kind = opLATCH
	default:
		if tab, ok := c.TruthTable(); ok {
			cc.kind, cc.tab = opLUT, tab
		} else {
			cc.kind = opSLOW
		}
	}
	return cc
}

// Compile builds the evaluation program for a netlist: cell names
// interned to per-cell ops, a driver index, and the gate graph
// levelized topologically with the forced nets as cut points. forced
// may be nil. Compile fails — callers fall back to interpreted
// evaluation — when a cell is missing from the library or wired with
// too few pins, a non-forced net has several drivers, a stateful cell
// drives a non-forced net, or the forced cut leaves a combinational
// cycle.
func Compile(nl *Netlist, lib *cell.Library, forced map[int]bool) (*Program, error) {
	p := &Program{name: nl.Name, nets: len(nl.NetNames), probes: map[int]int{}}
	cells := make(map[string]compiledCell)
	mkOp := func(i int) (evalOp, error) {
		inst := &nl.Instances[i]
		cc, ok := cells[inst.Cell]
		if !ok {
			c, found := lib.Cells[inst.Cell]
			if !found {
				return evalOp{}, fmt.Errorf("gates: compile %s: g%d: no cell %q in library %s",
					nl.Name, i, inst.Cell, lib.Name)
			}
			cc = compileCell(c)
			cells[inst.Cell] = cc
		}
		need := 1
		if cc.kind == opLATCH {
			need = 2
		}
		if len(inst.Inputs) < need {
			return evalOp{}, fmt.Errorf("gates: compile %s: g%d: %s wired with %d inputs",
				nl.Name, i, inst.Cell, len(inst.Inputs))
		}
		op := evalOp{kind: cc.kind, out: int32(inst.Output), tab: cc.tab, cell: cc.c}
		if cc.kind == opLUT && len(inst.Inputs) != cc.c.Inputs {
			op.kind = opSLOW // the LUT is indexed by the declared pin count
		}
		op.ins = make([]int32, len(inst.Inputs))
		for j, in := range inst.Inputs {
			if in < 0 || in >= p.nets {
				return evalOp{}, fmt.Errorf("gates: compile %s: g%d: input net %d out of range", nl.Name, i, in)
			}
			op.ins[j] = int32(in)
		}
		if len(op.ins) > p.maxIns {
			p.maxIns = len(op.ins)
		}
		return op, nil
	}

	// Partition instances: drivers of forced nets become probes
	// (excluded from the settle, exactly as the interpreted loop skips
	// them); the rest are the computed set to levelize.
	computedDrv := make([]bool, p.nets)
	var computed []int
	compiledOps := map[int]evalOp{}
	for i := range nl.Instances {
		out := nl.Instances[i].Output
		if out < 0 || out >= p.nets {
			return nil, fmt.Errorf("gates: compile %s: g%d: output net %d out of range", nl.Name, i, out)
		}
		op, err := mkOp(i)
		if err != nil {
			return nil, err
		}
		if forced[out] {
			if _, dup := p.probes[out]; !dup { // first driver wins, as in Netlist.Driver
				p.probes[out] = len(p.probeOps)
				p.probeOps = append(p.probeOps, op)
			}
			continue
		}
		if computedDrv[out] {
			return nil, fmt.Errorf("gates: compile %s: net %q has several drivers", nl.Name, nl.NetNames[out])
		}
		if op.kind == opC || op.kind == opLATCH || op.tab[0] != op.tab[1] {
			return nil, fmt.Errorf("gates: compile %s: stateful cell %s drives unforced net %q",
				nl.Name, nl.Instances[i].Cell, nl.NetNames[out])
		}
		computedDrv[out] = true
		computed = append(computed, i)
		compiledOps[i] = op
	}

	// Kahn levelization over the computed instances. A net is ready
	// when no computed instance drives it: forced nets, primary
	// inputs, undriven nets and probe outputs are all sources.
	ready := make([]bool, p.nets)
	for net := range ready {
		ready[net] = !computedDrv[net]
	}
	indeg := make([]int, len(computed))
	deps := make([][]int32, p.nets) // net -> computed positions waiting on it (one entry per pin)
	for ci, ii := range computed {
		for _, in := range nl.Instances[ii].Inputs {
			if !ready[in] {
				indeg[ci]++
				deps[in] = append(deps[in], int32(ci))
			}
		}
	}
	queue := make([]int32, 0, len(computed))
	for ci := range computed {
		if indeg[ci] == 0 {
			queue = append(queue, int32(ci))
		}
	}
	p.ops = make([]evalOp, 0, len(computed))
	for qi := 0; qi < len(queue); qi++ {
		ci := queue[qi]
		ii := computed[ci]
		p.ops = append(p.ops, compiledOps[ii])
		out := nl.Instances[ii].Output
		ready[out] = true
		for _, d := range deps[out] {
			indeg[d]--
			if indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if len(p.ops) != len(computed) {
		for ci, ii := range computed {
			if indeg[ci] > 0 {
				return nil, fmt.Errorf("gates: compile %s: combinational cycle through net %q not cut by a forced net",
					nl.Name, nl.NetNames[nl.Instances[ii].Output])
			}
		}
	}
	return p, nil
}

// Eval is the mutable evaluation state for one goroutine: one lane
// word per net (bit l = the net's value at sample point l). Create
// one per worker with NewEval; an Eval must not be shared
// concurrently.
type Eval struct {
	prog  *Program
	lanes []uint64
	slow  []bool // opSLOW per-lane scratch
}

// NewEval allocates evaluation state for the program.
func (p *Program) NewEval() *Eval {
	return &Eval{prog: p, lanes: make([]uint64, p.nets), slow: make([]bool, p.maxIns)}
}

// Reset zeroes every lane word (the power-up/zero-history state the
// interpreted settle starts from).
func (e *Eval) Reset() {
	for i := range e.lanes {
		e.lanes[i] = 0
	}
}

// Set assigns a source net's 64 lane values (forced nets and primary
// inputs; assigning a computed net is overwritten by Run).
func (e *Eval) Set(net int, w uint64) { e.lanes[net] = w }

// Word reads a net's lane word after Run.
func (e *Eval) Word(net int) uint64 { return e.lanes[net] }

// Run executes the levelized pass: one evaluation per gate, no
// fixed-point iteration, no allocation.
func (e *Eval) Run() {
	ops := e.prog.ops
	for i := range ops {
		op := &ops[i]
		e.lanes[op.out] = e.apply(op)
	}
}

// Driver evaluates the probe instance driving a forced net against
// the current lane values — the compiled form of the audit's
// evalDriver — reporting false if the net has no driver. The net's
// forced word itself serves as the previous output for stateful
// probes, as in the interpreted reference.
func (e *Eval) Driver(net int) (uint64, bool) {
	pi, ok := e.prog.probes[net]
	if !ok {
		return 0, false
	}
	return e.apply(&e.prog.probeOps[pi]), true
}

func (e *Eval) apply(op *evalOp) uint64 {
	lanes := e.lanes
	ins := op.ins
	switch op.kind {
	case opBUF:
		return lanes[ins[0]]
	case opINV:
		return ^lanes[ins[0]]
	case opAND, opNAND:
		w := lanes[ins[0]]
		for _, in := range ins[1:] {
			w &= lanes[in]
		}
		if op.kind == opNAND {
			w = ^w
		}
		return w
	case opOR, opNOR:
		w := lanes[ins[0]]
		for _, in := range ins[1:] {
			w |= lanes[in]
		}
		if op.kind == opNOR {
			w = ^w
		}
		return w
	case opXOR:
		w := lanes[ins[0]]
		for _, in := range ins[1:] {
			w ^= lanes[in]
		}
		return w
	case opC:
		all1 := ^uint64(0)
		any1 := uint64(0)
		for _, in := range ins {
			v := lanes[in]
			all1 &= v
			any1 |= v
		}
		// Lanes where all inputs agree follow them; the rest hold.
		return all1 | lanes[op.out]&any1
	case opLATCH:
		en := lanes[ins[0]]
		return en&lanes[ins[1]] | ^en&lanes[op.out]
	case opLUT:
		prev := lanes[op.out]
		w := lutLanes(op.tab[0], ins, lanes)
		if op.tab[1] != op.tab[0] && prev != 0 {
			w = w&^prev | lutLanes(op.tab[1], ins, lanes)&prev
		}
		return w
	default: // opSLOW
		prev := lanes[op.out]
		scratch := e.slow[:len(ins)]
		var out uint64
		for l := uint(0); l < 64; l++ {
			for j, in := range ins {
				scratch[j] = lanes[in]>>l&1 != 0
			}
			if op.cell.Eval(scratch, prev>>l&1 != 0) {
				out |= 1 << l
			}
		}
		return out
	}
}

// lutLanes evaluates a ≤6-input truth table lane-parallel by minterm
// expansion: each set table bit contributes the AND of its input
// polarities across all 64 lanes.
func lutLanes(tab uint64, ins []int32, lanes []uint64) uint64 {
	var out uint64
	n := uint(len(ins))
	for m := uint(0); m < 1<<n; m++ {
		if tab>>m&1 == 0 {
			continue
		}
		term := ^uint64(0)
		for j, in := range ins {
			if m>>uint(j)&1 != 0 {
				term &= lanes[in]
			} else {
				term &^= lanes[in]
			}
		}
		out |= term
	}
	return out
}

// Rename edge cases for the incremental-resynthesis splicing path,
// exercised from outside the package (netlint imports gates, so these
// tests live in gates_test to audit renamed results).
package gates_test

import (
	"bytes"
	"reflect"
	"testing"

	"balsabm/internal/cell"
	"balsabm/internal/gates"
	"balsabm/internal/netlint"
)

// buildYController wires the shape the splicer actually renames: a
// mapped Burst-Mode controller with a y* state-feedback cut. The
// output NAND also drives the state variable back through the
// feedback C-element, so renaming the request wire touches nets on
// both sides of the cut.
func buildYController() *gates.Netlist {
	nl := gates.New("ctl")
	req, ack := nl.Net("go_r"), nl.Net("go_a")
	y := nl.Net("y0")
	p := nl.Net("go_a_p$4")
	nl.Inputs = append(nl.Inputs, req)
	nl.Outputs = append(nl.Outputs, ack)
	nl.AddInstance("NAND2", []int{req, y}, p, 0)
	nl.AddInstance("INV", []int{p}, ack, 0)
	nl.AddInstance("C2", []int{req, ack}, y, 0)
	return nl
}

// Self-mapping entries (w -> w) must be harmless no-ops: the copy is
// structurally identical to a rename with an empty substitution.
func TestRenameSelfMapping(t *testing.T) {
	nl := buildYController()
	self := nl.Rename("ctl", map[string]string{"go_r": "go_r", "y0": "y0"})
	plain := nl.Rename("ctl", nil)
	a, err := gates.EncodeJSON(self)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gates.EncodeJSON(plain)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("self-mapping rename differs from identity copy:\n%s\n%s", a, b)
	}
}

// A chained substitution {a->b, b->c} applies simultaneously: a's net
// must end up named b (not c), mirroring the swap case the splicer
// relies on when two wires exchange roles between designs.
func TestRenameChainedSubstitution(t *testing.T) {
	nl := gates.New("chain")
	a, b := nl.Net("a"), nl.Net("b")
	out := nl.Net("out")
	nl.Inputs = append(nl.Inputs, a, b)
	nl.Outputs = append(nl.Outputs, out)
	nl.AddInstance("AND2", []int{a, b}, out, 0)
	r := nl.Rename("chain", map[string]string{"a": "b", "b": "c"})
	if r.NetNames[a] != "b" || r.NetNames[b] != "c" {
		t.Fatalf("chained rename: %v", r.NetNames)
	}
	if !r.HasNet("b") || !r.HasNet("c") || r.HasNet("a") {
		t.Fatalf("name index inconsistent after chain: %v", r.NetNames)
	}
}

// Renaming the nets feeding the y* state-feedback cut must keep the
// y-nets themselves (CriticalDelay and netlint cut feedback loops by
// structure, not name) and leave the audit verdict unchanged: the
// spliced controller is netlint-clean iff the original was.
func TestRenameYFeedbackCutNetlintClean(t *testing.T) {
	lib := cell.AMS035()
	nl := buildYController()
	before := netlint.Audit(nl, lib)

	r := nl.Rename("spliced", map[string]string{
		"go_r": "req_r", "go_a": "req_a", "go_a_p$4": "req_a_p$4",
	})
	if !r.HasNet("y0") {
		t.Fatal("state net y0 lost in rename")
	}
	if !r.HasNet("req_r") || r.HasNet("go_r") {
		t.Fatalf("cut-feeding net not renamed: %v", r.NetNames)
	}
	after := netlint.Audit(r, lib)
	if e1, w1, _ := netlint.Count(before.Diags); netlint.HasErrors(before.Diags) {
		t.Fatalf("reference controller not clean: %d errors %d warnings", e1, w1)
	}
	if netlint.HasErrors(after.Diags) {
		t.Fatalf("renamed controller gained errors:\n%s", netlint.Format(after.Diags, "spliced"))
	}
	if len(before.Diags) != len(after.Diags) {
		t.Fatalf("rename changed diagnostic count: %d -> %d", len(before.Diags), len(after.Diags))
	}
	// The feedback loop is still cut: critical delay stays finite and
	// equal, since only labels changed.
	if d1, d2 := nl.CriticalDelay(lib), r.CriticalDelay(lib); d1 != d2 {
		t.Fatalf("critical delay changed by rename: %v -> %v", d1, d2)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	nl := buildYController()
	nl.ConstZero() // exercise a non-(-1) const0
	blob, err := gates.EncodeJSON(nl)
	if err != nil {
		t.Fatal(err)
	}
	back, err := gates.DecodeJSON(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.NetNames, nl.NetNames) ||
		!reflect.DeepEqual(back.Instances, nl.Instances) ||
		!reflect.DeepEqual(back.Inputs, nl.Inputs) ||
		!reflect.DeepEqual(back.Outputs, nl.Outputs) ||
		back.Name != nl.Name || back.Const0 != nl.Const0 {
		t.Fatalf("round trip altered netlist: %+v vs %+v", back, nl)
	}
	// The rebuilt name index works (and is independent of the source).
	if back.Net("y0") != nl.Net("y0") {
		t.Fatal("name index diverged after decode")
	}
	again, err := gates.EncodeJSON(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, again) {
		t.Fatal("encoding unstable across a round trip")
	}
}

func TestDecodeRejectsCorruptShapes(t *testing.T) {
	for name, blob := range map[string]string{
		"not json":       `{"name":`,
		"duplicate nets": `{"name":"x","netNames":["a","a"],"inputs":[],"outputs":[],"instances":[],"const0":-1}`,
		"dangling input": `{"name":"x","netNames":["a"],"inputs":[7],"outputs":[],"instances":[],"const0":-1}`,
		"dangling inst":  `{"name":"x","netNames":["a"],"inputs":[],"outputs":[],"instances":[{"Cell":"INV","Inputs":[0],"Output":3,"Module":0}],"const0":-1}`,
		"bad const0":     `{"name":"x","netNames":["a"],"inputs":[],"outputs":[],"instances":[],"const0":-2}`,
	} {
		if _, err := gates.DecodeJSON([]byte(blob)); err == nil {
			t.Errorf("%s: decode accepted corrupt blob", name)
		}
	}
	// -1 (absent const0, undriven marker) stays legal.
	if _, err := gates.DecodeJSON([]byte(`{"name":"x","netNames":["a"],"inputs":[-1],"outputs":[],"instances":[],"const0":-1}`)); err != nil {
		t.Errorf("-1 net reference rejected: %v", err)
	}
}

package gates

import (
	"strings"
	"testing"

	"balsabm/internal/cell"
)

// The compiled half adder must agree with Settle on every input
// combination, evaluated in one 64-lane pass: lane l carries input
// combination l&3.
func TestCompileHalfAdderLanes(t *testing.T) {
	lib := cell.AMS035()
	nl := buildHalfAdder()
	prog, err := Compile(nl, lib, nil)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Nets() != len(nl.NetNames) || prog.Ops() != 2 {
		t.Fatalf("compiled %d nets, %d ops", prog.Nets(), prog.Ops())
	}
	// Lane l: a = bit0 of l, b = bit1 of l, repeating with period 4.
	var aw, bw uint64
	for l := uint(0); l < 64; l++ {
		if l&1 != 0 {
			aw |= 1 << l
		}
		if l&2 != 0 {
			bw |= 1 << l
		}
	}
	ev := prog.NewEval()
	ev.Reset()
	ev.Set(nl.Net("a"), aw)
	ev.Set(nl.Net("b"), bw)
	ev.Run()
	sum, carry := ev.Word(nl.Net("sum")), ev.Word(nl.Net("carry"))
	for l := uint(0); l < 64; l++ {
		a, b := l&1 != 0, l&2 != 0
		vals, err := nl.Settle(lib, map[string]bool{"a": a, "b": b}, nil)
		if err != nil {
			t.Fatal(err)
		}
		wantSum, _ := nl.Value(vals, "sum")
		wantCarry, _ := nl.Value(vals, "carry")
		if sum>>l&1 != 0 != wantSum || carry>>l&1 != 0 != wantCarry {
			t.Fatalf("lane %d (a=%v b=%v): sum=%v carry=%v, want %v %v",
				l, a, b, sum>>l&1 != 0, carry>>l&1 != 0, wantSum, wantCarry)
		}
	}
}

// A stateful cell driving a forced net compiles as a probe: the settle
// pass skips it, and Eval.Driver recomputes it with the forced word as
// previous state — exactly the audit's evalDriver contract.
func TestCompileForcedProbe(t *testing.T) {
	lib := cell.AMS035()
	nl := New("fb")
	a, b := nl.Net("a"), nl.Net("b")
	y := nl.Net("y")
	nl.Inputs = append(nl.Inputs, a, b)
	nl.AddInstance("C2", []int{a, b}, y, 0)
	forced := map[int]bool{y: true}
	prog, err := Compile(nl, lib, forced)
	if err != nil {
		t.Fatal(err)
	}
	if !prog.HasDriver(y) {
		t.Fatal("forced net y lost its driver")
	}
	if prog.HasDriver(a) {
		t.Fatal("undriven input reports a driver")
	}
	c2 := lib.Get("C2")
	ev := prog.NewEval()
	for combo := 0; combo < 8; combo++ {
		av, bv, yv := combo&1 != 0, combo&2 != 0, combo&4 != 0
		ev.Reset()
		word := func(v bool) uint64 {
			if v {
				return ^uint64(0)
			}
			return 0
		}
		ev.Set(a, word(av))
		ev.Set(b, word(bv))
		ev.Set(y, word(yv))
		ev.Run()
		got, ok := ev.Driver(y)
		if !ok {
			t.Fatal("Driver(y) not found")
		}
		want := word(c2.Eval([]bool{av, bv}, yv))
		if got != want {
			t.Fatalf("a=%v b=%v y=%v: Driver(y) = %#x, want %#x", av, bv, yv, got, want)
		}
	}
}

// Compile must reject everything the single levelized pass cannot
// faithfully evaluate, so callers fall back to the interpreted loop.
func TestCompileRejections(t *testing.T) {
	lib := cell.AMS035()

	t.Run("missing cell", func(t *testing.T) {
		nl := New("x")
		a := nl.Net("a")
		nl.AddInstance("FLUXCAP", []int{a}, nl.Net("q"), 0)
		if _, err := Compile(nl, lib, nil); err == nil || !strings.Contains(err.Error(), "FLUXCAP") {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("multi-driven unforced net", func(t *testing.T) {
		nl := New("x")
		a, b := nl.Net("a"), nl.Net("b")
		q := nl.Net("q")
		nl.AddInstance("INV", []int{a}, q, 0)
		nl.AddInstance("INV", []int{b}, q, 0)
		if _, err := Compile(nl, lib, nil); err == nil || !strings.Contains(err.Error(), "several drivers") {
			t.Fatalf("err = %v", err)
		}
		// Forcing the net turns both drivers into probe candidates
		// (first wins) and compilation succeeds.
		if _, err := Compile(nl, lib, map[int]bool{q: true}); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("stateful cell outside the cut", func(t *testing.T) {
		nl := New("x")
		a, b := nl.Net("a"), nl.Net("b")
		q := nl.Net("q")
		nl.AddInstance("C2", []int{a, b}, q, 0)
		if _, err := Compile(nl, lib, nil); err == nil || !strings.Contains(err.Error(), "stateful") {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("cycle not cut by forced nets", func(t *testing.T) {
		nl := New("x")
		a := nl.Net("a")
		x := nl.Net("x")
		nl.AddInstance("OR2", []int{x, a}, x, 0)
		if _, err := Compile(nl, lib, nil); err == nil || !strings.Contains(err.Error(), "cycle") {
			t.Fatalf("err = %v", err)
		}
		// The same loop through a forced net compiles: the feedback arc
		// is cut at the source.
		if _, err := Compile(nl, lib, map[int]bool{x: true}); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("too few pins", func(t *testing.T) {
		nl := New("x")
		nl.AddInstance("LATCH", []int{nl.Net("en")}, nl.Net("q"), 0)
		if _, err := Compile(nl, lib, nil); err == nil || !strings.Contains(err.Error(), "inputs") {
			t.Fatalf("err = %v", err)
		}
	})
}

// Every library cell kind, compiled into a one-gate netlist, must agree
// with cell.Eval on all input combinations (combinational cells only;
// stateful kinds are covered by the probe test).
func TestCompiledKindsAgreeWithEval(t *testing.T) {
	lib := cell.AMS035()
	for _, name := range []string{"INV", "BUF", "NAND2", "NAND3", "NAND4",
		"AND2", "AND4", "OR2", "OR4", "NOR2", "XOR2"} {
		c := lib.Get(name)
		nl := New(name)
		ins := make([]int, c.Inputs)
		insB := make([]bool, c.Inputs)
		for i := range ins {
			ins[i] = nl.Fresh("in")
			nl.Inputs = append(nl.Inputs, ins[i])
		}
		q := nl.Net("q")
		nl.AddInstance(name, ins, q, 0)
		prog, err := Compile(nl, lib, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ev := prog.NewEval()
		ev.Reset()
		// Lane l = input combination l (period 2^Inputs ≤ 16 divides 64).
		for i, in := range ins {
			var w uint64
			for l := uint(0); l < 64; l++ {
				if l>>uint(i)&1 != 0 {
					w |= 1 << l
				}
			}
			ev.Set(in, w)
		}
		ev.Run()
		got := ev.Word(q)
		for combo := 0; combo < 1<<uint(c.Inputs); combo++ {
			for i := range insB {
				insB[i] = combo>>uint(i)&1 != 0
			}
			want := c.Eval(insB, false)
			if got>>uint(combo)&1 != 0 != want {
				t.Fatalf("%s combo %d: got %v want %v", name, combo, !want, want)
			}
		}
	}
}

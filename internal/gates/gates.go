// Package gates models mapped gate-level netlists: instances of library
// cells connected by named nets, with area/critical-path reporting, a
// functional evaluator (used by equivalence and hazard audits and by
// the event simulator) and a structural Verilog writer (the paper's
// tech-mapped controllers are exchanged as structural Verilog).
package gates

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"balsabm/internal/cell"
)

// Instance is one placed cell.
type Instance struct {
	Cell   string
	Inputs []int
	Output int
	Module int // 1/2 = the paper's two NAND levels, 0 = boundary logic
}

// Netlist is a mapped circuit.
type Netlist struct {
	Name      string
	NetNames  []string
	netIndex  map[string]int
	Inputs    []int // primary inputs
	Outputs   []int // primary outputs
	Instances []Instance
	Const0    int // net tied low (-1 if absent)

	// drv is the lazily-built net→driving-instance index (see
	// DriverIndex); drvOK marks it valid. Guarded by drvMu so
	// concurrent audits of a shared netlist stay race-free.
	drvMu sync.Mutex
	drv   []int
	drvOK bool
}

// New creates an empty netlist.
func New(name string) *Netlist {
	return &Netlist{Name: name, netIndex: map[string]int{}, Const0: -1}
}

// Net interns a net by name.
func (n *Netlist) Net(name string) int {
	if id, ok := n.netIndex[name]; ok {
		return id
	}
	id := len(n.NetNames)
	n.NetNames = append(n.NetNames, name)
	n.netIndex[name] = id
	return id
}

// HasNet reports whether a net with this name exists.
func (n *Netlist) HasNet(name string) bool {
	_, ok := n.netIndex[name]
	return ok
}

// Fresh creates a new unique net with the given prefix.
func (n *Netlist) Fresh(prefix string) int {
	return n.Net(fmt.Sprintf("%s$%d", prefix, len(n.NetNames)))
}

// AddInstance places a cell.
func (n *Netlist) AddInstance(cellName string, inputs []int, output int, module int) {
	n.Instances = append(n.Instances, Instance{
		Cell: cellName, Inputs: append([]int(nil), inputs...), Output: output, Module: module,
	})
	n.drvMu.Lock()
	n.drv, n.drvOK = nil, false
	n.drvMu.Unlock()
}

// ConstZero returns the tied-low net, creating it on first use.
func (n *Netlist) ConstZero() int {
	if n.Const0 < 0 {
		n.Const0 = n.Net("const0$")
	}
	return n.Const0
}

// DriverIndex returns the net→driving-instance index (-1 for undriven
// nets), built lazily and invalidated by AddInstance; Rename and Merge
// return fresh netlists that build their own. For a net with several
// drivers (an NL001 error netlint reports) the lowest instance index
// wins, matching what Driver's original linear scan returned.
// Instances whose output id is out of range are skipped (netlint
// audits such malformed netlists; NL000 flags them). The returned
// slice is shared — callers must not modify it.
func (n *Netlist) DriverIndex() []int {
	n.drvMu.Lock()
	defer n.drvMu.Unlock()
	if !n.drvOK || len(n.drv) != len(n.NetNames) {
		drv := make([]int, len(n.NetNames))
		for i := range drv {
			drv[i] = -1
		}
		for i := range n.Instances {
			out := n.Instances[i].Output
			if out >= 0 && out < len(drv) && drv[out] < 0 {
				drv[out] = i
			}
		}
		n.drv, n.drvOK = drv, true
	}
	return n.drv
}

// Driver returns the instance index driving the net, or -1.
func (n *Netlist) Driver(net int) int {
	drv := n.DriverIndex()
	if net < 0 || net >= len(drv) {
		return -1
	}
	return drv[net]
}

// Rename returns a deep copy of the netlist under a new name with net
// names rewritten through sub (exact match; names not in sub are kept).
// The substitution is applied simultaneously, so swaps are safe. It
// backs the flow's canonical-form synthesis cache: a cached controller
// is reused for a rename-isomorphic component by mapping its channel
// wires onto the new component's.
func (n *Netlist) Rename(name string, sub map[string]string) *Netlist {
	out := &Netlist{
		Name:     name,
		NetNames: make([]string, len(n.NetNames)),
		netIndex: make(map[string]int, len(n.NetNames)),
		Inputs:   append([]int(nil), n.Inputs...),
		Outputs:  append([]int(nil), n.Outputs...),
		Const0:   n.Const0,
	}
	for id, netName := range n.NetNames {
		if mapped, ok := sub[netName]; ok {
			netName = mapped
		}
		out.NetNames[id] = netName
		out.netIndex[netName] = id
	}
	out.Instances = make([]Instance, len(n.Instances))
	for i, inst := range n.Instances {
		out.Instances[i] = Instance{
			Cell:   inst.Cell,
			Inputs: append([]int(nil), inst.Inputs...),
			Output: inst.Output,
			Module: inst.Module,
		}
	}
	return out
}

// Area sums the cell areas.
func (n *Netlist) Area(lib *cell.Library) float64 {
	total := 0.0
	for _, inst := range n.Instances {
		total += lib.Get(inst.Cell).Area
	}
	return total
}

// CriticalDelay returns the longest register-free path delay through
// the netlist (cycles, e.g. state feedback, are cut at re-entry).
func (n *Netlist) CriticalDelay(lib *cell.Library) float64 {
	drivers := n.DriverIndex()
	memo := make([]float64, len(n.NetNames))
	state := make([]int, len(n.NetNames)) // 0 new, 1 visiting, 2 done
	var arrive func(net int) float64
	arrive = func(net int) float64 {
		if state[net] == 2 {
			return memo[net]
		}
		if state[net] == 1 {
			return 0 // feedback cut
		}
		state[net] = 1
		best := 0.0
		if d := drivers[net]; d >= 0 {
			inst := n.Instances[d]
			c := lib.Get(inst.Cell)
			for _, in := range inst.Inputs {
				if t := arrive(in) + c.Delay; t > best {
					best = t
				}
			}
		}
		state[net] = 2
		memo[net] = best
		return best
	}
	worst := 0.0
	for net := range n.NetNames {
		if t := arrive(net); t > worst {
			worst = t
		}
	}
	return worst
}

// Settle evaluates the netlist to a combinational fixpoint from the
// given primary-input values and previous net values (nil for
// power-up, which assumes all-zero history for stateful cells). It
// returns the settled net values, or an error if the circuit
// oscillates.
func (n *Netlist) Settle(lib *cell.Library, inputs map[string]bool, prev []bool) ([]bool, error) {
	vals := make([]bool, len(n.NetNames))
	if prev != nil {
		copy(vals, prev)
	}
	for name, v := range inputs {
		id, ok := n.netIndex[name]
		if !ok {
			return nil, fmt.Errorf("gates: %s: no net %q", n.Name, name)
		}
		vals[id] = v
	}
	for iter := 0; iter < 4*len(n.Instances)+16; iter++ {
		changed := false
		for _, inst := range n.Instances {
			c := lib.Get(inst.Cell)
			ins := make([]bool, len(inst.Inputs))
			for i, in := range inst.Inputs {
				ins[i] = vals[in]
			}
			out := c.Eval(ins, vals[inst.Output])
			if out != vals[inst.Output] {
				vals[inst.Output] = out
				changed = true
			}
		}
		if !changed {
			return vals, nil
		}
	}
	return nil, fmt.Errorf("gates: %s: did not settle", n.Name)
}

// Value reads a named net from a settled value vector.
func (n *Netlist) Value(vals []bool, name string) (bool, error) {
	id, ok := n.netIndex[name]
	if !ok {
		return false, fmt.Errorf("gates: %s: no net %q", n.Name, name)
	}
	return vals[id], nil
}

// CellCounts returns instance counts by cell name.
func (n *Netlist) CellCounts() map[string]int {
	out := map[string]int{}
	for _, inst := range n.Instances {
		out[inst.Cell]++
	}
	return out
}

// Verilog renders the netlist as a structural Verilog module.
func (n *Netlist) Verilog(lib *cell.Library) string {
	var sb strings.Builder
	safe := func(net int) string {
		name := n.NetNames[net]
		r := strings.NewReplacer("$", "_", "+", "p", "-", "m", ".", "_")
		return r.Replace(name)
	}
	var ports []string
	for _, in := range n.Inputs {
		ports = append(ports, safe(in))
	}
	for _, out := range n.Outputs {
		ports = append(ports, safe(out))
	}
	fmt.Fprintf(&sb, "module %s (%s);\n", strings.ReplaceAll(n.Name, "-", "_"), strings.Join(ports, ", "))
	for _, in := range n.Inputs {
		fmt.Fprintf(&sb, "  input %s;\n", safe(in))
	}
	for _, out := range n.Outputs {
		fmt.Fprintf(&sb, "  output %s;\n", safe(out))
	}
	declared := map[int]bool{}
	for _, in := range n.Inputs {
		declared[in] = true
	}
	for _, out := range n.Outputs {
		declared[out] = true
	}
	var wires []string
	for id := range n.NetNames {
		if !declared[id] {
			wires = append(wires, safe(id))
		}
	}
	sort.Strings(wires)
	for _, w := range wires {
		fmt.Fprintf(&sb, "  wire %s;\n", w)
	}
	if n.Const0 >= 0 {
		fmt.Fprintf(&sb, "  assign %s = 1'b0;\n", safe(n.Const0))
	}
	for i, inst := range n.Instances {
		args := []string{safe(inst.Output)}
		for _, in := range inst.Inputs {
			args = append(args, safe(in))
		}
		fmt.Fprintf(&sb, "  %s g%d (%s); // module %d\n", inst.Cell, i, strings.Join(args, ", "), inst.Module)
	}
	sb.WriteString("endmodule\n")
	return sb.String()
}

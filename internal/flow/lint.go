package flow

import (
	"strings"
	"time"

	"balsabm/internal/analysis"
	"balsabm/internal/core"
)

// LintError aborts a flow run: the control netlist has error-severity
// analyzer findings, so synthesis would produce broken hardware (or
// fail half-way with a far less useful message).
type LintError struct {
	Design string
	Diags  []analysis.Diag // the error-severity findings only
}

func (e *LintError) Error() string {
	var sb strings.Builder
	sb.WriteString("lint: ")
	sb.WriteString(e.Design)
	sb.WriteString(": ")
	if len(e.Diags) == 1 {
		sb.WriteString(e.Diags[0].String())
	} else {
		sb.WriteString("control netlist fails lint:")
		for _, d := range e.Diags {
			sb.WriteString("\n\t")
			sb.WriteString(d.String())
		}
	}
	return sb.String()
}

// LintFinding is one non-error analyzer finding surfaced by the gate,
// tagged with the design it was found in.
type LintFinding struct {
	Design string
	Diag   analysis.Diag
}

// LintNetlist is the pre-synthesis gate: it runs every analyzer pass
// over the control netlist before any synthesis work starts. Error
// findings abort the run as a *LintError; warnings and advisories are
// recorded on the metrics sink (shown by -stats, streamed by the
// daemon's SSE brokers) and never block.
func LintNetlist(n *core.Netlist, design string, met *Metrics) error {
	start := time.Now()
	diags := analysis.Analyze(n)
	if met != nil {
		met.Timings.Observe("lint", time.Since(start))
	}
	var errs []analysis.Diag
	for _, d := range diags {
		if d.Severity == analysis.SevError {
			errs = append(errs, d)
		} else if met != nil {
			met.recordLint(LintFinding{Design: design, Diag: d})
		}
	}
	if len(errs) > 0 {
		return &LintError{Design: design, Diags: errs}
	}
	return nil
}

package flow

import (
	"testing"

	"balsabm/internal/ch"
	"balsabm/internal/core"
	"balsabm/internal/designs"
	"balsabm/internal/techmap"
)

// incrEditBody is the replacement controller body for the benchmark's
// one-controller edit. It is deliberately a shape no Table 3 design
// contains (the designs are sequencer/call trees), so the edited
// component can never be served from the warmed cache by accident.
const incrEditBody = `(rep (enc-middle (p-to-p passive p0)
    (p-to-p passive p1)))`

// editOneController returns a copy of the netlist with the last
// component's body replaced — the canonical one-controller edit of the
// edit-compile loop.
func editOneController(b *testing.B, n *core.Netlist) *core.Netlist {
	b.Helper()
	body, err := ch.Parse(incrEditBody)
	if err != nil {
		b.Fatal(err)
	}
	out := &core.Netlist{Components: append([]*ch.Program(nil), n.Components...)}
	last := len(out.Components) - 1
	out.Components[last] = &ch.Program{Name: out.Components[last].Name, Body: body}
	return out
}

// cloneCache snapshots a seeded cache so every benchmark iteration
// starts from the same warm state (the edited shape written during one
// iteration must not leak into the next).
func cloneCache(src *MemoryControllerCache) *MemoryControllerCache {
	dst := NewMemoryControllerCache()
	src.mu.Lock()
	for k, v := range src.m {
		dst.m[k] = v
	}
	src.mu.Unlock()
	return dst
}

// BenchmarkIncrementalEdit measures the edit-compile loop the
// incremental tier targets: one controller of a Table 3 design is
// edited and the design resynthesized, cold (empty controller cache —
// every shape synthesized) versus warm (cache seeded by the base
// design's synthesis — only the edited shape synthesized). Both arms
// run at the post-clustering grain, exactly what the daemon's opt arm
// hands to SynthesizeNetlist, and produce byte-identical netlists; the
// warm arm additionally reports how many distinct shapes it spliced
// from the cache.
func BenchmarkIncrementalEdit(b *testing.B) {
	for _, d := range designs.All() {
		// The cluster state bound keeps every design at several clustered
		// controllers (unbounded clustering collapses the systolic
		// counter to one, leaving a one-controller edit nothing to
		// reuse), matching the paper's synthesis-run-time knob.
		clustered, _, err := core.OptimizeOpt(d.Control(), core.Options{MaxStates: 12})
		if err != nil {
			b.Fatal(err)
		}
		edited := editOneController(b, clustered)
		seed := NewMemoryControllerCache()
		if _, _, err := SynthesizeNetlist(clustered, techmap.SpeedSplit,
			&Options{Controllers: seed}); err != nil {
			b.Fatal(err)
		}
		// One worker pins the measurement to the synthesis work itself
		// (results are identical at any setting); otherwise the cold
		// arm's ns/op depends on how many shapes the host can run in
		// parallel rather than on how much work the cache avoided.
		opts := func(ctl ControllerCache, met *Metrics) *Options {
			return &Options{Controllers: ctl, Metrics: met, Workers: 1}
		}
		for _, warm := range []bool{false, true} {
			name := d.Name + "/cold"
			if warm {
				name = d.Name + "/warm"
			}
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				var reused, resynth int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					ctl := NewMemoryControllerCache()
					if warm {
						ctl = cloneCache(seed)
					}
					met := &Metrics{}
					b.StartTimer()
					if _, _, err := SynthesizeNetlist(edited, techmap.SpeedSplit,
						opts(ctl, met)); err != nil {
						b.Fatal(err)
					}
					b.StopTimer()
					reused = met.ControllersReused.Load()
					resynth = met.ControllersResynthesized.Load()
					if warm && reused == 0 {
						b.Fatal("warm run reused nothing")
					}
					b.StartTimer()
				}
				b.ReportMetric(float64(reused), "reused")
				b.ReportMetric(float64(resynth), "resynth")
			})
		}
	}
}

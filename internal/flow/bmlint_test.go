package flow

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"balsabm/internal/bmlint"
	"balsabm/internal/core"
	"balsabm/internal/designs"
	"balsabm/internal/hazver"
)

// armControl returns one arm's control netlist: the original for
// unopt, the clustered one for opt.
func armControl(t *testing.T, d *designs.Design, arm string) *core.Netlist {
	t.Helper()
	n := d.Control()
	if arm == "opt" {
		var err error
		n, _, err = core.OptimizeOpt(n, core.Options{})
		if err != nil {
			t.Fatalf("%s: clustering: %v", d.Name, err)
		}
	}
	return n
}

// TestBmlintGolden audits the compiled Burst-Mode specification of
// every component of every Table 3 design, both arms, and diffs the
// full report against examples/bmlint/<design>.bmlint. Run with
// -update to regenerate after an intentional output change (the flag
// is shared with the netlint goldens). The golden files double as the
// acceptance pin: every paper design must be BM-error-free, and any
// warning they contain is reviewed known-good.
func TestBmlintGolden(t *testing.T) {
	dir := "../../examples/bmlint"
	for _, d := range designs.All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			var sb strings.Builder
			for _, arm := range []string{"unopt", "opt"} {
				results, err := BmlintNetlist(armControl(t, d, arm))
				if err != nil {
					t.Fatalf("%s.%s: %v", d.Name, arm, err)
				}
				for _, res := range results {
					unit := d.Name + "." + arm + "." + res.Name
					fmt.Fprintf(&sb, "== %s ==\n", unit)
					sb.WriteString(bmlint.Format(res.Diags, unit))
					if bmlint.HasErrors(res.Diags) {
						t.Errorf("%s has BM errors:\n%s", unit, bmlint.Format(res.Diags, unit))
					}
				}
			}
			got := sb.String()
			golden := filepath.Join(dir, d.Name+".bmlint")
			if *updateNetlint {
				if err := os.MkdirAll(dir, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run go test ./internal/flow -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("bmlint report changed for %s:\n--- got ---\n%s--- want ---\n%s",
					d.Name, got, want)
			}
		})
	}
}

// TestBmlintGateAborts: error-severity findings must abort the gate as
// a *BmlintError carrying the failing spec's diagnostics.
func TestBmlintGateAborts(t *testing.T) {
	results := []bmlint.Result{
		{Name: "good", Diags: []bmlint.Diag{
			{Loc: bmlint.NoLoc, Severity: bmlint.SevInfo, Code: "BM200", Message: "report"},
		}},
		{Name: "bad", Diags: []bmlint.Diag{
			{Loc: bmlint.StateLoc(3), Severity: bmlint.SevError, Code: "BM007", Message: "state 3 unreachable from start state 0"},
		}},
	}
	err := bmlintClassify("fake", "opt", results, nil)
	if err == nil {
		t.Fatal("want gate error for BM-error finding")
	}
	var be *BmlintError
	if !errors.As(err, &be) {
		t.Fatalf("want *BmlintError, got %T: %v", err, err)
	}
	if be.Unit() != "fake.opt.bad" {
		t.Errorf("Unit() = %q", be.Unit())
	}
	if !strings.Contains(be.Error(), "BM007") {
		t.Errorf("error text misses the code: %s", be.Error())
	}
}

// TestBmlintGateRecordsFindings: non-error findings (warnings, the
// BM200 static report) are recorded on the metrics sink and streamed
// through NotifyBmlint, and the gate passes.
func TestBmlintGateRecordsFindings(t *testing.T) {
	results := []bmlint.Result{
		{Name: "warned", Diags: []bmlint.Diag{
			{Loc: bmlint.SigLoc("dead"), Severity: bmlint.SevWarning, Code: "BM103", Message: "output never toggled"},
			{Loc: bmlint.NoLoc, Severity: bmlint.SevInfo, Code: "BM200", Message: "report"},
		}},
	}
	met := &Metrics{}
	var streamed []BmlintFinding
	met.NotifyBmlint(func(f BmlintFinding) { streamed = append(streamed, f) })
	if err := bmlintClassify("fake", "opt", results, met); err != nil {
		t.Fatalf("warnings must not abort: %v", err)
	}
	got := met.BmlintFindings()
	if len(got) != len(streamed) || len(got) != 2 {
		t.Fatalf("want 2 recorded + streamed findings, got %d/%d: %v", len(got), len(streamed), got)
	}
	for _, f := range got {
		if f.Unit() != "fake.opt.warned" {
			t.Errorf("finding unit = %q", f.Unit())
		}
	}
	// -stats surfaces them through String.
	if s := met.String(); !strings.Contains(s, "BM103") || !strings.Contains(s, "fake.opt.warned") {
		t.Errorf("metrics text misses bmlint findings:\n%s", s)
	}
}

// TestBmlintGateTimed: the in-flow gate observes its stage timing and
// passes on every Table 3 design's unoptimized control netlist.
func TestBmlintGateTimed(t *testing.T) {
	d := designs.All()[0]
	r := newRunner(nil, nil)
	if err := r.bmlintGate(d.Name, "unopt", d.Control()); err != nil {
		t.Fatalf("gate failed on paper design: %v", err)
	}
	if s, ok := r.met.Timings.Snapshot()["bmlint"]; !ok || s.Count != 1 {
		t.Errorf("bmlint stage not observed: %+v", r.met.Timings.Snapshot())
	}
}

// TestAuditSixCheckerStack: the audit summary names all six checkers
// with per-checker counts, and the paper designs pass clean at the
// spec tier and the static hazard tier.
func TestAuditSixCheckerStack(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full design audit")
	}
	d := designs.All()[0]
	a, err := AuditDesign(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	sum := a.Summary()
	for _, part := range []string{"chlint ", "bmlint ", " covers; ", " mapped; ", "netlint ", "hazver "} {
		if !strings.Contains(sum, part) {
			t.Errorf("summary misses %q: %s", part, sum)
		}
	}
	if len(a.Specs) == 0 || a.SpecsChecked == 0 {
		t.Errorf("audit recorded no spec results: %d specs, %d checked", len(a.Specs), a.SpecsChecked)
	}
	if len(a.Hazver) != 2 {
		t.Errorf("audit recorded %d hazver reports, want one per arm", len(a.Hazver))
	}
	for _, h := range a.Hazver {
		if hazver.HasErrors(h.Diags) {
			t.Errorf("%s: paper-design arm has static hazards:\n%s", h.Name, hazver.Format(h.Diags, h.Name))
		}
		if h.Stats.Bursts == 0 {
			t.Errorf("%s: hazver verified no bursts: %+v", h.Name, h.Stats)
		}
	}
	for _, s := range a.Specs {
		if bmlint.HasErrors(s.Diags) {
			t.Errorf("%s: paper-design spec has BM errors:\n%s", s.Name, bmlint.Format(s.Diags, s.Name))
		}
	}
}

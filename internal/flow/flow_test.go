package flow

import (
	"fmt"
	"testing"

	"balsabm/internal/designs"
	"balsabm/internal/dpath"
)

func runDesign(t *testing.T, name string) *DesignResult {
	t.Helper()
	d, err := designs.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunDesign(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSystolicCounterFlow(t *testing.T) {
	r := runDesign(t, "systolic-counter")
	if r.SpeedImprovement() <= 0 {
		t.Errorf("no speed improvement: unopt %.2f, opt %.2f", r.Unopt.BenchTime, r.Opt.BenchTime)
	}
	if len(r.Opt.Controllers) >= len(r.Unopt.Controllers) {
		t.Errorf("clustering did not reduce controllers: %d -> %d",
			len(r.Unopt.Controllers), len(r.Opt.Controllers))
	}
	if len(r.Report.CallsSplit) == 0 {
		t.Error("no calls distributed in the systolic counter")
	}
}

func TestWaggingRegisterFlow(t *testing.T) {
	r := runDesign(t, "wagging-register")
	if r.SpeedImprovement() <= 0 {
		t.Errorf("no speed improvement: unopt %.2f, opt %.2f", r.Unopt.BenchTime, r.Opt.BenchTime)
	}
	// The output call's fragments land in the two bank clusters, which
	// the datapath steering keeps apart — so call distribution must
	// restore the call (the algorithm's fallback path).
	if len(r.Report.CallsSplit) == 0 {
		t.Error("expected the output call to be split")
	}
	if len(r.Report.CallsRestored) != 1 || r.Report.CallsRestored[0] != "wcall" {
		t.Errorf("expected wcall restored, got %v", r.Report.CallsRestored)
	}
	// Several clustered components remain (not one monolith).
	if len(r.Opt.Controllers) < 3 {
		t.Errorf("expected several clusters, got %d", len(r.Opt.Controllers))
	}
}

func TestSSEMCallRestored(t *testing.T) {
	// The jmp call's sites are activated by the datapath decoder, so
	// its fragments are never inlined anywhere: the call is restored.
	r := runDesign(t, "ssem")
	found := false
	for _, c := range r.Report.CallsRestored {
		if c == "calljmp" {
			found = true
		}
	}
	if !found {
		t.Errorf("calljmp not restored: %+v", r.Report)
	}
}

func TestStackFlow(t *testing.T) {
	r := runDesign(t, "stack")
	if r.SpeedImprovement() <= 0 {
		t.Errorf("no speed improvement: unopt %.2f, opt %.2f", r.Unopt.BenchTime, r.Opt.BenchTime)
	}
	if len(r.Opt.Controllers) != 2 {
		t.Errorf("stack should cluster into push and pop controllers, got %d", len(r.Opt.Controllers))
	}
}

func TestSSEMFlow(t *testing.T) {
	r := runDesign(t, "ssem")
	if r.SpeedImprovement() <= 0 {
		t.Errorf("no speed improvement: unopt %.2f, opt %.2f", r.Unopt.BenchTime, r.Opt.BenchTime)
	}
}

func TestFig2Summary(t *testing.T) {
	d, err := designs.ByName("systolic-counter")
	if err != nil {
		t.Fatal(err)
	}
	before, after, rep, err := Fig2Summary(d)
	if err != nil {
		t.Fatal(err)
	}
	if after.Components >= before.Components {
		t.Errorf("no collapse: %v -> %v", before, after)
	}
	if after.InternalChannels != 0 {
		t.Errorf("internal channels remain: %v", after)
	}
	if len(rep.Merges) == 0 {
		t.Error("no merges recorded")
	}
}

// The countdown loop program exercises the ADDI, BNZ and JMP-call paths
// (including the restored call) at gate level, with full data checks.
func TestSSEMLoopProgram(t *testing.T) {
	d := designs.SSEMWithProgram("ssem-loop", designs.SSEMLoopProgram(),
		"count acc 3..0 with a backwards branch",
		func(mem *dpath.Memory) error {
			if mem.Words[21] != 0 {
				return fmt.Errorf("mem[21] = %d, want 0 (last stored acc)", mem.Words[21])
			}
			return nil
		})
	r, err := RunDesign(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.SpeedImprovement() <= 0 {
		t.Errorf("no improvement on the loop program")
	}
}

package flow

import (
	"errors"
	"strings"
	"testing"

	"balsabm/internal/analysis"
	"balsabm/internal/core"
)

func TestLintGateAborts(t *testing.T) {
	n, err := core.ParseNetlist(`
(program a (rep (enc-early (p-to-p passive go_a) (p-to-p active up))))
(program b (rep (enc-early (p-to-p passive go_b) (p-to-p active up))))
`)
	if err != nil {
		t.Fatal(err)
	}
	met := &Metrics{}
	gateErr := LintNetlist(n, "broken", met)
	if gateErr == nil {
		t.Fatal("want gate error for multiply-driven channel")
	}
	var le *LintError
	if !errors.As(gateErr, &le) {
		t.Fatalf("want *LintError, got %T: %v", gateErr, gateErr)
	}
	if len(le.Diags) != 1 || le.Diags[0].Code != "CH010" {
		t.Fatalf("unexpected gate diags: %v", le.Diags)
	}
	if !strings.Contains(le.Error(), "CH010") {
		t.Errorf("error text misses the code: %s", le.Error())
	}
	// The lint stage is timed like any other.
	if s, ok := met.Timings.Snapshot()["lint"]; !ok || s.Count != 1 {
		t.Errorf("lint stage not observed: %+v", met.Timings.Snapshot())
	}
}

func TestLintGateRecordsWarnings(t *testing.T) {
	n, err := core.ParseNetlist(`
(program a (rep (enc-early (p-to-p passive go_a) (p-to-p active out_a))))
(program b (rep (enc-early (p-to-p passive go_b) (p-to-p active out_b))))
`)
	if err != nil {
		t.Fatal(err)
	}
	met := &Metrics{}
	var streamed []LintFinding
	met.NotifyLint(func(f LintFinding) { streamed = append(streamed, f) })
	if err := LintNetlist(n, "warned", met); err != nil {
		t.Fatalf("warnings must not abort: %v", err)
	}
	got := met.LintFindings()
	if len(got) != 2 || len(streamed) != 2 {
		t.Fatalf("want 2 recorded + 2 streamed CH013 findings, got %d/%d", len(got), len(streamed))
	}
	for _, f := range got {
		if f.Design != "warned" || f.Diag.Code != "CH013" || f.Diag.Severity != analysis.SevWarning {
			t.Errorf("unexpected finding %+v", f)
		}
	}
	// -stats surfaces them through String.
	if s := met.String(); !strings.Contains(s, "CH013") || !strings.Contains(s, "warned") {
		t.Errorf("metrics text misses lint findings:\n%s", s)
	}
}

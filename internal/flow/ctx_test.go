package flow

import (
	"context"
	"errors"
	"testing"
	"time"

	"balsabm/internal/designs"
	"balsabm/internal/techmap"
)

// A cancelled context must stop a flow run with the context's error
// instead of a partial result.
func TestRunDesignCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunDesignCtx(ctx, designs.SystolicCounter(), &Options{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunDesignCtx error = %v, want context.Canceled", err)
	}
}

// Cancelling mid-run must return promptly: leaf tasks still waiting
// for a worker slot are abandoned rather than drained.
func TestRunAllCtxCancelMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a multi-design flow")
	}
	ctx, cancel := context.WithCancel(context.Background())
	start := time.Now()
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	_, err := RunAllCtx(ctx, &Options{Workers: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunAllCtx error = %v, want context.Canceled", err)
	}
	// The full four-design run takes far longer than a second even on
	// fast machines; returning quickly shows leaves were abandoned.
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancelled run still took %v", elapsed)
	}
}

// SynthesizeNetlistCtx must propagate cancellation too (it is the
// server's path for submitted designs).
func TestSynthesizeNetlistCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n := designs.SystolicCounter().Control()
	_, _, err := SynthesizeNetlistCtx(ctx, n, techmap.SpeedSplit, &Options{Workers: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SynthesizeNetlistCtx error = %v, want context.Canceled", err)
	}
}

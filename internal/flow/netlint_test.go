package flow

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"balsabm/internal/cell"
	"balsabm/internal/core"
	"balsabm/internal/designs"
	"balsabm/internal/gates"
	"balsabm/internal/netlint"
	"balsabm/internal/techmap"
)

var updateNetlint = flag.Bool("update", false, "rewrite examples/netlint golden .netlint files")

// armNetlists synthesizes one arm of a design and returns the mapped
// controllers: the unopt arm maps the original control netlist
// area-shared; the opt arm clusters (with the given state limit) and
// maps speed-split.
func armNetlists(t *testing.T, d *designs.Design, arm string, maxStates int) []*gates.Netlist {
	t.Helper()
	n := d.Control()
	mode := techmap.AreaShared
	if arm == "opt" {
		var err error
		n, _, err = core.OptimizeOpt(n, core.Options{MaxStates: maxStates})
		if err != nil {
			t.Fatalf("%s: clustering: %v", d.Name, err)
		}
		mode = techmap.SpeedSplit
	}
	mapped, _, err := SynthesizeNetlist(n, mode, nil)
	if err != nil {
		t.Fatalf("%s.%s: synthesis: %v", d.Name, arm, err)
	}
	return mapped
}

// TestNetlintGolden audits the merged circuit of every Table 3 design,
// both arms, and diffs the full report (static stats plus rendered
// diagnostics) against examples/netlint/<design>.netlint. Run with
// -update to regenerate after an intentional output change. The golden
// files double as the satellite-4 pin: any warning they contain is
// reviewed known-good, and new findings fail this test.
func TestNetlintGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesizes every Table 3 design")
	}
	dir := "../../examples/netlint"
	for _, d := range designs.All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			var sb strings.Builder
			for _, arm := range []string{"unopt", "opt"} {
				mapped := armNetlists(t, d, arm, 0)
				res := NetlintMerged(d.Name, arm, mapped, cell.AMS035())
				fmt.Fprintf(&sb, "== %s ==\n", res.Name)
				fmt.Fprintf(&sb, "static: %s\n", res.Stats)
				sb.WriteString(netlint.Format(res.Diags, res.Name))
				if netlint.HasErrors(res.Diags) {
					t.Errorf("%s has NL errors:\n%s", res.Name, netlint.Format(res.Diags, res.Name))
				}
			}
			got := sb.String()
			golden := filepath.Join(dir, d.Name+".netlint")
			if *updateNetlint {
				if err := os.MkdirAll(dir, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run go test ./internal/flow -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("netlint report changed for %s:\n--- got ---\n%s--- want ---\n%s",
					d.Name, got, want)
			}
		})
	}
}

// TestNetlintCleanAllClusterVariants: the acceptance bar — zero
// NL-errors on every Table 3 design, optimized arm, across the
// clustering state-limit variants (unbounded, 8, 4).
func TestNetlintCleanAllClusterVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesizes every Table 3 design at three state limits")
	}
	for _, d := range designs.All() {
		for _, maxStates := range []int{0, 8, 4} {
			mapped := armNetlists(t, d, "opt", maxStates)
			res := NetlintMerged(d.Name, fmt.Sprintf("opt%d", maxStates), mapped, cell.AMS035())
			if netlint.HasErrors(res.Diags) {
				t.Errorf("%s maxStates=%d has NL errors:\n%s",
					d.Name, maxStates, netlint.Format(res.Diags, res.Name))
			}
		}
	}
}

// TestNetlintGateAborts: an injected defect — a second driver on one
// controller output — must abort the gate as a *NetlintError carrying
// the gate-precise diagnostic, before any simulation runs.
func TestNetlintGateAborts(t *testing.T) {
	nl := gates.New("bad")
	in := nl.Net("req")
	out := nl.Net("ack")
	nl.Inputs = []int{in}
	nl.Outputs = []int{out}
	nl.AddInstance("INV", []int{in}, out, 0)
	nl.AddInstance("BUF", []int{in}, out, 0) // second driver

	r := newRunner(nil, nil)
	_, err := r.netlintGate("fake", "unopt", []*gates.Netlist{nl})
	if err == nil {
		t.Fatal("want gate error for multiply-driven net")
	}
	var ne *NetlintError
	if !errors.As(err, &ne) {
		t.Fatalf("want *NetlintError, got %T: %v", err, err)
	}
	if ne.Circuit() != "fake.unopt" {
		t.Errorf("Circuit() = %q", ne.Circuit())
	}
	found := false
	for _, d := range ne.Diags {
		if d.Code == "NL001" && d.Loc.Name == "ack" {
			found = true
		}
	}
	if !found {
		t.Errorf("gate diags miss NL001 at net ack: %v", ne.Diags)
	}
	if !strings.Contains(ne.Error(), "NL001") {
		t.Errorf("error text misses the code: %s", ne.Error())
	}
	// The netlint stage is timed like any other.
	if s, ok := r.met.Timings.Snapshot()["netlint"]; !ok || s.Count != 1 {
		t.Errorf("netlint stage not observed: %+v", r.met.Timings.Snapshot())
	}
}

// TestNetlintGateRecordsFindings: non-error findings (a dead gate, the
// NL200 static report) are recorded on the metrics sink and streamed
// through NotifyNetlint, and the gate passes.
func TestNetlintGateRecordsFindings(t *testing.T) {
	nl := gates.New("warned")
	in := nl.Net("req")
	out := nl.Net("ack")
	dead := nl.Net("dead")
	nl.Inputs = []int{in}
	nl.Outputs = []int{out}
	nl.AddInstance("INV", []int{in}, out, 0)
	nl.AddInstance("INV", []int{in}, dead, 0) // NL100 + NL101

	met := &Metrics{}
	var streamed []NetlintFinding
	met.NotifyNetlint(func(f NetlintFinding) { streamed = append(streamed, f) })
	r := newRunner(nil, &Options{Metrics: met})
	st, err := r.netlintGate("fake", "opt", []*gates.Netlist{nl})
	if err != nil {
		t.Fatalf("warnings must not abort: %v", err)
	}
	if st.Cells != 2 || st.Depth != 1 {
		t.Errorf("static stats = %+v, want 2 cells depth 1", st)
	}
	got := met.NetlintFindings()
	if len(got) != len(streamed) || len(got) != 3 { // NL100 + NL101 + NL200
		t.Fatalf("want 3 recorded + streamed findings, got %d/%d: %v", len(got), len(streamed), got)
	}
	codes := map[string]bool{}
	for _, f := range got {
		if f.Circuit() != "fake.opt" {
			t.Errorf("finding circuit = %q", f.Circuit())
		}
		codes[f.Diag.Code] = true
	}
	for _, c := range []string{"NL100", "NL101", "NL200"} {
		if !codes[c] {
			t.Errorf("missing finding %s in %v", c, got)
		}
	}
	// -stats surfaces them through String.
	if s := met.String(); !strings.Contains(s, "NL101") || !strings.Contains(s, "fake.opt") {
		t.Errorf("metrics text misses netlint findings:\n%s", s)
	}
}

// TestRunDesignStaticStats: end-to-end — a full design run populates
// the per-arm Static report and DebugString carries it (so the
// worker-count determinism tests pin it too).
func TestRunDesignStaticStats(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full design")
	}
	d := designs.All()[0]
	res, err := RunDesign(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	for arm, st := range map[string]netlint.Stats{"unopt": res.Unopt.Static, "opt": res.Opt.Static} {
		if st.Cells == 0 || st.Area == 0 || st.Depth == 0 {
			t.Errorf("%s arm static stats empty: %+v", arm, st)
		}
	}
	if !strings.Contains(res.DebugString(), "static: ") {
		t.Errorf("DebugString misses static line:\n%s", res.DebugString())
	}
}

package flow

import (
	"testing"

	"balsabm/internal/ch"
	"balsabm/internal/core"
	"balsabm/internal/designs"
	"balsabm/internal/techmap"
)

func parseComponent(t *testing.T, name, src string) *ch.Program {
	t.Helper()
	e, err := ch.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return &ch.Program{Name: name, Body: e}
}

// The flow must produce byte-identical results at any worker count:
// fan-out preserves input order and the synthesis cache only unifies
// exact rename-isomorphisms.
func TestWorkerCountDeterminism(t *testing.T) {
	for _, name := range []string{"systolic-counter", "wagging-register", "stack", "ssem"} {
		name := name
		t.Run(name, func(t *testing.T) {
			d, err := designs.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			serial, err := RunDesign(d, &Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			wide, err := RunDesign(d, &Options{Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			if s, w := serial.DebugString(), wide.DebugString(); s != w {
				t.Errorf("Workers=1 and Workers=8 disagree:\n--- serial ---\n%s\n--- wide ---\n%s", s, w)
			}
		})
	}
}

// Rename-isomorphic components must synthesize exactly once; the
// reused results carry each component's own name and wires but the
// same numbers.
func TestSynthesisCacheDeduplicates(t *testing.T) {
	n := &core.Netlist{Components: []*ch.Program{
		parseComponent(t, "s1", `(rep (enc-early (p-to-p passive A) (seq (p-to-p active B) (p-to-p active C))))`),
		parseComponent(t, "s2", `(rep (enc-early (p-to-p passive D) (seq (p-to-p active E) (p-to-p active F))))`),
		parseComponent(t, "s3", `(rep (enc-early (p-to-p passive G) (seq (p-to-p active H) (p-to-p active I))))`),
	}}
	met := &Metrics{}
	mapped, results, err := SynthesizeNetlist(n, techmap.SpeedSplit, &Options{Metrics: met})
	if err != nil {
		t.Fatal(err)
	}
	if met.CacheMisses.Load() != 1 || met.CacheHits.Load() != 2 {
		t.Fatalf("hits=%d misses=%d, want 2/1", met.CacheHits.Load(), met.CacheMisses.Load())
	}
	for i, want := range []string{"s1", "s2", "s3"} {
		if results[i].Name != want || mapped[i].Name != want {
			t.Fatalf("result %d named %s/%s, want %s", i, results[i].Name, mapped[i].Name, want)
		}
	}
	for i := 1; i < len(results); i++ {
		a, b := results[0], results[i]
		if a.States != b.States || a.Products != b.Products || a.Cells != b.Cells ||
			a.Area != b.Area || a.Critical != b.Critical {
			t.Fatalf("reused result differs from seeded one:\n%+v\n%+v", a, b)
		}
	}
	// The reused netlists must carry their own boundary wires.
	if !mapped[1].HasNet("D_r") || mapped[1].HasNet("A_r") {
		t.Fatalf("s2 netlist wires not renamed: %v", mapped[1].NetNames)
	}
}

// Components whose channel names sort differently relative to their
// structure are NOT rename-isomorphic (the synthesis variable order
// differs) and must not share a cache entry.
func TestSynthesisCacheRespectsWireOrder(t *testing.T) {
	n := &core.Netlist{Components: []*ch.Program{
		// Passive channel sorts after the active ones...
		parseComponent(t, "s1", `(rep (enc-early (p-to-p passive P) (seq (p-to-p active A1) (p-to-p active A2))))`),
		// ...and before them here.
		parseComponent(t, "s2", `(rep (enc-early (p-to-p passive B) (seq (p-to-p active C1) (p-to-p active C2))))`),
	}}
	met := &Metrics{}
	if _, _, err := SynthesizeNetlist(n, techmap.SpeedSplit, &Options{Metrics: met}); err != nil {
		t.Fatal(err)
	}
	if met.CacheMisses.Load() != 2 || met.CacheHits.Load() != 0 {
		t.Fatalf("hits=%d misses=%d, want 0/2", met.CacheHits.Load(), met.CacheMisses.Load())
	}
}

// A real design reuses controller shapes heavily; the cache must see
// hits on SSEM (acceptance criterion: duplicated controllers
// synthesize once).
func TestSSEMCacheHits(t *testing.T) {
	d, err := designs.ByName("ssem")
	if err != nil {
		t.Fatal(err)
	}
	met := &Metrics{}
	if _, err := RunDesign(d, &Options{Metrics: met}); err != nil {
		t.Fatal(err)
	}
	if met.CacheHits.Load() == 0 {
		t.Error("no synthesis cache hits on ssem")
	}
	if met.CacheMisses.Load() == 0 {
		t.Error("no synthesis cache misses recorded")
	}
}

// Options passed by the caller must never be mutated by the flow
// (defaults are applied to a copy).
func TestOptionsNotMutated(t *testing.T) {
	opt := &Options{}
	d, err := designs.ByName("stack")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunDesign(d, opt); err != nil {
		t.Fatal(err)
	}
	if opt.Lib != nil || opt.TimeLimit != 0 || opt.EventLimit != 0 {
		t.Fatalf("caller's Options mutated: %+v", opt)
	}
}

package flow

import (
	"strings"
	"testing"
)

// TestTable3Shape locks in the qualitative findings of the paper's
// Table 3: every design speeds up and pays an area overhead; the
// control-dominated systolic counter gains the most and the
// datapath-dominated microprocessor core the least.
func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full four-design flow")
	}
	results, err := RunAll(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d designs", len(results))
	}
	improvements := map[string]float64{}
	for _, r := range results {
		if r.SpeedImprovement() <= 0 {
			t.Errorf("%s: no speed improvement (%.2f%%)", r.Design, r.SpeedImprovement())
		}
		if r.AreaOverhead() <= 0 {
			t.Errorf("%s: no area overhead (%.2f%%) — optimized circuits must be larger", r.Design, r.AreaOverhead())
		}
		improvements[r.Design] = r.SpeedImprovement()
	}
	// Ordering: counter > wagging > stack > ssem (the paper's column).
	order := []string{"systolic-counter", "wagging-register", "stack", "ssem"}
	for i := 0; i+1 < len(order); i++ {
		if improvements[order[i]] <= improvements[order[i+1]] {
			t.Errorf("improvement ordering violated: %s (%.2f%%) <= %s (%.2f%%)",
				order[i], improvements[order[i]], order[i+1], improvements[order[i+1]])
		}
	}
	// Magnitudes in the paper's regime: single to low-double digits.
	for d, imp := range improvements {
		if imp > 60 {
			t.Errorf("%s: improvement %.2f%% is implausibly large", d, imp)
		}
	}
	// The table formats and contains every design row.
	table := Table3(results)
	for _, d := range order {
		if !strings.Contains(table, d) {
			t.Errorf("table missing %s:\n%s", d, table)
		}
	}
	if !strings.Contains(table, "Improvement") || !strings.Contains(table, "Overhead") {
		t.Errorf("table missing columns:\n%s", table)
	}
}

// TestTable3Exact asserts the acceptance bar of the packed-cube
// engine: with cheap enumeration nodes and the lifted budget, every
// controller of every Table 3 design minimizes through the exact
// covering path — no greedy fallback anywhere in the published rows.
func TestTable3Exact(t *testing.T) {
	if testing.Short() {
		t.Skip("full four-design flow")
	}
	results, err := RunAll(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		for _, arm := range []struct {
			name string
			res  ArmResult
		}{{"unopt", r.Unopt}, {"opt", r.Opt}} {
			for _, c := range arm.res.Controllers {
				if !c.Exact {
					t.Errorf("%s/%s: controller %s fell back to greedy minimization",
						r.Design, arm.name, c.Name)
				}
			}
		}
	}
}

// Both arms must produce identical external behavior: the benchmark's
// functional validation runs inside RunDesign for both, so a passing
// run already certifies functional equivalence on the benchmark; here
// we additionally check the event counts are nonzero and the optimized
// arm did not cheat by doing less work.
func TestBothArmsDoRealWork(t *testing.T) {
	if testing.Short() {
		t.Skip("full four-design flow")
	}
	results, err := RunAll(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Unopt.Events == 0 || r.Opt.Events == 0 {
			t.Errorf("%s: zero simulation events (unopt %d, opt %d)", r.Design, r.Unopt.Events, r.Opt.Events)
		}
		if r.Unopt.DatapathArea != r.Opt.DatapathArea {
			t.Errorf("%s: datapath areas differ between arms: %.0f vs %.0f",
				r.Design, r.Unopt.DatapathArea, r.Opt.DatapathArea)
		}
	}
}

package flow

import (
	"context"
	"strings"
	"time"

	"balsabm/internal/cell"
	"balsabm/internal/core"
	"balsabm/internal/gates"
	"balsabm/internal/netlint"
	"balsabm/internal/techmap"
)

// NetlintError aborts a flow run: the merged gate-level circuit of one
// arm has error-severity netlint findings — it is miswired (multiple
// drivers, floating nets, an unbroken combinational loop, ...), so
// simulating it would measure broken hardware.
type NetlintError struct {
	Design string
	Arm    string // "unopt" or "opt"
	Diags  []netlint.Diag
}

func (e *NetlintError) Error() string {
	var sb strings.Builder
	sb.WriteString("netlint: ")
	sb.WriteString(e.Circuit())
	sb.WriteString(": ")
	if len(e.Diags) == 1 {
		sb.WriteString(e.Diags[0].String())
	} else {
		sb.WriteString("merged circuit fails netlint:")
		for _, d := range e.Diags {
			sb.WriteString("\n\t")
			sb.WriteString(d.String())
		}
	}
	return sb.String()
}

// Circuit names the audited circuit, e.g. "stack.opt".
func (e *NetlintError) Circuit() string { return e.Design + "." + e.Arm }

// NetlintFinding is one non-error netlist finding surfaced by the
// post-merge gate, tagged with the circuit it was found in.
type NetlintFinding struct {
	Design string
	Arm    string
	Diag   netlint.Diag
}

// Circuit names the audited circuit, e.g. "stack.opt".
func (f NetlintFinding) Circuit() string { return f.Design + "." + f.Arm }

// NetlintMerged merges one arm's mapped controllers into a single
// circuit (gates.Merge — the same wiring the simulator builds) and
// audits it, returning diagnostics plus the static area/depth report.
func NetlintMerged(design, arm string, mapped []*gates.Netlist, lib *cell.Library) netlint.Result {
	return netlint.Audit(gates.Merge(design+"."+arm, mapped), lib)
}

// NetlintGate audits the merged circuit of an arm's mapped controllers
// the way the flow's post-merge gate does: error findings abort as a
// *NetlintError; warnings and the NL200 static report are recorded on
// the metrics sink (shown by -stats, streamed on the daemon's "lint"
// SSE stage) and never block. The full audit result is returned either
// way so callers can report it.
func NetlintGate(design, arm string, mapped []*gates.Netlist, lib *cell.Library, met *Metrics) (netlint.Result, error) {
	start := time.Now()
	res := NetlintMerged(design, arm, mapped, lib)
	if met != nil {
		met.Timings.Observe("netlint", time.Since(start))
	}
	var errs []netlint.Diag
	for _, d := range res.Diags {
		if d.Severity == netlint.SevError {
			errs = append(errs, d)
		} else if met != nil {
			met.recordNetlint(NetlintFinding{Design: design, Arm: arm, Diag: d})
		}
	}
	if len(errs) > 0 {
		return res, &NetlintError{Design: design, Arm: arm, Diags: errs}
	}
	return res, nil
}

// netlintGate is the post-merge gate inside runDesign: after an arm's
// controllers are mapped, the merged circuit is audited before the
// (far more expensive) benchmark simulation runs.
func (r *runner) netlintGate(design, arm string, mapped []*gates.Netlist) (netlint.Stats, error) {
	res, err := NetlintGate(design, arm, mapped, r.opt.Lib, r.met)
	if err != nil {
		return netlint.Stats{}, err
	}
	return res.Stats, nil
}

// NetlintNetlist maps every component of a control netlist (no
// simulation, no benchmark) and audits each mapped controller plus the
// merged circuit, naming them "<design>.<arm>.<controller>" and
// "<design>.<arm>". Unlike the flow gate, error findings do not abort:
// the report is the product. Callers wanting the optimized arm cluster
// the netlist first (core.OptimizeOpt) and pass techmap.SpeedSplit.
func NetlintNetlist(ctx context.Context, design, arm string, n *core.Netlist, mode techmap.Mode, opt *Options) ([]netlint.Result, netlint.Result, error) {
	r := newRunner(ctx, opt)
	mapped, _, err := r.synthesizeNetlist(n, mode)
	if err != nil {
		return nil, netlint.Result{}, err
	}
	start := time.Now()
	ctrls := make([]netlint.Result, 0, len(mapped))
	for _, nl := range mapped {
		res := netlint.Audit(nl, r.opt.Lib)
		res.Name = design + "." + arm + "." + nl.Name
		ctrls = append(ctrls, res)
	}
	merged := NetlintMerged(design, arm, mapped, r.opt.Lib)
	r.met.Timings.Observe("netlint", time.Since(start))
	return ctrls, merged, nil
}

package flow

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"balsabm/internal/cell"
	"balsabm/internal/ch"
	"balsabm/internal/core"
	"balsabm/internal/gates"
	"balsabm/internal/netlint"
	"balsabm/internal/techmap"
)

// incrGen generates random legal-by-construction CH controller bodies,
// mirroring the chtobm fuzzer's Table 1 discipline so every program
// compiles into a well-formed Burst-Mode specification.
type incrGen struct {
	rng  *rand.Rand
	next int
}

func (g *incrGen) fresh() string {
	g.next++
	return fmt.Sprintf("c%d", g.next)
}

func (g *incrGen) gen(act ch.Activity, depth int) ch.Expr {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		return &ch.Chan{Kind: ch.PToP, Act: act, Name: g.fresh()}
	}
	if act == ch.Active {
		switch g.rng.Intn(4) {
		case 0:
			return &ch.Op{Kind: ch.EncEarly, A: g.gen(ch.Active, depth-1), B: g.gen(ch.Active, depth-1)}
		case 1:
			return &ch.Op{Kind: ch.EncMiddle, A: g.gen(ch.Active, depth-1), B: g.gen(ch.Active, depth-1)}
		case 2:
			return &ch.Op{Kind: ch.Seq, A: g.gen(ch.Active, depth-1), B: g.gen(ch.Active, depth-1)}
		default:
			return &ch.Op{Kind: ch.SeqOv, A: g.gen(ch.Active, depth-1), B: g.gen(ch.Active, depth-1)}
		}
	}
	switch g.rng.Intn(5) {
	case 0:
		return &ch.Op{Kind: ch.EncEarly, A: g.gen(ch.Passive, depth-1), B: g.genAny(depth - 1)}
	case 1:
		return &ch.Op{Kind: ch.EncMiddle, A: g.gen(ch.Passive, depth-1), B: g.genAny(depth - 1)}
	case 2:
		return &ch.Op{Kind: ch.EncLate, A: g.gen(ch.Passive, depth-1), B: g.genAny(depth - 1)}
	case 3:
		return &ch.Op{Kind: ch.Seq, A: g.gen(ch.Passive, depth-1), B: g.genAny(depth - 1)}
	default:
		return &ch.Op{Kind: ch.Mutex, A: g.gen(ch.Passive, depth-1), B: g.gen(ch.Passive, depth-1)}
	}
}

func (g *incrGen) genAny(depth int) ch.Expr {
	if g.rng.Intn(2) == 0 {
		return g.gen(ch.Active, depth)
	}
	return g.gen(ch.Passive, depth)
}

// component wraps a generated body as one controller of a netlist: a
// repeated enclosure on a private activation channel, the shape every
// handshake-component controller has.
func (g *incrGen) component(name string) *ch.Program {
	return &ch.Program{Name: name, Body: &ch.Rep{Body: &ch.Op{
		Kind: ch.EncEarly,
		A:    &ch.Chan{Kind: ch.PToP, Act: ch.Passive, Name: g.fresh() + "act"},
		B:    g.genAny(g.rng.Intn(3) + 1),
	}}}
}

// TestFuzzIncrementalEdit is the randomized acceptance pin for the
// tentpole: generate a netlist, edit one controller, and check that an
// incremental resynthesis against the cached base is byte-identical to
// a from-scratch run of the edited netlist — with the same bmlint and
// netlint verdicts (no error findings, and no diagnostics introduced
// or lost by splicing) and the expected reuse accounting.
func TestFuzzIncrementalEdit(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesizes dozens of random netlists")
	}
	rng := rand.New(rand.NewSource(20020304)) // DATE 2002
	lib := cell.AMS035()
	// Not every Table 1-legal program is synthesizable end to end (the
	// minimalist stage rejects some exotic shapes as inconsistent), so
	// samples where even a from-scratch run fails are discarded — the
	// property under test is scratch/incremental equivalence, and a
	// success quota keeps the discard rate honest.
	const wantIters = 15
	success := 0
	for i := 0; i < 120 && success < wantIters; i++ {
		g := &incrGen{rng: rng}
		ncomp := rng.Intn(2) + 2
		base := &core.Netlist{}
		for k := 0; k < ncomp; k++ {
			base.Components = append(base.Components, g.component(fmt.Sprintf("ctl%d", k)))
		}
		// Single-controller edit: regenerate one component's body.
		edited := &core.Netlist{}
		edit := rng.Intn(ncomp)
		for k, c := range base.Components {
			if k == edit {
				edited.Components = append(edited.Components, g.component(c.Name))
			} else {
				edited.Components = append(edited.Components, c)
			}
		}

		// Legal by construction: the edited netlist passes the bmlint
		// gate with no error findings.
		if _, err := BmlintGate("fuzz", "opt", edited, nil); err != nil {
			t.Fatalf("iter %d: bmlint gate failed: %v", i, err)
		}

		workers := rng.Intn(4) + 1
		ctl := NewMemoryControllerCache()
		seedMet := &Metrics{}
		if _, _, err := SynthesizeNetlist(base, techmap.SpeedSplit,
			&Options{Metrics: seedMet, Controllers: ctl, Workers: workers}); err != nil {
			continue // base not synthesizable; discard the sample
		}

		scratchMapped, scratchRes, err := SynthesizeNetlist(edited, techmap.SpeedSplit, &Options{Workers: workers})
		if err != nil {
			continue // edit not synthesizable; discard the sample
		}
		success++
		met := &Metrics{}
		incrMapped, incrRes, err := SynthesizeNetlist(edited, techmap.SpeedSplit,
			&Options{Metrics: met, Controllers: ctl, Workers: workers})
		if err != nil {
			t.Fatalf("iter %d: incremental synthesis: %v", i, err)
		}

		for k := range scratchMapped {
			a, err := gates.EncodeJSON(scratchMapped[k])
			if err != nil {
				t.Fatal(err)
			}
			b, err := gates.EncodeJSON(incrMapped[k])
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("iter %d: controller %s differs between scratch and incremental:\n%s\n%s",
					i, edited.Components[k].Name, a, b)
			}
		}
		if !reflect.DeepEqual(scratchRes, incrRes) {
			t.Fatalf("iter %d: reports differ", i)
		}
		// Everything the edit left alone must have been served from the
		// cache: no distinct canonical shape is resynthesized unless the
		// edited component introduced it.
		if met.ControllersReused.Load() == 0 {
			t.Fatalf("iter %d: incremental run reused nothing", i)
		}
		if met.ControllersResynthesized.Load() > 1 {
			t.Fatalf("iter %d: resynthesized %d shapes for a one-controller edit",
				i, met.ControllersResynthesized.Load())
		}

		// The merged circuits carry identical netlint verdicts, with no
		// error-severity findings on the spliced result.
		scratchAudit, err := NetlintGate("fuzz", "opt", scratchMapped, lib, nil)
		if err != nil {
			t.Fatalf("iter %d: scratch netlint errors: %v", i, err)
		}
		incrAudit, err := NetlintGate("fuzz", "opt", incrMapped, lib, nil)
		if err != nil {
			t.Fatalf("iter %d: spliced netlint errors: %v", i, err)
		}
		if netlint.Format(scratchAudit.Diags, "fuzz") != netlint.Format(incrAudit.Diags, "fuzz") {
			t.Fatalf("iter %d: splicing changed the netlint report", i)
		}
	}
	if success < wantIters {
		t.Fatalf("only %d/%d samples were synthesizable — generator degraded", success, wantIters)
	}
}

package flow

import (
	"context"
	"fmt"
	"strings"
	"time"

	"balsabm/internal/ch"
	"balsabm/internal/chtobm"
	"balsabm/internal/core"
	"balsabm/internal/hazver"
	"balsabm/internal/minimalist"
	"balsabm/internal/techmap"
)

// HazverError aborts a flow run: the static gate-level hazard
// verification found an error-severity diagnostic in one arm — a
// specified burst on which the mapped logic can glitch (HZ001/HZ002)
// or disagrees with its specification at a burst endpoint (HZ003), so
// the measured hardware would not be hazard-free.
type HazverError struct {
	Design string
	Arm    string // "unopt" or "opt"
	Diags  []hazver.Diag
}

func (e *HazverError) Error() string {
	var sb strings.Builder
	sb.WriteString("hazver: ")
	sb.WriteString(e.Circuit())
	sb.WriteString(": ")
	if len(e.Diags) == 1 {
		sb.WriteString(e.Diags[0].String())
	} else {
		sb.WriteString("static hazard verification failed:")
		for _, d := range e.Diags {
			sb.WriteString("\n\t")
			sb.WriteString(d.String())
		}
	}
	return sb.String()
}

// Circuit names the verified circuit, e.g. "stack.opt".
func (e *HazverError) Circuit() string { return e.Design + "." + e.Arm }

// HazverFinding is one non-error hazard-verification finding surfaced
// by the post-mapping gate, tagged with the circuit it was found in.
type HazverFinding struct {
	Design string
	Arm    string
	Diag   hazver.Diag
}

// Circuit names the verified circuit, e.g. "stack.opt".
func (f HazverFinding) Circuit() string { return f.Design + "." + f.Arm }

// hazverUnits derives the verification units of one arm: one unit per
// distinct canonical controller shape (rename-isomorphic components
// verify identically, so each shape is proved once on a
// representative), synthesized and technology mapped in the arm's
// mode. The baseline arm verifies the synthesized AreaShared circuit
// even for shapes the flow itself would emit from the hand library —
// hclib circuits use internal state the Burst-Mode specification does
// not name, so their hazard freedom is established dynamically by the
// benchmark simulations instead.
func (r *runner) hazverUnits(n *core.Netlist, mode techmap.Mode) ([]hazver.Unit, error) {
	seen := map[string]bool{}
	var units []hazver.Unit
	for _, comp := range n.Components {
		if err := r.ctx.Err(); err != nil {
			return nil, err
		}
		key := "raw|" + comp.Name
		if canon, ok := ch.CanonicalizeProgram(comp); ok {
			key = canon.Key
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		sp, err := chtobm.Compile(comp)
		if err != nil {
			return nil, fmt.Errorf("hazver: %s: %w", comp.Name, err)
		}
		ctrl, err := minimalist.SynthesizeOpt(sp, minimalist.Options{Pool: r.pool, Ctx: r.ctx})
		if err != nil {
			return nil, fmt.Errorf("hazver: %s: %w", comp.Name, err)
		}
		nl, err := techmap.MapController(ctrl, mode, r.opt.Lib)
		if err != nil {
			return nil, fmt.Errorf("hazver: %s: %w", comp.Name, err)
		}
		units = append(units, hazver.Unit{
			Name:        comp.Name,
			Vars:        ctrl.Vars,
			Outputs:     ctrl.Spec.Outputs,
			StateBits:   ctrl.StateBits,
			Transitions: ctrl.Transitions,
			Netlist:     nl,
		})
	}
	return units, nil
}

// HazverNetlist statically verifies every controller of a control
// netlist for hazard freedom on its specified input bursts: each
// distinct canonical shape is synthesized, mapped in the given mode,
// and its merged mapped logic checked by two-pass ternary evaluation
// (hazver.Audit). Unlike the flow gate, error findings do not abort:
// the report is the product. Callers wanting the optimized arm cluster
// the netlist first (core.OptimizeOpt) and pass techmap.SpeedSplit.
func HazverNetlist(ctx context.Context, design, arm string, n *core.Netlist, mode techmap.Mode, opt *Options) (hazver.Result, error) {
	r := newRunner(ctx, opt)
	units, err := r.hazverUnits(n, mode)
	if err != nil {
		return hazver.Result{}, err
	}
	start := time.Now()
	res := hazver.Audit(design+"."+arm, units, r.opt.Lib, hazver.Options{Pool: r.pool, Ctx: r.ctx})
	r.met.Timings.Observe("hazver", time.Since(start))
	return res, nil
}

// hazverGate is the post-mapping gate inside runDesign: after an arm's
// controllers are mapped and the merged circuit passes netlint, every
// controller shape's mapped logic is statically verified hazard-free
// on its specified bursts. Error findings abort the arm as a
// *HazverError; warnings and the HZ200 static report land on the
// metrics sink (shown by -stats, streamed on the daemon's "lint" SSE
// stage) and never block. The full audit result is returned either way
// so callers can report it.
func (r *runner) hazverGate(design, arm string, n *core.Netlist, mode techmap.Mode) (hazver.Result, error) {
	units, err := r.hazverUnits(n, mode)
	if err != nil {
		return hazver.Result{}, err
	}
	start := time.Now()
	res := hazver.Audit(design+"."+arm, units, r.opt.Lib, hazver.Options{Pool: r.pool, Ctx: r.ctx})
	r.met.Timings.Observe("hazver", time.Since(start))
	var errs []hazver.Diag
	for _, d := range res.Diags {
		if d.Severity == hazver.SevError {
			errs = append(errs, d)
		} else {
			r.met.recordHazver(HazverFinding{Design: design, Arm: arm, Diag: d})
		}
	}
	if len(errs) > 0 {
		return res, &HazverError{Design: design, Arm: arm, Diags: errs}
	}
	return res, nil
}

// HazverGate runs the post-mapping static hazard gate the way the
// flow's runDesign does, for callers outside a flow run (the daemon's
// synth executor): error findings abort as a *HazverError; warnings
// and the HZ200 report land on opt.Metrics and never block.
func HazverGate(ctx context.Context, design, arm string, n *core.Netlist, mode techmap.Mode, opt *Options) (hazver.Result, error) {
	return newRunner(ctx, opt).hazverGate(design, arm, n, mode)
}

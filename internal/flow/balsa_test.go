package flow

import (
	"testing"

	"balsabm/internal/designs"
)

// The Balsa-compiled designs run the complete back-end (Fig 1 from the
// very top: Balsa program -> balsa-c -> netlist -> split -> optimize ->
// synthesize -> map -> simulate) and show the Table 3 behavior.
func TestBalsaDesignFlows(t *testing.T) {
	if testing.Short() {
		t.Skip("full four-design balsa flow")
	}
	all, err := designs.AllBalsa()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range all {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			r, err := RunDesign(d, nil)
			if err != nil {
				t.Fatal(err)
			}
			if r.SpeedImprovement() <= 0 {
				t.Errorf("no speed improvement: %.2f vs %.2f ns",
					r.Unopt.BenchTime, r.Opt.BenchTime)
			}
			if len(r.Opt.Controllers) >= len(r.Unopt.Controllers) {
				t.Errorf("no clustering: %d -> %d controllers",
					len(r.Unopt.Controllers), len(r.Opt.Controllers))
			}
		})
	}
}

// The balsa-compiled counter must reproduce the hand-built counter's
// clustering outcome: full collapse with all three calls distributed.
func TestBalsaCounterClusters(t *testing.T) {
	d, err := designs.BalsaCounter()
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunDesign(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Opt.Controllers) != 1 {
		t.Errorf("expected full collapse, got %d controllers", len(r.Opt.Controllers))
	}
	if len(r.Report.CallsSplit) != 3 || len(r.Report.CallsRestored) != 0 {
		t.Errorf("calls: split %v restored %v", r.Report.CallsSplit, r.Report.CallsRestored)
	}
}

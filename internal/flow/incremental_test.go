package flow

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"balsabm/internal/ch"
	"balsabm/internal/core"
	"balsabm/internal/gates"
	"balsabm/internal/techmap"
)

// incrSource is a two-controller netlist whose components share no
// canonical shape, so reuse accounting is unambiguous.
const incrSource = `
(program stage1
  (rep
    (enc-early (p-to-p passive activate)
      (seq (p-to-p active left)
           (p-to-p active right)))))
(program stage2
  (rep
    (enc-late (p-to-p passive go)
      (seq-ov (p-to-p active a)
              (p-to-p active b)))))
`

// incrEdited is incrSource with stage2's protocol changed: stage1's
// canonical subtree is untouched, stage2's is not.
const incrEdited = `
(program stage1
  (rep
    (enc-early (p-to-p passive activate)
      (seq (p-to-p active left)
           (p-to-p active right)))))
(program stage2
  (rep
    (enc-middle (p-to-p passive go)
      (seq-ov (p-to-p active a)
              (p-to-p active b)))))
`

func parseIncr(t *testing.T, src string) *core.Netlist {
	t.Helper()
	n, err := core.ParseNetlist(src)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// synthAll synthesizes src speed-split with the given cache attached
// (nil for none) and returns the mapped netlists in their deterministic
// serialized form, the controller summaries, and the run's metrics.
func synthAll(t *testing.T, src string, ctl ControllerCache, workers int) ([][]byte, []ControllerResult, *Metrics) {
	t.Helper()
	met := &Metrics{}
	mapped, res, err := SynthesizeNetlist(parseIncr(t, src), techmap.SpeedSplit,
		&Options{Metrics: met, Controllers: ctl, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	enc := make([][]byte, len(mapped))
	for i, nl := range mapped {
		enc[i], err = gates.EncodeJSON(nl)
		if err != nil {
			t.Fatal(err)
		}
	}
	return enc, res, met
}

// The tentpole invariant: a warm controller cache changes nothing but
// the metrics. Cold-with-cache, warm-with-cache, and no-cache runs all
// emit byte-identical netlists and equal reports, at any worker count.
func TestIncrementalWarmCacheByteIdentical(t *testing.T) {
	scratch, scratchRes, scratchMet := synthAll(t, incrSource, nil, 0)
	if r := scratchMet.ControllersReused.Load() + scratchMet.ControllersResynthesized.Load(); r != 0 {
		t.Fatalf("cacheless run bumped incremental counters: %d", r)
	}

	ctl := NewMemoryControllerCache()
	cold, coldRes, coldMet := synthAll(t, incrSource, ctl, 0)
	if got := coldMet.ControllersResynthesized.Load(); got != 2 {
		t.Fatalf("cold run resynthesized %d controllers, want 2", got)
	}
	if got := coldMet.ControllersReused.Load(); got != 0 {
		t.Fatalf("cold run reused %d controllers, want 0", got)
	}
	if ctl.Len() != 2 {
		t.Fatalf("cache holds %d controllers after cold run, want 2", ctl.Len())
	}

	for _, workers := range []int{1, 4} {
		warm, warmRes, warmMet := synthAll(t, incrSource, ctl, workers)
		if got := warmMet.ControllersReused.Load(); got != 2 {
			t.Fatalf("j=%d: warm run reused %d controllers, want 2", workers, got)
		}
		if got := warmMet.ControllersResynthesized.Load(); got != 0 {
			t.Fatalf("j=%d: warm run resynthesized %d controllers, want 0", workers, got)
		}
		for i := range scratch {
			if !bytes.Equal(scratch[i], cold[i]) || !bytes.Equal(scratch[i], warm[i]) {
				t.Fatalf("j=%d: controller %d differs across scratch/cold/warm runs", workers, i)
			}
		}
		if !reflect.DeepEqual(scratchRes, coldRes) || !reflect.DeepEqual(scratchRes, warmRes) {
			t.Fatalf("j=%d: controller reports differ across runs", workers)
		}
	}
}

// An edit to one controller resynthesizes exactly that controller; the
// other splices in from the cache, and the merged result still matches
// a from-scratch run of the edited netlist.
func TestIncrementalSingleEditReusesRest(t *testing.T) {
	ctl := NewMemoryControllerCache()
	synthAll(t, incrSource, ctl, 0) // seed with the base design

	scratch, scratchRes, _ := synthAll(t, incrEdited, nil, 0)
	incr, incrRes, met := synthAll(t, incrEdited, ctl, 0)
	if got := met.ControllersReused.Load(); got != 1 {
		t.Fatalf("reused %d controllers, want 1 (stage1)", got)
	}
	if got := met.ControllersResynthesized.Load(); got != 1 {
		t.Fatalf("resynthesized %d controllers, want 1 (stage2)", got)
	}
	for i := range scratch {
		if !bytes.Equal(scratch[i], incr[i]) {
			t.Fatalf("controller %d differs from scratch after incremental edit", i)
		}
	}
	if !reflect.DeepEqual(scratchRes, incrRes) {
		t.Fatalf("reports differ: %+v vs %+v", scratchRes, incrRes)
	}
}

// A cached controller crosses designs: a component with different
// channel and component names but the same canonical shape reuses the
// blob, and Rename gives it the new design's wire names. The renamed
// channels (go, mid, out) keep the lexicographic order of the
// originals (activate, left, right) — the Key's #order condition —
// since the synthesis pipeline orders variables by wire-name sort.
func TestIncrementalCrossDesignReuse(t *testing.T) {
	const other = `
(program renamed
  (rep
    (enc-early (p-to-p passive go)
      (seq (p-to-p active mid)
           (p-to-p active out)))))
`
	ctl := NewMemoryControllerCache()
	synthAll(t, incrSource, ctl, 0) // seeds stage1's shape, among others

	scratch, scratchRes, _ := synthAll(t, other, nil, 0)
	incr, incrRes, met := synthAll(t, other, ctl, 0)
	if got := met.ControllersReused.Load(); got != 1 {
		t.Fatalf("cross-design reuse: reused %d, want 1", got)
	}
	if !bytes.Equal(scratch[0], incr[0]) || !reflect.DeepEqual(scratchRes, incrRes) {
		t.Fatal("cross-design reuse altered the synthesized controller")
	}
	if incrRes[0].Name != "renamed" {
		t.Fatalf("spliced controller kept name %q, want renamed", incrRes[0].Name)
	}
}

// A corrupt cached blob must degrade to resynthesis (never an error or
// wrong output) and be overwritten with a good one.
func TestIncrementalCorruptBlobFallsThrough(t *testing.T) {
	n := parseIncr(t, incrSource)
	canon, ok := ch.CanonicalizeProgram(n.Components[0])
	if !ok {
		t.Fatal("stage1 failed to canonicalize")
	}
	key := ControllerKey(techmap.SpeedSplit, true, canon.Digest())

	ctl := NewMemoryControllerCache()
	ctl.PutController(key, []byte("not json"))

	scratch, _, _ := synthAll(t, incrSource, nil, 0)
	incr, _, met := synthAll(t, incrSource, ctl, 0)
	if got := met.ControllersReused.Load(); got != 0 {
		t.Fatalf("corrupt blob counted as reuse: %d", got)
	}
	if got := met.ControllersResynthesized.Load(); got != 2 {
		t.Fatalf("resynthesized %d, want 2", got)
	}
	for i := range scratch {
		if !bytes.Equal(scratch[i], incr[i]) {
			t.Fatalf("controller %d differs after corrupt-blob fallthrough", i)
		}
	}
	blob, okGet := ctl.GetController(key)
	if !okGet {
		t.Fatal("resynthesis did not write the blob back")
	}
	if _, err := decodeController(blob); err != nil {
		t.Fatalf("overwritten blob still corrupt: %v", err)
	}
}

// The blob encoding round-trips exactly and re-encodes to the same
// bytes, which is what lets identical syntheses dedupe in the
// content-addressed store.
func TestControllerBlobRoundTrip(t *testing.T) {
	ctl := NewMemoryControllerCache()
	synthAll(t, incrSource, ctl, 0)
	n := parseIncr(t, incrSource)
	canon, ok := ch.CanonicalizeProgram(n.Components[1])
	if !ok {
		t.Fatal("stage2 failed to canonicalize")
	}
	blob, okGet := ctl.GetController(ControllerKey(techmap.SpeedSplit, true, canon.Digest()))
	if !okGet {
		t.Fatal("stage2 blob missing after seeding run")
	}
	e, err := decodeController(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.wires) == 0 || e.netlist == nil {
		t.Fatalf("decoded entry incomplete: %d wires", len(e.wires))
	}
	again, err := encodeController(e)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, again) {
		t.Fatal("blob encoding is not stable across a round trip")
	}
}

// Two rename-isomorphic components in one netlist share a memo entry;
// whichever seeds it, each spliced output must equal a solo direct
// synthesis of that component (addDerivedRenames carries the wire
// rename into techmap's helper nets). This pins the splicing path
// independent of seeding order, worker count, and cache temperature.
func TestIsomorphSpliceMatchesDirect(t *testing.T) {
	const twin = `
(program one
  (rep
    (enc-early (p-to-p passive act)
      (seq (p-to-p active lft)
           (p-to-p active rgt)))))
(program two
  (rep
    (enc-early (p-to-p passive go)
      (seq (p-to-p active mid)
           (p-to-p active out)))))
`
	soloOne, _, _ := synthAll(t, twin[:strings.Index(twin, "(program two")], nil, 0)
	soloTwo, _, _ := synthAll(t, twin[strings.Index(twin, "(program two"):], nil, 0)
	for trial := 0; trial < 10; trial++ {
		both, _, met := synthAll(t, twin, nil, 8)
		if met.CacheHits.Load() != 1 {
			t.Fatalf("trial %d: twins did not share the memo entry", trial)
		}
		if !bytes.Equal(both[0], soloOne[0]) {
			t.Fatalf("trial %d: component one differs from its solo synthesis", trial)
		}
		if !bytes.Equal(both[1], soloTwo[0]) {
			t.Fatalf("trial %d: component two differs from its solo synthesis", trial)
		}
	}
}

// ControllerKey must separate mapping mode, audit setting, and digest —
// a blob synthesized under one configuration must never serve another.
func TestControllerKeySeparation(t *testing.T) {
	keys := map[string]bool{
		ControllerKey(techmap.SpeedSplit, true, "d1"):  true,
		ControllerKey(techmap.SpeedSplit, false, "d1"): true,
		ControllerKey(techmap.AreaShared, true, "d1"):  true,
		ControllerKey(techmap.SpeedSplit, true, "d2"):  true,
	}
	if len(keys) != 4 {
		t.Fatalf("key collisions: %v", keys)
	}
}

func TestMemoryControllerCache(t *testing.T) {
	c := NewMemoryControllerCache()
	if _, ok := c.GetController("k"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.PutController("k", []byte("v"))
	if blob, ok := c.GetController("k"); !ok || string(blob) != "v" {
		t.Fatalf("get after put: %q/%v", blob, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("len %d, want 1", c.Len())
	}
}

func TestPlanIncremental(t *testing.T) {
	base := parseIncr(t, incrSource)
	edited := parseIncr(t, incrEdited)
	p := PlanIncremental(base, edited)
	if !reflect.DeepEqual(p.Reused, []string{"stage1"}) {
		t.Fatalf("reused %v, want [stage1]", p.Reused)
	}
	if !reflect.DeepEqual(p.Resynthesize, []string{"stage2"}) {
		t.Fatalf("resynthesize %v, want [stage2]", p.Resynthesize)
	}
	if !reflect.DeepEqual(p.BaseOnly, []string{"stage2"}) {
		t.Fatalf("base-only %v, want [stage2]", p.BaseOnly)
	}
	if got := p.String(); got != "incremental plan: 1 reuse, 1 resynthesize, 1 base-only" {
		t.Fatalf("plan string %q", got)
	}
	// Identity diff: everything reuses.
	same := PlanIncremental(base, parseIncr(t, incrSource))
	if len(same.Resynthesize) != 0 || len(same.BaseOnly) != 0 || len(same.Reused) != 2 {
		t.Fatalf("identity plan: %+v", same)
	}
}

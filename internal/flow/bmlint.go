package flow

import (
	"fmt"
	"strings"
	"time"

	"balsabm/internal/bmlint"
	"balsabm/internal/chtobm"
	"balsabm/internal/core"
)

// BmlintError aborts a flow run: a compiled Burst-Mode specification
// of one arm has error-severity bmlint findings — it is ill-formed
// (maximal-set or polarity violations, unreachable states, ...), so
// handing it to the minimizer would synthesize broken hardware.
type BmlintError struct {
	Design string
	Arm    string // "unopt" or "opt"
	Spec   string // the component whose spec failed
	Diags  []bmlint.Diag
}

func (e *BmlintError) Error() string {
	var sb strings.Builder
	sb.WriteString("bmlint: ")
	sb.WriteString(e.Unit())
	sb.WriteString(": ")
	if len(e.Diags) == 1 {
		sb.WriteString(e.Diags[0].String())
	} else {
		sb.WriteString("compiled spec fails bmlint:")
		for _, d := range e.Diags {
			sb.WriteString("\n\t")
			sb.WriteString(d.String())
		}
	}
	return sb.String()
}

// Unit names the audited spec, e.g. "stack.opt.push_seq1".
func (e *BmlintError) Unit() string { return e.Design + "." + e.Arm + "." + e.Spec }

// BmlintFinding is one non-error spec finding surfaced by the
// post-compile gate, tagged with the arm and component it was found
// in.
type BmlintFinding struct {
	Design string
	Arm    string
	Spec   string
	Diag   bmlint.Diag
}

// Unit names the audited spec, e.g. "stack.opt.push_seq1".
func (f BmlintFinding) Unit() string { return f.Design + "." + f.Arm + "." + f.Spec }

// BmlintNetlist compiles every component of a control netlist to its
// Burst-Mode specification (chtobm.CompileLoose, so even specs the
// final Check would reject reach the analyzer) and audits each,
// returning one result per component in netlist order. Unlike the
// flow gate, error findings do not abort: the report is the product.
func BmlintNetlist(n *core.Netlist) ([]bmlint.Result, error) {
	results := make([]bmlint.Result, 0, len(n.Components))
	for _, p := range n.Components {
		sp, err := chtobm.CompileLoose(p)
		if err != nil {
			return nil, fmt.Errorf("bmlint: %s: %w", p.Name, err)
		}
		results = append(results, bmlint.Audit(sp))
	}
	return results, nil
}

// BmlintGate audits every compiled spec of an arm's control netlist
// the way the flow's post-compile gate does: error findings abort as
// a *BmlintError for the first failing component; warnings and the
// BM200 complexity report are recorded on the metrics sink (shown by
// -stats, streamed on the daemon's "lint" SSE stage) and never block.
// The per-component audit results are returned either way so callers
// can report them.
func BmlintGate(design, arm string, n *core.Netlist, met *Metrics) ([]bmlint.Result, error) {
	start := time.Now()
	results, err := BmlintNetlist(n)
	if met != nil {
		met.Timings.Observe("bmlint", time.Since(start))
	}
	if err != nil {
		return nil, err
	}
	if err := bmlintClassify(design, arm, results, met); err != nil {
		return results, err
	}
	return results, nil
}

// bmlintClassify splits audit results the gate's way: non-error
// findings are recorded on the metrics sink, error findings abort as a
// *BmlintError for the first failing spec.
func bmlintClassify(design, arm string, results []bmlint.Result, met *Metrics) error {
	var firstErr *BmlintError
	for _, res := range results {
		var errs []bmlint.Diag
		for _, d := range res.Diags {
			if d.Severity == bmlint.SevError {
				errs = append(errs, d)
			} else if met != nil {
				met.recordBmlint(BmlintFinding{Design: design, Arm: arm, Spec: res.Name, Diag: d})
			}
		}
		if len(errs) > 0 && firstErr == nil {
			firstErr = &BmlintError{Design: design, Arm: arm, Spec: res.Name, Diags: errs}
		}
	}
	if firstErr != nil {
		return firstErr
	}
	return nil
}

// bmlintGate is the post-compile gate inside runDesign: before an
// arm's components are synthesized, every compiled spec is audited.
// It runs sequentially over the netlist (the specs are cheap to
// compile), so recorded findings are in deterministic netlist order
// at any worker count.
func (r *runner) bmlintGate(design, arm string, n *core.Netlist) error {
	_, err := BmlintGate(design, arm, n, r.met)
	return err
}

package flow

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"balsabm/internal/cell"
	"balsabm/internal/ch"
	"balsabm/internal/chtobm"
	"balsabm/internal/core"
	"balsabm/internal/designs"
	"balsabm/internal/gates"
	"balsabm/internal/hazver"
	"balsabm/internal/minimalist"
	"balsabm/internal/techmap"
)

// TestHazverGolden statically verifies every Table 3 design, both
// arms, and diffs the full report (static stats plus rendered
// diagnostics, including the HZ200 per-function X-depth table) against
// examples/hazver/<design>.hazver. Run with -update to regenerate
// after an intentional output change. The goldens double as the
// acceptance pin: all four designs must verify hazard-free — any
// HZ-error fails the test outright.
func TestHazverGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesizes every Table 3 design")
	}
	dir := "../../examples/hazver"
	for _, d := range designs.All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			var sb strings.Builder
			for _, arm := range []string{"unopt", "opt"} {
				n := d.Control()
				mode := techmap.AreaShared
				if arm == "opt" {
					var err error
					n, _, err = core.OptimizeOpt(n, core.Options{})
					if err != nil {
						t.Fatalf("%s: clustering: %v", d.Name, err)
					}
					mode = techmap.SpeedSplit
				}
				res, err := HazverNetlist(context.Background(), d.Name, arm, n, mode, nil)
				if err != nil {
					t.Fatalf("%s.%s: %v", d.Name, arm, err)
				}
				fmt.Fprintf(&sb, "== %s ==\n", res.Name)
				fmt.Fprintf(&sb, "static: %s\n", res.Stats)
				sb.WriteString(hazver.Format(res.Diags, res.Name))
				if hazver.HasErrors(res.Diags) {
					t.Errorf("%s has HZ errors:\n%s", res.Name, hazver.Format(res.Diags, res.Name))
				}
			}
			got := sb.String()
			golden := filepath.Join(dir, d.Name+".hazver")
			if *updateNetlint {
				if err := os.MkdirAll(dir, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run go test ./internal/flow -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("hazver report changed for %s:\n--- got ---\n%s--- want ---\n%s",
					d.Name, got, want)
			}
		})
	}
}

// synthUnit pairs a synthesized controller with its mapped netlist and
// the hazver verification unit built from both.
type synthUnit struct {
	ctrl *minimalist.Controller
	nl   *gates.Netlist
	unit hazver.Unit
}

// synthHazverUnits mirrors runner.hazverUnits but keeps the
// intermediate controllers, so tests can tamper with netlists and
// cross-check techmap.CheckMapped on the same synthesis products.
func synthHazverUnits(t testing.TB, n *core.Netlist, mode techmap.Mode) []synthUnit {
	t.Helper()
	lib := cell.AMS035()
	seen := map[string]bool{}
	var out []synthUnit
	for _, comp := range n.Components {
		key := "raw|" + comp.Name
		if canon, ok := ch.CanonicalizeProgram(comp); ok {
			key = canon.Key
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		sp, err := chtobm.Compile(comp)
		if err != nil {
			t.Fatalf("%s: compile: %v", comp.Name, err)
		}
		ctrl, err := minimalist.Synthesize(sp)
		if err != nil {
			t.Fatalf("%s: synthesize: %v", comp.Name, err)
		}
		nl, err := techmap.MapController(ctrl, mode, lib)
		if err != nil {
			t.Fatalf("%s: map: %v", comp.Name, err)
		}
		out = append(out, synthUnit{ctrl: ctrl, nl: nl, unit: hazver.Unit{
			Name:        comp.Name,
			Vars:        ctrl.Vars,
			Outputs:     ctrl.Spec.Outputs,
			StateBits:   ctrl.StateBits,
			Transitions: ctrl.Transitions,
			Netlist:     nl,
		}})
	}
	return out
}

// TestHazverInjectedHazard is the acceptance-criterion differential:
// replace one output's hazard-free driver with the classic glitching
// mux decomposition z = NAND(NAND(s, old), NAND(!s, old)) over a burst
// input s that changes while the specification holds z stable at 1.
// The tampered netlist is functionally identical at every binary
// point, so techmap.CheckMapped's exhaustive sampling still passes —
// but any arrival order where the s path and the !s path overlap in X
// glitches z, and hazver must catch it statically with HZ001 naming
// the function, the burst, and the offending net.
func TestHazverInjectedHazard(t *testing.T) {
	d, err := designs.ByName("systolic-counter")
	if err != nil {
		t.Fatal(err)
	}
	units := synthHazverUnits(t, d.Control(), techmap.SpeedSplit)

	// Find a specified burst that holds some output stable at 1 while
	// at least one input changes — the shape the mux tamper glitches.
	var (
		tu     synthUnit
		fnName string
		ti     = -1
		sVar   string
	)
search:
	for _, u := range units {
		for _, out := range u.ctrl.Spec.Outputs {
			for i, tr := range u.ctrl.Transitions[out] {
				ch := tr.Changed()
				if tr.From && tr.To && len(ch) > 0 && u.nl.HasNet(out) && u.nl.HasNet(u.ctrl.Vars[ch[0]]) {
					tu, fnName, ti, sVar = u, out, i, u.ctrl.Vars[ch[0]]
					break search
				}
			}
		}
	}
	if ti < 0 {
		t.Fatal("no stable-at-1 burst with a changing input found to tamper")
	}

	// Tamper: retarget z's driver to a fresh net, then rebuild z
	// through the glitching decomposition.
	nl := tu.nl
	z, s := nl.Net(fnName), nl.Net(sVar)
	di := -1
	for i := range nl.Instances {
		if nl.Instances[i].Output == z {
			di = i
		}
	}
	if di < 0 {
		t.Fatalf("output %q has no driver", fnName)
	}
	old := nl.Net("hz_old")
	nl.Instances[di].Output = old
	sInv, aN, bN := nl.Net("hz_sn"), nl.Net("hz_a"), nl.Net("hz_b")
	nl.AddInstance("INV", []int{s}, sInv, 0)
	nl.AddInstance("NAND2", []int{s, old}, aN, 0)
	nl.AddInstance("NAND2", []int{sInv, old}, bN, 0)
	nl.AddInstance("NAND2", []int{aN, bN}, z, 0)

	// The sampling audit is blind to the tamper: every binary point
	// still computes the specified value.
	if err := techmap.CheckMapped(tu.ctrl, nl, cell.AMS035()); err != nil {
		t.Fatalf("tampered netlist must stay functionally identical, CheckMapped: %v", err)
	}

	// hazver catches it statically, pinned to function, burst, net.
	res := hazver.Audit("tamper.opt", []hazver.Unit{tu.unit}, cell.AMS035(), hazver.Options{})
	if !hazver.HasErrors(res.Diags) {
		t.Fatalf("tampered netlist passed hazver:\n%s", hazver.Format(res.Diags, res.Name))
	}
	found := false
	for _, dg := range res.Diags {
		if dg.Code != "HZ001" || dg.Loc.Fn != fnName || dg.Loc.Tr != ti {
			continue
		}
		found = true
		if !strings.Contains(dg.Loc.Burst, sVar) {
			t.Errorf("burst %q does not name the changing input %q", dg.Loc.Burst, sVar)
		}
		if !strings.Contains(dg.Message, "hz_") {
			t.Errorf("message does not name an offending tamper net: %s", dg.Message)
		}
	}
	if !found {
		t.Errorf("no HZ001 at fn %q burst %d:\n%s", fnName, ti, hazver.Format(res.Diags, res.Name))
	}

	// The flow gate wraps exactly these findings as its abort error.
	var errDiags []hazver.Diag
	for _, dg := range res.Diags {
		if dg.Severity == hazver.SevError {
			errDiags = append(errDiags, dg)
		}
	}
	he := &HazverError{Design: "tamper", Arm: "opt", Diags: errDiags}
	if he.Circuit() != "tamper.opt" || !strings.Contains(he.Error(), "HZ001") {
		t.Errorf("HazverError misses the finding: %s", he.Error())
	}
}

// BenchmarkHazver audits every Table 3 design's optimized-arm units
// per iteration — the static verification cost EXPERIMENTS.md compares
// against CheckMapped's sampling sweep over the same circuits.
func BenchmarkHazver(b *testing.B) {
	lib := cell.AMS035()
	type bench struct {
		name  string
		units []hazver.Unit
	}
	var set []bench
	for _, d := range designs.All() {
		n, _, err := core.OptimizeOpt(d.Control(), core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		su := synthHazverUnits(b, n, techmap.SpeedSplit)
		units := make([]hazver.Unit, len(su))
		for i := range su {
			units[i] = su[i].unit
		}
		set = append(set, bench{d.Name + ".opt", units})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, bs := range set {
			res := hazver.Audit(bs.name, bs.units, lib, hazver.Options{})
			if hazver.HasErrors(res.Diags) {
				b.Fatalf("%s: HZ errors", bs.name)
			}
		}
	}
}

// BenchmarkCheckMappedSampling sweeps the same optimized-arm controllers
// through techmap.CheckMapped's exhaustive binary sampling — the
// pre-hazver functional audit hazver's endpoint passes subsume.
func BenchmarkCheckMappedSampling(b *testing.B) {
	lib := cell.AMS035()
	var set []synthUnit
	for _, d := range designs.All() {
		n, _, err := core.OptimizeOpt(d.Control(), core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		set = append(set, synthHazverUnits(b, n, techmap.SpeedSplit)...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, su := range set {
			if err := techmap.CheckMapped(su.ctrl, su.nl, lib); err != nil {
				b.Fatal(err)
			}
		}
	}
}

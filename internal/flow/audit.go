package flow

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"balsabm/internal/analysis"
	"balsabm/internal/bmlint"
	"balsabm/internal/ch"
	"balsabm/internal/chtobm"
	"balsabm/internal/core"
	"balsabm/internal/designs"
	"balsabm/internal/hazver"
	"balsabm/internal/hfmin"
	"balsabm/internal/minimalist"
	"balsabm/internal/netlint"
	"balsabm/internal/techmap"
)

// AuditResult aggregates the repo's full six-checker stack over one
// design: chlint on the CH control netlist, bmlint on every compiled
// Burst-Mode specification (subsuming the old bm.Spec.Check row), a
// hazard-free re-verification of every synthesized cover
// (hfmin.CheckCover) per controller shape, the speed-split
// mapped-logic audit (techmap.CheckMapped), netlint on every mapped
// controller plus the merged circuit of each arm, and hazver — the
// static gate-level hazard verification of each arm's mapped
// controller shapes by two-pass ternary evaluation.
type AuditResult struct {
	Design string
	// LintDiags are the chlint findings on the control netlist.
	LintDiags []analysis.Diag
	// Specs are the bmlint audits of each unique controller shape's
	// compiled Burst-Mode specification, in audit order.
	Specs []bmlint.Result
	// SpecsChecked counts controller shapes whose compiled Burst-Mode
	// specification carried no BM-error (the bm.Spec.Check
	// conditions, accumulated); CoversChecked counts two-level covers
	// re-verified hazard-free; MappedChecked counts speed-split
	// mapped controllers whose gate logic passed the
	// hazard-non-increasing mapping audit.
	SpecsChecked  int
	CoversChecked int
	MappedChecked int
	// Circuits are the netlint audits, in audit order: each arm's
	// mapped controllers (named "<design>.<arm>.<controller>") followed
	// by the arm's merged circuit ("<design>.<arm>").
	Circuits []netlint.Result
	// Hazver are the static hazard-verification reports, one per arm
	// ("<design>.unopt" then "<design>.opt"): every distinct controller
	// shape's mapped logic proved glitch-free on its specified bursts
	// by two-pass ternary evaluation.
	Hazver []hazver.Result
	// Failures are hard checker failures: a spec, cover or mapping
	// audit that did not pass.
	Failures []string
}

func (a *AuditResult) fail(format string, args ...any) {
	a.Failures = append(a.Failures, fmt.Sprintf(format, args...))
}

// bmCount tallies the bmlint findings across all audited specs.
func (a *AuditResult) bmCount() (errors, warnings int) {
	for _, s := range a.Specs {
		e, w, _ := bmlint.Count(s.Diags)
		errors += e
		warnings += w
	}
	return
}

// nlCount tallies the netlint findings across all audited circuits.
func (a *AuditResult) nlCount() (errors, warnings int) {
	for _, c := range a.Circuits {
		e, w, _ := netlint.Count(c.Diags)
		errors += e
		warnings += w
	}
	return
}

// hzCount tallies the hazver findings and verified bursts across both
// arms.
func (a *AuditResult) hzCount() (errors, warnings, bursts int) {
	for _, h := range a.Hazver {
		e, w, _ := hazver.Count(h.Diags)
		errors += e
		warnings += w
		bursts += h.Stats.Bursts
	}
	return
}

// Errors counts everything that must fail an audit: checker failures
// and error-severity findings from any of the three linters.
func (a *AuditResult) Errors() int {
	e, _, _ := analysis.Count(a.LintDiags)
	be, _ := a.bmCount()
	ne, _ := a.nlCount()
	he, _, _ := a.hzCount()
	return e + be + ne + he + len(a.Failures)
}

// Warnings counts warning-severity findings from the four linters.
func (a *AuditResult) Warnings() int {
	_, w, _ := analysis.Count(a.LintDiags)
	_, bw := a.bmCount()
	_, nw := a.nlCount()
	_, hw, _ := a.hzCount()
	return w + bw + nw + hw
}

// OK reports whether the whole stack passed with no errors.
func (a *AuditResult) OK() bool { return a.Errors() == 0 }

// Summary renders the audit as one line with per-checker diagnostic
// counts for the six-checker stack, e.g.
//
//	stack: audit OK: chlint 0e/0w; bmlint 0e/0w, 9 specs; 74 covers; 9 mapped; netlint 0e/4w, 22 circuits; hazver 0e/0w, 1644 bursts; 0 errors, 4 warnings
func (a *AuditResult) Summary() string {
	status := "OK"
	if !a.OK() {
		status = "FAIL"
	}
	le, lw, _ := analysis.Count(a.LintDiags)
	be, bw := a.bmCount()
	ne, nw := a.nlCount()
	he, hw, hb := a.hzCount()
	return fmt.Sprintf("%s: audit %s: chlint %de/%dw; bmlint %de/%dw, %d specs; %d covers; %d mapped; netlint %de/%dw, %d circuits; hazver %de/%dw, %d bursts; %d errors, %d warnings",
		a.Design, status, le, lw, be, bw, a.SpecsChecked,
		a.CoversChecked, a.MappedChecked, ne, nw,
		len(a.Circuits), he, hw, hb, a.Errors(), a.Warnings())
}

// Details renders every failure and every error/warning finding,
// vet-style, one per line. Empty when the audit is fully clean of
// errors and warnings.
func (a *AuditResult) Details() string {
	var sb strings.Builder
	for _, f := range a.Failures {
		fmt.Fprintf(&sb, "%s: %s\n", a.Design, f)
	}
	for _, d := range a.LintDiags {
		if d.Severity != analysis.SevInfo {
			fmt.Fprintf(&sb, "%s\n", d.String())
		}
	}
	for _, s := range a.Specs {
		for _, d := range s.Diags {
			if d.Severity != bmlint.SevInfo {
				fmt.Fprintf(&sb, "%s\n", d.Render(s.Name))
			}
		}
	}
	for _, c := range a.Circuits {
		for _, d := range c.Diags {
			if d.Severity != netlint.SevInfo {
				fmt.Fprintf(&sb, "%s\n", d.Render(c.Name))
			}
		}
	}
	for _, h := range a.Hazver {
		for _, d := range h.Diags {
			if d.Severity != hazver.SevInfo {
				fmt.Fprintf(&sb, "%s\n", d.Render(h.Name))
			}
		}
	}
	return sb.String()
}

// AuditDesign runs the full audit stack on one design.
func AuditDesign(d *designs.Design, opt *Options) (*AuditResult, error) {
	return AuditDesignCtx(context.Background(), d, opt)
}

// AuditDesignCtx is AuditDesign with cancellation. It returns an error
// only for infrastructure failures (clustering or synthesis breaking,
// cancellation); checker verdicts — including hard checker failures —
// land in the result.
func AuditDesignCtx(ctx context.Context, d *designs.Design, opt *Options) (*AuditResult, error) {
	r := newRunner(ctx, opt)
	a := &AuditResult{Design: d.Name}

	start := time.Now()
	a.LintDiags = analysis.Analyze(d.Control())
	r.met.Timings.Observe("lint", time.Since(start))

	clOpt := r.opt.Cluster
	clOpt.Pool = r.pool
	clOpt.Ctx = r.ctx
	start = time.Now()
	optNetlist, _, err := core.OptimizeOpt(d.Control(), clOpt)
	r.met.Timings.Observe("cluster", time.Since(start))
	if err != nil {
		return nil, fmt.Errorf("clustering: %w", err)
	}

	seenSpec := map[string]bool{}   // shapes spec/cover-checked
	seenMapped := map[string]bool{} // shapes mapping-audited
	for _, arm := range []struct {
		name string
		n    *core.Netlist
		mode techmap.Mode
	}{
		{"unopt", d.Control(), techmap.AreaShared},
		{"opt", optNetlist, techmap.SpeedSplit},
	} {
		for _, comp := range arm.n.Components {
			if err := r.ctx.Err(); err != nil {
				return nil, err
			}
			if err := r.auditComponent(a, comp, arm.mode, seenSpec, seenMapped); err != nil {
				return nil, err
			}
		}
		mapped, _, err := r.synthesizeNetlist(arm.n, arm.mode)
		if err != nil {
			return nil, fmt.Errorf("%s arm: %w", arm.name, err)
		}
		start = time.Now()
		for _, nl := range mapped {
			res := netlint.Audit(nl, r.opt.Lib)
			res.Name = d.Name + "." + arm.name + "." + nl.Name
			a.Circuits = append(a.Circuits, res)
		}
		a.Circuits = append(a.Circuits, NetlintMerged(d.Name, arm.name, mapped, r.opt.Lib))
		r.met.Timings.Observe("netlint", time.Since(start))
		units, err := r.hazverUnits(arm.n, arm.mode)
		if err != nil {
			return nil, fmt.Errorf("%s arm: %w", arm.name, err)
		}
		start = time.Now()
		a.Hazver = append(a.Hazver, hazver.Audit(d.Name+"."+arm.name, units, r.opt.Lib,
			hazver.Options{Pool: r.pool, Ctx: r.ctx}))
		r.met.Timings.Observe("hazver", time.Since(start))
	}
	return a, nil
}

// auditComponent runs the specification-level checkers on one
// controller shape: bm.Spec.Check on the compiled Burst-Mode spec, a
// hazard-free re-verification of every synthesized cover against its
// specified transitions, and — in speed-split arms — the mapped-logic
// hazard audit. Rename-isomorphic shapes (same ch.Canonicalize key)
// are checked once per checker.
func (r *runner) auditComponent(a *AuditResult, comp *ch.Program, mode techmap.Mode, seenSpec, seenMapped map[string]bool) error {
	key := "raw|" + comp.Name
	if canon, ok := ch.CanonicalizeProgram(comp); ok {
		key = canon.Key
	}
	needSpec := !seenSpec[key]
	needMapped := mode == techmap.SpeedSplit && !seenMapped[key]
	if !needSpec && !needMapped {
		return nil
	}
	seenSpec[key] = true
	if mode == techmap.SpeedSplit {
		seenMapped[key] = true
	}

	sp, err := chtobm.CompileLoose(comp)
	if err != nil {
		a.fail("%s: compile: %v", comp.Name, err)
		return nil
	}
	if needSpec {
		res := bmlint.Audit(sp)
		a.Specs = append(a.Specs, res)
		if bmlint.HasErrors(res.Diags) {
			// The BM-error diagnostics carry the verdict; synthesizing
			// an ill-formed spec would only cascade.
			return nil
		}
		a.SpecsChecked++
	}
	ctrl, err := minimalist.SynthesizeOpt(sp, minimalist.Options{Pool: r.pool, Ctx: r.ctx})
	if err != nil {
		if r.ctx.Err() != nil {
			return r.ctx.Err()
		}
		a.fail("%s: synthesis: %v", comp.Name, err)
		return nil
	}
	if needSpec {
		names := make([]string, 0, len(ctrl.Outputs))
		for name := range ctrl.Outputs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if err := hfmin.CheckCover(ctrl.Outputs[name], ctrl.Transitions[name]); err != nil {
				a.fail("%s: cover %s: %v", comp.Name, name, err)
			} else {
				a.CoversChecked++
			}
		}
		for i, cv := range ctrl.NextState {
			name := fmt.Sprintf("y%d", i)
			if err := hfmin.CheckCover(cv, ctrl.Transitions[name]); err != nil {
				a.fail("%s: cover %s: %v", comp.Name, name, err)
			} else {
				a.CoversChecked++
			}
		}
	}
	if needMapped {
		nl, err := techmap.MapController(ctrl, techmap.SpeedSplit, r.opt.Lib)
		if err != nil {
			a.fail("%s: map: %v", comp.Name, err)
			return nil
		}
		if err := techmap.CheckMappedOpt(ctrl, nl, r.opt.Lib, techmap.CheckOptions{Pool: r.pool, Ctx: r.ctx}); err != nil {
			a.fail("%s: mapped-logic audit: %v", comp.Name, err)
		} else {
			a.MappedChecked++
		}
	}
	return nil
}

package flow

import (
	"sync"
	"testing"

	"balsabm/internal/designs"
)

// mapSink is an in-memory CheckpointSink recording every save.
type mapSink struct {
	mu     sync.Mutex
	stages map[string][]byte
}

func newMapSink() *mapSink { return &mapSink{stages: map[string][]byte{}} }

func (s *mapSink) Save(stage string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stages[stage] = append([]byte(nil), data...)
}

func (s *mapSink) Load(stage string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.stages[stage]
	return data, ok
}

func (s *mapSink) drop(stage string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.stages, stage)
}

// TestCheckpointResumeByteIdentical proves the resume contract at the
// flow level: a run restored from a partial checkpoint set (clustering
// done, unoptimized arm done, optimized arm lost — the state a daemon
// crash mid-job leaves behind) produces a DesignResult byte-identical
// to an uninterrupted run, while actually skipping the completed
// stages.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the systolic counter flow three times")
	}
	d := designs.SystolicCounter()

	// Uninterrupted reference run, recording every checkpoint.
	sink := newMapSink()
	met := &Metrics{}
	ref, err := RunDesign(d, &Options{Workers: 2, Checkpoint: sink, Metrics: met})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.DebugString()
	for _, stage := range []string{StageCluster, StageUnopt, StageOpt} {
		if _, ok := sink.Load(d.Name + "/" + stage); !ok {
			t.Fatalf("reference run did not checkpoint stage %q", stage)
		}
	}
	if met.CheckpointSaves.Load() != 3 || met.CheckpointLoads.Load() != 0 {
		t.Fatalf("reference run saves=%d loads=%d, want 3/0",
			met.CheckpointSaves.Load(), met.CheckpointLoads.Load())
	}

	// Crash scenario: the optimized arm's result never made it to disk.
	sink.drop(d.Name + "/" + StageOpt)
	met2 := &Metrics{}
	resumed, err := RunDesign(d, &Options{Workers: 2, Checkpoint: sink, Metrics: met2})
	if err != nil {
		t.Fatal(err)
	}
	if got := resumed.DebugString(); got != want {
		t.Fatalf("resumed result differs from uninterrupted run:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	// The unopt arm and clustering were restored, not recomputed: only
	// the opt arm simulated, and clustering ran zero times.
	if met2.CheckpointLoads.Load() != 2 {
		t.Fatalf("resumed run loads = %d, want 2 (cluster + unopt)", met2.CheckpointLoads.Load())
	}
	if n := met2.Timings.Snapshot()["simulate"].Count; n != 1 {
		t.Fatalf("resumed run ran %d simulations, want 1 (opt arm only)", n)
	}
	if n := met2.Timings.Snapshot()["cluster"].Count; n != 0 {
		t.Fatalf("resumed run ran clustering %d times, want 0", n)
	}

	// Full checkpoint set: everything restores, nothing computes.
	met3 := &Metrics{}
	warm, err := RunDesign(d, &Options{Workers: 2, Checkpoint: sink, Metrics: met3})
	if err != nil {
		t.Fatal(err)
	}
	if got := warm.DebugString(); got != want {
		t.Fatal("fully checkpointed run differs from uninterrupted run")
	}
	if n := met3.Timings.Snapshot()["simulate"].Count; n != 0 {
		t.Fatalf("fully checkpointed run ran %d simulations, want 0", n)
	}
}

// TestCheckpointCorruptPayloadRecomputes proves a damaged checkpoint
// degrades to recomputation, never to a wrong result.
func TestCheckpointCorruptPayloadRecomputes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the systolic counter flow twice")
	}
	d := designs.SystolicCounter()
	sink := newMapSink()
	ref, err := RunDesign(d, &Options{Workers: 2, Checkpoint: sink})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt every payload.
	sink.mu.Lock()
	for stage := range sink.stages {
		sink.stages[stage] = []byte("{definitely not json")
	}
	sink.mu.Unlock()
	met := &Metrics{}
	got, err := RunDesign(d, &Options{Workers: 2, Checkpoint: sink, Metrics: met})
	if err != nil {
		t.Fatal(err)
	}
	if got.DebugString() != ref.DebugString() {
		t.Fatal("recomputed result differs from reference")
	}
	if met.CheckpointLoads.Load() != 0 {
		t.Fatalf("corrupt payloads counted as loads: %d", met.CheckpointLoads.Load())
	}
}

package flow

import (
	"encoding/json"

	"balsabm/internal/core"
)

// CheckpointSink persists completed pipeline stages of one flow run so
// an interrupted job can resume without redoing finished work. The
// flow calls Save with a deterministic JSON payload after each
// checkpointable stage completes, and consults Load before computing
// one. Implementations must be safe for concurrent use (the two arms
// of a design checkpoint independently) and must treat Save as
// best-effort: a dropped save costs recomputation, never correctness.
// The daemon backs this with internal/store; tests use in-memory maps.
//
// Payloads are pure functions of the run's inputs (the flow is
// deterministic), so a payload written by one process is valid in any
// later one with the same job key.
type CheckpointSink interface {
	// Load returns the payload saved for a stage, if any.
	Load(stage string) ([]byte, bool)
	// Save persists a completed stage's payload.
	Save(stage string, data []byte)
}

// Checkpoint stages recorded per design (prefixed "<design>/"):
//
//	cluster  the clustered control netlist (CH text) and its report —
//	         the opt arm's first stage
//	unopt    the completed unoptimized arm: controllers, areas, static
//	         report, benchmark time and description
//	opt      the completed optimized arm, plus the clustering report
const (
	StageCluster = "cluster"
	StageUnopt   = "unopt"
	StageOpt     = "opt"
)

// armCheckpoint is the payload of a completed flow arm. Every field is
// part of the final DesignResult, so a loaded arm reproduces exactly
// what the computation would have contributed.
type armCheckpoint struct {
	Arm ArmResult `json:"arm"`
	// Bench carries the benchmark description (set by the unopt arm).
	Bench string `json:"bench,omitempty"`
	// Report carries the clustering report (set by the opt arm).
	Report *core.Report `json:"report,omitempty"`
}

// clusterCheckpoint is the payload of a completed clustering stage:
// the clustered netlist round-trips as CH text (core.ParseNetlist of
// Format output reproduces the components exactly).
type clusterCheckpoint struct {
	Netlist string       `json:"netlist"`
	Report  *core.Report `json:"report"`
}

// ckpt scopes a sink to one design and counts traffic on the run's
// metrics. The zero sink (nil) loads nothing and saves nowhere.
type ckpt struct {
	sink   CheckpointSink
	prefix string
	met    *Metrics
}

func (r *runner) ckpt(design string) ckpt {
	return ckpt{sink: r.opt.Checkpoint, prefix: design + "/", met: r.met}
}

// load unmarshals a stage payload into v; any miss or decode failure
// is a plain miss (the stage recomputes).
func (c ckpt) load(stage string, v any) bool {
	if c.sink == nil {
		return false
	}
	data, ok := c.sink.Load(c.prefix + stage)
	if !ok {
		return false
	}
	if err := json.Unmarshal(data, v); err != nil {
		return false
	}
	c.met.CheckpointLoads.Add(1)
	return true
}

// save marshals and persists a completed stage's payload.
func (c ckpt) save(stage string, v any) {
	if c.sink == nil {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	c.sink.Save(c.prefix+stage, data)
	c.met.CheckpointSaves.Add(1)
}

// loadCluster restores a clustered netlist from its checkpoint. A
// payload whose netlist no longer parses is treated as a miss.
func (c ckpt) loadCluster() (*core.Netlist, *core.Report, bool) {
	var cp clusterCheckpoint
	if !c.load(StageCluster, &cp) {
		return nil, nil, false
	}
	n, err := core.ParseNetlist(cp.Netlist)
	if err != nil {
		return nil, nil, false
	}
	return n, cp.Report, true
}

func (c ckpt) saveCluster(n *core.Netlist, rep *core.Report) {
	c.save(StageCluster, clusterCheckpoint{Netlist: n.Format(), Report: rep})
}

// Incremental resynthesis: a controller-grain artifact cache keyed by
// canonical subtree digests, so an edit-compile loop resynthesizes
// only the controllers whose canonical form actually changed and
// splices every untouched controller's netlist back in via
// gates.Netlist.Rename. The merged result is byte-identical to a
// from-scratch run — the canonical key (see ch.Canonicalize)
// guarantees a cached netlist is an exact wire-rename of what direct
// synthesis would have produced, and the cached blob round-trips the
// controller report exactly (Go's float64 JSON encoding is lossless).
package flow

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"

	"balsabm/internal/ch"
	"balsabm/internal/core"
	"balsabm/internal/gates"
	"balsabm/internal/techmap"
)

// ControllerCache is the controller-grain artifact tier consulted by
// the flow's synthesis cache: blobs of completed controller syntheses
// keyed by canonical subtree digest, surviving across runs (and, when
// backed by the durable store, across restarts and designs). Both
// methods are best-effort — a miss or a failed put costs one
// resynthesis, never correctness — and must be safe for concurrent
// use. *store.Store satisfies it.
type ControllerCache interface {
	// GetController returns the blob stored under key, if any.
	GetController(key string) ([]byte, bool)
	// PutController stores a blob under key.
	PutController(key string, blob []byte)
}

// MemoryControllerCache is the in-process ControllerCache: a plain
// keyed blob map. It is what a store-less daemon attaches to its jobs
// so controller reuse still works across submissions within one
// process lifetime.
type MemoryControllerCache struct {
	mu sync.Mutex
	m  map[string][]byte
}

// NewMemoryControllerCache returns an empty in-memory cache.
func NewMemoryControllerCache() *MemoryControllerCache {
	return &MemoryControllerCache{m: map[string][]byte{}}
}

// GetController returns the blob stored under key, if any.
func (c *MemoryControllerCache) GetController(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	blob, ok := c.m[key]
	return blob, ok
}

// PutController stores a blob under key.
func (c *MemoryControllerCache) PutController(key string, blob []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = blob
}

// Len returns the number of cached controllers.
func (c *MemoryControllerCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// ControllerKey is the cache key of one controller synthesis: the
// canonical subtree digest qualified by everything else that affects
// the synthesized netlist — the mapping mode and whether the hazard
// audit gates the result. Wire names are deliberately absent: they
// are exactly what Rename substitutes on reuse, which is how a cached
// controller crosses designs.
func ControllerKey(mode techmap.Mode, audit bool, digest string) string {
	return fmt.Sprintf("ctl|%s|audit=%t|%s", mode, audit, digest)
}

// controllerBlob is the durable form of one synthesized controller:
// the seeding component's wires in canonical channel order (what
// WireRenames maps from), its report, and its mapped netlist. The
// encoding is deterministic, so identical syntheses dedupe in the
// content-addressed store.
type controllerBlob struct {
	Wires   []string         `json:"wires"`
	Result  ControllerResult `json:"result"`
	Netlist json.RawMessage  `json:"netlist"`
}

// encodeController serializes a cache entry.
func encodeController(e *synthEntry) ([]byte, error) {
	nl, err := gates.EncodeJSON(e.netlist)
	if err != nil {
		return nil, err
	}
	return json.Marshal(controllerBlob{Wires: e.wires, Result: e.res, Netlist: nl})
}

// decodeController rebuilds a cache entry from its blob. Wire count
// must match the netlist decode's own validation; a blob that fails
// either check is treated as a miss by the caller.
func decodeController(data []byte) (*synthEntry, error) {
	var b controllerBlob
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("flow: decode controller: %w", err)
	}
	nl, err := gates.DecodeJSON(b.Netlist)
	if err != nil {
		return nil, err
	}
	return &synthEntry{wires: b.Wires, netlist: nl, res: b.Result}, nil
}

// addDerivedRenames extends a wire substitution to the synthesis
// pipeline's derived net names. techmap names helper nets
// <var>_p$<id> and <var>_n$<id> after the variable they implement
// (every other Fresh prefix is a constant like "t" or "p"), so when a
// cached netlist's wires are renamed onto a new component's, those
// derived nets must carry the rename too — otherwise the spliced
// netlist would keep the seeding component's wire names inside helper
// nets and differ from what direct synthesis of the new component
// produces. The derived-name id is a function of circuit structure
// alone, which two programs sharing a canonical key have in common,
// so the extended rename is exactly direct synthesis's naming. The
// longest matching wire wins (unambiguous: two same-length distinct
// wires cannot both prefix one name at the same pattern position), so
// the result does not depend on map iteration order.
func addDerivedRenames(sub map[string]string, netNames []string) {
	wires := make([]string, 0, len(sub))
	for w := range sub {
		wires = append(wires, w)
	}
	for _, nm := range netNames {
		if _, ok := sub[nm]; ok {
			continue
		}
		best := ""
		for _, w := range wires {
			if len(w) > len(best) && (strings.HasPrefix(nm, w+"_p$") || strings.HasPrefix(nm, w+"_n$")) {
				best = w
			}
		}
		if best != "" {
			sub[nm] = sub[best] + nm[len(best):]
		}
	}
}

// IncrementalPlan partitions the components of an edited netlist
// against a base: which controllers an incremental run would reuse
// (canonical digest present in the base), which it must resynthesize,
// and which base controllers disappeared. It is a pure report over
// the submitted netlists — the flow's actual reuse decision is the
// same digest comparison made against the ControllerCache, but at the
// post-clustering grain and once per distinct shape (the in-run memo
// already folds duplicates), so the run's counters can undercount the
// plan when a design repeats a controller shape.
type IncrementalPlan struct {
	// Reused lists edited components (in netlist order) whose canonical
	// digest appears in the base.
	Reused []string
	// Resynthesize lists edited components needing fresh synthesis:
	// changed digests plus components the canonicalizer rejects.
	Resynthesize []string
	// BaseOnly lists base components (in netlist order) whose digest no
	// longer appears in the edited netlist.
	BaseOnly []string
}

// PlanIncremental diffs the per-controller canonical forms of an
// edited netlist against a base.
func PlanIncremental(base, edited *core.Netlist) *IncrementalPlan {
	baseDigests := map[string]bool{}
	for _, c := range base.Components {
		if d, ok := ch.ProgramDigest(c); ok {
			baseDigests[d] = true
		}
	}
	plan := &IncrementalPlan{}
	editedDigests := map[string]bool{}
	for _, c := range edited.Components {
		d, ok := ch.ProgramDigest(c)
		if ok {
			editedDigests[d] = true
		}
		if ok && baseDigests[d] {
			plan.Reused = append(plan.Reused, c.Name)
		} else {
			plan.Resynthesize = append(plan.Resynthesize, c.Name)
		}
	}
	for _, c := range base.Components {
		if d, ok := ch.ProgramDigest(c); !ok || !editedDigests[d] {
			plan.BaseOnly = append(plan.BaseOnly, c.Name)
		}
	}
	return plan
}

// String renders the plan for the CLI's -stats output.
func (p *IncrementalPlan) String() string {
	return fmt.Sprintf("incremental plan: %d reuse, %d resynthesize, %d base-only",
		len(p.Reused), len(p.Resynthesize), len(p.BaseOnly))
}

// Package flow implements the paper's complete back-end (Fig 1): the
// control netlist of a design is optionally optimized by clustering
// (Fig 2), each resulting controller is compiled from CH to a
// Burst-Mode specification, synthesized into hazard-free two-level
// logic (Minimalist substitute), technology mapped, audited for hazard
// freedom, and finally simulated together with the design's datapath
// and benchmark environment to produce the speed and area numbers of
// Table 3.
package flow

import (
	"fmt"
	"strings"

	"balsabm/internal/cell"
	"balsabm/internal/chtobm"
	"balsabm/internal/core"
	"balsabm/internal/designs"
	"balsabm/internal/dpath"
	"balsabm/internal/gates"
	"balsabm/internal/hclib"
	"balsabm/internal/minimalist"
	"balsabm/internal/sim"
	"balsabm/internal/techmap"
)

// ControllerResult records one synthesized controller.
type ControllerResult struct {
	Name      string
	States    int
	StateBits int
	Products  int
	Cells     int
	Area      float64
	Critical  float64
}

// ArmResult is one complete flow arm (unoptimized or optimized).
type ArmResult struct {
	Controllers  []ControllerResult
	ControlArea  float64
	DatapathArea float64
	BenchTime    float64
	Events       int64
}

// TotalArea is control plus datapath area (µm²).
func (a ArmResult) TotalArea() float64 { return a.ControlArea + a.DatapathArea }

// DesignResult is the Table 3 row for one design.
type DesignResult struct {
	Design string
	Bench  string
	Report *core.Report
	Unopt  ArmResult
	Opt    ArmResult
}

// SpeedImprovement is the paper's percentage speed gain.
func (r *DesignResult) SpeedImprovement() float64 {
	if r.Unopt.BenchTime == 0 {
		return 0
	}
	return 100 * (r.Unopt.BenchTime - r.Opt.BenchTime) / r.Unopt.BenchTime
}

// AreaOverhead is the paper's percentage area increase.
func (r *DesignResult) AreaOverhead() float64 {
	if r.Unopt.TotalArea() == 0 {
		return 0
	}
	return 100 * (r.Opt.TotalArea() - r.Unopt.TotalArea()) / r.Unopt.TotalArea()
}

// Options tune the flow.
type Options struct {
	Lib *cell.Library
	// Cluster passes limits to the clustering engine (e.g. a maximum
	// Burst-Mode state count per clustered controller — the paper's
	// synthesis-run-time knob).
	Cluster core.Options
	// SkipAudit disables the exhaustive hazard audit of mapped
	// optimized controllers (it is on by default, as in Section 5).
	SkipAudit bool
	// TimeLimit and EventLimit bound each benchmark simulation.
	TimeLimit  float64
	EventLimit int64
}

func (o *Options) defaults() {
	if o.Lib == nil {
		o.Lib = cell.AMS035()
	}
	if o.TimeLimit == 0 {
		o.TimeLimit = 5e6
	}
	if o.EventLimit == 0 {
		o.EventLimit = 100_000_000
	}
}

// SynthesizeNetlist compiles, synthesizes and maps every component of a
// control netlist with the given mapping mode, returning the mapped
// netlists and per-controller reports.
//
// In the baseline (AreaShared) arm, components matching a standard
// library shape use the hand-optimized gate circuits of package hclib —
// the counterpart of Balsa's manually designed component library; the
// rest (e.g. clustered controllers in mixed netlists) fall back to
// synthesis.
func SynthesizeNetlist(n *core.Netlist, mode techmap.Mode, opt *Options) ([]*gates.Netlist, []ControllerResult, error) {
	var mapped []*gates.Netlist
	var results []ControllerResult
	for _, comp := range n.Components {
		sp, err := chtobm.Compile(comp)
		if err != nil {
			return nil, nil, fmt.Errorf("flow: %s: %w", comp.Name, err)
		}
		if mode == techmap.AreaShared {
			if nl, ok := hclib.Build(comp); ok {
				mapped = append(mapped, nl)
				results = append(results, ControllerResult{
					Name:     comp.Name,
					States:   sp.NStates,
					Cells:    len(nl.Instances),
					Area:     nl.Area(opt.Lib),
					Critical: nl.CriticalDelay(opt.Lib),
				})
				continue
			}
		}
		ctrl, err := minimalist.Synthesize(sp)
		if err != nil {
			return nil, nil, fmt.Errorf("flow: %s: %w", comp.Name, err)
		}
		nl, err := techmap.MapController(ctrl, mode, opt.Lib)
		if err != nil {
			return nil, nil, fmt.Errorf("flow: %s: %w", comp.Name, err)
		}
		if mode == techmap.SpeedSplit && !opt.SkipAudit {
			if err := techmap.CheckMapped(ctrl, nl, opt.Lib); err != nil {
				return nil, nil, fmt.Errorf("flow: hazard audit: %w", err)
			}
		}
		mapped = append(mapped, nl)
		results = append(results, ControllerResult{
			Name:      comp.Name,
			States:    sp.NStates,
			StateBits: ctrl.StateBits,
			Products:  ctrl.Products(),
			Cells:     len(nl.Instances),
			Area:      nl.Area(opt.Lib),
			Critical:  nl.CriticalDelay(opt.Lib),
		})
	}
	return mapped, results, nil
}

// simulate runs one design arm: mapped controllers + datapath + bench.
func simulate(d *designs.Design, mapped []*gates.Netlist, opt *Options) (float64, float64, int64, string, error) {
	s := sim.New(opt.Lib)
	for _, nl := range mapped {
		s.AddNetlist(nl, nl.Name, nil)
	}
	b := dpath.NewBuilder(s)
	d.Datapath(b)
	bench := d.Bench(b)
	if err := s.Init(); err != nil {
		return 0, 0, 0, "", err
	}
	bench.Start()
	for !bench.Done() {
		if err := s.Run(opt.TimeLimit, opt.EventLimit); err != nil {
			return 0, 0, 0, "", fmt.Errorf("flow: %s: %w", d.Name, err)
		}
		if !bench.Done() && s.Quiet() {
			return 0, 0, 0, "", fmt.Errorf("flow: %s: deadlock at %.2f ns (benchmark incomplete)", d.Name, s.Time)
		}
	}
	if err := bench.Validate(); err != nil {
		return 0, 0, 0, "", fmt.Errorf("flow: %s: functional check failed: %w", d.Name, err)
	}
	return s.Time, b.Area, s.Events, bench.Description, nil
}

// RunDesign executes both arms of the flow for one design.
func RunDesign(d *designs.Design, opt *Options) (*DesignResult, error) {
	if opt == nil {
		opt = &Options{}
	}
	opt.defaults()
	res := &DesignResult{Design: d.Name}

	// Unoptimized arm: the original component netlist with the
	// baseline (hand-library-quality) mapping.
	unoptNetlist := d.Control()
	mapped, ctrls, err := SynthesizeNetlist(unoptNetlist, techmap.AreaShared, opt)
	if err != nil {
		return nil, fmt.Errorf("unoptimized arm: %w", err)
	}
	res.Unopt.Controllers = ctrls
	for _, c := range ctrls {
		res.Unopt.ControlArea += c.Area
	}
	t, dpArea, events, benchDesc, err := simulate(d, mapped, opt)
	if err != nil {
		return nil, fmt.Errorf("unoptimized arm: %w", err)
	}
	res.Unopt.BenchTime, res.Unopt.DatapathArea, res.Unopt.Events = t, dpArea, events
	res.Bench = benchDesc

	// Optimized arm: clustering, then speed-mode split-mapped
	// synthesis (the paper's new back-end).
	optNetlist, report, err := core.OptimizeOpt(unoptNetlist, opt.Cluster)
	if err != nil {
		return nil, fmt.Errorf("clustering: %w", err)
	}
	res.Report = report
	mapped, ctrls, err = SynthesizeNetlist(optNetlist, techmap.SpeedSplit, opt)
	if err != nil {
		return nil, fmt.Errorf("optimized arm: %w", err)
	}
	res.Opt.Controllers = ctrls
	for _, c := range ctrls {
		res.Opt.ControlArea += c.Area
	}
	t, dpArea, events, _, err = simulate(d, mapped, opt)
	if err != nil {
		return nil, fmt.Errorf("optimized arm: %w", err)
	}
	res.Opt.BenchTime, res.Opt.DatapathArea, res.Opt.Events = t, dpArea, events
	return res, nil
}

// RunAll executes the flow for every Table 3 design.
func RunAll(opt *Options) ([]*DesignResult, error) {
	var out []*DesignResult
	for _, d := range designs.All() {
		r, err := RunDesign(d, opt)
		if err != nil {
			return nil, fmt.Errorf("flow: %s: %w", d.Name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// Table3 formats results in the layout of the paper's Table 3.
func Table3(results []*DesignResult) string {
	var sb strings.Builder
	sb.WriteString("Table 3: Experimental Results\n")
	sb.WriteString(fmt.Sprintf("%-20s %12s %12s %12s %14s %14s %10s\n",
		"", "Speed (ns)", "", "", "Area (um2)", "", ""))
	sb.WriteString(fmt.Sprintf("%-20s %12s %12s %12s %14s %14s %10s\n",
		"Design", "Unoptimized", "Optimized", "Improvement", "Unoptimized", "Optimized", "Overhead"))
	for _, r := range results {
		sb.WriteString(fmt.Sprintf("%-20s %12.2f %12.2f %11.2f%% %14.0f %14.0f %9.2f%%\n",
			r.Design, r.Unopt.BenchTime, r.Opt.BenchTime, r.SpeedImprovement(),
			r.Unopt.TotalArea(), r.Opt.TotalArea(), r.AreaOverhead()))
	}
	return sb.String()
}

// Fig2Summary reports the control-collapse statistics of Fig 2 for one
// design: components and internal channels before and after clustering.
func Fig2Summary(d *designs.Design) (before, after core.Stats, rep *core.Report, err error) {
	n := d.Control()
	before, err = n.Stats()
	if err != nil {
		return
	}
	optimized, rep, err := core.Optimize(n)
	if err != nil {
		return
	}
	after, err = optimized.Stats()
	return
}

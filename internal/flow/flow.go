// Package flow implements the paper's complete back-end (Fig 1): the
// control netlist of a design is optionally optimized by clustering
// (Fig 2), each resulting controller is compiled from CH to a
// Burst-Mode specification, synthesized into hazard-free two-level
// logic (Minimalist substitute), technology mapped, audited for hazard
// freedom, and finally simulated together with the design's datapath
// and benchmark environment to produce the speed and area numbers of
// Table 3.
//
// The flow is concurrent: controllers synthesize in parallel across a
// bounded worker pool, the two arms of a design run side by side, and
// rename-isomorphic controllers share one synthesis through a
// canonical-form cache. Results are deterministic — byte-identical at
// any worker count — because fan-out preserves input order and the
// cache key (see ch.Canonicalize) guarantees a cached netlist is an
// exact wire-rename of what direct synthesis would have produced.
package flow

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"balsabm/internal/bm"
	"balsabm/internal/cell"
	"balsabm/internal/ch"
	"balsabm/internal/chtobm"
	"balsabm/internal/core"
	"balsabm/internal/designs"
	"balsabm/internal/dpath"
	"balsabm/internal/gates"
	"balsabm/internal/hclib"
	"balsabm/internal/minimalist"
	"balsabm/internal/netlint"
	"balsabm/internal/parallel"
	"balsabm/internal/sim"
	"balsabm/internal/techmap"
)

// ControllerResult records one synthesized controller.
type ControllerResult struct {
	Name      string
	States    int
	StateBits int
	Products  int
	Cells     int
	Area      float64
	Critical  float64
	// Exact reports that every function of the controller was
	// minimized on the exact path (no greedy fallback in the prime
	// enumeration or the covering branch-and-bound). Hand-library
	// controllers are exact by construction.
	Exact bool
}

// ArmResult is one complete flow arm (unoptimized or optimized).
type ArmResult struct {
	Controllers  []ControllerResult
	ControlArea  float64
	DatapathArea float64
	BenchTime    float64
	Events       int64
	// Static is the netlint static report for the arm's merged control
	// circuit: literal/transistor-weighted area and topological depth,
	// the structural complement of the measured BenchTime/area numbers.
	Static netlint.Stats
}

// TotalArea is control plus datapath area (µm²).
func (a ArmResult) TotalArea() float64 { return a.ControlArea + a.DatapathArea }

// DesignResult is the Table 3 row for one design.
type DesignResult struct {
	Design string
	Bench  string
	Report *core.Report
	Unopt  ArmResult
	Opt    ArmResult
}

// SpeedImprovement is the paper's percentage speed gain.
func (r *DesignResult) SpeedImprovement() float64 {
	if r.Unopt.BenchTime == 0 {
		return 0
	}
	return 100 * (r.Unopt.BenchTime - r.Opt.BenchTime) / r.Unopt.BenchTime
}

// AreaOverhead is the paper's percentage area increase.
func (r *DesignResult) AreaOverhead() float64 {
	if r.Unopt.TotalArea() == 0 {
		return 0
	}
	return 100 * (r.Opt.TotalArea() - r.Unopt.TotalArea()) / r.Unopt.TotalArea()
}

// DebugString renders every number in the result in a fixed,
// deterministic layout (maps are sorted). Two runs of the flow produce
// byte-identical DebugStrings exactly when they produced the same
// result, which is what the determinism tests compare across worker
// counts.
func (r *DesignResult) DebugString() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "design %s bench %q\n", r.Design, r.Bench)
	arm := func(label string, a ArmResult) {
		fmt.Fprintf(&sb, "%s: control=%.6f datapath=%.6f time=%.6f events=%d\n",
			label, a.ControlArea, a.DatapathArea, a.BenchTime, a.Events)
		fmt.Fprintf(&sb, "  static: %s\n", a.Static)
		for _, c := range a.Controllers {
			fmt.Fprintf(&sb, "  %s states=%d bits=%d products=%d cells=%d area=%.6f critical=%.6f exact=%t\n",
				c.Name, c.States, c.StateBits, c.Products, c.Cells, c.Area, c.Critical, c.Exact)
		}
	}
	arm("unopt", r.Unopt)
	arm("opt", r.Opt)
	if rep := r.Report; rep != nil {
		for _, m := range rep.Merges {
			fmt.Fprintf(&sb, "merge %s: %s + %s -> %s\n", m.Channel, m.Activator, m.Activated, m.Result)
		}
		fmt.Fprintf(&sb, "skipped %v\n", rep.Skipped)
		fmt.Fprintf(&sb, "calls split %v restored %v\n", rep.CallsSplit, rep.CallsRestored)
		names := make([]string, 0, len(rep.Containment))
		for name := range rep.Containment {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(&sb, "contain %s -> %s\n", name, rep.Containment[name])
		}
	}
	return sb.String()
}

// Metrics collects counters across a flow run: synthesis-cache hits
// and misses, and wall-clock per stage. The zero value is ready to
// use; pass one in Options.Metrics to observe a run. All fields are
// safe for concurrent update.
type Metrics struct {
	CacheHits   parallel.Counter
	CacheMisses parallel.Counter
	Timings     parallel.Timings

	// Minimizer work counters, aggregated over every function of
	// every (non-cached, non-hand-library) controller synthesis:
	// functions solved on the exact path vs. falling back to a greedy
	// stage, and nodes visited by the prime enumeration and the
	// covering branch-and-bound.
	MinimizeExact  parallel.Counter
	MinimizeGreedy parallel.Counter
	EnumNodes      parallel.Counter
	BranchNodes    parallel.Counter

	// Checkpoint traffic: stages persisted to the run's CheckpointSink
	// and stages restored from it (restored stages skip computation —
	// nonzero loads mean the run resumed earlier work).
	CheckpointSaves parallel.Counter
	CheckpointLoads parallel.Counter

	// Incremental resynthesis counters, bumped only when the run has a
	// ControllerCache attached, once per distinct canonical shape (the
	// in-run memo folds repeats): controllers spliced in from the cache
	// vs. synthesized afresh (and written back).
	ControllersReused        parallel.Counter
	ControllersResynthesized parallel.Counter

	lintMu     sync.Mutex
	lint       []LintFinding
	lintNotify func(LintFinding)

	bmlintMu     sync.Mutex
	bmlint       []BmlintFinding
	bmlintNotify func(BmlintFinding)

	netlintMu     sync.Mutex
	netlint       []NetlintFinding
	netlintNotify func(NetlintFinding)

	hazverMu     sync.Mutex
	hazver       []HazverFinding
	hazverNotify func(HazverFinding)
}

// NotifyLint registers a callback invoked (synchronously, in gate
// order) for every non-error finding the pre-synthesis lint gate
// records — the hook the daemon uses to stream findings over SSE.
// Call before the run starts.
func (m *Metrics) NotifyLint(fn func(LintFinding)) {
	m.lintMu.Lock()
	defer m.lintMu.Unlock()
	m.lintNotify = fn
}

// LintFindings returns the non-error findings recorded so far, in
// gate order.
func (m *Metrics) LintFindings() []LintFinding {
	m.lintMu.Lock()
	defer m.lintMu.Unlock()
	out := make([]LintFinding, len(m.lint))
	copy(out, m.lint)
	return out
}

func (m *Metrics) recordLint(f LintFinding) {
	m.lintMu.Lock()
	m.lint = append(m.lint, f)
	fn := m.lintNotify
	m.lintMu.Unlock()
	if fn != nil {
		fn(f)
	}
}

// NotifyBmlint registers a callback invoked (synchronously) for every
// non-error finding the post-compile bmlint gate records — the hook
// the daemon uses to stream spec findings over SSE. Call before the
// run starts.
func (m *Metrics) NotifyBmlint(fn func(BmlintFinding)) {
	m.bmlintMu.Lock()
	defer m.bmlintMu.Unlock()
	m.bmlintNotify = fn
}

// BmlintFindings returns the non-error spec findings recorded so far,
// in gate order.
func (m *Metrics) BmlintFindings() []BmlintFinding {
	m.bmlintMu.Lock()
	defer m.bmlintMu.Unlock()
	out := make([]BmlintFinding, len(m.bmlint))
	copy(out, m.bmlint)
	return out
}

func (m *Metrics) recordBmlint(f BmlintFinding) {
	m.bmlintMu.Lock()
	m.bmlint = append(m.bmlint, f)
	fn := m.bmlintNotify
	m.bmlintMu.Unlock()
	if fn != nil {
		fn(f)
	}
}

// NotifyNetlint registers a callback invoked (synchronously) for every
// non-error finding the post-merge netlint gate records — the hook the
// daemon uses to stream netlist findings over SSE. Call before the run
// starts.
func (m *Metrics) NotifyNetlint(fn func(NetlintFinding)) {
	m.netlintMu.Lock()
	defer m.netlintMu.Unlock()
	m.netlintNotify = fn
}

// NetlintFindings returns the non-error netlist findings recorded so
// far, in gate order.
func (m *Metrics) NetlintFindings() []NetlintFinding {
	m.netlintMu.Lock()
	defer m.netlintMu.Unlock()
	out := make([]NetlintFinding, len(m.netlint))
	copy(out, m.netlint)
	return out
}

func (m *Metrics) recordNetlint(f NetlintFinding) {
	m.netlintMu.Lock()
	m.netlint = append(m.netlint, f)
	fn := m.netlintNotify
	m.netlintMu.Unlock()
	if fn != nil {
		fn(f)
	}
}

// NotifyHazver registers a callback invoked (synchronously) for every
// non-error finding the post-mapping hazard-verification gate records —
// the hook the daemon uses to stream hazver findings over SSE. Call
// before the run starts.
func (m *Metrics) NotifyHazver(fn func(HazverFinding)) {
	m.hazverMu.Lock()
	defer m.hazverMu.Unlock()
	m.hazverNotify = fn
}

// HazverFindings returns the non-error hazard-verification findings
// recorded so far, in gate order.
func (m *Metrics) HazverFindings() []HazverFinding {
	m.hazverMu.Lock()
	defer m.hazverMu.Unlock()
	out := make([]HazverFinding, len(m.hazver))
	copy(out, m.hazver)
	return out
}

func (m *Metrics) recordHazver(f HazverFinding) {
	m.hazverMu.Lock()
	m.hazver = append(m.hazver, f)
	fn := m.hazverNotify
	m.hazverMu.Unlock()
	if fn != nil {
		fn(f)
	}
}

// String renders the metrics for human consumption.
func (m *Metrics) String() string {
	if m == nil {
		return ""
	}
	s := fmt.Sprintf("synthesis cache: %d hits, %d misses\n",
		m.CacheHits.Load(), m.CacheMisses.Load())
	if n := m.MinimizeExact.Load() + m.MinimizeGreedy.Load(); n > 0 {
		s += fmt.Sprintf("hfmin: %d/%d functions exact, %d enum nodes, %d branch nodes\n",
			m.MinimizeExact.Load(), n, m.EnumNodes.Load(), m.BranchNodes.Load())
	}
	if n := m.CheckpointSaves.Load() + m.CheckpointLoads.Load(); n > 0 {
		s += fmt.Sprintf("checkpoints: %d saved, %d restored\n",
			m.CheckpointSaves.Load(), m.CheckpointLoads.Load())
	}
	if n := m.ControllersReused.Load() + m.ControllersResynthesized.Load(); n > 0 {
		s += fmt.Sprintf("incremental: %d controllers reused, %d resynthesized\n",
			m.ControllersReused.Load(), m.ControllersResynthesized.Load())
	}
	if t := m.Timings.String(); t != "" {
		s += t
	}
	for _, f := range m.LintFindings() {
		s += fmt.Sprintf("lint: %s: %s\n", f.Design, f.Diag)
	}
	for _, f := range m.BmlintFindings() {
		s += fmt.Sprintf("bmlint: %s: %s\n", f.Unit(), f.Diag)
	}
	for _, f := range m.NetlintFindings() {
		s += fmt.Sprintf("netlint: %s: %s\n", f.Circuit(), f.Diag)
	}
	for _, f := range m.HazverFindings() {
		s += fmt.Sprintf("hazver: %s: %s\n", f.Circuit(), f.Diag)
	}
	return s
}

// Options tune the flow.
type Options struct {
	Lib *cell.Library
	// Cluster passes limits to the clustering engine (e.g. a maximum
	// Burst-Mode state count per clustered controller — the paper's
	// synthesis-run-time knob).
	Cluster core.Options
	// SkipAudit disables the exhaustive hazard audit of mapped
	// optimized controllers (it is on by default, as in Section 5).
	SkipAudit bool
	// TimeLimit and EventLimit bound each benchmark simulation.
	TimeLimit  float64
	EventLimit int64
	// Workers bounds the number of concurrently executing leaf tasks
	// (controller syntheses, clustering legality probes, benchmark
	// simulations); 0 means GOMAXPROCS. Results are identical at any
	// setting.
	Workers int
	// Metrics, when non-nil, receives cache and timing counters for
	// the run.
	Metrics *Metrics
	// Checkpoint, when non-nil, persists each completed per-design
	// pipeline stage (clustering, each finished arm) and is consulted
	// before computing one — the hook behind the daemon's
	// checkpoint/resume. Payloads are deterministic, so resuming from a
	// sink produces byte-identical results to an uninterrupted run.
	Checkpoint CheckpointSink
	// Controllers, when non-nil, is the controller-grain artifact tier
	// behind incremental resynthesis: before synthesizing a canonical
	// shape the run consults it (a hit splices the cached netlist in,
	// renamed to the component's wires), and every fresh synthesis is
	// written back. Because the cache key pins everything that affects
	// the synthesized netlist, a warm cache produces byte-identical
	// results to a cold run — only the ControllersReused /
	// ControllersResynthesized metrics differ.
	Controllers ControllerCache
}

// withDefaults returns a copy of the options with defaults filled in.
// The caller's struct is never written to, so a shared Options value
// can drive many concurrent runs.
func (o *Options) withDefaults() Options {
	var out Options
	if o != nil {
		out = *o
	}
	if out.Lib == nil {
		out.Lib = cell.AMS035()
	}
	if out.TimeLimit == 0 {
		out.TimeLimit = 5e6
	}
	if out.EventLimit == 0 {
		out.EventLimit = 100_000_000
	}
	return out
}

// synthEntry is one cached synthesis: the seeding component's wires in
// canonical channel order, its mapped netlist, and its report. Entries
// are immutable once published; reuse goes through Netlist.Rename,
// which deep-copies.
type synthEntry struct {
	wires   []string
	netlist *gates.Netlist
	res     ControllerResult
}

// runner carries the shared state of one flow invocation: the
// cancellation context, the worker pool, the canonical-form synthesis
// cache (shared across both arms and, under RunAll, across designs)
// and the metrics sink.
type runner struct {
	ctx   context.Context
	opt   Options // defaults applied; never the caller's struct
	pool  *parallel.Pool
	cache parallel.Memo[*synthEntry]
	met   *Metrics
}

func newRunner(ctx context.Context, opt *Options) *runner {
	if ctx == nil {
		ctx = context.Background()
	}
	r := &runner{ctx: ctx, opt: opt.withDefaults()}
	r.pool = parallel.NewPool(r.opt.Workers)
	r.met = r.opt.Metrics
	if r.met == nil {
		r.met = &Metrics{}
	}
	return r
}

// synthesize runs the full per-controller pipeline (compile, two-level
// synthesis or hand-library lookup, mapping, audit) with no caching.
// It is a composite task: the compile/hclib and map/audit stages each
// take one pool slot, and the per-function minimizations inside
// minimalist.SynthesizeOpt are individually pool-admitted leaves — no
// slot is ever held while waiting for another.
func (r *runner) synthesize(comp *ch.Program, mode techmap.Mode) (*gates.Netlist, ControllerResult, error) {
	tm := &r.met.Timings
	var sp *bm.Spec
	var hclibNl *gates.Netlist
	err := r.pool.RunCtx(r.ctx, func() error {
		start := time.Now()
		var err error
		sp, err = chtobm.Compile(comp)
		tm.Observe("compile", time.Since(start))
		if err != nil {
			return fmt.Errorf("flow: %s: %w", comp.Name, err)
		}
		if mode == techmap.AreaShared {
			start = time.Now()
			nl, ok := hclib.Build(comp)
			tm.Observe("hclib", time.Since(start))
			if ok {
				hclibNl = nl
			}
		}
		return nil
	})
	if err != nil {
		return nil, ControllerResult{}, err
	}
	if hclibNl != nil {
		return hclibNl, ControllerResult{
			Name:     comp.Name,
			States:   sp.NStates,
			Cells:    len(hclibNl.Instances),
			Area:     hclibNl.Area(r.opt.Lib),
			Critical: hclibNl.CriticalDelay(r.opt.Lib),
			Exact:    true, // hand-designed circuit: nothing minimized
		}, nil
	}
	start := time.Now()
	ctrl, err := minimalist.SynthesizeOpt(sp, minimalist.Options{Pool: r.pool, Ctx: r.ctx})
	tm.Observe("synthesize", time.Since(start))
	if err != nil {
		return nil, ControllerResult{}, fmt.Errorf("flow: %s: %w", comp.Name, err)
	}
	st := ctrl.Stats
	r.met.MinimizeExact.Add(int64(st.ExactFunctions))
	r.met.MinimizeGreedy.Add(int64(st.Functions - st.ExactFunctions))
	r.met.EnumNodes.Add(st.EnumNodes)
	r.met.BranchNodes.Add(st.BranchNodes)
	var nl *gates.Netlist
	err = r.pool.RunCtx(r.ctx, func() error {
		start := time.Now()
		var err error
		nl, err = techmap.MapController(ctrl, mode, r.opt.Lib)
		tm.Observe("map", time.Since(start))
		if err != nil {
			return fmt.Errorf("flow: %s: %w", comp.Name, err)
		}
		return nil
	})
	if err != nil {
		return nil, ControllerResult{}, err
	}
	if mode == techmap.SpeedSplit && !r.opt.SkipAudit {
		// The audit is a composite: its compiled point batches are the
		// pool-admitted leaves, so it must run outside the mapping's
		// pool slot (a leaf waiting on nested leaves could deadlock
		// the pool).
		start := time.Now()
		err := techmap.CheckMappedOpt(ctrl, nl, r.opt.Lib, techmap.CheckOptions{Pool: r.pool, Ctx: r.ctx})
		tm.Observe("audit", time.Since(start))
		if err != nil {
			return nil, ControllerResult{}, fmt.Errorf("flow: hazard audit: %w", err)
		}
	}
	return nl, ControllerResult{
		Name:      comp.Name,
		States:    sp.NStates,
		StateBits: ctrl.StateBits,
		Products:  ctrl.Products(),
		Cells:     len(nl.Instances),
		Area:      nl.Area(r.opt.Lib),
		Critical:  nl.CriticalDelay(r.opt.Lib),
		Exact:     st.Exact(),
	}, nil
}

// synthOne synthesizes one controller through the canonical-form
// cache: rename-isomorphic components (same canonical key, see
// ch.Canonicalize) synthesize once; later occurrences reuse the cached
// netlist with their own wire names substituted in. Components the
// canonicalizer rejects (verb channels) synthesize directly.
func (r *runner) synthOne(comp *ch.Program, mode techmap.Mode) (*gates.Netlist, ControllerResult, error) {
	canon, ok := ch.CanonicalizeProgram(comp)
	if !ok {
		return r.synthesize(comp, mode)
	}
	key := fmt.Sprintf("%s|audit=%t|%s", mode, !r.opt.SkipAudit, canon.Key)
	entry, hit, err := r.cache.Do(key, func() (*synthEntry, error) {
		// Controller-grain artifact tier (incremental resynthesis): an
		// unchanged canonical subtree loads its prior synthesis instead
		// of recomputing it. The lookup runs inside the single-flight
		// closure, so concurrent occurrences of one shape agree on a
		// single entry at any worker count.
		ctl := r.opt.Controllers
		var ctlKey string
		if ctl != nil {
			ctlKey = ControllerKey(mode, !r.opt.SkipAudit, canon.Digest())
			if blob, ok := ctl.GetController(ctlKey); ok {
				if e, err := decodeController(blob); err == nil {
					r.met.ControllersReused.Add(1)
					return e, nil
				}
				// A corrupt blob falls through to resynthesis, which
				// overwrites it.
			}
		}
		nl, res, err := r.synthesize(comp, mode)
		if err != nil {
			return nil, err
		}
		e := &synthEntry{wires: canon.Wires, netlist: nl, res: res}
		if ctl != nil {
			r.met.ControllersResynthesized.Add(1)
			if blob, err := encodeController(e); err == nil {
				ctl.PutController(ctlKey, blob)
			}
		}
		return e, nil
	})
	if hit {
		r.met.CacheHits.Add(1)
	} else {
		r.met.CacheMisses.Add(1)
	}
	if err != nil {
		return nil, ControllerResult{}, err
	}
	sub := make(map[string]string, len(entry.wires))
	for i, w := range entry.wires {
		if w != canon.Wires[i] {
			sub[w] = canon.Wires[i]
		}
	}
	if len(sub) > 0 {
		// Carry the rename into techmap's derived helper nets, so the
		// spliced netlist is byte-identical to direct synthesis of this
		// component — regardless of which occurrence seeded the entry or
		// whether it came from the controller artifact cache.
		addDerivedRenames(sub, entry.netlist.NetNames)
	}
	nl := entry.netlist.Rename(comp.Name, sub)
	res := entry.res
	res.Name = comp.Name
	return nl, res, nil
}

// synthesizeNetlist fans the components of a control netlist out as
// composite tasks (their compile, per-function minimization and
// map/audit stages are the pool-admitted leaves), returning mapped
// netlists and reports in component order with sequential first-error
// semantics.
func (r *runner) synthesizeNetlist(n *core.Netlist, mode techmap.Mode) ([]*gates.Netlist, []ControllerResult, error) {
	type synthOut struct {
		nl  *gates.Netlist
		res ControllerResult
	}
	outs, err := parallel.MapAllCtx(r.ctx, len(n.Components), func(i int) (synthOut, error) {
		nl, res, err := r.synthOne(n.Components[i], mode)
		if err != nil {
			return synthOut{}, err
		}
		return synthOut{nl: nl, res: res}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	mapped := make([]*gates.Netlist, len(outs))
	results := make([]ControllerResult, len(outs))
	for i, o := range outs {
		mapped[i] = o.nl
		results[i] = o.res
	}
	return mapped, results, nil
}

// SynthesizeNetlist compiles, synthesizes and maps every component of a
// control netlist with the given mapping mode, returning the mapped
// netlists and per-controller reports.
//
// In the baseline (AreaShared) arm, components matching a standard
// library shape use the hand-optimized gate circuits of package hclib —
// the counterpart of Balsa's manually designed component library; the
// rest (e.g. clustered controllers in mixed netlists) fall back to
// synthesis.
func SynthesizeNetlist(n *core.Netlist, mode techmap.Mode, opt *Options) ([]*gates.Netlist, []ControllerResult, error) {
	return SynthesizeNetlistCtx(context.Background(), n, mode, opt)
}

// SynthesizeNetlistCtx is SynthesizeNetlist with cancellation:
// component syntheses still waiting for a worker slot when ctx is
// cancelled are abandoned and the call returns the context's error.
func SynthesizeNetlistCtx(ctx context.Context, n *core.Netlist, mode techmap.Mode, opt *Options) ([]*gates.Netlist, []ControllerResult, error) {
	return newRunner(ctx, opt).synthesizeNetlist(n, mode)
}

// simulate runs one design arm: mapped controllers + datapath + bench.
// A whole simulation is one leaf unit of pool work.
func (r *runner) simulate(d *designs.Design, mapped []*gates.Netlist) (simTime, dpArea float64, events int64, desc string, err error) {
	err = r.pool.RunCtx(r.ctx, func() error {
		start := time.Now()
		defer func() { r.met.Timings.Observe("simulate", time.Since(start)) }()
		s := sim.New(r.opt.Lib)
		for _, nl := range mapped {
			s.AddNetlist(nl, nl.Name, nil)
		}
		b := dpath.NewBuilder(s)
		d.Datapath(b)
		bench := d.Bench(b)
		if err := s.Init(); err != nil {
			return err
		}
		bench.Start()
		for !bench.Done() {
			if err := r.ctx.Err(); err != nil {
				return err
			}
			if err := s.Run(r.opt.TimeLimit, r.opt.EventLimit); err != nil {
				return fmt.Errorf("flow: %s: %w", d.Name, err)
			}
			if !bench.Done() && s.Quiet() {
				return fmt.Errorf("flow: %s: deadlock at %.2f ns (benchmark incomplete)", d.Name, s.Time)
			}
		}
		if err := bench.Validate(); err != nil {
			return fmt.Errorf("flow: %s: functional check failed: %w", d.Name, err)
		}
		simTime, dpArea, events, desc = s.Time, b.Area, s.Events, bench.Description
		return nil
	})
	return
}

// runDesign executes both arms of the flow for one design, side by
// side. The arms are composite tasks (plain goroutines); only their
// leaves — individual controller syntheses, clustering probes and the
// benchmark simulations — occupy pool slots, so nesting cannot
// deadlock even with a single worker.
func (r *runner) runDesign(d *designs.Design) (*DesignResult, error) {
	// Pre-synthesis gate: error findings abort before any synthesis
	// work starts; warnings and advisories land on the metrics sink.
	if err := LintNetlist(d.Control(), d.Name, r.met); err != nil {
		return nil, err
	}
	res := &DesignResult{Design: d.Name}
	ck := r.ckpt(d.Name)

	// Unoptimized arm: the original component netlist with the
	// baseline (hand-library-quality) mapping.
	unopt := func() error {
		var cp armCheckpoint
		if ck.load(StageUnopt, &cp) {
			res.Unopt, res.Bench = cp.Arm, cp.Bench
			return nil
		}
		if err := r.bmlintGate(d.Name, "unopt", d.Control()); err != nil {
			return fmt.Errorf("unoptimized arm: %w", err)
		}
		mapped, ctrls, err := r.synthesizeNetlist(d.Control(), techmap.AreaShared)
		if err != nil {
			return fmt.Errorf("unoptimized arm: %w", err)
		}
		res.Unopt.Controllers = ctrls
		for _, c := range ctrls {
			res.Unopt.ControlArea += c.Area
		}
		res.Unopt.Static, err = r.netlintGate(d.Name, "unopt", mapped)
		if err != nil {
			return fmt.Errorf("unoptimized arm: %w", err)
		}
		if _, err := r.hazverGate(d.Name, "unopt", d.Control(), techmap.AreaShared); err != nil {
			return fmt.Errorf("unoptimized arm: %w", err)
		}
		t, dpArea, events, benchDesc, err := r.simulate(d, mapped)
		if err != nil {
			return fmt.Errorf("unoptimized arm: %w", err)
		}
		res.Unopt.BenchTime, res.Unopt.DatapathArea, res.Unopt.Events = t, dpArea, events
		res.Bench = benchDesc
		ck.save(StageUnopt, armCheckpoint{Arm: res.Unopt, Bench: res.Bench})
		return nil
	}

	// Optimized arm: clustering, then speed-mode split-mapped
	// synthesis (the paper's new back-end).
	opt := func() error {
		var cp armCheckpoint
		if ck.load(StageOpt, &cp) {
			res.Opt, res.Report = cp.Arm, cp.Report
			return nil
		}
		optNetlist, report, ok := ck.loadCluster()
		if !ok {
			clOpt := r.opt.Cluster
			clOpt.Pool = r.pool // clustering probes draw from the same budget
			clOpt.Ctx = r.ctx   // and cancel with the same run
			start := time.Now()
			var err error
			optNetlist, report, err = core.OptimizeOpt(d.Control(), clOpt)
			r.met.Timings.Observe("cluster", time.Since(start))
			if err != nil {
				return fmt.Errorf("clustering: %w", err)
			}
			ck.saveCluster(optNetlist, report)
		}
		res.Report = report
		if err := r.bmlintGate(d.Name, "opt", optNetlist); err != nil {
			return fmt.Errorf("optimized arm: %w", err)
		}
		mapped, ctrls, err := r.synthesizeNetlist(optNetlist, techmap.SpeedSplit)
		if err != nil {
			return fmt.Errorf("optimized arm: %w", err)
		}
		res.Opt.Controllers = ctrls
		for _, c := range ctrls {
			res.Opt.ControlArea += c.Area
		}
		res.Opt.Static, err = r.netlintGate(d.Name, "opt", mapped)
		if err != nil {
			return fmt.Errorf("optimized arm: %w", err)
		}
		if _, err := r.hazverGate(d.Name, "opt", optNetlist, techmap.SpeedSplit); err != nil {
			return fmt.Errorf("optimized arm: %w", err)
		}
		t, dpArea, events, _, err := r.simulate(d, mapped)
		if err != nil {
			return fmt.Errorf("optimized arm: %w", err)
		}
		res.Opt.BenchTime, res.Opt.DatapathArea, res.Opt.Events = t, dpArea, events
		ck.save(StageOpt, armCheckpoint{Arm: res.Opt, Report: res.Report})
		return nil
	}

	if err := parallel.All(unopt, opt); err != nil {
		return nil, err
	}
	return res, nil
}

// RunDesign executes both arms of the flow for one design.
func RunDesign(d *designs.Design, opt *Options) (*DesignResult, error) {
	return RunDesignCtx(context.Background(), d, opt)
}

// RunDesignCtx is RunDesign with cancellation. Cancelling ctx stops
// the run at the next leaf boundary: syntheses, clustering probes and
// simulations still waiting for a worker slot are abandoned, running
// simulations stop at their next scheduler quantum, and the call
// returns the context's error. No pool goroutines outlive the call.
func RunDesignCtx(ctx context.Context, d *designs.Design, opt *Options) (*DesignResult, error) {
	return newRunner(ctx, opt).runDesign(d)
}

// RunAll executes the flow for every Table 3 design. Designs run
// concurrently and share one synthesis cache, so a controller shape
// appearing in several designs synthesizes once.
func RunAll(opt *Options) ([]*DesignResult, error) {
	return RunAllCtx(context.Background(), opt)
}

// RunAllCtx is RunAll with cancellation (see RunDesignCtx).
func RunAllCtx(ctx context.Context, opt *Options) ([]*DesignResult, error) {
	r := newRunner(ctx, opt)
	all := designs.All()
	out := make([]*DesignResult, len(all))
	fns := make([]func() error, len(all))
	for i, d := range all {
		i, d := i, d
		fns[i] = func() error {
			res, err := r.runDesign(d)
			if err != nil {
				return fmt.Errorf("flow: %s: %w", d.Name, err)
			}
			out[i] = res
			return nil
		}
	}
	if err := parallel.All(fns...); err != nil {
		return nil, err
	}
	return out, nil
}

// Table3 formats results in the layout of the paper's Table 3.
func Table3(results []*DesignResult) string {
	var sb strings.Builder
	sb.WriteString("Table 3: Experimental Results\n")
	sb.WriteString(fmt.Sprintf("%-20s %12s %12s %12s %14s %14s %10s\n",
		"", "Speed (ns)", "", "", "Area (um2)", "", ""))
	sb.WriteString(fmt.Sprintf("%-20s %12s %12s %12s %14s %14s %10s\n",
		"Design", "Unoptimized", "Optimized", "Improvement", "Unoptimized", "Optimized", "Overhead"))
	for _, r := range results {
		sb.WriteString(fmt.Sprintf("%-20s %12.2f %12.2f %11.2f%% %14.0f %14.0f %9.2f%%\n",
			r.Design, r.Unopt.BenchTime, r.Opt.BenchTime, r.SpeedImprovement(),
			r.Unopt.TotalArea(), r.Opt.TotalArea(), r.AreaOverhead()))
	}
	return sb.String()
}

// Fig2Summary reports the control-collapse statistics of Fig 2 for one
// design: components and internal channels before and after clustering.
func Fig2Summary(d *designs.Design) (before, after core.Stats, rep *core.Report, err error) {
	n := d.Control()
	before, err = n.Stats()
	if err != nil {
		return
	}
	optimized, rep, err := core.Optimize(n)
	if err != nil {
		return
	}
	after, err = optimized.Stats()
	return
}

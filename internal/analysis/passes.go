package analysis

import (
	"fmt"
	"sort"
	"strings"

	"balsabm/internal/ch"
	"balsabm/internal/core"
)

// ---------------------------------------------------------------------
// legality: the Table 1 "Burst-Mode aware" restrictions, as a pass.
//
// Unlike ch.Validate (first error only), this walks every program to
// the leaves and reports all violations, each with the Table 1 row
// that forbids the combination.

// LegalityPass checks every operator application (including the
// implicit first arguments of mux channels) against Table 1, plus the
// structural rules: break only inside rep, channels passive or active,
// positive wire counts, mux channels with at least one arm.
var LegalityPass = &Pass{
	Name: "legality",
	Doc:  "Table 1 operator/activity legality and structural rules (CH001-CH005)",
	Run: func(n *core.Netlist, r *Reporter) {
		for _, p := range n.Components {
			checkLegality(p.Body, "body", 0, r)
		}
	},
}

// table1Row renders the legality row of Table 1 for one operator.
func table1Row(op ch.OpKind) string {
	cell := func(a, b ch.Activity) string {
		if ch.Legal(op, a, b) {
			return "yes"
		}
		return "no"
	}
	return fmt.Sprintf("Table 1 row %s: a/a=%s a/p=%s p/a=%s p/p=%s",
		op,
		cell(ch.Active, ch.Active), cell(ch.Active, ch.Passive),
		cell(ch.Passive, ch.Active), cell(ch.Passive, ch.Passive))
}

func checkLegality(e ch.Expr, path string, loopDepth int, r *Reporter) {
	switch n := e.(type) {
	case *ch.Chan:
		if n.Kind != ch.Verb && n.Act == ch.Neutral {
			r.Errorf(n.Pos, "CH003", "channel %q must be passive or active", n.Name)
		}
		if (n.Kind == ch.MultReq || n.Kind == ch.MultAck) && n.N < 1 {
			r.Errorf(n.Pos, "CH004", "channel %q needs a positive wire count, got %d", n.Name, n.N)
		}
	case *ch.Void:
	case *ch.Break:
		if loopDepth == 0 {
			r.Errorf(n.Pos, "CH002", "break outside of rep loop")
		}
	case *ch.Rep:
		checkLegality(n.Body, path+"/rep", loopDepth+1, r)
	case *ch.Op:
		actA, actB := n.A.Activity(), n.B.Activity()
		if !ch.Legal(n.Kind, actA, actB) {
			r.Errorf(n.Pos, "CH001", "illegal combination: %s applied to %s/%s arguments",
				n.Kind, actA, actB)
			r.Note("%s", table1Row(n.Kind))
			r.Note("at %s", path)
		}
		checkLegality(n.A, fmt.Sprintf("%s/%s[1]", path, n.Kind), loopDepth, r)
		checkLegality(n.B, fmt.Sprintf("%s/%s[2]", path, n.Kind), loopDepth, r)
	case *ch.MuxAck:
		checkMuxArms(n.Pos, n.Name, "mux-ack", ch.Active, n.Arms, path, loopDepth, r)
	case *ch.MuxReq:
		checkMuxArms(n.Pos, n.Name, "mux-req", ch.Passive, n.Arms, path, loopDepth, r)
	}
}

// checkMuxArms checks the implicit first argument of each mux arm (the
// channel's own activity) against Table 1, then recurses into the arm.
func checkMuxArms(pos ch.Pos, name, kind string, act ch.Activity, arms []ch.MuxArm, path string, loopDepth int, r *Reporter) {
	if len(arms) == 0 {
		r.Errorf(pos, "CH005", "%s %q has no arms", kind, name)
		return
	}
	for i, arm := range arms {
		armPath := fmt.Sprintf("%s/%s[%d]", path, kind, i+1)
		if !ch.Legal(arm.Op, act, arm.Arg.Activity()) {
			p := ch.ExprPos(arm.Arg)
			if !p.IsValid() {
				p = pos
			}
			r.Errorf(p, "CH001", "illegal combination: %s applied to %s/%s arguments (implicit first argument of %s %q)",
				arm.Op, act, arm.Arg.Activity(), kind, name)
			r.Note("%s", table1Row(arm.Op))
			r.Note("at %s", armPath)
		}
		checkLegality(arm.Arg, armPath, loopDepth, r)
	}
}

// ---------------------------------------------------------------------
// channels: netlist-level channel wiring.

// chanOcc is one occurrence of a named channel in one component.
type chanOcc struct {
	comp string
	kind ch.ChanKind
	act  ch.Activity
	n    int
	mux  bool
	pos  ch.Pos
}

func (o chanOcc) signature() string {
	if o.mux {
		return fmt.Sprintf("mux/%s/%d", o.act, o.n)
	}
	return fmt.Sprintf("%s/%s/%d", o.kind, o.act, o.n)
}

// occurrences lists every named-channel occurrence of a program in
// source order.
func occurrences(p *ch.Program) []struct {
	name string
	occ  chanOcc
} {
	var out []struct {
		name string
		occ  chanOcc
	}
	ch.Walk(p.Body, func(e ch.Expr) {
		switch n := e.(type) {
		case *ch.Chan:
			if n.Kind == ch.Verb {
				return
			}
			out = append(out, struct {
				name string
				occ  chanOcc
			}{n.Name, chanOcc{comp: p.Name, kind: n.Kind, act: n.Act, n: n.N, pos: n.Pos}})
		case *ch.MuxAck:
			out = append(out, struct {
				name string
				occ  chanOcc
			}{n.Name, chanOcc{comp: p.Name, act: ch.Active, n: len(n.Arms), mux: true, pos: n.Pos}})
		case *ch.MuxReq:
			out = append(out, struct {
				name string
				occ  chanOcc
			}{n.Name, chanOcc{comp: p.Name, act: ch.Passive, n: len(n.Arms), mux: true, pos: n.Pos}})
		}
	})
	return out
}

// ChannelsPass checks channel wiring across the whole netlist:
// conflicting redeclarations within a component (CH012), channels
// touching more than two components (CH011), internal channels whose
// two ends have the same activity — driven twice or listening twice —
// (CH010), and components sharing no channel with the rest of a
// multi-component netlist (CH013).
var ChannelsPass = &Pass{
	Name: "channels",
	Doc:  "undeclared/conflicting, multiply-driven and disconnected channels (CH010-CH013)",
	Run: func(n *core.Netlist, r *Reporter) {
		type compUse struct {
			comp  string
			first chanOcc
		}
		byName := map[string][]compUse{}
		var names []string // deterministic iteration order
		for _, p := range n.Components {
			firstIn := map[string]chanOcc{}
			for _, o := range occurrences(p) {
				if prev, ok := firstIn[o.name]; ok {
					if prev.signature() != o.occ.signature() {
						r.Errorf(o.occ.pos, "CH012",
							"channel %q redeclared as %s", o.name, describeOcc(o.occ))
						r.Note("first declared as %s at %s", describeOcc(prev), prev.pos)
					}
					continue
				}
				firstIn[o.name] = o.occ
				if len(byName[o.name]) == 0 {
					names = append(names, o.name)
				}
				byName[o.name] = append(byName[o.name], compUse{comp: p.Name, first: o.occ})
			}
		}
		for _, name := range names {
			uses := byName[name]
			if len(uses) > 2 {
				comps := make([]string, len(uses))
				for i, u := range uses {
					comps[i] = u.comp
				}
				r.Errorf(uses[2].first.pos, "CH011",
					"channel %q connects %d components (%s); channels are point-to-point",
					name, len(uses), strings.Join(comps, ", "))
				continue
			}
			if len(uses) == 2 {
				a, b := uses[0].first, uses[1].first
				if a.act == b.act {
					what := "passive at both ends (no component ever activates it)"
					if a.act == ch.Active {
						what = "driven from both ends"
					}
					r.Errorf(b.pos, "CH010", "internal channel %q is %s", name, what)
					r.Note("other end in component %q at %s", a.comp, a.pos)
				}
				if a.mux != b.mux || (!a.mux && a.kind != b.kind) || a.n != b.n {
					r.Errorf(b.pos, "CH012",
						"channel %q declared as %s here but %s in component %q",
						name, describeOcc(b), describeOcc(a), a.comp)
					r.Note("other declaration at %s", a.pos)
				}
			}
		}
		// Disconnected components (only meaningful with 2+ components).
		if len(n.Components) > 1 {
			for _, p := range n.Components {
				shared := false
				for _, o := range occurrences(p) {
					if len(byName[o.name]) > 1 {
						shared = true
						break
					}
				}
				if !shared {
					r.Warnf(p.Pos, "CH013",
						"component %q shares no channel with the rest of the netlist", p.Name)
				}
			}
		}
	},
}

func describeOcc(o chanOcc) string {
	if o.mux {
		if o.act == ch.Active {
			return fmt.Sprintf("mux-ack(%d arms, active)", o.n)
		}
		return fmt.Sprintf("mux-req(%d arms, passive)", o.n)
	}
	if o.kind == ch.PToP {
		return fmt.Sprintf("p-to-p(%s)", o.act)
	}
	return fmt.Sprintf("%s(%s, %d wires)", o.kind, o.act, o.n)
}

// ---------------------------------------------------------------------
// unreachable: control flow that can never execute.

// alwaysBreaks reports whether executing e necessarily exits the
// innermost enclosing rep loop (a break on every path).
func alwaysBreaks(e ch.Expr) bool {
	switch n := e.(type) {
	case *ch.Break:
		return true
	case *ch.Rep:
		return false // its breaks bind to it
	case *ch.Op:
		if n.Kind == ch.Mutex {
			return alwaysBreaks(n.A) && alwaysBreaks(n.B)
		}
		return alwaysBreaks(n.A) || alwaysBreaks(n.B)
	case *ch.MuxAck:
		return allArmsBreak(n.Arms)
	case *ch.MuxReq:
		return allArmsBreak(n.Arms)
	}
	return false
}

func allArmsBreak(arms []ch.MuxArm) bool {
	if len(arms) == 0 {
		return false
	}
	for _, a := range arms {
		if !alwaysBreaks(a.Arg) {
			return false
		}
	}
	return true
}

// repEscapes reports whether e contains a break bound to the
// *enclosing* loop (i.e. not captured by a nested rep).
func repEscapes(e ch.Expr) bool {
	switch n := e.(type) {
	case *ch.Break:
		return true
	case *ch.Rep:
		return false
	case *ch.Op:
		return repEscapes(n.A) || repEscapes(n.B)
	case *ch.MuxAck:
		for _, a := range n.Arms {
			if repEscapes(a.Arg) {
				return true
			}
		}
	case *ch.MuxReq:
		for _, a := range n.Arms {
			if repEscapes(a.Arg) {
				return true
			}
		}
	}
	return false
}

// neverTerminates reports whether e can never complete normally (a
// rep with no break on any path, or a composition forcing one).
func neverTerminates(e ch.Expr) bool {
	switch n := e.(type) {
	case *ch.Rep:
		return !repEscapes(n.Body)
	case *ch.Op:
		if n.Kind == ch.Mutex {
			return neverTerminates(n.A) && neverTerminates(n.B)
		}
		return neverTerminates(n.A) || neverTerminates(n.B)
	}
	return false
}

// UnreachablePass flags expressions that can never execute: the second
// argument of a seq whose first always breaks (CH020) or never
// terminates (CH021), and rep loops whose body breaks on the first
// iteration (CH022).
var UnreachablePass = &Pass{
	Name: "unreachable",
	Doc:  "code after break and after non-terminating rep bodies (CH020-CH022)",
	Run: func(n *core.Netlist, r *Reporter) {
		for _, p := range n.Components {
			ch.Walk(p.Body, func(e ch.Expr) {
				switch x := e.(type) {
				case *ch.Op:
					if x.Kind != ch.Seq {
						return
					}
					switch {
					case alwaysBreaks(x.A):
						r.Warnf(ch.ExprPos(x.B), "CH020",
							"unreachable: the preceding expression always breaks out of the loop")
					case neverTerminates(x.A):
						r.Warnf(ch.ExprPos(x.B), "CH021",
							"unreachable: the preceding rep loop never terminates (its body has no break)")
					}
				case *ch.Rep:
					if alwaysBreaks(x.Body) {
						r.Infof(x.Pos, "CH022",
							"rep body always breaks on its first iteration; the loop runs at most once")
					}
				}
			})
		}
	},
}

// ---------------------------------------------------------------------
// mutex: genuine external choices.

// initialChannels returns the names of the channels whose first
// transition guards e — the external events that can start it.
func initialChannels(e ch.Expr) []string {
	switch n := e.(type) {
	case *ch.Chan:
		if n.Kind == ch.Verb {
			return nil
		}
		return []string{n.Name}
	case *ch.MuxAck:
		return []string{n.Name}
	case *ch.MuxReq:
		return []string{n.Name}
	case *ch.Rep:
		return initialChannels(n.Body)
	case *ch.Op:
		if n.Kind == ch.Mutex {
			return append(initialChannels(n.A), initialChannels(n.B)...)
		}
		if n.A.Activity() == ch.Neutral {
			return initialChannels(n.B)
		}
		return initialChannels(n.A)
	}
	return nil
}

// MutexPass checks that every mutex is a resolvable external choice:
// Table 1 already demands two passive arguments (CH001 covers the
// rest), but two passive branches guarded by the *same* channel can
// never be told apart by the environment (CH030).
var MutexPass = &Pass{
	Name: "mutex",
	Doc:  "mutex requires two genuine, distinguishable passive choices (CH030)",
	Run: func(n *core.Netlist, r *Reporter) {
		for _, p := range n.Components {
			ch.Walk(p.Body, func(e ch.Expr) {
				x, ok := e.(*ch.Op)
				if !ok || x.Kind != ch.Mutex {
					return
				}
				// Compare the direct branches only; nested mutexes are
				// visited separately by the walk, so an n-ary chain is
				// checked pairwise without duplicate reports.
				seen := map[string]bool{}
				for _, name := range initialChannels(x.A) {
					seen[name] = true
				}
				dup := map[string]bool{}
				for _, name := range initialChannels(x.B) {
					if seen[name] && !dup[name] {
						dup[name] = true
						r.Errorf(x.Pos, "CH030",
							"mutex alternatives are both guarded by channel %q; the external choice cannot be resolved", name)
					}
				}
			})
		}
	},
}

// ---------------------------------------------------------------------
// verb: phase-ordering sanity of user-specified expansions.

// VerbPass checks each verb channel's hand-written four-phase events:
// edges of one signal must alternate (CH040) and return the signal to
// its initial level (CH041); an all-empty verb should be void (CH042);
// a verb whose first event is empty gets its activity from a later
// event, which is rarely intended (CH043).
var VerbPass = &Pass{
	Name: "verb",
	Doc:  "verb event phase-ordering sanity (CH040-CH043)",
	Run: func(n *core.Netlist, r *Reporter) {
		for _, p := range n.Components {
			ch.Walk(p.Body, func(e ch.Expr) {
				c, ok := e.(*ch.Chan)
				if !ok || c.Kind != ch.Verb {
					return
				}
				checkVerb(c, r)
			})
		}
	},
}

func checkVerb(c *ch.Chan, r *Reporter) {
	type state struct {
		lastRise bool
		count    int
	}
	states := map[string]*state{}
	var order []string
	total := 0
	for _, ev := range c.Ev {
		for _, it := range ev {
			t, ok := it.(ch.Trans)
			if !ok {
				continue
			}
			total++
			s := states[t.Signal]
			if s == nil {
				s = &state{lastRise: !t.Rise} // first edge is always legal
				states[t.Signal] = s
				order = append(order, t.Signal)
			}
			if s.lastRise == t.Rise {
				edge := "falls"
				if t.Rise {
					edge = "rises"
				}
				r.Errorf(c.Pos, "CH040",
					"verb signal %q %s twice without the opposite edge", t.Signal, edge)
			}
			s.lastRise = t.Rise
			s.count++
		}
	}
	if total == 0 {
		r.Warnf(c.Pos, "CH042", "verb declares no transitions; use void instead")
		return
	}
	for _, sig := range order {
		if states[sig].count%2 != 0 {
			r.Warnf(c.Pos, "CH041",
				"verb signal %q does not return to its initial level (odd number of edges)", sig)
		}
	}
	if len(c.Ev[0]) == 0 {
		r.Infof(c.Pos, "CH043",
			"verb's first event is empty; its activity is inferred from a later event")
	}
}

// ---------------------------------------------------------------------
// cluster: advisory findings tying lint output to the paper's
// optimizations.

// ClusterPass flags optimization opportunities, not problems: internal
// point-to-point channels that T1 activation-channel removal could
// hide (CH100, §4.1), and call-shaped components that T2 call
// distribution could split (CH101, §4.2).
var ClusterPass = &Pass{
	Name: "cluster",
	Doc:  "advisory T1/T2 clustering opportunities (CH100-CH101)",
	Run: func(n *core.Netlist, r *Reporter) {
		if len(n.Components) > 1 {
			if internal, err := n.InternalPToP(); err == nil {
				for _, name := range internal {
					reportT1(n, name, r)
				}
			}
		}
		for _, p := range n.Components {
			reportT2(p, r)
		}
	},
}

// reportT1 emits the CH100 advisory for one hideable channel, at the
// active (activating) end.
func reportT1(n *core.Netlist, name string, r *Reporter) {
	var activeComp, passiveComp string
	var pos ch.Pos
	for _, p := range n.Components {
		ch.Walk(p.Body, func(e ch.Expr) {
			c, ok := e.(*ch.Chan)
			if !ok || c.Kind != ch.PToP || c.Name != name {
				return
			}
			if c.Act == ch.Active && activeComp == "" {
				activeComp, pos = p.Name, c.Pos
			}
			if c.Act == ch.Passive && passiveComp == "" {
				passiveComp = p.Name
			}
		})
	}
	if activeComp == "" || passiveComp == "" {
		return
	}
	r.Infof(pos, "CH100",
		"internal channel %q (activates %q from %q) is hideable: T1 activation-channel-removal candidate",
		name, passiveComp, activeComp)
}

// mutexLeaves flattens a right-nested mutex chain into its branches.
func mutexLeaves(e ch.Expr) []ch.Expr {
	if op, ok := e.(*ch.Op); ok && op.Kind == ch.Mutex {
		return append(mutexLeaves(op.A), mutexLeaves(op.B)...)
	}
	return []ch.Expr{e}
}

// reportT2 emits the CH101 advisory when a component is an n-way call:
// (rep (mutex (enc passive-p_i active-B) ...)) with one shared active
// channel B across all branches.
func reportT2(p *ch.Program, r *Reporter) {
	body := p.Body
	if rep, ok := body.(*ch.Rep); ok {
		body = rep.Body
	}
	leaves := mutexLeaves(body)
	if len(leaves) < 2 {
		return
	}
	shared := ""
	for _, leaf := range leaves {
		op, ok := leaf.(*ch.Op)
		if !ok || (op.Kind != ch.EncEarly && op.Kind != ch.EncMiddle && op.Kind != ch.EncLate) {
			return
		}
		in, ok := op.A.(*ch.Chan)
		if !ok || in.Kind != ch.PToP || in.Act != ch.Passive {
			return
		}
		out, ok := op.B.(*ch.Chan)
		if !ok || out.Kind != ch.PToP || out.Act != ch.Active {
			return
		}
		if shared == "" {
			shared = out.Name
		} else if out.Name != shared {
			return
		}
	}
	r.Infof(p.Pos, "CH101",
		"component %q is a %d-way call on channel %q: T2 call-distribution candidate",
		p.Name, len(leaves), shared)
}

// sortedCodes returns the diagnostic code table in code order (used by
// documentation commands and tests).
func sortedCodes() []string {
	out := make([]string, 0, len(Codes))
	for c := range Codes {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"balsabm/internal/designs"
)

var update = flag.Bool("update", false, "rewrite examples/lint golden .diag files")

const corpusDir = "../../examples/lint"

// TestGoldenCorpus lints every examples/lint/*.ch file and diffs the
// rendered diagnostics against the checked-in .diag file next to it.
// Run with -update to regenerate after an intentional output change.
func TestGoldenCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(corpusDir, "*.ch"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 10 {
		t.Fatalf("corpus suspiciously small: %d files", len(files))
	}
	sort.Strings(files)
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			got := Format(LintSource(string(src)), filepath.Base(file))
			golden := strings.TrimSuffix(file, ".ch") + ".diag"
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run go test ./internal/analysis -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics changed for %s:\n--- got ---\n%s--- want ---\n%s",
					filepath.Base(file), got, want)
			}
		})
	}
}

// TestCorpusCoversCodes: together the corpus exercises every
// diagnostic code reachable from parsed source (CH003/CH005 need
// programmatically built ASTs; the parser cannot produce them).
func TestCorpusCoversCodes(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(corpusDir, "*.ch"))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range LintSource(string(src)) {
			seen[d.Code] = true
		}
	}
	unreachableFromSource := map[string]bool{"CH003": true, "CH005": true}
	for _, code := range sortedCodes() {
		if !seen[code] && !unreachableFromSource[code] {
			t.Errorf("no corpus file exercises %s (%s)", code, Codes[code])
		}
	}
}

// TestDesignsLintClean: every built-in Table 3 design's control
// netlist must be free of error-severity findings — the lint gate in
// the flow would otherwise refuse to synthesize the repo's own
// examples.
func TestDesignsLintClean(t *testing.T) {
	for _, d := range designs.All() {
		ds := Analyze(d.Control())
		var errs []Diag
		for _, diag := range ds {
			if diag.Severity == SevError {
				errs = append(errs, diag)
			}
		}
		if len(errs) > 0 {
			t.Errorf("design %s has lint errors:\n%s", d.Name, Format(errs, d.Name))
		}
	}
	balsa, err := designs.AllBalsa()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range balsa {
		ds := Analyze(d.Control())
		var errs []Diag
		for _, diag := range ds {
			if diag.Severity == SevError {
				errs = append(errs, diag)
			}
		}
		if len(errs) > 0 {
			t.Errorf("design %s has lint errors:\n%s", d.Name, Format(errs, d.Name))
		}
	}
}

// Package analysis implements chlint, a pass-based static analyzer
// for CH programs with structured, position-rich diagnostics.
//
// The paper's core guarantee (Section 3.5) is that CH programs obeying
// the Table 1 "Burst-Mode aware" restrictions compile
// correct-by-construction into valid Burst-Mode specifications.
// ch.Validate enforces that, but stops at the first violation and
// reports a bare error. chlint instead runs a fixed set of passes over
// a whole control netlist and reports every finding as a Diag: a
// source position (threaded from the parser through the AST), a
// severity, a stable CHxxx code, a message and optional notes — the
// shape of a compiler diagnostic, in the spirit of Rosendahl &
// Kirkeby's static communication analysis for hardware design.
//
// Severities follow go vet conventions: errors mean the netlist will
// not synthesize (or will synthesize to broken hardware) and gate the
// flow; warnings are suspicious-but-synthesizable constructs; infos
// are advisory, e.g. clustering opportunities tying lint output back
// to the paper's T1/T2 optimizations.
//
// Entry points: Analyze (a parsed netlist), LintSource (text, folding
// parse failures into the diagnostic stream), and Passes (the
// registry, for tools that want to select passes).
package analysis

import (
	"balsabm/internal/ch"
	"balsabm/internal/core"
	"balsabm/internal/diag"
	"balsabm/internal/sexp"
)

// Severity classifies a diagnostic; see internal/diag.
type Severity = diag.Severity

// Severity levels, re-exported from internal/diag. Errors abort the
// flow's pre-synthesis gate; warnings are suspicious-but-synthesizable
// constructs; infos are advisory, e.g. clustering opportunities tying
// lint output back to the paper's T1/T2 optimizations.
const (
	SevError   = diag.SevError
	SevWarning = diag.SevWarning
	SevInfo    = diag.SevInfo
)

// Diag is one diagnostic: where (a ch.Pos), how bad, which rule, and
// why. It is the shared diag.Diag shape instantiated with source
// positions; see internal/diag for the render and sort conventions.
type Diag = diag.Diag[ch.Pos]

// Codes maps every stable diagnostic code to its one-line meaning.
// Codes are append-only: a released code never changes meaning, so
// suppressions and CI greps stay valid.
var Codes = map[string]string{
	"CH000": "source does not parse",
	"CH001": "illegal operator/activity combination (Table 1)",
	"CH002": "break outside of rep loop",
	"CH003": "channel must be passive or active",
	"CH004": "mult channel needs a positive wire count",
	"CH005": "mux channel has no arms",
	"CH010": "internal channel with two same-activity ends",
	"CH011": "channel connected to more than two components",
	"CH012": "conflicting declarations of one channel",
	"CH013": "component shares no channel with the rest of the netlist",
	"CH020": "unreachable: preceding expression always breaks",
	"CH021": "unreachable: preceding rep loop never terminates",
	"CH022": "rep body always breaks; loop runs at most once",
	"CH030": "mutex alternatives guarded by the same channel",
	"CH040": "verb signal repeats an edge without the opposite edge",
	"CH041": "verb signal does not return to its initial level",
	"CH042": "verb declares no transitions",
	"CH043": "verb's first event is empty; activity inferred from a later event",
	"CH100": "hideable internal channel: T1 activation-channel-removal candidate",
	"CH101": "call-shaped component: T2 call-distribution candidate",
}

// Reporter collects diagnostics during a pass run.
type Reporter = diag.Reporter[ch.Pos]

// Pass is one analyzer pass: a name, a one-line doc string and a run
// function receiving the netlist under analysis.
type Pass struct {
	Name string
	Doc  string
	Run  func(n *core.Netlist, r *Reporter)
}

// Passes returns the full pass registry in its fixed run order.
func Passes() []*Pass {
	return []*Pass{
		LegalityPass,
		ChannelsPass,
		UnreachablePass,
		MutexPass,
		VerbPass,
		ClusterPass,
	}
}

// Run executes the given passes over a netlist and returns the merged
// diagnostics sorted by position, then code, then message — a stable,
// deterministic order at any pass count.
func Run(n *core.Netlist, passes []*Pass) []Diag {
	r := &Reporter{}
	for _, p := range passes {
		p.Run(n, r)
	}
	ds := r.Diags()
	diag.Sort(ds)
	return ds
}

// Analyze runs every registered pass over a netlist.
func Analyze(n *core.Netlist) []Diag { return Run(n, Passes()) }

// LintSource lints CH source text: a sequence of (program name expr)
// forms, or a single bare expression (wrapped as program "main").
// Parse failures do not abort the lint; they surface as a single
// CH000 error diagnostic carrying the parser's position, so every
// caller — CLI, daemon, golden tests — sees one uniform stream.
func LintSource(src string) []Diag {
	n, d := parseSource(src)
	if d != nil {
		return []Diag{*d}
	}
	return Analyze(n)
}

// parseSource parses lint input, translating parse errors into a
// CH000 diagnostic.
func parseSource(src string) (*core.Netlist, *Diag) {
	nodes, err := sexp.ParseAll(src)
	if err != nil {
		return nil, parseDiag(err)
	}
	if len(nodes) == 0 {
		return nil, &Diag{Severity: SevError, Code: "CH000", Message: "empty input"}
	}
	// A sequence of (program ...) forms is a netlist; a single other
	// form is a bare expression.
	if l, ok := nodes[0].(sexp.List); ok && l.Head() == "program" {
		n := &core.Netlist{}
		for _, node := range nodes {
			p, err := ch.ProgramFromSexp(node)
			if err != nil {
				return nil, parseDiag(err)
			}
			n.Components = append(n.Components, p)
		}
		return n, nil
	}
	if len(nodes) > 1 {
		return nil, &Diag{Severity: SevError, Code: "CH000",
			Message: "expected a single expression or a sequence of (program name expr) forms"}
	}
	e, err := ch.FromSexp(nodes[0])
	if err != nil {
		return nil, parseDiag(err)
	}
	return &core.Netlist{Components: []*ch.Program{{Name: "main", Body: e}}}, nil
}

// parseDiag converts a parser error (ch.ParseError or
// sexp.SyntaxError) into a CH000 diagnostic at the error's position.
func parseDiag(err error) *Diag {
	d := &Diag{Severity: SevError, Code: "CH000", Message: err.Error()}
	switch e := err.(type) {
	case *ch.ParseError:
		d.Loc = e.Pos
		d.Message = e.Msg
	case *sexp.SyntaxError:
		d.Loc = ch.Pos{Line: e.Line, Col: e.Col}
		d.Message = e.Msg
	}
	return d
}

// Count tallies diagnostics by severity.
func Count(ds []Diag) (errors, warnings, infos int) { return diag.Count(ds) }

// HasErrors reports whether any diagnostic is error-severity.
func HasErrors(ds []Diag) bool { return diag.HasErrors(ds) }

// Format renders diagnostics vet-style, one per line (plus note
// lines), prefixed with file when non-empty.
func Format(ds []Diag, file string) string { return diag.Format(ds, file) }

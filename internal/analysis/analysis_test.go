package analysis

import (
	"strings"
	"testing"

	"balsabm/internal/ch"
)

// lint is a test helper asserting the source lints without parse
// failure and returning the diagnostics.
func lint(t *testing.T, src string) []Diag {
	t.Helper()
	ds := LintSource(src)
	for _, d := range ds {
		if d.Code == "CH000" {
			t.Fatalf("unexpected parse failure: %s", d)
		}
	}
	return ds
}

// codesOf extracts the sorted diag codes for compact assertions.
func codesOf(ds []Diag) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Code
	}
	return out
}

func wantCodes(t *testing.T, ds []Diag, want ...string) {
	t.Helper()
	got := codesOf(ds)
	if len(got) != len(want) {
		t.Fatalf("got %d diags %v, want %v\n%s", len(got), got, want, Format(ds, ""))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("diag %d is %s, want %s\n%s", i, got[i], want[i], Format(ds, ""))
		}
	}
}

// TestLegalityReportsAll: three distinct Table 1 violations in one
// program all surface, each at its own line:col — the acceptance
// criterion for the issue.
func TestLegalityReportsAll(t *testing.T) {
	src := `(seq
  (mutex (p-to-p active e) (p-to-p active f))
  (enc-late (p-to-p active c) (p-to-p passive d))
  (seq-ov (p-to-p passive a) (p-to-p active b)))`
	ds := lint(t, src)
	var errs []Diag
	for _, d := range ds {
		if d.Code == "CH001" {
			errs = append(errs, d)
		}
	}
	if len(errs) != 3 {
		t.Fatalf("want 3 CH001 errors, got %d:\n%s", len(errs), Format(ds, ""))
	}
	wantPos := []ch.Pos{{Line: 2, Col: 3}, {Line: 3, Col: 3}, {Line: 4, Col: 3}}
	for i, d := range errs {
		if d.Loc != wantPos[i] {
			t.Errorf("violation %d at %s, want %s", i, d.Loc, wantPos[i])
		}
		if len(d.Notes) == 0 || !strings.Contains(d.Notes[0], "Table 1 row") {
			t.Errorf("violation %d missing Table 1 row note: %v", i, d.Notes)
		}
	}
}

func TestLegalityStructural(t *testing.T) {
	ds := lint(t, "(seq (break) (p-to-p active a))")
	found := false
	for _, d := range ds {
		if d.Code == "CH002" {
			found = true
		}
	}
	if !found {
		t.Fatalf("want CH002 for break outside rep:\n%s", Format(ds, ""))
	}

	ds = lint(t, "(mult-req passive m 0)")
	wantCodes(t, ds, "CH004")
}

func TestMuxArmLegality(t *testing.T) {
	// mux-ack's implicit first argument is active; seq-ov then needs an
	// active second argument.
	ds := lint(t, "(mux-ack m (seq-ov (p-to-p passive x)))")
	if len(ds) == 0 || ds[0].Code != "CH001" {
		t.Fatalf("want CH001 on mux arm:\n%s", Format(ds, ""))
	}
	if !strings.Contains(ds[0].Message, "implicit first argument") {
		t.Errorf("message should mention the implicit first argument: %s", ds[0].Message)
	}
}

func TestChannelsPass(t *testing.T) {
	// "up" is active at both ends: multiply driven.
	src := `(program a (rep (enc-early (p-to-p passive go_a) (p-to-p active up))))
(program b (rep (enc-early (p-to-p passive go_b) (p-to-p active up))))`
	ds := lint(t, src)
	var got []string
	for _, d := range ds {
		if d.Severity == SevError {
			got = append(got, d.Code)
		}
	}
	if len(got) != 1 || got[0] != "CH010" {
		t.Fatalf("want exactly CH010, got %v:\n%s", got, Format(ds, ""))
	}

	// Three components on one channel.
	src = `(program a (rep (enc-early (p-to-p passive go_a) (p-to-p active x))))
(program b (rep (enc-early (p-to-p passive x) (p-to-p active out_b))))
(program c (rep (enc-early (p-to-p passive x) (p-to-p active out_c))))`
	ds = lint(t, src)
	found := false
	for _, d := range ds {
		if d.Code == "CH011" {
			found = true
		}
	}
	if !found {
		t.Fatalf("want CH011 for 3-component channel:\n%s", Format(ds, ""))
	}

	// Conflicting kinds across components.
	src = `(program a (rep (enc-early (p-to-p passive go_a) (p-to-p active x))))
(program b (rep (enc-early (mult-req passive x 2) (p-to-p active done))))`
	ds = lint(t, src)
	found = false
	for _, d := range ds {
		if d.Code == "CH012" {
			found = true
		}
	}
	if !found {
		t.Fatalf("want CH012 for kind conflict:\n%s", Format(ds, ""))
	}

	// Disconnected component.
	src = `(program a (rep (enc-early (p-to-p passive go_a) (p-to-p active link))))
(program b (rep (enc-early (p-to-p passive link) (p-to-p active out))))
(program c (rep (enc-early (p-to-p passive other) (p-to-p active thing))))`
	ds = lint(t, src)
	found = false
	for _, d := range ds {
		if d.Code == "CH013" && strings.Contains(d.Message, `"c"`) {
			found = true
		}
	}
	if !found {
		t.Fatalf("want CH013 for component c:\n%s", Format(ds, ""))
	}
}

func TestUnreachablePass(t *testing.T) {
	ds := lint(t, "(rep (seq (break) (p-to-p active a)))")
	// CH020 on the dead code, CH022 on the at-most-once rep.
	var codes []string
	for _, d := range ds {
		codes = append(codes, d.Code)
	}
	has := func(c string) bool {
		for _, x := range codes {
			if x == c {
				return true
			}
		}
		return false
	}
	if !has("CH020") || !has("CH022") {
		t.Fatalf("want CH020 and CH022, got %v:\n%s", codes, Format(ds, ""))
	}

	ds = lint(t, `(seq
  (rep (enc-early (p-to-p passive p) (p-to-p active a)))
  (p-to-p active never))`)
	found := false
	for _, d := range ds {
		if d.Code == "CH021" && d.Loc == (ch.Pos{Line: 3, Col: 3}) {
			found = true
		}
	}
	if !found {
		t.Fatalf("want CH021 at 3:3:\n%s", Format(ds, ""))
	}

	// A rep whose body can break is fine.
	ds = lint(t, "(seq (rep (mutex (p-to-p passive go) (seq (p-to-p passive stop) (break)))) (p-to-p active done))")
	for _, d := range ds {
		if d.Code == "CH021" || d.Code == "CH020" {
			t.Fatalf("escaping rep flagged unreachable:\n%s", Format(ds, ""))
		}
	}
}

func TestMutexPass(t *testing.T) {
	ds := lint(t, "(mutex (p-to-p passive g) (seq (p-to-p passive g) (p-to-p active a)))")
	found := false
	for _, d := range ds {
		if d.Code == "CH030" && strings.Contains(d.Message, `"g"`) {
			found = true
		}
	}
	if !found {
		t.Fatalf("want CH030 for shared guard g:\n%s", Format(ds, ""))
	}

	// Distinct guards: clean.
	ds = lint(t, "(mutex (p-to-p passive g1) (p-to-p passive g2))")
	for _, d := range ds {
		if d.Code == "CH030" {
			t.Fatalf("distinct guards flagged:\n%s", Format(ds, ""))
		}
	}
}

func TestVerbPass(t *testing.T) {
	// r rises twice with no fall in between.
	ds := lint(t, "(verb ((i r +)) ((i r +)) ((i r -)) ((i r -)))")
	found := false
	for _, d := range ds {
		if d.Code == "CH040" {
			found = true
		}
	}
	if !found {
		t.Fatalf("want CH040:\n%s", Format(ds, ""))
	}

	// Odd edge count: signal left high.
	ds = lint(t, "(verb ((i r +)) () () ())")
	found = false
	for _, d := range ds {
		if d.Code == "CH041" {
			found = true
		}
	}
	if !found {
		t.Fatalf("want CH041:\n%s", Format(ds, ""))
	}

	// No transitions at all.
	ds = lint(t, "(verb () () () ())")
	wantCodes(t, ds, "CH042")

	// Empty first event: activity inferred later.
	ds = lint(t, "(verb () ((i r +)) ((i r -)) ())")
	wantCodes(t, ds, "CH043")
}

func TestClusterAdvisories(t *testing.T) {
	// T1: "act" is an internal hideable channel.
	src := `(program caller (rep (enc-early (p-to-p passive go) (p-to-p active act))))
(program callee (rep (enc-early (p-to-p passive act) (p-to-p active out))))`
	ds := lint(t, src)
	found := false
	for _, d := range ds {
		if d.Code == "CH100" && strings.Contains(d.Message, `"act"`) {
			if d.Severity != SevInfo {
				t.Errorf("CH100 severity %s, want info", d.Severity)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("want CH100 advisory:\n%s", Format(ds, ""))
	}

	// T2: two-way call shape.
	ds = lint(t, `(program callmux
  (rep (mutex (enc-early (p-to-p passive c1) (p-to-p active b))
              (enc-early (p-to-p passive c2) (p-to-p active b)))))`)
	found = false
	for _, d := range ds {
		if d.Code == "CH101" && strings.Contains(d.Message, "2-way call") {
			found = true
		}
	}
	if !found {
		t.Fatalf("want CH101 advisory:\n%s", Format(ds, ""))
	}
}

func TestParseFailureIsCH000(t *testing.T) {
	ds := LintSource("(rep\n  (p-to-p sideways x))")
	wantCodes(t, ds, "CH000")
	if ds[0].Loc != (ch.Pos{Line: 2, Col: 11}) {
		t.Errorf("CH000 at %s, want 2:11", ds[0].Loc)
	}

	ds = LintSource("(rep (p-to-p passive x)")
	wantCodes(t, ds, "CH000")
	if !ds[0].Loc.IsValid() {
		t.Error("sexp syntax error lost its position")
	}

	ds = LintSource("")
	wantCodes(t, ds, "CH000")
}

// TestDeterministicOrder: two runs produce byte-identical output, and
// diagnostics are position-sorted.
func TestDeterministicOrder(t *testing.T) {
	src := `(program a (rep (enc-early (p-to-p passive go_a) (p-to-p active up))))
(program b (rep (enc-early (p-to-p passive go_b) (p-to-p active up))))
(program c (seq-ov (p-to-p passive x) (p-to-p active y)))`
	first := Format(LintSource(src), "test.ch")
	for i := 0; i < 20; i++ {
		if got := Format(LintSource(src), "test.ch"); got != first {
			t.Fatalf("run %d differs:\n%s\nvs\n%s", i, got, first)
		}
	}
	ds := LintSource(src)
	for i := 1; i < len(ds); i++ {
		a, b := ds[i-1].Loc, ds[i].Loc
		if a.Line > b.Line || (a.Line == b.Line && a.Col > b.Col) {
			t.Fatalf("diags out of order: %s before %s", ds[i-1], ds[i])
		}
	}
}

// TestCleanProgram: a well-formed design lints clean of errors.
func TestCleanProgram(t *testing.T) {
	ds := lint(t, `(rep
  (enc-early (p-to-p passive activate)
    (seq (p-to-p active left) (p-to-p active right))))`)
	if HasErrors(ds) {
		t.Fatalf("clean program reported errors:\n%s", Format(ds, ""))
	}
}

func TestRenderAndCodes(t *testing.T) {
	d := Diag{Loc: ch.Pos{Line: 3, Col: 7}, Severity: SevError, Code: "CH001",
		Message: "illegal combination", Notes: []string{"Table 1 row seq-ov: ..."}}
	got := d.Render("f.ch")
	want := "f.ch:3:7: error: CH001: illegal combination\n\tTable 1 row seq-ov: ..."
	if got != want {
		t.Errorf("Render:\n%q\nwant\n%q", got, want)
	}
	// Zero position: no bogus 0:0.
	if s := (Diag{Severity: SevWarning, Code: "CH013", Message: "m"}).Render(""); s != "warning: CH013: m" {
		t.Errorf("zero-pos render: %q", s)
	}

	// Every code a pass can emit is documented.
	for _, c := range sortedCodes() {
		if Codes[c] == "" {
			t.Errorf("code %s has empty doc", c)
		}
	}
	if len(sortedCodes()) < 15 {
		t.Errorf("code table suspiciously small: %d", len(sortedCodes()))
	}
}

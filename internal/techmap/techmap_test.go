package techmap

import (
	"strings"
	"testing"

	"balsabm/internal/bm"
	"balsabm/internal/cell"
	"balsabm/internal/ch"
	"balsabm/internal/chtobm"
	"balsabm/internal/minimalist"
)

func controller(t *testing.T, name, src string) *minimalist.Controller {
	t.Helper()
	body, err := ch.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := chtobm.Compile(&ch.Program{Name: name, Body: body})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := minimalist.Synthesize(sp)
	if err != nil {
		t.Fatal(err)
	}
	return ctrl
}

const passivatorSrc = `(rep (enc-middle (p-to-p passive A) (p-to-p passive B)))`
const sequencerSrc = `(rep (enc-early (p-to-p passive P)
    (seq (p-to-p active A1) (p-to-p active A2))))`
const callSrc = `(rep (mutex
    (enc-early (p-to-p passive A1) (p-to-p active B))
    (enc-early (p-to-p passive A2) (p-to-p active B))))`

// The baseline (area-shared) passivator collapses to the textbook
// implementation: one C-element plus output buffers.
func TestPassivatorBaselineIsCElement(t *testing.T) {
	lib := cell.AMS035()
	ctrl := controller(t, "passivator", passivatorSrc)
	nl, err := MapController(ctrl, AreaShared, lib)
	if err != nil {
		t.Fatal(err)
	}
	counts := nl.CellCounts()
	if counts["C2"] != 1 {
		t.Fatalf("want exactly one C2, got %v", counts)
	}
	if counts["AND2"] != 0 || counts["OR2"] != 0 {
		t.Fatalf("leftover SOP logic: %v", counts)
	}
	// The optimized-style mapping of the same controller is much
	// larger — the paper's area-overhead mechanism in miniature.
	split, err := MapController(ctrl, SpeedSplit, lib)
	if err != nil {
		t.Fatal(err)
	}
	if split.Area(lib) <= nl.Area(lib) {
		t.Fatalf("speed-split (%.0f) should exceed baseline (%.0f)", split.Area(lib), nl.Area(lib))
	}
}

// SpeedSplit netlists must be functionally identical to their covers
// (the Section 5 hazard audit).
func TestCheckMappedSpeedSplit(t *testing.T) {
	lib := cell.AMS035()
	for _, tc := range []struct{ name, src string }{
		{"passivator", passivatorSrc},
		{"sequencer", sequencerSrc},
		{"call", callSrc},
	} {
		ctrl := controller(t, tc.name, tc.src)
		nl, err := MapController(ctrl, SpeedSplit, lib)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if err := CheckMapped(ctrl, nl, lib); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
	}
}

// Split mapping keeps the two NAND levels in separate modules.
func TestSplitModules(t *testing.T) {
	lib := cell.AMS035()
	ctrl := controller(t, "sequencer", sequencerSrc)
	nl, err := MapController(ctrl, SpeedSplit, lib)
	if err != nil {
		t.Fatal(err)
	}
	areas := ModuleAreas(nl, lib)
	if areas[1] == 0 || areas[2] == 0 {
		t.Fatalf("module areas %v: both levels must be populated", areas)
	}
	for _, inst := range nl.Instances {
		if inst.Module != 1 && inst.Module != 2 {
			t.Fatalf("instance %v outside the two levels", inst)
		}
	}
}

// Verilog output is produced and mentions every cell.
func TestVerilog(t *testing.T) {
	lib := cell.AMS035()
	ctrl := controller(t, "sequencer", sequencerSrc)
	nl, err := MapController(ctrl, SpeedSplit, lib)
	if err != nil {
		t.Fatal(err)
	}
	v := VerilogModules(nl, lib)
	for _, want := range []string{"module sequencer", "endmodule", "NAND", "input P_r", "output A1_r"} {
		if !strings.Contains(v, want) {
			t.Fatalf("verilog missing %q:\n%s", want, v)
		}
	}
}

// Wide covers exercise the tree reducer (NAND trees above 4 inputs).
func TestWideFunctionMapping(t *testing.T) {
	lib := cell.AMS035()
	// A 5-way sequencer yields functions with many literals.
	src := `(rep (enc-early (p-to-p passive P)
	    (seq (p-to-p active A1) (p-to-p active A2) (p-to-p active A3)
	         (p-to-p active A4) (p-to-p active A5))))`
	ctrl := controller(t, "seq5", src)
	nl, err := MapController(ctrl, SpeedSplit, lib)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckMapped(ctrl, nl, lib); err != nil {
		t.Fatal(err)
	}
}

// Reports include positive areas and critical paths; speed-split should
// not be slower than a few ns for controllers this size.
func TestSummarize(t *testing.T) {
	lib := cell.AMS035()
	ctrl := controller(t, "call", callSrc)
	for _, mode := range []Mode{SpeedSplit, AreaShared} {
		nl, err := MapController(ctrl, mode, lib)
		if err != nil {
			t.Fatal(err)
		}
		r := Summarize(nl, mode, lib)
		if r.Area <= 0 || r.Critical <= 0 || r.Cells <= 0 {
			t.Fatalf("degenerate report %+v", r)
		}
		if r.Critical > 3 {
			t.Fatalf("critical path %.2f ns implausibly long", r.Critical)
		}
	}
}

// The mapped controller's settled behavior matches the walk over the
// spec for the baseline mode too (dynamic check via gates.Settle).
func TestAreaSharedFunctional(t *testing.T) {
	lib := cell.AMS035()
	ctrl := controller(t, "passivator", passivatorSrc)
	nl, err := MapController(ctrl, AreaShared, lib)
	if err != nil {
		t.Fatal(err)
	}
	// Walk the passivator protocol: raise A_r and B_r; acknowledge
	// must rise; lower both; acknowledges fall.
	vals, err := nl.Settle(lib, map[string]bool{"A_r": false, "B_r": false}, nil)
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) bool {
		v, err := nl.Value(vals, name)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if get("A_a") || get("B_a") {
		t.Fatal("acknowledges high at reset")
	}
	vals, err = nl.Settle(lib, map[string]bool{"A_r": true, "B_r": true}, vals)
	if err != nil {
		t.Fatal(err)
	}
	if !get("A_a") || !get("B_a") {
		t.Fatal("acknowledges did not rise")
	}
	// Only one request low: C-element holds.
	vals, err = nl.Settle(lib, map[string]bool{"A_r": false, "B_r": true}, vals)
	if err != nil {
		t.Fatal(err)
	}
	if !get("A_a") {
		t.Fatal("C-element did not hold")
	}
	vals, err = nl.Settle(lib, map[string]bool{"A_r": false, "B_r": false}, vals)
	if err != nil {
		t.Fatal(err)
	}
	if get("A_a") || get("B_a") {
		t.Fatal("acknowledges did not fall")
	}
	_ = bm.Burst{}
}

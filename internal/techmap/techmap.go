// Package techmap turns synthesized two-level controllers into mapped
// gate netlists, standing in for the paper's Synopsys Design Compiler
// step (Section 5), in two modes:
//
//   - SpeedSplit reproduces the paper's optimized-controller flow: each
//     output's hazard-free cover becomes a NAND-NAND structure; the two
//     logic levels are kept in separate "modules" and mapped separately
//     (the paper's three-Verilog-module scheme), which deliberately
//     forgoes cross-level merging — one of the two area-overhead
//     sources the paper identifies.
//
//   - AreaShared stands in for Balsa's hand-optimized component
//     circuits (the unoptimized baseline): product terms are shared
//     across outputs, and a peephole pass extracts Muller C-elements
//     from majority-with-feedback covers — recovering, e.g., the
//     textbook single-C-element passivator.
//
// All transformations are from the hazard-non-increasing set
// (DeMorgan, associativity, tree regrouping — Kung '92); CheckMapped
// verifies the mapped logic is functionally identical to the
// hazard-free covers, which together implies the mapped controllers
// remain hazard-free (the paper's Section 5 argument).
package techmap

import (
	"context"
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"balsabm/internal/cell"
	"balsabm/internal/gates"
	"balsabm/internal/logic"
	"balsabm/internal/minimalist"
	"balsabm/internal/parallel"
)

// Mode selects the mapping style.
type Mode int

const (
	SpeedSplit Mode = iota
	AreaShared
)

func (m Mode) String() string {
	if m == SpeedSplit {
		return "speed-split"
	}
	return "area-shared"
}

// mapper carries shared state while building one controller netlist.
type mapper struct {
	nl   *gates.Netlist
	lib  *cell.Library
	ctrl *minimalist.Controller
	inv  map[int]int // net -> inverted net
}

// MapController builds a mapped netlist for a synthesized controller.
// Primary inputs are the spec's input signals; primary outputs are the
// spec's output signals. State bits become internal feedback nets.
func MapController(ctrl *minimalist.Controller, mode Mode, lib *cell.Library) (*gates.Netlist, error) {
	nl := gates.New(ctrl.Spec.Name)
	m := &mapper{nl: nl, lib: lib, ctrl: ctrl, inv: map[int]int{}}
	for _, in := range ctrl.Inputs {
		nl.Inputs = append(nl.Inputs, nl.Net(in))
	}
	for _, out := range ctrl.Spec.Outputs {
		nl.Outputs = append(nl.Outputs, nl.Net(out))
	}
	for i := 0; i < ctrl.StateBits; i++ {
		nl.Net(fmt.Sprintf("y%d", i))
	}
	var err error
	switch mode {
	case SpeedSplit:
		err = m.buildSpeedSplit()
	case AreaShared:
		err = m.buildAreaShared()
	default:
		err = fmt.Errorf("techmap: unknown mode %d", mode)
	}
	if err != nil {
		return nil, fmt.Errorf("techmap: %s: %w", ctrl.Spec.Name, err)
	}
	return nl, nil
}

// literal returns the net carrying the (possibly inverted) variable.
func (m *mapper) literal(v int, val logic.Lit, module int) int {
	base := m.nl.Net(m.ctrl.Vars[v])
	if val == logic.One {
		return base
	}
	if n, ok := m.inv[base]; ok {
		return n
	}
	n := m.nl.Fresh(m.ctrl.Vars[v] + "_n")
	m.nl.AddInstance("INV", []int{base}, n, module)
	m.inv[base] = n
	return n
}

// reduceTree builds a balanced tree of k-input cells (k up to 4) of the
// given AND-like family over nets, returning the single root net driven
// by rootCell (e.g. "NAND") while inner groups use innerCell ("AND").
func (m *mapper) reduceTree(nets []int, innerPrefix, rootPrefix string, module int, outNet int) {
	work := append([]int(nil), nets...)
	for len(work) > 4 {
		var next []int
		for i := 0; i < len(work); i += 4 {
			j := i + 4
			if j > len(work) {
				j = len(work)
			}
			group := work[i:j]
			if len(group) == 1 {
				next = append(next, group[0])
				continue
			}
			t := m.nl.Fresh("t")
			m.nl.AddInstance(fmt.Sprintf("%s%d", innerPrefix, len(group)), group, t, module)
			next = append(next, t)
		}
		work = next
	}
	if len(work) == 1 {
		// Root of arity 1: INV for NAND-family roots, BUF for OR/AND.
		if rootPrefix == "NAND" || rootPrefix == "NOR" {
			m.nl.AddInstance("INV", work, outNet, module)
		} else {
			m.nl.AddInstance("BUF", work, outNet, module)
		}
		return
	}
	m.nl.AddInstance(fmt.Sprintf("%s%d", rootPrefix, len(work)), work, outNet, module)
}

// functionNames lists outputs then state bits, with their covers.
func (m *mapper) functions() []struct {
	name  string
	cover logic.Cover
} {
	out := make([]struct {
		name  string
		cover logic.Cover
	}, 0, len(m.ctrl.Spec.Outputs)+len(m.ctrl.NextState))
	for _, z := range m.ctrl.Spec.Outputs {
		out = append(out, struct {
			name  string
			cover logic.Cover
		}{z, m.ctrl.Outputs[z]})
	}
	for i, cv := range m.ctrl.NextState {
		out = append(out, struct {
			name  string
			cover logic.Cover
		}{fmt.Sprintf("y%d", i), cv})
	}
	return out
}

// buildSpeedSplit emits NAND-NAND logic, levels mapped separately.
// Per the paper's Section 6, the Minimalist speed scripts use
// single-output optimization that "usually duplicates gates in order to
// decrease critical paths": each output cone is built independently,
// including its own input inverters (no sharing across functions).
func (m *mapper) buildSpeedSplit() error {
	for _, f := range m.functions() {
		// Private inverters for this function's cone.
		m.inv = map[int]int{}
		outNet := m.nl.Net(f.name)
		if len(f.cover) == 0 {
			m.nl.AddInstance("BUF", []int{m.nl.ConstZero()}, outNet, 2)
			continue
		}
		var productBars []int
		for _, cube := range f.cover {
			var lits []int
			for v, val := range cube {
				if val == logic.DC {
					continue
				}
				lits = append(lits, m.literal(v, val, 1))
			}
			if len(lits) == 0 {
				return fmt.Errorf("function %s has a tautology product", f.name)
			}
			p := m.nl.Fresh(f.name + "_p")
			m.reduceTree(lits, "AND", "NAND", 1, p)
			productBars = append(productBars, p)
		}
		// Second level: f = NAND of the inverted products.
		m.reduceTree(productBars, "AND", "NAND", 2, outNet)
	}
	return nil
}

// buildAreaShared emits AND/OR logic with products shared across
// functions, then the C-element peephole.
func (m *mapper) buildAreaShared() error {
	// C-element extraction first: any function (fed-back output or
	// extra state bit) whose cover is majority(a, b, self) is a Muller
	// C-element — e.g. the passivator's acknowledges.
	cDriven := map[string]bool{}
	aliases := map[string]string{} // function name -> equivalent function net
	for _, z := range m.ctrl.Spec.Outputs {
		if a, b, ok := m.majoritySelf(m.ctrl.Outputs[z], z); ok {
			m.nl.AddInstance("C2", []int{a, b}, m.nl.Net(z), 0)
			cDriven[z] = true
		}
	}
	for i, cv := range m.ctrl.NextState {
		name := fmt.Sprintf("y%d", i)
		if a, b, ok := m.majoritySelf(cv, name); ok {
			m.nl.AddInstance("C2", []int{a, b}, m.nl.Net(name), 0)
			cDriven[name] = true
		}
	}
	// Functions identical to a C-driven one become buffers.
	for _, f := range m.functions() {
		if cDriven[f.name] {
			continue
		}
		for other := range cDriven {
			var otherCover logic.Cover
			if idx := m.varIndex(other); idx >= 0 && !strings.HasPrefix(other, "y") {
				otherCover = m.ctrl.Outputs[other]
			} else {
				var i int
				fmt.Sscanf(other, "y%d", &i)
				otherCover = m.ctrl.NextState[i]
			}
			if coversEqual(f.cover, otherCover) {
				aliases[f.name] = other
				break
			}
		}
	}
	products := map[string]int{}
	productNet := func(cube logic.Cube) (int, error) {
		key := cube.String()
		if n, ok := products[key]; ok {
			return n, nil
		}
		var lits []int
		for v, val := range cube {
			if val == logic.DC {
				continue
			}
			lits = append(lits, m.literal(v, val, 1))
		}
		if len(lits) == 0 {
			return 0, fmt.Errorf("tautology product")
		}
		if len(lits) == 1 {
			products[key] = lits[0]
			return lits[0], nil
		}
		p := m.nl.Fresh("p")
		m.reduceTree(lits, "AND", "AND", 1, p)
		products[key] = p
		return p, nil
	}
	for _, f := range m.functions() {
		if cDriven[f.name] {
			continue
		}
		outNet := m.nl.Net(f.name)
		if alias, ok := aliases[f.name]; ok {
			m.nl.AddInstance("BUF", []int{m.nl.Net(alias)}, outNet, 0)
			continue
		}
		if len(f.cover) == 0 {
			m.nl.AddInstance("BUF", []int{m.nl.ConstZero()}, outNet, 2)
			continue
		}
		var prods []int
		for _, cube := range f.cover {
			p, err := productNet(cube)
			if err != nil {
				return fmt.Errorf("function %s: %w", f.name, err)
			}
			prods = append(prods, p)
		}
		if len(prods) == 1 {
			m.nl.AddInstance("BUF", []int{prods[0]}, outNet, 2)
			continue
		}
		m.reduceTree(prods, "OR", "OR", 2, outNet)
	}
	return nil
}

// varIndex maps a variable name to its index in ctrl.Vars, -1 if none.
func (m *mapper) varIndex(name string) int {
	for i, v := range m.ctrl.Vars {
		if v == name {
			return i
		}
	}
	return -1
}

// majoritySelf matches cover == {ab, a·self, b·self} with self positive,
// returning the literal nets for a and b.
func (m *mapper) majoritySelf(cv logic.Cover, selfName string) (int, int, bool) {
	selfVar := m.varIndex(selfName)
	if selfVar < 0 || len(cv) != 3 {
		return 0, 0, false
	}
	// Collect literal positions/values.
	type lit struct {
		v   int
		val logic.Lit
	}
	litsOf := func(c logic.Cube) []lit {
		var out []lit
		for v, val := range c {
			if val != logic.DC {
				out = append(out, lit{v, val})
			}
		}
		return out
	}
	counts := map[lit]int{}
	for _, c := range cv {
		ls := litsOf(c)
		if len(ls) != 2 {
			return 0, 0, false
		}
		for _, l := range ls {
			counts[l]++
		}
	}
	if len(counts) != 3 {
		return 0, 0, false
	}
	var others []lit
	selfOK := false
	for l, n := range counts {
		if n != 2 {
			return 0, 0, false
		}
		if l.v == selfVar {
			if l.val != logic.One {
				return 0, 0, false
			}
			selfOK = true
		} else {
			others = append(others, l)
		}
	}
	if !selfOK || len(others) != 2 {
		return 0, 0, false
	}
	sort.Slice(others, func(i, j int) bool { return others[i].v < others[j].v })
	a := m.literal(others[0].v, others[0].val, 0)
	b := m.literal(others[1].v, others[1].val, 0)
	return a, b, true
}

// coversEqual reports whether two covers contain exactly the same
// product terms.
func coversEqual(a, b logic.Cover) bool {
	if len(a) != len(b) {
		return false
	}
	norm := func(cv logic.Cover) []string {
		out := make([]string, len(cv))
		for i, c := range cv {
			out[i] = c.String()
		}
		sort.Strings(out)
		return out
	}
	as, bs := norm(a), norm(b)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// Report summarizes a mapped controller.
type Report struct {
	Name     string
	Mode     Mode
	Cells    int
	Area     float64
	Critical float64
}

// Summarize computes the report for a mapped netlist.
func Summarize(nl *gates.Netlist, mode Mode, lib *cell.Library) Report {
	return Report{
		Name:     nl.Name,
		Mode:     mode,
		Cells:    len(nl.Instances),
		Area:     nl.Area(lib),
		Critical: nl.CriticalDelay(lib),
	}
}

func (r Report) String() string {
	return fmt.Sprintf("%s [%s]: %d cells, %.0f um2, %.2f ns critical",
		r.Name, r.Mode, r.Cells, r.Area, r.Critical)
}

// CheckMapped verifies a SpeedSplit-mapped netlist computes exactly the
// synthesized hazard-free covers for every output and state-bit
// function, exhaustively up to 14 variables and on 2^14 pseudo-random
// points beyond that. Because the mapping uses only tree regrouping,
// DeMorgan and associativity — hazard-non-increasing transformations —
// identical functionality implies the mapped controller inherits the
// covers' hazard-freedom (the paper's Section 5 argument).
//
// AreaShared netlists are not pointwise-identical (the C-element
// peephole folds outputs into feedback state); they are validated
// dynamically by driving them through the specification (package sim).
func CheckMapped(ctrl *minimalist.Controller, nl *gates.Netlist, lib *cell.Library) error {
	return CheckMappedOpt(ctrl, nl, lib, CheckOptions{})
}

// CheckOptions tunes CheckMapped's execution. The verdict is
// identical for every option combination.
type CheckOptions struct {
	// Pool admits the sample-point batches as leaf work units; nil
	// uses the process-wide default pool. CheckMappedOpt fans out
	// composite batches itself, so it must not be called while the
	// caller already holds a slot of the same pool.
	Pool *parallel.Pool
	// Ctx cancels the audit between batches; nil means background.
	Ctx context.Context
}

// mappedCheck is one audited function: a named output or state bit,
// its net, and its packed reference cover.
type mappedCheck struct {
	kind  string // "output" or "state bit"
	name  string
	net   int
	cover []logic.PackedCube
}

// CheckMappedOpt is CheckMapped with explicit pool/context. The fast
// path compiles the netlist once (gates.Compile with the forced nets
// as cut points) and sweeps the sample space 64 points per pass, each
// pass checked word-parallel against the packed reference covers
// (logic.EvalCoverLanes); point batches fan out deterministically
// over the worker pool. When the netlist does not compile — a
// combinational cycle the forced cut misses, a stateful cell outside
// the cut — it falls back to the interpreted per-point reference
// loop.
func CheckMappedOpt(ctrl *minimalist.Controller, nl *gates.Netlist, lib *cell.Library, opt CheckOptions) error {
	vars := ctrl.Vars
	// Forced evaluation: outputs are fed back as state variables and
	// y* nets hold the excitation state, so the audit forces both and
	// evaluates every function through its driving instance. State-bit
	// names are computed once, not per sample point.
	yNames := make([]string, ctrl.StateBits)
	for i := range yNames {
		yNames[i] = fmt.Sprintf("y%d", i)
	}
	forced := make(map[int]bool, len(ctrl.Spec.Outputs)+len(yNames))
	for _, z := range ctrl.Spec.Outputs {
		forced[nl.Net(z)] = true
	}
	for _, y := range yNames {
		forced[nl.Net(y)] = true
	}
	exhaustive := len(vars) <= 14
	total := 1 << 14
	if exhaustive {
		total = 1 << len(vars)
	}
	// Pack every reference cover once; sampled points then evaluate
	// word-parallel instead of per-literal per cube. Outputs are
	// checked in specification order, then the extra state bits.
	space := logic.NewSpace(len(vars))
	checks := make([]mappedCheck, 0, len(ctrl.Spec.Outputs)+len(ctrl.NextState))
	for _, z := range ctrl.Spec.Outputs {
		checks = append(checks, mappedCheck{kind: "output", name: z, net: nl.Net(z), cover: space.PackCover(ctrl.Outputs[z])})
	}
	for i, cv := range ctrl.NextState {
		checks = append(checks, mappedCheck{kind: "state bit", name: yNames[i], net: nl.Net(yNames[i]), cover: space.PackCover(cv)})
	}
	// Every checked net must have a driving instance to recompute.
	drv := nl.DriverIndex()
	for _, ck := range checks {
		if drv[ck.net] < 0 {
			return fmt.Errorf("techmap: %s: net %s has no driver", nl.Name, ck.name)
		}
	}
	varNets := make([]int, len(vars))
	for i, v := range vars {
		varNets[i] = -1
		if nl.HasNet(v) {
			varNets[i] = nl.Net(v)
		}
	}
	if prog, err := gates.Compile(nl, lib, forced); err == nil {
		return checkMappedCompiled(nl, prog, vars, varNets, checks, total, exhaustive, opt)
	}
	return checkMappedInterpreted(nl, lib, space, vars, varNets, forced, checks, total, exhaustive)
}

// sampleLanes generates the audit's sample points packed 64 to a
// block: block b, variable i holds points 64b..64b+63 of the sweep —
// the full 2^n space when exhaustive, the pseudo-random stream
// otherwise (the same LCG stream, in the same order, as the
// interpreted loop draws).
func sampleLanes(nVars, total int, exhaustive bool) [][]uint64 {
	blocks := (total + 63) / 64
	words := make([][]uint64, blocks)
	flat := make([]uint64, blocks*nVars)
	for b := range words {
		words[b] = flat[b*nVars : (b+1)*nVars : (b+1)*nVars]
	}
	rng := uint64(0x9e3779b97f4a7c15)
	for p := 0; p < total; p++ {
		sample := uint64(p)
		if !exhaustive {
			rng = rng*6364136223846793005 + 1442695040888963407
			sample = rng >> 16
		}
		w := words[p>>6]
		bit := uint64(1) << uint(p&63)
		for i := 0; i < nVars; i++ {
			if sample&(1<<uint(i)) != 0 {
				w[i] |= bit
			}
		}
	}
	return words
}

// assignAt rebuilds the variable assignment of one lane for an error
// message.
func assignAt(vars []string, words []uint64, lane int) map[string]bool {
	assign := make(map[string]bool, len(vars))
	for i, v := range vars {
		assign[v] = words[i]>>uint(lane)&1 != 0
	}
	return assign
}

// blocksPerBatch is the number of 64-point blocks one pool leaf
// settles: 16K points make 256 blocks, so batches of 32 give the pool
// eight leaves per audited controller without per-block scheduling
// overhead.
const blocksPerBatch = 32

func checkMappedCompiled(nl *gates.Netlist, prog *gates.Program, vars []string, varNets []int, checks []mappedCheck, total int, exhaustive bool, opt CheckOptions) error {
	words := sampleLanes(len(vars), total, exhaustive)
	batches := (len(words) + blocksPerBatch - 1) / blocksPerBatch
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	// parallel.MapCtx keeps error selection deterministic (lowest
	// failing batch wins) and each batch scans its blocks in order, so
	// the reported mismatch is the lowest failing sample point at any
	// worker count.
	_, err := parallel.MapCtx(ctx, opt.Pool, batches, func(bi int) (struct{}, error) {
		ev := prog.NewEval()
		lo := bi * blocksPerBatch
		hi := min(lo+blocksPerBatch, len(words))
		for b := lo; b < hi; b++ {
			w := words[b]
			ev.Reset()
			for i, net := range varNets {
				if net >= 0 {
					ev.Set(net, w[i])
				}
			}
			ev.Run()
			valid := ^uint64(0)
			if rem := total - b*64; rem < 64 {
				valid = 1<<uint(rem) - 1
			}
			for _, ck := range checks {
				got, _ := ev.Driver(ck.net)
				want := logic.EvalCoverLanes(ck.cover, w)
				if diff := (got ^ want) & valid; diff != 0 {
					lane := bits.TrailingZeros64(diff)
					return struct{}{}, fmt.Errorf("techmap: %s: %s %s differs from cover at %v",
						nl.Name, ck.kind, ck.name, assignAt(vars, w, lane))
				}
			}
		}
		return struct{}{}, nil
	})
	return err
}

// checkMappedInterpreted is the reference path: the interpreted
// settle loop per sample point, with the per-point garbage hoisted —
// value, point and scratch buffers are reused across the sweep and
// driver lookups go through the netlist's driver index.
func checkMappedInterpreted(nl *gates.Netlist, lib *cell.Library, space *logic.Space, vars []string, varNets []int, forced map[int]bool, checks []mappedCheck, total int, exhaustive bool) error {
	drv := nl.DriverIndex()
	maxIns := 0
	for i := range nl.Instances {
		if n := len(nl.Instances[i].Inputs); n > maxIns {
			maxIns = n
		}
	}
	ins := make([]bool, maxIns)
	vals := make([]bool, len(nl.NetNames))
	point := make([]bool, len(vars))
	pw := make([]uint64, space.Words())
	rng := uint64(0x9e3779b97f4a7c15)
	for p := 0; p < total; p++ {
		sample := uint64(p)
		if !exhaustive {
			rng = rng*6364136223846793005 + 1442695040888963407
			sample = rng >> 16
		}
		for i := range vals {
			vals[i] = false
		}
		for i := range pw {
			pw[i] = 0
		}
		for i := range vars {
			point[i] = sample&(1<<uint(i)) != 0
			if point[i] {
				pw[i>>6] |= 1 << uint(i&63)
			}
			if net := varNets[i]; net >= 0 {
				vals[net] = point[i]
			}
		}
		if err := settleForcedVals(nl, lib, vals, forced, ins); err != nil {
			return err
		}
		for _, ck := range checks {
			inst := &nl.Instances[drv[ck.net]]
			c := lib.Get(inst.Cell)
			scratch := ins[:len(inst.Inputs)]
			for i, in := range inst.Inputs {
				scratch[i] = vals[in]
			}
			got := c.Eval(scratch, vals[ck.net])
			if got != logic.EvalPointWords(ck.cover, pw) {
				assign := make(map[string]bool, len(vars))
				for i, v := range vars {
					assign[v] = point[i]
				}
				return fmt.Errorf("techmap: %s: %s %s differs from cover at %v", nl.Name, ck.kind, ck.name, assign)
			}
		}
	}
	return nil
}

// settleForced evaluates combinational logic with certain nets held
// at externally-assigned values. It is the interpreted reference the
// compiled engine is fuzz-tested against (FuzzCompiledEvalAgreement).
func settleForced(nl *gates.Netlist, lib *cell.Library, inputs map[string]bool, forced map[int]bool) ([]bool, error) {
	vals := make([]bool, len(nl.NetNames))
	for name, v := range inputs {
		if !nl.HasNet(name) {
			continue
		}
		vals[nl.Net(name)] = v
	}
	maxIns := 0
	for i := range nl.Instances {
		if n := len(nl.Instances[i].Inputs); n > maxIns {
			maxIns = n
		}
	}
	if err := settleForcedVals(nl, lib, vals, forced, make([]bool, maxIns)); err != nil {
		return nil, err
	}
	return vals, nil
}

// settleForcedVals is settleForced's core loop over a caller-owned
// value vector (already holding the external assignments) and input
// scratch, so the audit's fallback path allocates nothing per point.
func settleForcedVals(nl *gates.Netlist, lib *cell.Library, vals []bool, forced map[int]bool, ins []bool) error {
	for iter := 0; iter < 4*len(nl.Instances)+16; iter++ {
		changed := false
		for _, inst := range nl.Instances {
			if forced[inst.Output] {
				continue
			}
			c := lib.Get(inst.Cell)
			scratch := ins[:len(inst.Inputs)]
			for i, in := range inst.Inputs {
				scratch[i] = vals[in]
			}
			out := c.Eval(scratch, vals[inst.Output])
			if out != vals[inst.Output] {
				vals[inst.Output] = out
				changed = true
			}
		}
		if !changed {
			return nil
		}
	}
	return fmt.Errorf("techmap: %s: audit evaluation did not settle", nl.Name)
}

// ModuleAreas returns per-module area (the paper's three-module split:
// module 1 = first NAND level + input inverters, module 2 = second
// level, module 0 = peephole/boundary cells).
func ModuleAreas(nl *gates.Netlist, lib *cell.Library) map[int]float64 {
	out := map[int]float64{}
	for _, inst := range nl.Instances {
		out[inst.Module] += lib.Get(inst.Cell).Area
	}
	return out
}

// VerilogModules renders the paper's three-Verilog-module structure:
// one module per logic level plus the hierarchical wrapper (here: a
// comment-separated single file, since the split mapping is already
// reflected in the Module tags).
func VerilogModules(nl *gates.Netlist, lib *cell.Library) string {
	var sb strings.Builder
	sb.WriteString("// level 1 cells: ")
	for _, inst := range nl.Instances {
		if inst.Module == 1 {
			sb.WriteString(inst.Cell + " ")
		}
	}
	sb.WriteString("\n// level 2 cells: ")
	for _, inst := range nl.Instances {
		if inst.Module == 2 {
			sb.WriteString(inst.Cell + " ")
		}
	}
	sb.WriteString("\n")
	sb.WriteString(nl.Verilog(lib))
	return sb.String()
}

package techmap

import (
	"fmt"
	"strings"
	"testing"

	"balsabm/internal/cell"
	"balsabm/internal/gates"
	"balsabm/internal/parallel"
)

// fuzzNetlist grows a random acyclic netlist from fuzz bytes: a few
// primary inputs, then gates whose inputs are drawn from earlier nets
// only. Gates driving forced nets may be stateful (the audit's cut);
// everything else is combinational, so the interpreted fixpoint is
// unique and the compiled single pass must land on it exactly.
func fuzzNetlist(data []byte) (*gates.Netlist, map[int]bool, map[string]bool, bool) {
	if len(data) < 4 {
		return nil, nil, nil, false
	}
	next := func() byte {
		b := data[0]
		data = data[1:]
		return b
	}
	nIn := int(next())%4 + 1
	nGates := int(next())%12 + 1
	if len(data) < 5*nGates+nIn { // sel + up to 3 pins + forced flag per gate
		return nil, nil, nil, false
	}
	cells := []string{"INV", "BUF", "NAND2", "NAND3", "AND2", "OR2", "NOR2", "XOR2", "C2"}
	arity := []int{1, 1, 2, 3, 2, 2, 2, 2, 2}
	nl := gates.New("fuzz")
	var nets []int
	for i := 0; i < nIn; i++ {
		n := nl.Fresh("in")
		nl.Inputs = append(nl.Inputs, n)
		nets = append(nets, n)
	}
	forced := map[int]bool{}
	for g := 0; g < nGates; g++ {
		sel := int(next()) % len(cells)
		out := nl.Fresh("g")
		ins := make([]int, arity[sel])
		for i := range ins {
			ins[i] = nets[int(next())%len(nets)]
		}
		wantForced := next()%4 == 0
		if cells[sel] == "C2" {
			wantForced = true // stateful cells must sit on the cut
		}
		if wantForced {
			forced[out] = true
		}
		nl.AddInstance(cells[sel], ins, out, 0)
		nets = append(nets, out)
	}
	inputs := map[string]bool{}
	for _, n := range nl.Inputs {
		inputs[nl.NetNames[n]] = next()%2 == 1
	}
	for f := range forced {
		// Deterministic forced values derived from the net id, so map
		// iteration order cannot matter.
		inputs[nl.NetNames[f]] = f%2 == 1
	}
	return nl, forced, inputs, true
}

// FuzzCompiledEvalAgreement pits the compiled lane engine against the
// interpreted settle oracle on random netlists: lane 0 of every net
// must match the fixpoint, and every forced net's probe must match the
// interpreted driver re-evaluation.
func FuzzCompiledEvalAgreement(f *testing.F) {
	f.Add([]byte{2, 3, 0, 0, 1, 2, 1, 0, 1, 8, 0, 1, 1, 1, 0, 1, 0, 1})
	f.Add([]byte{4, 12, 3, 4, 5, 6, 7, 8, 0, 1, 2, 3, 4, 5, 6, 7, 8, 0,
		1, 2, 3, 4, 5, 6, 7, 8, 0, 1, 2, 3, 4, 5, 6, 7, 8, 0, 1, 2,
		3, 4, 5, 6, 7, 8, 0, 1, 2, 3, 4, 5, 6, 7})
	lib := cell.AMS035()
	f.Fuzz(func(t *testing.T, data []byte) {
		nl, forced, inputs, ok := fuzzNetlist(data)
		if !ok {
			return
		}
		want, err := settleForced(nl, lib, inputs, forced)
		if err != nil {
			t.Fatalf("oracle did not settle an acyclic netlist: %v", err)
		}
		prog, err := gates.Compile(nl, lib, forced)
		if err != nil {
			t.Fatalf("acyclic netlist with stateful cells on the cut must compile: %v", err)
		}
		ev := prog.NewEval()
		ev.Reset()
		for name, v := range inputs {
			var w uint64
			if v {
				w = ^uint64(0)
			}
			ev.Set(nl.Net(name), w)
		}
		ev.Run()
		for net, name := range nl.NetNames {
			got := ev.Word(net)&1 != 0
			if got != want[net] {
				t.Errorf("net %s: compiled %v, interpreted %v", name, got, want[net])
			}
		}
		// Probes: the compiled Driver must match re-evaluating the
		// driving instance against the settled values, prev = forced.
		drv := nl.DriverIndex()
		for f := range forced {
			w, ok := ev.Driver(f)
			if !ok {
				if drv[f] >= 0 {
					t.Errorf("forced net %s lost its probe", nl.NetNames[f])
				}
				continue
			}
			inst := nl.Instances[drv[f]]
			ins := make([]bool, len(inst.Inputs))
			for i, in := range inst.Inputs {
				ins[i] = want[in]
			}
			if got, ref := w&1 != 0, lib.Get(inst.Cell).Eval(ins, want[f]); got != ref {
				t.Errorf("probe %s: compiled %v, interpreted %v", nl.NetNames[f], got, ref)
			}
		}
	})
}

// A combinational cycle outside the forced cut must reject compilation
// and fall back to the interpreted loop — with the same verdict.
func TestCheckMappedFallsBackOnCycle(t *testing.T) {
	lib := cell.AMS035()
	ctrl := controller(t, "sequencer", sequencerSrc)
	nl, err := MapController(ctrl, SpeedSplit, lib)
	if err != nil {
		t.Fatal(err)
	}
	// Bolt a self-loop onto a fresh net: x = OR2(x, in0). It settles
	// (x follows in0) but a single topological pass cannot order it.
	x := nl.Fresh("loop")
	nl.AddInstance("OR2", []int{x, nl.Inputs[0]}, x, 0)
	forced := map[int]bool{}
	for _, z := range ctrl.Spec.Outputs {
		forced[nl.Net(z)] = true
	}
	for i := 0; i < ctrl.StateBits; i++ {
		forced[nl.Net(fmt.Sprintf("y%d", i))] = true
	}
	if _, err := gates.Compile(nl, lib, forced); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("compile of cyclic netlist: err = %v", err)
	}
	if err := CheckMapped(ctrl, nl, lib); err != nil {
		t.Fatalf("interpreted fallback rejected a correct netlist: %v", err)
	}
}

// tamper flips the cell driving the first primary output so the
// netlist's function differs from the cover everywhere: INV<->BUF for
// single-product roots, NANDk->ANDk otherwise.
func tamper(t *testing.T, nl *gates.Netlist) {
	t.Helper()
	d := nl.Driver(nl.Outputs[0])
	if d < 0 {
		t.Fatal("output has no driver")
	}
	inst := &nl.Instances[d]
	switch {
	case inst.Cell == "INV":
		inst.Cell = "BUF"
	case inst.Cell == "BUF":
		inst.Cell = "INV"
	case strings.HasPrefix(inst.Cell, "NAND"):
		inst.Cell = "AND" + inst.Cell[len("NAND"):]
	default:
		t.Fatalf("unexpected root cell %s", inst.Cell)
	}
}

// Both evaluation paths must detect a functional mismatch, with the
// same error wording.
func TestCheckMappedDetectsTamper(t *testing.T) {
	lib := cell.AMS035()
	ctrl := controller(t, "sequencer", sequencerSrc)

	// Compiled path.
	nl, err := MapController(ctrl, SpeedSplit, lib)
	if err != nil {
		t.Fatal(err)
	}
	tamper(t, nl)
	errCompiled := CheckMapped(ctrl, nl, lib)
	if errCompiled == nil || !strings.Contains(errCompiled.Error(), "differs from cover") {
		t.Fatalf("compiled path missed the tamper: %v", errCompiled)
	}

	// Interpreted path: same tamper plus an uncompilable self-loop.
	nl2, err := MapController(ctrl, SpeedSplit, lib)
	if err != nil {
		t.Fatal(err)
	}
	tamper(t, nl2)
	x := nl2.Fresh("loop")
	nl2.AddInstance("OR2", []int{x, nl2.Inputs[0]}, x, 0)
	errInterp := CheckMapped(ctrl, nl2, lib)
	if errInterp == nil || !strings.Contains(errInterp.Error(), "differs from cover") {
		t.Fatalf("interpreted path missed the tamper: %v", errInterp)
	}
	if errCompiled.Error() != errInterp.Error() {
		t.Fatalf("paths disagree on the first failing point:\n  compiled:    %v\n  interpreted: %v", errCompiled, errInterp)
	}
}

// The verdict — including which sample point an error reports — must
// not depend on the worker count.
func TestCheckMappedOptDeterministicAcrossWorkers(t *testing.T) {
	lib := cell.AMS035()
	ctrl := controller(t, "call", callSrc)
	good, err := MapController(ctrl, SpeedSplit, lib)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := MapController(ctrl, SpeedSplit, lib)
	if err != nil {
		t.Fatal(err)
	}
	tamper(t, bad)
	var msgs []string
	for _, workers := range []int{1, 2, 8} {
		pool := parallel.NewPool(workers)
		if err := CheckMappedOpt(ctrl, good, lib, CheckOptions{Pool: pool}); err != nil {
			t.Fatalf("workers=%d: good netlist rejected: %v", workers, err)
		}
		err := CheckMappedOpt(ctrl, bad, lib, CheckOptions{Pool: pool})
		if err == nil {
			t.Fatalf("workers=%d: tampered netlist passed", workers)
		}
		msgs = append(msgs, err.Error())
	}
	for _, m := range msgs[1:] {
		if m != msgs[0] {
			t.Fatalf("error depends on worker count:\n  %s\n  %s", msgs[0], m)
		}
	}
}

package chmap

import (
	"fmt"
	"testing"

	"balsabm/internal/ch"
	"balsabm/internal/chtobm"
)

// Every template must validate and compile to a well-formed Burst-Mode
// specification, across a range of arities.
func TestTemplatesSynthesizable(t *testing.T) {
	var progs []*ch.Program
	for n := 1; n <= 5; n++ {
		subs := make([]string, n)
		for i := range subs {
			subs[i] = fmt.Sprintf("s%d", i)
		}
		progs = append(progs, Sequencer(fmt.Sprintf("seq%d", n), "a", subs...))
		if n >= 2 {
			progs = append(progs,
				Concur(fmt.Sprintf("con%d", n), "a", subs...),
				Call(fmt.Sprintf("call%d", n), subs, "out"),
				DecisionWait(fmt.Sprintf("dw%d", n), "a", subs, repeatPrefix("o", n)))
		}
		progs = append(progs, Fork(fmt.Sprintf("fork%d", n), "a", "m", n))
	}
	progs = append(progs, Passivator("pass", "x", "y"))
	for _, p := range progs {
		if err := Validate(p); err != nil {
			t.Errorf("%s: %v", p.Name, err)
			continue
		}
		sp, err := chtobm.Compile(p)
		if err != nil {
			t.Errorf("%s: %v", p.Name, err)
			continue
		}
		if err := sp.Check(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func repeatPrefix(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%d", prefix, i)
	}
	return out
}

// The templates reproduce the paper's state counts.
func TestTemplateStateCounts(t *testing.T) {
	cases := []struct {
		p      *ch.Program
		states int
	}{
		{Sequencer("s", "a", "x", "y"), 6},      // Fig 3
		{Call("c", []string{"i", "j"}, "o"), 7}, // Fig 3
		{Passivator("p", "x", "y"), 2},          // Fig 3
		{Concur("k", "a", "x", "y"), 4},
	}
	for _, c := range cases {
		sp, err := chtobm.Compile(c.p)
		if err != nil {
			t.Fatalf("%s: %v", c.p.Name, err)
		}
		if sp.NStates != c.states {
			t.Errorf("%s: %d states, want %d", c.p.Name, sp.NStates, c.states)
		}
	}
}

func TestTemplatePanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("empty sequencer", func() { Sequencer("s", "a") })
	expectPanic("one-way call", func() { Call("c", []string{"x"}, "o") })
	expectPanic("mismatched dw", func() { DecisionWait("d", "a", []string{"x"}, []string{"p", "q"}) })
}

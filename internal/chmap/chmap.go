// Package chmap provides the Balsa-to-CH translation templates: each
// control handshake component kind produced by syntax-directed
// compilation has a canonical CH program describing its interface and
// four-phase behavior (Section 3.4 of the paper gives the sequencer,
// call and passivator examples reproduced here).
package chmap

import (
	"fmt"

	"balsabm/internal/ch"
)

// pp builds a point-to-point channel declaration.
func pp(act ch.Activity, name string) *ch.Chan {
	return &ch.Chan{Kind: ch.PToP, Act: act, Name: name}
}

// seqTree right-nests subchannels under seq.
func seqTree(subs []ch.Expr) ch.Expr {
	e := subs[len(subs)-1]
	for i := len(subs) - 2; i >= 0; i-- {
		e = &ch.Op{Kind: ch.Seq, A: subs[i], B: e}
	}
	return e
}

// Sequencer is the n-way sequencer: activated on act, it completes a
// handshake on each sub channel in order before completing act.
func Sequencer(name, act string, subs ...string) *ch.Program {
	if len(subs) == 0 {
		panic("chmap: sequencer needs sub channels")
	}
	exprs := make([]ch.Expr, len(subs))
	for i, s := range subs {
		exprs[i] = pp(ch.Active, s)
	}
	var body ch.Expr
	if len(exprs) == 1 {
		body = exprs[0]
	} else {
		body = seqTree(exprs)
	}
	return &ch.Program{Name: name, Body: &ch.Rep{Body: &ch.Op{
		Kind: ch.EncEarly, A: pp(ch.Passive, act), B: body,
	}}}
}

// Concur is the n-way parallel composition: all sub handshakes proceed
// in lockstep phases within the activation (enc-middle models the
// C-element synchronization, Section 3.3).
func Concur(name, act string, subs ...string) *ch.Program {
	if len(subs) == 0 {
		panic("chmap: concur needs sub channels")
	}
	body := ch.Expr(pp(ch.Active, subs[len(subs)-1]))
	for i := len(subs) - 2; i >= 0; i-- {
		body = &ch.Op{Kind: ch.EncMiddle, A: pp(ch.Active, subs[i]), B: body}
	}
	return &ch.Program{Name: name, Body: &ch.Rep{Body: &ch.Op{
		Kind: ch.EncEarly, A: pp(ch.Passive, act), B: body,
	}}}
}

// Call is the n-way call: mutually exclusive activations on the ins
// channels each perform one handshake on out (Section 3.4).
func Call(name string, ins []string, out string) *ch.Program {
	if len(ins) < 2 {
		panic("chmap: call needs at least two call sites")
	}
	arm := func(in string) ch.Expr {
		return &ch.Op{Kind: ch.EncEarly, A: pp(ch.Passive, in), B: pp(ch.Active, out)}
	}
	body := arm(ins[len(ins)-1])
	for i := len(ins) - 2; i >= 0; i-- {
		body = &ch.Op{Kind: ch.Mutex, A: arm(ins[i]), B: body}
	}
	return &ch.Program{Name: name, Body: &ch.Rep{Body: body}}
}

// Passivator synchronizes two passive channels (Section 3.4).
func Passivator(name, a, b string) *ch.Program {
	return &ch.Program{Name: name, Body: &ch.Rep{Body: &ch.Op{
		Kind: ch.EncMiddle, A: pp(ch.Passive, a), B: pp(ch.Passive, b),
	}}}
}

// DecisionWait is activated on act; a handshake on exactly one of the
// ins channels triggers the corresponding outs channel (Section 4.1).
func DecisionWait(name, act string, ins, outs []string) *ch.Program {
	if len(ins) != len(outs) || len(ins) < 2 {
		panic("chmap: decision-wait needs matching ins/outs (>=2)")
	}
	arm := func(i int) ch.Expr {
		return &ch.Op{Kind: ch.EncEarly, A: pp(ch.Passive, ins[i]), B: pp(ch.Active, outs[i])}
	}
	body := arm(len(ins) - 1)
	for i := len(ins) - 2; i >= 0; i-- {
		body = &ch.Op{Kind: ch.Mutex, A: arm(i), B: body}
	}
	return &ch.Program{Name: name, Body: &ch.Rep{Body: &ch.Op{
		Kind: ch.EncEarly, A: pp(ch.Passive, act), B: body,
	}}}
}

// Fork broadcasts the activation to n sub channels via a mult-req
// channel (one request wire, n acknowledge wires).
func Fork(name, act, out string, n int) *ch.Program {
	return &ch.Program{Name: name, Body: &ch.Rep{Body: &ch.Op{
		Kind: ch.EncEarly,
		A:    pp(ch.Passive, act),
		B:    &ch.Chan{Kind: ch.MultReq, Act: ch.Active, Name: out, N: n},
	}}}
}

// Validate checks that a template instantiates to a Burst-Mode aware
// program.
func Validate(p *ch.Program) error {
	if err := ch.Validate(p.Body); err != nil {
		return fmt.Errorf("chmap: %s: %w", p.Name, err)
	}
	return nil
}

package sexp

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseAtom(t *testing.T) {
	n, err := Parse("hello")
	if err != nil {
		t.Fatal(err)
	}
	a, ok := n.(Atom)
	if !ok || a.Text != "hello" || a.Quoted {
		t.Fatalf("got %#v", n)
	}
}

func TestParseList(t *testing.T) {
	n, err := Parse("(seq (p-to-p active a) (p-to-p passive b))")
	if err != nil {
		t.Fatal(err)
	}
	l, ok := n.(List)
	if !ok {
		t.Fatalf("not a list: %#v", n)
	}
	if l.Head() != "seq" || l.Len() != 3 {
		t.Fatalf("head=%q len=%d", l.Head(), l.Len())
	}
	inner := l.Items[1].(List)
	if inner.Head() != "p-to-p" {
		t.Fatalf("inner head %q", inner.Head())
	}
}

func TestParseString(t *testing.T) {
	n, err := Parse(`"a \"quoted\"\n string"`)
	if err != nil {
		t.Fatal(err)
	}
	a := n.(Atom)
	if !a.Quoted || a.Text != "a \"quoted\"\n string" {
		t.Fatalf("got %#v", a)
	}
}

func TestParseComments(t *testing.T) {
	n, err := Parse("; leading comment\n(a b ; inline\n c)")
	if err != nil {
		t.Fatal(err)
	}
	if n.(List).Len() != 3 {
		t.Fatalf("got %v", n)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{"", "(", ")", "(a b", `"abc`, "(a) b", `"\q"`} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestParseAll(t *testing.T) {
	ns, err := ParseAll("(a) (b c) atom ; done\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 3 {
		t.Fatalf("got %d nodes", len(ns))
	}
}

func TestParseAllEmpty(t *testing.T) {
	ns, err := ParseAll("  ; only a comment\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 0 {
		t.Fatalf("got %d nodes", len(ns))
	}
}

func TestAtomInt(t *testing.T) {
	if n, err := (Atom{Text: "42"}).Int(); err != nil || n != 42 {
		t.Fatalf("got %d, %v", n, err)
	}
	if _, err := (Atom{Text: "x"}).Int(); err == nil {
		t.Fatal("expected error")
	}
}

func TestPositions(t *testing.T) {
	n, err := Parse("(a\n  bee)")
	if err != nil {
		t.Fatal(err)
	}
	b := n.(List).Items[1].(Atom)
	if b.Line != 2 || b.Col != 3 {
		t.Fatalf("bee at %d:%d", b.Line, b.Col)
	}
}

func TestConstructors(t *testing.T) {
	n := L(Sym("mult-req"), Sym("active"), Sym("c"), Num(2))
	if got := n.String(); got != "(mult-req active c 2)" {
		t.Fatalf("got %q", got)
	}
	if got := Str("hi").String(); got != `"hi"` {
		t.Fatalf("got %q", got)
	}
}

func TestPretty(t *testing.T) {
	n := L(Sym("rep"), L(Sym("enc-early"), L(Sym("p-to-p"), Sym("passive"), Sym("P")),
		L(Sym("seq"), L(Sym("p-to-p"), Sym("active"), Sym("A1")), L(Sym("p-to-p"), Sym("active"), Sym("A2")))))
	out := Pretty(n, 30)
	if !strings.Contains(out, "\n") {
		t.Fatal("expected multi-line output")
	}
	back, err := Parse(out)
	if err != nil {
		t.Fatalf("pretty output unparseable: %v\n%s", err, out)
	}
	if back.String() != n.String() {
		t.Fatalf("round trip mismatch:\n%s\n%s", back, n)
	}
}

// genAtomText restricts generated strings to atom-safe characters.
func genAtomText(s string) string {
	var sb strings.Builder
	for _, r := range s {
		if r > ' ' && r < 127 && r != '(' && r != ')' && r != ';' && r != '"' && r != '\\' {
			sb.WriteRune(r)
		}
	}
	if sb.Len() == 0 {
		return "x"
	}
	return sb.String()
}

func TestQuickRoundTripAtoms(t *testing.T) {
	f := func(raw string) bool {
		text := genAtomText(raw)
		n, err := Parse(text)
		if err != nil {
			return false
		}
		return n.String() == text
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundTripStrings(t *testing.T) {
	f := func(s string) bool {
		// Arbitrary strings must survive quote/parse round trips.
		src := Str(s).String()
		n, err := Parse(src)
		if err != nil {
			return false
		}
		a, ok := n.(Atom)
		return ok && a.Quoted && a.Text == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundTripLists(t *testing.T) {
	f := func(words []string, depth uint8) bool {
		n := buildList(words, int(depth)%4)
		src := n.String()
		back, err := Parse(src)
		if err != nil {
			return false
		}
		return back.String() == src
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func buildList(words []string, depth int) Node {
	items := make([]Node, 0, len(words)+1)
	for _, w := range words {
		items = append(items, Sym(genAtomText(w)))
	}
	if depth > 0 {
		items = append(items, buildList(words, depth-1))
	}
	return List{Items: items}
}

// Package sexp implements a small s-expression reader and printer.
//
// S-expressions are the concrete syntax of the CH control specification
// language (see package ch) and of several on-disk formats used by the
// back-end (.bms burst-mode files, cell library descriptions). The
// dialect is deliberately tiny: atoms are symbols, integers or quoted
// strings; lists are parenthesized; ';' starts a comment to end of line.
package sexp

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Node is an s-expression node: either an Atom or a List.
type Node interface {
	fmt.Stringer
	sexpNode()
}

// Atom is a leaf node. Text holds the literal spelling; for string
// literals Text is the unquoted contents and Quoted is true.
type Atom struct {
	Text   string
	Quoted bool
	Line   int
	Col    int
}

// List is a parenthesized sequence of nodes.
type List struct {
	Items []Node
	Line  int
	Col   int
}

func (Atom) sexpNode() {}
func (List) sexpNode() {}

// String renders the atom in re-readable form. String literals use only
// the escapes the reader understands (\\, \", \n, \t); all other bytes
// pass through verbatim.
func (a Atom) String() string {
	if !a.Quoted {
		return a.Text
	}
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(a.Text); i++ {
		switch c := a.Text[i]; c {
		case '\\', '"':
			sb.WriteByte('\\')
			sb.WriteByte(c)
		case '\n':
			sb.WriteString(`\n`)
		case '\t':
			sb.WriteString(`\t`)
		default:
			sb.WriteByte(c)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}

// String renders the list in re-readable form.
func (l List) String() string {
	parts := make([]string, len(l.Items))
	for i, it := range l.Items {
		parts[i] = it.String()
	}
	return "(" + strings.Join(parts, " ") + ")"
}

// Len returns the number of items in the list.
func (l List) Len() int { return len(l.Items) }

// Head returns the leading symbol of the list, or "" if the list is
// empty or does not start with an atom.
func (l List) Head() string {
	if len(l.Items) == 0 {
		return ""
	}
	if a, ok := l.Items[0].(Atom); ok && !a.Quoted {
		return a.Text
	}
	return ""
}

// Int parses the atom as a decimal integer.
func (a Atom) Int() (int, error) {
	n, err := strconv.Atoi(a.Text)
	if err != nil {
		return 0, fmt.Errorf("sexp: %d:%d: %q is not an integer", a.Line, a.Col, a.Text)
	}
	return n, nil
}

// A SyntaxError reports a malformed s-expression with its position.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sexp: %d:%d: %s", e.Line, e.Col, e.Msg)
}

type scanner struct {
	src  string
	pos  int
	line int
	col  int
}

func (s *scanner) errorf(format string, args ...any) *SyntaxError {
	return &SyntaxError{Line: s.line, Col: s.col, Msg: fmt.Sprintf(format, args...)}
}

func (s *scanner) peek() (byte, bool) {
	if s.pos >= len(s.src) {
		return 0, false
	}
	return s.src[s.pos], true
}

func (s *scanner) advance() byte {
	c := s.src[s.pos]
	s.pos++
	if c == '\n' {
		s.line++
		s.col = 1
	} else {
		s.col++
	}
	return c
}

func (s *scanner) skipSpace() {
	for {
		c, ok := s.peek()
		if !ok {
			return
		}
		switch {
		case c == ';':
			for {
				c, ok := s.peek()
				if !ok || c == '\n' {
					break
				}
				s.advance()
			}
		case unicode.IsSpace(rune(c)):
			s.advance()
		default:
			return
		}
	}
}

func isAtomChar(c byte) bool {
	switch c {
	case '(', ')', ';', '"':
		return false
	}
	return !unicode.IsSpace(rune(c))
}

func (s *scanner) readNode() (Node, error) {
	s.skipSpace()
	c, ok := s.peek()
	if !ok {
		return nil, s.errorf("unexpected end of input")
	}
	switch {
	case c == '(':
		line, col := s.line, s.col
		s.advance()
		var items []Node
		for {
			s.skipSpace()
			c, ok := s.peek()
			if !ok {
				return nil, s.errorf("unterminated list opened at %d:%d", line, col)
			}
			if c == ')' {
				s.advance()
				return List{Items: items, Line: line, Col: col}, nil
			}
			n, err := s.readNode()
			if err != nil {
				return nil, err
			}
			items = append(items, n)
		}
	case c == ')':
		return nil, s.errorf("unexpected ')'")
	case c == '"':
		line, col := s.line, s.col
		s.advance()
		var sb strings.Builder
		for {
			c, ok := s.peek()
			if !ok {
				return nil, s.errorf("unterminated string opened at %d:%d", line, col)
			}
			s.advance()
			if c == '"' {
				return Atom{Text: sb.String(), Quoted: true, Line: line, Col: col}, nil
			}
			if c == '\\' {
				e, ok := s.peek()
				if !ok {
					return nil, s.errorf("unterminated escape in string")
				}
				s.advance()
				switch e {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '\\', '"':
					sb.WriteByte(e)
				default:
					return nil, s.errorf("unknown escape \\%c", e)
				}
				continue
			}
			sb.WriteByte(c)
		}
	default:
		line, col := s.line, s.col
		var sb strings.Builder
		for {
			c, ok := s.peek()
			if !ok || !isAtomChar(c) {
				break
			}
			sb.WriteByte(s.advance())
		}
		if sb.Len() == 0 {
			return nil, s.errorf("unexpected character %q", c)
		}
		return Atom{Text: sb.String(), Line: line, Col: col}, nil
	}
}

// Parse reads a single s-expression from src, requiring that nothing but
// whitespace and comments follow it.
func Parse(src string) (Node, error) {
	s := &scanner{src: src, line: 1, col: 1}
	n, err := s.readNode()
	if err != nil {
		return nil, err
	}
	s.skipSpace()
	if s.pos < len(s.src) {
		return nil, s.errorf("trailing input after expression")
	}
	return n, nil
}

// ParseAll reads every s-expression in src.
func ParseAll(src string) ([]Node, error) {
	s := &scanner{src: src, line: 1, col: 1}
	var nodes []Node
	for {
		s.skipSpace()
		if s.pos >= len(s.src) {
			return nodes, nil
		}
		n, err := s.readNode()
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, n)
	}
}

// Sym constructs an unquoted atom.
func Sym(text string) Atom { return Atom{Text: text} }

// Str constructs a quoted string atom.
func Str(text string) Atom { return Atom{Text: text, Quoted: true} }

// Num constructs an integer atom.
func Num(n int) Atom { return Atom{Text: strconv.Itoa(n)} }

// L constructs a list from the given nodes.
func L(items ...Node) List { return List{Items: items} }

// Pretty renders a node with indentation: lists whose flat rendering
// exceeds width are broken one item per line.
func Pretty(n Node, width int) string {
	var sb strings.Builder
	pretty(&sb, n, 0, width)
	return sb.String()
}

func pretty(sb *strings.Builder, n Node, indent, width int) {
	flat := n.String()
	if len(flat)+indent <= width {
		sb.WriteString(flat)
		return
	}
	l, ok := n.(List)
	if !ok || len(l.Items) == 0 {
		sb.WriteString(flat)
		return
	}
	sb.WriteByte('(')
	pretty(sb, l.Items[0], indent+1, width)
	for _, it := range l.Items[1:] {
		sb.WriteByte('\n')
		sb.WriteString(strings.Repeat(" ", indent+2))
		pretty(sb, it, indent+2, width)
	}
	sb.WriteByte(')')
}

package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLayoutVersionWrittenOnCreate(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	data, err := os.ReadFile(filepath.Join(dir, "layout-version"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != LayoutVersion+"\n" {
		t.Fatalf("layout-version = %q, want %q", data, LayoutVersion+"\n")
	}
	// Reopening the same directory accepts its own marker.
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2.Close()
}

func TestLayoutVersionMismatchRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "layout-version"), []byte("999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(dir, 0)
	if err == nil {
		t.Fatal("Open accepted a future layout version")
	}
	if !strings.Contains(err.Error(), "layout version") || !strings.Contains(err.Error(), "refusing to open") {
		t.Fatalf("mismatch error is not loud enough: %v", err)
	}
}

// A v1 directory (created before the marker existed: subdirectories
// but no layout-version file) upgrades in place — the v2 additions
// are purely additive — and keeps its artifacts readable.
func TestLayoutV1DirUpgradesInPlace(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutResult("old-key", []byte("v1 era blob\n")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Strip the marker to simulate a pre-versioning directory.
	if err := os.Remove(filepath.Join(dir, "layout-version")); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatalf("v1 directory refused: %v", err)
	}
	defer s2.Close()
	if got, err := s2.GetResult("old-key"); err != nil || string(got) != "v1 era blob\n" {
		t.Fatalf("v1 artifact unreadable after upgrade: %q err %v", got, err)
	}
	if data, err := os.ReadFile(filepath.Join(dir, "layout-version")); err != nil || string(data) != LayoutVersion+"\n" {
		t.Fatalf("upgrade did not stamp the marker: %q err %v", data, err)
	}
}

func TestControllerBlobRoundTripAndStats(t *testing.T) {
	s := openTemp(t, 0)
	if _, ok := s.GetController("ctl|missing"); ok {
		t.Fatal("miss reported as hit")
	}
	blob := []byte(`{"wires":["a_r"],"result":{},"netlist":{}}`)
	s.PutController("ctl|k1", blob)
	got, ok := s.GetController("ctl|k1")
	if !ok || !bytes.Equal(got, blob) {
		t.Fatalf("round trip: %q/%v", got, ok)
	}
	// Controller refs share the artifact blob pool with job results:
	// an identical payload dedupes to one artifact.
	if _, err := s.PutResult("job-key", blob); err != nil {
		t.Fatal(err)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Artifacts != 1 || st.Refs != 1 || st.ControllerRefs != 1 {
		t.Fatalf("stats = %+v, want 1 artifact, 1 ref, 1 controller ref", st)
	}
}

// Controller refs heal like result refs: a tampered blob reads as a
// miss (not an error), and a re-put restores service.
func TestControllerCorruptionHealsToMiss(t *testing.T) {
	s := openTemp(t, 0)
	blob := []byte("controller payload\n")
	s.PutController("ctl|k", blob)
	if err := os.WriteFile(s.blobPath(contentHash(blob)), []byte("tampered!!!!!!!!!!\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetController("ctl|k"); ok {
		t.Fatal("tampered controller blob served as a hit")
	}
	s.PutController("ctl|k", blob)
	if got, ok := s.GetController("ctl|k"); !ok || !bytes.Equal(got, blob) {
		t.Fatalf("after re-put: %q/%v", got, ok)
	}
}

// GC sweeps dangling controller refs alongside result refs when their
// shared blob is evicted.
func TestGCSweepsDanglingControllerRefs(t *testing.T) {
	s := openTemp(t, 0)
	blob := []byte("shared payload between namespaces\n")
	if _, err := s.PutResult("job", blob); err != nil {
		t.Fatal(err)
	}
	s.PutController("ctl", blob)
	s.maxBytes = 1 // evict everything
	res, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if res.Evicted != 1 {
		t.Fatalf("evicted %d blobs, want 1", res.Evicted)
	}
	if res.DanglingRefs != 2 {
		t.Fatalf("swept %d dangling refs, want 2 (refs + ctlrefs)", res.DanglingRefs)
	}
	if _, ok := s.GetController("ctl"); ok {
		t.Fatal("evicted controller key still hits")
	}
	st, _ := s.Stats()
	if st.ControllerRefs != 0 {
		t.Fatalf("controller refs = %d after GC, want 0", st.ControllerRefs)
	}
}

// Package store is balsabmd's durable side: a content-addressed
// artifact cache plus a journaled job log, both plain files under one
// data directory, standard library only. It is what lets a restarted
// daemon start warm — completed synthesis results survive on disk,
// keyed by the same canonical-form sha256 keys the in-memory dedup
// cache uses — and lets interrupted jobs resume from their last
// completed pipeline stage instead of starting over.
//
// Layout under the data directory:
//
//	layout-version               the store format number (one line);
//	                             written on create, checked on Open so
//	                             a future format change fails loudly
//	                             instead of silently mis-reading
//	artifacts/<hh>/<sha256>      result blobs, named by the sha256 of
//	                             their content (hh = first two hex
//	                             digits); verified on read by re-hashing
//	refs/<sha256(key)>           one line: the content hash a canonical
//	                             job key resolves to
//	ctlrefs/<sha256(key)>        same indirection at controller grain:
//	                             the content hash a canonical controller
//	                             subtree key (mode, audit flag, subtree
//	                             sha256) resolves to — the durable tier
//	                             behind incremental resynthesis
//	checkpoints/<sha256(key)>/<stage>
//	                             per-stage checkpoint payloads of
//	                             in-flight jobs, deleted on completion
//	journal.jsonl                append-only, fsync'd job log (one JSON
//	                             record per line), compacted on open
//
// Every write is atomic (temp file + rename, fsync before rename), so
// a crash mid-write never corrupts an existing entry; at worst it
// leaves a stray temp file, swept on open. Blobs are exactly the
// api.Encode bytes of a job result, which is what makes a disk-served
// result byte-identical to a freshly computed one.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io/fs"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Store is one open data directory. All methods are safe for
// concurrent use.
type Store struct {
	dir      string
	maxBytes int64 // artifact size bound for GC; 0 = unbounded

	mu       sync.Mutex
	journal  *journal
	jobs     []JobRecord // replayed from the journal at Open, in submission order
	blobSize int64       // running total of artifact bytes

	corrupt int64 // artifacts that failed read-back verification
}

// LayoutVersion is the on-disk format number the package reads and
// writes. Version 2 added the controller-grain ctlrefs/ namespace —
// additive over version 1, so v1 directories (which predate the
// marker file) upgrade in place on Open.
const LayoutVersion = "2"

// Open opens (creating if needed) the store rooted at dir, replays and
// compacts its journal, sweeps stray temp files and runs the size-bound
// GC. maxBytes bounds the artifact cache (0 = unbounded). A data
// directory written by an incompatible store layout is refused.
func Open(dir string, maxBytes int64) (*Store, error) {
	if err := checkLayout(dir); err != nil {
		return nil, err
	}
	for _, sub := range []string{"artifacts", "refs", "ctlrefs", "checkpoints"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	s := &Store{dir: dir, maxBytes: maxBytes}
	s.sweepTemp()
	j, jobs, err := openJournal(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		return nil, err
	}
	s.journal, s.jobs = j, jobs
	size, err := s.artifactBytes()
	if err != nil {
		j.close()
		return nil, err
	}
	s.blobSize = size
	if _, err := s.GC(); err != nil {
		j.close()
		return nil, err
	}
	return s, nil
}

// Close fsyncs and closes the journal. Artifacts need no teardown.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return nil
	}
	err := s.journal.close()
	s.journal = nil
	return err
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Jobs returns the jobs replayed from the journal at Open, in
// submission order. The slice is the store's own; callers must not
// modify it.
func (s *Store) Jobs() []JobRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs
}

// keyHash addresses refs and checkpoint directories: the sha256 of the
// full canonical job key (which itself embeds the canonical-form
// design digest).
func keyHash(key string) string {
	h := sha256.Sum256([]byte(key))
	return hex.EncodeToString(h[:])
}

func contentHash(blob []byte) string {
	h := sha256.Sum256(blob)
	return hex.EncodeToString(h[:])
}

// ContentHash returns the hex sha256 a blob would be stored under —
// the journal records it alongside completions so a replayed job can
// name its artifact.
func ContentHash(blob []byte) string { return contentHash(blob) }

// SetMaxBytes adjusts the artifact size bound used by subsequent GC
// passes (0 = unbounded).
func (s *Store) SetMaxBytes(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maxBytes = n
}

func (s *Store) blobPath(ch string) string {
	return filepath.Join(s.dir, "artifacts", ch[:2], ch)
}

// checkLayout enforces the layout-version marker: written when absent
// (new directories, and v1 directories from before the marker existed
// — the v2 layout is additive over v1), refused when it names a
// version this package does not read.
func checkLayout(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(dir, "layout-version")
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		if err := writeAtomic(path, []byte(LayoutVersion+"\n")); err != nil {
			return fmt.Errorf("store: writing layout-version: %w", err)
		}
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: reading layout-version: %w", err)
	}
	if got := strings.TrimSpace(string(data)); got != LayoutVersion {
		return fmt.Errorf("store: %s: layout version %q, this build reads %q — refusing to open", dir, got, LayoutVersion)
	}
	return nil
}

func (s *Store) refPath(key string) string {
	return filepath.Join(s.dir, "refs", keyHash(key))
}

// ctlRefPath addresses the controller-grain ref namespace.
func (s *Store) ctlRefPath(key string) string {
	return filepath.Join(s.dir, "ctlrefs", keyHash(key))
}

// writeAtomic writes data to path via a temp file in the same
// directory, fsyncs it, and renames it into place. Concurrent writers
// of the same path both succeed; last rename wins with a complete
// file either way.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// putBlob lands a blob content-addressed in artifacts/ and points the
// given ref file at it; identical blobs under different refs share one
// artifact. Exceeding the size bound triggers GC.
func (s *Store) putBlob(refPath string, blob []byte) (string, error) {
	ch := contentHash(blob)
	path := s.blobPath(ch)
	if _, err := os.Stat(path); err != nil {
		if err := writeAtomic(path, blob); err != nil {
			return "", fmt.Errorf("store: writing artifact: %w", err)
		}
		s.mu.Lock()
		s.blobSize += int64(len(blob))
		over := s.maxBytes > 0 && s.blobSize > s.maxBytes
		s.mu.Unlock()
		if over {
			if _, err := s.GC(); err != nil {
				return "", err
			}
		}
	}
	if err := writeAtomic(refPath, []byte(ch+"\n")); err != nil {
		return "", fmt.Errorf("store: writing ref: %w", err)
	}
	return ch, nil
}

// getBlob resolves a ref file to its artifact. A missing ref returns
// (nil, nil). A present blob is re-hashed before it is returned; on a
// mismatch the corrupt entry is removed (so the next run recomputes
// it) and an error is returned.
func (s *Store) getBlob(refPath string) ([]byte, error) {
	ref, err := os.ReadFile(refPath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: reading ref: %w", err)
	}
	ch := strings.TrimSpace(string(ref))
	blob, err := os.ReadFile(s.blobPath(ch))
	if err != nil {
		if os.IsNotExist(err) {
			// Blob evicted by GC (or lost): drop the dangling ref.
			os.Remove(refPath)
			return nil, nil
		}
		return nil, fmt.Errorf("store: reading artifact: %w", err)
	}
	if got := contentHash(blob); got != ch {
		s.mu.Lock()
		s.corrupt++
		s.mu.Unlock()
		os.Remove(s.blobPath(ch))
		os.Remove(refPath)
		return nil, fmt.Errorf("store: artifact %s corrupt: content hashes to %s", ch, got)
	}
	return blob, nil
}

// PutResult stores one completed job result blob under its canonical
// key and returns the content hash. The blob lands content-addressed
// in artifacts/ and the key's ref points at it; identical results
// under different keys share one blob. Exceeding the size bound
// triggers GC.
func (s *Store) PutResult(key string, blob []byte) (string, error) {
	return s.putBlob(s.refPath(key), blob)
}

// GetResult looks a canonical key up in the artifact cache. A missing
// key returns (nil, nil); see getBlob for read-back verification.
func (s *Store) GetResult(key string) ([]byte, error) {
	return s.getBlob(s.refPath(key))
}

// PutController stores one synthesized controller blob under its
// canonical subtree key (see flow.ControllerKey). Best-effort, like a
// checkpoint save: a failed write costs one resynthesis on the next
// run, never correctness — so errors are swallowed and the signature
// satisfies flow.ControllerCache directly.
func (s *Store) PutController(key string, blob []byte) {
	_, _ = s.putBlob(s.ctlRefPath(key), blob)
}

// GetController looks a canonical controller subtree key up in the
// artifact cache. Read errors (including a corrupt blob, which getBlob
// removes for self-healing) report as a miss; the signature satisfies
// flow.ControllerCache directly.
func (s *Store) GetController(key string) ([]byte, bool) {
	blob, err := s.getBlob(s.ctlRefPath(key))
	if err != nil || blob == nil {
		return nil, false
	}
	return blob, true
}

// blobInfo is one artifact on disk, as seen by GC and Verify.
type blobInfo struct {
	hash  string
	size  int64
	mtime int64 // unix nanos; GC eviction order
}

// listBlobs walks artifacts/ in deterministic (hash) order.
func (s *Store) listBlobs() ([]blobInfo, error) {
	var out []blobInfo
	root := filepath.Join(s.dir, "artifacts")
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		out = append(out, blobInfo{
			hash:  d.Name(),
			size:  info.Size(),
			mtime: info.ModTime().UnixNano(),
		})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].hash < out[k].hash })
	return out, nil
}

func (s *Store) artifactBytes() (int64, error) {
	blobs, err := s.listBlobs()
	if err != nil {
		return 0, err
	}
	var total int64
	for _, b := range blobs {
		total += b.size
	}
	return total, nil
}

// GCResult reports one garbage-collection pass.
type GCResult struct {
	Evicted      int   `json:"evicted"`      // blobs removed
	FreedBytes   int64 `json:"freedBytes"`   // bytes reclaimed
	DanglingRefs int   `json:"danglingRefs"` // refs to missing blobs removed
	LiveBlobs    int   `json:"liveBlobs"`
	LiveBytes    int64 `json:"liveBytes"`
}

// GC enforces the artifact size bound: oldest blobs (by mtime, hash as
// a deterministic tie-break) are evicted until the total is within
// maxBytes, then refs pointing at missing blobs are dropped. With no
// bound it only sweeps dangling refs.
func (s *Store) GC() (GCResult, error) {
	var res GCResult
	s.mu.Lock()
	maxBytes := s.maxBytes
	s.mu.Unlock()
	blobs, err := s.listBlobs()
	if err != nil {
		return res, err
	}
	var total int64
	for _, b := range blobs {
		total += b.size
	}
	if maxBytes > 0 && total > maxBytes {
		order := append([]blobInfo(nil), blobs...)
		sort.Slice(order, func(i, k int) bool {
			if order[i].mtime != order[k].mtime {
				return order[i].mtime < order[k].mtime
			}
			return order[i].hash < order[k].hash
		})
		for _, b := range order {
			if total <= maxBytes {
				break
			}
			if err := os.Remove(s.blobPath(b.hash)); err != nil && !os.IsNotExist(err) {
				return res, fmt.Errorf("store: evicting %s: %w", b.hash, err)
			}
			total -= b.size
			res.Evicted++
			res.FreedBytes += b.size
		}
	}
	live := map[string]bool{}
	blobs, err = s.listBlobs()
	if err != nil {
		return res, err
	}
	for _, b := range blobs {
		live[b.hash] = true
		res.LiveBlobs++
		res.LiveBytes += b.size
	}
	for _, ns := range []string{"refs", "ctlrefs"} {
		refs, err := os.ReadDir(filepath.Join(s.dir, ns))
		if err != nil {
			return res, fmt.Errorf("store: %w", err)
		}
		for _, e := range refs {
			path := filepath.Join(s.dir, ns, e.Name())
			data, err := os.ReadFile(path)
			if err != nil {
				continue
			}
			if !live[strings.TrimSpace(string(data))] {
				os.Remove(path)
				res.DanglingRefs++
			}
		}
	}
	s.mu.Lock()
	s.blobSize = res.LiveBytes
	s.mu.Unlock()
	return res, nil
}

// VerifyResult reports an integrity pass over every artifact.
type VerifyResult struct {
	Checked int      `json:"checked"`
	Corrupt []string `json:"corrupt,omitempty"` // content hashes that failed re-hashing
}

// Verify re-hashes every artifact against its file name. Corrupt blobs
// are reported, not removed — `balsabm cache verify` surfaces them and
// GetResult self-heals on the next read.
func (s *Store) Verify() (VerifyResult, error) {
	var res VerifyResult
	blobs, err := s.listBlobs()
	if err != nil {
		return res, err
	}
	for _, b := range blobs {
		data, err := os.ReadFile(s.blobPath(b.hash))
		if err != nil {
			return res, fmt.Errorf("store: %w", err)
		}
		res.Checked++
		if contentHash(data) != b.hash {
			res.Corrupt = append(res.Corrupt, b.hash)
		}
	}
	return res, nil
}

// Stats summarizes the store for `balsabm cache stats` and /metrics.
type Stats struct {
	Artifacts      int   `json:"artifacts"`
	ArtifactBytes  int64 `json:"artifactBytes"`
	Refs           int   `json:"refs"`
	ControllerRefs int   `json:"controllerRefs"` // controller-grain refs (incremental resynthesis)
	Jobs           int   `json:"jobs"`           // journal jobs at Open
	Interrupted    int   `json:"interrupted"`    // of those, non-terminal (resumable)
	Checkpoints    int   `json:"checkpoints"`    // stage payloads currently on disk
	Corrupt        int64 `json:"corrupt"`        // read-back verification failures this session
}

// Stats walks the store and summarizes it.
func (s *Store) Stats() (Stats, error) {
	var st Stats
	blobs, err := s.listBlobs()
	if err != nil {
		return st, err
	}
	for _, b := range blobs {
		st.Artifacts++
		st.ArtifactBytes += b.size
	}
	refs, err := os.ReadDir(filepath.Join(s.dir, "refs"))
	if err != nil {
		return st, fmt.Errorf("store: %w", err)
	}
	st.Refs = len(refs)
	ctlrefs, err := os.ReadDir(filepath.Join(s.dir, "ctlrefs"))
	if err != nil {
		return st, fmt.Errorf("store: %w", err)
	}
	st.ControllerRefs = len(ctlrefs)
	err = filepath.WalkDir(filepath.Join(s.dir, "checkpoints"), func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			st.Checkpoints++
		}
		return nil
	})
	if err != nil {
		return st, fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	st.Jobs = len(s.jobs)
	for _, j := range s.jobs {
		if !j.Terminal() {
			st.Interrupted++
		}
	}
	st.Corrupt = s.corrupt
	s.mu.Unlock()
	return st, nil
}

// sweepTemp removes temp files left by writes interrupted before their
// rename.
func (s *Store) sweepTemp() {
	filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.Contains(d.Name(), ".tmp") {
			os.Remove(path)
		}
		return nil
	})
}

// ---------------------------------------------------------------------
// Checkpoints: per-stage payloads of in-flight jobs, keyed like
// artifacts by the canonical job key.

// Checkpoints returns the checkpoint directory for one canonical job
// key. It satisfies the flow's CheckpointSink interface, so it can be
// handed to a run as Options.Checkpoint directly.
func (s *Store) Checkpoints(key string) *CheckpointDir {
	return &CheckpointDir{dir: filepath.Join(s.dir, "checkpoints", keyHash(key))}
}

// DeleteCheckpoints removes every stage payload for a key — called
// when a job completes and its result is in the artifact cache, which
// supersedes any partial state.
func (s *Store) DeleteCheckpoints(key string) error {
	return os.RemoveAll(filepath.Join(s.dir, "checkpoints", keyHash(key)))
}

// CheckpointDir stores stage payloads for one job key. Saves are
// atomic and best-effort: a failed save costs re-computation after a
// restart, never correctness, so it does not fail the run.
type CheckpointDir struct {
	dir string
}

// stageFile maps a stage name (which may contain '/') to a flat,
// reversible file name.
func stageFile(stage string) string { return url.PathEscape(stage) }

// Save persists one completed stage's payload.
func (c *CheckpointDir) Save(stage string, data []byte) {
	writeAtomic(filepath.Join(c.dir, stageFile(stage)), data)
}

// Load returns a previously saved stage payload.
func (c *CheckpointDir) Load(stage string) ([]byte, bool) {
	data, err := os.ReadFile(filepath.Join(c.dir, stageFile(stage)))
	if err != nil {
		return nil, false
	}
	return data, true
}

// Stages lists the saved stage names, sorted.
func (c *CheckpointDir) Stages() []string {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name, err := url.PathUnescape(e.Name())
		if err != nil {
			continue
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openTemp(t *testing.T, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openTemp(t, 0)
	blob := []byte("{\n  \"kind\": \"design\"\n}\n")
	ch, err := s.PutResult("design|ssem|k", blob)
	if err != nil {
		t.Fatal(err)
	}
	if ch != contentHash(blob) {
		t.Fatalf("content hash %s, want %s", ch, contentHash(blob))
	}
	got, err := s.GetResult("design|ssem|k")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatalf("round trip altered blob: %q != %q", got, blob)
	}
	if got, err := s.GetResult("no-such-key"); err != nil || got != nil {
		t.Fatalf("missing key: got %q err %v, want nil/nil", got, err)
	}
}

func TestSharedBlobAcrossKeys(t *testing.T) {
	s := openTemp(t, 0)
	blob := []byte("same result\n")
	h1, err := s.PutResult("key-a", blob)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := s.PutResult("key-b", blob)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("identical blobs got different hashes %s / %s", h1, h2)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Artifacts != 1 || st.Refs != 2 {
		t.Fatalf("stats artifacts=%d refs=%d, want 1/2", st.Artifacts, st.Refs)
	}
}

func TestCorruptionDetectedAndHealed(t *testing.T) {
	s := openTemp(t, 0)
	blob := []byte("precious bytes\n")
	ch, err := s.PutResult("k", blob)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte on disk behind the store's back.
	if err := os.WriteFile(s.blobPath(ch), []byte("tampered bytes!\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetResult("k"); err == nil {
		t.Fatal("GetResult returned tampered blob without error")
	}
	// Self-healed: the corrupt entry is gone, the key reads as a miss.
	got, err := s.GetResult("k")
	if err != nil || got != nil {
		t.Fatalf("after corruption: got %q err %v, want miss", got, err)
	}
	st, _ := s.Stats()
	if st.Corrupt != 1 {
		t.Fatalf("corrupt counter = %d, want 1", st.Corrupt)
	}
	// And a fresh Put restores service.
	if _, err := s.PutResult("k", blob); err != nil {
		t.Fatal(err)
	}
	if got, err := s.GetResult("k"); err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("after re-put: got %q err %v", got, err)
	}
}

func TestGCSizeBoundEvictsOldestFirst(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0) // unbounded while seeding
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Three 100-byte blobs with strictly increasing mtimes.
	var hashes []string
	for i := 0; i < 3; i++ {
		blob := append(bytes.Repeat([]byte{byte('a' + i)}, 99), '\n')
		h, err := s.PutResult(fmt.Sprintf("key-%d", i), blob)
		if err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, h)
		mt := time.Unix(1000+int64(i), 0)
		if err := os.Chtimes(s.blobPath(h), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	s.maxBytes = 250 // room for two blobs
	res, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if res.Evicted != 1 || res.FreedBytes != 100 {
		t.Fatalf("GC evicted=%d freed=%d, want 1/100", res.Evicted, res.FreedBytes)
	}
	if res.DanglingRefs != 1 {
		t.Fatalf("GC dangling refs = %d, want 1", res.DanglingRefs)
	}
	// The oldest blob went; the newer two survive.
	if _, err := os.Stat(s.blobPath(hashes[0])); !os.IsNotExist(err) {
		t.Fatal("oldest blob survived GC")
	}
	for _, h := range hashes[1:] {
		if _, err := os.Stat(s.blobPath(h)); err != nil {
			t.Fatalf("newer blob %s evicted: %v", h, err)
		}
	}
	// The evicted key reads as a clean miss.
	if got, err := s.GetResult("key-0"); err != nil || got != nil {
		t.Fatalf("evicted key: got %q err %v, want miss", got, err)
	}
}

func TestVerifyReportsCorruption(t *testing.T) {
	s := openTemp(t, 0)
	ch, err := s.PutResult("k", []byte("good\n"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Verify()
	if err != nil || res.Checked != 1 || len(res.Corrupt) != 0 {
		t.Fatalf("clean verify: %+v err %v", res, err)
	}
	if err := os.WriteFile(s.blobPath(ch), []byte("bad!\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err = s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Corrupt) != 1 || res.Corrupt[0] != ch {
		t.Fatalf("verify corrupt = %v, want [%s]", res.Corrupt, ch)
	}
}

func TestCheckpointDir(t *testing.T) {
	s := openTemp(t, 0)
	ck := s.Checkpoints("job-key")
	if _, ok := ck.Load("ssem/unopt"); ok {
		t.Fatal("load of unsaved stage succeeded")
	}
	ck.Save("ssem/unopt", []byte("arm payload"))
	ck.Save("ssem/cluster", []byte("cluster payload"))
	got, ok := ck.Load("ssem/unopt")
	if !ok || string(got) != "arm payload" {
		t.Fatalf("load = %q/%v", got, ok)
	}
	stages := ck.Stages()
	if len(stages) != 2 || stages[0] != "ssem/cluster" || stages[1] != "ssem/unopt" {
		t.Fatalf("stages = %v", stages)
	}
	// A different key sees nothing.
	if got := s.Checkpoints("other-key").Stages(); len(got) != 0 {
		t.Fatalf("foreign key sees stages %v", got)
	}
	if err := s.DeleteCheckpoints("job-key"); err != nil {
		t.Fatal(err)
	}
	if got := s.Checkpoints("job-key").Stages(); len(got) != 0 {
		t.Fatalf("stages survive deletion: %v", got)
	}
}

func TestJournalReplayAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	req := []byte(`{"kind":"design","design":"ssem"}`)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.AppendSubmit("j00001", "key-1", "design", req, "t1"))
	must(s.AppendStart("j00001", "t2"))
	must(s.AppendDone("j00001", "blobhash", "t3"))
	must(s.AppendSubmit("j00002", "key-2", "design", req, "t4"))
	must(s.AppendStart("j00002", "t5"))
	must(s.AppendCheckpoint("j00002", "key-2", "ssem/cluster"))
	must(s.AppendCheckpoint("j00002", "key-2", "ssem/unopt"))
	must(s.AppendSubmit("j00003", "key-3", "synth", req, "t6"))
	must(s.AppendCancel("j00003", "t7"))
	s.Close() // clean close; j00002 deliberately left non-terminal

	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	jobs := s2.Jobs()
	if len(jobs) != 3 {
		t.Fatalf("replayed %d jobs, want 3", len(jobs))
	}
	j1, j2, j3 := jobs[0], jobs[1], jobs[2]
	if j1.ID != "j00001" || j1.State != "done" || j1.Blob != "blobhash" || j1.Created != "t1" || j1.Finished != "t3" {
		t.Fatalf("job 1 replayed as %+v", j1)
	}
	if j2.ID != "j00002" || j2.Terminal() || j2.Started != "t5" {
		t.Fatalf("job 2 replayed as %+v", j2)
	}
	if len(j2.Checkpoints) != 2 || j2.Checkpoints[0] != "ssem/cluster" || j2.Checkpoints[1] != "ssem/unopt" {
		t.Fatalf("job 2 checkpoints = %v", j2.Checkpoints)
	}
	if !bytes.Equal(j2.Request, req) {
		t.Fatalf("job 2 request = %s", j2.Request)
	}
	if j3.State != "canceled" {
		t.Fatalf("job 3 replayed as %+v", j3)
	}
}

func TestJournalToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendSubmit("j00001", "k", "design", []byte(`{}`), "t1"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Simulate a crash mid-append: garbage with no trailing newline.
	f, err := os.OpenFile(filepath.Join(dir, "journal.jsonl"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"done","id":"j000`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	jobs := s2.Jobs()
	if len(jobs) != 1 || jobs[0].Terminal() {
		t.Fatalf("replay after torn tail: %+v", jobs)
	}
	// Compaction removed the torn line: a third open sees the same.
	data, err := os.ReadFile(s2.JournalPath())
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte(`j000"`)) || !bytes.HasSuffix(data, []byte("\n")) {
		t.Fatalf("compacted journal still torn:\n%s", data)
	}
}

func TestJournalCompactionDropsDeadRecords(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.AppendSubmit("j00001", "k", "design", []byte(`{}`), "t1"))
	must(s.AppendStart("j00001", "t2"))
	for i := 0; i < 10; i++ {
		must(s.AppendCheckpoint("j00001", "k", fmt.Sprintf("stage-%d", i)))
	}
	must(s.AppendDone("j00001", "h", "t3"))
	s.Close()

	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	data, err := os.ReadFile(s2.JournalPath())
	if err != nil {
		t.Fatal(err)
	}
	// Terminal job: submit + done only; checkpoints and start are dead.
	if n := bytes.Count(data, []byte("\n")); n != 2 {
		t.Fatalf("compacted journal has %d records, want 2:\n%s", n, data)
	}
	if bytes.Contains(data, []byte("checkpoint")) {
		t.Fatalf("compacted journal keeps dead checkpoints:\n%s", data)
	}
}

func TestSweepTempFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "artifacts", "ab"), 0o755); err != nil {
		t.Fatal(err)
	}
	stray := filepath.Join(dir, "artifacts", "ab", "abc123.tmp42")
	if err := os.WriteFile(stray, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatal("stray temp file survived Open")
	}
}

package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Journal record operations. One JSON record per line; the file is
// append-only and fsync'd per append, so the log survives crashes (a
// torn final line — a crash mid-append — is detected and dropped on
// replay).
const (
	opSubmit     = "submit"     // job accepted: id, key, kind, request body, created
	opStart      = "start"      // job picked by an executor: id, started
	opCheckpoint = "checkpoint" // pipeline stage persisted: id, key, stage
	opDone       = "done"       // job finished: id, artifact content hash, finished
	opFail       = "fail"       // job failed: id, error, finished
	opCancel     = "cancel"     // job cancelled by a user: id, finished
)

// record is one journal line.
type record struct {
	Op    string          `json:"op"`
	ID    string          `json:"id,omitempty"`
	Key   string          `json:"key,omitempty"`
	Kind  string          `json:"kind,omitempty"`
	Req   json.RawMessage `json:"req,omitempty"`
	Stage string          `json:"stage,omitempty"`
	Blob  string          `json:"blob,omitempty"`
	Err   string          `json:"err,omitempty"`
	Time  string          `json:"time,omitempty"` // RFC3339Nano, stamped by the manager's clock
}

// JobRecord is one job's aggregated journal state after replay.
type JobRecord struct {
	ID      string
	Key     string
	Kind    string
	Request []byte // the api.JobRequest JSON recorded at submission
	// State is "done", "failed" or "canceled" for terminal jobs and ""
	// for jobs that were submitted or running when the daemon stopped —
	// those are resumable.
	State       string
	Error       string
	Blob        string // artifact content hash recorded at completion
	Created     string
	Started     string
	Finished    string
	Checkpoints []string // stage names in journal (checkpoint) order
}

// Terminal reports whether the job reached a final state before the
// journal ended.
func (r JobRecord) Terminal() bool { return r.State != "" }

// journal is the append side of the log.
type journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// openJournal replays path (missing = empty), compacts it, and returns
// the appender plus the replayed jobs in submission order.
func openJournal(path string) (*journal, []JobRecord, error) {
	jobs, err := replay(path)
	if err != nil {
		return nil, nil, err
	}
	if err := compact(path, jobs); err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: opening journal: %w", err)
	}
	return &journal{f: f, path: path}, jobs, nil
}

// replay folds the journal into per-job records. Unparseable lines
// (only ever the torn final line of a crashed append) are skipped.
func replay(path string) ([]JobRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: opening journal: %w", err)
	}
	defer f.Close()
	var jobs []JobRecord
	index := map[string]int{} // job id -> jobs index
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var r record
		if err := json.Unmarshal(line, &r); err != nil {
			continue // torn tail of a crashed append
		}
		switch r.Op {
		case opSubmit:
			if _, ok := index[r.ID]; ok {
				continue // duplicate submit: first wins
			}
			index[r.ID] = len(jobs)
			jobs = append(jobs, JobRecord{
				ID: r.ID, Key: r.Key, Kind: r.Kind,
				Request: append([]byte(nil), r.Req...),
				Created: r.Time,
			})
		default:
			i, ok := index[r.ID]
			if !ok {
				continue // record for an unknown job: drop
			}
			j := &jobs[i]
			switch r.Op {
			case opStart:
				j.Started = r.Time
			case opCheckpoint:
				j.Checkpoints = append(j.Checkpoints, r.Stage)
			case opDone:
				j.State, j.Blob, j.Finished = "done", r.Blob, r.Time
			case opFail:
				j.State, j.Error, j.Finished = "failed", r.Err, r.Time
			case opCancel:
				j.State, j.Finished = "canceled", r.Time
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("store: replaying journal: %w", err)
	}
	return jobs, nil
}

// compact atomically rewrites the journal to its minimal equivalent:
// one submit plus one terminal record per finished job, and submit +
// start + checkpoint records for jobs that must resume. Dead records
// (superseded checkpoints of finished jobs, start records of finished
// jobs) are dropped, which bounds journal growth across restarts.
func compact(path string, jobs []JobRecord) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	var encErr error
	add := func(r record) {
		if err := enc.Encode(r); err != nil && encErr == nil {
			encErr = err
		}
	}
	for _, j := range jobs {
		add(record{Op: opSubmit, ID: j.ID, Key: j.Key, Kind: j.Kind,
			Req: json.RawMessage(j.Request), Time: j.Created})
		switch j.State {
		case "done":
			add(record{Op: opDone, ID: j.ID, Blob: j.Blob, Time: j.Finished})
		case "failed":
			add(record{Op: opFail, ID: j.ID, Err: j.Error, Time: j.Finished})
		case "canceled":
			add(record{Op: opCancel, ID: j.ID, Time: j.Finished})
		default: // resumable: keep its progress
			if j.Started != "" {
				add(record{Op: opStart, ID: j.ID, Time: j.Started})
			}
			for _, stage := range j.Checkpoints {
				add(record{Op: opCheckpoint, ID: j.ID, Key: j.Key, Stage: stage})
			}
		}
	}
	if encErr != nil {
		return fmt.Errorf("store: compacting journal: %w", encErr)
	}
	if err := writeAtomic(path, buf.Bytes()); err != nil {
		return fmt.Errorf("store: compacting journal: %w", err)
	}
	return nil
}

// append writes one record and fsyncs. Append durability is the
// restart-survival contract: once a submission is acknowledged, a
// crash cannot lose it.
func (j *journal) append(r record) error {
	data, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("store: encoding journal record: %w", err)
	}
	data = append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("store: journal closed")
	}
	if _, err := j.f.Write(data); err != nil {
		return fmt.Errorf("store: appending journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("store: syncing journal: %w", err)
	}
	return nil
}

func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// ---------------------------------------------------------------------
// The manager-facing append API. Timestamps are passed in, already
// formatted, so the store never reads a clock — the daemon owns its
// stopwatches (and tests inject fixed ones).

// AppendSubmit journals an accepted job with its serialized request.
func (s *Store) AppendSubmit(id, key, kind string, req []byte, created string) error {
	return s.journal.append(record{Op: opSubmit, ID: id, Key: key, Kind: kind,
		Req: json.RawMessage(req), Time: created})
}

// AppendStart journals a job entering execution.
func (s *Store) AppendStart(id, started string) error {
	return s.journal.append(record{Op: opStart, ID: id, Time: started})
}

// AppendCheckpoint journals one persisted pipeline stage.
func (s *Store) AppendCheckpoint(id, key, stage string) error {
	return s.journal.append(record{Op: opCheckpoint, ID: id, Key: key, Stage: stage})
}

// AppendDone journals a completed job and its artifact hash.
func (s *Store) AppendDone(id, blob, finished string) error {
	return s.journal.append(record{Op: opDone, ID: id, Blob: blob, Time: finished})
}

// AppendFail journals a failed job.
func (s *Store) AppendFail(id, errMsg, finished string) error {
	return s.journal.append(record{Op: opFail, ID: id, Err: errMsg, Time: finished})
}

// AppendCancel journals a user-cancelled job. Jobs cancelled by daemon
// shutdown are deliberately not journaled as cancelled: they stay
// non-terminal in the log and resume on the next boot.
func (s *Store) AppendCancel(id, finished string) error {
	return s.journal.append(record{Op: opCancel, ID: id, Time: finished})
}

// JournalPath returns the journal file location (used by tests and
// `balsabm cache stats`).
func (s *Store) JournalPath() string { return filepath.Join(s.dir, "journal.jsonl") }

package bmlint

import (
	"fmt"

	"balsabm/internal/bm"
	"balsabm/internal/hfmin"
)

// Stats is the BM200 static complexity report: how big the machine
// is, how wide its bursts are, and a rough a-priori estimate of how
// hard the hazard-free minimizer will have to work on it.
//
// The pressure heuristic: hfmin minimizes one function per output
// (plus one per state bit), and the dhf-prime enumeration it runs
// branches on the required cubes of that output's transitions. An
// output toggled by t arcs contributes on the order of 2^t candidate
// subsets before the packed engine's pruning, so 2^t for the
// most-toggled output is the natural worst-case yardstick against
// hfmin.EnumBudget — the node budget past which the minimizer
// abandons the exact path for greedy expansion.
type Stats struct {
	States  int // specification states
	Arcs    int
	Inputs  int
	Outputs int
	MaxIn   int    // widest input burst
	MaxOut  int    // widest output burst
	Toggles int    // total output toggles across all arcs
	Worst   string // most-toggled output (lexically first on ties)
	WorstN  int    // its toggle count
	Budget  int    // hfmin.EnumBudget, for the pressure comparison
}

// ComputeStats computes the BM200 report for a spec.
func ComputeStats(sp *bm.Spec) Stats {
	st := Stats{
		States:  sp.NStates,
		Arcs:    len(sp.Arcs),
		Inputs:  len(sp.Inputs),
		Outputs: len(sp.Outputs),
		Budget:  hfmin.EnumBudget,
	}
	toggles := map[string]int{}
	for _, a := range sp.Arcs {
		if len(a.In) > st.MaxIn {
			st.MaxIn = len(a.In)
		}
		if len(a.Out) > st.MaxOut {
			st.MaxOut = len(a.Out)
		}
		st.Toggles += len(a.Out)
		for _, s := range a.Out {
			toggles[s.Name]++
		}
	}
	// Outputs are sorted on the Spec, so the tie-break is the lexically
	// first name and the result is deterministic.
	for _, name := range sp.Outputs {
		if toggles[name] > st.WorstN {
			st.Worst, st.WorstN = name, toggles[name]
		}
	}
	return st
}

// Pressure renders the estimated enumeration pressure 2^WorstN: the
// exact value while it fits comfortably, the power form beyond.
func (s Stats) Pressure() string {
	if s.WorstN <= 20 {
		return fmt.Sprint(1 << s.WorstN)
	}
	return fmt.Sprintf("2^%d", s.WorstN)
}

// String renders the one-line BM200 report message.
func (s Stats) String() string {
	msg := fmt.Sprintf(
		"static report: %d states, %d arcs, %d inputs, %d outputs, widest burst %d in/%d out",
		s.States, s.Arcs, s.Inputs, s.Outputs, s.MaxIn, s.MaxOut)
	if s.Worst == "" {
		return msg
	}
	rel := "within"
	if s.WorstN > 20 || 1<<s.WorstN > s.Budget {
		rel = "exceeds"
	}
	return msg + fmt.Sprintf("; worst output %q toggled by %d arcs (est. enumeration pressure %s %s hfmin budget %d)",
		s.Worst, s.WorstN, s.Pressure(), rel, s.Budget)
}

// Package bmlint implements a pass-based static analyzer for
// Burst-Mode machine specifications — the middle tier of the lint
// stack, between chlint (internal/analysis, CH programs) and netlint
// (internal/netlint, mapped netlists).
//
// The burst-mode machine is the paper's central IR: chtobm compiles CH
// into it, hfmin minimizes its next-state and output functions, and
// everything downstream trusts its well-formedness. Until now that
// trust rested on bm.Check, which stops at the first violation and
// reports a bare error. bmlint reports *every* finding as a Diag with
// a stable BMxxx code, at three tiers:
//
//   - BM-errors subsume bm.Check (which is now a thin wrapper over the
//     shared bm.Violations core, so the two can never disagree): empty
//     input bursts, signal-role confusion, duplicate signals in a
//     burst, maximal-set violations, polarity inconsistency,
//     inconsistent entry values, unreachable states, terminal states.
//   - BM-warnings cover semantics Check never sees: non-unique entry
//     points (parallel entry arcs), mergeable sibling arcs, redundant
//     states suggesting state minimization, outputs never toggled,
//     inputs never sampled.
//   - BM200 is a static complexity report — states, arcs, burst
//     widths, and the estimated dhf-prime enumeration pressure of the
//     widest output against hfmin.EnumBudget — the spec-level
//     complement of netlint's NL200 area/depth report.
//
// Every finding is a diag.Diag located at a state, an arc, a signal,
// or the whole spec; rendering and sorting follow the shared
// internal/diag conventions, so the CLI, the daemon and the golden
// corpus agree byte-for-byte with the other two linters' formats.
//
// Entry points: Analyze (diagnostics only), Audit (diagnostics plus
// the static report), LintSource (.bms text, folding parse failures
// into the diagnostic stream), and Passes (the registry).
package bmlint

import (
	"fmt"
	"strings"

	"balsabm/internal/bm"
	"balsabm/internal/diag"
)

// Severity classifies a diagnostic; see internal/diag.
type Severity = diag.Severity

// Severity levels, re-exported from internal/diag. Errors mark
// ill-formed specs the minimizer must not see; they abort the flow's
// post-compile gate. Warnings mark legal-but-suspicious structure.
// Infos are advisory, e.g. the complexity report.
const (
	SevError   = diag.SevError
	SevWarning = diag.SevWarning
	SevInfo    = diag.SevInfo
)

// Loc pins a diagnostic to a place in the spec: a state, an arc (with
// its source state, so arc findings sort next to their state's), a
// signal, or nothing (spec-level findings).
type Loc struct {
	State   int    // state id, -1 when not state-specific
	Arc     int    // index into Spec.Arcs, -1 when not arc-specific
	ArcText string // Arc.String() when Arc >= 0
	Sig     string // signal name when signal-specific
}

// NoLoc is the spec-level location.
var NoLoc = Loc{State: -1, Arc: -1}

// StateLoc locates a finding at state s.
func StateLoc(s int) Loc { return Loc{State: s, Arc: -1} }

// SigLoc locates a finding at a named signal.
func SigLoc(sig string) Loc { return Loc{State: -1, Arc: -1, Sig: sig} }

// ArcLoc locates a finding at arc index i of sp, carrying the arc's
// source state so the finding groups with that state's.
func ArcLoc(sp *bm.Spec, i int) Loc {
	return Loc{State: sp.Arcs[i].From, Arc: i, ArcText: sp.Arcs[i].String()}
}

// String renders the location: `state 2`, `arc 3 (1 -> 0 : a- / y-)`,
// `signal "req"`. Spec-level locations render empty.
func (l Loc) String() string {
	var parts []string
	if l.Arc >= 0 {
		parts = append(parts, fmt.Sprintf("arc %d (%s)", l.Arc, l.ArcText))
	} else if l.State >= 0 {
		parts = append(parts, fmt.Sprintf("state %d", l.State))
	}
	if l.Sig != "" {
		parts = append(parts, fmt.Sprintf("signal %q", l.Sig))
	}
	return strings.Join(parts, " ")
}

// Fragment implements diag.Loc: spec locations are space-separated
// from the spec-name prefix ("stack: arc 2 (...):").
func (l Loc) Fragment() (string, bool) { return l.String(), false }

// Key implements diag.Loc: diagnostics sort by state, then arc index.
func (l Loc) Key() (int, int) { return l.State, l.Arc }

// Diag is one diagnostic: where (a state/arc/signal Loc), how bad,
// which rule, and why. It is the shared diag.Diag shape instantiated
// with spec locations; see internal/diag for the render and sort
// conventions.
type Diag = diag.Diag[Loc]

// Codes maps every stable diagnostic code to its one-line meaning.
// Codes are append-only: a released code never changes meaning, so
// suppressions, CI greps and the /metrics code labels stay valid.
var Codes = map[string]string{
	"BM000": "spec does not parse",
	"BM001": "arc has an empty input burst",
	"BM002": "signal-role confusion: input used as output or vice versa",
	"BM003": "signal appears twice in one burst",
	"BM004": "maximal-set violation: comparable input bursts leave one state",
	"BM005": "polarity violation: transition to a value the signal already holds",
	"BM006": "state entered with inconsistent signal values",
	"BM007": "state unreachable from the start state",
	"BM008": "terminal state: no outgoing arcs",
	"BM009": "start state out of range",
	"BM100": "parallel entry arcs with differing output bursts (entry point not unique)",
	"BM101": "mergeable sibling arcs: same source, target and output burst",
	"BM102": "redundant state: outgoing behavior identical to another state",
	"BM103": "output never toggled by any arc",
	"BM104": "input never sampled by any input burst",
	"BM200": "static complexity report",
}

// violationCode maps the shared bm.Violation kinds onto BM-error
// codes, one-to-one.
var violationCode = map[bm.Kind]string{
	bm.KindEmptyInput:  "BM001",
	bm.KindRole:        "BM002",
	bm.KindDuplicate:   "BM003",
	bm.KindMaximalSet:  "BM004",
	bm.KindPolarity:    "BM005",
	bm.KindEntryValues: "BM006",
	bm.KindUnreachable: "BM007",
	bm.KindTerminal:    "BM008",
	bm.KindStart:       "BM009",
}

// Reporter collects diagnostics during a pass run.
type Reporter = diag.Reporter[Loc]

// Pass is one analyzer pass: a name, a one-line doc string and a run
// function receiving the spec under analysis.
type Pass struct {
	Name string
	Doc  string
	Run  func(sp *bm.Spec, r *Reporter)
}

// Passes returns the full pass registry in its fixed run order. Every
// pass is safe on arbitrary (even ill-formed) specs, so unlike
// netlint there is no early bail-out; findings on a broken spec are
// best-effort.
func Passes() []*Pass {
	return []*Pass{
		WellFormedPass,
		EntryPass,
		SiblingPass,
		RedundantPass,
		SignalsPass,
		ReportPass,
	}
}

// Run executes the given passes over a spec and returns the merged
// diagnostics in a stable order: state, then arc, then code, then
// message — byte-deterministic at any pass count.
func Run(sp *bm.Spec, passes []*Pass) []Diag {
	r := &Reporter{}
	for _, p := range passes {
		p.Run(sp, r)
	}
	ds := r.Diags()
	diag.Sort(ds)
	return ds
}

// Analyze runs every registered pass over a spec.
func Analyze(sp *bm.Spec) []Diag { return Run(sp, Passes()) }

// Result is one full audit: the spec's name, its diagnostics, and the
// static complexity report.
type Result struct {
	Name  string
	Diags []Diag
	Stats Stats
}

// Audit runs every pass and computes the static report. Stats are
// computed even when diagnostics are present — a broken spec still
// has a meaningful state/arc count.
func Audit(sp *bm.Spec) Result {
	return Result{Name: sp.Name, Diags: Analyze(sp), Stats: ComputeStats(sp)}
}

// LintSource lints .bms spec text. Parse failures do not abort the
// lint; they surface as a single BM000 error diagnostic, so every
// caller — CLI, daemon, golden tests — sees one uniform stream.
func LintSource(src string) Result {
	sp, err := bm.Parse(src)
	if err != nil {
		return Result{Diags: []Diag{{
			Loc: NoLoc, Severity: SevError, Code: "BM000", Message: err.Error(),
		}}}
	}
	return Audit(sp)
}

// Count tallies diagnostics by severity.
func Count(ds []Diag) (errors, warnings, infos int) { return diag.Count(ds) }

// HasErrors reports whether any diagnostic is error-severity.
func HasErrors(ds []Diag) bool { return diag.HasErrors(ds) }

// Format renders diagnostics vet-style, one per line (plus note
// lines), prefixed with the spec name when non-empty.
func Format(ds []Diag, spec string) string { return diag.Format(ds, spec) }

package bmlint

import (
	"fmt"

	"balsabm/internal/bm"
)

// WellFormedPass reports every Burst-Mode well-formedness violation as
// a BM-error. It is a thin adapter over bm.(*Spec).Violations — the
// same accumulating core bm.Check returns the first element of — so
// bmlint's error tier and Check can never disagree.
var WellFormedPass = &Pass{
	Name: "wellformed",
	Doc:  "Burst-Mode well-formedness (the bm.Check conditions), accumulated",
	Run: func(sp *bm.Spec, r *Reporter) {
		for _, v := range sp.Violations() {
			loc := Loc{State: v.State, Arc: v.Arc, Sig: v.Sig}
			if v.Arc >= 0 && v.Arc < len(sp.Arcs) {
				loc.ArcText = sp.Arcs[v.Arc].String()
			}
			r.Errorf(loc, violationCode[v.Kind], "%s", v.Msg)
		}
	},
}

// outKey canonicalizes an output burst for comparison: sorted, so two
// bursts listing the same transitions in different order compare equal.
func outKey(b bm.Burst) string {
	c := b.Clone()
	c.Sort()
	return c.String()
}

// EntryPass warns (BM100) when a state pair is connected by parallel
// arcs with differing output bursts: the target state's entry point is
// not unique — which arc fired decides which outputs toggled, and the
// entry values only agree by reconvergence. Legal, but often a missed
// burst merge or a state that wants splitting.
var EntryPass = &Pass{
	Name: "entry",
	Doc:  "parallel entry arcs with differing output bursts (BM100)",
	Run: func(sp *bm.Spec, r *Reporter) {
		type pair struct{ from, to int }
		groups := map[pair][]int{}
		var order []pair
		for i, a := range sp.Arcs {
			p := pair{a.From, a.To}
			if len(groups[p]) == 0 {
				order = append(order, p)
			}
			groups[p] = append(groups[p], i)
		}
		for _, p := range order {
			idx := groups[p]
			if len(idx) < 2 {
				continue
			}
			differ := false
			for _, i := range idx[1:] {
				if outKey(sp.Arcs[i].Out) != outKey(sp.Arcs[idx[0]].Out) {
					differ = true
					break
				}
			}
			if !differ {
				continue
			}
			r.Warnf(StateLoc(p.to), "BM100",
				"entered from state %d via %d parallel arcs with differing output bursts",
				p.from, len(idx))
			for _, i := range idx {
				r.Note("arc %d (%s)", i, sp.Arcs[i])
			}
		}
	},
}

// SiblingPass warns (BM101) about mergeable sibling arcs: two arcs
// with the same source, target and output burst differ only in their
// input bursts, so a single arc with a merged burst would express the
// same behavior with fewer dhf transitions for the minimizer.
var SiblingPass = &Pass{
	Name: "sibling",
	Doc:  "mergeable sibling arcs: same source, target and output burst (BM101)",
	Run: func(sp *bm.Spec, r *Reporter) {
		type key struct {
			from, to int
			out      string
		}
		first := map[key]int{}
		for i, a := range sp.Arcs {
			k := key{a.From, a.To, outKey(a.Out)}
			if j, ok := first[k]; ok {
				r.Warnf(ArcLoc(sp, i), "BM101",
					"same target and output burst as arc %d; input bursts could merge", j)
				r.Note("arc %d (%s)", j, sp.Arcs[j])
				continue
			}
			first[k] = i
		}
	},
}

// RedundantPass warns (BM102) when two states have identical outgoing
// behavior (same input bursts, output bursts and targets, with
// self-loops compared symbolically), suggesting the machine was not
// state-minimized. Terminal states are the error tier's business and
// are skipped here.
var RedundantPass = &Pass{
	Name: "redundant",
	Doc:  "redundant states with identical outgoing behavior (BM102)",
	Run: func(sp *bm.Spec, r *Reporter) {
		keys := make([]string, sp.NStates)
		for s := 0; s < sp.NStates; s++ {
			arcs := sp.ArcsFrom(s)
			if len(arcs) == 0 {
				continue
			}
			lines := make([]string, len(arcs))
			for i, a := range arcs {
				to := fmt.Sprint(a.To)
				if a.To == s {
					to = "self"
				}
				in := a.In.Clone()
				in.Sort()
				lines[i] = fmt.Sprintf("%s/%s->%s", in, outKey(a.Out), to)
			}
			// ArcsFrom preserves declaration order; sort the canonical
			// lines so arc order does not defeat the comparison.
			sortStrings(lines)
			for _, l := range lines {
				keys[s] += l + ";"
			}
		}
		first := map[string]int{}
		for s := 0; s < sp.NStates; s++ {
			if keys[s] == "" {
				continue
			}
			if t, ok := first[keys[s]]; ok {
				r.Warnf(StateLoc(s), "BM102",
					"outgoing behavior identical to state %d; states could merge", t)
				continue
			}
			first[keys[s]] = s
		}
	},
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// SignalsPass warns about declared-but-unused signals: outputs no arc
// ever toggles (BM103) and inputs no input burst ever samples (BM104).
// Both synthesize — the output becomes a constant wire, the input is
// ignored — but almost certainly indicate a specification gap.
var SignalsPass = &Pass{
	Name: "signals",
	Doc:  "outputs never toggled (BM103), inputs never sampled (BM104)",
	Run: func(sp *bm.Spec, r *Reporter) {
		inUsed := map[string]bool{}
		outUsed := map[string]bool{}
		for _, a := range sp.Arcs {
			for _, s := range a.In {
				inUsed[s.Name] = true
			}
			for _, s := range a.Out {
				outUsed[s.Name] = true
			}
		}
		// Inputs and Outputs are sorted on the Spec, so report order
		// is deterministic.
		for _, name := range sp.Outputs {
			if !outUsed[name] {
				r.Warnf(SigLoc(name), "BM103", "output %q is never toggled by any arc", name)
			}
		}
		for _, name := range sp.Inputs {
			if !inUsed[name] {
				r.Warnf(SigLoc(name), "BM104", "input %q is never sampled by any input burst", name)
			}
		}
	},
}

// ReportPass emits the BM200 static complexity report: the spec-level
// complement of netlint's NL200, summarizing machine size and the
// estimated dhf-prime enumeration pressure against hfmin.EnumBudget.
var ReportPass = &Pass{
	Name: "report",
	Doc:  "static complexity report (BM200)",
	Run: func(sp *bm.Spec, r *Reporter) {
		r.Infof(NoLoc, "BM200", "%s", ComputeStats(sp).String())
	},
}

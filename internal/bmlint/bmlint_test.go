package bmlint

import (
	"strings"
	"testing"

	"balsabm/internal/bm"
)

func b(sigs ...string) bm.Burst {
	var out bm.Burst
	for _, s := range sigs {
		rise := strings.HasSuffix(s, "+")
		out = append(out, bm.Sig{Name: s[:len(s)-1], Rise: rise})
	}
	return out
}

// clean returns a minimal well-formed two-state machine.
func clean() *bm.Spec {
	return &bm.Spec{
		Name:    "clean",
		Inputs:  []string{"a"},
		Outputs: []string{"y"},
		NStates: 2,
		Arcs: []bm.Arc{
			{From: 0, To: 1, In: b("a+"), Out: b("y+")},
			{From: 1, To: 0, In: b("a-"), Out: b("y-")},
		},
	}
}

func codes(ds []Diag) []string {
	var out []string
	for _, d := range ds {
		out = append(out, d.Code)
	}
	return out
}

func hasCode(ds []Diag, code string) bool {
	for _, d := range ds {
		if d.Code == code {
			return true
		}
	}
	return false
}

func TestCleanSpecOnlyBM200(t *testing.T) {
	ds := Analyze(clean())
	if len(ds) != 1 || ds[0].Code != "BM200" || ds[0].Severity != SevInfo {
		t.Fatalf("clean spec diags = %v", codes(ds))
	}
}

func TestErrorTierMirrorsViolations(t *testing.T) {
	sp := clean()
	sp.Arcs[0].In = nil // empty input burst
	sp.Inputs = []string{"a", "unused"}
	ds := Analyze(sp)
	if !hasCode(ds, "BM001") {
		t.Fatalf("want BM001, got %v", codes(ds))
	}
	if !hasCode(ds, "BM104") {
		t.Fatalf("want BM104 for unused input, got %v", codes(ds))
	}
	if !HasErrors(ds) {
		t.Fatal("HasErrors = false")
	}
	// Every violation code must agree with bm.Check's first error.
	err := sp.Check()
	if err == nil {
		t.Fatal("Check passed on broken spec")
	}
	var first *Diag
	for i := range ds {
		if ds[i].Severity == SevError {
			first = &ds[i]
			break
		}
	}
	if first == nil || !strings.Contains(err.Error(), first.Message) {
		t.Fatalf("Check error %q does not contain first BM-error %q", err, first.Message)
	}
}

func TestEntryPassBM100(t *testing.T) {
	// Two parallel arcs 0 -> 1 with different output bursts, values
	// reconverging (y+ then z+, vs z+ then y+ won't reconverge — use
	// bursts that toggle both outputs in one go on one arc).
	sp := &bm.Spec{
		Name:    "entry",
		Inputs:  []string{"a", "c"},
		Outputs: []string{"y", "z"},
		NStates: 2,
		Arcs: []bm.Arc{
			{From: 0, To: 1, In: b("a+"), Out: b("y+", "z+")},
			{From: 0, To: 1, In: b("c+"), Out: b("z+", "y+")}, // same set, different order: no BM100
			{From: 1, To: 0, In: b("a-", "c-"), Out: b("y-", "z-")},
		},
	}
	ds := Analyze(sp)
	if hasCode(ds, "BM100") {
		t.Fatalf("order-only difference fired BM100: %v", codes(ds))
	}
	// But those two arcs share From/To/Out, so they are mergeable.
	if !hasCode(ds, "BM101") {
		t.Fatalf("want BM101 for same-output siblings, got %v", codes(ds))
	}

	sp.Arcs[1].Out = b("y+", "z+") // still same; now make them differ
	sp.Arcs[0].Out = b("y+")
	sp.Arcs[0].In = b("a+", "c+")
	sp.Arcs[1].In = b("c+")
	// 0 -a+c+/y+-> 1 vs 0 -c+/y+z+-> 1: differing outs -> BM100 (and a
	// BM006 entry-value error, which is fine — the pass is independent).
	ds = Analyze(sp)
	if !hasCode(ds, "BM100") {
		t.Fatalf("want BM100 for differing parallel outs, got %v", codes(ds))
	}
	if hasCode(ds, "BM101") {
		t.Fatalf("differing outs still fired BM101: %v", codes(ds))
	}
}

func TestRedundantPassBM102(t *testing.T) {
	// States 1 and 2 behave identically (both return to 0 on a-/y-).
	sp := &bm.Spec{
		Name:    "redundant",
		Inputs:  []string{"a", "c"},
		Outputs: []string{"y"},
		NStates: 3,
		Arcs: []bm.Arc{
			{From: 0, To: 1, In: b("a+"), Out: b("y+")},
			{From: 0, To: 2, In: b("c+"), Out: b("y+")},
			{From: 1, To: 0, In: b("a-"), Out: b("y-")},
			{From: 2, To: 0, In: b("a-"), Out: b("y-")},
		},
	}
	ds := Analyze(sp)
	if !hasCode(ds, "BM102") {
		t.Fatalf("want BM102, got %v", codes(ds))
	}
	// The warning lands on the later state and names the earlier.
	for _, d := range ds {
		if d.Code == "BM102" {
			if d.Loc.State != 2 || !strings.Contains(d.Message, "state 1") {
				t.Fatalf("BM102 at %+v: %s", d.Loc, d.Message)
			}
		}
	}
}

func TestSignalsPassBM103(t *testing.T) {
	sp := clean()
	sp.Outputs = []string{"dead", "y"}
	ds := Analyze(sp)
	if !hasCode(ds, "BM103") {
		t.Fatalf("want BM103, got %v", codes(ds))
	}
}

func TestRenderStyle(t *testing.T) {
	cases := []struct {
		d    Diag
		want string
	}{
		{Diag{Loc: StateLoc(2), Severity: SevError, Code: "BM007", Message: "m"},
			"stack: state 2: error: BM007: m"},
		{Diag{Loc: Loc{State: 0, Arc: 1, ArcText: "0 -> 1 : a+ / y+", Sig: "a"},
			Severity: SevError, Code: "BM005", Message: "m"},
			`stack: arc 1 (0 -> 1 : a+ / y+) signal "a": error: BM005: m`},
		{Diag{Loc: SigLoc("req"), Severity: SevWarning, Code: "BM104", Message: "m"},
			`stack: signal "req": warning: BM104: m`},
		{Diag{Loc: NoLoc, Severity: SevInfo, Code: "BM200", Message: "m"},
			"stack: info: BM200: m"},
	}
	for _, c := range cases {
		if got := c.d.Render("stack"); got != c.want {
			t.Errorf("Render = %q, want %q", got, c.want)
		}
	}
	if NoLoc.String() != "" {
		t.Errorf("NoLoc renders %q, want empty", NoLoc.String())
	}
}

func TestLintSourceParseError(t *testing.T) {
	res := LintSource("not a spec\n")
	if len(res.Diags) != 1 || res.Diags[0].Code != "BM000" {
		t.Fatalf("diags = %v", codes(res.Diags))
	}
	if res.Diags[0].Severity != SevError {
		t.Fatalf("BM000 severity = %v", res.Diags[0].Severity)
	}
}

func TestLintSourceCleanSpec(t *testing.T) {
	sp := clean()
	res := LintSource(sp.String())
	if HasErrors(res.Diags) {
		t.Fatalf("round-tripped clean spec has errors:\n%s", Format(res.Diags, res.Name))
	}
	if res.Name != "clean" {
		t.Fatalf("Name = %q", res.Name)
	}
	if res.Stats.States != 2 || res.Stats.Arcs != 2 {
		t.Fatalf("Stats = %+v", res.Stats)
	}
}

func TestStatsPressure(t *testing.T) {
	st := Stats{Worst: "y", WorstN: 3, Budget: 20000}
	if st.Pressure() != "8" {
		t.Errorf("Pressure = %q", st.Pressure())
	}
	st.WorstN = 40
	if st.Pressure() != "2^40" {
		t.Errorf("Pressure = %q", st.Pressure())
	}
	if !strings.Contains(st.String(), "exceeds hfmin budget") {
		t.Errorf("String = %q, want exceeds", st.String())
	}
}

func TestDiagsSortedDeterministically(t *testing.T) {
	sp := clean()
	sp.Inputs = []string{"a", "u1", "u2"}
	sp.Outputs = []string{"d1", "y"}
	ds := Analyze(sp)
	for i := 1; i < len(ds); i++ {
		ai, bi := ds[i-1].Loc.Key()
		aj, bj := ds[i].Loc.Key()
		if ai > aj || (ai == aj && bi > bj) {
			t.Fatalf("diags out of order at %d: %v", i, codes(ds))
		}
	}
}

func TestEveryPassCodeRegistered(t *testing.T) {
	for _, p := range Passes() {
		if p.Name == "" || p.Doc == "" {
			t.Errorf("pass %+v missing name or doc", p)
		}
	}
	for k, v := range Codes {
		if v == "" {
			t.Errorf("code %s has no doc string", k)
		}
	}
	for _, code := range violationCode {
		if Codes[code] == "" {
			t.Errorf("violation code %s not registered", code)
		}
	}
}

package core

import (
	"testing"

	"balsabm/internal/ch"
)

// Section 4.3: "The experiment has succeeded for all operator
// combinations" — rerun it mechanically. For every legal pairing of an
// operator in the activating component and one in the activated
// component, the composed-and-hidden behavior must be conformation-
// equivalent to the clustered behavior.
func TestOptimizationConformance(t *testing.T) {
	results := VerifyAllPairs()
	if len(results) == 0 {
		t.Fatal("empty verification grid")
	}
	for pair, err := range results {
		if err != nil {
			t.Errorf("activating=%s activated=%s: %v", pair.Activating, pair.Activated, err)
		}
	}
}

func TestVerificationGridSize(t *testing.T) {
	// Four operators are legal with passive/active arguments
	// (4 activating) crossed with the three enclosures (activated): 4x3.
	grid := VerificationGrid()
	if len(grid) != 12 {
		t.Fatalf("grid has %d cells, want 12", len(grid))
	}
}

// The worked Fig 4 example also verifies end to end.
func TestVerifyFig4Example(t *testing.T) {
	n := dwSeqNetlist(t)
	if err := VerifyActivationChannelRemoval("o2", n.Find("dw"), n.Find("seq")); err != nil {
		t.Fatal(err)
	}
}

// A deliberately *wrong* transformation must be caught: inline the body
// at the wrong position (sequenced after rather than enclosed within).
func TestVerifyCatchesWrongTransformation(t *testing.T) {
	x := prog(t, "x", `(rep (enc-early (p-to-p passive a) (p-to-p active c)))`)
	y := prog(t, "y", `(rep (enc-early (p-to-p passive c) (p-to-p active d)))`)
	// Correct removal passes.
	if err := VerifyActivationChannelRemoval("c", x, y); err != nil {
		t.Fatalf("correct removal rejected: %v", err)
	}
	// Wrong "optimization": claim the merged behavior sequences d
	// after the a handshake instead of enclosing it.
	wrong := prog(t, "x", `(rep (seq (p-to-p passive a) (enc-early void (p-to-p active d))))`)
	dm, _, err := traceStructure(wrong)
	if err != nil {
		t.Fatal(err)
	}
	dx, _, err := traceStructure(x)
	if err != nil {
		t.Fatal(err)
	}
	dy, _, err := traceStructure(y)
	if err != nil {
		t.Fatal(err)
	}
	composed, err := composeAndHide(dx, dy, "c")
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := equivalentDFA(composed, dm); ok {
		t.Fatal("wrong transformation accepted as equivalent")
	}
}

// Call distribution is verified by composing the sequencer with the
// original call and comparing against the distributed result with the
// b1/b2 channels hidden.
func TestVerifyCallDistribution(t *testing.T) {
	n := seqCallNetlist(t)
	dseq, _, err := traceStructure(n.Find("seq"))
	if err != nil {
		t.Fatal(err)
	}
	dcall, _, err := traceStructure(n.Find("call"))
	if err != nil {
		t.Fatal(err)
	}
	composed, err := composeAndHide(dseq, dcall, "b1", "b2")
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := T2Clustering(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Components) != 1 {
		t.Fatalf("expected one component:\n%s", out.Format())
	}
	dres, _, err := traceStructure(out.Components[0])
	if err != nil {
		t.Fatal(err)
	}
	if ok, tr := equivalentDFA(composed, dres); !ok {
		t.Fatalf("call distribution changed behavior; differ after %q", tr)
	}
}

// T1 merges on arbitrary sequencer trees preserve the tree's external
// behavior.
func TestVerifyTreeClustering(t *testing.T) {
	n := sequencerTree(2)
	// Compose all three components pairwise, hide internal channels.
	var dfas []*traceDFA
	for _, c := range n.Components {
		d, _, err := traceStructure(c)
		if err != nil {
			t.Fatal(err)
		}
		dfas = append(dfas, d)
	}
	composed := dfas[0]
	var err error
	for _, d := range dfas[1:] {
		composed, err = composeDFA(composed, d)
		if err != nil {
			t.Fatal(err)
		}
	}
	internal, err := n.InternalPToP()
	if err != nil {
		t.Fatal(err)
	}
	var hide []string
	for _, c := range internal {
		hide = append(hide, c+"_r", c+"_a")
	}
	spec := composed.HideSignals(hide...)

	out, _, err := T1Clustering(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Components) != 1 {
		t.Fatalf("tree did not fully cluster:\n%s", out.Format())
	}
	impl, _, err := traceStructure(out.Components[0])
	if err != nil {
		t.Fatal(err)
	}
	if ok, tr := equivalentDFA(spec, impl); !ok {
		t.Fatalf("clustered tree differs after %q", tr)
	}
}

func TestGridComponentsShape(t *testing.T) {
	for _, pair := range VerificationGrid() {
		x, y := GridComponents(pair)
		if err := ch.Validate(x.Body); err != nil {
			t.Errorf("%v: activating invalid: %v", pair, err)
		}
		if err := ch.Validate(y.Body); err != nil {
			t.Errorf("%v: activated invalid: %v", pair, err)
		}
	}
}

package core_test

import (
	"fmt"
	"testing"

	"balsabm/internal/core"
	"balsabm/internal/designs"
)

// Clustering commits merges in sequential channel order no matter how
// many workers probe candidate legality, so the clustered netlist and
// the report are identical at any worker count.
func TestClusteringWorkerDeterminism(t *testing.T) {
	d, err := designs.ByName("systolic-counter")
	if err != nil {
		t.Fatal(err)
	}
	render := func(n *core.Netlist, rep *core.Report) string {
		return n.Format() + fmt.Sprintf("%+v", *rep)
	}
	n1, r1, err := core.T2ClusteringOpt(d.Control(), core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	n8, r8, err := core.T2ClusteringOpt(d.Control(), core.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := render(n1, r1), render(n8, r8); a != b {
		t.Errorf("Workers=1 and Workers=8 disagree:\n--- serial ---\n%s\n--- wide ---\n%s", a, b)
	}
}

// The ordered verification API reports the grid cells in grid order,
// and agrees with the map API.
func TestVerifyAllPairsOrdered(t *testing.T) {
	grid := core.VerificationGrid()
	results := core.VerifyAllPairsOrdered()
	if len(results) != len(grid) {
		t.Fatalf("got %d results for %d grid cells", len(results), len(grid))
	}
	for i, r := range results {
		if r.Pair != grid[i] {
			t.Errorf("result %d is %v, want %v", i, r.Pair, grid[i])
		}
		if r.Err != nil {
			t.Errorf("pair %v failed: %v", r.Pair, r.Err)
		}
	}
	m := core.VerifyAllPairs()
	if len(m) != len(results) {
		t.Errorf("map has %d entries, ordered %d", len(m), len(results))
	}
}

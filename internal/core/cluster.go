package core

import (
	"context"
	"fmt"
	"sort"

	"balsabm/internal/ch"
	"balsabm/internal/chtobm"
	"balsabm/internal/parallel"
)

// Merge records one successful activation-channel removal.
type Merge struct {
	Channel   string // the eliminated activation channel
	Activator string // component whose expression absorbed the body
	Activated string // component whose activation channel was hidden
	Result    string // name of the merged component
}

// Report describes what the clustering algorithms did.
type Report struct {
	Merges        []Merge
	Skipped       []string // channels inspected but not removable
	CallsSplit    []string // call components split by T2
	CallsRestored []string // calls whose fragments scattered; restored
	// Containment maps each original component name to the final
	// component that contains its behavior.
	Containment map[string]string
}

// activationBody returns the operator kind and body of an activated
// component: the component must have the shape
//
//	(rep (OP (p-to-p passive c) body))
//
// where OP is an interleaving operator that encloses (or sequences) the
// body within the activation handshake. It returns the hidden
// replacement expression (OP void body) per Section 4.1, or an error if
// the channel is not an activation channel of the component.
func activationBody(p *ch.Program, channel string) (ch.Expr, error) {
	rep, ok := p.Body.(*ch.Rep)
	if !ok {
		return nil, fmt.Errorf("core: %s is not a rep-wrapped component", p.Name)
	}
	op, ok := rep.Body.(*ch.Op)
	if !ok {
		return nil, fmt.Errorf("core: %s: top-level expression is not an operator", p.Name)
	}
	c, ok := op.A.(*ch.Chan)
	if !ok || c.Kind != ch.PToP || c.Name != channel || c.Act != ch.Passive {
		return nil, fmt.Errorf("core: %s: channel %s is not its activation channel", p.Name, channel)
	}
	// The activation handshake must *enclose* the body (Section 4.1).
	// Only the enclosure operators qualify: with seq, the body runs
	// after the activation handshake completes, so the activating
	// component could start a new cycle while the body is still busy —
	// composing and hiding then yields pipelined behavior (and
	// potential interference) that the merged sequential component
	// does not have. The trace-theory verification (verify.go) catches
	// exactly this if the restriction is lifted.
	switch op.Kind {
	case ch.EncEarly, ch.EncMiddle, ch.EncLate:
	default:
		return nil, fmt.Errorf("core: %s: operator %s does not enclose the body in the activation handshake", p.Name, op.Kind)
	}
	// The body must be ACTIVE. With a passive body, the body's first
	// input transition shares a burst with the activation request, so
	// the composed system can accept next-iteration inputs while the
	// activating component is still finishing its own handshake — a
	// trace the merged sequential controller does not have. The
	// conformance fuzzer (fuzz_test.go) finds counterexamples within a
	// few iterations if this restriction is lifted. (The paper's §4.3
	// grid uses single-operator programs with active bodies, so it
	// never exercises the unsafe shape.)
	if op.B.Activity() != ch.Active {
		return nil, fmt.Errorf("core: %s: activated body must be active; %s body joins the activation burst", p.Name, op.B.Activity())
	}
	return &ch.Op{Kind: op.Kind, A: &ch.Void{}, B: op.B.Clone()}, nil
}

// sequentialContext reports whether every occurrence of the channel in
// the expression sits in a purely sequential context: no enc-middle or
// seq-ov ancestor. Under those operators the channel's handshake
// overlaps a sibling channel's, so inlining the activated body would
// serialize transitions the composed system performs concurrently —
// the sibling's environment could then deliver inputs the merged
// controller is not ready for (the conformance fuzzer exhibits
// counterexamples if this precondition is dropped).
func sequentialContext(e ch.Expr, channel string) bool {
	// hasActive reports whether the subtree performs any active
	// handshake of its own (third-party communication).
	var hasActive func(e ch.Expr) bool
	hasActive = func(e ch.Expr) bool {
		found := false
		ch.Walk(e, func(x ch.Expr) {
			switch n := x.(type) {
			case *ch.Chan:
				if n.Kind != ch.Verb && n.Act == ch.Active {
					found = true
				}
			case *ch.MuxAck:
				found = true
			}
		})
		return found
	}
	var rec func(e ch.Expr, concurrent bool) bool
	rec = func(e ch.Expr, concurrent bool) bool {
		switch n := e.(type) {
		case *ch.Chan:
			if n.Kind == ch.PToP && n.Name == channel {
				return !concurrent
			}
			return true
		case *ch.Rep:
			return rec(n.Body, concurrent)
		case *ch.Op:
			if n.Kind == ch.EncMiddle || n.Kind == ch.SeqOv {
				// Each side is concurrent with the other only if the
				// sibling performs active (third-party) handshakes; a
				// purely passive sibling is the environment-facing
				// activation, which the §4.3 grid verifies as safe.
				return rec(n.A, concurrent || hasActive(n.B)) &&
					rec(n.B, concurrent || hasActive(n.A))
			}
			return rec(n.A, concurrent) && rec(n.B, concurrent)
		case *ch.MuxAck:
			for _, arm := range n.Arms {
				if !rec(arm.Arg, concurrent) {
					return false
				}
			}
			return true
		case *ch.MuxReq:
			for _, arm := range n.Arms {
				if !rec(arm.Arg, concurrent) {
					return false
				}
			}
			return true
		default:
			return true
		}
	}
	return rec(e, false)
}

// ActivationChannelRemoval merges the activated component y into the
// activating component x by eliminating the activation channel
// (Section 4.1): the channel is hidden in y (replaced by void) and y's
// body is inlined at the channel's use sites in x. The merged program
// is returned without any synthesizability check; callers (the
// clustering algorithms) verify Burst-Mode synthesizability separately.
func ActivationChannelRemoval(channel string, x, y *ch.Program) (*ch.Program, error) {
	hidden, err := activationBody(y, channel)
	if err != nil {
		return nil, err
	}
	if cnt := ch.CountPToP(x.Body, channel); cnt == 0 {
		return nil, fmt.Errorf("core: %s does not use channel %s", x.Name, channel)
	}
	if !sequentialContext(x.Body, channel) {
		return nil, fmt.Errorf("core: %s: channel %s is used in a concurrent context; inlining would serialize it", x.Name, channel)
	}
	body, _ := ch.ReplacePToP(x.Body, channel, hidden)
	return &ch.Program{Name: x.Name, Body: body}, nil
}

// Options tune the clustering algorithms.
//
// MaxStates bounds the Burst-Mode state count of a clustered
// controller: merges whose result would exceed it are rejected, exactly
// like merges that fail the Burst-Mode aware checks. The paper's
// conclusions discuss this knob ("elaborate a set of restrictions such
// that the synthesis step becomes manageable") as the alternative to a
// post-clustering decomposition step; 0 means unlimited.
type Options struct {
	MaxStates int
	// Workers bounds the concurrency of the candidate legality probes
	// (each one a full CH-to-BM compilation); 0 means GOMAXPROCS.
	Workers int
	// Pool, when set, shares an existing worker pool (e.g. the flow's)
	// instead of creating one from Workers, so clustering and synthesis
	// draw from one global budget.
	Pool *parallel.Pool
	// Ctx, when set, cancels a clustering run in flight: legality
	// probes still waiting for a pool slot are abandoned and the run
	// returns the context's error. Nil means context.Background().
	Ctx context.Context
}

// ctx resolves the run's cancellation context.
func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// pool resolves the worker pool the clustering run should use.
func (o Options) pool() *parallel.Pool {
	if o.Pool != nil {
		return o.Pool
	}
	if o.Workers > 0 {
		return parallel.NewPool(o.Workers)
	}
	return parallel.Default()
}

// synthesizable reports whether the program compiles to a well-formed
// Burst-Mode specification (Table 1 legality + full CH-to-BM check)
// within the configured state bound.
func synthesizable(p *ch.Program, opt Options) bool {
	sp, err := chtobm.Compile(p)
	if err != nil {
		return false
	}
	return opt.MaxStates <= 0 || sp.NStates <= opt.MaxStates
}

// T1Clustering implements procedure T1_clustering of Section 4.4: it
// iterates over the point-to-point channels of the netlist; for each,
// it forms the clustered component of the two connected components and
// keeps it if the result is still Burst-Mode synthesizable. The channel
// sweep repeats until no further merge commits, so clusters are "as
// large as possible" regardless of channel ordering (a merge can turn a
// previously three-party channel into a two-party one). The input
// netlist is not modified. The report's Containment maps original
// component names to their final containers.
func T1Clustering(n *Netlist) (*Netlist, *Report, error) {
	return T1ClusteringOpt(n, Options{})
}

// T1ClusteringOpt is T1Clustering with tunable limits.
func T1ClusteringOpt(n *Netlist, opt Options) (*Netlist, *Report, error) {
	opt.Pool = opt.pool()
	out := n.Clone()
	rep := &Report{Containment: map[string]string{}}
	for _, c := range out.Components {
		rep.Containment[c.Name] = c.Name
	}
	for {
		merged, err := t1Sweep(out, rep, opt)
		if err != nil {
			return nil, nil, err
		}
		if !merged {
			break
		}
	}
	sortComponents(out)
	return out, rep, nil
}

// t1Candidate is one channel's evaluation against the current netlist:
// merged is nil when the channel is not committable (skipped).
type t1Candidate struct {
	xName, yName string
	merged       *ch.Program
}

// t1Evaluate probes one channel for a legal merge. It is pure with
// respect to the netlist (ActivationChannelRemoval and the
// synthesizability check clone everything they rewrite), so candidates
// for many channels can be evaluated concurrently against the same
// netlist state.
func t1Evaluate(out *Netlist, channel string, uses map[string][]ChanUse, opt Options) t1Candidate {
	us := uses[channel]
	if len(us) != 2 {
		return t1Candidate{}
	}
	// x activates (active side); y is activated (passive side).
	var xName, yName string
	switch {
	case us[0].Port.Act == ch.Active && us[1].Port.Act == ch.Passive:
		xName, yName = us[0].Component, us[1].Component
	case us[0].Port.Act == ch.Passive && us[1].Port.Act == ch.Active:
		xName, yName = us[1].Component, us[0].Component
	default:
		return t1Candidate{}
	}
	if xName == yName {
		return t1Candidate{}
	}
	x, y := out.Find(xName), out.Find(yName)
	merged, err := ActivationChannelRemoval(channel, x, y)
	if err != nil {
		return t1Candidate{}
	}
	if !synthesizable(merged, opt) {
		return t1Candidate{}
	}
	return t1Candidate{xName: xName, yName: yName, merged: merged}
}

// t1Sweep performs one pass over the current internal channels,
// reporting whether any merge committed.
//
// The legality probes (each a full activation-channel removal plus
// CH-to-BM compilation) dominate clustering time, so they are fanned
// out across the worker pool. Commit order is kept identical to the
// sequential algorithm: the remaining channels are evaluated in
// parallel against the current netlist, the first committable one (in
// channel order) commits, and the channels after it are re-evaluated
// against the updated netlist — exactly the states the sequential
// sweep would have probed, so merges, skips and the final netlist are
// byte-for-byte the same at any worker count.
func t1Sweep(out *Netlist, rep *Report, opt Options) (bool, error) {
	channels, err := out.InternalPToP()
	if err != nil {
		return false, err
	}
	anyMerge := false
	for i := 0; i < len(channels); {
		uses, err := out.ChannelUses()
		if err != nil {
			return false, err
		}
		rest := channels[i:]
		cands, err := parallel.MapCtx(opt.ctx(), opt.Pool, len(rest), func(k int) (t1Candidate, error) {
			return t1Evaluate(out, rest[k], uses, opt), nil
		})
		if err != nil {
			return false, err
		}
		committed := -1
		for k, cand := range cands {
			if cand.merged == nil {
				rep.Skipped = append(rep.Skipped, rest[k])
				continue
			}
			// Commit: replace x and y with the merged component.
			out.remove(cand.xName)
			out.remove(cand.yName)
			out.Components = append(out.Components, cand.merged)
			for orig, cont := range rep.Containment {
				if cont == cand.yName || cont == cand.xName {
					rep.Containment[orig] = cand.merged.Name
				}
			}
			rep.Merges = append(rep.Merges, Merge{
				Channel: rest[k], Activator: cand.xName, Activated: cand.yName, Result: cand.merged.Name,
			})
			anyMerge = true
			committed = k
			break
		}
		if committed < 0 {
			break // every remaining channel skipped; sweep is done
		}
		i += committed + 1
	}
	return anyMerge, nil
}

// callShape inspects a component for the n-way call shape of Section
// 4.2: (rep (mutex (enc-early (p-to-p passive p_i) (p-to-p active c))
// ...)), all arms sharing the same active channel. It returns the
// passive channel names and the shared active channel name.
func callShape(p *ch.Program) (passives []string, active string, ok bool) {
	rep, isRep := p.Body.(*ch.Rep)
	if !isRep {
		return nil, "", false
	}
	var arms []*ch.Op
	var collect func(e ch.Expr) bool
	collect = func(e ch.Expr) bool {
		op, isOp := e.(*ch.Op)
		if !isOp {
			return false
		}
		if op.Kind == ch.Mutex {
			return collect(op.A) && collect(op.B)
		}
		if op.Kind != ch.EncEarly {
			return false
		}
		arms = append(arms, op)
		return true
	}
	if !collect(rep.Body) {
		return nil, "", false
	}
	if len(arms) < 2 {
		return nil, "", false
	}
	for _, arm := range arms {
		pc, okP := arm.A.(*ch.Chan)
		ac, okA := arm.B.(*ch.Chan)
		if !okP || !okA || pc.Kind != ch.PToP || ac.Kind != ch.PToP ||
			pc.Act != ch.Passive || ac.Act != ch.Active {
			return nil, "", false
		}
		if active == "" {
			active = ac.Name
		} else if active != ac.Name {
			return nil, "", false
		}
		passives = append(passives, pc.Name)
	}
	return passives, active, true
}

// splitCall breaks an n-way call into n fragments, each enclosing a
// handshake on a replica of the call's active channel within one of the
// original passive channels (Section 4.2).
func splitCall(p *ch.Program, passives []string, active string) []*ch.Program {
	frags := make([]*ch.Program, len(passives))
	for i, pc := range passives {
		frags[i] = &ch.Program{
			Name: fmt.Sprintf("%s#%d", p.Name, i+1),
			Body: &ch.Rep{Body: &ch.Op{
				Kind: ch.EncEarly,
				A:    &ch.Chan{Kind: ch.PToP, Act: ch.Passive, Name: pc},
				B:    &ch.Chan{Kind: ch.PToP, Act: ch.Active, Name: active},
			}},
		}
	}
	return frags
}

// T2Clustering implements procedure T2_clustering of Section 4.4: all
// call components are split into fragments, T1 clustering runs on the
// new netlist, and any call whose fragments did not all cluster into
// the same final controller is restored. Restoration re-runs the
// pipeline with the failed calls kept intact, iterating until stable.
func T2Clustering(n *Netlist) (*Netlist, *Report, error) {
	return T2ClusteringOpt(n, Options{})
}

// T2ClusteringOpt is T2Clustering with tunable limits.
func T2ClusteringOpt(n *Netlist, opt Options) (*Netlist, *Report, error) {
	noSplit := map[string]bool{}
	var allRestored []string
	for {
		out, rep, restored, err := t2Round(n, noSplit, opt)
		if err != nil {
			return nil, nil, err
		}
		if len(restored) == 0 {
			// Record calls restored in earlier rounds: they were split,
			// found scattered, and kept intact this round.
			rep.CallsSplit = append(rep.CallsSplit, allRestored...)
			rep.CallsRestored = append(rep.CallsRestored, allRestored...)
			sort.Strings(rep.CallsSplit)
			sort.Strings(rep.CallsRestored)
			return out, rep, nil
		}
		for _, name := range restored {
			noSplit[name] = true
		}
		allRestored = append(allRestored, restored...)
	}
}

func t2Round(n *Netlist, noSplit map[string]bool, opt Options) (*Netlist, *Report, []string, error) {
	work := n.Clone()
	type callInfo struct {
		orig  *ch.Program
		frags []string
	}
	var calls []callInfo
	var split []*ch.Program
	kept := &Netlist{}
	for _, c := range work.Components {
		passives, active, ok := callShape(c)
		if !ok || noSplit[c.Name] {
			kept.Components = append(kept.Components, c)
			continue
		}
		frags := splitCall(c, passives, active)
		info := callInfo{orig: c.Clone()}
		for _, f := range frags {
			info.frags = append(info.frags, f.Name)
			split = append(split, f)
		}
		calls = append(calls, info)
	}
	kept.Components = append(kept.Components, split...)

	out, rep, err := T1ClusteringOpt(kept, opt)
	if err != nil {
		return nil, nil, nil, err
	}
	var restored []string
	for _, info := range calls {
		rep.CallsSplit = append(rep.CallsSplit, info.orig.Name)
		container := ""
		together := true
		for _, f := range info.frags {
			c := rep.Containment[f]
			if c == f {
				together = false // fragment was never inlined anywhere
				break
			}
			if container == "" {
				container = c
			} else if container != c {
				together = false
				break
			}
		}
		if !together {
			restored = append(restored, info.orig.Name)
			rep.CallsRestored = append(rep.CallsRestored, info.orig.Name)
			continue
		}
		for _, f := range info.frags {
			rep.Containment[info.orig.Name] = rep.Containment[f]
			delete(rep.Containment, f)
		}
	}
	return out, rep, restored, nil
}

// Optimize runs the full clustering pipeline of the paper's back-end:
// T2 clustering, which subsumes T1.
func Optimize(n *Netlist) (*Netlist, *Report, error) {
	return T2Clustering(n)
}

// OptimizeOpt runs the clustering pipeline with tunable limits (e.g. a
// cluster state bound).
func OptimizeOpt(n *Netlist, opt Options) (*Netlist, *Report, error) {
	return T2ClusteringOpt(n, opt)
}

func sortComponents(n *Netlist) {
	sort.Slice(n.Components, func(i, j int) bool {
		return n.Components[i].Name < n.Components[j].Name
	})
}

package core

import (
	"fmt"
	"strings"
	"testing"

	"balsabm/internal/bm"
	"balsabm/internal/ch"
	"balsabm/internal/chtobm"
)

func prog(t *testing.T, name, src string) *ch.Program {
	t.Helper()
	body, err := ch.Parse(src)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return &ch.Program{Name: name, Body: body}
}

// The Section 4.1 worked example: a decision-wait activating a
// sequencer over channel o2.
func dwSeqNetlist(t *testing.T) *Netlist {
	t.Helper()
	dw := prog(t, "dw", `(rep (enc-early (p-to-p passive a1)
	    (mutex (enc-early (p-to-p passive i1) (p-to-p active o1))
	           (enc-early (p-to-p passive i2) (p-to-p active o2)))))`)
	seq := prog(t, "seq", `(rep (enc-early (p-to-p passive o2)
	    (seq (p-to-p active c1) (p-to-p active c2))))`)
	return &Netlist{Components: []*ch.Program{dw, seq}}
}

func TestActivationChannelRemovalExample(t *testing.T) {
	n := dwSeqNetlist(t)
	merged, err := ActivationChannelRemoval("o2", n.Find("dw"), n.Find("seq"))
	if err != nil {
		t.Fatal(err)
	}
	// The merged component must match the paper's result: the hidden
	// body (enc-early void (seq c1 c2)) replaces the o2 channel.
	want := prog(t, "dw", `(rep (enc-early (p-to-p passive a1)
	    (mutex (enc-early (p-to-p passive i1) (p-to-p active o1))
	           (enc-early (p-to-p passive i2)
	              (enc-early void (seq (p-to-p active c1) (p-to-p active c2)))))))`)
	if ch.Format(merged.Body) != ch.Format(want.Body) {
		t.Fatalf("merged:\n%s\nwant:\n%s", ch.Format(merged.Body), ch.Format(want.Body))
	}
}

// Fig 4: the merged decision-wait/sequencer compiles into the 11-state
// Burst-Mode specification shown in the paper.
func TestFig4Merge(t *testing.T) {
	n := dwSeqNetlist(t)
	out, rep, err := T1Clustering(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Components) != 1 {
		t.Fatalf("expected a single clustered component, got %d:\n%s", len(out.Components), out.Format())
	}
	if len(rep.Merges) != 1 || rep.Merges[0].Channel != "o2" {
		t.Fatalf("merges: %+v", rep.Merges)
	}
	sp, err := chtobm.Compile(out.Components[0])
	if err != nil {
		t.Fatal(err)
	}
	if sp.NStates != 11 {
		t.Fatalf("got %d states, want 11 (Fig 4):\n%s", sp.NStates, sp)
	}
	wantArcs := map[string]bool{
		"0>1:a1_r+ i1_r+/o1_r+":  true,
		"1>2:o1_a+/o1_r-":        true,
		"2>3:o1_a-/i1_a+":        true,
		"3>4:i1_r-/a1_a+ i1_a-":  true,
		"4>0:a1_r-/a1_a-":        true,
		"0>5:a1_r+ i2_r+/c1_r+":  true,
		"5>6:c1_a+/c1_r-":        true,
		"6>7:c1_a-/c2_r+":        true,
		"7>8:c2_a+/c2_r-":        true,
		"8>9:c2_a-/i2_a+":        true,
		"9>10:i2_r-/a1_a+ i2_a-": true,
		"10>0:a1_r-/a1_a-":       true,
	}
	got := map[string]bool{}
	for _, a := range sp.Arcs {
		got[fmt.Sprintf("%d>%d:%s/%s", a.From, a.To, a.In, a.Out)] = true
	}
	for w := range wantArcs {
		if !got[w] {
			t.Errorf("missing arc %s in:\n%s", w, sp)
		}
	}
	if len(got) != len(wantArcs) {
		t.Errorf("got %d arcs want %d:\n%s", len(got), len(wantArcs), sp)
	}
}

// The Section 4.2 worked example: sequencer + 2-way call (the systolic
// counter fragment).
func seqCallNetlist(t *testing.T) *Netlist {
	t.Helper()
	seq := prog(t, "seq", `(rep (enc-early (p-to-p passive a)
	    (seq (p-to-p active b1) (p-to-p active b2))))`)
	call := prog(t, "call", `(rep (mutex
	    (enc-early (p-to-p passive b1) (p-to-p active c))
	    (enc-early (p-to-p passive b2) (p-to-p active c))))`)
	return &Netlist{Components: []*ch.Program{seq, call}}
}

// Fig 5: call distribution merges the sequencer and the call into one
// six-state controller performing two handshakes on c.
func TestFig5CallDistribution(t *testing.T) {
	n := seqCallNetlist(t)
	out, rep, err := T2Clustering(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Components) != 1 {
		t.Fatalf("expected 1 component, got:\n%s", out.Format())
	}
	if len(rep.CallsSplit) != 1 || len(rep.CallsRestored) != 0 {
		t.Fatalf("report: %+v", rep)
	}
	// The merged behavior per the paper.
	want := prog(t, "seq", `(rep (enc-early (p-to-p passive a)
	    (seq (enc-early void (p-to-p active c))
	         (enc-early void (p-to-p active c)))))`)
	if ch.Format(out.Components[0].Body) != ch.Format(want.Body) {
		t.Fatalf("merged:\n%s\nwant:\n%s", ch.Format(out.Components[0].Body), ch.Format(want.Body))
	}
	sp, err := chtobm.Compile(out.Components[0])
	if err != nil {
		t.Fatal(err)
	}
	if sp.NStates != 6 {
		t.Fatalf("got %d states, want 6 (Fig 5):\n%s", sp.NStates, sp)
	}
	wantArcs := []string{
		"0>1:a_r+/c_r+",
		"1>2:c_a+/c_r-",
		"2>3:c_a-/c_r+",
		"3>4:c_a+/c_r-",
		"4>5:c_a-/a_a+",
		"5>0:a_r-/a_a-",
	}
	got := map[string]bool{}
	for _, a := range sp.Arcs {
		got[fmt.Sprintf("%d>%d:%s/%s", a.From, a.To, a.In, a.Out)] = true
	}
	for _, w := range wantArcs {
		if !got[w] {
			t.Errorf("missing arc %s:\n%s", w, sp)
		}
	}
	if len(got) != len(wantArcs) {
		t.Errorf("extra arcs:\n%s", sp)
	}
}

// A call whose fragments land in different controllers must be
// restored: here two independent sequencers each call one arm.
func TestCallRestoration(t *testing.T) {
	s1 := prog(t, "s1", `(rep (enc-early (p-to-p passive p1)
	    (seq (p-to-p active b1) (p-to-p active d1))))`)
	s2 := prog(t, "s2", `(rep (enc-early (p-to-p passive p2)
	    (seq (p-to-p active b2) (p-to-p active d2))))`)
	call := prog(t, "call", `(rep (mutex
	    (enc-early (p-to-p passive b1) (p-to-p active c))
	    (enc-early (p-to-p passive b2) (p-to-p active c))))`)
	n := &Netlist{Components: []*ch.Program{s1, s2, call}}
	out, rep, err := T2Clustering(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.CallsRestored) != 1 || rep.CallsRestored[0] != "call" {
		t.Fatalf("expected call restoration, report %+v\nnetlist:\n%s", rep, out.Format())
	}
	if out.Find("call") == nil {
		t.Fatalf("call component not restored:\n%s", out.Format())
	}
	// The restored call keeps its original behavior.
	if got := ch.CountPToP(out.Find("call").Body, "c"); got != 2 {
		t.Fatalf("restored call uses c %d times, want 2", got)
	}
}

// T1 on a chain of sequencers: the whole chain collapses into one
// controller and every internal channel disappears.
func TestClusterCollapse(t *testing.T) {
	top := prog(t, "top", `(rep (enc-early (p-to-p passive go)
	    (seq (p-to-p active l) (p-to-p active r))))`)
	left := prog(t, "left", `(rep (enc-early (p-to-p passive l)
	    (seq (p-to-p active l1) (p-to-p active l2))))`)
	right := prog(t, "right", `(rep (enc-early (p-to-p passive r)
	    (seq (p-to-p active r1) (p-to-p active r2))))`)
	n := &Netlist{Components: []*ch.Program{top, left, right}}
	before, err := n.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if before.Components != 3 || before.InternalChannels != 2 {
		t.Fatalf("before: %+v", before)
	}
	out, rep, err := T1Clustering(n)
	if err != nil {
		t.Fatal(err)
	}
	after, err := out.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if after.Components != 1 || after.InternalChannels != 0 {
		t.Fatalf("after: %+v\n%s", after, out.Format())
	}
	if len(rep.Merges) != 2 {
		t.Fatalf("merges: %+v", rep.Merges)
	}
	// The collapsed controller is synthesizable and drives all four
	// leaf channels.
	sp, err := chtobm.Compile(out.Components[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, sig := range []string{"l1_r", "l2_r", "r1_r", "r2_r"} {
		found := false
		for _, o := range sp.Outputs {
			if o == sig {
				found = true
			}
		}
		if !found {
			t.Errorf("output %s missing from %v", sig, sp.Outputs)
		}
	}
	// Containment: all three originals map to the final component.
	final := out.Components[0].Name
	for _, orig := range []string{"top", "left", "right"} {
		if rep.Containment[orig] != final {
			t.Errorf("containment[%s] = %s, want %s", orig, rep.Containment[orig], final)
		}
	}
}

// A merge whose result would not be Burst-Mode synthesizable must be
// rejected and the netlist left unchanged for that channel.
func TestUnsynthesizableMergeSkipped(t *testing.T) {
	// The activated component's body begins with an output on an
	// active channel enclosed so that after inlining, the activating
	// mutex sees an active argument — illegal under Table 1.
	x := prog(t, "x", `(rep (mutex
	    (enc-early (p-to-p passive p1) (p-to-p active q1))
	    (enc-early (p-to-p passive p2) (p-to-p active w))))`)
	// y is activated on w but its operator shape is fine; merging is
	// legal here, so to force a failure we give y a *mutex* body whose
	// inlining would nest choice inside choice with clashing
	// polarity... simpler: y's activation uses enc-late so the body
	// runs at return-to-zero, producing a non-BM interleaving with the
	// outer mutex choice.
	y := prog(t, "y", `(rep (enc-late (p-to-p passive w)
	    (mutex (enc-early (p-to-p passive m1) (p-to-p active z1))
	           (enc-early (p-to-p passive m2) (p-to-p active z2)))))`)
	n := &Netlist{Components: []*ch.Program{x, y}}
	out, rep, err := T1Clustering(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Merges) != 0 {
		// If it merged, it must at least be genuinely synthesizable.
		if _, cerr := chtobm.Compile(out.Components[0]); cerr != nil {
			t.Fatalf("committed an unsynthesizable merge: %v", cerr)
		}
		t.Skip("combination turned out synthesizable; rejection path covered elsewhere")
	}
	if len(out.Components) != 2 {
		t.Fatalf("netlist changed despite skip:\n%s", out.Format())
	}
}

// Netlist bookkeeping.
func TestNetlistChannels(t *testing.T) {
	n := dwSeqNetlist(t)
	internal, err := n.InternalPToP()
	if err != nil {
		t.Fatal(err)
	}
	if len(internal) != 1 || internal[0] != "o2" {
		t.Fatalf("internal: %v", internal)
	}
	external, err := n.ExternalChannels()
	if err != nil {
		t.Fatal(err)
	}
	want := "a1,c1,c2,i1,i2,o1"
	if strings.Join(external, ",") != want {
		t.Fatalf("external: %v", external)
	}
}

func TestNetlistParseFormat(t *testing.T) {
	n := dwSeqNetlist(t)
	text := n.Format()
	back, err := ParseNetlist(text)
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	if back.Format() != text {
		t.Fatalf("round trip:\n%s\n%s", text, back.Format())
	}
	if _, err := ParseNetlist("(program x (p-to-p passive"); err == nil {
		t.Fatal("expected error for unbalanced input")
	}
}

func TestCallShapeRecognition(t *testing.T) {
	n := seqCallNetlist(t)
	passives, active, ok := callShape(n.Find("call"))
	if !ok || active != "c" || len(passives) != 2 {
		t.Fatalf("callShape: %v %q %v", passives, active, ok)
	}
	// A 3-way call.
	c3 := prog(t, "c3", `(rep (mutex
	    (enc-early (p-to-p passive b1) (p-to-p active c))
	    (enc-early (p-to-p passive b2) (p-to-p active c))
	    (enc-early (p-to-p passive b3) (p-to-p active c))))`)
	passives, active, ok = callShape(c3)
	if !ok || len(passives) != 3 || active != "c" {
		t.Fatalf("3-way: %v %q %v", passives, active, ok)
	}
	// Not calls:
	if _, _, ok := callShape(n.Find("seq")); ok {
		t.Fatal("sequencer recognized as call")
	}
	mixed := prog(t, "mixed", `(rep (mutex
	    (enc-early (p-to-p passive b1) (p-to-p active c))
	    (enc-early (p-to-p passive b2) (p-to-p active d))))`)
	if _, _, ok := callShape(mixed); ok {
		t.Fatal("mixed-target mutex recognized as call")
	}
}

// Idempotence: optimizing an already-optimized netlist changes nothing.
func TestOptimizeIdempotent(t *testing.T) {
	n := dwSeqNetlist(t)
	once, _, err := Optimize(n)
	if err != nil {
		t.Fatal(err)
	}
	twice, rep2, err := Optimize(once)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Merges) != 0 {
		t.Fatalf("second pass merged again: %+v", rep2.Merges)
	}
	if twice.Format() != once.Format() {
		t.Fatalf("not idempotent:\n%s\n%s", once.Format(), twice.Format())
	}
}

// Original netlist must never be mutated by clustering.
func TestClusteringPure(t *testing.T) {
	n := dwSeqNetlist(t)
	before := n.Format()
	if _, _, err := T2Clustering(n); err != nil {
		t.Fatal(err)
	}
	if n.Format() != before {
		t.Fatal("input netlist mutated")
	}
}

// All specs produced from a clustered netlist must pass the BM check —
// over a family of randomly shaped sequencer trees.
func TestClusteredTreesSynthesizable(t *testing.T) {
	for depth := 1; depth <= 3; depth++ {
		n := sequencerTree(depth)
		out, _, err := T1Clustering(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range out.Components {
			sp, err := chtobm.Compile(c)
			if err != nil {
				t.Fatalf("depth %d, %s: %v", depth, c.Name, err)
			}
			if err := sp.Check(); err != nil {
				t.Fatalf("depth %d, %s: %v", depth, c.Name, err)
			}
		}
	}
}

// sequencerTree builds a complete binary tree of sequencers of the
// given depth rooted at external channel "go".
func sequencerTree(depth int) *Netlist {
	n := &Netlist{}
	var build func(name, act string, d int)
	build = func(name, act string, d int) {
		l, r := act+"l", act+"r"
		src := fmt.Sprintf(`(rep (enc-early (p-to-p passive %s)
		    (seq (p-to-p active %s) (p-to-p active %s))))`, act, l, r)
		body, err := ch.Parse(src)
		if err != nil {
			panic(err)
		}
		n.Components = append(n.Components, &ch.Program{Name: name, Body: body})
		if d > 1 {
			build(name+"l", l, d-1)
			build(name+"r", r, d-1)
		}
	}
	build("s", "go", depth)
	return n
}

// Sanity: compiled merged controllers still satisfy the burst polarity
// invariants (redundant with Check, but asserts through the public bm
// API on a concrete example).
func TestMergedStateValues(t *testing.T) {
	n := seqCallNetlist(t)
	out, _, err := T2Clustering(n)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := chtobm.Compile(out.Components[0])
	if err != nil {
		t.Fatal(err)
	}
	vals, err := sp.StateValues()
	if err != nil {
		t.Fatal(err)
	}
	if vals[3]["c_r"] != true {
		t.Fatalf("state 3 should have c_r high: %v", vals[3])
	}
	_ = bm.Sig{}
}

// Package core implements the paper's primary contribution: the
// system-level control optimizations of Section 4. Control handshake
// components, modelled as CH programs, are clustered into larger
// controllers by eliminating internal point-to-point channels:
//
//   - Activation Channel Removal (Section 4.1, procedure T1_clustering)
//     hides a component's activation channel and inlines its body into
//     the activating component;
//   - Call Distribution (Section 4.2, procedure T2_clustering) splits
//     n-way call components into enclosure fragments, distributes them
//     into their call sites via T1, and restores calls whose fragments
//     do not all land in the same cluster.
//
// Every candidate merge is accepted only if the merged component is
// still Burst-Mode synthesizable (Table 1 legality plus a full CH-to-BM
// compilation and well-formedness check).
package core

import (
	"fmt"
	"sort"
	"strings"

	"balsabm/internal/ch"
	"balsabm/internal/sexp"
)

// Netlist is a network of control handshake components described by CH
// programs. Components are connected by channels: a channel name used
// by two components (once actively, once passively) is an internal
// channel; a name used by exactly one component is part of the
// netlist's external interface (datapath, environment, or other
// processes).
type Netlist struct {
	Components []*ch.Program
}

// Clone returns a deep copy of the netlist.
func (n *Netlist) Clone() *Netlist {
	out := &Netlist{Components: make([]*ch.Program, len(n.Components))}
	for i, c := range n.Components {
		out.Components[i] = c.Clone()
	}
	return out
}

// Find returns the component with the given name, or nil.
func (n *Netlist) Find(name string) *ch.Program {
	for _, c := range n.Components {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// remove deletes the named component.
func (n *Netlist) remove(name string) {
	out := n.Components[:0]
	for _, c := range n.Components {
		if c.Name != name {
			out = append(out, c)
		}
	}
	n.Components = out
}

// ChanUse records one component's use of a channel.
type ChanUse struct {
	Component string
	Port      ch.Port
}

// ChannelUses maps every channel name to the components using it.
func (n *Netlist) ChannelUses() (map[string][]ChanUse, error) {
	uses := map[string][]ChanUse{}
	for _, c := range n.Components {
		ports, err := ch.Ports(c.Body)
		if err != nil {
			return nil, fmt.Errorf("core: component %s: %w", c.Name, err)
		}
		for _, p := range ports {
			uses[p.Name] = append(uses[p.Name], ChanUse{Component: c.Name, Port: p})
		}
	}
	return uses, nil
}

// InternalPToP lists the point-to-point channels connecting exactly two
// components with complementary activities — the candidates for
// clustering ("currently, only point-to-point channels are considered
// for optimization"). Names are sorted for determinism.
func (n *Netlist) InternalPToP() ([]string, error) {
	uses, err := n.ChannelUses()
	if err != nil {
		return nil, err
	}
	var out []string
	for name, us := range uses {
		if len(us) != 2 {
			continue
		}
		a, b := us[0].Port, us[1].Port
		if a.Kind != ch.PToP || b.Kind != ch.PToP || a.Mux || b.Mux {
			continue
		}
		if a.Act == b.Act {
			continue // miswired; leave to validation elsewhere
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// ExternalChannels lists channels used by exactly one component: the
// netlist's interface to datapath and environment.
func (n *Netlist) ExternalChannels() ([]string, error) {
	uses, err := n.ChannelUses()
	if err != nil {
		return nil, err
	}
	var out []string
	for name, us := range uses {
		if len(us) == 1 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Stats summarizes a netlist for before/after reporting (Fig 2).
type Stats struct {
	Components       int
	InternalChannels int
	ExternalChannels int
}

// Stats computes summary statistics.
func (n *Netlist) Stats() (Stats, error) {
	internal, err := n.InternalPToP()
	if err != nil {
		return Stats{}, err
	}
	external, err := n.ExternalChannels()
	if err != nil {
		return Stats{}, err
	}
	return Stats{
		Components:       len(n.Components),
		InternalChannels: len(internal),
		ExternalChannels: len(external),
	}, nil
}

func (s Stats) String() string {
	return fmt.Sprintf("%d components, %d internal channels, %d external channels",
		s.Components, s.InternalChannels, s.ExternalChannels)
}

// Format renders the netlist as a sequence of CH programs.
func (n *Netlist) Format() string {
	var sb strings.Builder
	for _, c := range n.Components {
		sb.WriteString(ch.FormatProgram(c))
		sb.WriteString("\n")
	}
	return sb.String()
}

// ParseNetlist reads a sequence of (program name expr) forms. The
// whole source is scanned in one pass, so the Line:Col positions
// recorded on every component's AST nodes are absolute within the
// text — which is what makes multi-program lint diagnostics
// (internal/analysis) point at the right lines.
func ParseNetlist(src string) (*Netlist, error) {
	nodes, err := sexp.ParseAll(src)
	if err != nil {
		return nil, err
	}
	n := &Netlist{}
	for _, node := range nodes {
		p, err := ch.ProgramFromSexp(node)
		if err != nil {
			return nil, err
		}
		n.Components = append(n.Components, p)
	}
	return n, nil
}

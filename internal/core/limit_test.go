package core

import (
	"fmt"
	"testing"

	"balsabm/internal/ch"
	"balsabm/internal/chmap"
	"balsabm/internal/chtobm"
)

// counterNetlist builds the systolic counter control network (three
// sequencer/call cells).
func counterNetlist() *Netlist {
	n := &Netlist{}
	stages := []string{"tick", "a2", "a3", "leaf"}
	for i := 0; i < 3; i++ {
		b1 := fmt.Sprintf("b%d_1", i+1)
		b2 := fmt.Sprintf("b%d_2", i+1)
		n.Components = append(n.Components,
			chmap.Sequencer(fmt.Sprintf("seq%d", i+1), stages[i], b1, b2),
			chmap.Call(fmt.Sprintf("call%d", i+1), []string{b1, b2}, stages[i+1]),
		)
	}
	return n
}

// A state bound keeps clusters small: the unlimited run collapses the
// counter to one 18-state controller; bounded runs stop earlier, every
// cluster within the bound — the "manageable synthesis" knob from the
// paper's conclusions.
func TestClusterStateLimit(t *testing.T) {
	unlimited, _, err := OptimizeOpt(counterNetlist(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(unlimited.Components) != 1 {
		t.Fatalf("unlimited: %d components", len(unlimited.Components))
	}
	prevComponents := 1
	for _, limit := range []int{12, 8} {
		out, _, err := OptimizeOpt(counterNetlist(), Options{MaxStates: limit})
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Components) < prevComponents {
			t.Errorf("limit %d produced fewer components (%d) than a looser limit (%d)",
				limit, len(out.Components), prevComponents)
		}
		prevComponents = len(out.Components)
		for _, c := range out.Components {
			sp, err := chtobm.Compile(c)
			if err != nil {
				t.Fatalf("limit %d: %s: %v", limit, c.Name, err)
			}
			if sp.NStates > limit {
				t.Errorf("limit %d: %s has %d states", limit, c.Name, sp.NStates)
			}
		}
	}
	// A bound below any mergeable size must keep the netlist unchanged
	// apart from no-op reporting.
	out, rep, err := OptimizeOpt(counterNetlist(), Options{MaxStates: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Merges) != 0 || len(out.Components) != 6 {
		t.Errorf("limit 4: %d components, %d merges", len(out.Components), len(rep.Merges))
	}
}

// The bound only rejects merges; existing components above the bound
// are left alone.
func TestClusterLimitLeavesBigComponentsAlone(t *testing.T) {
	big := chmap.Sequencer("big", "go", "a", "b", "c", "d", "e")
	n := &Netlist{Components: []*ch.Program{big}}
	out, _, err := OptimizeOpt(n, Options{MaxStates: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Components) != 1 || out.Components[0].Name != "big" {
		t.Fatalf("netlist changed: %s", out.Format())
	}
}

package core

import (
	"errors"
	"fmt"

	"balsabm/internal/bm"
	"balsabm/internal/ch"
	"balsabm/internal/chtobm"
	"balsabm/internal/parallel"
	"balsabm/internal/petri"
	"balsabm/internal/trace"
)

// traceStructure compiles a CH program to a Burst-Mode specification,
// translates it to a Petri net, and returns its determinized trace
// structure — the mechanized version of the paper's "manually
// translated into Petri nets, then ... transformed into trace
// structures" (Section 4.3).
func traceStructure(p *ch.Program) (*trace.DFA, *bm.Spec, error) {
	sp, err := chtobm.Compile(p)
	if err != nil {
		return nil, nil, err
	}
	// The net is built from the CH expansion itself (not from the BM
	// arcs): the four-phase expansion fixes the order of output
	// transitions, which is the level at which the paper's equivalence
	// holds. Input runs stay concurrent.
	net, err := petri.FromProgram(p)
	if err != nil {
		return nil, nil, err
	}
	g, err := net.Reachability(0)
	if err != nil {
		return nil, nil, err
	}
	return trace.FromGraph(g, sp.Inputs, sp.Outputs).Determinize(), sp, nil
}

// ErrInterference reports that the *composition* of the two components
// already exhibits computation interference under speed-independent
// semantics (one component can deliver an input while the other is
// still mid output burst). Such compositions rely on the generalized
// fundamental-mode timing assumption; the clustered controller is, if
// anything, safer, but trace-level equivalence cannot be stated.
var ErrInterference = errors.New("composition has computation interference")

// traceDFA aliases the trace-structure type for local convenience.
type traceDFA = trace.DFA

func composeDFA(a, b *trace.DFA) (*trace.DFA, error) { return trace.Compose(a, b) }

func equivalentDFA(a, b *trace.DFA) (bool, string) { return trace.Equivalent(a, b) }

// composeAndHide composes two trace structures and hides the request
// and acknowledge wires of the given channels.
func composeAndHide(a, b *trace.DFA, channels ...string) (*trace.DFA, error) {
	composed, err := trace.Compose(a, b)
	if err != nil {
		return nil, err
	}
	if bad, tr := composed.HasFailure(); bad {
		return nil, fmt.Errorf("core: %w after %q", ErrInterference, tr)
	}
	var hide []string
	for _, c := range channels {
		hide = append(hide, c+"_r", c+"_a")
	}
	return composed.HideSignals(hide...), nil
}

// VerifyActivationChannelRemoval reruns the paper's Section 4.3
// experiment for one pair of components: the composed behavior of the
// activating component x and the activated component y, with the
// activation channel hidden, must be conformation-equivalent to the
// behavior of the clustered component produced by Activation Channel
// Removal. It returns an error with a distinguishing trace on failure.
func VerifyActivationChannelRemoval(channel string, x, y *ch.Program) error {
	dx, _, err := traceStructure(x)
	if err != nil {
		return fmt.Errorf("core: verify: activating component: %w", err)
	}
	dy, _, err := traceStructure(y)
	if err != nil {
		return fmt.Errorf("core: verify: activated component: %w", err)
	}
	composed, err := trace.Compose(dx, dy)
	if err != nil {
		return fmt.Errorf("core: verify: compose: %w", err)
	}
	if bad, tr := composed.HasFailure(); bad {
		return fmt.Errorf("core: verify: %w after %q", ErrInterference, tr)
	}
	hidden := composed.HideSignals(channel+"_r", channel+"_a")

	merged, err := ActivationChannelRemoval(channel, x, y)
	if err != nil {
		return fmt.Errorf("core: verify: optimization failed: %w", err)
	}
	dm, _, err := traceStructure(merged)
	if err != nil {
		return fmt.Errorf("core: verify: merged component: %w", err)
	}
	if ok, tr := trace.Equivalent(hidden, dm); !ok {
		return fmt.Errorf("core: verify: behaviors differ after %q", tr)
	}
	return nil
}

// OperatorPair describes one cell of the Section 4.3 experiment grid.
type OperatorPair struct {
	Activating ch.OpKind // operator in the activating component
	Activated  ch.OpKind // operator in the activated component
}

// VerificationGrid returns the operator pairs of the Section 4.3
// experiment: every legal combination of a single operator in the
// activating component (with the activation channel as its active
// second argument) and an *enclosure* operator in the activated
// component (with the activation channel as its passive first
// argument) — the shapes Activation Channel Removal applies to.
func VerificationGrid() []OperatorPair {
	activating := []ch.OpKind{ch.EncEarly, ch.EncMiddle, ch.EncLate, ch.Seq}
	activated := []ch.OpKind{ch.EncEarly, ch.EncMiddle, ch.EncLate}
	var out []OperatorPair
	for _, a := range activating {
		if !ch.Legal(a, ch.Passive, ch.Active) {
			continue
		}
		for _, b := range activated {
			if !ch.Legal(b, ch.Passive, ch.Active) {
				continue
			}
			out = append(out, OperatorPair{Activating: a, Activated: b})
		}
	}
	return out
}

// GridComponents builds the canonical activating/activated component
// pair for one grid cell:
//
//	activating: (rep (OP1 (p-to-p passive a) (p-to-p active c)))
//	activated:  (rep (OP2 (p-to-p passive c) (p-to-p active d)))
func GridComponents(pair OperatorPair) (x, y *ch.Program) {
	x = &ch.Program{Name: "act_" + pair.Activating.String(), Body: &ch.Rep{Body: &ch.Op{
		Kind: pair.Activating,
		A:    &ch.Chan{Kind: ch.PToP, Act: ch.Passive, Name: "a"},
		B:    &ch.Chan{Kind: ch.PToP, Act: ch.Active, Name: "c"},
	}}}
	y = &ch.Program{Name: "low_" + pair.Activated.String(), Body: &ch.Rep{Body: &ch.Op{
		Kind: pair.Activated,
		A:    &ch.Chan{Kind: ch.PToP, Act: ch.Passive, Name: "c"},
		B:    &ch.Chan{Kind: ch.PToP, Act: ch.Active, Name: "d"},
	}}}
	return x, y
}

// PairResult is one cell's outcome in the Section 4.3 experiment.
type PairResult struct {
	Pair OperatorPair
	Err  error // nil when removal conforms; the mismatch otherwise
}

// VerifyAllPairsOrdered runs the full Section 4.3 experiment with the
// pairs checked concurrently, and returns the outcomes in grid order
// (deterministic, unlike map iteration). Each cell is an independent
// trace-theory check, so they fan out across the default worker pool.
func VerifyAllPairsOrdered() []PairResult {
	grid := VerificationGrid()
	out, _ := parallel.Map(nil, len(grid), func(i int) (PairResult, error) {
		x, y := GridComponents(grid[i])
		return PairResult{Pair: grid[i], Err: VerifyActivationChannelRemoval("c", x, y)}, nil
	})
	return out
}

// VerifyAllPairs runs the full Section 4.3 experiment and returns the
// outcome per pair. Semantic mismatches are reported in the map; use
// VerifyAllPairsOrdered when iteration order matters.
func VerifyAllPairs() map[OperatorPair]error {
	out := map[OperatorPair]error{}
	for _, r := range VerifyAllPairsOrdered() {
		out[r.Pair] = r.Err
	}
	return out
}

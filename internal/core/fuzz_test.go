package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"balsabm/internal/ch"
)

// fuzz generator for legal CH expressions (mirrors the chtobm fuzzer,
// kept local to avoid an internal test dependency).
type genCtx struct {
	rng  *rand.Rand
	next int
}

func (g *genCtx) fresh() string {
	g.next++
	return fmt.Sprintf("n%d", g.next)
}

func (g *genCtx) gen(act ch.Activity, depth int) ch.Expr {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		return &ch.Chan{Kind: ch.PToP, Act: act, Name: g.fresh()}
	}
	if act == ch.Active {
		kinds := []ch.OpKind{ch.EncEarly, ch.EncMiddle, ch.Seq}
		k := kinds[g.rng.Intn(len(kinds))]
		return &ch.Op{Kind: k, A: g.gen(ch.Active, depth-1), B: g.gen(ch.Active, depth-1)}
	}
	switch g.rng.Intn(5) {
	case 0:
		return &ch.Op{Kind: ch.EncEarly, A: g.gen(ch.Passive, depth-1), B: g.genAny(depth - 1)}
	case 1:
		return &ch.Op{Kind: ch.EncMiddle, A: g.gen(ch.Passive, depth-1), B: g.genAny(depth - 1)}
	case 2:
		return &ch.Op{Kind: ch.EncLate, A: g.gen(ch.Passive, depth-1), B: g.genAny(depth - 1)}
	case 3:
		return &ch.Op{Kind: ch.Seq, A: g.gen(ch.Passive, depth-1), B: g.genAny(depth - 1)}
	default:
		return &ch.Op{Kind: ch.Mutex, A: g.gen(ch.Passive, depth-1), B: g.gen(ch.Passive, depth-1)}
	}
}

func (g *genCtx) genAny(depth int) ch.Expr {
	if g.rng.Intn(2) == 0 {
		return g.gen(ch.Active, depth)
	}
	return g.gen(ch.Passive, depth)
}

// renameOneActiveLeaf picks one active p-to-p leaf and renames it to
// name, reporting success.
func renameOneActiveLeaf(e ch.Expr, rng *rand.Rand, name string) bool {
	var leaves []*ch.Chan
	ch.Walk(e, func(x ch.Expr) {
		if c, ok := x.(*ch.Chan); ok && c.Kind == ch.PToP && c.Act == ch.Active {
			leaves = append(leaves, c)
		}
	})
	if len(leaves) == 0 {
		return false
	}
	leaves[rng.Intn(len(leaves))].Name = name
	return true
}

// TestFuzzClusterConformance: for random activating/activated pairs,
// every merge that T1 would commit (i.e. the merged component is
// Burst-Mode synthesizable) must be conformation-equivalent to the
// composed pair with the channel hidden — the Section 4.3 property,
// fuzzed beyond the paper's single-operator grid.
func TestFuzzClusterConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(1962)) // SSEM's ancestor year, why not
	tried, verified := 0, 0
	for i := 0; i < 300 && verified < 80; i++ {
		g := &genCtx{rng: rng}
		// Activating component: passive activation enclosing a random
		// active expression, one of whose leaves becomes the channel.
		activeExpr := g.gen(ch.Active, rng.Intn(2)+1)
		if !renameOneActiveLeaf(activeExpr, rng, "chan") {
			continue
		}
		x := &ch.Program{Name: "act", Body: &ch.Rep{Body: &ch.Op{
			Kind: ch.EncEarly,
			A:    &ch.Chan{Kind: ch.PToP, Act: ch.Passive, Name: "go"},
			B:    activeExpr,
		}}}
		// Activated component: an enclosure of a random body within
		// the channel handshake (fresh names distinct from x's).
		g2 := &genCtx{rng: rng, next: 100}
		encs := []ch.OpKind{ch.EncEarly, ch.EncMiddle, ch.EncLate}
		y := &ch.Program{Name: "low", Body: &ch.Rep{Body: &ch.Op{
			Kind: encs[rng.Intn(len(encs))],
			A:    &ch.Chan{Kind: ch.PToP, Act: ch.Passive, Name: "chan"},
			B:    g2.genAny(rng.Intn(2) + 1),
		}}}
		if err := ch.Validate(x.Body); err != nil {
			continue
		}
		if err := ch.Validate(y.Body); err != nil {
			continue
		}
		merged, err := ActivationChannelRemoval("chan", x, y)
		if err != nil {
			continue
		}
		tried++
		if !synthesizable(merged, Options{}) {
			continue // T1 would skip this merge; nothing to verify
		}
		if err := VerifyActivationChannelRemoval("chan", x, y); err != nil {
			if errors.Is(err, ErrInterference) {
				// The composition itself needs the fundamental-mode
				// timing assumption; equivalence cannot be stated at
				// the speed-independent level. Not a merge bug.
				continue
			}
			t.Fatalf("iteration %d: committed merge is not behavior-preserving: %v\nactivating:\n%s\nactivated:\n%s",
				i, err, ch.Format(x.Body), ch.Format(y.Body))
		}
		verified++
	}
	if verified < 10 {
		t.Fatalf("only %d/%d merges verified; generator too restrictive", verified, tried)
	}
	t.Logf("verified %d committed merges (of %d candidates)", verified, tried)
}

// Package api defines the wire types shared by every machine-facing
// surface of the back-end: the balsabmd HTTP daemon, its Go client,
// and the CLI's -json output. The CLI encodes a local flow run with
// the exact same structs the server uses for its responses, so a
// result fetched over HTTP is byte-identical to one computed in
// process — which is what the end-to-end tests assert.
//
// It also holds FlowConfig, the extracted flow setup both entry
// points build their flow.Options from.
package api

import (
	"encoding/json"
	"fmt"

	"balsabm/internal/analysis"
	"balsabm/internal/bmlint"
	"balsabm/internal/core"
	"balsabm/internal/flow"
	"balsabm/internal/hazver"
	"balsabm/internal/netlint"
	"balsabm/internal/store"
)

// FlowConfig is the serializable subset of the flow's tuning knobs —
// the ones a remote caller may set. It is the single flow-setup
// struct shared by the CLI and the daemon.
type FlowConfig struct {
	// Workers bounds the per-run worker pool; 0 means all CPU cores.
	// It never changes results (the flow is deterministic at any
	// worker count), so it is excluded from dedup keys.
	Workers int `json:"workers,omitempty"`
	// MaxStates bounds the Burst-Mode state count of clustered
	// controllers (0 = unlimited).
	MaxStates int `json:"maxStates,omitempty"`
	// SkipAudit disables the exhaustive hazard audit of mapped
	// optimized controllers.
	SkipAudit bool `json:"skipAudit,omitempty"`
	// TimeLimit and EventLimit bound each benchmark simulation
	// (0 = the flow defaults).
	TimeLimit  float64 `json:"timeLimit,omitempty"`
	EventLimit int64   `json:"eventLimit,omitempty"`
}

// Options builds the flow configuration for one run, attaching the
// given metrics sink (nil for none).
func (c FlowConfig) Options(met *flow.Metrics) *flow.Options {
	return &flow.Options{
		Cluster:    core.Options{MaxStates: c.MaxStates},
		SkipAudit:  c.SkipAudit,
		TimeLimit:  c.TimeLimit,
		EventLimit: c.EventLimit,
		Workers:    c.Workers,
		Metrics:    met,
	}
}

// Key renders the result-affecting knobs as a deterministic dedup-key
// fragment. Workers is deliberately omitted: the flow produces
// identical results at any worker count.
func (c FlowConfig) Key() string {
	return fmt.Sprintf("maxStates=%d|skipAudit=%t|timeLimit=%g|eventLimit=%d",
		c.MaxStates, c.SkipAudit, c.TimeLimit, c.EventLimit)
}

// Job kinds accepted by the daemon.
const (
	// KindDesign runs the full two-arm flow (synthesis + benchmark
	// simulation) on one named built-in design.
	KindDesign = "design"
	// KindTable3 runs the full flow on all Table 3 designs.
	KindTable3 = "table3"
	// KindSynth synthesizes a submitted design (CH control netlist or
	// Balsa source) into mapped gate netlists, without simulation.
	KindSynth = "synth"
)

// Source formats for KindSynth.
const (
	FormatCH    = "ch"    // a CH control netlist: one or more (program ...) forms
	FormatBalsa = "balsa" // Balsa-subset source text
)

// FormatBMS is a Burst-Mode specification in .bms text form; accepted
// only by POST /api/v1/bmlint, which lints the spec directly instead
// of compiling a design.
const FormatBMS = "bms"

// Synthesis modes for KindSynth.
const (
	// ModeUnopt is the baseline arm: the netlist as submitted,
	// area-shared mapping (hand-library shapes where they apply).
	ModeUnopt = "unopt"
	// ModeOpt is the paper's arm: clustering, then speed-split
	// mapping. The default.
	ModeOpt = "opt"
)

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// JobRequest is the body of POST /api/v1/jobs.
type JobRequest struct {
	Kind   string     `json:"kind"`
	Design string     `json:"design,omitempty"` // KindDesign: a built-in design name
	Source string     `json:"source,omitempty"` // KindSynth: design text
	Format string     `json:"format,omitempty"` // KindSynth: "ch" (default) or "balsa"
	Name   string     `json:"name,omitempty"`   // KindSynth+balsa: design name for the compiler
	Mode   string     `json:"mode,omitempty"`   // KindSynth: "opt" (default) or "unopt"
	Config FlowConfig `json:"config"`
	// BaseJobID marks an incremental resubmission: the ID of a prior
	// job this request is an edit of. Submission fails if the ID is
	// unknown. It never changes the result — the daemon's controller
	// cache already reuses every unchanged canonical subtree — so it is
	// excluded from the dedup key; it declares intent and is echoed in
	// JobStatus so clients can correlate edit loops.
	BaseJobID string `json:"baseJobID,omitempty"`
}

// JobStatus describes one job.
type JobStatus struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	State string `json:"state"`
	// Dedup reports that the job's result came from the dedup cache —
	// an identical design (same canonical key) was already synthesized
	// or in flight, so this job did not re-run the flow.
	Dedup bool `json:"dedup,omitempty"`
	// Key is the job's canonical dedup key digest.
	Key string `json:"key,omitempty"`
	// Disk reports that the job's result came from the on-disk artifact
	// cache — a prior daemon run (or an earlier job this run) already
	// synthesized the identical design and its blob survived restart.
	Disk bool `json:"disk,omitempty"`
	// ResumedFrom names the last pipeline stage checkpointed before the
	// daemon was interrupted, for jobs re-enqueued from the journal at
	// boot; completed stages restore from disk instead of recomputing.
	ResumedFrom string `json:"resumedFrom,omitempty"`
	// BaseJobID echoes the incremental base named in the request.
	BaseJobID string `json:"baseJobID,omitempty"`
	// ControllersReused / ControllersResynthesized report the job's
	// incremental resynthesis split: distinct canonical controller
	// shapes spliced in from the controller cache vs. synthesized
	// afresh. Zero for dedup- and disk-served jobs, which never reached
	// the synthesis layer.
	ControllersReused        int64  `json:"controllersReused,omitempty"`
	ControllersResynthesized int64  `json:"controllersResynthesized,omitempty"`
	Error                    string `json:"error,omitempty"`
	Created                  string `json:"created,omitempty"`
	Started                  string `json:"started,omitempty"`
	Finished                 string `json:"finished,omitempty"`
}

// ControllerJSON mirrors flow.ControllerResult.
type ControllerJSON struct {
	Name      string  `json:"name"`
	States    int     `json:"states"`
	StateBits int     `json:"stateBits"`
	Products  int     `json:"products"`
	Cells     int     `json:"cells"`
	Area      float64 `json:"area"`
	Critical  float64 `json:"critical"`
	// Exact reports the controller minimized entirely on the exact
	// path (no greedy fallback in enumeration or covering).
	Exact bool `json:"exact"`
}

// StaticJSON mirrors netlint.Stats: the static report for a merged
// gate-level circuit.
type StaticJSON struct {
	Cells       int     `json:"cells"`
	Nets        int     `json:"nets"`
	Literals    int     `json:"literals"`
	Transistors int     `json:"transistors"`
	Area        float64 `json:"area"`
	Depth       int     `json:"depth"`
	Critical    float64 `json:"critical"`
}

// ArmJSON mirrors flow.ArmResult.
type ArmJSON struct {
	Controllers  []ControllerJSON `json:"controllers"`
	ControlArea  float64          `json:"controlArea"`
	DatapathArea float64          `json:"datapathArea"`
	BenchTime    float64          `json:"benchTime"`
	Events       int64            `json:"events"`
	TotalArea    float64          `json:"totalArea"`
	// Static is the netlint static report for the arm's merged control
	// circuit.
	Static StaticJSON `json:"static"`
}

// MergeJSON mirrors core.Merge.
type MergeJSON struct {
	Channel   string `json:"channel"`
	Activator string `json:"activator"`
	Activated string `json:"activated"`
	Result    string `json:"result"`
}

// ReportJSON mirrors core.Report.
type ReportJSON struct {
	Merges        []MergeJSON       `json:"merges,omitempty"`
	Skipped       []string          `json:"skipped,omitempty"`
	CallsSplit    []string          `json:"callsSplit,omitempty"`
	CallsRestored []string          `json:"callsRestored,omitempty"`
	Containment   map[string]string `json:"containment,omitempty"`
}

// DesignResultJSON is one Table 3 row with full per-controller detail.
type DesignResultJSON struct {
	Design              string      `json:"design"`
	Bench               string      `json:"bench"`
	Unopt               ArmJSON     `json:"unopt"`
	Opt                 ArmJSON     `json:"opt"`
	SpeedImprovementPct float64     `json:"speedImprovementPct"`
	AreaOverheadPct     float64     `json:"areaOverheadPct"`
	Report              *ReportJSON `json:"report,omitempty"`
}

// SynthControllerJSON is one synthesized controller of a KindSynth
// job: its summary numbers and its mapped netlist as structural
// Verilog.
type SynthControllerJSON struct {
	Controller ControllerJSON `json:"controller"`
	Verilog    string         `json:"verilog"`
}

// SynthResultJSON is the result of a KindSynth job.
type SynthResultJSON struct {
	Mode        string                `json:"mode"`
	Controllers []SynthControllerJSON `json:"controllers"`
	Report      *ReportJSON           `json:"report,omitempty"`
	// Netlint is the structural audit of the merged circuit of all
	// synthesized controllers (gates.Merge wiring).
	Netlint *NetlintReportJSON `json:"netlint,omitempty"`
	// Hazver is the static hazard verification of the synthesized
	// controller shapes on their specified bursts.
	Hazver *HazverReportJSON `json:"hazver,omitempty"`
}

// JobResult is the body of GET /api/v1/jobs/{id}/result; exactly one
// of the payload fields is set, matching the job's kind.
type JobResult struct {
	Kind   string              `json:"kind"`
	Design *DesignResultJSON   `json:"design,omitempty"`
	Table3 []*DesignResultJSON `json:"table3,omitempty"`
	Synth  *SynthResultJSON    `json:"synth,omitempty"`
}

// Event is one element of a job's progress stream.
type Event struct {
	Seq  int64  `json:"seq"`
	Type string `json:"type"` // "state", "stage", "checkpoint", "lint", "error"
	// State carries the new job state for "state" events.
	State string `json:"state,omitempty"`
	// Dedup marks the terminal "state" event of a dedup-served job.
	Dedup bool `json:"dedup,omitempty"`
	// Disk marks the terminal "state" event of a job served from the
	// on-disk artifact cache.
	Disk bool `json:"disk,omitempty"`
	// Stage carries the persisted stage name for "checkpoint" events
	// (emitted when a pipeline stage's payload lands in the durable
	// store), and cumulative per-stage counters for "stage" events (see
	// parallel.Timings).
	Stage       string `json:"stage,omitempty"`
	Count       int64  `json:"count,omitempty"`
	TotalMicros int64  `json:"totalMicros,omitempty"`
	// ControllersReused / ControllersResynthesized ride the terminal
	// "state" event of an executed job: its incremental resynthesis
	// split (see JobStatus).
	ControllersReused        int64  `json:"controllersReused,omitempty"`
	ControllersResynthesized int64  `json:"controllersResynthesized,omitempty"`
	Error                    string `json:"error,omitempty"`
	// Lint carries one analyzer finding for "lint" events: the
	// non-error diagnostics the pre-synthesis gate surfaced.
	Lint *DiagJSON `json:"lint,omitempty"`
	// Netlint carries one netlist finding for "lint" events: the
	// non-error diagnostics the post-merge netlint gate surfaced. Its
	// Circuit field names the audited circuit (e.g. "stack.opt").
	Netlint *NetlintDiagJSON `json:"netlint,omitempty"`
	// Bmlint carries one Burst-Mode spec finding for "lint" events: the
	// non-error diagnostics the post-compile bmlint gate surfaced. Its
	// Spec field names the audited spec (e.g. "stack.opt.push_seq1").
	Bmlint *BmlintDiagJSON `json:"bmlint,omitempty"`
	// Hazver carries one static hazard-verification finding for "lint"
	// events: the non-error diagnostics the post-mapping hazver gate
	// surfaced. Its Circuit field names the verified circuit (e.g.
	// "stack.opt").
	Hazver *HazverDiagJSON `json:"hazver,omitempty"`
}

// StageJSON is one pipeline stage's cumulative counters.
type StageJSON struct {
	Count       int64 `json:"count"`
	TotalMicros int64 `json:"totalMicros"`
}

// MetricsJSON is the JSON form of the daemon's counters
// (GET /api/v1/metrics; /metrics serves the same data in Prometheus
// text format).
type MetricsJSON struct {
	JobsByState     map[string]int64 `json:"jobsByState"`
	QueueDepth      int64            `json:"queueDepth"`
	DedupHits       int64            `json:"dedupHits"`
	DedupMisses     int64            `json:"dedupMisses"`
	FlowCacheHits   int64            `json:"flowCacheHits"`
	FlowCacheMisses int64            `json:"flowCacheMisses"`
	// Minimizer work counters aggregated over every flow the daemon
	// ran: functions minimized on the exact path vs. with a greedy
	// fallback, and nodes visited by the prime enumeration and the
	// covering branch-and-bound.
	MinimizeExact  int64                `json:"minimizeExact"`
	MinimizeGreedy int64                `json:"minimizeGreedy"`
	EnumNodes      int64                `json:"enumNodes"`
	BranchNodes    int64                `json:"branchNodes"`
	Stages         map[string]StageJSON `json:"stages"`
	// Result-cache tiers: a submitted job is answered from the on-disk
	// artifact store (StoreDiskHits), the in-memory single-flight memo
	// (StoreMemHits), or executes the flow afresh (StoreMisses).
	StoreDiskHits int64 `json:"storeDiskHits"`
	StoreMemHits  int64 `json:"storeMemHits"`
	StoreMisses   int64 `json:"storeMisses"`
	// JobsResumed counts jobs re-enqueued from the journal at boot —
	// submissions that never reached a terminal state before the
	// previous daemon process stopped.
	JobsResumed int64 `json:"jobsResumed"`
	// Checkpoint traffic across every executed job: stages persisted to
	// the durable store and stages restored from it.
	CheckpointsSaved    int64 `json:"checkpointsSaved"`
	CheckpointsRestored int64 `json:"checkpointsRestored"`
	// Incremental resynthesis split across every executed job: distinct
	// canonical controller shapes served from the controller-grain
	// artifact cache vs. synthesized afresh (also exported as
	// balsabmd_incremental_controllers_total{outcome=...}).
	ControllersReused        int64 `json:"controllersReused"`
	ControllersResynthesized int64 `json:"controllersResynthesized"`
	// Store summarizes the artifact cache on disk; present only when the
	// daemon runs with a data directory.
	Store *StoreStatsJSON `json:"store,omitempty"`
	// NetlintDiags counts netlist diagnostics by NLxxx code across
	// every flow the daemon ran (also exported as
	// balsabmd_netlint_diags_total{code=...}).
	NetlintDiags map[string]int64 `json:"netlintDiags,omitempty"`
	// BmlintDiags counts Burst-Mode spec diagnostics by BMxxx code
	// across every flow the daemon ran (also exported as
	// balsabmd_bmlint_diags_total{code=...}).
	BmlintDiags map[string]int64 `json:"bmlintDiags,omitempty"`
	// HazverDiags counts static hazard-verification diagnostics by
	// HZxxx code across every flow the daemon ran (also exported as
	// balsabmd_hazver_diags_total{code=...}).
	HazverDiags map[string]int64 `json:"hazverDiags,omitempty"`
}

// StoreStatsJSON summarizes the daemon's on-disk artifact store
// (mirrors store.Stats; present in MetricsJSON only when the daemon
// runs with a data directory). `balsabm cache stats -json` emits the
// same shape, so scripts read one schema for both surfaces.
type StoreStatsJSON struct {
	Artifacts     int   `json:"artifacts"`
	ArtifactBytes int64 `json:"artifactBytes"`
	Refs          int   `json:"refs"`
	// ControllerRefs counts controller-grain refs — the durable tier
	// behind incremental resynthesis.
	ControllerRefs int `json:"controllerRefs"`
	Checkpoints    int `json:"checkpoints"`
	// Corrupt counts artifacts that failed read-back verification this
	// daemon session (each was removed and recomputed).
	Corrupt int64 `json:"corrupt"`
}

// FromStoreStats converts a store summary to its wire form — the one
// conversion both the daemon's /metrics and `balsabm cache stats
// -json` go through, so the two surfaces agree byte for byte.
func FromStoreStats(st store.Stats) *StoreStatsJSON {
	return &StoreStatsJSON{
		Artifacts:      st.Artifacts,
		ArtifactBytes:  st.ArtifactBytes,
		Refs:           st.Refs,
		ControllerRefs: st.ControllerRefs,
		Checkpoints:    st.Checkpoints,
		Corrupt:        st.Corrupt,
	}
}

// FromControllerResult converts one controller summary.
func FromControllerResult(c flow.ControllerResult) ControllerJSON {
	return ControllerJSON{
		Name: c.Name, States: c.States, StateBits: c.StateBits,
		Products: c.Products, Cells: c.Cells, Area: c.Area, Critical: c.Critical,
		Exact: c.Exact,
	}
}

// FromArmResult converts one flow arm.
func FromArmResult(a flow.ArmResult) ArmJSON {
	out := ArmJSON{
		ControlArea:  a.ControlArea,
		DatapathArea: a.DatapathArea,
		BenchTime:    a.BenchTime,
		Events:       a.Events,
		TotalArea:    a.TotalArea(),
		Static:       FromStats(a.Static),
		Controllers:  make([]ControllerJSON, 0, len(a.Controllers)),
	}
	for _, c := range a.Controllers {
		out.Controllers = append(out.Controllers, FromControllerResult(c))
	}
	return out
}

// FromReport converts a clustering report (nil in, nil out).
func FromReport(rep *core.Report) *ReportJSON {
	if rep == nil {
		return nil
	}
	out := &ReportJSON{
		Skipped:       rep.Skipped,
		CallsSplit:    rep.CallsSplit,
		CallsRestored: rep.CallsRestored,
		Containment:   rep.Containment,
	}
	for _, m := range rep.Merges {
		out.Merges = append(out.Merges, MergeJSON{
			Channel: m.Channel, Activator: m.Activator,
			Activated: m.Activated, Result: m.Result,
		})
	}
	return out
}

// FromDesignResult converts one Table 3 row.
func FromDesignResult(r *flow.DesignResult) *DesignResultJSON {
	return &DesignResultJSON{
		Design:              r.Design,
		Bench:               r.Bench,
		Unopt:               FromArmResult(r.Unopt),
		Opt:                 FromArmResult(r.Opt),
		SpeedImprovementPct: r.SpeedImprovement(),
		AreaOverheadPct:     r.AreaOverhead(),
		Report:              FromReport(r.Report),
	}
}

// FromDesignResults converts a result list in order.
func FromDesignResults(rs []*flow.DesignResult) []*DesignResultJSON {
	out := make([]*DesignResultJSON, len(rs))
	for i, r := range rs {
		out[i] = FromDesignResult(r)
	}
	return out
}

// ToFlow converts a wire-form row back into the flow's result type,
// so remote results render through the same Table 3 / flow-report
// formatters as local ones.
func (d *DesignResultJSON) ToFlow() *flow.DesignResult {
	arm := func(a ArmJSON) flow.ArmResult {
		out := flow.ArmResult{
			ControlArea:  a.ControlArea,
			DatapathArea: a.DatapathArea,
			BenchTime:    a.BenchTime,
			Events:       a.Events,
			Static:       a.Static.ToStats(),
			Controllers:  make([]flow.ControllerResult, 0, len(a.Controllers)),
		}
		for _, c := range a.Controllers {
			out.Controllers = append(out.Controllers, flow.ControllerResult{
				Name: c.Name, States: c.States, StateBits: c.StateBits,
				Products: c.Products, Cells: c.Cells, Area: c.Area, Critical: c.Critical,
				Exact: c.Exact,
			})
		}
		return out
	}
	return &flow.DesignResult{
		Design: d.Design,
		Bench:  d.Bench,
		Unopt:  arm(d.Unopt),
		Opt:    arm(d.Opt),
	}
}

// LintRequest is the body of POST /api/v1/lint: CH source to analyze
// (a netlist of (program ...) forms or a single bare expression) and
// an optional file name echoed into the result for rendering.
type LintRequest struct {
	Source string `json:"source"`
	File   string `json:"file,omitempty"`
}

// DiagJSON mirrors analysis.Diag. Line and Col are omitted for
// findings on programmatically built nodes, matching the text
// renderer's position-free form.
type DiagJSON struct {
	Line     int      `json:"line,omitempty"`
	Col      int      `json:"col,omitempty"`
	Severity string   `json:"severity"`
	Code     string   `json:"code"`
	Message  string   `json:"message"`
	Notes    []string `json:"notes,omitempty"`
}

// LintResultJSON is the body answered by POST /api/v1/lint and emitted
// by `balsabm lint -json` — the same struct through the same encoder,
// so the two surfaces are byte-identical for the same input.
type LintResultJSON struct {
	File     string     `json:"file,omitempty"`
	Diags    []DiagJSON `json:"diags"`
	Errors   int        `json:"errors"`
	Warnings int        `json:"warnings"`
	Infos    int        `json:"infos"`
}

// FromDiag converts one analyzer finding.
func FromDiag(d analysis.Diag) DiagJSON {
	return DiagJSON{
		Line:     d.Loc.Line,
		Col:      d.Loc.Col,
		Severity: d.Severity.String(),
		Code:     d.Code,
		Message:  d.Message,
		Notes:    d.Notes,
	}
}

// LintResult packages a diagnostic list for the wire. Diags is always
// non-nil so a clean lint encodes as [] rather than null.
func LintResult(file string, ds []analysis.Diag) *LintResultJSON {
	out := &LintResultJSON{File: file, Diags: make([]DiagJSON, 0, len(ds))}
	for _, d := range ds {
		out.Diags = append(out.Diags, FromDiag(d))
	}
	out.Errors, out.Warnings, out.Infos = analysis.Count(ds)
	return out
}

// NetlintRequest is the body of POST /api/v1/netlint: design source to
// synthesize (without simulation) and structurally audit. Fields match
// the KindSynth job request: Source in the given Format ("ch" default,
// "balsa"), Mode selecting the arm ("opt" default, "unopt"), and the
// flow config.
type NetlintRequest struct {
	Source string     `json:"source"`
	Format string     `json:"format,omitempty"`
	Name   string     `json:"name,omitempty"`
	Mode   string     `json:"mode,omitempty"`
	Config FlowConfig `json:"config"`
}

// NetlintDiagJSON mirrors netlint.Diag. Inst and Net are -1 for
// circuit-level findings, matching netlint.NoLoc.
type NetlintDiagJSON struct {
	// Circuit names the audited circuit on event streams (e.g.
	// "stack.opt"); omitted inside NetlintReportJSON, whose Circuit
	// field carries it once.
	Circuit  string   `json:"circuit,omitempty"`
	Inst     int      `json:"inst"`
	Cell     string   `json:"cell,omitempty"`
	Net      int      `json:"net"`
	Name     string   `json:"name,omitempty"`
	Severity string   `json:"severity"`
	Code     string   `json:"code"`
	Message  string   `json:"message"`
	Notes    []string `json:"notes,omitempty"`
}

// NetlintReportJSON is the audit of one circuit: its diagnostics and
// static report, with severity tallies.
type NetlintReportJSON struct {
	Circuit  string            `json:"circuit"`
	Static   StaticJSON        `json:"static"`
	Diags    []NetlintDiagJSON `json:"diags"`
	Errors   int               `json:"errors"`
	Warnings int               `json:"warnings"`
	Infos    int               `json:"infos"`
}

// NetlintResultJSON is the body answered by POST /api/v1/netlint and
// emitted by `balsabm netlint -json`: per-controller audits plus the
// merged-circuit audit.
type NetlintResultJSON struct {
	Mode        string              `json:"mode"`
	Controllers []NetlintReportJSON `json:"controllers"`
	Merged      NetlintReportJSON   `json:"merged"`
}

// FromStats converts a static report.
func FromStats(s netlint.Stats) StaticJSON {
	return StaticJSON{
		Cells: s.Cells, Nets: s.Nets, Literals: s.Literals,
		Transistors: s.Transistors, Area: s.Area, Depth: s.Depth, Critical: s.Critical,
	}
}

// ToStats converts a wire-form static report back.
func (s StaticJSON) ToStats() netlint.Stats {
	return netlint.Stats{
		Cells: s.Cells, Nets: s.Nets, Literals: s.Literals,
		Transistors: s.Transistors, Area: s.Area, Depth: s.Depth, Critical: s.Critical,
	}
}

// FromNetlintDiag converts one netlist finding.
func FromNetlintDiag(d netlint.Diag) NetlintDiagJSON {
	return NetlintDiagJSON{
		Inst:     d.Loc.Inst,
		Cell:     d.Loc.Cell,
		Net:      d.Loc.Net,
		Name:     d.Loc.Name,
		Severity: d.Severity.String(),
		Code:     d.Code,
		Message:  d.Message,
		Notes:    d.Notes,
	}
}

// NetlintReport packages one audit result for the wire. Diags is
// always non-nil so a clean audit encodes as [] rather than null.
func NetlintReport(res netlint.Result) NetlintReportJSON {
	out := NetlintReportJSON{
		Circuit: res.Name,
		Static:  FromStats(res.Stats),
		Diags:   make([]NetlintDiagJSON, 0, len(res.Diags)),
	}
	for _, d := range res.Diags {
		out.Diags = append(out.Diags, FromNetlintDiag(d))
	}
	out.Errors, out.Warnings, out.Infos = netlint.Count(res.Diags)
	return out
}

// NetlintResult packages a synthesize-and-audit run (per-controller
// audits plus the merged circuit) for the wire. Controllers is always
// non-nil so an empty netlist encodes as [] rather than null.
func NetlintResult(mode string, ctrls []netlint.Result, merged netlint.Result) *NetlintResultJSON {
	out := &NetlintResultJSON{
		Mode:        mode,
		Controllers: make([]NetlintReportJSON, 0, len(ctrls)),
		Merged:      NetlintReport(merged),
	}
	for _, c := range ctrls {
		out.Controllers = append(out.Controllers, NetlintReport(c))
	}
	return out
}

// BmlintRequest is the body of POST /api/v1/bmlint: either a CH
// design whose components are compiled to Burst-Mode specifications
// and audited (Format "ch" default, "balsa"), or a single .bms spec
// linted directly (Format "bms").
type BmlintRequest struct {
	Source string `json:"source"`
	Format string `json:"format,omitempty"`
	Name   string `json:"name,omitempty"`
}

// BmlintDiagJSON mirrors bmlint.Diag. State and Arc are -1 for
// spec-level findings, matching bmlint.NoLoc.
type BmlintDiagJSON struct {
	// Spec names the audited spec on event streams (e.g.
	// "stack.opt.push_seq1"); omitted inside BmlintReportJSON, whose
	// Spec field carries it once.
	Spec     string   `json:"spec,omitempty"`
	State    int      `json:"state"`
	Arc      int      `json:"arc"`
	ArcText  string   `json:"arcText,omitempty"`
	Sig      string   `json:"sig,omitempty"`
	Severity string   `json:"severity"`
	Code     string   `json:"code"`
	Message  string   `json:"message"`
	Notes    []string `json:"notes,omitempty"`
}

// BmStatsJSON mirrors bmlint.Stats: the BM200 static complexity
// report for one spec.
type BmStatsJSON struct {
	States  int    `json:"states"`
	Arcs    int    `json:"arcs"`
	Inputs  int    `json:"inputs"`
	Outputs int    `json:"outputs"`
	MaxIn   int    `json:"maxIn"`
	MaxOut  int    `json:"maxOut"`
	Toggles int    `json:"toggles"`
	Worst   string `json:"worst,omitempty"`
	WorstN  int    `json:"worstN"`
	Budget  int    `json:"budget"`
}

// BmlintReportJSON is the audit of one Burst-Mode specification: its
// diagnostics and static report, with severity tallies.
type BmlintReportJSON struct {
	Spec     string           `json:"spec"`
	Stats    BmStatsJSON      `json:"stats"`
	Diags    []BmlintDiagJSON `json:"diags"`
	Errors   int              `json:"errors"`
	Warnings int              `json:"warnings"`
	Infos    int              `json:"infos"`
}

// BmlintResultJSON is the body answered by POST /api/v1/bmlint and
// emitted by `balsabm bmlint -json`: one audit per compiled component
// spec (a single entry for Format "bms"). Design and Mode tag the
// built-in-designs CLI mode and are empty on file/endpoint results.
type BmlintResultJSON struct {
	Design string             `json:"design,omitempty"`
	Mode   string             `json:"mode,omitempty"`
	Specs  []BmlintReportJSON `json:"specs"`
}

// FromBmStats converts a spec complexity report.
func FromBmStats(s bmlint.Stats) BmStatsJSON {
	return BmStatsJSON{
		States: s.States, Arcs: s.Arcs, Inputs: s.Inputs, Outputs: s.Outputs,
		MaxIn: s.MaxIn, MaxOut: s.MaxOut, Toggles: s.Toggles,
		Worst: s.Worst, WorstN: s.WorstN, Budget: s.Budget,
	}
}

// FromBmlintDiag converts one spec finding.
func FromBmlintDiag(d bmlint.Diag) BmlintDiagJSON {
	return BmlintDiagJSON{
		State:    d.Loc.State,
		Arc:      d.Loc.Arc,
		ArcText:  d.Loc.ArcText,
		Sig:      d.Loc.Sig,
		Severity: d.Severity.String(),
		Code:     d.Code,
		Message:  d.Message,
		Notes:    d.Notes,
	}
}

// BmlintReport packages one spec audit for the wire. Diags is always
// non-nil so a clean audit encodes as [] rather than null.
func BmlintReport(res bmlint.Result) BmlintReportJSON {
	out := BmlintReportJSON{
		Spec:  res.Name,
		Stats: FromBmStats(res.Stats),
		Diags: make([]BmlintDiagJSON, 0, len(res.Diags)),
	}
	for _, d := range res.Diags {
		out.Diags = append(out.Diags, FromBmlintDiag(d))
	}
	out.Errors, out.Warnings, out.Infos = bmlint.Count(res.Diags)
	return out
}

// BmlintResult packages a compile-and-audit run for the wire. Specs is
// always non-nil so an empty netlist encodes as [] rather than null.
func BmlintResult(specs []bmlint.Result) *BmlintResultJSON {
	out := &BmlintResultJSON{Specs: make([]BmlintReportJSON, 0, len(specs))}
	for _, s := range specs {
		out.Specs = append(out.Specs, BmlintReport(s))
	}
	return out
}

// HazverRequest is the body of POST /api/v1/hazver: design source
// whose controllers are synthesized, mapped, and statically verified
// hazard-free on their specified bursts. Fields match the KindSynth
// job request: Source in the given Format ("ch" default, "balsa"),
// Mode selecting the arm ("opt" default, "unopt"), and the flow
// config.
type HazverRequest struct {
	Source string     `json:"source"`
	Format string     `json:"format,omitempty"`
	Name   string     `json:"name,omitempty"`
	Mode   string     `json:"mode,omitempty"`
	Config FlowConfig `json:"config"`
}

// HazverDiagJSON mirrors hazver.Diag. Tr is -1 for function-level
// findings, matching hazver.NoLoc.
type HazverDiagJSON struct {
	// Circuit names the verified circuit on event streams (e.g.
	// "stack.opt"); omitted inside HazverReportJSON, whose Circuit
	// field carries it once.
	Circuit  string   `json:"circuit,omitempty"`
	Fn       string   `json:"fn,omitempty"`
	Tr       int      `json:"tr"`
	Burst    string   `json:"burst,omitempty"`
	Severity string   `json:"severity"`
	Code     string   `json:"code"`
	Message  string   `json:"message"`
	Notes    []string `json:"notes,omitempty"`
}

// HazverStatsJSON mirrors hazver.Stats: the static report for one
// hazard-verification audit.
type HazverStatsJSON struct {
	Units      int  `json:"units"`
	Skipped    int  `json:"skipped"`
	Functions  int  `json:"functions"`
	Bursts     int  `json:"bursts"`
	Unverified int  `json:"unverified"`
	Passes     int  `json:"passes"`
	MaxXDepth  int  `json:"maxXDepth"`
	Compiled   bool `json:"compiled"`
}

// HazverReportJSON is the verification of one circuit: its
// diagnostics and static report, with severity tallies.
type HazverReportJSON struct {
	Circuit  string           `json:"circuit"`
	Stats    HazverStatsJSON  `json:"stats"`
	Diags    []HazverDiagJSON `json:"diags"`
	Errors   int              `json:"errors"`
	Warnings int              `json:"warnings"`
	Infos    int              `json:"infos"`
}

// HazverResultJSON is the body answered by POST /api/v1/hazver and
// emitted by `balsabm hazver -json`.
type HazverResultJSON struct {
	Mode   string           `json:"mode"`
	Report HazverReportJSON `json:"report"`
}

// FromHazverDiag converts one hazard-verification finding.
func FromHazverDiag(d hazver.Diag) HazverDiagJSON {
	return HazverDiagJSON{
		Fn:       d.Loc.Fn,
		Tr:       d.Loc.Tr,
		Burst:    d.Loc.Burst,
		Severity: d.Severity.String(),
		Code:     d.Code,
		Message:  d.Message,
		Notes:    d.Notes,
	}
}

// FromHazverStats converts a hazard-verification static report.
func FromHazverStats(s hazver.Stats) HazverStatsJSON {
	return HazverStatsJSON{
		Units: s.Units, Skipped: s.Skipped, Functions: s.Functions,
		Bursts: s.Bursts, Unverified: s.Unverified, Passes: s.Passes,
		MaxXDepth: s.MaxXDepth, Compiled: s.Compiled,
	}
}

// HazverReport packages one audit result for the wire. Diags is
// always non-nil so a clean audit encodes as [] rather than null.
func HazverReport(res hazver.Result) HazverReportJSON {
	out := HazverReportJSON{
		Circuit: res.Name,
		Stats:   FromHazverStats(res.Stats),
		Diags:   make([]HazverDiagJSON, 0, len(res.Diags)),
	}
	for _, d := range res.Diags {
		out.Diags = append(out.Diags, FromHazverDiag(d))
	}
	out.Errors, out.Warnings, out.Infos = hazver.Count(res.Diags)
	return out
}

// HazverResult packages a synthesize-and-verify run for the wire.
func HazverResult(mode string, res hazver.Result) *HazverResultJSON {
	return &HazverResultJSON{Mode: mode, Report: HazverReport(res)}
}

// AuditCheckerJSON is one checker's tally inside an audit: its
// error/warning counts and how many items it covered (specs, covers,
// mapped controllers, circuits, bursts — whichever the checker
// counts).
type AuditCheckerJSON struct {
	Errors   int `json:"errors"`
	Warnings int `json:"warnings"`
	Checked  int `json:"checked"`
}

// AuditResultJSON is one design's six-checker audit in machine form —
// the body emitted per design by `balsabm audit -json`. Checkers is
// keyed "chlint", "bmlint", "covers", "mapped", "netlint", "hazver".
type AuditResultJSON struct {
	Design   string                      `json:"design"`
	OK       bool                        `json:"ok"`
	Summary  string                      `json:"summary"`
	Checkers map[string]AuditCheckerJSON `json:"checkers"`
	Failures []string                    `json:"failures,omitempty"`
	Errors   int                         `json:"errors"`
	Warnings int                         `json:"warnings"`
}

// FromAuditResult converts one design audit to its wire form.
func FromAuditResult(a *flow.AuditResult) *AuditResultJSON {
	le, lw, _ := analysis.Count(a.LintDiags)
	var be, bw int
	for _, s := range a.Specs {
		e, w, _ := bmlint.Count(s.Diags)
		be += e
		bw += w
	}
	var ne, nw int
	for _, c := range a.Circuits {
		e, w, _ := netlint.Count(c.Diags)
		ne += e
		nw += w
	}
	var he, hw, hb int
	for _, h := range a.Hazver {
		e, w, _ := hazver.Count(h.Diags)
		he += e
		hw += w
		hb += h.Stats.Bursts
	}
	return &AuditResultJSON{
		Design:  a.Design,
		OK:      a.OK(),
		Summary: a.Summary(),
		Checkers: map[string]AuditCheckerJSON{
			"chlint":  {Errors: le, Warnings: lw, Checked: 1},
			"bmlint":  {Errors: be, Warnings: bw, Checked: a.SpecsChecked},
			"covers":  {Checked: a.CoversChecked},
			"mapped":  {Checked: a.MappedChecked},
			"netlint": {Errors: ne, Warnings: nw, Checked: len(a.Circuits)},
			"hazver":  {Errors: he, Warnings: hw, Checked: hb},
		},
		Failures: a.Failures,
		Errors:   a.Errors(),
		Warnings: a.Warnings(),
	}
}

// Encode renders any wire value in the canonical machine-readable
// form: two-space-indented JSON with a trailing newline. Both the
// server responses and the CLI's -json output go through this one
// encoder, so equal values encode to equal bytes everywhere.
func Encode(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

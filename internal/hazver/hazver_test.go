package hazver

import (
	"fmt"
	"strings"
	"testing"

	"balsabm/internal/cell"
	"balsabm/internal/diag"
	"balsabm/internal/gates"
	"balsabm/internal/hfmin"
	"balsabm/internal/parallel"
)

// unit1 builds a one-output unit over the given variables with the
// given netlist and transitions.
func unit1(nl *gates.Netlist, vars []string, trs ...hfmin.Transition) Unit {
	return Unit{
		Name:        nl.Name,
		Vars:        vars,
		Outputs:     []string{"z"},
		Transitions: map[string][]hfmin.Transition{"z": trs},
		Netlist:     nl,
	}
}

// glitchyMux is the textbook static-1 hazard: z = a·b + ¬a·c without
// the consensus term b·c. For a falling with b=c=1 the specification
// holds z at 1, but the decomposition can glitch.
func glitchyMux() *gates.Netlist {
	nl := gates.New("mux")
	a, b, c := nl.Net("a"), nl.Net("b"), nl.Net("c")
	nl.Inputs = append(nl.Inputs, a, b, c)
	t1, na, t2 := nl.Net("t1"), nl.Net("na"), nl.Net("t2")
	z := nl.Net("z")
	nl.Outputs = append(nl.Outputs, z)
	nl.AddInstance("AND2", []int{a, b}, t1, 0)
	nl.AddInstance("INV", []int{a}, na, 0)
	nl.AddInstance("AND2", []int{na, c}, t2, 0)
	nl.AddInstance("OR2", []int{t1, t2}, z, 0)
	return nl
}

// cleanMux adds the consensus term, making the same function
// hazard-free for the same burst.
func cleanMux() *gates.Netlist {
	nl := gates.New("mux")
	a, b, c := nl.Net("a"), nl.Net("b"), nl.Net("c")
	nl.Inputs = append(nl.Inputs, a, b, c)
	t1, na, t2, t3 := nl.Net("t1"), nl.Net("na"), nl.Net("t2"), nl.Net("t3")
	z := nl.Net("z")
	nl.Outputs = append(nl.Outputs, z)
	nl.AddInstance("AND2", []int{a, b}, t1, 0)
	nl.AddInstance("INV", []int{a}, na, 0)
	nl.AddInstance("AND2", []int{na, c}, t2, 0)
	nl.AddInstance("AND2", []int{b, c}, t3, 0)
	nl.AddInstance("OR3", []int{t1, t2, t3}, z, 0)
	return nl
}

// aFalls is the burst a- with b=c=1 and z specified stable at 1.
var aFalls = hfmin.Transition{
	Start: []bool{true, true, true},
	End:   []bool{false, true, true},
	From:  true, To: true,
}

func TestStaticHazardCaught(t *testing.T) {
	lib := cell.AMS035()
	res := Audit("t", []Unit{unit1(glitchyMux(), []string{"a", "b", "c"}, aFalls)}, lib, Options{})
	errs, _, _ := Count(res.Diags)
	if errs != 1 {
		t.Fatalf("got %d errors, want 1:\n%s", errs, Format(res.Diags, "t"))
	}
	var hz Diag
	for _, d := range res.Diags {
		if d.Code == "HZ001" {
			hz = d
		}
	}
	if hz.Code != "HZ001" {
		t.Fatalf("no HZ001:\n%s", Format(res.Diags, "t"))
	}
	// The diagnostic names the output, the burst, and the offending net.
	if hz.Loc.Fn != "z" || hz.Loc.Burst != "a-" {
		t.Fatalf("loc = %+v", hz.Loc)
	}
	if !strings.Contains(hz.Message, `net "mux.t1"`) && !strings.Contains(hz.Message, `net "mux.t2"`) {
		t.Fatalf("message does not name the offending net: %s", hz.Message)
	}
	if !res.Stats.Compiled || res.Stats.Bursts != 1 || res.Stats.Passes != 3 {
		t.Fatalf("stats = %+v", res.Stats)
	}
	if res.Stats.MaxXDepth < 2 {
		t.Fatalf("X depth %d, want >= 2", res.Stats.MaxXDepth)
	}
}

func TestConsensusTermIsHazardFree(t *testing.T) {
	lib := cell.AMS035()
	res := Audit("t", []Unit{unit1(cleanMux(), []string{"a", "b", "c"}, aFalls)}, lib, Options{})
	if HasErrors(res.Diags) {
		t.Fatalf("unexpected errors:\n%s", Format(res.Diags, "t"))
	}
	if !diag.HasCode(res.Diags, "HZ200") {
		t.Fatalf("no static report:\n%s", Format(res.Diags, "t"))
	}
}

// z = a decomposed through a reconvergent pair of AND gates over b:
// during the burst {a+, b+} the function must hold 0 until the burst
// completes, but with b still low and a unknown the OR can see X.
func TestDynamicHazardCaught(t *testing.T) {
	lib := cell.AMS035()
	nl := gates.New("dyn")
	a, b := nl.Net("a"), nl.Net("b")
	nl.Inputs = append(nl.Inputs, a, b)
	nb, t1, t2 := nl.Net("nb"), nl.Net("t1"), nl.Net("t2")
	z := nl.Net("z")
	nl.Outputs = append(nl.Outputs, z)
	nl.AddInstance("INV", []int{b}, nb, 0)
	nl.AddInstance("AND2", []int{a, nb}, t1, 0)
	nl.AddInstance("AND2", []int{a, b}, t2, 0)
	nl.AddInstance("OR2", []int{t1, t2}, z, 0)
	rise := hfmin.Transition{
		Start: []bool{false, false},
		End:   []bool{true, true},
		From:  false, To: true,
	}
	res := Audit("t", []Unit{unit1(nl, []string{"a", "b"}, rise)}, lib, Options{})
	if !diag.HasCode(res.Diags, "HZ002") {
		t.Fatalf("no HZ002:\n%s", Format(res.Diags, "t"))
	}
	for _, d := range res.Diags {
		if d.Code == "HZ002" && !strings.Contains(d.Message, `"b"`) {
			t.Fatalf("HZ002 does not name the held variable: %s", d.Message)
		}
	}
}

// A mapped function that disagrees with the specification at a burst
// endpoint is a functional mismatch, not a hazard.
func TestEndpointMismatch(t *testing.T) {
	lib := cell.AMS035()
	nl := gates.New("inv")
	a := nl.Net("a")
	nl.Inputs = append(nl.Inputs, a)
	z := nl.Net("z")
	nl.Outputs = append(nl.Outputs, z)
	nl.AddInstance("INV", []int{a}, z, 0)
	steady := hfmin.Transition{Start: []bool{true}, End: []bool{true}, From: true, To: true}
	res := Audit("t", []Unit{unit1(nl, []string{"a"}, steady)}, lib, Options{})
	errs, _, _ := Count(res.Diags)
	if errs != 2 || !diag.HasCode(res.Diags, "HZ003") {
		t.Fatalf("want 2 HZ003 (start and end point):\n%s", Format(res.Diags, "t"))
	}
}

func TestUndrivenFunctionWarns(t *testing.T) {
	lib := cell.AMS035()
	nl := gates.New("empty")
	a := nl.Net("a")
	nl.Inputs = append(nl.Inputs, a)
	z := nl.Net("z")
	nl.Outputs = append(nl.Outputs, z)
	steady := hfmin.Transition{Start: []bool{true}, End: []bool{true}, From: true, To: true}
	res := Audit("t", []Unit{unit1(nl, []string{"a"}, steady)}, lib, Options{})
	if !diag.HasCode(res.Diags, "HZ100") || HasErrors(res.Diags) {
		t.Fatalf("want HZ100 warning only:\n%s", Format(res.Diags, "t"))
	}
	if res.Stats.Unverified != 1 || res.Stats.Bursts != 0 {
		t.Fatalf("stats = %+v", res.Stats)
	}
}

func TestSkippedUnits(t *testing.T) {
	lib := cell.AMS035()
	res := Audit("t", []Unit{{Name: "hand"}}, lib, Options{})
	if res.Stats.Skipped != 1 || res.Stats.Units != 0 {
		t.Fatalf("stats = %+v", res.Stats)
	}
	if HasErrors(res.Diags) {
		t.Fatalf("unexpected errors:\n%s", Format(res.Diags, "t"))
	}
}

// Two units with colliding private net names must verify
// independently after the merge: the same glitchy circuit twice
// yields the same hazard twice, attributed to namespaced functions.
func TestMergedNamespacing(t *testing.T) {
	lib := cell.AMS035()
	u1 := unit1(glitchyMux(), []string{"a", "b", "c"}, aFalls)
	u2 := unit1(glitchyMux(), []string{"a", "b", "c"}, aFalls)
	// Give the second unit distinct boundary nets so the two outputs
	// remain separate functions in the merged circuit.
	sub := map[string]string{"a": "a2", "b": "b2", "c": "c2", "z": "z2"}
	u2.Netlist = u2.Netlist.Rename("mux", sub)
	u2.Vars = []string{"a2", "b2", "c2"}
	u2.Outputs = []string{"z2"}
	u2.Transitions = map[string][]hfmin.Transition{"z2": {aFalls}}
	res := Audit("t", []Unit{u1, u2}, lib, Options{})
	errs, _, _ := Count(res.Diags)
	if errs != 2 {
		t.Fatalf("got %d errors, want 2:\n%s", errs, Format(res.Diags, "t"))
	}
	if res.Stats.Units != 2 || res.Stats.Functions != 2 {
		t.Fatalf("stats = %+v", res.Stats)
	}
}

// stripVolatile drops the diagnostics whose content legitimately
// differs between the compiled and interpreted paths (the HZ200
// report names the path; HZ101 only fires on compile failure).
func stripVolatile(ds []Diag) []Diag {
	var out []Diag
	for _, d := range ds {
		if d.Code == "HZ200" || d.Code == "HZ101" {
			continue
		}
		out = append(out, d)
	}
	return out
}

// The compiled 64-lane path and the interpreted oracle must agree on
// every diagnostic and on the depth report, at any worker count.
func TestCompiledVsInterpretedAgreement(t *testing.T) {
	lib := cell.AMS035()
	mkUnits := func() []Unit {
		rise := hfmin.Transition{
			Start: []bool{false, false, true},
			End:   []bool{true, true, true},
			From:  false, To: true,
		}
		u1 := unit1(glitchyMux(), []string{"a", "b", "c"}, aFalls, rise)
		u2 := unit1(cleanMux(), []string{"a", "b", "c"}, aFalls)
		sub := map[string]string{"a": "a2", "b": "b2", "c": "c2", "z": "z2"}
		u2.Netlist = u2.Netlist.Rename("mux2", sub)
		u2.Vars = []string{"a2", "b2", "c2"}
		u2.Outputs = []string{"z2"}
		u2.Transitions = map[string][]hfmin.Transition{"z2": {aFalls}}
		return []Unit{u1, u2}
	}
	base := Audit("t", mkUnits(), lib, Options{})
	if !base.Stats.Compiled {
		t.Fatal("base audit did not take the compiled path")
	}
	for _, j := range []int{1, 2, 7} {
		pool := parallel.NewPool(j)
		for _, interp := range []bool{false, true} {
			res := Audit("t", mkUnits(), lib, Options{Pool: pool, Interpreted: interp})
			got := fmt.Sprintf("%v", stripVolatile(res.Diags))
			want := fmt.Sprintf("%v", stripVolatile(base.Diags))
			if got != want {
				t.Fatalf("j=%d interpreted=%v diverged:\n%s\nwant:\n%s", j, interp, got, want)
			}
			if res.Stats.MaxXDepth != base.Stats.MaxXDepth {
				t.Fatalf("j=%d interpreted=%v: X depth %d, want %d", j, interp, res.Stats.MaxXDepth, base.Stats.MaxXDepth)
			}
		}
	}
}

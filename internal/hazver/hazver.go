// Package hazver implements static gate-level hazard verification of
// mapped burst-mode controllers — the sixth and final tier of the
// lint stack (chlint → bmlint → netlint → hazver), and the one that
// closes the gap between the minimizer's hazard-freedom proof over
// two-level covers (hfmin.CheckCover) and the multi-level netlist the
// back-end actually emits.
//
// The check is Eichelberger's ternary-simulation argument specialized
// to fundamental mode: for every specified burst of every controller
// function (outputs and y* state bits), evaluate the merged mapped
// circuit twice over {0,1,X} — first with the changing burst inputs
// at X and every other variable at its start value, then at the burst
// end point. Under the same feedback cuts the compiled evaluator and
// netlint already honor (primary outputs and y* nets forced), the
// mapped network is combinational and the ternary evaluation is
// exact: a function whose specification holds it stable across the
// burst has a static hazard — some input arrival order glitches it —
// if and only if the X-pass evaluates to X (HZ001). A function that
// transitions gets the analogous multiple-input-change check: the
// specification says it holds its start value until the final burst
// input arrives, so for every changing input v, holding v at its
// start value with the rest at X must still evaluate to the binary
// start value (HZ002 when X). Burst endpoints are also checked
// against the specified function values (HZ003), subsuming
// techmap.CheckMapped's sampling on exactly the points fundamental
// mode visits. Residual single-input-change dynamic hazards on the
// final transition itself are outside the ternary model; DESIGN.md
// §16 gives the soundness argument and this boundary.
//
// Evaluation is bit-parallel: gates.TernaryEval packs 64 passes into
// dual-rail lane words over the compiled Program, with the
// interpreted ternary settle (gates.SettleTernary) as oracle and
// fallback. Findings are HZxxx diagnostics on the shared
// internal/diag framework: HZ0xx hazards/mismatches (errors), HZ1xx
// verification-coverage warnings, HZ200 the static report with
// per-function worst-case X-propagation depth.
package hazver

import (
	"context"
	"fmt"
	"strings"

	"balsabm/internal/cell"
	"balsabm/internal/diag"
	"balsabm/internal/gates"
	"balsabm/internal/hfmin"
	"balsabm/internal/logic"
	"balsabm/internal/parallel"
)

// Severity classifies a diagnostic; see internal/diag.
type Severity = diag.Severity

// Severity levels, re-exported from internal/diag. Errors mark real
// hazards or functional divergence — the mapped circuit can glitch or
// compute the wrong value on a specified burst — and abort the flow's
// post-mapping gate. Warnings mark verification-coverage gaps. Infos
// are advisory (the static report).
const (
	SevError   = diag.SevError
	SevWarning = diag.SevWarning
	SevInfo    = diag.SevInfo
)

// Loc pins a diagnostic to a function (an output or y* state bit of
// one controller, named as in the merged netlist) and optionally one
// of its specified bursts.
type Loc struct {
	Fn    string // merged-netlist function name ("pop_a", "pop_seq1.y0")
	Tr    int    // burst ordinal within the function, -1 when function-level
	Burst string // rendered burst, e.g. "req+ ack-"
	FnOrd int    // deterministic function ordinal across the audit (sort key)
}

// NoLoc is the circuit-level location.
var NoLoc = Loc{Tr: -1, FnOrd: -1}

// String renders the location: `fn "pop_a" burst 2 (req+ ack-)`.
func (l Loc) String() string {
	if l.Fn == "" {
		return ""
	}
	if l.Tr < 0 {
		return fmt.Sprintf("fn %q", l.Fn)
	}
	return fmt.Sprintf("fn %q burst %d (%s)", l.Fn, l.Tr, l.Burst)
}

// Fragment implements diag.Loc.
func (l Loc) Fragment() (string, bool) { return l.String(), false }

// Key implements diag.Loc: diagnostics sort by function, then burst.
func (l Loc) Key() (int, int) { return l.FnOrd, l.Tr }

// Diag is one diagnostic; see internal/diag.
type Diag = diag.Diag[Loc]

// Reporter collects diagnostics during an audit.
type Reporter = diag.Reporter[Loc]

// Codes maps every stable diagnostic code to its one-line meaning.
// Codes are append-only: a released code never changes meaning, so
// suppressions, CI greps and the /metrics code labels stay valid.
var Codes = map[string]string{
	"HZ000": "ternary evaluation failed; the burst could not be verified",
	"HZ001": "static hazard: a specified-stable function may glitch during the burst",
	"HZ002": "dynamic hazard: a transitioning function may glitch before its final burst input",
	"HZ003": "functional mismatch between mapped logic and specification at a burst endpoint",
	"HZ100": "function net missing or undriven; its bursts cannot be verified",
	"HZ101": "compiled ternary evaluation unavailable; verified on the interpreted path",
	"HZ200": "static hazard-verification report",
}

// Unit is one controller's worth of verification input: the burst
// provenance the minimizer proved hazard-free (variables in
// hfmin.Transition order, specified transitions per function) and the
// mapped netlist that must honor it. Functions are the spec outputs
// in order followed by y0..y(StateBits-1); Transitions is keyed by
// those names. A Unit with a nil Netlist is counted as skipped — a
// hand-library circuit with no burst provenance to check against.
type Unit struct {
	Name        string
	Vars        []string // inputs, then fed-back outputs, then y* bits
	Outputs     []string // spec output order
	StateBits   int
	Transitions map[string][]hfmin.Transition
	Netlist     *gates.Netlist
}

// Options tunes an audit.
type Options struct {
	Pool        *parallel.Pool  // nil uses the process-wide default pool
	Ctx         context.Context // nil uses context.Background()
	Interpreted bool            // force the interpreted oracle path (testing)
}

// Stats is the static report for one audit.
type Stats struct {
	Units      int  // verifiable controllers
	Skipped    int  // hand-library circuits without burst provenance
	Functions  int  // outputs + y* bits across all units
	Bursts     int  // specified transitions verified
	Unverified int  // transitions skipped (undriven/missing function nets)
	Passes     int  // ternary evaluation passes
	MaxXDepth  int  // worst X-propagation depth reaching any function's driver
	Compiled   bool // fast path (64-lane dual-rail) vs interpreted oracle
}

// String renders the one-line report used by the HZ200 info
// diagnostic and the flow's -stats output.
func (s Stats) String() string {
	path := "interpreted"
	if s.Compiled {
		path = "compiled"
	}
	skip := ""
	if s.Skipped > 0 {
		skip = fmt.Sprintf(" (+%d hand-library skipped)", s.Skipped)
	}
	unv := ""
	if s.Unverified > 0 {
		unv = fmt.Sprintf(", %d unverified", s.Unverified)
	}
	return fmt.Sprintf("%d units%s, %d functions, %d bursts%s, %d ternary passes, worst X-depth %d, %s",
		s.Units, skip, s.Functions, s.Bursts, unv, s.Passes, s.MaxXDepth, path)
}

// Result is one full audit: the merged circuit's name, its
// diagnostics, and the static report.
type Result struct {
	Name  string
	Diags []Diag
	Stats Stats
}

// Count tallies diagnostics by severity.
func Count(ds []Diag) (errors, warnings, infos int) { return diag.Count(ds) }

// HasErrors reports whether any diagnostic is error-severity.
func HasErrors(ds []Diag) bool { return diag.HasErrors(ds) }

// Format renders diagnostics vet-style, one per line (plus note
// lines), prefixed with the circuit name when non-empty.
func Format(ds []Diag, circuit string) string { return diag.Format(ds, circuit) }

// passKind is one ternary evaluation obligation for a transition.
type passKind uint8

const (
	passStart  passKind = iota // binary start point must equal From
	passEnd                    // binary end point must equal To
	passStatic                 // changed inputs at X must stay binary From
	passSub                    // one changed input held, rest at X: binary From
)

// tpass is one scheduled ternary pass: which function, which of its
// transitions, and which obligation.
type tpass struct {
	fn    int32
	tr    int32
	kind  passKind
	vhold int32 // passSub: var index held at its start value
}

// fnInfo is one function to verify: a spec output or y* bit of one
// unit, resolved to its merged net.
type fnInfo struct {
	unit  int
	key   string // Transitions key (output name or "y%d")
	name  string // display name, merged-netlist qualified
	net   int    // merged net id, -1 when the part lacks the net
	trs   []hfmin.Transition
	burst int // bursts verified
	depth int // worst X-depth observed at the driver
}

// Audit statically verifies every specified burst of every unit
// against the merged mapped circuit and returns all findings plus the
// static report. The result is deterministic — independent of worker
// count and pool scheduling.
func Audit(name string, units []Unit, lib *cell.Library, opt Options) Result {
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	rep := &Reporter{}
	res := Result{Name: name}

	// Merge the verifiable parts; remember each unit's remap so its
	// private y* nets stay addressable.
	var parts []*gates.Netlist
	partOf := make([]int, len(units)) // unit -> index into parts, -1 skipped
	for i := range units {
		if units[i].Netlist == nil {
			partOf[i] = -1
			res.Stats.Skipped++
			continue
		}
		partOf[i] = len(parts)
		parts = append(parts, units[i].Netlist)
		res.Stats.Units++
	}
	merged, remaps := gates.MergeParts(name, parts)
	drv := merged.DriverIndex()

	// Resolve every function to its merged net and collect the forced
	// cut: all outputs and y* bits, exactly the fundamental-mode cut
	// netlint and gates.Compile honor.
	var fns []fnInfo
	varNets := make([][]int, len(units))
	forced := map[int]bool{}
	for ui := range units {
		u := &units[ui]
		pi := partOf[ui]
		if pi < 0 {
			continue
		}
		remap := remaps[pi]
		vn := make([]int, len(u.Vars))
		for j, v := range u.Vars {
			vn[j] = -1
			if u.Netlist.HasNet(v) {
				vn[j] = remap[u.Netlist.Net(v)]
			}
		}
		varNets[ui] = vn
		addFn := func(key string) {
			fi := fnInfo{unit: ui, key: key, name: key, net: -1, depth: -1}
			if u.Netlist.HasNet(key) {
				fi.net = remap[u.Netlist.Net(key)]
				fi.name = merged.NetNames[fi.net]
			}
			fi.trs = u.Transitions[key]
			fns = append(fns, fi)
			if fi.net >= 0 {
				forced[fi.net] = true
			}
		}
		for _, out := range u.Outputs {
			addFn(out)
		}
		for s := 0; s < u.StateBits; s++ {
			addFn(fmt.Sprintf("y%d", s))
		}
	}
	res.Stats.Functions = len(fns)

	// Schedule the ternary passes, function by function so a batch's
	// lanes for one function are contiguous.
	var passes []tpass
	for fi := range fns {
		fn := &fns[fi]
		if len(fn.trs) == 0 {
			continue
		}
		if fn.net < 0 || drv[fn.net] < 0 {
			rep.Warnf(Loc{Fn: fn.name, Tr: -1, FnOrd: fi}, "HZ100",
				"function net %q missing or undriven; %d bursts not verified", fn.name, len(fn.trs))
			res.Stats.Unverified += len(fn.trs)
			continue
		}
		for ti, t := range fn.trs {
			ch := t.Changed()
			passes = append(passes,
				tpass{fn: int32(fi), tr: int32(ti), kind: passStart},
				tpass{fn: int32(fi), tr: int32(ti), kind: passEnd})
			if t.From == t.To {
				if len(ch) > 0 {
					passes = append(passes, tpass{fn: int32(fi), tr: int32(ti), kind: passStatic})
				}
			} else if len(ch) >= 2 {
				for _, v := range ch {
					passes = append(passes, tpass{fn: int32(fi), tr: int32(ti), kind: passSub, vhold: int32(v)})
				}
			}
			fn.burst++
			res.Stats.Bursts++
		}
	}
	res.Stats.Passes = len(passes)

	// Evaluate: compiled 64-lane dual-rail when the circuit compiles,
	// interpreted ternary settle otherwise (or when forced, as the
	// fuzz oracle).
	var prog *gates.Program
	if !opt.Interpreted {
		p, err := gates.Compile(merged, lib, forced)
		if err != nil {
			rep.Warnf(NoLoc, "HZ101", "compiled ternary evaluation unavailable (%v); verified on the interpreted path", err)
		} else {
			prog = p
		}
	}
	res.Stats.Compiled = prog != nil

	a := &auditor{
		units: units, fns: fns, varNets: varNets, passes: passes,
		merged: merged, drv: drv, lib: lib, forced: forced, prog: prog,
	}
	outs := a.run(ctx, opt.Pool)
	for _, o := range outs {
		for _, d := range o.diags {
			rep.Report(d)
		}
	}
	for fi := range a.fns {
		if d := a.fns[fi].depth; d > res.Stats.MaxXDepth {
			res.Stats.MaxXDepth = d
		}
	}

	// The static report, with the per-function depth table.
	rep.Infof(NoLoc, "HZ200", "static hazard report: %s", res.Stats)
	for fi := range a.fns {
		fn := &a.fns[fi]
		if fn.burst == 0 && fn.depth < 0 {
			continue
		}
		d := fn.depth
		if d < 0 {
			d = 0
		}
		rep.Note("%s: %d bursts, worst X-depth %d", fn.name, fn.burst, d)
	}
	if res.Stats.Skipped > 0 {
		rep.Note("%d hand-library circuits carry no burst provenance and are verified dynamically (simulation), not statically", res.Stats.Skipped)
	}

	res.Diags = rep.Diags()
	diag.Sort(res.Diags)
	return res
}

// auditor carries the immutable evaluation inputs shared by the
// parallel batch workers.
type auditor struct {
	units   []Unit
	fns     []fnInfo
	varNets [][]int
	passes  []tpass
	merged  *gates.Netlist
	drv     []int
	lib     *cell.Library
	forced  map[int]bool
	prog    *gates.Program
}

// batchGroup batches per worker leaf: each leaf compiles its own
// evaluation state and walks a contiguous slice of batches, so output
// order is deterministic regardless of scheduling.
const (
	lanes      = 64
	batchGroup = 8
)

type batchOut struct {
	diags []Diag
	depth []int32 // per fn, -1 untouched
}

// run evaluates every scheduled pass and returns per-group outputs in
// group order. Worker errors are impossible by construction — every
// failure becomes a diagnostic — so the MapCtx error is only context
// cancellation, which yields zero-valued outputs and a truncated
// (but still deterministic-prefix) diagnostic set.
func (a *auditor) run(ctx context.Context, pool *parallel.Pool) []batchOut {
	nBatches := (len(a.passes) + lanes - 1) / lanes
	groups := (nBatches + batchGroup - 1) / batchGroup
	if groups == 0 {
		return nil
	}
	outs, _ := parallel.MapCtx(ctx, pool, groups, func(g int) (batchOut, error) {
		out := batchOut{depth: make([]int32, len(a.fns))}
		for i := range out.depth {
			out.depth[i] = -1
		}
		if a.prog != nil {
			ev := a.prog.NewTernaryEval()
			for b := g * batchGroup; b < (g+1)*batchGroup && b < nBatches; b++ {
				a.runBatch(ev, b, &out)
			}
		} else {
			vals := make([]uint8, len(a.merged.NetNames))
			xd := make([]uint8, len(a.merged.NetNames))
			for b := g * batchGroup; b < (g+1)*batchGroup && b < nBatches; b++ {
				lo, hi := b*lanes, (b+1)*lanes
				if hi > len(a.passes) {
					hi = len(a.passes)
				}
				for pi := lo; pi < hi; pi++ {
					a.runInterp(vals, xd, &a.passes[pi], &out)
				}
			}
		}
		// Merge per-fn observations into the fn table later, in
		// deterministic group order.
		return out, nil
	})
	for _, o := range outs {
		for fi, d := range o.depth {
			if int(d) > a.fns[fi].depth {
				a.fns[fi].depth = int(d)
			}
		}
	}
	return outs
}

// assignment returns the ternary variable assignment of one pass over
// the pass's unit variables, reusing the transition's own burst-cube
// math (hfmin.Transition.Cube): start/end points are the binary
// endpoints, the static pass is the transition supercube (changed
// variables at X), and the subcube pass holds one changed variable at
// its start value inside that supercube.
func (a *auditor) assignment(p *tpass) logic.Cube {
	t := &a.fns[p.fn].trs[p.tr]
	switch p.kind {
	case passStart:
		return logic.Point(t.Start)
	case passEnd:
		return logic.Point(t.End)
	case passStatic:
		return t.Cube()
	default: // passSub
		c := t.Cube()
		c[p.vhold] = logic.Point(t.Start)[p.vhold]
		return c
	}
}

func litTern(l logic.Lit) uint8 {
	switch l {
	case logic.Zero:
		return gates.T0
	case logic.One:
		return gates.T1
	default:
		return gates.TX
	}
}

// want returns the binary value the specification requires for one
// pass: From at the start point and everywhere on the transition
// except the end point, To at the end point.
func (a *auditor) want(p *tpass) bool {
	t := &a.fns[p.fn].trs[p.tr]
	if p.kind == passEnd {
		return t.To
	}
	return t.From
}

// runBatch evaluates up to 64 passes bit-parallel on the compiled
// dual-rail evaluator and judges each lane.
func (a *auditor) runBatch(ev *gates.TernaryEval, b int, out *batchOut) {
	lo, hi := b*lanes, (b+1)*lanes
	if hi > len(a.passes) {
		hi = len(a.passes)
	}
	ev.Reset()
	for pi := lo; pi < hi; pi++ {
		p := &a.passes[pi]
		cube := a.assignment(p)
		vn := a.varNets[a.fns[p.fn].unit]
		ln := uint(pi - lo)
		for j, net := range vn {
			if net >= 0 {
				ev.Assign(net, ln, litTern(cube[j]))
			}
		}
	}
	ev.Run()
	// Judge contiguous runs of lanes that share a function, reading
	// the driver rails once per run.
	for pi := lo; pi < hi; {
		fi := a.passes[pi].fn
		end := pi
		var mask uint64
		for end < hi && a.passes[end].fn == fi {
			mask |= 1 << uint(end-lo)
			end++
		}
		fn := &a.fns[fi]
		dhi, dlo, _ := ev.Driver(fn.net)
		for p := pi; p < end; p++ {
			ln := uint(p - lo)
			v := gates.T0
			switch {
			case dhi>>ln&1 != 0 && dlo>>ln&1 != 0:
				v = gates.TX
			case dhi>>ln&1 != 0:
				v = gates.T1
			}
			a.judge(&a.passes[p], v, func() []int {
				return traceX(a.merged, a.drv, a.forced, fn.net, func(n int) uint8 { return ev.At(n, ln) })
			}, out)
		}
		if d := ev.DriverXDepth(fn.net, mask); int32(d) > out.depth[fi] {
			out.depth[fi] = int32(d)
		}
		pi = end
	}
}

// runInterp evaluates one pass on the interpreted ternary settle
// oracle and judges it. vals and xd are per-worker scratch.
func (a *auditor) runInterp(vals, xd []uint8, p *tpass, out *batchOut) {
	for i := range vals {
		vals[i] = gates.TX
	}
	fn := &a.fns[p.fn]
	cube := a.assignment(p)
	vn := a.varNets[fn.unit]
	for j, net := range vn {
		if net >= 0 {
			vals[net] = litTern(cube[j])
		}
	}
	if err := gates.SettleTernary(a.merged, a.lib, a.forced, vals); err != nil {
		out.diags = append(out.diags, Diag{
			Loc: a.loc(p), Severity: SevError, Code: "HZ000",
			Message: fmt.Sprintf("ternary evaluation failed: %v", err),
		})
		return
	}
	v, ok := gates.DriveTernary(a.merged, a.lib, a.drv, vals, fn.net)
	if !ok {
		return
	}
	a.judge(p, v, func() []int {
		return traceX(a.merged, a.drv, a.forced, fn.net, func(n int) uint8 { return vals[n] })
	}, out)
	if d := a.interpDepth(vals, xd, fn.net, v); int32(d) > out.depth[p.fn] {
		out.depth[p.fn] = int32(d)
	}
}

// loc builds the diagnostic location of a pass.
func (a *auditor) loc(p *tpass) Loc {
	fn := &a.fns[p.fn]
	t := &fn.trs[p.tr]
	return Loc{Fn: fn.name, Tr: int(p.tr), Burst: renderBurst(a.units[fn.unit].Vars, t), FnOrd: int(p.fn)}
}

// renderBurst shows a transition as its changing variables with
// direction: "req+ ack-". Static transitions with no changing
// variable render as "steady".
func renderBurst(vars []string, t *hfmin.Transition) string {
	var b strings.Builder
	for _, v := range t.Changed() {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		name := fmt.Sprintf("v%d", v)
		if v < len(vars) {
			name = vars[v]
		}
		b.WriteString(name)
		if t.End[v] {
			b.WriteByte('+')
		} else {
			b.WriteByte('-')
		}
	}
	if b.Len() == 0 {
		return "steady"
	}
	return b.String()
}

// judge turns one pass's ternary verdict into diagnostics. culprit is
// evaluated lazily — only when a hazard is being reported — and
// returns the X chain from the function's driver toward its sources.
func (a *auditor) judge(p *tpass, v uint8, culprit func() []int, out *batchOut) {
	want := gates.T0
	if a.want(p) {
		want = gates.T1
	}
	if v == want {
		return
	}
	fn := &a.fns[p.fn]
	switch p.kind {
	case passStart, passEnd:
		point := "start"
		if p.kind == passEnd {
			point = "end"
		}
		out.diags = append(out.diags, Diag{
			Loc: a.loc(p), Severity: SevError, Code: "HZ003",
			Message: fmt.Sprintf("mapped logic evaluates to %s at the burst %s point; specification requires %s",
				gates.TernString(v), point, gates.TernString(want)),
		})
	case passStatic:
		if v != gates.TX {
			return // wrong binary value surfaces as HZ003 at the endpoints
		}
		d := Diag{
			Loc: a.loc(p), Severity: SevError, Code: "HZ001",
			Message: fmt.Sprintf("static hazard: function must hold %s across the burst but evaluates to X%s",
				gates.TernString(want), throughNet(a.merged, culprit())),
		}
		a.notePath(&d, culprit())
		out.diags = append(out.diags, d)
	default: // passSub
		if v != gates.TX {
			return // wrong binary value surfaces as HZ003 at the start point
		}
		held := fmt.Sprintf("v%d", p.vhold)
		if vars := a.units[fn.unit].Vars; int(p.vhold) < len(vars) {
			held = vars[p.vhold]
		}
		d := Diag{
			Loc: a.loc(p), Severity: SevError, Code: "HZ002",
			Message: fmt.Sprintf("dynamic hazard: with %q still at its start value the function must hold %s but evaluates to X%s",
				held, gates.TernString(want), throughNet(a.merged, culprit())),
		}
		a.notePath(&d, culprit())
		out.diags = append(out.diags, d)
	}
}

// throughNet names the offending net — the X-valued gate output
// closest to the function's driver — for the one-line message.
func throughNet(nl *gates.Netlist, chain []int) string {
	if len(chain) == 0 {
		return " (X enters through the function's own feedback)"
	}
	return fmt.Sprintf(" (X enters through net %q)", nl.NetNames[chain[0]])
}

// notePath attaches the full X chain as a note when it is longer than
// the single net the message names.
func (a *auditor) notePath(d *Diag, chain []int) {
	if len(chain) < 2 {
		return
	}
	names := make([]string, len(chain))
	for i, n := range chain {
		names[i] = a.merged.NetNames[n]
	}
	d.Notes = append(d.Notes, fmt.Sprintf("X path to the function: %s", strings.Join(names, " <- ")))
}

// traceX walks the X chain from a forced net's driver toward its
// sources: at each gate it descends into an X-valued input,
// preferring one that is itself gate-driven (deeper in the cone), and
// returns the visited nets in driver-to-source order. An empty chain
// means the only X feeding the driver is the forced net's own
// feedback value.
func traceX(nl *gates.Netlist, drv []int, forced map[int]bool, net int, at func(int) uint8) []int {
	var chain []int
	seen := map[int]bool{net: true}
	cur := net
	for {
		di := drv[cur]
		if di < 0 {
			return chain
		}
		next := -1
		for _, in := range nl.Instances[di].Inputs {
			if seen[in] || at(in) != gates.TX {
				continue
			}
			if next < 0 {
				next = in
			}
			if drv[in] >= 0 && !forced[in] {
				next = in
				break
			}
		}
		if next < 0 {
			return chain
		}
		seen[next] = true
		chain = append(chain, next)
		if drv[next] < 0 || forced[next] {
			return chain
		}
		cur = next
	}
}

// interpDepth mirrors TernaryEval.DriverXDepth on the interpreted
// path: the longest chain of X nets feeding the function's driver,
// plus one when the driver output itself is X.
func (a *auditor) interpDepth(vals, xd []uint8, net int, v uint8) int {
	a.interpXD(vals, xd)
	di := a.drv[net]
	if di < 0 {
		return 0
	}
	best := 0
	for _, in := range a.merged.Instances[di].Inputs {
		if vals[in] == gates.TX {
			if d := int(xd[in]); d > best {
				best = d
			}
		}
	}
	if v == gates.TX {
		best++
	}
	return best
}

// interpXD computes per-net X depths into xd by fixed-point sweeps:
// an X net computed by a gate sits one above its deepest X input;
// sources and binary nets are depth 0. The forced cut makes the
// graph acyclic, so the sweep converges.
func (a *auditor) interpXD(vals, xd []uint8) {
	for i := range xd {
		xd[i] = 0
	}
	limit := 4*len(a.merged.Instances) + 16
	for iter := 0; iter < limit; iter++ {
		changed := false
		for i := range a.merged.Instances {
			inst := &a.merged.Instances[i]
			out := inst.Output
			if a.forced[out] || a.drv[out] != i || vals[out] != gates.TX {
				continue
			}
			d := uint8(0)
			for _, in := range inst.Inputs {
				if vals[in] == gates.TX && xd[in] > d {
					d = xd[in]
				}
			}
			if d < 255 {
				d++
			}
			if xd[out] != d {
				xd[out] = d
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

package cell

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestLibraryComplete(t *testing.T) {
	lib := AMS035()
	for _, name := range []string{"INV", "BUF", "NAND2", "NAND3", "NAND4",
		"AND2", "AND3", "AND4", "OR2", "OR3", "OR4", "NOR2", "XOR2",
		"C2", "C3", "LATCH"} {
		c := lib.Get(name)
		if c.Area <= 0 || c.Delay <= 0 {
			t.Errorf("%s: degenerate area/delay %+v", name, c)
		}
		if c.Inputs <= 0 {
			t.Errorf("%s: no inputs", name)
		}
	}
}

func TestGetUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AMS035().Get("FLUXCAP")
}

func TestCombinationalEval(t *testing.T) {
	lib := AMS035()
	cases := []struct {
		cell string
		ins  []bool
		want bool
	}{
		{"INV", []bool{true}, false},
		{"BUF", []bool{true}, true},
		{"NAND2", []bool{true, true}, false},
		{"NAND2", []bool{true, false}, true},
		{"AND3", []bool{true, true, true}, true},
		{"AND3", []bool{true, false, true}, false},
		{"OR2", []bool{false, false}, false},
		{"OR2", []bool{false, true}, true},
		{"NOR2", []bool{false, false}, true},
		{"XOR2", []bool{true, true}, false},
		{"XOR2", []bool{true, false}, true},
	}
	for _, c := range cases {
		if got := lib.Get(c.cell).Eval(c.ins, false); got != c.want {
			t.Errorf("%s(%v) = %v, want %v", c.cell, c.ins, got, c.want)
		}
	}
}

func TestCElementSemantics(t *testing.T) {
	c2 := AMS035().Get("C2")
	if c2.Eval([]bool{true, true}, false) != true {
		t.Fatal("C2 must set on all-1")
	}
	if c2.Eval([]bool{false, false}, true) != false {
		t.Fatal("C2 must reset on all-0")
	}
	if c2.Eval([]bool{true, false}, true) != true || c2.Eval([]bool{true, false}, false) != false {
		t.Fatal("C2 must hold on disagreement")
	}
}

func TestLatchSemantics(t *testing.T) {
	l := AMS035().Get("LATCH")
	if l.Eval([]bool{true, true}, false) != true {
		t.Fatal("transparent latch must pass data when enabled")
	}
	if l.Eval([]bool{false, true}, false) != false {
		t.Fatal("latch must hold when disabled")
	}
}

// The cached truth table must agree with Eval for every library cell,
// over every input combination and both previous-output values — the
// LUT is what the compiled evaluator and the simulator's fast path
// trust in place of Eval.
func TestTruthTableAgreesWithEval(t *testing.T) {
	lib := AMS035()
	names := make([]string, 0, len(lib.Cells))
	for name := range lib.Cells {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := lib.Cells[name]
		tab, ok := c.TruthTable()
		if !ok {
			t.Fatalf("%s: no truth table for a %d-input cell", name, c.Inputs)
		}
		ins := make([]bool, c.Inputs)
		for idx := 0; idx < 1<<uint(c.Inputs); idx++ {
			for j := range ins {
				ins[j] = idx>>uint(j)&1 != 0
			}
			for prev := 0; prev < 2; prev++ {
				want := c.Eval(ins, prev == 1)
				got := tab[prev]>>uint(idx)&1 != 0
				if got != want {
					t.Errorf("%s: tab[%d] bit %d = %v, Eval = %v", name, prev, idx, got, want)
				}
			}
		}
		if c.Kind != C && c.Kind != Latch && tab[0] != tab[1] {
			t.Errorf("%s: combinational cell with state-dependent table", name)
		}
	}
}

// Cells wider than 64 table entries must decline a truth table rather
// than return a truncated one.
func TestTruthTableWideCell(t *testing.T) {
	wide := &Cell{Name: "NAND7", Kind: Nand, Inputs: 7}
	if _, ok := wide.TruthTable(); ok {
		t.Fatal("7-input cell must not fit a 64-bit truth table")
	}
}

// Property: DeMorgan holds between the NAND/AND/OR/NOR cells — the
// foundation of the hazard-non-increasing mapping transformations.
func TestQuickDeMorgan(t *testing.T) {
	lib := AMS035()
	nand, and2 := lib.Get("NAND2"), lib.Get("AND2")
	or2, nor := lib.Get("OR2"), lib.Get("NOR2")
	inv := lib.Get("INV")
	f := func(a, b bool) bool {
		ins := []bool{a, b}
		notIns := []bool{!a, !b}
		if nand.Eval(ins, false) != inv.Eval([]bool{and2.Eval(ins, false)}, false) {
			return false
		}
		if nand.Eval(ins, false) != or2.Eval(notIns, false) {
			return false
		}
		if nor.Eval(ins, false) != and2.Eval(notIns, false) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

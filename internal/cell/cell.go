// Package cell models a standard-cell library in the spirit of the AMS
// 0.35µm library the paper maps to. Areas are in µm², delays in ns
// (single pin-to-pin figure per cell — adequate for the paper's
// relative speed/area comparisons, which is what Table 3 reports).
//
// The library includes the combinational cells the technology mapper
// targets, plus the Muller C-element and transparent latch used by the
// handshake-component baseline circuits and the datapath.
package cell

import (
	"fmt"
	"sync"
)

// Kind is the logical function of a cell.
type Kind int

const (
	Inv Kind = iota
	Buf
	Nand
	And
	Or
	Nor
	Xor
	C     // Muller C-element (stateful: output follows when all inputs agree)
	Latch // transparent latch: inputs [enable, data]
)

func (k Kind) String() string {
	switch k {
	case Inv:
		return "INV"
	case Buf:
		return "BUF"
	case Nand:
		return "NAND"
	case And:
		return "AND"
	case Or:
		return "OR"
	case Nor:
		return "NOR"
	case Xor:
		return "XOR"
	case C:
		return "C"
	case Latch:
		return "LATCH"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Cell is one library cell.
type Cell struct {
	Name   string
	Kind   Kind
	Inputs int
	Area   float64 // µm²
	Delay  float64 // ns

	lutOnce sync.Once
	lut     [2]uint64
}

// Eval computes the cell's output from its inputs; for stateful cells
// (C, Latch) prev is the current output value.
func (c *Cell) Eval(ins []bool, prev bool) bool {
	switch c.Kind {
	case Inv:
		return !ins[0]
	case Buf:
		return ins[0]
	case Nand:
		for _, v := range ins {
			if !v {
				return true
			}
		}
		return false
	case And:
		for _, v := range ins {
			if !v {
				return false
			}
		}
		return true
	case Or:
		for _, v := range ins {
			if v {
				return true
			}
		}
		return false
	case Nor:
		for _, v := range ins {
			if v {
				return false
			}
		}
		return true
	case Xor:
		out := false
		for _, v := range ins {
			out = out != v
		}
		return out
	case C:
		all1, all0 := true, true
		for _, v := range ins {
			if v {
				all0 = false
			} else {
				all1 = false
			}
		}
		if all1 {
			return true
		}
		if all0 {
			return false
		}
		return prev
	case Latch:
		if ins[0] {
			return ins[1]
		}
		return prev
	}
	return false
}

// TruthTable returns the cell's function as two 64-bit truth tables
// indexed by the previous output value: bit i of tab[prev] is the
// output for input combination i, where bit j of i is input j. For
// combinational cells tab[0] == tab[1]. The table is computed once per
// cell (from Eval, so the two can never disagree) and cached; ok is
// false for cells wider than 6 inputs, which do not fit a 64-bit
// plane — callers must fall back to Eval.
func (c *Cell) TruthTable() (tab [2]uint64, ok bool) {
	if c.Inputs > 6 {
		return [2]uint64{}, false
	}
	c.lutOnce.Do(func() {
		ins := make([]bool, c.Inputs)
		for idx := 0; idx < 1<<uint(c.Inputs); idx++ {
			for j := range ins {
				ins[j] = idx>>uint(j)&1 != 0
			}
			for prev := 0; prev < 2; prev++ {
				if c.Eval(ins, prev == 1) {
					c.lut[prev] |= 1 << uint(idx)
				}
			}
		}
	})
	return c.lut, true
}

// Library is a named set of cells.
type Library struct {
	Name  string
	Cells map[string]*Cell
}

// Get returns the named cell, panicking on unknown names (library
// contents are fixed at build time; a miss is a programming error).
func (l *Library) Get(name string) *Cell {
	c, ok := l.Cells[name]
	if !ok {
		panic(fmt.Sprintf("cell: no cell %q in library %s", name, l.Name))
	}
	return c
}

// AMS035 returns the default library, calibrated to 0.35µm-class
// standard cells.
func AMS035() *Library {
	cells := []*Cell{
		{Name: "INV", Kind: Inv, Inputs: 1, Area: 18, Delay: 0.06},
		{Name: "BUF", Kind: Buf, Inputs: 1, Area: 27, Delay: 0.10},
		{Name: "NAND2", Kind: Nand, Inputs: 2, Area: 27, Delay: 0.08},
		{Name: "NAND3", Kind: Nand, Inputs: 3, Area: 36, Delay: 0.10},
		{Name: "NAND4", Kind: Nand, Inputs: 4, Area: 46, Delay: 0.13},
		{Name: "AND2", Kind: And, Inputs: 2, Area: 36, Delay: 0.12},
		{Name: "AND3", Kind: And, Inputs: 3, Area: 46, Delay: 0.14},
		{Name: "AND4", Kind: And, Inputs: 4, Area: 55, Delay: 0.17},
		{Name: "OR2", Kind: Or, Inputs: 2, Area: 36, Delay: 0.13},
		{Name: "OR3", Kind: Or, Inputs: 3, Area: 46, Delay: 0.16},
		{Name: "OR4", Kind: Or, Inputs: 4, Area: 55, Delay: 0.19},
		{Name: "NOR2", Kind: Nor, Inputs: 2, Area: 27, Delay: 0.09},
		{Name: "XOR2", Kind: Xor, Inputs: 2, Area: 55, Delay: 0.16},
		{Name: "C2", Kind: C, Inputs: 2, Area: 64, Delay: 0.16},
		{Name: "C3", Kind: C, Inputs: 3, Area: 82, Delay: 0.20},
		{Name: "LATCH", Kind: Latch, Inputs: 2, Area: 64, Delay: 0.18},
	}
	lib := &Library{Name: "ams035-like", Cells: map[string]*Cell{}}
	for _, c := range cells {
		lib.Cells[c.Name] = c
	}
	return lib
}

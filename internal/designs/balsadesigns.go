package designs

import (
	"embed"
	"fmt"

	"balsabm/internal/balsa"
	"balsabm/internal/core"
	"balsabm/internal/dpath"
	"balsabm/internal/hc"
	"balsabm/internal/sim"
)

//go:embed balsa/*.balsa
var balsaFS embed.FS

// BalsaSource returns the embedded Balsa source for a design.
func BalsaSource(name string) (string, error) {
	data, err := balsaFS.ReadFile("balsa/" + name + ".balsa")
	if err != nil {
		return "", fmt.Errorf("designs: no balsa source %q: %w", name, err)
	}
	return string(data), nil
}

// CompileBalsa compiles an embedded design source into a handshake
// component netlist (the balsa-c step of Fig 1).
func CompileBalsa(name string) (*hc.Netlist, error) {
	src, err := BalsaSource(name)
	if err != nil {
		return nil, err
	}
	return balsa.CompileSource(src, name)
}

// fromBalsa builds a Design around a compiled netlist.
func fromBalsa(name string, bench func(n *hc.Netlist, b *dpath.Builder) *BenchRun) (*Design, error) {
	n, err := CompileBalsa(name)
	if err != nil {
		return nil, err
	}
	return &Design{
		Name: name + "-balsa",
		Control: func() *core.Netlist {
			ctl, err := n.Control()
			if err != nil {
				panic(err) // compile-checked in tests
			}
			return ctl
		},
		Datapath: func(b *dpath.Builder) {
			if err := n.Build(b); err != nil {
				panic(err)
			}
		},
		Bench: func(b *dpath.Builder) *BenchRun { return bench(n, b) },
	}, nil
}

// BalsaCounter is the systolic counter compiled from counter8.balsa.
func BalsaCounter() (*Design, error) {
	return fromBalsa("counter8", func(n *hc.Netlist, b *dpath.Builder) *BenchRun {
		// The leaf port drives the count register.
		b.Variable("cnt", 8, "cntw", "cntrd")
		b.Func("cntinc", 8, func(ins []uint64) uint64 { return (ins[0] + 1) & 0xFF }, "cntrd")
		b.Fetch("leaf", "cntinc", "cntw")
		leafCount := 0
		b.S.Watch("leaf_r", func(s *sim.Simulator, _ int, val bool) {
			if val {
				leafCount++
			}
		})
		done := false
		act := b.NewActivator("counter8", 0.25, 1, func(s *sim.Simulator) {
			done = true
			s.Stop()
		})
		return &BenchRun{
			Description: "one full 8-handshake cycle (balsa-compiled)",
			Start:       act.Start,
			Done:        func() bool { return done },
			Validate: func() error {
				if leafCount != 8 {
					return fmt.Errorf("counter8: %d leaf handshakes, want 8", leafCount)
				}
				if got := b.Bus("cntw").Val; got != 8 {
					return fmt.Errorf("counter8: count register reached %d, want 8", got)
				}
				return nil
			},
		}
	})
}

// BalsaStack is the stack compiled from stack.balsa.
func BalsaStack() (*Design, error) {
	return fromBalsa("stack", func(n *hc.Netlist, b *dpath.Builder) *BenchRun {
		pushVals := []uint64{11, 22, 33}
		pushes := 0
		var popped []uint64
		b.EnvServePull("sin", 0.2, func() uint64 {
			v := pushVals[pushes%len(pushVals)]
			pushes++
			return v
		})
		b.EnvConsumePush("sout", 0.2, func(v uint64) { popped = append(popped, v) })
		done := false
		var popAct *dpath.Activator
		pushAct := b.NewActivator("push", 0.25, 3, func(s *sim.Simulator) {
			popAct.Start()
		})
		popAct = b.NewActivator("pop", 0.25, 3, func(s *sim.Simulator) {
			done = true
			s.Stop()
		})
		return &BenchRun{
			Description: "three pushes then three pops (balsa-compiled)",
			Start:       pushAct.Start,
			Done:        func() bool { return done },
			Validate: func() error {
				want := []uint64{33, 22, 11}
				if len(popped) != 3 {
					return fmt.Errorf("stack: popped %d values, want 3", len(popped))
				}
				for i := range want {
					if popped[i] != want[i] {
						return fmt.Errorf("stack: popped %v, want %v", popped, want)
					}
				}
				return nil
			},
		}
	})
}

// BalsaWagging is the wagging register compiled from wagging.balsa.
func BalsaWagging() (*Design, error) {
	return fromBalsa("wagging", func(n *hc.Netlist, b *dpath.Builder) *BenchRun {
		var ins, outs []uint64
		next := uint64(100)
		b.EnvServePull("win", 0.2, func() uint64 {
			next++
			ins = append(ins, next)
			return next
		})
		b.EnvConsumePush("wout", 0.2, func(v uint64) { outs = append(outs, v) })
		const cycles = 10
		done := false
		act := b.NewActivator("cycle", 0.25, cycles, func(s *sim.Simulator) {
			done = true
			s.Stop()
		})
		return &BenchRun{
			Description: "10 wagging cycles (balsa-compiled)",
			Start:       act.Start,
			Done:        func() bool { return done },
			Validate: func() error {
				if len(outs) != cycles || len(ins) != cycles {
					return fmt.Errorf("wagging: %d outs / %d ins, want %d", len(outs), len(ins), cycles)
				}
				if outs[8] != ins[0] || outs[9] != ins[1] {
					return fmt.Errorf("wagging: forward data mismatch: %v vs %v", outs[8:10], ins[:2])
				}
				return nil
			},
		}
	})
}

// BalsaSSEM is the microprocessor core compiled from ssem.balsa.
func BalsaSSEM() (*Design, error) {
	return fromBalsa("ssem", func(n *hc.Netlist, b *dpath.Builder) *BenchRun {
		mem := b.LastMemory()
		copy(mem.Words, SSEMStoreProgram())
		halted := false
		b.EnvServeSync("hlt", 0.2)
		b.S.Watch("hlt_r", func(s *sim.Simulator, _ int, val bool) {
			if val {
				halted = true
			}
		})
		done := false
		act := b.NewActivator("step", 0.25, 1<<30, func(s *sim.Simulator) {})
		b.S.Watch("step_a", func(s *sim.Simulator, _ int, val bool) {
			if !val && halted {
				done = true
				s.Stop()
			}
		})
		return &BenchRun{
			Description: "store 0..4 program until HLT (balsa-compiled)",
			Start:       act.Start,
			Done:        func() bool { return done },
			Validate: func() error {
				for i := 0; i <= 4; i++ {
					if mem.Words[16+i] != uint64(i) {
						return fmt.Errorf("ssem: mem[%d] = %d, want %d", 16+i, mem.Words[16+i], i)
					}
				}
				return nil
			},
		}
	})
}

// AllBalsa returns the four designs compiled from their Balsa sources.
func AllBalsa() ([]*Design, error) {
	var out []*Design
	for _, f := range []func() (*Design, error){BalsaCounter, BalsaWagging, BalsaStack, BalsaSSEM} {
		d, err := f()
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// Package designs contains the four benchmark designs the paper
// evaluates (Section 6): the 8-handshake systolic counter, the 8-place
// 8-bit wagging register, the 8-place 8-bit stack, and a small 32-bit
// non-pipelined RISC-like microprocessor core (SSEM). Each design
// provides its control netlist (CH programs for the control handshake
// components produced by syntax-directed compilation), its behavioral
// datapath, and the paper's benchmark run:
//
//   - systolic counter: one full 8-handshake cycle;
//   - wagging register: forward latency (data through the register);
//   - stack: three pushes followed by three pops;
//   - SSEM: a small program writing 0..4 to consecutive memory words.
package designs

import (
	"fmt"

	"balsabm/internal/chmap"
	"balsabm/internal/core"
	"balsabm/internal/dpath"
	"balsabm/internal/sim"
)

// BenchRun is one benchmark execution harness.
type BenchRun struct {
	Description string
	Start       func()
	Done        func() bool
	Validate    func() error
}

// Design bundles a benchmark circuit.
type Design struct {
	Name     string
	Control  func() *core.Netlist
	Datapath func(b *dpath.Builder)
	Bench    func(b *dpath.Builder) *BenchRun
}

// seqTree adds a binary tree of two-way sequencers, rooted at the act
// channel, activating the given leaf channels in order — the shape
// balsa-c's syntax-directed translation produces for sequential blocks
// ("a ; b ; c ; ...").
func seqTree(n *core.Netlist, prefix, act string, leaves []string) {
	counter := 0
	var build func(act string, ls []string)
	build = func(act string, ls []string) {
		counter++
		name := fmt.Sprintf("%s_seq%d", prefix, counter)
		if len(ls) <= 2 {
			n.Components = append(n.Components, chmap.Sequencer(name, act, ls...))
			return
		}
		mid := (len(ls) + 1) / 2
		left := fmt.Sprintf("%s_l%d", prefix, counter)
		right := fmt.Sprintf("%s_r%d", prefix, counter)
		n.Components = append(n.Components, chmap.Sequencer(name, act, left, right))
		build(left, ls[:mid])
		build(right, ls[mid:])
	}
	build(act, leaves)
}

// All returns the paper's four designs in Table 3 order.
func All() []*Design {
	return []*Design{SystolicCounter(), WaggingRegister(), Stack(), SSEM()}
}

// ByName returns a design by its Table 3 name.
func ByName(name string) (*Design, error) {
	for _, d := range All() {
		if d.Name == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("designs: unknown design %q", name)
}

// ---------------------------------------------------------------------
// Systolic counter: three doubling cells; each cell performs two
// downstream handshakes per upstream handshake through a sequencer and
// a two-way call (the exact structure of the paper's Fig 5 example,
// which is "taken from one of the simulated circuits (the systolic
// counter)"). One activation of tick yields 8 handshakes on leaf.
func SystolicCounter() *Design {
	control := func() *core.Netlist {
		n := &core.Netlist{}
		stages := []string{"tick", "a2", "a3", "leaf"}
		for i := 0; i < 3; i++ {
			up, down := stages[i], stages[i+1]
			b1 := fmt.Sprintf("b%d_1", i+1)
			b2 := fmt.Sprintf("b%d_2", i+1)
			n.Components = append(n.Components,
				chmap.Sequencer(fmt.Sprintf("seq%d", i+1), up, b1, b2),
				chmap.Call(fmt.Sprintf("call%d", i+1), []string{b1, b2}, down),
			)
		}
		return n
	}
	return &Design{
		Name:    "systolic-counter",
		Control: control,
		Datapath: func(b *dpath.Builder) {
			// The counted event: each leaf handshake increments an
			// 8-bit count register (the counter's actual datapath).
			b.Variable("cnt", 8, "cntw", "cntrd")
			b.Func("cntinc", 8, func(ins []uint64) uint64 { return (ins[0] + 1) & 0xFF }, "cntrd")
			b.Fetch("leaf", "cntinc", "cntw")
		},
		Bench: func(b *dpath.Builder) *BenchRun {
			leafCount := 0
			b.S.Watch("leaf_r", func(s *sim.Simulator, _ int, val bool) {
				if val {
					leafCount++
				}
			})
			done := false
			act := b.NewActivator("tick", 0.25, 1, func(s *sim.Simulator) {
				done = true
				s.Stop()
			})
			return &BenchRun{
				Description: "one full 8-handshake cycle",
				Start:       act.Start,
				Done:        func() bool { return done },
				Validate: func() error {
					if leafCount != 8 {
						return fmt.Errorf("systolic counter: %d leaf handshakes, want 8", leafCount)
					}
					if got := b.Bus("cntw").Val; got != 8 {
						return fmt.Errorf("systolic counter: count register reached %d, want 8", got)
					}
					return nil
				},
			}
		},
	}
}

// ---------------------------------------------------------------------
// Wagging register: 8 places, 8 bits, organized as two wagging banks of
// four. A toggle bit steers each incoming datum to alternating banks
// through a data-dependent selector (the "wagging" proper); each bank
// is a four-place shift chain; the output side shares an emit procedure
// through a two-way call. Because the bank activations come from the
// datapath selector, clustering stays within each bank (the paper's
// observation that the algorithms yield several clustered components
// rather than one monolith), and the emit call's fragments land in
// different clusters, exercising call restoration. Benchmarked for
// forward latency: cycles for an input datum to traverse a bank.
func WaggingRegister() *Design {
	control := func() *core.Netlist {
		n := &core.Netlist{}
		n.Components = append(n.Components,
			// Top cycle: steer one datum (wsel goes to the datapath
			// selector), then flip the toggle.
			chmap.Sequencer("wtop", "wr", "wsel", "wflip"),
			chmap.Call("wcall", []string{"e1", "e2"}, "we"),
			chmap.Sequencer("wemit", "we", "oe"),
		)
		seqTree(n, "wchA", "wa", []string{"ca", "e1", "sa3", "sa2", "sa1", "sa0"})
		seqTree(n, "wchB", "wb", []string{"cb", "e2", "sb3", "sb2", "sb1", "sb0"})
		return n
	}
	datapath := func(b *dpath.Builder) {
		const w = 8
		// Wagging steering: the toggle selects the bank; wflip inverts
		// the toggle.
		b.Variable("wtog", 1, "wtogw", "wtogrd", "wtogrd2")
		b.CaseSel("wsel", "wtogrd", "wa", "wb")
		b.Func("wnot", 1, func(ins []uint64) uint64 { return ins[0] ^ 1 }, "wtogrd2")
		b.Fetch("wflip", "wnot", "wtogw")
		for _, bank := range []string{"a", "b"} {
			for i := 0; i < 4; i++ {
				b.Variable(fmt.Sprintf("v%s%d", bank, i), w,
					fmt.Sprintf("v%s%dw", bank, i), fmt.Sprintf("v%s%drd", bank, i))
			}
		}
		b.Variable("obuf", w, "obufw", "obufrd")
		for _, bank := range []string{"a", "b"} {
			// Copy the oldest place into the shared output buffer.
			b.Fetch("c"+bank, fmt.Sprintf("v%s3rd", bank), "obufw")
			// Shift the bank (oldest first so nothing is clobbered).
			for i := 3; i >= 1; i-- {
				b.Fetch(fmt.Sprintf("s%s%d", bank, i),
					fmt.Sprintf("v%s%drd", bank, i-1), fmt.Sprintf("v%s%dw", bank, i))
			}
			b.Fetch(fmt.Sprintf("s%s0", bank), "win", fmt.Sprintf("v%s0w", bank))
		}
		// Shared emit: out <- obuf.
		b.Fetch("oe", "obufrd", "wout")
	}
	return &Design{
		Name:     "wagging-register",
		Control:  control,
		Datapath: datapath,
		Bench: func(b *dpath.Builder) *BenchRun {
			var ins, outs []uint64
			next := uint64(100)
			b.EnvServePull("win", 0.2, func() uint64 {
				next++
				ins = append(ins, next)
				return next
			})
			b.EnvConsumePush("wout", 0.2, func(v uint64) { outs = append(outs, v) })
			const cycles = 10
			done := false
			act := b.NewActivator("wr", 0.25, cycles, func(s *sim.Simulator) {
				done = true
				s.Stop()
			})
			return &BenchRun{
				Description: "forward latency: 10 wagging cycles push a datum through each 4-place bank",
				Start:       act.Start,
				Done:        func() bool { return done },
				Validate: func() error {
					if len(outs) != cycles || len(ins) != cycles {
						return fmt.Errorf("wagging: %d outs / %d ins, want %d each", len(outs), len(ins), cycles)
					}
					// Each bank shifts on alternate cycles; the datum
					// accepted in cycle 0 (bank A) emerges on the
					// bank's fifth activation, i.e. global cycle 8.
					if outs[8] != ins[0] || outs[9] != ins[1] {
						return fmt.Errorf("wagging: forward data mismatch: outs[8..9]=%v,%v want %v,%v",
							outs[8], outs[9], ins[0], ins[1])
					}
					for i := 0; i < 8; i++ {
						if outs[i] != 0 {
							return fmt.Errorf("wagging: out %d = %d, want 0 (register was empty)", i, outs[i])
						}
					}
					return nil
				},
			}
		},
	}
}

// ---------------------------------------------------------------------
// Stack: 8 places, 8 bits. A push shifts every place up and loads the
// new datum at the bottom; a pop emits the bottom and shifts down. Both
// operations decompose into two four-step sub-sequencers (the shape the
// Balsa compiler produces for long sequential blocks), which T1
// clustering collapses. Benchmark: three pushes then three pops.
func Stack() *Design { return StackWithWidth("stack", 8) }

// StackWithWidth parameterizes the stack's data width — used by the
// control-vs-datapath-domination ablation: the paper explains that the
// overall speed improvement depends on the ratio between control and
// datapath, so widening the datapath (identical control) must shrink
// the percentage gain.
func StackWithWidth(name string, width int) *Design {
	control := func() *core.Netlist {
		n := &core.Netlist{}
		seqTree(n, "push", "push", []string{"p7", "p6", "p5", "p4", "p3", "p2", "p1", "p0"})
		seqTree(n, "pop", "pop", []string{"o0", "d0", "d1", "d2", "d3", "d4", "d5", "d6"})
		return n
	}
	datapath := func(b *dpath.Builder) {
		w := width
		for i := 0; i < 8; i++ {
			// Each place is read by the push path (copy up) and the
			// pop path (copy down); v0 is also read by the output.
			reads := []string{fmt.Sprintf("v%drp", i), fmt.Sprintf("v%drq", i)}
			if i == 0 {
				reads = append(reads, "v0ro")
			}
			b.Variable(fmt.Sprintf("v%d", i), w, fmt.Sprintf("v%dw", i), reads...)
		}
		// Push: p7: v7 := v6 ... p1: v1 := v0; p0: v0 := in.
		for i := 7; i >= 1; i-- {
			b.Fetch(fmt.Sprintf("p%d", i), fmt.Sprintf("v%drp", i-1), fmt.Sprintf("v%dw", i))
		}
		b.Fetch("p0", "sin", "v0w")
		// Pop: o0: out := v0; d0: v0 := v1 ... d6: v6 := v7.
		b.Fetch("o0", "v0ro", "soutw")
		for i := 0; i <= 6; i++ {
			b.Fetch(fmt.Sprintf("d%d", i), fmt.Sprintf("v%drq", i+1), fmt.Sprintf("v%dw", i))
		}
	}
	return &Design{
		Name:     name,
		Control:  control,
		Datapath: datapath,
		Bench: func(b *dpath.Builder) *BenchRun {
			pushVals := []uint64{11, 22, 33}
			var popped []uint64
			pushes := 0
			b.EnvServePull("sin", 0.2, func() uint64 {
				v := pushVals[pushes%len(pushVals)]
				pushes++
				return v
			})
			b.EnvConsumePush("soutw", 0.2, func(v uint64) { popped = append(popped, v) })
			done := false
			var popAct *dpath.Activator
			pushAct := b.NewActivator("push", 0.25, 3, func(s *sim.Simulator) {
				popAct.Start()
			})
			popAct = b.NewActivator("pop", 0.25, 3, func(s *sim.Simulator) {
				done = true
				s.Stop()
			})
			origStart := pushAct.Start
			return &BenchRun{
				Description: "three pushes followed by three pops",
				Start: func() {
					origStart()
				},
				Done: func() bool { return done },
				Validate: func() error {
					if pushes != 3 {
						return fmt.Errorf("stack: %d pushes served, want 3", pushes)
					}
					want := []uint64{33, 22, 11}
					if len(popped) != 3 {
						return fmt.Errorf("stack: popped %d values, want 3", len(popped))
					}
					for i := range want {
						if popped[i] != want[i] {
							return fmt.Errorf("stack: popped %v, want %v (LIFO)", popped, want)
						}
					}
					return nil
				},
			}
		},
	}
}

// ---------------------------------------------------------------------
// SSEM: a small 32-bit non-pipelined RISC-like core. ISA (op in bits
// 13..15, arg in bits 0..12): 0 LDI, 1 ADDI, 2 STO, 3 JMP, 4 BNZ,
// 5 HLT. The control is a fetch/decode/execute hierarchy; the decode
// dispatch and the branch decision are data-dependent selectors
// (datapath components). JMP and BNZ share the pc-writing procedure
// through a two-way call. The benchmark program writes 0..4 to memory
// words 16..20 and halts.
func SSEM() *Design {
	return SSEMWithProgram("ssem", SSEMStoreProgram(),
		"program writing 0..4 to memory words 16..20, then HLT",
		func(mem *dpath.Memory) error {
			for i := 0; i <= 4; i++ {
				if mem.Words[16+i] != uint64(i) {
					return fmt.Errorf("ssem: mem[%d] = %d, want %d", 16+i, mem.Words[16+i], i)
				}
			}
			return nil
		})
}

// SSEMWithProgram builds the SSEM design around an arbitrary program
// and result check — used, e.g., to exercise the ADDI/BNZ/JMP paths
// with the countdown loop program.
func SSEMWithProgram(name string, program []uint64, desc string, validate func(mem *dpath.Memory) error) *Design {
	control := func() *core.Netlist {
		n := &core.Netlist{}
		n.Components = append(n.Components,
			chmap.Sequencer("stepctl", "step", "fa", "dec"),
			chmap.Sequencer("fetchctl", "fa", "fir", "fpc"),
			chmap.Sequencer("opldi", "ldiA", "eldi"),
			chmap.Sequencer("opaddi", "addiA", "addi2"),
			chmap.Sequencer("opaddi2", "addi2", "t1", "t2"),
			chmap.Sequencer("opsto", "stoA", "sto2"),
			chmap.Sequencer("opsto2", "sto2", "ew"),
			chmap.Call("calljmp", []string{"jmpA", "jmpB"}, "jmpin"),
			chmap.Sequencer("opjmp", "jmpin", "ejmp"),
		)
		return n
	}
	datapath := func(b *dpath.Builder) {
		const w = 32
		b.Variable("pc", w, "pcw", "pcrdf", "pcrdi")
		b.Variable("ir", w, "irw", "irrdop", "irrd1", "irrd2", "irrd3", "irrd4")
		b.Variable("acc", w, "accw", "accrdadd", "accrdsto", "accrdbnz")
		b.Variable("tmp", w, "tmpw", "tmprd")
		mem := b.Memory(32, w)
		mem.ReadPort("mrd", "pcrdf", w)
		b.Fetch("fir", "mrd", "irw")
		b.Func("pcinc", w, func(ins []uint64) uint64 { return ins[0] + 1 }, "pcrdi")
		b.Fetch("fpc", "pcinc", "pcw")
		b.Func("irop", 3, func(ins []uint64) uint64 { return (ins[0] >> 13) & 7 }, "irrdop")
		arg := func(out, in string) {
			b.Func(out, 13, func(ins []uint64) uint64 { return ins[0] & 0x1FFF }, in)
		}
		arg("arg1", "irrd1")
		arg("arg2", "irrd2")
		arg("arg3", "irrd3")
		arg("arg4", "irrd4")
		b.CaseSel("dec", "irop", "ldiA", "addiA", "stoA", "jmpA", "bnzA", "hltA")
		b.Fetch("eldi", "arg1", "accw")
		b.Func("addv", w, func(ins []uint64) uint64 {
			imm := ins[1]
			if imm&0x1000 != 0 { // sign-extend the 13-bit immediate
				imm |= ^uint64(0x1FFF)
			}
			return (ins[0] + imm) & 0xFFFFFFFF
		}, "accrdadd", "arg2")
		b.Fetch("t1", "addv", "tmpw")
		b.Fetch("t2", "tmprd", "accw")
		mem.WritePort("ew", "arg3", "accrdsto", w)
		b.Fetch("ejmp", "arg4", "pcw")
		b.Func("nz", 1, func(ins []uint64) uint64 {
			if ins[0] != 0 {
				return 1
			}
			return 0
		}, "accrdbnz")
		// BNZ: selector 0 -> fall through (bskip), 1 -> taken (jmpB).
		b.CaseSel("bnzA", "nz", "bskip", "jmpB")
		b.EnvServeSync("bskip", 0.2)
	}
	return &Design{
		Name:     name,
		Control:  control,
		Datapath: datapath,
		Bench: func(b *dpath.Builder) *BenchRun {
			mem := findMemory(b)
			copy(mem.Words, program)
			halted := false
			b.EnvServeSync("hltA", 0.2)
			b.S.Watch("hltA_r", func(s *sim.Simulator, _ int, val bool) {
				if val {
					halted = true
				}
			})
			done := false
			act := b.NewActivator("step", 0.25, 1<<30, func(s *sim.Simulator) {})
			// Stop re-activating once the program halts.
			b.S.Watch("step_a", func(s *sim.Simulator, _ int, val bool) {
				if !val && halted {
					done = true
					s.Stop()
				}
			})
			return &BenchRun{
				Description: desc,
				Start:       act.Start,
				Done:        func() bool { return done },
				Validate: func() error {
					if !halted {
						return fmt.Errorf("%s: did not halt", name)
					}
					return validate(mem)
				},
			}
		},
	}
}

// SSEM instruction encoding helpers.
const (
	OpLDI = iota
	OpADDI
	OpSTO
	OpJMP
	OpBNZ
	OpHLT
)

// Encode builds an SSEM instruction word.
func Encode(op int, arg int) uint64 {
	return uint64(op)<<13 | uint64(arg&0x1FFF)
}

// SSEMStoreProgram is the Table 3 benchmark program: write 0..4 to
// memory words 16..20 and halt.
func SSEMStoreProgram() []uint64 {
	return []uint64{
		Encode(OpLDI, 0), Encode(OpSTO, 16),
		Encode(OpLDI, 1), Encode(OpSTO, 17),
		Encode(OpLDI, 2), Encode(OpSTO, 18),
		Encode(OpLDI, 3), Encode(OpSTO, 19),
		Encode(OpLDI, 4), Encode(OpSTO, 20),
		Encode(OpHLT, 0),
	}
}

// SSEMLoopProgram exercises ADDI/BNZ/JMP: count acc from 3 down to 0
// with a backwards branch, then halt.
func SSEMLoopProgram() []uint64 {
	return []uint64{
		Encode(OpLDI, 3),       // 0: acc = 3
		Encode(OpADDI, 0x1FFF), // 1: acc += -1 (13-bit two's complement)
		Encode(OpSTO, 21),      // 2: mem[21] = acc
		Encode(OpBNZ, 1),       // 3: if acc != 0 goto 1
		Encode(OpHLT, 0),       // 4
	}
}

// findMemory digs the single memory instance out of the builder; the
// datapath constructor stores it via the closure in SSEM above, so the
// bench reconstructs access by rebuilding: instead, the builder records
// memories.
func findMemory(b *dpath.Builder) *dpath.Memory {
	return b.LastMemory()
}

package designs

import (
	"testing"

	"balsabm/internal/chtobm"
)

// Every design's control netlist must consist of Burst-Mode
// synthesizable components.
func TestDesignControlsSynthesizable(t *testing.T) {
	for _, d := range All() {
		n := d.Control()
		for _, comp := range n.Components {
			if _, err := chtobm.Compile(comp); err != nil {
				t.Errorf("%s/%s: %v", d.Name, comp.Name, err)
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"systolic-counter", "wagging-register", "stack", "ssem"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%s): %v", name, err)
		}
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("expected error for unknown design")
	}
}

func TestSSEMEncoding(t *testing.T) {
	w := Encode(OpSTO, 17)
	if (w>>13)&7 != OpSTO || w&0x1FFF != 17 {
		t.Fatalf("encode broken: %x", w)
	}
	prog := SSEMStoreProgram()
	if len(prog) != 11 || (prog[10]>>13)&7 != OpHLT {
		t.Fatalf("store program malformed")
	}
	loop := SSEMLoopProgram()
	if (loop[3]>>13)&7 != OpBNZ {
		t.Fatalf("loop program malformed")
	}
}

// The Balsa sources compile into netlists whose control parts mirror
// the hand-built design netlists.
func TestBalsaSourcesCompile(t *testing.T) {
	for _, name := range []string{"counter8", "stack", "wagging", "ssem"} {
		n, err := CompileBalsa(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ctl, err := n.Control()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, comp := range ctl.Components {
			if _, err := chtobm.Compile(comp); err != nil {
				t.Errorf("%s/%s: %v", name, comp.Name, err)
			}
		}
	}
}

// The balsa-compiled counter has the same control structure as the
// hand-built one: three sequencers plus three calls.
func TestBalsaCounterStructure(t *testing.T) {
	n, err := CompileBalsa("counter8")
	if err != nil {
		t.Fatal(err)
	}
	s := n.Stats()
	if s.Control != 6 {
		t.Fatalf("control components = %d, want 6 (3 sequencers + 3 calls)", s.Control)
	}
	hand := SystolicCounter().Control()
	ctl, err := n.Control()
	if err != nil {
		t.Fatal(err)
	}
	if len(ctl.Components) != len(hand.Components) {
		t.Fatalf("balsa %d vs hand %d control components", len(ctl.Components), len(hand.Components))
	}
}
